// Command response-bench runs the complete evaluation — every figure
// and table of the paper — and prints paper-style output with the
// published numbers alongside for comparison. This is the one-shot
// reproduction entry point; see EXPERIMENTS.md for the recorded
// paper-vs-measured table.
//
// With -gen it instead runs the generated-topology scale sweep: plan
// time and hot-swap cost over fat-tree and Waxman instances (to 245
// and 200 nodes), every plan vetted by the invariant checker, with the
// result written as JSON (default BENCH_gen.json). Any invariant
// violation makes the run exit non-zero, so CI can gate on it.
//
// With -warm it runs the warm-start replan benchmark: for each
// "family:size" of -warmspec it times a cold plan and a warm replan
// seeded from it, printing the speedup. -warmgate N makes the run exit
// non-zero if any warm replan exceeds N milliseconds — the CI
// planner-scaling gate.
//
// With -paths it runs the path-engine benchmark: a fixed point-to-point
// K-shortest query workload through the reference engine and each
// goal-directed engine (ALT, bidirectional), cross-checked for byte
// equality, with the result written as JSON (default BENCH_paths.json).
// -pathgate makes the run exit non-zero if any answer mismatches or a
// goal-directed engine loses to reference on the 200-node Waxman — the
// CI path-engine gate.
//
// Usage:
//
//	response-bench [-quick]
//	response-bench -gen [-quick] [-genout BENCH_gen.json]
//	response-bench -warm [-warmspec fattree:14] [-warmgate 2000]
//	response-bench -paths [-pathspec waxman:200] [-pathgate]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"response/experiments"
	"response/topology"
)

func main() {
	quick := flag.Bool("quick", false, "smaller traces (2 days, coarser strides); with -gen, small sweep sizes")
	gen := flag.Bool("gen", false, "run the generated-topology scale sweep instead of the figure suite")
	genout := flag.String("genout", "BENCH_gen.json", "output path of the -gen sweep JSON")
	warm := flag.Bool("warm", false, "run the warm-start replan benchmark instead of the figure suite")
	warmspec := flag.String("warmspec", "fattree:8,fattree:14,waxman:50", "comma-separated family:size list for -warm")
	warmgate := flag.Float64("warmgate", 0, "with -warm, exit non-zero if any warm replan exceeds this many ms (0 = no gate)")
	tracebench := flag.Bool("trace", false, "run the trace-store ingest/query benchmark instead of the figure suite")
	traceout := flag.String("traceout", "BENCH_trace.json", "output path of the -trace benchmark JSON")
	traceevents := flag.Int("traceevents", 1<<20, "with -trace, synthetic stream size in events (-quick divides by 8)")
	paths := flag.Bool("paths", false, "run the path-engine K-shortest benchmark instead of the figure suite")
	pathspec := flag.String("pathspec", "fattree:6,waxman:50,waxman:200", "comma-separated family:size list for -paths")
	pathout := flag.String("pathout", "BENCH_paths.json", "output path of the -paths benchmark JSON")
	pathgate := flag.Bool("pathgate", false, "with -paths, exit non-zero if a goal-directed engine loses to reference on the 200-node Waxman (or any answer mismatches)")
	flag.Parse()

	if *gen {
		runGenSweep(*quick, *genout)
		return
	}
	if *warm {
		runWarmBench(*warmspec, *warmgate)
		return
	}
	if *paths {
		runPathBench(*pathspec, *pathout, *pathgate)
		return
	}
	if *tracebench {
		n := *traceevents
		if *quick {
			n /= 8
		}
		runTraceBench(n, *traceout)
		return
	}

	days, stride := 8, 2
	if *quick {
		days, stride = 2, 4
	}
	start := time.Now()
	section := func(name string) {
		fmt.Printf("\n=== %s (t+%s) ===\n", name, time.Since(start).Round(time.Second))
	}

	section("Figure 1a")
	experiments.RunFig1a(days).Print(os.Stdout)

	section("Figures 1b / 2a / 2b(GÉANT)")
	fb, err := experiments.RunFig1b(days, stride)
	fail(err)
	fb.Print(os.Stdout)
	fmt.Println()
	fb.PrintFig2a(os.Stdout)

	section("Figure 2b")
	f2b, err := experiments.RunFig2b(days, stride, 2, 12)
	fail(err)
	f2b.Print(os.Stdout)

	section("Figure 4")
	f4, err := experiments.RunFig4(20)
	fail(err)
	f4.Print(os.Stdout)

	section("Figure 5")
	f5, err := experiments.RunFig5(days)
	fail(err)
	f5.Print(os.Stdout)

	section("Figure 6")
	f6, err := experiments.RunFig6()
	fail(err)
	f6.Print(os.Stdout)

	section("Figure 7")
	f7, err := experiments.RunFig7()
	fail(err)
	f7.Print(os.Stdout)

	section("Figure 8a")
	f8a, err := experiments.RunFig8a()
	fail(err)
	f8a.Print(os.Stdout)

	section("Figure 8b")
	f8b, err := experiments.RunFig8b()
	fail(err)
	f8b.Print(os.Stdout)

	section("Figure 9")
	f9, err := experiments.RunFig9()
	fail(err)
	f9.Print(os.Stdout)

	section("Web workload")
	web, err := experiments.RunWeb()
	fail(err)
	web.Print(os.Stdout)

	section("§4.1 always-on capacity share")
	for _, t := range []*topology.Topology{topology.NewGeant(), topology.NewGenuity()} {
		share, err := experiments.RunAlwaysOnShare(t)
		fail(err)
		fmt.Printf("  %s: always-on paths carry %.0f%% of OSPF-routable volume (paper: ≈50%%)\n",
			share.Topology, share.Share*100)
	}

	section("§4.2 stress-exclusion sensitivity")
	sweep, err := experiments.RunStressSweep([]float64{0, 0.1, 0.2, 0.3, 0.4})
	fail(err)
	sweep.Print(os.Stdout)

	fmt.Printf("\ntotal runtime: %s\n", time.Since(start).Round(time.Second))
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// runGenSweep executes the generated-topology sweep, prints the table,
// writes the JSON artifact and exits non-zero on invariant violations.
func runGenSweep(quick bool, out string) {
	start := time.Now()
	sweep, err := experiments.RunGeneratedSweep(experiments.GenSweepOpts{Quick: quick})
	fail(err)
	sweep.Print(os.Stdout)
	f, err := os.Create(out)
	fail(err)
	fail(sweep.WriteJSON(f))
	fail(f.Close())
	fmt.Printf("\nwrote %s in %s\n", out, time.Since(start).Round(time.Millisecond))
	if n := sweep.Violations(); n > 0 {
		log.Fatalf("generated sweep found %d invariant violation(s)", n)
	}
}

// runTraceBench executes the trace-store ingest/query benchmark,
// prints the table and writes the JSON artifact. A top-ranked
// critical-path link outside the synthetic burst makes the run exit
// non-zero — the CI diagnosis gate.
func runTraceBench(events int, out string) {
	start := time.Now()
	bench, err := experiments.RunTraceBench(events, 0)
	fail(err)
	bench.Print(os.Stdout)
	f, err := os.Create(out)
	fail(err)
	fail(bench.WriteJSON(f))
	fail(f.Close())
	fmt.Printf("\nwrote %s in %s\n", out, time.Since(start).Round(time.Millisecond))
	if !bench.CriticalTopIsBurst {
		log.Fatal("critical-path query did not rank a burst link first")
	}
}

// runPathBench executes the path-engine K-shortest benchmark, writes
// the JSON artifact, and with -pathgate exits non-zero on any answer
// mismatch or if a goal-directed engine loses to the reference engine
// on the 200-node Waxman instance — the CI path-engine gate.
func runPathBench(spec, out string, gate bool) {
	start := time.Now()
	bench, err := experiments.RunPathBench(spec, 0, 0)
	fail(err)
	bench.Print(os.Stdout)
	f, err := os.Create(out)
	fail(err)
	fail(bench.WriteJSON(f))
	fail(f.Close())
	fmt.Printf("\nwrote %s in %s\n", out, time.Since(start).Round(time.Millisecond))
	if n := bench.Mismatches(); n > 0 {
		log.Fatalf("path-engine bench found %d cross-check mismatch(es)", n)
	}
	if gate {
		if s := bench.WorstSpeedup("waxman", 200); s > 0 && s < 1 {
			log.Fatalf("goal-directed engine lost to reference on waxman-200: %.2fx", s)
		}
	}
}

// runWarmBench executes the warm-start replan benchmark and applies
// the optional latency gate.
func runWarmBench(spec string, gateMs float64) {
	start := time.Now()
	bench, err := experiments.RunWarmBench(spec)
	fail(err)
	bench.Print(os.Stdout)
	fmt.Printf("\ntotal runtime: %s\n", time.Since(start).Round(time.Millisecond))
	if gateMs > 0 && bench.MaxWarmMs() > gateMs {
		log.Fatalf("warm replan took %.1f ms, gate is %.0f ms", bench.MaxWarmMs(), gateMs)
	}
}
