// Command response-sim runs the paper's dynamic experiments in the
// event-driven simulator: Figure 4 (fat-tree sine wave), Figure 7
// (Click-testbed failover), Figures 8a/8b (ns-2-style adaptation) and
// Figure 9 (streaming application impact), plus the web workload table.
//
// Usage:
//
//	response-sim -fig 4|7|8a|8b|9|web|all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"response/experiments"
)

func main() {
	fig := flag.String("fig", "all", "experiment: 4, 7, 8a, 8b, 9, web or all")
	flag.Parse()

	run := func(name string) {
		switch name {
		case "4":
			res, err := experiments.RunFig4(20)
			fail(err)
			res.Print(os.Stdout)
		case "7":
			res, err := experiments.RunFig7()
			fail(err)
			res.Print(os.Stdout)
		case "8a":
			res, err := experiments.RunFig8a()
			fail(err)
			res.Print(os.Stdout)
		case "8b":
			res, err := experiments.RunFig8b()
			fail(err)
			res.Print(os.Stdout)
		case "9":
			res, err := experiments.RunFig9()
			fail(err)
			res.Print(os.Stdout)
		case "web":
			res, err := experiments.RunWeb()
			fail(err)
			res.Print(os.Stdout)
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}
	if *fig == "all" {
		for _, name := range []string{"4", "7", "8a", "8b", "9", "web"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(*fig)
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
