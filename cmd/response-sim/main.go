// Command response-sim runs the paper's dynamic experiments in the
// event-driven simulator: Figure 4 (fat-tree sine wave), Figure 7
// (Click-testbed failover), Figures 8a/8b (ns-2-style adaptation) and
// Figure 9 (streaming application impact), plus the web workload table
// and the large-scale online scenarios (diurnal replay, flash crowd,
// failure storm, rolling repair).
//
// Usage:
//
//	response-sim -fig 4|7|8a|8b|9|web|all
//	response-sim -scenario diurnal|flash|storm|repair|click|replan|srlgstorm|chaos \
//	             [-flows N] [-seed S] [-duration SECONDS] [-full] [-power] \
//	             [-fail-rate R] [-chaos-seed S] [-trace events.jsonl|-]
//
// -fail-rate injects control-plane faults into the lifecycle replan
// loop at aggregate rate R (0..1), split across fault classes;
// -chaos-seed draws the injection sequence from its own seed. A run
// that ends in the Degraded fallback exits non-zero.
//
// -trace writes the run's JSONL event trace to a file, or with "-"
// streams it to stdout (the result summary moves to stderr), so a run
// pipes straight into the trace analyzer:
//
//	response-sim -scenario srlgstorm -trace - | response-analyze trace -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"strings"

	"response/experiments"
	"response/faultinject"
	"response/simulate"
)

// chaosFaults splits one aggregate -fail-rate knob across the fault
// classes: mostly plain replan errors, a sprinkling of infeasibility,
// panics, blown deadlines and artifact corruption.
func chaosFaults(rate float64, seed int64) faultinject.Config {
	return faultinject.Config{
		Seed:           seed,
		ErrorRate:      0.50 * rate,
		InfeasibleRate: 0.10 * rate,
		PanicRate:      0.10 * rate,
		SlowRate:       0.10 * rate,
		CorruptRate:    0.15 * rate,
		TruncateRate:   0.05 * rate,
	}
}

func main() {
	fig := flag.String("fig", "all", "experiment: 4, 7, 8a, 8b, 9, web or all")
	scen := flag.String("scenario", "", "online scenario: "+
		strings.Join(simulate.Scenarios(), ", "))
	flows := flag.Int("flows", 10000, "managed flows for -scenario runs")
	seed := flag.Int64("seed", 1, "scenario seed (identical seed ⇒ identical result)")
	duration := flag.Float64("duration", 6*3600, "simulated seconds for -scenario runs")
	full := flag.Bool("full", false, "use the global reference allocator (cross-check mode)")
	meter := flag.Bool("power", false, "meter power during the scenario")
	failRate := flag.Float64("fail-rate", 0, "aggregate control-plane fault rate (0..1) for -scenario runs")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault-injection seed (default: scenario seed + 1)")
	tracePath := flag.String("trace", "", "write the JSONL event trace of a -scenario run to this file")
	flag.Parse()

	if *scen != "" {
		if valid := simulate.Scenarios(); !slices.Contains(valid, *scen) {
			fmt.Fprintf(os.Stderr, "response-sim: unknown scenario %q\nvalid scenarios: %s\n",
				*scen, strings.Join(valid, ", "))
			os.Exit(2)
		}
		cfg := simulate.Scenario{
			Seed:         *seed,
			Flows:        *flows,
			Duration:     *duration,
			FullAllocate: *full,
			Power:        *meter,
		}
		if *failRate < 0 || *failRate > 1 {
			fmt.Fprintf(os.Stderr, "response-sim: -fail-rate %v outside [0, 1]\n", *failRate)
			os.Exit(2)
		}
		if *failRate > 0 {
			cfg.Faults = chaosFaults(*failRate, *chaosSeed)
		}
		// -trace - streams the events to stdout (pipe straight into
		// `response-analyze trace -`); the human-readable result then
		// moves to stderr so the stream stays pure JSONL.
		resOut := os.Stdout
		var flush func()
		if *tracePath == "-" {
			bw := bufio.NewWriter(os.Stdout)
			ew := simulate.NewEventWriter(bw)
			cfg.Events = ew
			resOut = os.Stderr
			flush = func() {
				fail(ew.Err())
				fail(bw.Flush())
				fmt.Fprintf(os.Stderr, "  streamed %d events to stdout\n", ew.Events())
			}
		} else if *tracePath != "" {
			f, err := os.Create(*tracePath)
			fail(err)
			bw := bufio.NewWriter(f)
			ew := simulate.NewEventWriter(bw)
			cfg.Events = ew
			flush = func() {
				fail(ew.Err())
				fail(bw.Flush())
				fail(f.Close())
				fmt.Printf("  wrote %d events to %s\n", ew.Events(), *tracePath)
			}
		}
		res, err := simulate.RunScenario(*scen, cfg)
		fail(err)
		res.Print(resOut)
		if flush != nil {
			flush()
		}
		if !res.Healthy() {
			fmt.Fprintf(os.Stderr,
				"response-sim: scenario %s ended in the Degraded fallback: "+
					"%d failed replan cycles, %d retries, degraded entered %d / exited %d "+
					"(%.0f s pinned all-on) — the control plane never recovered\n",
				*scen, res.ReplanFailed, res.Retries,
				res.DegradedEntered, res.DegradedExited, res.DegradedSec)
			os.Exit(1)
		}
		return
	}

	run := func(name string) {
		switch name {
		case "4":
			res, err := experiments.RunFig4(20)
			fail(err)
			res.Print(os.Stdout)
		case "7":
			res, err := experiments.RunFig7()
			fail(err)
			res.Print(os.Stdout)
		case "8a":
			res, err := experiments.RunFig8a()
			fail(err)
			res.Print(os.Stdout)
		case "8b":
			res, err := experiments.RunFig8b()
			fail(err)
			res.Print(os.Stdout)
		case "9":
			res, err := experiments.RunFig9()
			fail(err)
			res.Print(os.Stdout)
		case "web":
			res, err := experiments.RunWeb()
			fail(err)
			res.Print(os.Stdout)
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}
	if *fig == "all" {
		for _, name := range []string{"4", "7", "8a", "8b", "9", "web"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(*fig)
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
