package main

// The trace subcommand: ingest a JSONL event trace and answer the
// trace store's progressive-disclosure queries from the command line.
// Built entirely on the public response/tracestore facade — the same
// store, parsers and query tiers the controld HTTP API serves.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"text/tabwriter"

	"response/tracestore"
)

func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	windowSec := fs.Float64("window-sec", 900, "search-window width in simulated seconds")
	maxEvents := fs.Int("max-events", 0, "event-ring bound (0 = the default, 1<<20)")
	tenant := fs.String("tenant", "", "restrict queries to one tenant label (multi-tenant controld streams)")
	severity := fs.String("severity", "", "window search: minimum severity (info, warn, critical)")
	since := fs.String("since", "", "lower time bound, inclusive")
	until := fs.String("until", "", "upper time bound, exclusive")
	limit := fs.String("limit", "", "result cap (windows default 100, events default 100)")
	summaryAt := fs.String("summary", "", "drill into the window starting at this time: per-link summary")
	cpAt := fs.String("critical-path", "", "rank the links of the window starting at this time by energy-criticality")
	k := fs.Int("k", 10, "ranked links to return for -critical-path")
	events := fs.Bool("events", false, "retrieve individual events instead of windows")
	span := fs.String("span", "", "event filter: span (te, sim, lifecycle, chaos)")
	op := fs.String("op", "", "event filter: op")
	flow := fs.String("flow", "", "event filter: flow id (-1 = events with no flow)")
	link := fs.String("link", "", "event filter: link id (-1 = events with no link)")
	asJSON := fs.Bool("json", false, "emit results as JSON instead of tables")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		log.Fatalf("usage: response-analyze trace [flags] <trace.jsonl|->")
	}

	var in io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	s := tracestore.New(tracestore.Opts{WindowSec: *windowSec, MaxEvents: *maxEvents})
	if _, _, err := s.Ingest(bufio.NewReader(in)); err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	if st.Ingested == 0 {
		log.Fatalf("no events ingested (%d lines skipped): not a JSONL event trace?", st.Skipped)
	}
	fmt.Fprintf(os.Stderr, "ingested %d events (%d skipped, %d evicted), %d windows, %d tenant(s)\n",
		st.Ingested, st.Skipped, st.Evicted, st.Windows, st.Tenants)

	// The string flags funnel through the same URL-parameter parsers the
	// controld HTTP API uses, so validation and defaults stay identical.
	params := map[string][]string{}
	set := func(key, val string) {
		if val != "" {
			params[key] = []string{val}
		}
	}
	set("tenant", *tenant)
	set("severity", *severity)
	set("since", *since)
	set("until", *until)
	set("limit", *limit)

	switch {
	case *summaryAt != "":
		set("start", *summaryAt)
		q, err := tracestore.ParseDrillQuery(params)
		if err != nil {
			log.Fatal(err)
		}
		det, ok := s.Summary(q.Tenant, q.Start)
		if !ok {
			log.Fatalf("no retained events in the window at %s", *summaryAt)
		}
		emit(*asJSON, det, printSummary)
	case *cpAt != "":
		set("start", *cpAt)
		set("k", strconv.Itoa(*k))
		q, err := tracestore.ParseDrillQuery(params)
		if err != nil {
			log.Fatal(err)
		}
		cp := s.CriticalPathQuery(q.Tenant, q.Start, q.K)
		if cp.Events == 0 {
			log.Fatalf("no retained events in the window at %s", *cpAt)
		}
		emit(*asJSON, cp, printCriticalPath)
	case *events:
		set("span", *span)
		set("op", *op)
		set("flow", *flow)
		set("link", *link)
		q, err := tracestore.ParseEventQuery(params)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, s.Events(q), printEvents)
	default:
		q, err := tracestore.ParseWindowQuery(params)
		if err != nil {
			log.Fatal(err)
		}
		emit(*asJSON, s.Windows(q), printWindows)
	}
}

// emit renders v as indented JSON or hands it to the table printer.
func emit[T any](asJSON bool, v T, table func(io.Writer, T)) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			log.Fatal(err)
		}
		return
	}
	table(os.Stdout, v)
}

func printWindows(w io.Writer, ws []tracestore.WindowSummary) {
	if len(ws) == 0 {
		fmt.Fprintln(w, "no windows match")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "START\tEND\tTENANT\tSEV\tEVENTS\tFAIL\tCASCADE\tEVAC\tWAKE\tSLEEP\tREPLAN-FAIL\tDEGRADED")
	for _, s := range ws {
		fmt.Fprintf(tw, "%g\t%g\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Start, s.End, orDash(s.Tenant), s.Severity, s.Events,
			s.Failures, s.Cascades, s.Evacuations, s.LinkWakes, s.LinkSleeps,
			s.ReplanFailures, s.Degraded)
	}
	tw.Flush()
}

func printSummary(w io.Writer, det tracestore.WindowDetail) {
	s := det.Window
	fmt.Fprintf(w, "window [%g, %g) tenant=%s severity=%s: %d events, %d flows touched\n",
		s.Start, s.End, orDash(s.Tenant), s.Severity, s.Events, det.FlowsTouched)
	fmt.Fprintf(w, "  failures=%d cascades=%d repairs=%d evacuations=%d shifts=%d wakes=%d sleeps=%d\n",
		s.Failures, s.Cascades, s.Repairs, s.Evacuations, s.Shifts, s.LinkWakes, s.LinkSleeps)
	fmt.Fprintf(w, "  probes=%d swaps=%d replan-failures=%d degraded=%d recovered=%d retries=%d\n",
		s.Probes, s.Swaps, s.ReplanFailures, s.Degraded, s.Recovered, s.Retries)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "LINK\tEVENTS\tFAIL\tEVAC\tWAKE\tSLEEP\tMAX-UTIL\tFIRST\tLAST")
	for _, l := range det.Links {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%g\t%g\n",
			l.Link, l.Events, l.Failures, l.Evacuations, l.Wakes, l.Sleeps,
			l.MaxUtil, l.FirstTS, l.LastTS)
	}
	tw.Flush()
}

func printCriticalPath(w io.Writer, cp tracestore.CriticalPath) {
	fmt.Fprintf(w, "energy-critical path of window [%g, %g) tenant=%s: %d events, %d actors\n",
		cp.Start, cp.End, orDash(cp.Tenant), cp.Events, cp.Actors)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "RANK\tLINK\tSCORE\tSEED\tEVENTS\tFAIL\tEVAC")
	for i, l := range cp.Links {
		fmt.Fprintf(tw, "%d\t%d\t%.4f\t%.3f\t%d\t%d\t%d\n",
			i+1, l.Link, l.Score, l.Seed, l.Events, l.Failures, l.Evacuations)
	}
	tw.Flush()
}

func printEvents(w io.Writer, evs []tracestore.Event) {
	if len(evs) == 0 {
		fmt.Fprintln(w, "no events match")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "TS\tTENANT\tSPAN\tOP\tFLOW\tFROM\tTO\tLINK\tVAL")
	for _, e := range evs {
		fmt.Fprintf(tw, "%g\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%g\n",
			e.TS, orDash(e.Tenant), e.Span, e.Op,
			orDashInt(e.Flow), orDashInt(e.From), orDashInt(e.To), orDashInt(e.Link), e.Val)
	}
	tw.Flush()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func orDashInt(v int) string {
	if v < 0 {
		return "-"
	}
	return strconv.Itoa(v)
}
