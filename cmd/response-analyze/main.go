// Command response-analyze regenerates the paper's §3 trace analytics:
// Figure 1a (traffic deviation CCDF), Figure 1b (recomputation rate),
// Figure 2a (configuration dominance) and Figure 2b (energy-critical
// path coverage).
//
// Usage:
//
//	response-analyze -fig 1a|1b|2a|2b|all [-days N] [-stride N] [-csv file]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"response/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1a, 1b, 2a, 2b or all")
	days := flag.Int("days", 4, "trace length in days (paper: 15 for GÉANT, 8 for the DC)")
	stride := flag.Int("stride", 2, "interval sub-sampling stride for replays")
	csv := flag.String("csv", "", "also write raw curve data as CSV to this file")
	flag.Parse()

	switch *fig {
	case "1a":
		res := experiments.RunFig1a(*days)
		res.Print(os.Stdout)
		if *csv != "" {
			writeCSV(*csv, func(f *os.File) error {
				return experiments.WritePoints(f, "change_pct", "ccdf", res.CCDF)
			})
		}
	case "1b":
		res, err := experiments.RunFig1b(*days, *stride)
		if err != nil {
			log.Fatal(err)
		}
		res.Print(os.Stdout)
	case "2a":
		res, err := experiments.RunFig1b(*days, *stride)
		if err != nil {
			log.Fatal(err)
		}
		res.PrintFig2a(os.Stdout)
	case "2b":
		res, err := experiments.RunFig2b(*days, *stride, 2, 12)
		if err != nil {
			log.Fatal(err)
		}
		res.Print(os.Stdout)
	case "all":
		experiments.RunFig1a(*days).Print(os.Stdout)
		fmt.Println()
		fb, err := experiments.RunFig1b(*days, *stride)
		if err != nil {
			log.Fatal(err)
		}
		fb.Print(os.Stdout)
		fmt.Println()
		fb.PrintFig2a(os.Stdout)
		fmt.Println()
		f2b, err := experiments.RunFig2b(*days, *stride, 2, 12)
		if err != nil {
			log.Fatal(err)
		}
		f2b.Print(os.Stdout)
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}

func writeCSV(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
