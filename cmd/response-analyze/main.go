// Command response-analyze regenerates the paper's §3 trace analytics:
// Figure 1a (traffic deviation CCDF), Figure 1b (recomputation rate),
// Figure 2a (configuration dominance) and Figure 2b (energy-critical
// path coverage).
//
// Usage:
//
//	response-analyze -fig 1a|1b|2a|2b|all [-days N] [-stride N] [-csv file]
//	response-analyze diff [-topo spec] [-json] [-warm [-warmtol f]] <planA> <planB>
//	response-analyze trace [-tenant t] [-severity sev] [-json] <trace.jsonl|->
//	response-analyze trace -summary <start> | -critical-path <start> [-k N] | -events [filters] <trace.jsonl|->
//
// The diff subcommand compares two plan-artifact files (the format
// response.Plan.WriteTo emits and the controld daemon shelves) and
// prints the structural delta: pair-table changes, the pinned-link
// delta and the always-on power delta. -topo names the topology the
// plans were computed for: a builtin ("geant", "abovenet", "genuity")
// or a generator spec "gen:<family>:<size>:<seed>". With -warm the
// second plan is additionally judged as a warm-started replan of the
// first — the run fails unless it is fingerprint-identical or
// power-equal within the tolerance with an exact always-on stage.
//
// The trace subcommand ingests a JSONL event trace (a -trace file from
// response-sim, "-" for stdin, or a multi-tenant stream captured from
// controld's /events) into an in-memory trace store and answers the
// progressive-disclosure queries: the default mode lists search
// windows (triage first, never the whole trace), -summary drills into
// one window's affected links, -critical-path ranks the window's
// links by energy-criticality (HITS over the event→link incidence,
// seeded with utilization at failure time), and -events retrieves
// individual events. See DESIGN.md §11.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"response"
	"response/experiments"
	"response/internal/topogen"
	"response/internal/verify"
	"response/topology"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	fig := flag.String("fig", "all", "figure to regenerate: 1a, 1b, 2a, 2b or all")
	days := flag.Int("days", 4, "trace length in days (paper: 15 for GÉANT, 8 for the DC)")
	stride := flag.Int("stride", 2, "interval sub-sampling stride for replays")
	csv := flag.String("csv", "", "also write raw curve data as CSV to this file")
	flag.Parse()

	switch *fig {
	case "1a":
		res := experiments.RunFig1a(*days)
		res.Print(os.Stdout)
		if *csv != "" {
			writeCSV(*csv, func(f *os.File) error {
				return experiments.WritePoints(f, "change_pct", "ccdf", res.CCDF)
			})
		}
	case "1b":
		res, err := experiments.RunFig1b(*days, *stride)
		if err != nil {
			log.Fatal(err)
		}
		res.Print(os.Stdout)
	case "2a":
		res, err := experiments.RunFig1b(*days, *stride)
		if err != nil {
			log.Fatal(err)
		}
		res.PrintFig2a(os.Stdout)
	case "2b":
		res, err := experiments.RunFig2b(*days, *stride, 2, 12)
		if err != nil {
			log.Fatal(err)
		}
		res.Print(os.Stdout)
	case "all":
		experiments.RunFig1a(*days).Print(os.Stdout)
		fmt.Println()
		fb, err := experiments.RunFig1b(*days, *stride)
		if err != nil {
			log.Fatal(err)
		}
		fb.Print(os.Stdout)
		fmt.Println()
		fb.PrintFig2a(os.Stdout)
		fmt.Println()
		f2b, err := experiments.RunFig2b(*days, *stride, 2, 12)
		if err != nil {
			log.Fatal(err)
		}
		f2b.Print(os.Stdout)
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}

// runDiff implements `response-analyze diff <a> <b>`.
func runDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	topoSpec := fs.String("topo", "geant",
		`topology the plans were computed for: builtin name or "gen:<family>:<size>:<seed>"`)
	asJSON := fs.Bool("json", false, "emit the diff as JSON instead of the table")
	warm := fs.Bool("warm", false,
		"judge <planB> as a warm-started replan of <planA>: report fingerprint identity or power-equality within -warmtol")
	warmTol := fs.Float64("warmtol", 0, "warm-start power tolerance for -warm (0 = the default 5%)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 2 {
		log.Fatalf("usage: response-analyze diff [-topo spec] [-json] [-warm [-warmtol f]] <planA> <planB>")
	}
	g, err := resolveTopo(*topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	a := readPlanFile(fs.Arg(0), g)
	b := readPlanFile(fs.Arg(1), g)
	d, err := response.DiffPlans(a, b)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			log.Fatal(err)
		}
		if *warm {
			printWarmVerdict(os.Stdout, g, a, b, *warmTol)
		}
		return
	}
	d.Print(os.Stdout)
	if *warm {
		printWarmVerdict(os.Stdout, g, a, b, *warmTol)
	}
}

// printWarmVerdict applies the warm-start differential oracle: planB
// passes as a warm replan of planA if it is fingerprint-identical or
// power-equal within the tolerance with an exact always-on stage.
func printWarmVerdict(w *os.File, g *topology.Topology, a, b *response.Plan, tol float64) {
	rep, identical := verify.DiffWarmStart(g, a, b, tol)
	switch {
	case identical:
		fmt.Fprintf(w, "warm-start: fingerprint-identical (%016x)\n", b.Fingerprint())
	case rep.Ok():
		fmt.Fprintf(w, "warm-start: power-equal within tolerance (always-on stage exact)\n")
	default:
		fmt.Fprintf(w, "warm-start: INCOMPATIBLE\n")
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "  %s\n", v)
		}
		os.Exit(1)
	}
}

// resolveTopo parses the -topo spec.
func resolveTopo(spec string) (*topology.Topology, error) {
	switch spec {
	case "geant":
		return topology.NewGeant(), nil
	case "abovenet":
		return topology.NewAbovenet(), nil
	case "genuity":
		return topology.NewGenuity(), nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 4 || parts[0] != "gen" {
		return nil, fmt.Errorf(`unknown -topo %q: want a builtin (geant, abovenet, genuity) or "gen:<family>:<size>:<seed>"`, spec)
	}
	size, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("-topo %q: bad size: %v", spec, err)
	}
	seed, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("-topo %q: bad seed: %v", spec, err)
	}
	inst, err := topogen.Generate(topogen.Config{
		Family: topogen.Family(parts[1]), Size: size, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return inst.Topo, nil
}

func readPlanFile(path string, g *topology.Topology) *response.Plan {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	plan, err := response.ReadPlanFrom(f, g)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return plan
}

func writeCSV(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
