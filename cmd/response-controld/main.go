// Command response-controld runs the response module's multi-tenant
// planning-as-a-service daemon: register topologies as tenants, submit
// asynchronous plan jobs, shelve and diff versioned plan artifacts,
// promote and roll back plans through each tenant's lifecycle manager,
// and stream every tenant's event trace — all over a REST/JSON API.
//
// Usage:
//
//	response-controld [-listen addr] [-workers N] [-max-artifacts N]
//
// The daemon prints the bound address on startup (use -listen
// 127.0.0.1:0 for an ephemeral port) and drains gracefully on SIGINT
// or SIGTERM: new mutations are refused, queued and running plan jobs
// are canceled, tenant loops stop, event streams end, and in-flight
// HTTP requests get a shutdown grace before the process exits.
//
// Quickstart (see DESIGN.md §9 for the full API):
//
//	curl -s -X POST localhost:8980/v1/tenants -d '{
//	  "name": "edge1",
//	  "topology": {"gen": {"family": "fattree", "size": 4, "seed": 7}}
//	}'
//	curl -s -X POST localhost:8980/v1/tenants/edge1/jobs
//	curl -s localhost:8980/v1/tenants/edge1/jobs
//	curl -s -X POST localhost:8980/v1/tenants/edge1/promote \
//	     -d '{"artifact": "<digest from the job>"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"response/controld"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8980", "listen address (host:port; port 0 picks an ephemeral port)")
	workers := flag.Int("workers", 4, "concurrent plan-job slots")
	maxArtifacts := flag.Int("max-artifacts", 8, "per-tenant artifact retention")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace for in-flight HTTP requests")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("response-controld: listen %s: %v", *listen, err)
	}
	srv := controld.New(controld.Opts{Workers: *workers, MaxArtifacts: *maxArtifacts})
	httpSrv := &http.Server{Handler: srv.Handler()}

	fmt.Printf("response-controld listening on http://%s\n", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("response-controld: %v: draining", sig)
		// Drain the control plane first (cancel jobs, stop tenants, end
		// event streams), then give in-flight HTTP requests the grace.
		srv.Drain(context.Background()) //nolint:errcheck // background ctx never errs
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("response-controld: shutdown: %v", err)
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("response-controld: serve: %v", err)
	}
	<-done
	log.Printf("response-controld: clean shutdown")
}
