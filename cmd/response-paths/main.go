// Command response-paths precomputes and prints the REsPoNse routing
// tables for a topology: the always-on, on-demand and failover paths of
// every origin-destination pair, plus the always-on element set and
// tunnel accounting relevant to deployment (§4.5).
//
// Usage:
//
//	response-paths -topo geant|abovenet|genuity|pop-access|fattree4|fig3
//	               [-n 3] [-beta 0] [-mode stress|ospf|heuristic] [-pairs 5]
package main

import (
	"flag"
	"fmt"
	"log"

	"response/internal/core"
	"response/internal/mcf"
	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

func main() {
	name := flag.String("topo", "geant", "topology: geant, abovenet, genuity, pop-access, fattree4, fig3")
	n := flag.Int("n", 3, "number of energy-critical paths per pair")
	beta := flag.Float64("beta", 0, "latency bound β (>0 enables REsPoNse-lat)")
	mode := flag.String("mode", "stress", "on-demand mode: stress, ospf, heuristic")
	showPairs := flag.Int("pairs", 5, "number of pairs to print in full")
	flag.Parse()

	t, err := buildTopo(*name)
	if err != nil {
		log.Fatal(err)
	}
	model := power.Cisco12000{}
	opts := core.PlanOpts{Model: model, N: *n, Beta: *beta}
	switch *mode {
	case "stress":
		opts.Mode = core.ModeStress
	case "ospf":
		opts.Mode = core.ModeOSPF
	case "heuristic":
		opts.Mode = core.ModeHeuristic
		base := traffic.Gravity(t, traffic.GravityOpts{TotalRate: 1})
		scale := mcf.MaxFeasibleScale(t, base, mcf.RouteOpts{}, 0.02)
		opts.PeakTM = base.Scale(scale * 0.9)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	tables, err := core.Plan(t, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s\nvariant:  %s\n", t, tables.Variant)
	r, l := tables.AlwaysOnSet.CountOn()
	fmt.Printf("always-on set: %d/%d routers, %d/%d links\n",
		r, t.NumNodes(), l, t.NumLinks())
	fmt.Printf("installed tunnels: %d total, max %d per node (2005-era budget: ≈600)\n",
		tables.TunnelCount(), tables.MaxTunnelsPerNode())
	full := power.FullWatts(t, model)
	aon := power.NetworkWatts(t, model, tables.AlwaysOnSet)
	fmt.Printf("power: full %.1f kW, always-on set %.1f kW (%.0f%%)\n\n",
		full/1000, aon/1000, 100*aon/full)

	keys := tables.PairKeys()
	for i, k := range keys {
		if i >= *showPairs {
			fmt.Printf("... %d more pairs\n", len(keys)-i)
			break
		}
		ps := tables.Pairs[k]
		fmt.Printf("%s -> %s\n", t.Node(k[0]).Name, t.Node(k[1]).Name)
		fmt.Printf("  always-on: %s (%.1f ms)\n",
			ps.AlwaysOn.Format(t), ps.AlwaysOn.Latency(t)*1000)
		for j, p := range ps.OnDemand {
			fmt.Printf("  on-demand[%d]: %s (%.1f ms)\n", j, p.Format(t), p.Latency(t)*1000)
		}
		fmt.Printf("  failover: %s (%.1f ms, %d shared links with always-on)\n",
			ps.Failover.Format(t), ps.Failover.Latency(t)*1000,
			ps.Failover.SharedLinks(t, ps.AlwaysOn))
	}
}

func buildTopo(name string) (*topo.Topology, error) {
	switch name {
	case "geant":
		return topo.NewGeant(), nil
	case "abovenet":
		return topo.NewAbovenet(), nil
	case "genuity":
		return topo.NewGenuity(), nil
	case "pop-access":
		return topo.NewPopAccess(topo.PopAccessOpts{}).Topology, nil
	case "fattree4":
		ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
		if err != nil {
			return nil, err
		}
		return ft.Topology, nil
	case "fig3":
		return topo.NewExample(topo.ExampleOpts{}).Topology, nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
