// Command response-paths precomputes, prints, exports and reloads the
// REsPoNse routing tables of a topology: the always-on, on-demand and
// failover paths of every origin-destination pair, plus the always-on
// element set and tunnel accounting relevant to deployment (§4.5).
//
// Usage:
//
//	response-paths [print] -topo geant|abovenet|genuity|pop-access|fattree4|fig3
//	               [-n 3] [-beta 0] [-mode stress|ospf|heuristic] [-pairs 5]
//	response-paths export -out plan.rplan [same planning flags]
//	response-paths load -in plan.rplan -topo geant [-pairs 5]
//
// export writes the plan in the versioned artifact format
// (response.ArtifactVersion); load installs it against the named
// topology — refusing version skew or a topology mismatch — and prints
// it exactly as print would, demonstrating the paper's compute-once /
// install-anywhere deployment model.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"response"
	"response/topology"
	"response/trafficmatrix"
)

func main() {
	log.SetFlags(0)
	args := os.Args[1:]
	cmd := "print"
	if len(args) > 0 && (args[0] == "print" || args[0] == "export" || args[0] == "load") {
		cmd, args = args[0], args[1:]
	}

	fs := flag.NewFlagSet("response-paths "+cmd, flag.ExitOnError)
	name := fs.String("topo", "geant", "topology: geant, abovenet, genuity, pop-access, fattree4, fig3")
	showPairs := fs.Int("pairs", 5, "number of pairs to print in full")
	var n *int
	var beta *float64
	var mode, out *string
	if cmd != "load" {
		n = fs.Int("n", 3, "number of energy-critical paths per pair")
		beta = fs.Float64("beta", 0, "latency bound β (>0 enables REsPoNse-lat)")
		mode = fs.String("mode", "stress", "on-demand mode: stress, ospf, heuristic")
	}
	if cmd == "export" {
		out = fs.String("out", "plan.rplan", "artifact file to write")
	}
	var in *string
	if cmd == "load" {
		in = fs.String("in", "plan.rplan", "artifact file to read")
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		log.Fatalf("unexpected arguments %q (subcommands go first: response-paths %s ... )",
			fs.Args(), cmd)
	}

	t, err := buildTopo(*name)
	if err != nil {
		log.Fatal(err)
	}

	var plan *response.Plan
	if cmd == "load" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		plan, err = response.ReadPlanFrom(f, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s (fingerprint %016x)\n", *in, plan.Fingerprint())
	} else {
		opts := []response.Option{
			response.WithPaths(*n),
			response.WithDelayBound(*beta),
		}
		switch *mode {
		case "stress":
			opts = append(opts, response.WithMode(response.ModeStress))
		case "ospf":
			opts = append(opts, response.WithMode(response.ModeOSPF))
		case "heuristic":
			base := trafficmatrix.Gravity(t, trafficmatrix.GravityOpts{TotalRate: 1})
			scale := response.MaxRoutableScale(t, base)
			opts = append(opts,
				response.WithMode(response.ModeHeuristic),
				response.WithPeakMatrix(base.Scale(scale*0.9)))
		default:
			log.Fatalf("unknown mode %q", *mode)
		}
		plan, err = response.NewPlanner(opts...).Plan(context.Background(), t)
		if err != nil {
			log.Fatal(err)
		}
	}

	if cmd == "export" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		nbytes, err := plan.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d bytes, format v%d, fingerprint %016x\n",
			*out, nbytes, response.ArtifactVersion, plan.Fingerprint())
		return
	}

	printPlan(t, plan, *showPairs)
}

func printPlan(t *topology.Topology, plan *response.Plan, showPairs int) {
	model := response.Cisco12000{}
	fmt.Printf("topology: %s\nvariant:  %s\n", t, plan.Variant())
	r, l := plan.AlwaysOnSet().CountOn()
	fmt.Printf("always-on set: %d/%d routers, %d/%d links\n",
		r, t.NumNodes(), l, t.NumLinks())
	fmt.Printf("installed tunnels: %d total, max %d per node (2005-era budget: ≈600)\n",
		plan.TunnelCount(), plan.MaxTunnelsPerNode())
	full := response.FullWatts(t, model)
	aon := response.NetworkWatts(t, model, plan.AlwaysOnSet())
	fmt.Printf("power: full %.1f kW, always-on set %.1f kW (%.0f%%)\n\n",
		full/1000, aon/1000, 100*aon/full)

	keys := plan.Pairs()
	for i, k := range keys {
		if i >= showPairs {
			fmt.Printf("... %d more pairs\n", len(keys)-i)
			break
		}
		ps, _ := plan.PathSet(k[0], k[1])
		fmt.Printf("%s -> %s\n", t.Node(k[0]).Name, t.Node(k[1]).Name)
		fmt.Printf("  always-on: %s (%.1f ms)\n",
			ps.AlwaysOn.Format(t), ps.AlwaysOn.Latency(t)*1000)
		for j, p := range ps.OnDemand {
			fmt.Printf("  on-demand[%d]: %s (%.1f ms)\n", j, p.Format(t), p.Latency(t)*1000)
		}
		fmt.Printf("  failover: %s (%.1f ms, %d shared links with always-on)\n",
			ps.Failover.Format(t), ps.Failover.Latency(t)*1000,
			ps.Failover.SharedLinks(t, ps.AlwaysOn))
	}
}

func buildTopo(name string) (*topology.Topology, error) {
	switch name {
	case "geant":
		return topology.NewGeant(), nil
	case "abovenet":
		return topology.NewAbovenet(), nil
	case "genuity":
		return topology.NewGenuity(), nil
	case "pop-access":
		return topology.NewPopAccess(topology.PopAccessOpts{}).Topology, nil
	case "fattree4":
		ft, err := topology.NewFatTree(4, topology.FatTreeOpts{WithHosts: true})
		if err != nil {
			return nil, err
		}
		return ft.Topology, nil
	case "fig3":
		return topology.NewExample(topology.ExampleOpts{}).Topology, nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
