// Package response reproduces "Identifying and Using Energy-Critical
// Paths" (Vasić et al., ACM CoNEXT 2011).
//
// REsPoNse is a framework that precomputes a small number of
// energy-critical paths per origin-destination pair (always-on,
// on-demand, and failover routing tables), installs them once, and uses
// a lightweight online traffic-engineering loop to aggregate traffic on
// always-on paths when demand is low — letting large parts of the
// network sleep — and to activate on-demand paths when demand rises.
//
// The repository layout mirrors the paper's system inventory:
//
//   - internal/topo:     topology model and builders (fat-tree, GÉANT, ...)
//   - internal/power:    router/switch power models
//   - internal/traffic:  traffic matrices, gravity model, synthetic traces
//   - internal/lp:       simplex + branch-and-bound (CPLEX substitute)
//   - internal/mcf:      energy-aware routing engine and heuristics
//   - internal/spf:      shortest-path substrate (Dijkstra, Yen, ECMP)
//   - internal/core:     the REsPoNse path precomputation framework
//   - internal/te:       the REsPoNseTE online component
//   - internal/sim:      discrete-event fluid network simulator
//   - internal/apps:     streaming and web application workloads
//   - internal/analysis: recomputation rate, configuration dominance,
//     energy-critical-path coverage
//
// See DESIGN.md for the full inventory, the design of the incremental
// allocation-free planning engine (workspace Dijkstra, delta-rerouting,
// parallel restarts), and the experiment index that maps each benchmark
// in bench_test.go to its paper figure.
package response
