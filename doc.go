// Package response is the public v1 API of a reproduction of
// "Identifying and Using Energy-Critical Paths" (Vasić et al., ACM
// CoNEXT 2011).
//
// REsPoNse precomputes a small number of energy-critical paths per
// origin-destination pair (always-on, on-demand, and failover routing
// tables), installs them once, and uses a lightweight online
// traffic-engineering loop to aggregate traffic on always-on paths when
// demand is low — letting large parts of the network sleep — and to
// activate on-demand paths when demand rises.
//
// # Planning
//
// A Planner is configured with functional options and produces a Plan:
//
//	plan, err := response.NewPlanner(
//	        response.WithPaths(3),
//	        response.WithMode(response.ModeStress),
//	).Plan(ctx, topology.NewGeant())
//
// Plan honors context cancellation (the optimal-subset restart pool
// selects on ctx and drains promptly) and classifies solver failures
// under the sentinel errors ErrCanceled, ErrInfeasible and
// ErrDelayBound; invalid configurations surface as plain errors before
// planning starts. Planning is deterministic: identical topology,
// options and seed yield bit-identical tables regardless of GOMAXPROCS.
//
// # Warm-started replanning
//
// Replans need not start from scratch: WithWarmStart(prev) seeds every
// subset-search stage from the corresponding stage of a previous plan
// and re-proves only the delta — a criticality-ordered descent under a
// power-regression gate (WithWarmTolerance, default 5%), falling back
// to the cold search whenever the seed is unusable, so warm-starting
// never changes what is plannable. With unchanged inputs the warm plan
// is fingerprint-identical to the cold plan in the capacity-slack
// regime and power-equal within the tolerance otherwise; on the k=14
// fat-tree this turns a ~28 s cold plan into a ~1.7 s replan. A prev
// from the wrong topology is silently ignored (or rejected with
// ErrWarmStartMismatch under WithWarmStartStrict). The lifecycle
// manager warm-starts deviation-triggered replans from the promoted
// plan automatically (lifecycle.WarmHint; disable via Opts.NoWarmStart
// or the policy knob), and controld plan jobs accept a warm_from
// artifact digest. See DESIGN.md §10.
//
// # Plan artifacts
//
// Plans are artifacts, not in-memory side effects: Plan.WriteTo
// serializes the installed tables in a versioned, self-describing
// format and ReadPlanFrom installs them in another process — the
// paper's compute-once-offline, never-recompute-online deployment
// model. An artifact is a fixed 40-byte binary header (magic
// "RESPLAN\n", big-endian format version, topology fingerprint, tables
// fingerprint, payload CRC-32, payload length) followed by a JSON body
// listing every pair's paths as arc-ID sequences; see artifact.go for
// the exact layout and the version policy. Readers verify magic,
// version, checksums and both fingerprints, and re-validate every path
// against the installing topology, so version skew returns
// ErrVersionSkew, a wrong topology returns ErrTopologyMismatch, and
// corruption returns ErrBadArtifact — never a panic. A round trip is
// byte-identical, and a loaded plan drives the online controller and
// the simulator exactly as the freshly computed one.
//
// # Plan lifecycle
//
// Plans are recomputed rarely but not never: response/lifecycle closes
// the loop online. A lifecycle.Manager monitors live demand drift
// against the planned matrix with the paper's §3 deviation statistic,
// replans off the hot path through the context-aware Planner when the
// configured trigger policy fires (relative-deviation threshold,
// hysteresis, minimum interval), stages the result as a versioned plan
// artifact behind fingerprint and power gates, and hot-swaps the
// tables into a running simulate.Controller with zero traffic
// disruption — new levels install as fresh subflows, demand hands over
// only once the new always-on path forwards, and the old tables drain
// before retirement. See DESIGN.md §6.
//
// # Failure model and degraded mode
//
// The control loop is built to be broken: response/faultinject wraps
// the replan and artifact paths with seed-deterministic faults
// (errors, infeasibility, panics, blown deadlines, corrupt or
// truncated artifacts), and the lifecycle manager classifies every
// outcome, retries with decorrelated-jitter backoff, and after
// DegradedAfter consecutive failed cycles pins the all-on table — the
// paper's always-correct fallback made an explicit Degraded state,
// exited on the first successful cycle. On the network side, topogen
// instances carry derived shared-risk link groups (pod fabrics, PoP
// bundles, geometric conduits) and the scenario catalog cuts whole
// groups with statistics-driven cascading failures behind them. See
// DESIGN.md §8.
//
// # Planning as a service
//
// response/controld hosts many independent REsPoNse control loops in
// one long-running daemon (binary: cmd/response-controld) behind a
// REST/JSON management API: register topologies as tenants, submit
// cancellable asynchronous plan jobs against the live demand snapshot,
// shelve results in a content-addressed artifact store with bounded
// retention, diff them with DiffPlans, promote and roll back through
// each tenant's lifecycle manager, patch trigger policies without a
// restart, and stream every tenant's event trace. See DESIGN.md §9.
//
// # Observability
//
// The runtime's JSONL event traces are queryable, not just recordable:
// response/tracestore ingests them (files, stdin, or controld's live
// hub) into an indexed, bounded-memory store serving
// progressive-disclosure incident queries — search severity-classified
// windows, drill into one window's per-link summary, rank the window's
// links by energy-criticality (the planner's HITS kernel over the
// event→link incidence, seeded with utilization at failure time), and
// only then fetch raw events. The same queries serve over HTTP from
// controld and from the response-analyze trace subcommand. Runtime
// counters (response/metrics) meter the TE, simulator and lifecycle
// hot paths with zero-allocation atomics — nil disables metering —
// and render in Prometheus text format, per tenant, on controld's
// /metrics. See DESIGN.md §11.
//
// # Companion packages
//
//   - response/topology:      network model and builders (fat-tree, GÉANT, ...)
//   - response/topogen:       seed-deterministic synthetic topology/workload generators
//   - response/trafficmatrix: demand matrices, gravity model, synthetic traces
//   - response/simulate:      discrete-event simulator + REsPoNseTE controller
//   - response/lifecycle:     deviation-triggered replanning + table hot-swap
//   - response/faultinject:   seed-deterministic control-plane fault injection
//   - response/controld:      multi-tenant planning-as-a-service daemon
//   - response/tracestore:    indexed trace store + energy-critical-path queries
//   - response/metrics:       zero-allocation runtime counters + Prometheus text
//   - response/experiments:   one entry point per reproduced paper figure
//
// Correctness is property-based, not only pinned: response/topogen
// generates structurally diverse networks (fat-tree, Waxman, ring,
// torus, two-tier ISP) with matched gravity workloads, and the
// internal verification harness checks planner and runtime invariants
// — flow conservation, capacity retention, delay bounds, always-on
// connectivity, power ≤ all-on — plus incremental-vs-reference
// differential oracles on every generated instance (DESIGN.md §7).
//
// The implementation lives under internal/; the public packages are
// thin, alias-based facades over it, so the engine can keep evolving
// without breaking consumers. See DESIGN.md for the architecture of the
// incremental allocation-free planning engine and the experiment index
// that maps each benchmark in bench_test.go to its paper figure.
package response
