// Package tracestore is the public surface of the response module's
// trace store: an indexed, bounded-memory store over the runtime's
// JSONL event traces (simulate.EventWriter streams, recorded files, or
// controld's live per-tenant hub) serving progressive-disclosure
// incident queries — search windows, per-link window summaries,
// HITS-ranked energy-critical paths, and individual events.
//
//	s := tracestore.New(tracestore.Opts{})
//	s.Ingest(file)
//	for _, w := range s.Windows(tracestore.WindowQuery{MinSeverity: tracestore.SevCritical}) {
//	    cp := s.CriticalPathQuery(w.Tenant, w.Start, 10)
//	    ...
//	}
//
// It is a thin re-export layer over the module's internal store; see
// DESIGN.md §11 for the architecture, the query tiers and the
// criticality scoring, and cmd/response-analyze's trace subcommand for
// the CLI.
package tracestore

import (
	itr "response/internal/tracestore"
)

// Core store types.
type (
	// Store is the indexed, bounded-memory trace store: one ingest
	// goroutine, any number of query goroutines.
	Store = itr.Store
	// Opts parameterizes a Store: event-ring bound, per-tenant window
	// bound and search-window width.
	Opts = itr.Opts
	// Stats reports the store's bookkeeping counters.
	Stats = itr.Stats
)

// Query and result types, one pair per disclosure tier.
type (
	// Severity is a window's triage tier.
	Severity = itr.Severity
	// WindowQuery filters the tier-1 window search.
	WindowQuery = itr.WindowQuery
	// WindowSummary is one tier-1 search result.
	WindowSummary = itr.WindowSummary
	// WindowDetail is the tier-2 drill-down of one window.
	WindowDetail = itr.WindowDetail
	// LinkSummary is one affected link in a tier-2 drill-down.
	LinkSummary = itr.LinkSummary
	// CriticalPath is the tier-3 answer: links ranked by
	// energy-criticality.
	CriticalPath = itr.CriticalPath
	// LinkScore is one ranked link of a CriticalPath.
	LinkScore = itr.LinkScore
	// EventQuery filters tier-4 individual event retrieval.
	EventQuery = itr.EventQuery
	// Event is one retrieved event, strings restored, absent actors -1.
	Event = itr.Event
	// DrillQuery addresses one window for the tier-2/3 drill-downs.
	DrillQuery = itr.DrillQuery
)

// Severity tiers.
const (
	SevInfo     = itr.SevInfo
	SevWarn     = itr.SevWarn
	SevCritical = itr.SevCritical
)

// New builds a Store.
func New(opts Opts) *Store { return itr.New(opts) }

// ParseSeverity parses a severity name ("info", "warn", "critical";
// empty means info).
func ParseSeverity(v string) (Severity, bool) { return itr.ParseSeverity(v) }

// ParseWindowQuery builds a tier-1 query from URL parameters: tenant,
// since, until, severity, limit.
func ParseWindowQuery(v map[string][]string) (WindowQuery, error) {
	return itr.ParseWindowQuery(v)
}

// ParseDrillQuery builds a tier-2/3 query from URL parameters: tenant,
// start (required), k.
func ParseDrillQuery(v map[string][]string) (DrillQuery, error) {
	return itr.ParseDrillQuery(v)
}

// ParseEventQuery builds a tier-4 query from URL parameters: tenant,
// span, op, flow, link, since, until, limit.
func ParseEventQuery(v map[string][]string) (EventQuery, error) {
	return itr.ParseEventQuery(v)
}
