// Package simulate is the public dynamic-experiment surface of the
// response module: the discrete-event fluid simulator (link sleep/wake,
// failures, flow rate allocation) and the REsPoNseTE online controller
// that shifts traffic among a plan's installed paths.
//
// It is a thin re-export layer over the module's internal simulator;
// paths come straight from a response.Plan's path sets.
package simulate

import (
	"io"

	"response/internal/scenario"
	"response/internal/sim"
	"response/internal/te"
	"response/internal/trace"
	"response/topology"
)

// Simulator types.
type (
	// Simulator is the discrete-event fluid network simulator.
	Simulator = sim.Simulator
	// Opts parameterizes a simulation (wake/sleep delays, failure
	// detection, power model, pinned-on elements).
	Opts = sim.Opts
	// Flow is one origin-destination demand spread over installed paths.
	Flow = sim.Flow
	// Sample is one timestamped rate observation of a flow.
	Sample = sim.Sample
	// LinkPhase is a link's power/forwarding state.
	LinkPhase = sim.LinkPhase
	// Controller is the REsPoNseTE online traffic-engineering agent.
	Controller = te.Controller
	// ControllerOpts parameterizes a Controller (threshold, damping,
	// probe period).
	ControllerOpts = te.Opts
)

// Link power states.
const (
	LinkActive   = sim.LinkActive
	LinkSleeping = sim.LinkSleeping
	LinkWaking   = sim.LinkWaking
	LinkFailed   = sim.LinkFailed
)

// Scenario types: the named large-scale online workloads (diurnal
// replay, flash crowd, correlated failure storm, rolling repair, Click
// failover, deviation-triggered replan with table hot-swap, SRLG
// cascade storm, and the fault-injected chaos run — see
// Scenario.SRLGs/Faults and response/faultinject), each deterministic
// under a seed and runnable with hundreds of thousands of managed
// flows.
type (
	// Scenario configures a scenario run (flow count, duration, seed,
	// flash/storm parameters, allocator mode).
	Scenario = scenario.Config
	// ScenarioResult carries the controller's action counters, its
	// behavioral fingerprint and the delivered fraction.
	ScenarioResult = scenario.Result
	// Replay is a running scenario that benchmarks and long-lived
	// drivers can advance window by window.
	Replay = scenario.Replay
)

// New returns a simulator over t.
func New(t *topology.Topology, opts Opts) *Simulator { return sim.New(t, opts) }

// NewController builds a REsPoNseTE controller over a simulator;
// register flows with Controller.Manage and begin probing with
// Controller.Start.
func NewController(s *Simulator, opts ControllerOpts) *Controller {
	return te.NewController(s, opts)
}

// EventWriter is the opt-in structured JSONL event trace: one JSON
// object per controller decision (probe/shift/wake/evacuate/retarget)
// and lifecycle transition (replan/stage/swap), with jaeger-style span
// fields. Off by default everywhere; when enabled, emission is
// allocation-free in steady state. Wire one into ControllerOpts.Events,
// Scenario.Events or lifecycle Opts.Events.
type EventWriter = trace.EventWriter

// NewEventWriter returns an EventWriter emitting JSONL to w (wrap
// files in a bufio.Writer and flush when done).
func NewEventWriter(w io.Writer) *EventWriter { return trace.NewEventWriter(w) }

// Scenarios lists the runnable scenario names.
func Scenarios() []string { return scenario.Names() }

// RunScenario executes a named scenario preset end to end.
func RunScenario(name string, cfg Scenario) (ScenarioResult, error) {
	return scenario.Run(name, cfg)
}

// NewGeantDiurnalReplay plans GÉANT, installs cfg.Flows managed flows
// with phase-jittered diurnal demands and returns the Replay ready to
// Advance.
func NewGeantDiurnalReplay(cfg Scenario) (*Replay, error) {
	return scenario.NewGeantDiurnal(cfg)
}

// NewDiurnalReplay is NewGeantDiurnalReplay over an arbitrary topology
// — built-in or generated with response/topogen — so the scenario
// catalog (including the lifecycle replan loop) can drive any network.
// endpoints nil selects the deterministic random 70 % of the
// topology's natural endpoints, the paper's §5.1 procedure.
func NewDiurnalReplay(t *topology.Topology, endpoints []topology.NodeID, cfg Scenario) (*Replay, error) {
	return scenario.NewDiurnal(t, endpoints, cfg)
}
