// Package simulate is the public dynamic-experiment surface of the
// response module: the discrete-event fluid simulator (link sleep/wake,
// failures, flow rate allocation) and the REsPoNseTE online controller
// that shifts traffic among a plan's installed paths.
//
// It is a thin re-export layer over the module's internal simulator;
// paths come straight from a response.Plan's path sets.
package simulate

import (
	"response/internal/sim"
	"response/internal/te"
	"response/topology"
)

// Simulator types.
type (
	// Simulator is the discrete-event fluid network simulator.
	Simulator = sim.Simulator
	// Opts parameterizes a simulation (wake/sleep delays, failure
	// detection, power model, pinned-on elements).
	Opts = sim.Opts
	// Flow is one origin-destination demand spread over installed paths.
	Flow = sim.Flow
	// Sample is one timestamped rate observation of a flow.
	Sample = sim.Sample
	// LinkPhase is a link's power/forwarding state.
	LinkPhase = sim.LinkPhase
	// Controller is the REsPoNseTE online traffic-engineering agent.
	Controller = te.Controller
	// ControllerOpts parameterizes a Controller (threshold, damping,
	// probe period).
	ControllerOpts = te.Opts
)

// Link power states.
const (
	LinkActive   = sim.LinkActive
	LinkSleeping = sim.LinkSleeping
	LinkWaking   = sim.LinkWaking
	LinkFailed   = sim.LinkFailed
)

// New returns a simulator over t.
func New(t *topology.Topology, opts Opts) *Simulator { return sim.New(t, opts) }

// NewController builds a REsPoNseTE controller over a simulator;
// register flows with Controller.Manage and begin probing with
// Controller.Start.
func NewController(s *Simulator, opts ControllerOpts) *Controller {
	return te.NewController(s, opts)
}
