package response_test

// Facade-level planning tests: the public API must be a pure
// re-layering — bit-identical tables to the internal planner — and its
// context plumbing must cancel promptly without leaking goroutines.

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"response"
	"response/topology"
)

// TestPlanFingerprints pins the exact planner output on the named
// topologies when planned through the public facade. The constants are
// the same ones internal/core's TestPlanFingerprints pins against the
// seed planner: the v1 API is a re-layering, not a re-implementation.
func TestPlanFingerprints(t *testing.T) {
	ft, err := topology.NewFatTree(4, topology.FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		topo    *topology.Topology
		want    uint64
		tunnels int
	}{
		{"geant", topology.NewGeant(), 6569351175397795390, 1518},
		{"example", topology.NewExample(topology.ExampleOpts{}).Topology, 2457213049051472932, 216},
		{"fattree4", ft.Topology, 9603934104780153607, 720},
	}
	planner := response.NewPlanner()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan, err := planner.Plan(context.Background(), tc.topo)
			if err != nil {
				t.Fatal(err)
			}
			if got := plan.Fingerprint(); got != tc.want {
				t.Errorf("plan fingerprint = %d, want %d (facade output drifted from seed)", got, tc.want)
			}
			if n := plan.TunnelCount(); n != tc.tunnels {
				t.Errorf("tunnel count = %d, want %d", n, tc.tunnels)
			}
		})
	}
}

// TestPlanCanceled covers the ctx plumbing: a canceled context aborts
// the restart pool promptly with ErrCanceled and leaves no goroutine
// behind.
func TestPlanCanceled(t *testing.T) {
	g := topology.NewGeant()
	planner := response.NewPlanner()

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := planner.Plan(ctx, g)
		if !errors.Is(err, response.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	})

	t.Run("mid-restart", func(t *testing.T) {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan error, 1)
		go func() {
			_, err := planner.Plan(ctx, g)
			done <- err
		}()
		// A full GÉANT plan takes >100 ms; 10 ms lands inside the first
		// always-on restart pool.
		time.Sleep(10 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, response.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Plan did not return promptly after cancellation")
		}
		// The worker pool must have drained; allow the runtime a moment
		// to retire finished goroutines.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
			time.Sleep(10 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Errorf("goroutine leak after canceled Plan: %d before, %d after", before, after)
		}
	})

	t.Run("mid-plan-deterministic", func(t *testing.T) {
		// Cancel from the progress callback right after the always-on
		// stage: the next on-demand round must observe it.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_, err := planner.Plan(ctx, g, response.WithProgress(func(p response.PlanProgress) {
			if p.Stage == "always-on" {
				cancel()
			}
		}))
		if !errors.Is(err, response.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	})
}

// TestPlannerProgressAndTrace exercises WithProgress and WithTrace: the
// stage sequence is complete and in order, and the trace option
// replaces the old package-level debug flag.
func TestPlannerProgressAndTrace(t *testing.T) {
	ex := topology.NewExample(topology.ExampleOpts{})
	var stages []string
	var trace bytes.Buffer
	plan, err := response.NewPlanner().Plan(context.Background(), ex.Topology,
		response.WithProgress(func(p response.PlanProgress) {
			stages = append(stages, p.Stage)
			if p.Total != 4 {
				t.Errorf("Total = %d, want 4 for N=3", p.Total)
			}
		}),
		response.WithTrace(&trace),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"always-on", "on-demand", "failover", "done"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
	if !strings.Contains(trace.String(), "onDemandStress") {
		t.Errorf("trace output missing planner tracing, got %q", trace.String())
	}
	if plan.Variant() != "REsPoNse" {
		t.Errorf("variant = %q", plan.Variant())
	}
}

// TestExplicitZeroOptions: an explicit zero passed to an option must
// not be silently coerced back to the internal default — zero restarts
// and zero stress exclusion are honored, and a non-positive utilization
// ceiling is rejected as a configuration error.
func TestExplicitZeroOptions(t *testing.T) {
	ex := topology.NewExample(topology.ExampleOpts{})
	if _, err := response.NewPlanner(response.WithRestarts(0), response.WithStressFactor(0)).
		Plan(context.Background(), ex.Topology); err != nil {
		t.Fatalf("zero restarts / zero stress exclusion must plan, got %v", err)
	}
	for _, u := range []float64{0, -0.5} {
		if _, err := response.NewPlanner(response.WithMaxUtil(u)).
			Plan(context.Background(), ex.Topology); err == nil {
			t.Errorf("WithMaxUtil(%g) must fail, got nil error", u)
		}
	}
}

// TestPlannerOptionLayering checks that per-call options override the
// planner's base options.
func TestPlannerOptionLayering(t *testing.T) {
	ex := topology.NewExample(topology.ExampleOpts{})
	planner := response.NewPlanner(response.WithPaths(3), response.WithSeed(1))
	p3, err := planner.Plan(context.Background(), ex.Topology)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := planner.Plan(context.Background(), ex.Topology, response.WithPaths(4))
	if err != nil {
		t.Fatal(err)
	}
	k := p3.Pairs()[0]
	ps3, _ := p3.PathSet(k[0], k[1])
	ps4, _ := p4.PathSet(k[0], k[1])
	if ps3.NumLevels() != 3 || ps4.NumLevels() != 4 {
		t.Errorf("levels = %d and %d, want 3 and 4", ps3.NumLevels(), ps4.NumLevels())
	}
}
