package response_test

// Godoc Example functions for the public v1 API. go test compiles and
// runs them, so they double as living documentation: if the API or the
// planner's output drifts, these fail.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"

	"response"
	"response/topology"
)

// ExamplePlanner plans the paper's Figure 3 topology with the default
// configuration: N=3 energy-critical paths per pair, stress-mode
// on-demand computation, Cisco 12000-class power model.
func ExamplePlanner() {
	ex := topology.NewExample(topology.ExampleOpts{})
	planner := response.NewPlanner(
		response.WithPaths(3),
		response.WithModel(response.Cisco12000{}),
	)
	plan, err := planner.Plan(context.Background(), ex.Topology)
	if err != nil {
		log.Fatal(err)
	}
	ps, _ := plan.PathSet(ex.A, ex.K)
	fmt.Println("variant:", plan.Variant())
	fmt.Println("installed tunnels:", plan.TunnelCount())
	fmt.Println("levels A->K:", ps.NumLevels())
	// Output:
	// variant: REsPoNse
	// installed tunnels: 216
	// levels A->K: 3
}

// ExamplePlan_WriteTo exports a plan in the versioned artifact format
// and installs it again: the round trip preserves the tables exactly,
// and loading against the wrong topology is refused.
func ExamplePlan_WriteTo() {
	ex := topology.NewExample(topology.ExampleOpts{})
	plan, err := response.NewPlanner().Plan(context.Background(), ex.Topology)
	if err != nil {
		log.Fatal(err)
	}

	var artifact bytes.Buffer
	if _, err := plan.WriteTo(&artifact); err != nil {
		log.Fatal(err)
	}
	loaded, err := response.ReadPlanFrom(bytes.NewReader(artifact.Bytes()), ex.Topology)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables preserved:", loaded.Fingerprint() == plan.Fingerprint())

	_, err = response.ReadPlanFrom(bytes.NewReader(artifact.Bytes()), topology.NewGeant())
	fmt.Println("wrong topology refused:", errors.Is(err, response.ErrTopologyMismatch))
	// Output:
	// tables preserved: true
	// wrong topology refused: true
}
