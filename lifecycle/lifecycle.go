// Package lifecycle is the public plan-lifecycle surface of the
// response module: a Manager that closes the REsPoNse control loop by
// monitoring live demand drift against the planned matrix, replanning
// in the background through the context-aware response.Planner, and
// hot-swapping the staged tables into a running simulate.Controller
// with zero traffic disruption.
//
// It is a thin re-export layer over the module's internal lifecycle
// manager; see DESIGN.md §6 for the trigger policy, the swap state
// machine and the rollback rules.
//
//	mgr := lifecycle.New(sim, ctrl, plan, replan, lifecycle.Opts{})
//	mgr.Start()                   // monitors, replans, swaps
//	...
//	m := mgr.Metrics()            // replans, swaps, migrated flows
//	artifact := mgr.StagedArtifact() // the versioned plan artifact
package lifecycle

import (
	"context"

	"response"
	ilc "response/internal/lifecycle"
	"response/simulate"
)

// Core lifecycle types.
type (
	// Manager monitors deviation, replans off the hot path and
	// hot-swaps plan tables into a running controller.
	Manager = ilc.Manager
	// Opts parameterizes a Manager: trigger policy (deviation
	// threshold, spread, hysteresis, min-interval), replan latency or
	// background mode, drain grace, power-gate model and event trace.
	Opts = ilc.Opts
	// State is the manager's lifecycle state.
	State = ilc.State
	// Metrics are the manager's cumulative counters.
	Metrics = ilc.Metrics
	// Policy is the hot-patchable subset of Opts (trigger thresholds,
	// replan deadline, retry backoff); apply one to a running Manager
	// with SetPolicy — the controld daemon's config-PATCH path.
	Policy = ilc.Policy
	// ReplanFunc computes a candidate plan for a live demand matrix.
	ReplanFunc = ilc.ReplanFunc
)

// Lifecycle states.
const (
	StateIdle       = ilc.StateIdle
	StateReplanning = ilc.StateReplanning
	StateSwapping   = ilc.StateSwapping
	StateDegraded   = ilc.StateDegraded
)

// ReplanBudget returns the simulated-seconds compute budget the
// manager attached to a replan context (Opts.ReplanDeadline), if any.
// Fault injectors and deadline-aware planners read it to model
// slowness on the simulated clock.
func ReplanBudget(ctx context.Context) (float64, bool) { return ilc.ReplanBudget(ctx) }

// WarmHint returns the warm-start seed the manager attached to a
// replan context — the promoted plan at launch time — if any. A
// ReplanFunc passes it to response.WithWarmStart so recomputations
// re-prove only the delta; Opts.NoWarmStart (or the hot-patchable
// Policy knob) suppresses the hint.
func WarmHint(ctx context.Context) (*response.Plan, bool) { return ilc.WarmHint(ctx) }

// New builds a Manager over a running simulator/controller pair.
// current is the installed plan; replan computes candidate
// replacements (typically a response.Planner call with the live
// matrix as WithLowMatrix). Call Start once flows are managed and
// their initial demands set.
func New(s *simulate.Simulator, c *simulate.Controller, current *response.Plan, replan ReplanFunc, opts Opts) *Manager {
	return ilc.New(s, c, current, replan, opts)
}
