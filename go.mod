module response

go 1.24
