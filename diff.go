package response

import (
	"fmt"
	"io"
	"sort"

	"response/internal/power"
	"response/internal/topo"
)

// PairChange classifies how one origin-destination pair's installed
// tables differ between two plans.
type PairChange string

// Pair change classes.
const (
	// PairAdded: the pair has installed paths only in the newer plan.
	PairAdded PairChange = "added"
	// PairRemoved: the pair has installed paths only in the older plan.
	PairRemoved PairChange = "removed"
	// PairChanged: the pair exists in both plans with different paths.
	PairChanged PairChange = "changed"
)

// PairDiff is one pair's table change between two plans.
type PairDiff struct {
	O      NodeID     `json:"o"`
	D      NodeID     `json:"d"`
	Change PairChange `json:"change"`
	// For a changed pair, which table levels moved.
	AlwaysOn bool `json:"always_on,omitempty"`
	OnDemand bool `json:"on_demand,omitempty"`
	Failover bool `json:"failover,omitempty"`
}

// PlanDiff is the structural delta between two plans of one topology:
// what a hot-swap from A to B would touch. The lifecycle manager
// migrates exactly the flows of the changed/added pairs, so
// PairsChanged bounds swap cost; the pinned-set delta is the set of
// links whose power state the swap flips; the power delta prices the
// always-on baseline difference.
type PlanDiff struct {
	// Identical reports fingerprint equality — the paper's common case
	// (recomputation without redeployment).
	Identical bool `json:"identical"`
	// FingerprintA/B are the two plans' table fingerprints.
	FingerprintA uint64 `json:"fingerprint_a"`
	FingerprintB uint64 `json:"fingerprint_b"`
	VariantA     string `json:"variant_a"`
	VariantB     string `json:"variant_b"`
	// Pair population and delta counts.
	PairsA         int `json:"pairs_a"`
	PairsB         int `json:"pairs_b"`
	PairsAdded     int `json:"pairs_added"`
	PairsRemoved   int `json:"pairs_removed"`
	PairsChanged   int `json:"pairs_changed"`
	PairsUnchanged int `json:"pairs_unchanged"`
	// Pairs lists every added/removed/changed pair in deterministic
	// (o, d) order; unchanged pairs are omitted.
	Pairs []PairDiff `json:"pairs,omitempty"`
	// Pinned-set delta: links entering (woken by) and leaving (released
	// to sleep by) the always-on set, ascending LinkID.
	PinnedAddedLinks   []LinkID `json:"pinned_added_links,omitempty"`
	PinnedRemovedLinks []LinkID `json:"pinned_removed_links,omitempty"`
	// Always-on baseline power of each plan under the Cisco12000 model
	// (every pinned element powered, nothing else), and B−A.
	WattsA     float64 `json:"watts_a"`
	WattsB     float64 `json:"watts_b"`
	WattsDelta float64 `json:"watts_delta"`
}

// Summary renders the diff as one human-readable line.
func (d *PlanDiff) Summary() string {
	if d.Identical {
		return fmt.Sprintf("plans identical (fingerprint %016x)", d.FingerprintA)
	}
	return fmt.Sprintf(
		"%d pairs added, %d removed, %d changed, %d unchanged; pinned links +%d/-%d; power %+.1f W",
		d.PairsAdded, d.PairsRemoved, d.PairsChanged, d.PairsUnchanged,
		len(d.PinnedAddedLinks), len(d.PinnedRemovedLinks), d.WattsDelta)
}

// Print writes the diff as a small table.
func (d *PlanDiff) Print(w io.Writer) {
	fmt.Fprintf(w, "plan A %016x (%s, %d pairs)\n", d.FingerprintA, d.VariantA, d.PairsA)
	fmt.Fprintf(w, "plan B %016x (%s, %d pairs)\n", d.FingerprintB, d.VariantB, d.PairsB)
	if d.Identical {
		fmt.Fprintln(w, "identical tables")
		return
	}
	fmt.Fprintf(w, "pairs: %d added, %d removed, %d changed, %d unchanged\n",
		d.PairsAdded, d.PairsRemoved, d.PairsChanged, d.PairsUnchanged)
	fmt.Fprintf(w, "always-on links: %d woken, %d released\n",
		len(d.PinnedAddedLinks), len(d.PinnedRemovedLinks))
	fmt.Fprintf(w, "always-on power: %.1f W -> %.1f W (%+.1f W)\n",
		d.WattsA, d.WattsB, d.WattsDelta)
}

// DiffPlans computes the structural delta from plan a to plan b. Both
// plans must be for the same topology (same fingerprint); otherwise
// the diff would compare unrelated node IDs and the call fails with
// ErrTopologyMismatch. Neither plan is modified; the result is
// deterministic and JSON-serializable (the controld artifact API and
// the response-analyze diff subcommand both emit it).
func DiffPlans(a, b *Plan) (*PlanDiff, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("response: DiffPlans: nil plan")
	}
	ta, tb := a.Topology(), b.Topology()
	if ta.Fingerprint() != tb.Fingerprint() {
		return nil, fmt.Errorf("%w: plan A is for %q (%016x), plan B for %q (%016x)",
			ErrTopologyMismatch, ta.Name, ta.Fingerprint(), tb.Name, tb.Fingerprint())
	}

	d := &PlanDiff{
		FingerprintA: a.Fingerprint(),
		FingerprintB: b.Fingerprint(),
		VariantA:     a.Variant(),
		VariantB:     b.Variant(),
	}
	d.Identical = d.FingerprintA == d.FingerprintB

	keysA, keysB := a.Pairs(), b.Pairs()
	d.PairsA, d.PairsB = len(keysA), len(keysB)

	// Merge the two deterministic pair-key sequences.
	inB := make(map[[2]NodeID]bool, len(keysB))
	for _, k := range keysB {
		inB[k] = true
	}
	for _, k := range keysA {
		psa, _ := a.PathSet(k[0], k[1])
		if !inB[k] {
			d.PairsRemoved++
			d.Pairs = append(d.Pairs, PairDiff{O: k[0], D: k[1], Change: PairRemoved})
			continue
		}
		psb, _ := b.PathSet(k[0], k[1])
		pd := PairDiff{O: k[0], D: k[1], Change: PairChanged}
		pd.AlwaysOn = !psa.AlwaysOn.Equal(psb.AlwaysOn)
		pd.Failover = !psa.Failover.Equal(psb.Failover)
		pd.OnDemand = !samePaths(psa.OnDemand, psb.OnDemand)
		if pd.AlwaysOn || pd.Failover || pd.OnDemand {
			d.PairsChanged++
			d.Pairs = append(d.Pairs, pd)
		} else {
			d.PairsUnchanged++
		}
	}
	inA := make(map[[2]NodeID]bool, len(keysA))
	for _, k := range keysA {
		inA[k] = true
	}
	for _, k := range keysB {
		if !inA[k] {
			d.PairsAdded++
			d.Pairs = append(d.Pairs, PairDiff{O: k[0], D: k[1], Change: PairAdded})
		}
	}
	sortPairDiffs(d.Pairs)

	// Pinned-set delta and the always-on baseline power it prices.
	sa, sb := a.AlwaysOnSet(), b.AlwaysOnSet()
	for i := range sb.Link {
		on2 := sb.Link[i]
		var on1 bool
		if i < len(sa.Link) {
			on1 = sa.Link[i]
		}
		if on2 && !on1 {
			d.PinnedAddedLinks = append(d.PinnedAddedLinks, LinkID(i))
		}
	}
	for i := range sa.Link {
		on1 := sa.Link[i]
		var on2 bool
		if i < len(sb.Link) {
			on2 = sb.Link[i]
		}
		if on1 && !on2 {
			d.PinnedRemovedLinks = append(d.PinnedRemovedLinks, LinkID(i))
		}
	}
	model := power.Cisco12000{}
	d.WattsA = power.NetworkWatts(ta, model, sa)
	d.WattsB = power.NetworkWatts(ta, model, sb)
	d.WattsDelta = d.WattsB - d.WattsA
	return d, nil
}

// samePaths reports element-wise path equality.
func samePaths(a, b []topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// sortPairDiffs orders by (O, D).
func sortPairDiffs(pairs []PairDiff) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].O != pairs[j].O {
			return pairs[i].O < pairs[j].O
		}
		return pairs[i].D < pairs[j].D
	})
}
