package response_test

// Generated-topology tests at the facade level: pinned per-family
// instance fingerprints (the topogen analog of TestPlanFingerprints)
// and the metamorphic planning properties — uniform capacity scaling
// changes no installed path, and node relabeling yields isomorphic
// plans — run over 20 generated seeds per seeded family.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"response"
	"response/internal/topogen"
	"response/internal/traffic"
	"response/internal/verify"
	"response/topology"
)

// TestGeneratedFingerprints pins the default instance of every
// generator family, exactly as TestPlanFingerprints pins the planner
// output on the built-in topologies: a drifting constant means the
// generator's output changed and every property pinned on it moved.
func TestGeneratedFingerprints(t *testing.T) {
	cases := []struct {
		family       topogen.Family
		want         uint64
		nodes, links int
	}{
		{topogen.FamilyFatTree, 3242423905968741467, 20, 32},
		{topogen.FamilyWaxman, 15615737204233852716, 20, 40},
		{topogen.FamilyRing, 9899162936889056705, 8, 10},
		{topogen.FamilyTorus, 8326915775939615599, 16, 32},
		{topogen.FamilyISP, 13688632913342657596, 15, 27},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.family), func(t *testing.T) {
			inst, err := topogen.Generate(topogen.Config{Family: tc.family, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if got := inst.Fingerprint(); got != tc.want {
				t.Errorf("instance fingerprint = %d, want %d (generator output drifted)", got, tc.want)
			}
			if n, l := inst.Topo.NumNodes(), inst.Topo.NumLinks(); n != tc.nodes || l != tc.links {
				t.Errorf("topology = %d nodes / %d links, want %d / %d", n, l, tc.nodes, tc.links)
			}
		})
	}
}

// propertyConfigs are the instances the metamorphic properties run
// over: 20 seeds per seeded family at small sizes, plus one instance
// each of the seed-invariant families.
func propertyConfigs() []topogen.Config {
	var out []topogen.Config
	for _, fam := range []topogen.Family{topogen.FamilyWaxman, topogen.FamilyRing, topogen.FamilyISP} {
		size := map[topogen.Family]int{
			topogen.FamilyWaxman: 10,
			topogen.FamilyRing:   8,
			topogen.FamilyISP:    3,
		}[fam]
		for seed := int64(1); seed <= 20; seed++ {
			out = append(out, topogen.Config{Family: fam, Size: size, Seed: seed})
		}
	}
	out = append(out,
		topogen.Config{Family: topogen.FamilyFatTree, Size: 4, Seed: 1},
		topogen.Config{Family: topogen.FamilyTorus, Size: 3, Seed: 1},
	)
	return out
}

// planFor plans a topology over the given endpoints with the
// deterministic orderings and a capacity-independent power model, the
// regime in which both metamorphic properties are exact. (With tiered
// line-card power, scaling capacities legitimately changes which
// hardware carries each path, so the scaling property would not hold.)
func planFor(t *testing.T, topo *response.Topology, eps []response.NodeID) *response.Plan {
	t.Helper()
	plan, err := response.NewPlanner(
		response.WithEndpoints(eps),
		response.WithRestarts(0),
		response.WithModel(response.NewCommodityPower(4)),
	).Plan(context.Background(), topo)
	if err != nil {
		t.Fatalf("%s: plan: %v", topo.Name, err)
	}
	return plan
}

// TestCapacityScalingInvariance: multiplying every capacity by a
// constant changes no installed path decision — demand shapes, InvCap
// weights and feasibility thresholds all scale together, so the plan
// must be arc-for-arc identical. The factor is a power of two so that
// every float in the pipeline (gravity shapes, feasibility probes,
// utilization ratios) scales exactly and the equivalence is
// bit-for-bit, not approximate.
func TestCapacityScalingInvariance(t *testing.T) {
	const c = 4.0
	for _, cfg := range propertyConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-%d-s%d", cfg.Family, cfg.Size, cfg.Seed), func(t *testing.T) {
			t.Parallel()
			inst, err := topogen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			scaled := scaleCapacities(inst.Topo, c)
			base := planFor(t, inst.Topo, inst.Endpoints)
			got := planFor(t, scaled, inst.Endpoints)
			for _, k := range base.Pairs() {
				pb, _ := base.PathSet(k[0], k[1])
				pg, ok := got.PathSet(k[0], k[1])
				if !ok {
					t.Fatalf("pair %v missing from scaled plan", k)
				}
				for li, p := range pb.Levels() {
					if !p.Equal(pg.Levels()[li]) {
						t.Fatalf("pair %v level %d: path changed under capacity scaling:\n  %v\nvs %v",
							k, li, p.Arcs, pg.Levels()[li].Arcs)
					}
				}
			}
		})
	}
}

// cloneTopology rebuilds src with identical nodes and, per link, the
// capacities xform returns (keep=false drops the link). The shared
// scaffold of every topology-mutation test in this package.
func cloneTopology(src *topology.Topology, name string,
	xform func(l topology.Link, capAB, capBA float64) (float64, float64, bool)) *topology.Topology {

	out := topology.New(name)
	for _, n := range src.Nodes() {
		out.AddNodeAt(n.Name, n.Kind, n.KmEast, n.KmNorth)
	}
	for _, l := range src.Links() {
		ab, ba := src.Arc(l.AB), src.Arc(l.BA)
		ca, cb, keep := xform(l, ab.Capacity, ba.Capacity)
		if !keep {
			continue
		}
		out.AddAsymLink(l.A, l.B, ca, cb, ab.Latency)
	}
	return out
}

// scaleCapacities rebuilds a topology with every arc capacity
// multiplied by c (latency, layout and ordering untouched).
func scaleCapacities(src *topology.Topology, c float64) *topology.Topology {
	return cloneTopology(src, src.Name+"-scaled",
		func(_ topology.Link, capAB, capBA float64) (float64, float64, bool) {
			return capAB * c, capBA * c, true
		})
}

// TestNodePermutationIsomorphism: relabeling the nodes of an instance
// must yield an isomorphic plan. On the irregular (seeded) families
// the min-power always-on solve reaches the exact same optimum power
// under any labeling; individual path hop counts are equal-cost
// tie-breaks and legitimately label-dependent, so instead of pinning
// them the permuted plan must pass the full invariant checker and
// cover the permuted pair universe level for level. (Highly symmetric
// fabrics — fat-tree, torus — are excluded from the power equality:
// with everything tied, the greedy's label-driven tie-breaking can
// land in different-value local minima, a documented property of the
// Chiaraviglio-style heuristic; see DESIGN.md §7.)
func TestNodePermutationIsomorphism(t *testing.T) {
	for _, cfg := range propertyConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-%d-s%d", cfg.Family, cfg.Size, cfg.Seed), func(t *testing.T) {
			t.Parallel()
			inst, err := topogen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			perm, permuted := permuteNodes(inst.Topo, cfg.Seed)
			base := planFor(t, inst.Topo, inst.Endpoints)
			peps := make([]response.NodeID, len(inst.Endpoints))
			for i, e := range inst.Endpoints {
				peps[i] = perm[e]
			}
			got := planFor(t, permuted, peps)

			symmetric := cfg.Family == topogen.FamilyFatTree || cfg.Family == topogen.FamilyTorus
			model := response.NewCommodityPower(4)
			wb := response.NetworkWatts(inst.Topo, model, base.AlwaysOnSet())
			wg := response.NetworkWatts(permuted, model, got.AlwaysOnSet())
			if !symmetric && wb != wg {
				t.Errorf("always-on power differs under relabeling: %.3f vs %.3f W", wb, wg)
			}
			if base.TunnelCount() != got.TunnelCount() {
				t.Errorf("tunnel count %d vs %d under relabeling", base.TunnelCount(), got.TunnelCount())
			}
			for _, k := range base.Pairs() {
				pb, _ := base.PathSet(k[0], k[1])
				pg, ok := got.PathSet(perm[k[0]], perm[k[1]])
				if !ok {
					t.Fatalf("pair %v missing from permuted plan", k)
				}
				if pb.NumLevels() != pg.NumLevels() {
					t.Fatalf("pair %v: %d levels vs %d", k, pb.NumLevels(), pg.NumLevels())
				}
			}
			if err := verify.CheckTables(permuted, got.Tables(), verify.Opts{
				Model: model,
			}).Err(); err != nil {
				t.Errorf("permuted plan fails the invariant checker: %v", err)
			}
		})
	}
}

// permuteNodes rebuilds a topology under a seeded node relabeling:
// node n becomes perm[n], nodes are added in new-ID order and links in
// lexicographic order of their relabeled endpoints, so the permuted
// build is a legal construction order of the isomorphic graph.
func permuteNodes(src *topology.Topology, seed int64) ([]response.NodeID, *topology.Topology) {
	n := src.NumNodes()
	rng := rand.New(rand.NewSource(seed * 7919))
	perm := make([]response.NodeID, n)
	for i, v := range rng.Perm(n) {
		perm[i] = response.NodeID(v)
	}
	inv := make([]response.NodeID, n)
	for old, new := range perm {
		inv[new] = response.NodeID(old)
	}
	out := topology.New(src.Name + "-perm")
	for newID := 0; newID < n; newID++ {
		old := src.Node(inv[newID])
		out.AddNodeAt(old.Name, old.Kind, old.KmEast, old.KmNorth)
	}
	type edge struct {
		a, b         response.NodeID
		capAB, capBA float64
		latency      float64
	}
	var edges []edge
	for _, l := range src.Links() {
		ab, ba := src.Arc(l.AB), src.Arc(l.BA)
		a, b := perm[l.A], perm[l.B]
		ca, cb := ab.Capacity, ba.Capacity
		if a > b {
			a, b = b, a
			ca, cb = cb, ca
		}
		edges = append(edges, edge{a, b, ca, cb, ab.Latency})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		out.AddAsymLink(e.a, e.b, e.capAB, e.capBA, e.latency)
	}
	return perm, out
}

// TestGeneratedPlanEvaluates closes the loop at the facade: a plan on
// a generated instance evaluates its matched matrix with power at or
// below the all-on network and within the ceiling when nothing
// overflowed.
func TestGeneratedPlanEvaluates(t *testing.T) {
	inst, err := topogen.Generate(topogen.Config{Family: topogen.FamilyWaxman, Size: 14, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := response.NewPlanner(
		response.WithEndpoints(inst.Endpoints),
		response.WithRestarts(0),
	).Plan(context.Background(), inst.Topo)
	if err != nil {
		t.Fatal(err)
	}
	model := response.Cisco12000{}
	ev := plan.Evaluate(lowered(inst.TM, 0.2), model, 1.0)
	if full := response.FullWatts(inst.Topo, model); ev.Watts > full {
		t.Errorf("evaluated power %.1f W exceeds all-on %.1f W", ev.Watts, full)
	}
	if ev.Overloaded == 0 && ev.MaxUtil > 1+1e-9 {
		t.Errorf("placement exceeded ceiling: %.4f", ev.MaxUtil)
	}
}

func lowered(m *traffic.Matrix, f float64) *traffic.Matrix { return m.Scale(f) }
