package response

import (
	"response/internal/core"
	"response/internal/topo"
)

// A Plan is the product of the off-line REsPoNse computation: the
// installed always-on, on-demand and failover routing tables of one
// topology. A plan is computed once, survives process boundaries
// through WriteTo/ReadPlanFrom, and is never recomputed online — the
// paper's deployment model (§4.5).
//
// A Plan is immutable after creation and safe for concurrent use.
type Plan struct {
	topo   *topo.Topology
	tables *core.Tables
}

// Topology returns the topology the plan was computed for.
func (p *Plan) Topology() *Topology { return p.topo }

// Tables exposes the raw installed routing state for advanced callers
// (the experiment harness consumes plans this way).
func (p *Plan) Tables() *Tables { return p.tables }

// Variant labels how the tables were computed, using the paper's figure
// labels ("REsPoNse", "REsPoNse-lat", ...).
func (p *Plan) Variant() string { return p.tables.Variant }

// Pairs returns every origin-destination pair with installed paths, in
// deterministic order.
func (p *Plan) Pairs() [][2]NodeID { return p.tables.PairKeys() }

// PathSet returns the installed paths of (o,d).
func (p *Plan) PathSet(o, d NodeID) (*PathSet, bool) { return p.tables.PathSetFor(o, d) }

// Path returns the level-th installed path of (o,d); out-of-range
// levels clamp to the failover path.
func (p *Plan) Path(o, d NodeID, level PathLevel) Path { return p.tables.Path(o, d, level) }

// AlwaysOnSet returns the set of elements on some always-on path; these
// are never put to sleep.
func (p *Plan) AlwaysOnSet() *ActiveSet { return p.tables.AlwaysOnSet }

// TunnelCount returns the total number of installed paths — the
// quantity the paper's deployment discussion compares against router
// tunnel limits (§4.5).
func (p *Plan) TunnelCount() int { return p.tables.TunnelCount() }

// MaxTunnelsPerNode returns the largest number of installed paths
// originating at any single node.
func (p *Plan) MaxTunnelsPerNode() int { return p.tables.MaxTunnelsPerNode() }

// Fingerprint hashes the complete content of the installed tables into
// a stable 64-bit value. Two plans with equal fingerprints install
// identical paths and an identical always-on element set; artifacts
// embed it as an end-to-end integrity check.
func (p *Plan) Fingerprint() uint64 { return p.tables.Fingerprint() }

// Evaluate places a traffic matrix onto the installed tables the way
// the online controller does at steady state: each demand aggregates
// onto its always-on path while the utilization ceiling maxUtil holds
// and overflows the excess to successive levels. It reports the
// resulting power, routing and per-level usage.
func (p *Plan) Evaluate(m *TrafficMatrix, model PowerModel, maxUtil float64) EvalResult {
	return p.tables.Evaluate(m, model, maxUtil)
}
