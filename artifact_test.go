package response_test

// Artifact-format tests: deterministic byte-identical round trips,
// refusal of every malformed-input class, and the headline guarantee —
// a loaded plan drives the online controller and the simulator exactly
// as the freshly computed one does.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"response"
	"response/simulate"
	"response/topogen"
	"response/topology"
)

func examplePlan(t testing.TB) (*topology.Example, *response.Plan) {
	t.Helper()
	ex := topology.NewExample(topology.ExampleOpts{})
	plan, err := response.NewPlanner().Plan(context.Background(), ex.Topology)
	if err != nil {
		t.Fatal(err)
	}
	return ex, plan
}

func marshalPlan(t testing.TB, p *response.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestArtifactRoundTrip: WriteTo → ReadPlanFrom → WriteTo is
// byte-identical, and the loaded plan carries the same fingerprint,
// variant and tables.
func TestArtifactRoundTrip(t *testing.T) {
	ex, plan := examplePlan(t)
	first := marshalPlan(t, plan)

	loaded, err := response.ReadPlanFrom(bytes.NewReader(first), ex.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != plan.Fingerprint() {
		t.Fatalf("fingerprint drift: %016x -> %016x", plan.Fingerprint(), loaded.Fingerprint())
	}
	if loaded.Variant() != plan.Variant() {
		t.Errorf("variant drift: %q -> %q", plan.Variant(), loaded.Variant())
	}
	if loaded.TunnelCount() != plan.TunnelCount() {
		t.Errorf("tunnel drift: %d -> %d", plan.TunnelCount(), loaded.TunnelCount())
	}
	if !loaded.AlwaysOnSet().Equal(plan.AlwaysOnSet()) {
		t.Error("always-on set drift after round trip")
	}
	second := marshalPlan(t, loaded)
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical: %d vs %d bytes", len(first), len(second))
	}
}

// TestArtifactGeantRoundTrip repeats the byte-equality check on the
// full GÉANT plan — the table set the fingerprint test pins.
func TestArtifactGeantRoundTrip(t *testing.T) {
	g := topology.NewGeant()
	plan, err := response.NewPlanner().Plan(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	first := marshalPlan(t, plan)
	loaded, err := response.ReadPlanFrom(bytes.NewReader(first), g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, marshalPlan(t, loaded)) {
		t.Fatal("GÉANT round trip not byte-identical")
	}
}

// TestArtifactGeneratedRoundTrip repeats the byte-equality and
// wrong-topology checks on a generated instance: artifacts must be as
// canonical on synthetic networks as on the built-in ones, and an
// artifact computed for one seed must refuse to install on another.
func TestArtifactGeneratedRoundTrip(t *testing.T) {
	gen := func(seed int64) (*response.Topology, []response.NodeID) {
		inst, err := topogen.Generate(topogen.Config{
			Family: topogen.FamilyWaxman, Size: 12, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inst.Topo, inst.Endpoints
	}
	tp, eps := gen(11)
	plan, err := response.NewPlanner(
		response.WithEndpoints(eps), response.WithRestarts(0),
	).Plan(context.Background(), tp)
	if err != nil {
		t.Fatal(err)
	}
	first := marshalPlan(t, plan)
	loaded, err := response.ReadPlanFrom(bytes.NewReader(first), tp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, marshalPlan(t, loaded)) {
		t.Fatal("generated round trip not byte-identical")
	}
	other, _ := gen(12)
	if _, err := response.ReadPlanFrom(bytes.NewReader(first), other); !errors.Is(err, response.ErrTopologyMismatch) {
		t.Fatalf("cross-seed install: err = %v, want ErrTopologyMismatch", err)
	}
}

// TestReadPlanFromErrors walks every refusal class of the reader. None
// may panic; each must surface the right sentinel.
func TestReadPlanFromErrors(t *testing.T) {
	ex, plan := examplePlan(t)
	valid := marshalPlan(t, plan)
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, response.ErrBadArtifact},
		{"short header", valid[:20], response.ErrBadArtifact},
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), response.ErrBadArtifact},
		{"version skew", mutate(func(b []byte) { b[9] = 99 }), response.ErrVersionSkew},
		{"reserved bytes", mutate(func(b []byte) { b[10] = 1 }), response.ErrBadArtifact},
		{"truncated payload", valid[:len(valid)-10], response.ErrBadArtifact},
		{"oversize length", mutate(func(b []byte) {
			binary.BigEndian.PutUint64(b[32:40], 1<<40)
		}), response.ErrBadArtifact},
		{"payload corruption", mutate(func(b []byte) { b[len(b)-2] ^= 0xff }), response.ErrBadArtifact},
		{"crc corruption", mutate(func(b []byte) { b[28] ^= 0xff }), response.ErrBadArtifact},
		{"tables fingerprint corruption", mutate(func(b []byte) { b[20] ^= 0xff }), response.ErrBadArtifact},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, err := response.ReadPlanFrom(bytes.NewReader(tc.data), ex.Topology)
			if p != nil || err == nil {
				t.Fatalf("accepted malformed artifact (plan=%v err=%v)", p, err)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("wrong topology", func(t *testing.T) {
		_, err := response.ReadPlanFrom(bytes.NewReader(valid), topology.NewGeant())
		if !errors.Is(err, response.ErrTopologyMismatch) {
			t.Fatalf("err = %v, want ErrTopologyMismatch", err)
		}
	})
}

// clickTranscript runs the Figure 7 failover scenario with the plan's
// installed paths and returns a full transcript of sampled path rates,
// power and controller counters. The simulator is deterministic, so two
// identical plans must produce identical transcripts.
func clickTranscript(t *testing.T, ex *topology.Example, plan *response.Plan) string {
	t.Helper()
	pinned := topology.AllOff(ex.Topology)
	psA, ok := plan.PathSet(ex.A, ex.K)
	if !ok {
		t.Fatal("no path set A->K")
	}
	psC, ok := plan.PathSet(ex.C, ex.K)
	if !ok {
		t.Fatal("no path set C->K")
	}
	pinned.ActivatePath(ex.Topology, psA.AlwaysOn)
	pinned.ActivatePath(ex.Topology, psC.AlwaysOn)

	s := simulate.New(ex.Topology, simulate.Opts{
		WakeUpDelay:      0.010,
		SleepAfterIdle:   0.050,
		FailureDetect:    0.050,
		FailurePropagate: 0.050,
		Model:            response.Cisco12000{},
		PinnedOn:         pinned,
	})
	ctrl := simulate.NewController(s, simulate.ControllerOpts{Threshold: 0.9, Gamma: 0.5})
	fa, err := s.AddFlow(ex.A, ex.K, 2.5*topology.Mbps, psA.Levels())
	if err != nil {
		t.Fatal(err)
	}
	fc, err := s.AddFlow(ex.C, ex.K, 2.5*topology.Mbps, psC.Levels())
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Manage(fa)
	ctrl.Manage(fc)
	s.Schedule(1.0, ctrl.Start)
	// Fail the always-on path's first link mid-run to exercise failover.
	failed := ex.Topology.Arc(psA.AlwaysOn.Arcs[0]).Link
	s.Schedule(3.0, func() { s.FailLink(failed) })

	var out bytes.Buffer
	s.SampleEvery(0.25, 5.0, func(now float64) {
		fmt.Fprintf(&out, "%.2f %v %v %v %v %.3f\n",
			now, fa.PathRate(0), fa.PathRate(1), fc.PathRate(0), fc.PathRate(1), s.PowerPct())
	})
	s.Run(5.0)
	fmt.Fprintf(&out, "decisions=%d shifts=%d wakes=%d rates=%v/%v\n",
		ctrl.Decisions, ctrl.Shifts, ctrl.Wakes, fa.Rate(), fc.Rate())
	return out.String()
}

// TestLoadedPlanDrivesSimIdentically is the artifact's behavioural
// guarantee: a plan reloaded from its artifact drives the REsPoNseTE
// controller and the simulator exactly as the freshly computed plan.
func TestLoadedPlanDrivesSimIdentically(t *testing.T) {
	ex, plan := examplePlan(t)
	loaded, err := response.ReadPlanFrom(bytes.NewReader(marshalPlan(t, plan)), ex.Topology)
	if err != nil {
		t.Fatal(err)
	}
	fresh := clickTranscript(t, ex, plan)
	replay := clickTranscript(t, ex, loaded)
	if fresh != replay {
		t.Fatalf("transcripts diverge:\n--- fresh ---\n%s--- loaded ---\n%s", fresh, replay)
	}
	if len(fresh) == 0 {
		t.Fatal("empty transcript")
	}
}
