package response_test

// FuzzReadPlanFrom hammers the artifact reader with mutated inputs: it
// must classify every malformed artifact as an error — never panic —
// and anything it does accept must re-serialize cleanly.

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"response"
	"response/topology"
)

var fuzzSeed = sync.OnceValues(func() ([]byte, error) {
	ex := topology.NewExample(topology.ExampleOpts{})
	plan, err := response.NewPlanner().Plan(context.Background(), ex.Topology)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := plan.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
})

func FuzzReadPlanFrom(f *testing.F) {
	valid, err := fuzzSeed()
	if err != nil {
		f.Fatal(err)
	}
	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		fn(b)
		return b
	}
	f.Add(valid)                                        // well-formed
	f.Add([]byte{})                                     // empty
	f.Add(valid[:20])                                   // truncated header
	f.Add(valid[:len(valid)-7])                         // truncated payload
	f.Add(mutate(func(b []byte) { b[0] = 'Z' }))        // bad magic
	f.Add(mutate(func(b []byte) { b[9] = 42 }))         // version skew
	f.Add(mutate(func(b []byte) { b[12] ^= 0xff }))     // wrong topology fp
	f.Add(mutate(func(b []byte) { b[20] ^= 0xff }))     // wrong tables fp
	f.Add(mutate(func(b []byte) { b[35] = 0x7f }))      // absurd length
	f.Add(mutate(func(b []byte) { b[len(b)-3] = '}' })) // JSON damage
	f.Add(mutate(func(b []byte) { b[60] ^= 0x20 }))     // payload bitflip

	topo := topology.NewExample(topology.ExampleOpts{}).Topology
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := response.ReadPlanFrom(bytes.NewReader(data), topo)
		if err != nil {
			if plan != nil {
				t.Fatal("non-nil plan alongside error")
			}
			return
		}
		// Hard invariant: every accepted artifact re-serializes to
		// exactly the bytes that were consumed (the reader enforces
		// canonical form; trailing bytes past the payload length are
		// not part of the artifact).
		var out bytes.Buffer
		if _, err := plan.WriteTo(&out); err != nil {
			t.Fatalf("accepted plan failed to re-serialize: %v", err)
		}
		if out.Len() > len(data) || !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted artifact is not canonical: %d bytes in, %d out", len(data), out.Len())
		}
	})
}
