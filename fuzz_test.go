package response_test

// FuzzReadPlanFrom hammers the artifact reader with mutated inputs: it
// must classify every malformed artifact as an error — never panic —
// and anything it does accept must re-serialize cleanly.
//
// FuzzPlanGenerated hammers the planner itself with mutated generated
// topologies: whatever the generator+mutator produce, Plan must either
// succeed with tables that pass the invariant checker or fail with a
// classified sentinel error — never panic, never emit an infeasible
// table.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"response"
	"response/internal/topogen"
	"response/internal/verify"
	"response/topology"
)

var fuzzSeed = sync.OnceValues(func() ([]byte, error) {
	ex := topology.NewExample(topology.ExampleOpts{})
	plan, err := response.NewPlanner().Plan(context.Background(), ex.Topology)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := plan.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
})

func FuzzReadPlanFrom(f *testing.F) {
	valid, err := fuzzSeed()
	if err != nil {
		f.Fatal(err)
	}
	mutate := func(fn func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		fn(b)
		return b
	}
	f.Add(valid)                                        // well-formed
	f.Add([]byte{})                                     // empty
	f.Add(valid[:20])                                   // truncated header
	f.Add(valid[:len(valid)-7])                         // truncated payload
	f.Add(mutate(func(b []byte) { b[0] = 'Z' }))        // bad magic
	f.Add(mutate(func(b []byte) { b[9] = 42 }))         // version skew
	f.Add(mutate(func(b []byte) { b[12] ^= 0xff }))     // wrong topology fp
	f.Add(mutate(func(b []byte) { b[20] ^= 0xff }))     // wrong tables fp
	f.Add(mutate(func(b []byte) { b[35] = 0x7f }))      // absurd length
	f.Add(mutate(func(b []byte) { b[len(b)-3] = '}' })) // JSON damage
	f.Add(mutate(func(b []byte) { b[60] ^= 0x20 }))     // payload bitflip
	// Hostile declared lengths: the daemon accepts artifacts over HTTP,
	// so a header announcing a huge payload backed by a tiny (or empty)
	// body must fail cheaply — classified as ErrBadArtifact without an
	// attacker-sized allocation — never hang or panic.
	hugeLen := func(n uint64, body int) []byte {
		b := append([]byte(nil), valid[:40]...)
		binary.BigEndian.PutUint64(b[32:40], n)
		for i := 0; i < body; i++ {
			b = append(b, byte(i))
		}
		return b
	}
	f.Add(hugeLen(1<<26, 0))          // exactly the limit, empty body
	f.Add(hugeLen(1<<26, 100))        // exactly the limit, 100-byte body
	f.Add(hugeLen(1<<26-1, 3))        // just under the limit
	f.Add(hugeLen(1<<26+1, 8))        // just over the limit
	f.Add(hugeLen(1<<40, 0))          // terabyte claim
	f.Add(hugeLen(^uint64(0), 16))    // 2^64-1
	f.Add(hugeLen(1<<63, 0))          // sign-bit probe
	f.Add(hugeLen(uint64(1<<20), 50)) // plausible length, short body

	top := topology.NewExample(topology.ExampleOpts{}).Topology
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := response.ReadPlanFrom(bytes.NewReader(data), top)
		if err != nil {
			if plan != nil {
				t.Fatal("non-nil plan alongside error")
			}
			return
		}
		// Hard invariant: every accepted artifact re-serializes to
		// exactly the bytes that were consumed (the reader enforces
		// canonical form; trailing bytes past the payload length are
		// not part of the artifact).
		var out bytes.Buffer
		if _, err := plan.WriteTo(&out); err != nil {
			t.Fatalf("accepted plan failed to re-serialize: %v", err)
		}
		if out.Len() > len(data) || !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted artifact is not canonical: %d bytes in, %d out", len(data), out.Len())
		}
	})
}

// FuzzPlanGenerated plans a small mutated Waxman topology per input:
// size and seed steer the generator, drop deletes links (possibly
// disconnecting the graph). Plan must never panic; failures must
// classify under the sentinel errors, and successes must pass the
// invariant checker.
func FuzzPlanGenerated(f *testing.F) {
	f.Add(uint8(6), int64(1), uint8(0))
	f.Add(uint8(10), int64(2), uint8(3))
	f.Add(uint8(2), int64(3), uint8(1))  // minimal pair, possibly cut apart
	f.Add(uint8(14), int64(4), uint8(7)) // denser mesh, several drops
	f.Add(uint8(3), int64(5), uint8(255))
	f.Add(uint8(0), int64(6), uint8(0))

	f.Fuzz(func(t *testing.T, size uint8, seed int64, drop uint8) {
		n := 2 + int(size)%14
		inst, err := topogen.Generate(topogen.Config{
			Family: topogen.FamilyWaxman, Size: n, Seed: seed,
		})
		if err != nil {
			t.Fatalf("generator rejected a legal config: %v", err)
		}
		mutated := dropLinks(inst.Topo, int(drop))
		plan, err := response.NewPlanner(
			response.WithEndpoints(inst.Endpoints),
			response.WithRestarts(0),
		).Plan(context.Background(), mutated)
		if err != nil {
			if !errors.Is(err, response.ErrInfeasible) {
				t.Fatalf("plan failed outside the sentinel taxonomy: %v", err)
			}
			return
		}
		if rep := verify.CheckTables(mutated, plan.Tables(), verify.Opts{}); !rep.Ok() {
			t.Fatalf("planner emitted tables violating invariants: %v", rep.Err())
		}
	})
}

// dropLinks rebuilds a topology with `drop` links removed, spread over
// the link list deterministically.
func dropLinks(src *topology.Topology, drop int) *topology.Topology {
	nl := src.NumLinks()
	removed := map[topology.LinkID]bool{}
	for i := 0; i < drop%(nl+1); i++ {
		removed[topology.LinkID((i*7+3)%nl)] = true
	}
	return cloneTopology(src, src.Name+"-cut",
		func(l topology.Link, capAB, capBA float64) (float64, float64, bool) {
			return capAB, capBA, !removed[l.ID]
		})
}
