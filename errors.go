package response

import (
	"errors"

	"response/internal/core"
)

// Sentinel errors returned by Planner.Plan; test with errors.Is.
var (
	// ErrInfeasible reports that the demand set cannot be routed on the
	// topology under the configured utilization ceiling.
	ErrInfeasible = core.ErrInfeasible
	// ErrCanceled reports that the context passed to Plan was canceled
	// (or its deadline expired) before planning completed.
	ErrCanceled = core.ErrCanceled
	// ErrDelayBound reports that the REsPoNse-lat (1+β)·OSPF delay bound
	// requested with WithDelayBound cannot be satisfied for some pair.
	ErrDelayBound = core.ErrDelayBound
)

// Sentinel errors returned by ReadPlanFrom; test with errors.Is.
var (
	// ErrBadArtifact reports a structurally invalid plan artifact: bad
	// magic, truncation, checksum or fingerprint corruption, or paths
	// that do not exist on the topology.
	ErrBadArtifact = errors.New("response: malformed plan artifact")
	// ErrVersionSkew reports an artifact written by a format version
	// this build does not understand.
	ErrVersionSkew = errors.New("response: unsupported plan artifact version")
	// ErrTopologyMismatch reports an artifact whose embedded topology
	// fingerprint does not match the topology it is being loaded
	// against.
	ErrTopologyMismatch = errors.New("response: plan artifact topology mismatch")
)

// ErrWarmStartMismatch reports that a plan supplied with
// WithWarmStartStrict was computed for a different topology (by
// fingerprint) than the one being planned, so it cannot seed the
// search. The lenient WithWarmStart silently plans cold instead.
// Test with errors.Is.
var ErrWarmStartMismatch = errors.New("response: warm-start plan topology mismatch")
