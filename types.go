package response

import (
	"response/internal/core"
	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

// The facade re-exports the module's working vocabulary as type aliases
// so that values flow freely between the public packages (response,
// response/topology, response/trafficmatrix, response/simulate) and no
// caller ever needs an internal import path.
type (
	// Topology is a network graph; build one with the constructors in
	// response/topology.
	Topology = topo.Topology
	// NodeID identifies a node within a Topology.
	NodeID = topo.NodeID
	// ArcID identifies a directed arc within a Topology.
	ArcID = topo.ArcID
	// LinkID identifies an undirected physical link.
	LinkID = topo.LinkID
	// Path is a loop-free arc sequence between two nodes.
	Path = topo.Path
	// ActiveSet records the power state of every router and link.
	ActiveSet = topo.ActiveSet
	// PathSet holds the installed energy-critical paths of one
	// origin-destination pair: always-on, on-demand levels, failover.
	PathSet = core.PathSet
	// PathLevel indexes the installed tables of one pair.
	PathLevel = core.PathLevel
	// Tables is the raw installed routing state a Plan wraps; advanced
	// callers can reach it through Plan.Tables.
	Tables = core.Tables
	// EvalResult is the outcome of placing one traffic matrix onto a
	// plan's tables the way the online controller would.
	EvalResult = core.EvalResult
	// TrafficMatrix gives per-(origin,destination) demand rates; build
	// one with response/trafficmatrix.
	TrafficMatrix = traffic.Matrix
	// PowerModel prices chassis, ports and amplifiers.
	PowerModel = power.Model
	// Mode selects how on-demand paths are computed (§4.2 of the paper).
	Mode = core.Mode
	// PlanProgress is delivered to WithProgress callbacks at every stage
	// boundary of a planning run.
	PlanProgress = core.PlanProgress
)

// On-demand computation modes.
const (
	// ModeStress avoids the top-stressed fraction of links from the
	// always-on assignment (the paper's default, demand-oblivious).
	ModeStress = core.ModeStress
	// ModeSolver re-solves with the peak-hour matrix, always-on fixed.
	ModeSolver = core.ModeSolver
	// ModeOSPF installs the default OSPF-InvCap routing table.
	ModeOSPF = core.ModeOSPF
	// ModeHeuristic uses the GreenTE-style k-shortest-path packer.
	ModeHeuristic = core.ModeHeuristic
)

// Power models (paper §5.1).
type (
	// Cisco12000 prices elements like a Cisco 12000-series ISP router.
	Cisco12000 = power.Cisco12000
	// AlternativePower derates the chassis share of a base model 10×,
	// the paper's "alternative hardware" projection.
	AlternativePower = power.Alternative
	// CommodityPower models commodity datacenter switches; build with
	// NewCommodityPower.
	CommodityPower = power.Commodity
)

// NewCommodityPower returns the commodity-switch power model for a
// k-ary fat-tree.
func NewCommodityPower(k int) CommodityPower { return power.NewCommodity(k) }

// FullWatts returns the network's power draw with every element on.
func FullWatts(t *Topology, m PowerModel) float64 { return power.FullWatts(t, m) }

// NetworkWatts returns the network's power draw under the given element
// power states.
func NetworkWatts(t *Topology, m PowerModel, active *ActiveSet) float64 {
	return power.NetworkWatts(t, m, active)
}
