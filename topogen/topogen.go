// Package topogen is the public synthetic-network surface of the
// response module: parameterized, seed-deterministic generators for
// five structural families — fat-tree(k), Waxman random geometric,
// ring, torus, and a two-tier hierarchical ISP — each emitting a valid
// connected topology plus a matched gravity traffic matrix.
//
// It exists so that planner and runtime invariants can be exercised on
// hundreds of structurally diverse networks instead of the three fixed
// topologies the paper evaluates:
//
//	inst, err := topogen.Generate(topogen.Config{
//	        Family: topogen.FamilyWaxman, Size: 40, Seed: 7,
//	})
//	plan, err := response.NewPlanner(
//	        response.WithEndpoints(inst.Endpoints),
//	).Plan(ctx, inst.Topo)
//
// Identical Config values produce byte-identical instances (same node
// and link order, same capacities, same matrix) on any machine and
// under any GOMAXPROCS, so generated instances can be fingerprinted
// and pinned exactly like the built-in topologies.
//
// It is a thin re-export layer over the module's internal generator;
// see DESIGN.md §7 for the family parameters and the invariant list
// they are verified against.
package topogen

import (
	itg "response/internal/topogen"
	"response/topology"
)

// Core generator types.
type (
	// Family names a generator family.
	Family = itg.Family
	// Config parameterizes one generated instance (family, size, seed,
	// operating point, endpoint cap).
	Config = itg.Config
	// Instance is one generated network plus its matched workload:
	// topology, endpoint universe, unit demand shape, scaled traffic
	// matrix, the topology's maximum routable scale and the family's
	// shared-risk link groups.
	Instance = itg.Instance
	// SRLG is a shared-risk link group: links that share a physical
	// fate (a conduit, a pod domain, a PoP) and fail together under
	// correlated-failure scenarios.
	SRLG = itg.SRLG
)

// Generator families.
const (
	FamilyFatTree = itg.FamilyFatTree
	FamilyWaxman  = itg.FamilyWaxman
	FamilyRing    = itg.FamilyRing
	FamilyTorus   = itg.FamilyTorus
	FamilyISP     = itg.FamilyISP
)

// Families returns every generator family in deterministic order.
func Families() []Family { return itg.Families() }

// Generate builds the instance described by cfg: a valid, connected
// topology and a matched gravity workload, deterministically from
// (family, size, seed).
func Generate(cfg Config) (*Instance, error) { return itg.Generate(cfg) }

// ProximitySRLGs is the geometric shared-risk model for topologies
// with a planar embedding: links whose midpoints lie within radiusKm
// of each other (transitively) share one group.
func ProximitySRLGs(t *topology.Topology, radiusKm float64) []SRLG {
	return itg.ProximitySRLGs(t, radiusKm)
}
