// Package trafficmatrix is the public traffic-model surface of the
// response module: per-pair demand matrices, the capacity-based gravity
// estimate, and the synthetic diurnal/sine/volatile series the paper's
// experiments replay.
//
// It is a thin re-export layer over the module's internal traffic
// model; matrices built here feed response.Planner options and
// response.Plan.Evaluate directly.
package trafficmatrix

import (
	"response/internal/traffic"
	"response/topology"
)

// Demand and series types.
type (
	// Matrix gives the offered rate of every origin-destination pair.
	Matrix = traffic.Matrix
	// Demand is one (origin, destination, rate) entry of a matrix.
	Demand = traffic.Demand
	// Series is a time-ordered sequence of matrices at a fixed interval.
	Series = traffic.Series
	// GravityOpts parameterizes Gravity.
	GravityOpts = traffic.GravityOpts
	// SineOpts parameterizes SineSeries.
	SineOpts = traffic.SineOpts
	// Locality selects where sine-wave datacenter traffic flows.
	Locality = traffic.Locality
	// DiurnalOpts parameterizes DiurnalSeries.
	DiurnalOpts = traffic.DiurnalOpts
	// VolatileOpts parameterizes VolatileSeries.
	VolatileOpts = traffic.VolatileOpts
)

// Sine-wave traffic localities: Near keeps traffic within fat-tree
// pods, Far sends it across the core.
const (
	Near = traffic.Near
	Far  = traffic.Far
)

// New returns an empty matrix; fill it with Matrix.Set/Add.
func New() *Matrix { return traffic.NewMatrix() }

// Uniform returns a matrix with the same rate between every ordered
// pair of the given nodes (the paper's ε-demand when rate is tiny).
func Uniform(nodes []topology.NodeID, rate float64) *Matrix {
	return traffic.Uniform(nodes, rate)
}

// Gravity estimates a matrix from the topology alone: each pair's rate
// is proportional to the product of its endpoints' attached capacity
// (§5.1 uses it when measured matrices are unavailable).
func Gravity(t *topology.Topology, opts GravityOpts) *Matrix {
	return traffic.Gravity(t, opts)
}

// HostGravity is Gravity restricted to a topology's hosts, with rates
// jittered by seed.
func HostGravity(t *topology.Topology, totalRate float64, seed int64) *Matrix {
	return traffic.HostGravity(t, totalRate, seed)
}

// SineSeries builds the ElasticTree-style sinusoidal datacenter demand
// of Figures 4 and 8b.
func SineSeries(ft *topology.FatTree, opts SineOpts) *Series {
	return traffic.SineSeries(ft, opts)
}

// DiurnalSeries modulates base with a day/night profile plus jitter,
// the shape of the paper's ISP traces.
func DiurnalSeries(base *Matrix, opts DiurnalOpts) *Series {
	return traffic.DiurnalSeries(base, opts)
}

// VolatileSeries modulates base with heavy-tailed per-flow churn.
func VolatileSeries(base *Matrix, opts VolatileOpts) *Series {
	return traffic.VolatileSeries(base, opts)
}

// RelativeChange returns the paper's §3.1 matrix-deviation metric
// between two matrices.
func RelativeChange(a, b *Matrix) float64 { return traffic.RelativeChange(a, b) }
