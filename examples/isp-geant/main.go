// Command isp-geant reproduces the shape of the paper's Figure 5: a
// multi-day replay of GÉANT traffic matrices over REsPoNse tables that
// are computed exactly once. Power is reported for today's hardware
// (Cisco 12000-class) and the paper's "alternative" model with a 10×
// cheaper chassis, against the OSPF baseline that keeps everything on.
package main

import (
	"flag"
	"fmt"
	"log"

	"response/internal/core"
	"response/internal/experiments"
	"response/internal/mcf"
	"response/internal/power"
	"response/internal/stats"
	"response/internal/topo"
	"response/internal/traffic"
)

func main() {
	days := flag.Int("days", 3, "trace length in days (the paper uses 15)")
	flag.Parse()

	g := topo.NewGeant()
	model := power.Cisco12000{}
	alt := power.Alternative{Base: model}

	// Synthetic GÉANT trace: per the paper (§5.1), origins and
	// destinations are a random subset of the PoPs — the rest are
	// transit-only and may sleep entirely. The gravity base is scaled
	// so the diurnal peak sits at a realistic ISP operating point.
	endpoints := experiments.EndpointSubset(g, 0.6, 404)
	base := traffic.Gravity(g, traffic.GravityOpts{Nodes: endpoints, TotalRate: 1})
	maxScale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.02)
	series := traffic.DiurnalSeries(base.Scale(maxScale*0.3), traffic.DiurnalOpts{
		Days: *days, Seed: 25,
	})
	fmt.Printf("replaying %d days of 15-min GÉANT matrices (%d intervals, %d endpoint PoPs)\n",
		*days, len(series.Matrices), len(endpoints))

	// One planning run serves the whole replay — the paper's headline.
	tables, err := core.Plan(g, core.PlanOpts{Model: model, Nodes: endpoints})
	if err != nil {
		log.Fatal(err)
	}

	var today, future []float64
	for _, m := range series.Matrices {
		res := tables.Evaluate(m, model, 0.9)
		today = append(today, res.PctOfFull)
		resAlt := tables.Evaluate(m, alt, 0.9)
		future = append(future, resAlt.PctOfFull)
	}
	fmt.Println("\n             ospf   REsPoNse   REsPoNse(alt HW)")
	fmt.Printf("mean power   100%%    %5.1f%%      %5.1f%%\n",
		stats.Mean(today), stats.Mean(future))
	fmt.Printf("max power    100%%    %5.1f%%      %5.1f%%\n",
		stats.Max(today), stats.Max(future))
	fmt.Printf("savings        0%%    %5.1f%%      %5.1f%%\n",
		100-stats.Mean(today), 100-stats.Mean(future))
	fmt.Println("\nroute-table recomputations during the replay: 0 (by construction)")

	// A compressed daily profile: mean power per 3-hour bucket.
	fmt.Println("\ndaily profile (power % of full, averaged across days):")
	buckets := make([]stats.Welford, 8)
	for i, p := range today {
		hour := int(float64(i)*series.IntervalSec/3600) % 24
		buckets[hour/3].Add(p)
	}
	for b := range buckets {
		fmt.Printf("  %02d:00-%02d:00  %5.1f%%\n", b*3, b*3+3, buckets[b].Mean())
	}
}
