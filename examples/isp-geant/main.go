// Command isp-geant reproduces the shape of the paper's Figure 5: a
// multi-day replay of GÉANT traffic matrices over a REsPoNse plan that
// is computed exactly once. Power is reported for today's hardware
// (Cisco 12000-class) and the paper's "alternative" model with a 10×
// cheaper chassis, against the OSPF baseline that keeps everything on.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"response"
	"response/experiments"
	"response/trafficmatrix"
	"response/topology"
)

func main() {
	days := flag.Int("days", 3, "trace length in days (the paper uses 15)")
	flag.Parse()

	g := topology.NewGeant()
	model := response.Cisco12000{}
	alt := response.AlternativePower{Base: model}

	// Synthetic GÉANT trace: per the paper (§5.1), origins and
	// destinations are a random subset of the PoPs — the rest are
	// transit-only and may sleep entirely. The gravity base is scaled
	// so the diurnal peak sits at a realistic ISP operating point.
	endpoints := experiments.EndpointSubset(g, 0.6, 404)
	base := trafficmatrix.Gravity(g, trafficmatrix.GravityOpts{Nodes: endpoints, TotalRate: 1})
	maxScale := response.MaxRoutableScale(g, base)
	series := trafficmatrix.DiurnalSeries(base.Scale(maxScale*0.3), trafficmatrix.DiurnalOpts{
		Days: *days, Seed: 25,
	})
	fmt.Printf("replaying %d days of 15-min GÉANT matrices (%d intervals, %d endpoint PoPs)\n",
		*days, len(series.Matrices), len(endpoints))

	// One planning run serves the whole replay — the paper's headline.
	plan, err := response.NewPlanner(response.WithEndpoints(endpoints)).
		Plan(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}

	var today, future []float64
	for _, m := range series.Matrices {
		today = append(today, plan.Evaluate(m, model, 0.9).PctOfFull)
		future = append(future, plan.Evaluate(m, alt, 0.9).PctOfFull)
	}
	fmt.Println("\n             ospf   REsPoNse   REsPoNse(alt HW)")
	fmt.Printf("mean power   100%%    %5.1f%%      %5.1f%%\n", mean(today), mean(future))
	fmt.Printf("max power    100%%    %5.1f%%      %5.1f%%\n", max64(today), max64(future))
	fmt.Printf("savings        0%%    %5.1f%%      %5.1f%%\n",
		100-mean(today), 100-mean(future))
	fmt.Println("\nroute-table recomputations during the replay: 0 (by construction)")

	// A compressed daily profile: mean power per 3-hour bucket.
	fmt.Println("\ndaily profile (power % of full, averaged across days):")
	var bucketSum [8]float64
	var bucketN [8]int
	for i, p := range today {
		hour := int(float64(i)*series.IntervalSec/3600) % 24
		bucketSum[hour/3] += p
		bucketN[hour/3]++
	}
	for b := range bucketSum {
		avg := 0.0
		if bucketN[b] > 0 {
			avg = bucketSum[b] / float64(bucketN[b])
		}
		fmt.Printf("  %02d:00-%02d:00  %5.1f%%\n", b*3, b*3+3, avg)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func max64(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
