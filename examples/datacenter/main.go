// Command datacenter reproduces the shape of the paper's Figure 4: a
// k=4 fat-tree serving a sinusoidal diurnal demand, comparing network
// power under ECMP (everything always on) against REsPoNse with
// localized ("near") and cross-pod ("far") traffic.
//
// Expected shape: ECMP sits at 100 %; REsPoNse tracks the sine wave,
// with near traffic cheaper than far traffic because intra-pod paths
// let the entire core sleep.
package main

import (
	"context"
	"fmt"
	"log"

	"response"
	"response/topology"
	"response/trafficmatrix"
)

func main() {
	ft, err := topology.NewFatTree(4, topology.FatTreeOpts{WithHosts: true})
	if err != nil {
		log.Fatal(err)
	}
	model := response.NewCommodityPower(4)
	fmt.Printf("fat-tree k=4: %d switches, %d hosts, all-on %.0f W\n",
		ft.NumNodes()-len(ft.AllHosts()), len(ft.AllHosts()),
		response.FullWatts(ft.Topology, model))

	// One planner configuration serves both localities; per-call options
	// supply each run's matrices.
	planner := response.NewPlanner(
		response.WithModel(model),
		response.WithMode(response.ModeSolver),
		// Endpoint hosts exchange sine-wave traffic.
		response.WithEndpoints(ft.AllHosts()),
	)
	for _, loc := range []trafficmatrix.Locality{trafficmatrix.Near, trafficmatrix.Far} {
		series := trafficmatrix.SineSeries(ft, trafficmatrix.SineOpts{Locality: loc, Steps: 10})
		peak := series.Peak()
		plan, err := planner.Plan(context.Background(), ft.Topology,
			response.WithLowMatrix(series.OffPeak()),
			response.WithPeakMatrix(peak))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s traffic (sine period = %d steps):\n", loc, len(series.Matrices))
		fmt.Println("  time   demand%   ecmp-power%   response-power%")
		peakTotal := peak.Total()
		for i, m := range series.Matrices {
			res := plan.Evaluate(m, model, 0.9)
			fmt.Printf("  %4d   %6.0f    %10.0f    %14.1f\n",
				i, 100*m.Total()/peakTotal, 100.0, res.PctOfFull)
		}
	}
}
