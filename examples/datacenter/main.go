// Command datacenter reproduces the shape of the paper's Figure 4: a
// k=4 fat-tree serving a sinusoidal diurnal demand, comparing network
// power under ECMP (everything always on) against REsPoNse with
// localized ("near") and cross-pod ("far") traffic.
//
// Expected shape: ECMP sits at 100 %; REsPoNse tracks the sine wave,
// with near traffic cheaper than far traffic because intra-pod paths
// let the entire core sleep.
package main

import (
	"fmt"
	"log"

	"response/internal/core"
	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

func main() {
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		log.Fatal(err)
	}
	model := power.NewCommodity(4)
	fmt.Printf("fat-tree k=4: %d switches, %d hosts, all-on %.0f W\n",
		ft.NumNodes()-len(ft.AllHosts()), len(ft.AllHosts()),
		power.FullWatts(ft.Topology, model))

	for _, loc := range []traffic.Locality{traffic.Near, traffic.Far} {
		series := traffic.SineSeries(ft, traffic.SineOpts{Locality: loc, Steps: 10})
		peak := series.Peak()
		tables, err := core.Plan(ft.Topology, core.PlanOpts{
			Model: model,
			Mode:  core.ModeSolver,
			// Endpoint hosts exchange sine-wave traffic.
			Nodes:  ft.AllHosts(),
			LowTM:  series.OffPeak(),
			PeakTM: peak,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s traffic (sine period = %d steps):\n", loc, len(series.Matrices))
		fmt.Println("  time   demand%   ecmp-power%   response-power%")
		peakTotal := peak.Total()
		for i, m := range series.Matrices {
			res := tables.Evaluate(m, model, 0.9)
			fmt.Printf("  %4d   %6.0f    %10.0f    %14.1f\n",
				i, 100*m.Total()/peakTotal, 100.0, res.PctOfFull)
		}
	}
}
