// Command failover-click reproduces the paper's Figure 7 (the Click
// testbed experiment, §5.3) in the event-driven simulator: on the
// Figure 3 topology, REsPoNseTE starts at t=5 s and within ≈2 RTTs
// consolidates traffic onto the always-on middle path, letting the
// upper and lower on-demand paths sleep; at t=5.7 s the middle link
// fails and traffic is promptly restored over the woken failover paths.
package main

import (
	"fmt"
	"log"

	"response"
	"response/simulate"
	"response/topology"
)

func main() {
	ex := topology.NewExample(topology.ExampleOpts{})
	pinned := topology.AllOff(ex.Topology)
	pinned.ActivatePath(ex.Topology, ex.MiddlePath(ex.A))
	pinned.ActivatePath(ex.Topology, ex.MiddlePath(ex.C))

	s := simulate.New(ex.Topology, simulate.Opts{
		WakeUpDelay:      0.010, // 10 ms: projected future hardware
		SleepAfterIdle:   0.050,
		FailureDetect:    0.050, // 50 ms detection
		FailurePropagate: 0.050, // 50 ms ≈ 3 hops of 16.67 ms
		Model:            response.Cisco12000{},
		PinnedOn:         pinned,
	})
	ctrl := simulate.NewController(s, simulate.ControllerOpts{Threshold: 0.9, Gamma: 0.5})

	// 5 flows of ~0.5 Mbps from A and from C toward K (≈5 Mbps total),
	// initially split across both available paths.
	fa, err := s.AddFlow(ex.A, ex.K, 2.5*topology.Mbps,
		[]topology.Path{ex.MiddlePath(ex.A), ex.UpperPath()})
	if err != nil {
		log.Fatal(err)
	}
	fc, err := s.AddFlow(ex.C, ex.K, 2.5*topology.Mbps,
		[]topology.Path{ex.MiddlePath(ex.C), ex.LowerPath()})
	if err != nil {
		log.Fatal(err)
	}
	s.SetShare(fa, []float64{0.5, 0.5})
	s.SetShare(fc, []float64{0.5, 0.5})
	ctrl.Manage(fa)
	ctrl.Manage(fc)

	s.Schedule(5.0, func() {
		fmt.Println("t=5.000  REsPoNseTE starts")
		ctrl.Start()
	})
	eh, _ := ex.ArcBetween(ex.E, ex.H)
	s.Schedule(5.7, func() {
		fmt.Println("t=5.700  middle link E-H fails")
		s.FailLink(ex.Arc(eh).Link)
	})

	fmt.Println("  time   middle(Mbps)  upper(Mbps)  lower(Mbps)  power%")
	sample := func(now float64) {
		middle := fa.PathRate(0) + fc.PathRate(0)
		fmt.Printf("  %5.2f     %8.2f     %8.2f     %8.2f   %5.1f\n",
			now, middle/1e6, fa.PathRate(1)/1e6, fc.PathRate(1)/1e6, s.PowerPct())
	}
	s.SampleEvery(0.25, 7.0, sample)
	s.Run(7.0)

	fmt.Printf("\ncontroller: %d decisions, %d shifts, %d wakes\n",
		ctrl.Decisions, ctrl.Shifts, ctrl.Wakes)
	fmt.Printf("final rates: A %.2f Mbps, C %.2f Mbps (demand 2.5 each)\n",
		fa.Rate()/1e6, fc.Rate()/1e6)
}
