// Command quickstart is a sixty-second tour of the public REsPoNse API:
// build a topology, precompute the three energy-critical routing tables
// once with a Planner, serialize the plan to a portable artifact and
// load it back, then watch network power scale with offered load —
// without ever recomputing a table.
//
// Everything here comes from the public packages: response (planning,
// artifacts, power models), response/topology (network builders) and
// response/trafficmatrix (demand models).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"response"
	"response/topology"
	"response/trafficmatrix"
)

func main() {
	// 1. A topology: the GÉANT European research network (23 PoPs).
	g := topology.NewGeant()
	fmt.Println("topology:", g)

	// 2. A power model: Cisco 12000-class chassis and line cards (the
	//    planner's default; WithModel swaps it).
	model := response.Cisco12000{}
	fmt.Printf("all-on network power: %.1f kW\n", response.FullWatts(g, model)/1000)

	// 3. Precompute the REsPoNse plan once, off-line. No traffic matrix
	//    needed: the ε-demand trick finds minimal-power connectivity,
	//    and the stress-factor heuristic derives on-demand paths that
	//    dodge likely bottlenecks. The context cancels long solves.
	plan, err := response.NewPlanner().Plan(context.Background(), g)
	if err != nil {
		log.Fatal(err)
	}
	r, l := plan.AlwaysOnSet().CountOn()
	fmt.Printf("always-on set: %d routers, %d of %d links\n", r, l, g.NumLinks())

	// 4. Plans are artifacts: export once, install anywhere. The format
	//    is versioned and fingerprinted, so loading against the wrong
	//    topology (or a corrupted file) fails loudly.
	var artifact bytes.Buffer
	if _, err := plan.WriteTo(&artifact); err != nil {
		log.Fatal(err)
	}
	loaded, err := response.ReadPlanFrom(bytes.NewReader(artifact.Bytes()), g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact round trip: %d bytes, fingerprints match: %v\n",
		artifact.Len(), loaded.Fingerprint() == plan.Fingerprint())

	// Inspect the installed paths of one pair.
	uk, _ := g.NodeByName("UK")
	gr, _ := g.NodeByName("GR")
	ps, _ := loaded.PathSet(uk, gr)
	fmt.Println("\ninstalled paths UK -> GR:")
	fmt.Println("  always-on:", ps.AlwaysOn.Format(g))
	for i, p := range ps.OnDemand {
		fmt.Printf("  on-demand[%d]: %s\n", i, p.Format(g))
	}
	fmt.Println("  failover: ", ps.Failover.Format(g))

	// 5. Apply traffic of increasing intensity. The same (loaded!) plan
	//    serves every load level; power scales with demand. (Real ISP
	//    backbones run well below their theoretical maximum — the
	//    ladder below spans a night valley to a heavy day peak.)
	base := trafficmatrix.Gravity(g, trafficmatrix.GravityOpts{TotalRate: 1})
	maxScale := response.MaxRoutableScale(g, base)
	fmt.Println("\nutilization -> network power (same tables, no recomputation):")
	for _, u := range []float64{0.02, 0.05, 0.10, 0.15, 0.25} {
		res := loaded.Evaluate(base.Scale(maxScale*u), model, 0.9)
		fmt.Printf("  util-%4.1f%%  power %5.1f%% of full   worst link %4.0f%%   on-demand pairs %d\n",
			u*100, res.PctOfFull, res.MaxUtil*100, sum(res.LevelUse[1:]))
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
