// Command quickstart is a sixty-second tour of the REsPoNse library:
// build a topology, precompute the three energy-critical routing tables
// off-line, and watch the network power scale with offered load without
// ever recomputing a table.
package main

import (
	"fmt"
	"log"

	"response/internal/core"
	"response/internal/mcf"
	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

func main() {
	// 1. A topology: the GÉANT European research network (23 PoPs).
	g := topo.NewGeant()
	fmt.Println("topology:", g)

	// 2. A power model: Cisco 12000-class chassis and line cards.
	model := power.Cisco12000{}
	fmt.Printf("all-on network power: %.1f kW\n", power.FullWatts(g, model)/1000)

	// 3. Precompute the REsPoNse tables once, off-line. No traffic
	//    matrix needed: the ε-demand trick finds minimal-power
	//    connectivity, and the stress-factor heuristic derives
	//    on-demand paths that dodge likely bottlenecks.
	tables, err := core.Plan(g, core.PlanOpts{Model: model})
	if err != nil {
		log.Fatal(err)
	}
	r, l := tables.AlwaysOnSet.CountOn()
	fmt.Printf("always-on set: %d routers, %d of %d links\n", r, l, g.NumLinks())

	// Inspect the installed paths of one pair.
	uk, _ := g.NodeByName("UK")
	gr, _ := g.NodeByName("GR")
	ps, _ := tables.PathSetFor(uk, gr)
	fmt.Println("\ninstalled paths UK -> GR:")
	fmt.Println("  always-on:", ps.AlwaysOn.Format(g))
	for i, p := range ps.OnDemand {
		fmt.Printf("  on-demand[%d]: %s\n", i, p.Format(g))
	}
	fmt.Println("  failover: ", ps.Failover.Format(g))

	// 4. Apply traffic of increasing intensity. The same tables serve
	//    every load level; power scales with demand. (Real ISP
	//    backbones run well below their theoretical maximum — the
	//    ladder below spans a night valley to a heavy day peak.)
	base := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 1})
	maxScale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.02)
	fmt.Println("\nutilization -> network power (same tables, no recomputation):")
	for _, u := range []float64{0.02, 0.05, 0.10, 0.15, 0.25} {
		res := tables.Evaluate(base.Scale(maxScale*u), model, 0.9)
		fmt.Printf("  util-%4.1f%%  power %5.1f%% of full   worst link %4.0f%%   on-demand pairs %d\n",
			u*100, res.PctOfFull, res.MaxUtil*100, sum(res.LevelUse[1:]))
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
