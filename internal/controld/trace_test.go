package controld

// The observability surface over real HTTP: the trace store ingests
// the hub stream asynchronously, the …/trace/* progressive-disclosure
// queries serve it per tenant, and /metrics exposes the per-tenant
// runtime counter families plus the store's own bookkeeping.

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"response/internal/tracestore"
)

func (c *testClient) getText(path string, want int) string {
	c.t.Helper()
	resp, err := c.ts.Client().Get(c.ts.URL + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		c.t.Fatalf("GET %s: status %d, want %d; body: %s", path, resp.StatusCode, want, raw)
	}
	return string(raw)
}

func TestTraceQueriesAndMetrics(t *testing.T) {
	s, c := newTestDaemon(t, Opts{Workers: 1})
	c.req("POST", "/v1/tenants", genSpec("alpha", 1), http.StatusCreated, nil)
	c.req("POST", "/v1/tenants", genSpec("beta", 2), http.StatusCreated, nil)
	c.advance("alpha", 3600)
	c.advance("beta", 1800)

	// Ingestion rides an async hub subscription; wait for the store to
	// catch up with both tenants' windows.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.TraceStore().Stats()
		if st.Ingested > 0 && st.Tenants >= 2 &&
			len(s.TraceStore().Windows(tracestore.WindowQuery{Tenant: "alpha"})) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace store never caught up: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Tier 1: windows, tenant-scoped by the path.
	var wresp struct {
		WindowSec float64                    `json:"window_sec"`
		Windows   []tracestore.WindowSummary `json:"windows"`
	}
	c.req("GET", "/v1/tenants/alpha/trace/windows", nil, http.StatusOK, &wresp)
	if wresp.WindowSec != 900 || len(wresp.Windows) == 0 {
		t.Fatalf("windows response %+v", wresp)
	}
	for _, w := range wresp.Windows {
		if w.Tenant != "alpha" {
			t.Fatalf("cross-tenant window leaked: %+v", w)
		}
	}
	start := wresp.Windows[0].Start

	// Tier 2/3/4 drill-downs answer on the same window.
	var det tracestore.WindowDetail
	c.req("GET", "/v1/tenants/alpha/trace/summary?start="+fmtFloat(start), nil, http.StatusOK, &det)
	if det.Window.Events == 0 {
		t.Fatalf("summary empty: %+v", det)
	}
	var cp tracestore.CriticalPath
	c.req("GET", "/v1/tenants/alpha/trace/critical-path?start="+fmtFloat(start)+"&k=5", nil, http.StatusOK, &cp)
	if cp.Events == 0 || len(cp.Links) > 5 {
		t.Fatalf("critical path %+v", cp)
	}
	var eresp struct {
		Events []tracestore.Event `json:"events"`
	}
	c.req("GET", "/v1/tenants/alpha/trace/events?span=te&limit=5", nil, http.StatusOK, &eresp)
	if len(eresp.Events) == 0 || len(eresp.Events) > 5 {
		t.Fatalf("events response %+v", eresp)
	}
	for _, e := range eresp.Events {
		if e.Tenant != "alpha" || e.Span != "te" {
			t.Fatalf("event filter leaked: %+v", e)
		}
	}

	// Malformed queries are 400, missing windows 404, unknown tenant 404.
	c.req("GET", "/v1/tenants/alpha/trace/windows?severity=maximal", nil, http.StatusBadRequest, nil)
	c.req("GET", "/v1/tenants/alpha/trace/summary", nil, http.StatusBadRequest, nil)
	c.req("GET", "/v1/tenants/alpha/trace/summary?start=9e9", nil, http.StatusNotFound, nil)
	c.req("GET", "/v1/tenants/nobody/trace/windows", nil, http.StatusNotFound, nil)

	// /metrics: tenant-labeled runtime families plus store bookkeeping,
	// consistent with what the store itself reports.
	page := c.getText("/metrics", http.StatusOK)
	for _, want := range []string{
		`response_lifecycle_checks_total{tenant="alpha"} `,
		`response_lifecycle_checks_total{tenant="beta"} `,
		`response_te_probe_rounds_total{tenant="alpha"} `,
		"# TYPE response_lifecycle_sim_seconds gauge",
		"response_tracestore_ingested_total ",
		"response_tracestore_tenants 2",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(page, `response_lifecycle_checks_total{tenant="alpha"} 0`) {
		t.Error("alpha advanced 3600 s but its lifecycle check counter is 0")
	}
}

func fmtFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
