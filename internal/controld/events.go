package controld

import (
	"bytes"
	"sync"
)

// hub fans the per-tenant JSONL event traces out to API subscribers.
// Each tenant runtime owns a trace.EventWriter writing into a
// tenantTee; the tee stamps every line with the tenant name and
// publishes it. Subscribers hold a bounded channel: a slow consumer
// loses events (counted), never stalls a tenant's simulation loop.
type hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

// subscriber is one event-stream consumer.
type subscriber struct {
	tenant  string // filter; "" receives every tenant
	ch      chan []byte
	dropped int
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscribe registers a consumer for one tenant's events ("" = all).
func (h *hub) subscribe(tenant string, buffer int) *subscriber {
	sub := &subscriber{tenant: tenant, ch: make(chan []byte, buffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(sub.ch)
		return sub
	}
	h.subs[sub] = struct{}{}
	return sub
}

// unsubscribe removes a consumer and closes its channel.
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// close terminates every subscriber stream (daemon drain).
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		close(sub.ch)
	}
	h.subs = make(map[*subscriber]struct{})
}

// publish delivers one event line to every matching subscriber,
// dropping on full buffers.
func (h *hub) publish(tenant string, line []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		if sub.tenant != "" && sub.tenant != tenant {
			continue
		}
		select {
		case sub.ch <- line:
		default:
			sub.dropped++
		}
	}
}

// tenantTee adapts a hub to the io.Writer a trace.EventWriter needs:
// it splits the JSONL stream into lines, splices the tenant name into
// each object and publishes it. The EventWriter emits one complete
// line per Write from the tenant loop goroutine, but the tee still
// buffers partial lines so any writer is safe.
type tenantTee struct {
	h      *hub
	tenant string
	prefix []byte
	part   []byte
}

func newTenantTee(h *hub, tenant string) *tenantTee {
	return &tenantTee{h: h, tenant: tenant, prefix: []byte(`{"tenant":"` + tenant + `",`)}
}

func (t *tenantTee) Write(p []byte) (int, error) {
	t.part = append(t.part, p...)
	for {
		i := bytes.IndexByte(t.part, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := t.part[:i]
		t.part = t.part[i+1:]
		if len(line) < 2 || line[0] != '{' {
			continue // not an event object; drop silently
		}
		out := make([]byte, 0, len(t.prefix)+len(line)-1)
		out = append(out, t.prefix...)
		out = append(out, line[1:]...)
		t.h.publish(t.tenant, out)
	}
}
