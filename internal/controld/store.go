package controld

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// artifactStore is one tenant's content-addressed plan-artifact shelf.
// Artifacts are immutable byte strings keyed by their SHA-256 digest,
// so identical plans dedupe for free and a digest in a promote request
// names exactly one byte sequence. Retention is bounded: once the
// shelf exceeds its cap, the oldest artifacts are garbage-collected —
// except the promoted one, the last-known-good one (the previous
// promote, the rollback target) and anything a promote currently has
// staged, which are never collected regardless of age.
type artifactStore struct {
	mu      sync.Mutex
	max     int
	seq     int
	entries map[string]*artifactEntry

	promoted string
	lastGood string
	staged   map[string]int // in-flight promote refcounts
}

// artifactEntry is one stored artifact plus its display metadata.
type artifactEntry struct {
	Digest      string `json:"digest"`
	Bytes       []byte `json:"-"`
	Size        int    `json:"size"`
	Fingerprint string `json:"fingerprint"`
	Variant     string `json:"variant"`
	PairCount   int    `json:"pairs"`
	Source      string `json:"source"`
	Seq         int    `json:"seq"`
	Promoted    bool   `json:"promoted"`
	LastGood    bool   `json:"last_good"`
}

func newArtifactStore(max int) *artifactStore {
	return &artifactStore{
		max:     max,
		entries: make(map[string]*artifactEntry),
		staged:  make(map[string]int),
	}
}

func digestOf(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// put stores raw under its content digest and runs retention GC.
func (st *artifactStore) put(raw []byte, fingerprint uint64, variant string, pairs int, source string) string {
	d := digestOf(raw)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[d]; !ok {
		st.seq++
		st.entries[d] = &artifactEntry{
			Digest:      d,
			Bytes:       raw,
			Size:        len(raw),
			Fingerprint: fmt.Sprintf("%016x", fingerprint),
			Variant:     variant,
			PairCount:   pairs,
			Source:      source,
			Seq:         st.seq,
		}
	}
	st.gcLocked()
	return d
}

// get returns the stored bytes for a digest.
func (st *artifactStore) get(digest string) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[digest]
	if !ok {
		return nil, false
	}
	return e.Bytes, true
}

// list returns the entries newest-first with the protection flags set.
func (st *artifactStore) list() []artifactEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]artifactEntry, 0, len(st.entries))
	for _, e := range st.entries {
		c := *e
		c.Promoted = e.Digest == st.promoted
		c.LastGood = e.Digest == st.lastGood
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// stage pins a digest against GC for the duration of a promote; the
// returned release must be called exactly once.
func (st *artifactStore) stage(digest string) (release func(), ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.entries[digest]; !ok {
		return nil, false
	}
	st.staged[digest]++
	var once sync.Once
	return func() {
		once.Do(func() {
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.staged[digest]--; st.staged[digest] <= 0 {
				delete(st.staged, digest)
			}
		})
	}, true
}

// setPromoted records a successful promote: the previous promoted
// artifact becomes the last-known-good rollback target.
func (st *artifactStore) setPromoted(digest string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if digest == st.promoted {
		return
	}
	if st.promoted != "" {
		st.lastGood = st.promoted
	}
	st.promoted = digest
}

// current returns the promoted and last-known-good digests.
func (st *artifactStore) current() (promoted, lastGood string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.promoted, st.lastGood
}

// gcLocked evicts the oldest unprotected entries down to the cap.
func (st *artifactStore) gcLocked() {
	for len(st.entries) > st.max {
		victim := ""
		minSeq := 0
		for d, e := range st.entries {
			if d == st.promoted || d == st.lastGood || st.staged[d] > 0 {
				continue
			}
			if victim == "" || e.Seq < minSeq {
				victim, minSeq = d, e.Seq
			}
		}
		if victim == "" {
			return // everything left is protected
		}
		delete(st.entries, victim)
	}
}
