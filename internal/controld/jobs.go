package controld

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"response"
)

// JobState is a plan job's lifecycle state.
type JobState string

// Job states. A job is terminal in JobDone, JobFailed or JobCanceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one asynchronous plan computation. Submission returns
// immediately with the job ID; the scheduler runs it when a worker
// slot and the tenant's turn come up. Cancel works in any non-terminal
// state: a queued job is unlinked without ever running, a running one
// has its context canceled so Planner.Plan unwinds with ErrCanceled.
type Job struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// WarmFrom is the digest of a shelved artifact the plan should
	// warm-start from ("" plans cold). Set at submission, immutable
	// after; resolved against the tenant's artifact store when the job
	// runs, strictly — a missing digest or a topology mismatch fails
	// the job rather than silently planning cold.
	WarmFrom string `json:"warm_from,omitempty"`

	mu     sync.Mutex
	state  JobState
	errMsg string
	digest string
	cancel context.CancelFunc
	done   chan struct{}
}

// snapshot is the JSON view of a job.
type jobView struct {
	ID       string   `json:"id"`
	Tenant   string   `json:"tenant"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Artifact string   `json:"artifact,omitempty"`
	WarmFrom string   `json:"warm_from,omitempty"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{ID: j.ID, Tenant: j.Tenant, State: j.state, Error: j.errMsg,
		Artifact: j.digest, WarmFrom: j.WarmFrom}
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) finish(state JobState, errMsg, digest string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.digest = digest
	j.cancel = nil
	j.mu.Unlock()
	close(j.done)
}

// errJobsDraining rejects submissions once shutdown has begun.
var errJobsDraining = errors.New("controld: job scheduler draining")

// scheduler runs plan jobs on a bounded worker pool with fair queueing
// across tenants: each tenant holds a FIFO queue, and free slots are
// handed out round-robin over the tenants that have work, so one
// tenant spraying submissions cannot starve the rest — with W workers,
// a newly submitted job waits at most (tenants with queued work) × (a
// slot's service time) regardless of any other tenant's backlog.
type scheduler struct {
	run func(ctx context.Context, j *Job) (digest string, err error)

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]*Job
	ring     []string // tenants with queued work, round-robin order
	rr       int
	running  map[string]*Job // by job ID
	jobs     map[string]*Job // every job ever, by ID (bounded by retention)
	byTenant map[string][]*Job
	slots    int
	inUse    int
	seq      int
	draining bool
	wg       sync.WaitGroup
}

// jobRetention bounds the per-tenant terminal-job history.
const jobRetention = 32

func newScheduler(workers int, run func(ctx context.Context, j *Job) (string, error)) *scheduler {
	s := &scheduler{
		run:      run,
		queues:   make(map[string][]*Job),
		running:  make(map[string]*Job),
		jobs:     make(map[string]*Job),
		byTenant: make(map[string][]*Job),
		slots:    workers,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.dispatch()
	return s
}

// submit enqueues a job for a tenant; warmFrom optionally names the
// artifact digest to warm-start from.
func (s *scheduler) submit(tenant, warmFrom string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errJobsDraining
	}
	s.seq++
	j := &Job{
		ID:       fmt.Sprintf("job-%s-%d", tenant, s.seq),
		Tenant:   tenant,
		WarmFrom: warmFrom,
		state:    JobQueued,
		done:     make(chan struct{}),
	}
	if len(s.queues[tenant]) == 0 {
		s.ring = append(s.ring, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], j)
	s.jobs[j.ID] = j
	s.byTenant[tenant] = append(s.byTenant[tenant], j)
	s.trimLocked(tenant)
	s.cond.Signal()
	return j, nil
}

// get returns a job by ID.
func (s *scheduler) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list returns a tenant's jobs, oldest first.
func (s *scheduler) list(tenant string) []jobView {
	s.mu.Lock()
	js := append([]*Job(nil), s.byTenant[tenant]...)
	s.mu.Unlock()
	out := make([]jobView, len(js))
	for i, j := range js {
		out[i] = j.view()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// cancelJob cancels one job. Queued jobs are unlinked and finish as
// JobCanceled without running; running jobs get their context
// canceled and finish when the planner unwinds. Terminal jobs are
// left alone (reported as false).
func (s *scheduler) cancelJob(id string) (bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false, fmt.Errorf("controld: unknown job %q", id)
	}
	// Queued: unlink from the tenant queue under the scheduler lock so
	// the dispatcher can never pick it concurrently.
	q := s.queues[j.Tenant]
	for i, qj := range q {
		if qj == j {
			s.queues[j.Tenant] = append(q[:i:i], q[i+1:]...)
			if len(s.queues[j.Tenant]) == 0 {
				delete(s.queues, j.Tenant)
				s.dropFromRing(j.Tenant)
			}
			s.mu.Unlock()
			j.finish(JobCanceled, "canceled while queued", "")
			return true, nil
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	cancel := j.cancel
	terminal := j.state != JobRunning
	j.mu.Unlock()
	if terminal {
		return false, nil
	}
	if cancel != nil {
		cancel()
	}
	return true, nil
}

// cancelTenant cancels every non-terminal job of one tenant
// (tenant deletion path).
func (s *scheduler) cancelTenant(tenant string) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.byTenant[tenant]))
	for _, j := range s.byTenant[tenant] {
		ids = append(ids, j.ID)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.cancelJob(id) //nolint:errcheck // unknown/terminal are fine here
	}
}

// forgetTenant drops a deleted tenant's job history.
func (s *scheduler) forgetTenant(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.byTenant[tenant] {
		delete(s.jobs, j.ID)
	}
	delete(s.byTenant, tenant)
}

// shutdown stops accepting jobs, cancels everything queued or running
// and waits for the workers to unwind.
func (s *scheduler) shutdown() {
	s.mu.Lock()
	s.draining = true
	var queued []*Job
	for t, q := range s.queues {
		queued = append(queued, q...)
		delete(s.queues, t)
	}
	s.ring = nil
	var cancels []context.CancelFunc
	for _, j := range s.running {
		j.mu.Lock()
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
		j.mu.Unlock()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range queued {
		j.finish(JobCanceled, "daemon draining", "")
	}
	for _, c := range cancels {
		c()
	}
	s.wg.Wait()
}

// dispatch is the scheduler loop: wait for a slot and queued work,
// pick the next tenant round-robin, pop its oldest job and run it on
// a fresh goroutine.
func (s *scheduler) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.draining && (s.inUse >= s.slots || len(s.ring) == 0) {
			s.cond.Wait()
		}
		if s.draining {
			// Outstanding workers are awaited by shutdown via s.wg.
			s.mu.Unlock()
			return
		}
		tenant := s.ring[s.rr%len(s.ring)]
		q := s.queues[tenant]
		j := q[0]
		if len(q) == 1 {
			delete(s.queues, tenant)
			s.dropFromRing(tenant)
		} else {
			s.queues[tenant] = q[1:]
			s.rr++ // move past this tenant for the next pick
		}
		s.inUse++
		s.running[j.ID] = j
		s.mu.Unlock()

		ctx, cancel := context.WithCancel(context.Background())
		j.mu.Lock()
		j.state = JobRunning
		j.cancel = cancel
		j.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.runOne(ctx, cancel, j)
		}()
	}
}

// runOne executes one job and releases its slot.
func (s *scheduler) runOne(ctx context.Context, cancel context.CancelFunc, j *Job) {
	defer cancel()
	digest, err := func() (d string, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("controld: plan job panicked: %v", r)
			}
		}()
		return s.run(ctx, j)
	}()
	switch {
	case err == nil:
		j.finish(JobDone, "", digest)
	case errors.Is(err, response.ErrCanceled) || errors.Is(err, context.Canceled):
		j.finish(JobCanceled, err.Error(), "")
	default:
		j.finish(JobFailed, err.Error(), "")
	}
	s.mu.Lock()
	delete(s.running, j.ID)
	s.inUse--
	s.cond.Signal()
	s.mu.Unlock()
}

// dropFromRing removes a tenant from the round-robin ring, keeping the
// rotation index stable for the tenants after it.
func (s *scheduler) dropFromRing(tenant string) {
	for i, t := range s.ring {
		if t == tenant {
			s.ring = append(s.ring[:i:i], s.ring[i+1:]...)
			if i < s.rr {
				s.rr--
			}
			if len(s.ring) > 0 {
				s.rr %= len(s.ring)
			} else {
				s.rr = 0
			}
			return
		}
	}
}

// trimLocked bounds a tenant's terminal-job history.
func (s *scheduler) trimLocked(tenant string) {
	js := s.byTenant[tenant]
	if len(js) <= jobRetention {
		return
	}
	kept := js[:0]
	excess := len(js) - jobRetention
	for _, j := range js {
		j.mu.Lock()
		terminal := j.state == JobDone || j.state == JobFailed || j.state == JobCanceled
		j.mu.Unlock()
		if excess > 0 && terminal {
			delete(s.jobs, j.ID)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	s.byTenant[tenant] = kept
}
