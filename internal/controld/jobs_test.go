package controld

// Job-lifecycle edge cases: cancel while queued (the job never runs),
// cancel mid-plan (the context unwinds Planner.Plan with ErrCanceled
// and the worker slot is freed), round-robin fairness across tenants,
// and artifact-store GC protection for the promoted / last-known-good
// / staged artifacts. The PlanHook seam stands in for the planner so
// blocking and cancellation are fully deterministic.

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"response"
)

// tinySpec is a minimal inline tenant: registration still plans it,
// but a triangle plans in microseconds.
func tinySpec(name string) TenantSpec {
	return TenantSpec{
		Name: name,
		Topology: TopologySpec{Inline: &InlineTopology{
			Name: "tri-" + name,
			Nodes: []InlineNode{
				{Name: "a"}, {Name: "b"}, {Name: "c"},
			},
			Links: []InlineLink{
				{A: "a", B: "b", CapacityGbps: 10},
				{A: "b", B: "c", CapacityGbps: 10},
				{A: "c", B: "a", CapacityGbps: 10},
			},
		}},
		Workload: &WorkloadSpec{Flows: 6},
	}
}

// blockingHook is a PlanHook whose calls park until released (or
// until their context is canceled, which wins).
type blockingHook struct {
	mu      sync.Mutex
	started chan string   // receives the tenant of each call as it begins
	release chan struct{} // close to let parked calls finish
	order   []string
}

func newBlockingHook() *blockingHook {
	return &blockingHook{
		started: make(chan string, 64),
		release: make(chan struct{}),
	}
}

func (h *blockingHook) plan(ctx context.Context, tenant string) (*response.Plan, error) {
	h.mu.Lock()
	h.order = append(h.order, tenant)
	h.mu.Unlock()
	h.started <- tenant
	select {
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: plan job canceled", response.ErrCanceled)
	case <-h.release:
		return nil, fmt.Errorf("hook finished without a plan")
	}
}

func (h *blockingHook) serviceOrder() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.order...)
}

func TestJobCancelWhileQueued(t *testing.T) {
	hook := newBlockingHook()
	_, c := newTestDaemon(t, Opts{Workers: 1, PlanHook: hook.plan})
	c.req("POST", "/v1/tenants", tinySpec("solo"), http.StatusCreated, nil)

	// First job occupies the only worker slot; the second stays queued.
	var j1, j2 jobView
	c.req("POST", "/v1/tenants/solo/jobs", nil, http.StatusAccepted, &j1)
	<-hook.started
	c.req("POST", "/v1/tenants/solo/jobs", nil, http.StatusAccepted, &j2)

	var res struct {
		Canceled bool    `json:"canceled"`
		Job      jobView `json:"job"`
	}
	c.req("DELETE", "/v1/tenants/solo/jobs/"+j2.ID, nil, http.StatusOK, &res)
	if !res.Canceled {
		t.Fatalf("cancel of queued job reported %+v", res)
	}
	if got := c.waitJob("solo", j2.ID); got.State != JobCanceled {
		t.Fatalf("queued job ended as %q, want canceled", got.State)
	}
	// The canceled job must never have reached the hook.
	if order := hook.serviceOrder(); len(order) != 1 {
		t.Fatalf("hook saw %d calls, want 1 (the running job only)", len(order))
	}
	// Canceling a terminal job is a polite no-op.
	c.req("DELETE", "/v1/tenants/solo/jobs/"+j2.ID, nil, http.StatusOK, &res)
	if res.Canceled {
		t.Fatal("cancel of a terminal job reported canceled=true")
	}
	// Unblock the runner; with the queued job gone it is the only one
	// left, and its non-cancel return path marks it failed.
	close(hook.release)
	if got := c.waitJob("solo", j1.ID); got.State != JobFailed {
		t.Fatalf("running job ended as %q, want failed", got.State)
	}
}

func TestJobCancelMidPlanFreesSlot(t *testing.T) {
	hook := newBlockingHook()
	_, c := newTestDaemon(t, Opts{Workers: 1, PlanHook: hook.plan})
	c.req("POST", "/v1/tenants", tinySpec("solo"), http.StatusCreated, nil)

	var j1 jobView
	c.req("POST", "/v1/tenants/solo/jobs", nil, http.StatusAccepted, &j1)
	<-hook.started // the hook is now parked on ctx

	c.req("DELETE", "/v1/tenants/solo/jobs/"+j1.ID, nil, http.StatusOK, nil)
	done := c.waitJob("solo", j1.ID)
	if done.State != JobCanceled {
		t.Fatalf("mid-plan cancel ended as %+v, want canceled", done)
	}

	// The slot must be free again: a second job starts running (its
	// hook call begins) without any release of the first.
	var j2 jobView
	c.req("POST", "/v1/tenants/solo/jobs", nil, http.StatusAccepted, &j2)
	select {
	case <-hook.started:
	case <-time.After(10 * time.Second):
		t.Fatal("slot was not freed by the mid-plan cancel")
	}
	c.req("DELETE", "/v1/tenants/solo/jobs/"+j2.ID, nil, http.StatusOK, nil)
	c.waitJob("solo", j2.ID)
}

// TestJobFairQueueing: with one worker, a tenant spraying submissions
// cannot starve another — service alternates round-robin.
func TestJobFairQueueing(t *testing.T) {
	hook := newBlockingHook()
	srv, c := newTestDaemon(t, Opts{Workers: 1, PlanHook: hook.plan})
	c.req("POST", "/v1/tenants", tinySpec("spray"), http.StatusCreated, nil)
	c.req("POST", "/v1/tenants", tinySpec("meek"), http.StatusCreated, nil)

	// Fill the slot, then queue: spray×3 ahead of meek×2 in arrival
	// order.
	var first jobView
	c.req("POST", "/v1/tenants/spray/jobs", nil, http.StatusAccepted, &first)
	<-hook.started
	var rest []jobView
	for _, tn := range []string{"spray", "spray", "spray", "meek", "meek"} {
		var j jobView
		c.req("POST", "/v1/tenants/"+tn+"/jobs", nil, http.StatusAccepted, &j)
		rest = append(rest, j)
	}
	// Release everything: parked calls return, queued ones start and
	// return in dispatch order.
	close(hook.release)
	for _, j := range rest {
		c.waitJob(j.Tenant, j.ID)
	}
	c.waitJob("spray", first.ID)
	order := hook.serviceOrder()
	want := []string{"spray", "spray", "meek", "spray", "meek", "spray"}
	if len(order) != len(want) {
		t.Fatalf("service order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v (round-robin)", order, want)
		}
	}
	_ = srv
}

func TestStoreGCProtection(t *testing.T) {
	st := newArtifactStore(3)
	put := func(tag string) string {
		return st.put([]byte(tag), 1, "v", 1, "test")
	}
	a, b, c := put("a"), put("b"), put("c")
	st.setPromoted(a)
	st.setPromoted(b) // a becomes last-known-good

	// The shelf is full with {promoted b, last-good a, c}. New puts
	// must evict only c-and-later unprotected entries, never a or b.
	for i := 0; i < 8; i++ {
		put(fmt.Sprintf("filler-%d", i))
	}
	if _, ok := st.get(a); !ok {
		t.Fatal("GC evicted the last-known-good artifact")
	}
	if _, ok := st.get(b); !ok {
		t.Fatal("GC evicted the promoted artifact")
	}
	if _, ok := st.get(c); ok {
		t.Fatal("GC kept an old unprotected artifact past the cap")
	}

	// A staged artifact survives GC for the duration of the pin.
	d := put("d")
	release, ok := st.stage(d)
	if !ok {
		t.Fatal("stage of a shelved artifact failed")
	}
	for i := 0; i < 8; i++ {
		put(fmt.Sprintf("late-%d", i))
	}
	if _, ok := st.get(d); !ok {
		t.Fatal("GC evicted a staged artifact mid-promote")
	}
	release()
	put("evictor")
	// After release d is fair game again (the oldest unprotected).
	if _, ok := st.get(d); ok {
		t.Fatal("released artifact was not GC-eligible")
	}

	// Promotion flags show up in the listing.
	for _, e := range st.list() {
		if e.Digest == b && !e.Promoted {
			t.Fatal("promoted flag missing in listing")
		}
		if e.Digest == a && !e.LastGood {
			t.Fatal("last-good flag missing in listing")
		}
	}
	if _, ok := st.stage("nope"); ok {
		t.Fatal("stage of an unknown digest succeeded")
	}
}

// TestJobSurvivesTenantDeletion: deleting a tenant cancels its
// running job and scrubs its job history.
func TestJobCanceledByTenantDeletion(t *testing.T) {
	hook := newBlockingHook()
	_, c := newTestDaemon(t, Opts{Workers: 1, PlanHook: hook.plan})
	c.req("POST", "/v1/tenants", tinySpec("doomed"), http.StatusCreated, nil)

	var j jobView
	c.req("POST", "/v1/tenants/doomed/jobs", nil, http.StatusAccepted, &j)
	<-hook.started
	c.req("DELETE", "/v1/tenants/doomed", nil, http.StatusNoContent, nil)
	c.req("GET", "/v1/tenants/doomed/jobs/"+j.ID, nil, http.StatusNotFound, nil)
}

// TestJobWarmFrom: a job naming a shelved artifact warm-starts from it
// (surfaced in the job view), and a bogus digest fails the job instead
// of silently planning cold.
func TestJobWarmFrom(t *testing.T) {
	_, c := newTestDaemon(t, Opts{Workers: 1})
	c.req("POST", "/v1/tenants", tinySpec("solo"), http.StatusCreated, nil)

	var j1 jobView
	c.req("POST", "/v1/tenants/solo/jobs", nil, http.StatusAccepted, &j1)
	cold := c.waitJob("solo", j1.ID)
	if cold.State != JobDone || cold.Artifact == "" {
		t.Fatalf("cold job ended as %+v, want done with an artifact", cold)
	}

	var j2 jobView
	c.req("POST", "/v1/tenants/solo/jobs", jobSubmitBody{WarmFrom: cold.Artifact},
		http.StatusAccepted, &j2)
	if j2.WarmFrom != cold.Artifact {
		t.Fatalf("submitted view WarmFrom = %q, want %q", j2.WarmFrom, cold.Artifact)
	}
	warm := c.waitJob("solo", j2.ID)
	if warm.State != JobDone || warm.Artifact == "" {
		t.Fatalf("warm job ended as %+v, want done with an artifact", warm)
	}
	if warm.WarmFrom != cold.Artifact {
		t.Errorf("terminal view WarmFrom = %q, want %q", warm.WarmFrom, cold.Artifact)
	}

	var j3 jobView
	c.req("POST", "/v1/tenants/solo/jobs", jobSubmitBody{WarmFrom: "sha256:nope"},
		http.StatusAccepted, &j3)
	bad := c.waitJob("solo", j3.ID)
	if bad.State != JobFailed {
		t.Fatalf("bogus warm_from ended as %+v, want failed", bad)
	}
	if !strings.Contains(bad.Error, "not found") {
		t.Errorf("failure message %q does not name the missing artifact", bad.Error)
	}
}
