package controld

import (
	"bytes"
	"errors"
	"fmt"
	"regexp"
	"sync"
	"time"

	"response"
	"response/internal/core"
	"response/internal/faultinject"
	"response/internal/metrics"
	"response/internal/scenario"
	"response/internal/sim"
	"response/internal/topo"
	"response/internal/topogen"
	"response/internal/trace"
	"response/internal/traffic"
)

// TenantSpec is the registration request body: a name, a topology
// source and the optional workload/lifecycle/fault-injection knobs of
// the tenant's runtime. Everything omitted takes the scenario
// catalog's diurnal defaults.
type TenantSpec struct {
	Name     string        `json:"name"`
	Topology TopologySpec  `json:"topology"`
	Workload *WorkloadSpec `json:"workload,omitempty"`
	Policy   *PolicySpec   `json:"policy,omitempty"`
	Faults   *FaultSpec    `json:"faults,omitempty"`
}

// TopologySpec names the tenant's network: exactly one of a built-in
// topology, a topogen family spec or an inline node/link list.
type TopologySpec struct {
	// Builtin names a packaged topology ("geant", "abovenet",
	// "genuity").
	Builtin string `json:"builtin,omitempty"`
	// Gen generates a synthetic instance (deterministic in its seed).
	Gen *GenSpec `json:"gen,omitempty"`
	// Inline builds the topology from an explicit node/link list.
	Inline *InlineTopology `json:"inline,omitempty"`
}

// GenSpec mirrors topogen.Config for the wire.
type GenSpec struct {
	Family       string  `json:"family"`
	Size         int     `json:"size,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	PeakUtil     float64 `json:"peak_util,omitempty"`
	MaxEndpoints int     `json:"max_endpoints,omitempty"`
}

// InlineTopology is a JSON node/link list. Node kinds default to
// router; link capacity is in Gbps and latency in milliseconds.
type InlineTopology struct {
	Name  string       `json:"name"`
	Nodes []InlineNode `json:"nodes"`
	Links []InlineLink `json:"links"`
}

// InlineNode declares one node by name.
type InlineNode struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind,omitempty"` // router|core|aggr|edge|host
	KmEast  float64 `json:"km_east,omitempty"`
	KmNorth float64 `json:"km_north,omitempty"`
}

// InlineLink declares one undirected link between named nodes.
type InlineLink struct {
	A            string  `json:"a"`
	B            string  `json:"b"`
	CapacityGbps float64 `json:"capacity_gbps"`
	LatencyMs    float64 `json:"latency_ms,omitempty"`
}

// WorkloadSpec sizes the tenant's managed-flow replay.
type WorkloadSpec struct {
	Flows    int     `json:"flows,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	PeakUtil float64 `json:"peak_util,omitempty"`
	StepSec  float64 `json:"step_sec,omitempty"`
	// SimRate paces the tenant loop at this many simulated seconds per
	// wall second (0 = manual: time moves only via the advance
	// endpoint, the deterministic mode tests and benchmarks use).
	SimRate float64 `json:"sim_rate,omitempty"`
}

// PolicySpec seeds the lifecycle manager's trigger policy (all
// optional; zero fields keep the lifecycle defaults). The same fields
// are hot-patchable later via PATCH …/config.
type PolicySpec struct {
	Deviation      float64 `json:"deviation,omitempty"`
	Spread         float64 `json:"spread,omitempty"`
	CheckSec       float64 `json:"check_sec,omitempty"`
	MinIntervalSec float64 `json:"min_interval_sec,omitempty"`
	LatencySec     float64 `json:"latency_sec,omitempty"`
	DeadlineSec    float64 `json:"deadline_sec,omitempty"`
	DegradedAfter  int     `json:"degraded_after,omitempty"`
}

// FaultSpec mirrors faultinject.Config for the wire: control-plane
// fault injection on the tenant's replan path.
type FaultSpec struct {
	Seed           int64   `json:"seed,omitempty"`
	FailFirst      int     `json:"fail_first,omitempty"`
	ErrorRate      float64 `json:"error_rate,omitempty"`
	InfeasibleRate float64 `json:"infeasible_rate,omitempty"`
	PanicRate      float64 `json:"panic_rate,omitempty"`
	SlowRate       float64 `json:"slow_rate,omitempty"`
	CorruptRate    float64 `json:"corrupt_rate,omitempty"`
	TruncateRate   float64 `json:"truncate_rate,omitempty"`
}

var tenantNameRe = regexp.MustCompile(`^[a-z0-9]([a-z0-9-]{0,62}[a-z0-9])?$`)

// errTenantStopped reports a command sent to a stopped tenant loop.
var errTenantStopped = errors.New("controld: tenant stopped")

// tenant is one registered control loop: a scenario replay owned by a
// single loop goroutine, plus the tenant's planner and artifact shelf.
// All replay access goes through do(), which runs the closure on the
// loop goroutine — the registry itself never touches the simulator.
type tenant struct {
	name      string
	spec      TenantSpec
	rep       *scenario.Replay
	planner   *response.Planner
	topoGraph *topo.Topology
	store     *artifactStore
	events    *trace.EventWriter
	metrics   *metrics.Runtime

	cmds chan func()
	quit chan struct{}
	dead chan struct{}

	rateMu  sync.Mutex
	simRate float64
}

// buildTopology resolves a TopologySpec to a validated, connected
// topology plus its endpoint universe.
func buildTopology(spec TopologySpec) (*topo.Topology, []topo.NodeID, error) {
	n := 0
	if spec.Builtin != "" {
		n++
	}
	if spec.Gen != nil {
		n++
	}
	if spec.Inline != nil {
		n++
	}
	if n != 1 {
		return nil, nil, fmt.Errorf("topology must set exactly one of builtin, gen, inline")
	}
	switch {
	case spec.Builtin != "":
		var g *topo.Topology
		switch spec.Builtin {
		case "geant":
			g = topo.NewGeant()
		case "abovenet":
			g = topo.NewAbovenet()
		case "genuity":
			g = topo.NewGenuity()
		default:
			return nil, nil, fmt.Errorf("unknown builtin topology %q (have: geant, abovenet, genuity)", spec.Builtin)
		}
		return g, core.DefaultEndpoints(g), nil
	case spec.Gen != nil:
		inst, err := topogen.Generate(topogen.Config{
			Family:       topogen.Family(spec.Gen.Family),
			Size:         spec.Gen.Size,
			Seed:         spec.Gen.Seed,
			PeakUtil:     spec.Gen.PeakUtil,
			MaxEndpoints: spec.Gen.MaxEndpoints,
		})
		if err != nil {
			return nil, nil, err
		}
		return inst.Topo, inst.Endpoints, nil
	default:
		return buildInline(spec.Inline)
	}
}

// buildInline constructs a topology from an explicit node/link list.
func buildInline(in *InlineTopology) (*topo.Topology, []topo.NodeID, error) {
	if in.Name == "" {
		return nil, nil, fmt.Errorf("inline topology needs a name")
	}
	if len(in.Nodes) < 2 || len(in.Links) < 1 {
		return nil, nil, fmt.Errorf("inline topology needs >= 2 nodes and >= 1 link")
	}
	g := topo.New(in.Name)
	ids := make(map[string]topo.NodeID, len(in.Nodes))
	for _, n := range in.Nodes {
		if n.Name == "" {
			return nil, nil, fmt.Errorf("inline node without a name")
		}
		if _, dup := ids[n.Name]; dup {
			return nil, nil, fmt.Errorf("duplicate inline node %q", n.Name)
		}
		var kind topo.Kind
		switch n.Kind {
		case "", "router":
			kind = topo.KindRouter
		case "core":
			kind = topo.KindCore
		case "aggr":
			kind = topo.KindAggr
		case "edge":
			kind = topo.KindEdge
		case "host":
			kind = topo.KindHost
		default:
			return nil, nil, fmt.Errorf("inline node %q: unknown kind %q", n.Name, n.Kind)
		}
		ids[n.Name] = g.AddNodeAt(n.Name, kind, n.KmEast, n.KmNorth)
	}
	for _, l := range in.Links {
		a, okA := ids[l.A]
		b, okB := ids[l.B]
		if !okA || !okB {
			return nil, nil, fmt.Errorf("inline link %s-%s references an unknown node", l.A, l.B)
		}
		if l.CapacityGbps <= 0 {
			return nil, nil, fmt.Errorf("inline link %s-%s needs capacity_gbps > 0", l.A, l.B)
		}
		lat := l.LatencyMs / 1000
		if l.LatencyMs == 0 {
			lat = 0.001
		}
		g.AddLink(a, b, l.CapacityGbps*1e9, lat)
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("inline topology invalid: %v", err)
	}
	if !g.Connected() {
		return nil, nil, fmt.Errorf("inline topology is not connected")
	}
	return g, core.DefaultEndpoints(g), nil
}

// newTenant plans the tenant's topology, installs its replay and
// starts the loop goroutine. The initial plan is stored as the
// promoted artifact, so every tenant always has a rollback anchor.
func newTenant(spec TenantSpec, h *hub, maxArtifacts int) (*tenant, error) {
	if !tenantNameRe.MatchString(spec.Name) {
		return nil, fmt.Errorf("tenant name %q must match %s", spec.Name, tenantNameRe)
	}
	g, endpoints, err := buildTopology(spec.Topology)
	if err != nil {
		return nil, err
	}
	cfg := scenario.Config{ReplanDeviation: 0.2, Flows: 200}
	simRate := 0.0
	if w := spec.Workload; w != nil {
		if w.Flows > 0 {
			cfg.Flows = w.Flows
		}
		cfg.Seed = w.Seed
		cfg.PeakUtil = w.PeakUtil
		cfg.StepSec = w.StepSec
		simRate = w.SimRate
	}
	if p := spec.Policy; p != nil {
		if p.Deviation > 0 {
			cfg.ReplanDeviation = p.Deviation
		}
		cfg.ReplanSpread = p.Spread
		cfg.ReplanCheck = p.CheckSec
		cfg.ReplanMinGap = p.MinIntervalSec
		cfg.ReplanLatency = p.LatencySec
		cfg.ReplanDeadline = p.DeadlineSec
		cfg.DegradedAfter = p.DegradedAfter
	}
	if f := spec.Faults; f != nil {
		cfg.Faults = faultinject.Config{
			Seed:           f.Seed,
			FailFirst:      f.FailFirst,
			ErrorRate:      f.ErrorRate,
			InfeasibleRate: f.InfeasibleRate,
			PanicRate:      f.PanicRate,
			SlowRate:       f.SlowRate,
			CorruptRate:    f.CorruptRate,
			TruncateRate:   f.TruncateRate,
		}
	}
	events := trace.NewEventWriter(newTenantTee(h, spec.Name))
	cfg.Events = events
	rt := &metrics.Runtime{}
	cfg.Metrics = rt
	rep, err := scenario.NewDiurnal(g, endpoints, cfg)
	if err != nil {
		return nil, err
	}
	t := &tenant{
		name:      spec.Name,
		spec:      spec,
		rep:       rep,
		planner:   response.NewPlanner(response.WithEndpoints(endpoints)),
		topoGraph: g,
		store:     newArtifactStore(maxArtifacts),
		events:    events,
		metrics:   rt,
		cmds:      make(chan func()),
		quit:      make(chan struct{}),
		dead:      make(chan struct{}),
		simRate:   simRate,
	}
	// Shelve the initial plan as the promoted artifact.
	initial := rep.Mgr.CurrentPlan()
	var buf bytes.Buffer
	if _, err := initial.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("serialize initial plan: %v", err)
	}
	d := t.store.put(buf.Bytes(), initial.Fingerprint(), initial.Variant(), len(initial.Pairs()), "initial")
	t.store.setPromoted(d)
	go t.loop()
	return t, nil
}

// loop owns the replay: it serializes every command and, when the
// tenant is paced, advances simulated time between commands. Nothing
// else may touch t.rep (Mgr.Metrics/State excepted — they are the
// snapshot accessors).
func (t *tenant) loop() {
	defer close(t.dead)
	const tick = 50 * time.Millisecond
	timer := time.NewTimer(tick)
	defer timer.Stop()
	for {
		select {
		case <-t.quit:
			t.rep.Mgr.Stop()
			return
		case cmd := <-t.cmds:
			cmd()
		case <-timer.C:
			if rate := t.rate(); rate > 0 {
				t.rep.Advance(rate * tick.Seconds())
			}
			timer.Reset(tick)
		}
	}
}

func (t *tenant) rate() float64 {
	t.rateMu.Lock()
	defer t.rateMu.Unlock()
	return t.simRate
}

func (t *tenant) setRate(r float64) {
	t.rateMu.Lock()
	t.simRate = r
	t.rateMu.Unlock()
}

// do runs fn on the loop goroutine and waits for it.
func (t *tenant) do(fn func()) error {
	done := make(chan struct{})
	select {
	case t.cmds <- func() { fn(); close(done) }:
	case <-t.dead:
		return errTenantStopped
	}
	select {
	case <-done:
		return nil
	case <-t.dead:
		return errTenantStopped
	}
}

// stop terminates the loop goroutine and waits for it to unwind.
func (t *tenant) stop() {
	select {
	case <-t.quit:
	default:
		close(t.quit)
	}
	<-t.dead
}

// liveMatrix snapshots the tenant's live demand matrix (run on the
// loop goroutine via do).
func (t *tenant) liveMatrixLocked() *traffic.Matrix {
	m := traffic.NewMatrix()
	t.rep.Ctrl.EachManaged(func(f *sim.Flow) {
		if f.Demand > 0 {
			m.Add(f.O, f.D, f.Demand)
		}
	})
	return m
}

// registry is the named-tenant table. Per-tenant state is behind each
// tenant's own loop; the registry lock only guards membership.
type registry struct {
	mu      sync.RWMutex
	tenants map[string]*tenant
}

func newRegistry() *registry {
	return &registry{tenants: make(map[string]*tenant)}
}

func (r *registry) add(t *tenant) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[t.name]; dup {
		return fmt.Errorf("controld: tenant %q already registered", t.name)
	}
	r.tenants[t.name] = t
	return nil
}

func (r *registry) get(name string) (*tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	return t, ok
}

func (r *registry) remove(name string) (*tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if ok {
		delete(r.tenants, name)
	}
	return t, ok
}

func (r *registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		out = append(out, n)
	}
	return out
}

func (r *registry) all() []*tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	return out
}
