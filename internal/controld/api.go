package controld

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"response"
	ilc "response/internal/lifecycle"
	"response/internal/metrics"
	"response/internal/tracestore"
)

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // response writer
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds every request body the daemon will read.
const maxBodyBytes = 8 << 20

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// planBytes serializes a plan to its versioned artifact bytes.
func planBytes(p *response.Plan) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// routes wires the management API. Mutating routes run through
// s.mutating, which refuses them once a drain has begun.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenantList)
	s.mux.HandleFunc("POST /v1/tenants", s.mutating(s.handleTenantCreate))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.withTenant(s.handleTenantStatus))
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.mutating(s.withTenant(s.handleTenantDelete)))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/advance", s.mutating(s.withTenant(s.handleAdvance)))
	s.mux.HandleFunc("PATCH /v1/tenants/{tenant}/config", s.mutating(s.withTenant(s.handleConfigPatch)))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/jobs", s.withTenant(s.handleJobList))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/jobs", s.mutating(s.withTenant(s.handleJobSubmit)))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/jobs/{job}", s.withTenant(s.handleJobGet))
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}/jobs/{job}", s.withTenant(s.handleJobCancel))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/artifacts", s.withTenant(s.handleArtifactList))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/artifacts", s.mutating(s.withTenant(s.handleArtifactUpload)))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/artifacts/{digest}", s.withTenant(s.handleArtifactGet))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/diff", s.withTenant(s.handleDiff))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/promote", s.mutating(s.withTenant(s.handlePromote)))
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/rollback", s.mutating(s.withTenant(s.handleRollback)))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/events", s.withTenant(s.handleTenantEvents))
	s.mux.HandleFunc("GET /v1/events", s.handleAllEvents)
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/trace/windows", s.withTenant(s.handleTraceWindows))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/trace/summary", s.withTenant(s.handleTraceSummary))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/trace/critical-path", s.withTenant(s.handleTraceCriticalPath))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}/trace/events", s.withTenant(s.handleTraceEvents))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// mutating refuses the request once a drain has begun.
func (s *Server) mutating(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, "daemon is draining")
			return
		}
		h(w, r)
	}
}

// withTenant resolves the {tenant} path segment.
func (s *Server) withTenant(h func(http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		t, ok := s.reg.get(name)
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown tenant %q", name)
			return
		}
		h(w, r, t)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"tenants":  len(s.reg.names()),
		"draining": s.draining.Load(),
	})
}

// tenantSummary is one row of the tenant listing.
type tenantSummary struct {
	Name     string `json:"name"`
	Topology string `json:"topology"`
	State    string `json:"state"`
}

func (s *Server) handleTenantList(w http.ResponseWriter, r *http.Request) {
	ts := s.reg.all()
	out := make([]tenantSummary, 0, len(ts))
	for _, t := range ts {
		out = append(out, tenantSummary{
			Name:     t.name,
			Topology: t.topoGraph.Name,
			State:    t.rep.Mgr.State().String(),
		})
	}
	// Deterministic order for clients and tests.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Name > out[j].Name; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var spec TenantSpec
	if !readJSON(w, r, &spec) {
		return
	}
	t, err := newTenant(spec, s.hub, s.opts.MaxArtifacts)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "register %q: %v", spec.Name, err)
		return
	}
	if err := s.reg.add(t); err != nil {
		t.stop()
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	st, _ := s.statusOf(t)
	writeJSON(w, http.StatusCreated, st)
}

// TenantStatus is the full status document of one tenant.
type TenantStatus struct {
	Name        string      `json:"name"`
	Topology    string      `json:"topology"`
	Fingerprint string      `json:"topology_fingerprint"`
	Nodes       int         `json:"nodes"`
	Links       int         `json:"links"`
	Flows       int         `json:"flows"`
	SimNow      float64     `json:"sim_now"`
	SimRate     float64     `json:"sim_rate"`
	State       string      `json:"state"`
	Plan        string      `json:"plan_fingerprint"`
	Promoted    string      `json:"promoted_artifact,omitempty"`
	LastGood    string      `json:"last_good_artifact,omitempty"`
	Injected    int         `json:"injected_faults"`
	Policy      ilc.Policy  `json:"policy"`
	Metrics     ilc.Metrics `json:"metrics"`
}

// statusOf gathers a tenant's status on its loop goroutine.
func (s *Server) statusOf(t *tenant) (TenantStatus, error) {
	st := TenantStatus{
		Name:        t.name,
		Topology:    t.topoGraph.Name,
		Fingerprint: fmt.Sprintf("%016x", t.topoGraph.Fingerprint()),
		Nodes:       t.topoGraph.NumNodes(),
		Links:       t.topoGraph.NumLinks(),
		SimRate:     t.rate(),
		State:       t.rep.Mgr.State().String(),
		Metrics:     t.rep.Mgr.Metrics(),
	}
	st.Promoted, st.LastGood = t.store.current()
	err := t.do(func() {
		st.Flows = t.rep.Flows()
		st.SimNow = t.rep.Sim.Now()
		st.Plan = fmt.Sprintf("%016x", t.rep.Mgr.CurrentPlan().Fingerprint())
		st.Injected = t.rep.InjectedFaults()
		st.Policy = t.rep.Mgr.Policy()
	})
	return st, err
}

func (s *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request, t *tenant) {
	st, err := s.statusOf(t)
	if err != nil {
		writeErr(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request, t *tenant) {
	if _, ok := s.reg.remove(t.name); !ok {
		writeErr(w, http.StatusNotFound, "unknown tenant %q", t.name)
		return
	}
	s.sched.cancelTenant(t.name)
	t.stop()
	s.sched.forgetTenant(t.name)
	w.WriteHeader(http.StatusNoContent)
}

type advanceRequest struct {
	SimSec float64 `json:"sim_sec"`
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req advanceRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.SimSec <= 0 || req.SimSec > 30*86400 {
		writeErr(w, http.StatusUnprocessableEntity, "sim_sec must be in (0, 30 days], got %g", req.SimSec)
		return
	}
	var now float64
	err := t.do(func() {
		t.rep.Advance(req.SimSec)
		now = t.rep.Sim.Now()
	})
	if err != nil {
		writeErr(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"sim_now": now})
}

// PolicyPatch is the PATCH …/config body: every field optional, the
// merged policy validated as a whole before any of it is applied.
type PolicyPatch struct {
	Deviation         *float64 `json:"deviation,omitempty"`
	Spread            *float64 `json:"spread,omitempty"`
	Hysteresis        *float64 `json:"hysteresis,omitempty"`
	MinIntervalSec    *float64 `json:"min_interval_sec,omitempty"`
	ReplanDeadlineSec *float64 `json:"replan_deadline_sec,omitempty"`
	RetryBaseSec      *float64 `json:"retry_base_sec,omitempty"`
	RetryMaxSec       *float64 `json:"retry_max_sec,omitempty"`
	DegradedAfter     *int     `json:"degraded_after,omitempty"`
	// NoWarmStart disables warm-starting deviation-triggered replans
	// from the promoted plan.
	NoWarmStart *bool `json:"no_warm_start,omitempty"`
	// SimRate repaces the tenant loop (0 pauses automatic time).
	SimRate *float64 `json:"sim_rate,omitempty"`
}

func (s *Server) handleConfigPatch(w http.ResponseWriter, r *http.Request, t *tenant) {
	var patch PolicyPatch
	if !readJSON(w, r, &patch) {
		return
	}
	if patch.SimRate != nil && (*patch.SimRate < 0 || *patch.SimRate > 1e6) {
		writeErr(w, http.StatusUnprocessableEntity, "sim_rate must be in [0, 1e6]")
		return
	}
	var applyErr error
	var applied ilc.Policy
	err := t.do(func() {
		p := t.rep.Mgr.Policy()
		if patch.Deviation != nil {
			p.Deviation = *patch.Deviation
		}
		if patch.Spread != nil {
			p.Spread = *patch.Spread
		}
		if patch.Hysteresis != nil {
			p.Hysteresis = *patch.Hysteresis
		}
		if patch.MinIntervalSec != nil {
			p.MinInterval = *patch.MinIntervalSec
		}
		if patch.ReplanDeadlineSec != nil {
			p.ReplanDeadline = *patch.ReplanDeadlineSec
		}
		if patch.RetryBaseSec != nil {
			p.RetryBase = *patch.RetryBaseSec
		}
		if patch.RetryMaxSec != nil {
			p.RetryMax = *patch.RetryMaxSec
		}
		if patch.DegradedAfter != nil {
			p.DegradedAfter = *patch.DegradedAfter
		}
		if patch.NoWarmStart != nil {
			p.NoWarmStart = *patch.NoWarmStart
		}
		// SetPolicy validates the merged policy and applies it whole, so
		// a rejected patch leaves every threshold untouched.
		if applyErr = t.rep.Mgr.SetPolicy(p); applyErr == nil {
			applied = t.rep.Mgr.Policy()
		}
	})
	if err != nil {
		writeErr(w, http.StatusGone, "%v", err)
		return
	}
	if applyErr != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", applyErr)
		return
	}
	if patch.SimRate != nil {
		t.setRate(*patch.SimRate)
	}
	writeJSON(w, http.StatusOK, map[string]any{"policy": applied, "sim_rate": t.rate()})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request, t *tenant) {
	writeJSON(w, http.StatusOK, s.sched.list(t.name))
}

// jobSubmitBody is the optional POST …/jobs body.
type jobSubmitBody struct {
	// WarmFrom names a shelved artifact (by digest) to warm-start the
	// plan from. The digest is resolved when the job runs; an unknown
	// digest or a topology mismatch fails the job.
	WarmFrom string `json:"warm_from,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request, t *tenant) {
	var body jobSubmitBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil && err != io.EOF {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.sched.submit(t.name, body.WarmFrom)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// jobOf resolves {job}, scoped to the tenant in the path.
func (s *Server) jobOf(w http.ResponseWriter, r *http.Request, t *tenant) (*Job, bool) {
	id := r.PathValue("job")
	j, ok := s.sched.get(id)
	if !ok || j.Tenant != t.name {
		writeErr(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request, t *tenant) {
	if j, ok := s.jobOf(w, r, t); ok {
		writeJSON(w, http.StatusOK, j.view())
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request, t *tenant) {
	j, ok := s.jobOf(w, r, t)
	if !ok {
		return
	}
	canceled, err := s.sched.cancelJob(j.ID)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"canceled": canceled, "job": j.view()})
}

func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request, t *tenant) {
	writeJSON(w, http.StatusOK, t.store.list())
}

func (s *Server) handleArtifactUpload(w http.ResponseWriter, r *http.Request, t *tenant) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	// ReadPlanFrom is the gate: topology match, fingerprints, CRC,
	// canonical form. Nothing unvalidated ever lands on the shelf.
	plan, err := response.ReadPlanFrom(bytes.NewReader(raw), t.topoGraph)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	d := t.store.put(raw, plan.Fingerprint(), plan.Variant(), len(plan.Pairs()), "upload")
	writeJSON(w, http.StatusCreated, map[string]string{"artifact": d})
}

func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request, t *tenant) {
	d := r.PathValue("digest")
	raw, ok := t.store.get(d)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown artifact %q", d)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.Write(raw) //nolint:errcheck // response writer
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request, t *tenant) {
	da, db := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if da == "" || db == "" {
		writeErr(w, http.StatusBadRequest, "diff needs ?a=<digest>&b=<digest>")
		return
	}
	pa, err := t.loadPlan(da)
	if err != nil {
		writeErr(w, http.StatusNotFound, "artifact a: %v", err)
		return
	}
	pb, err := t.loadPlan(db)
	if err != nil {
		writeErr(w, http.StatusNotFound, "artifact b: %v", err)
		return
	}
	diff, err := response.DiffPlans(pa, pb)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, diff)
}

// loadPlan parses a shelved artifact back into a plan.
func (t *tenant) loadPlan(digest string) (*response.Plan, error) {
	raw, ok := t.store.get(digest)
	if !ok {
		return nil, fmt.Errorf("unknown artifact %q", digest)
	}
	return response.ReadPlanFrom(bytes.NewReader(raw), t.topoGraph)
}

type promoteRequest struct {
	Artifact string `json:"artifact"`
}

// promoteDigest stages one shelved artifact into the tenant's
// lifecycle manager; shared by promote and rollback.
func (s *Server) promoteDigest(w http.ResponseWriter, t *tenant, digest string) {
	release, ok := t.store.stage(digest)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown artifact %q", digest)
		return
	}
	defer release()
	plan, err := t.loadPlan(digest)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	var stageErr error
	var result string
	err = t.do(func() {
		cur := t.rep.Mgr.CurrentPlan().Fingerprint()
		if stageErr = t.rep.Mgr.StageAndSwap(plan); stageErr != nil {
			return
		}
		if plan.Fingerprint() == cur {
			result = "unchanged" // duplicate promote: recomputation confirmed
		} else {
			result = "swapping"
		}
	})
	if err != nil {
		writeErr(w, http.StatusGone, "%v", err)
		return
	}
	if stageErr != nil {
		writeErr(w, http.StatusConflict, "%v", stageErr)
		return
	}
	if result == "swapping" {
		t.store.setPromoted(digest)
	}
	promoted, lastGood := t.store.current()
	writeJSON(w, http.StatusOK, map[string]string{
		"result": result, "promoted": promoted, "last_good": lastGood,
	})
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req promoteRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Artifact == "" {
		writeErr(w, http.StatusBadRequest, "promote needs an artifact digest")
		return
	}
	s.promoteDigest(w, t, req.Artifact)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request, t *tenant) {
	_, lastGood := t.store.current()
	if lastGood == "" {
		writeErr(w, http.StatusConflict, "no last-known-good artifact to roll back to")
		return
	}
	s.promoteDigest(w, t, lastGood)
}

// --- Trace-store incident queries (progressive disclosure: windows →
// summary → critical-path → events; DESIGN.md §11) ---

func (s *Server) handleTraceWindows(w http.ResponseWriter, r *http.Request, t *tenant) {
	q, err := tracestore.ParseWindowQuery(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q.Tenant = t.name
	wins := s.store.Windows(q)
	if wins == nil {
		wins = []tracestore.WindowSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"window_sec": s.store.WindowSec(),
		"windows":    wins,
	})
}

func (s *Server) handleTraceSummary(w http.ResponseWriter, r *http.Request, t *tenant) {
	q, err := tracestore.ParseDrillQuery(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	det, ok := s.store.Summary(t.name, q.Start)
	if !ok {
		writeErr(w, http.StatusNotFound, "no retained events in the window at %g", q.Start)
		return
	}
	writeJSON(w, http.StatusOK, det)
}

func (s *Server) handleTraceCriticalPath(w http.ResponseWriter, r *http.Request, t *tenant) {
	q, err := tracestore.ParseDrillQuery(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	cp := s.store.CriticalPathQuery(t.name, q.Start, q.K)
	if cp.Links == nil {
		cp.Links = []tracestore.LinkScore{}
	}
	writeJSON(w, http.StatusOK, cp)
}

func (s *Server) handleTraceEvents(w http.ResponseWriter, r *http.Request, t *tenant) {
	q, err := tracestore.ParseEventQuery(r.URL.Query())
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	q.Tenant = t.name
	evs := s.store.Events(q)
	if evs == nil {
		evs = []tracestore.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": evs})
}

// handleMetrics serves the Prometheus text page: every tenant's
// runtime counter families (tenant-labeled), then the trace store's
// own bookkeeping.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ts := s.reg.all()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	sets := make([]metrics.Labeled, 0, len(ts))
	for _, t := range ts {
		sets = append(sets, metrics.Labeled{Tenant: t.name, Runtime: t.metrics})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := metrics.WritePrometheus(w, sets); err != nil {
		return
	}
	s.store.WritePrometheus(w) //nolint:errcheck // response writer
}

func (s *Server) handleTenantEvents(w http.ResponseWriter, r *http.Request, t *tenant) {
	s.streamEvents(w, r, t.name)
}

func (s *Server) handleAllEvents(w http.ResponseWriter, r *http.Request) {
	s.streamEvents(w, r, r.URL.Query().Get("tenant"))
}

// streamEvents serves the live event stream as SSE (default) or NDJSON
// (?format=ndjson), optionally closing after ?max=N events.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, tenant string) {
	maxEvents := 0
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "max must be a positive integer")
			return
		}
		maxEvents = n
	}
	ndjson := r.URL.Query().Get("format") == "ndjson" ||
		r.Header.Get("Accept") == "application/x-ndjson"
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := s.hub.subscribe(tenant, s.opts.EventBuffer)
	defer s.hub.unsubscribe(sub)
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case line, open := <-sub.ch:
			if !open {
				return // daemon draining
			}
			var err error
			if ndjson {
				_, err = fmt.Fprintf(w, "%s\n", line)
			} else {
				_, err = fmt.Fprintf(w, "data: %s\n\n", line)
			}
			if err != nil {
				return
			}
			flusher.Flush()
			sent++
			if maxEvents > 0 && sent >= maxEvents {
				return
			}
		}
	}
}
