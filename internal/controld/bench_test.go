package controld

// BenchmarkControld100Tenants is the PR's acceptance gate: one daemon
// process hosting 100 tenants, each driven by its own goroutine through
// concurrent lifecycle rounds (manual time advances, async plan jobs,
// artifact promotion, hot config patches, diffs) over the real HTTP
// handler. Run it under -race; it fails if any tenant's installed
// tables break a paper invariant at the end.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"response/internal/core"
	"response/internal/verify"
)

// benchClient is a b-flavoured JSON client: helpers return the status
// code so callers can tolerate expected contention (e.g. a 409 from a
// promote racing a mid-swap manager).
type benchClient struct {
	b  *testing.B
	ts *httptest.Server
}

func (c *benchClient) req(method, path string, body, out any) int {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			c.b.Error(err)
			return 0
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.ts.URL+path, rd)
	if err != nil {
		c.b.Error(err)
		return 0
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		c.b.Errorf("%s %s: %v", method, path, err)
		return 0
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			c.b.Errorf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

// must fails the benchmark unless the request returns want.
func (c *benchClient) must(method, path string, body, out any, want int) {
	if got := c.req(method, path, body, out); got != want {
		c.b.Errorf("%s %s: status %d, want %d", method, path, got, want)
	}
}

func BenchmarkControld100Tenants(b *testing.B) {
	const (
		tenants = 100
		rounds  = 2
	)
	for iter := 0; iter < b.N; iter++ {
		s := New(Opts{Workers: 8, MaxArtifacts: 4})
		ts := httptest.NewServer(s.Handler())
		c := &benchClient{b: b, ts: ts}

		// Register all tenants concurrently: small Waxman graphs with a
		// light flow load, manual time so rounds are deterministic.
		var wg sync.WaitGroup
		for i := 0; i < tenants; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				spec := TenantSpec{
					Name:     fmt.Sprintf("t%03d", i),
					Topology: TopologySpec{Gen: &GenSpec{Family: "waxman", Size: 6, Seed: int64(1000 + i)}},
					Workload: &WorkloadSpec{Flows: 12, Seed: int64(i)},
				}
				if i%10 == 0 {
					// Every tenth tenant replans under fault injection.
					spec.Faults = &FaultSpec{Seed: int64(i), ErrorRate: 0.3}
				}
				c.must("POST", "/v1/tenants", spec, nil, http.StatusCreated)
			}(i)
		}
		wg.Wait()

		// Concurrent lifecycle loops: each tenant's goroutine advances
		// time, patches policy, runs a plan job, promotes the result and
		// diffs it against the shelf — all interleaving with 99 others.
		for i := 0; i < tenants; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				name := fmt.Sprintf("t%03d", i)
				base := "/v1/tenants/" + name
				for r := 0; r < rounds; r++ {
					c.must("POST", base+"/advance", advanceRequest{SimSec: 1800}, nil, http.StatusOK)

					dev := 0.15 + 0.01*float64(i%5)
					c.must("PATCH", base+"/config", PolicyPatch{Deviation: &dev}, nil, http.StatusOK)

					var job jobView
					c.must("POST", base+"/jobs", nil, &job, http.StatusAccepted)
					deadline := time.Now().Add(60 * time.Second)
					for {
						c.must("GET", base+"/jobs/"+job.ID, nil, &job, http.StatusOK)
						if job.State == JobDone || job.State == JobFailed || job.State == JobCanceled {
							break
						}
						if time.Now().After(deadline) {
							b.Errorf("%s: job %s stuck in %q", name, job.ID, job.State)
							return
						}
						time.Sleep(2 * time.Millisecond)
					}
					if job.State != JobDone {
						b.Errorf("%s: job %s ended %q (%s)", name, job.ID, job.State, job.Error)
						return
					}

					// Promotion can hit a manager mid-swap from the prior
					// round; 409 is legal contention, anything else is not.
					code := c.req("POST", base+"/promote",
						map[string]string{"artifact": job.Artifact}, nil)
					if code != http.StatusOK && code != http.StatusConflict {
						b.Errorf("%s: promote returned %d", name, code)
						return
					}
					// Let any staged swap complete before the next round.
					c.must("POST", base+"/advance", advanceRequest{SimSec: 1800}, nil, http.StatusOK)

					var arts []artifactEntry
					c.must("GET", base+"/artifacts", nil, &arts, http.StatusOK)
					if len(arts) >= 2 {
						code := c.req("GET", base+"/diff?a="+arts[len(arts)-1].Digest+"&b="+arts[0].Digest, nil, nil)
						if code != http.StatusOK {
							b.Errorf("%s: diff returned %d", name, code)
							return
						}
					}
				}
			}(i)
		}
		wg.Wait()

		// Invariant gate: every tenant's installed tables must still
		// satisfy the paper's properties. Plans are immutable, so the
		// loop-goroutine round-trip only snapshots the pointer.
		violations := 0
		for _, t := range s.reg.all() {
			var tb *core.Tables
			if err := t.do(func() { tb = t.rep.Mgr.CurrentPlan().Tables() }); err != nil {
				b.Errorf("%s: %v", t.name, err)
				continue
			}
			if rep := verify.CheckTables(t.topoGraph, tb, verify.Opts{}); !rep.Ok() {
				violations++
				b.Errorf("%s: invariant violations:\n%v", t.name, rep.Err())
			}
		}
		if violations != 0 {
			b.Fatalf("%d tenants with failed invariant checks", violations)
		}

		ts.Close()
		s.Close()
	}
	b.ReportMetric(float64(tenants), "tenants/op")
}
