// Package controld is the response module's planning-as-a-service
// control plane: a long-running daemon that hosts many independent
// REsPoNse control loops — tenants — in one process and exposes their
// full lifecycle over a REST/JSON management API.
//
// Each tenant is a planned topology (built-in, generated, or inline
// JSON) with a managed-flow diurnal replay, a traffic-engineering
// controller and a plan lifecycle manager, owned by a single loop
// goroutine. The daemon adds the multi-tenant machinery around them:
//
//   - a tenant registry with per-tenant command serialization,
//   - a bounded plan-job scheduler with round-robin fair queueing
//     across tenants (cancellation threads a context into
//     Planner.Plan, so a canceled job unwinds with ErrCanceled),
//   - a content-addressed plan-artifact store per tenant with bounded
//     retention — the promoted artifact, the last-known-good rollback
//     target and anything mid-promote are never collected — and
//     plan-to-plan structural diffing (response.DiffPlans),
//   - promote/rollback driving the tenant's lifecycle.Manager through
//     the same stage gates and zero-disruption hot swap a
//     deviation-triggered replan uses,
//   - a live event stream (SSE or NDJSON long-poll) multiplexing
//     every tenant's JSONL trace,
//   - an embedded trace store (response/tracestore) subscribed to the
//     same hub, serving the progressive-disclosure incident queries
//     (windows → summary → critical-path → events) per tenant,
//   - per-tenant runtime metrics and a Prometheus /metrics page, and
//   - hot config patches: PATCH validates the merged lifecycle policy
//     before any of it is applied, so a bad patch changes nothing.
//
// See DESIGN.md §9 for the API table and the concurrency argument, and
// §11 for the observability stack.
package controld

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"response"
	"response/internal/tracestore"
	"response/internal/traffic"
)

// Opts parameterizes a Server.
type Opts struct {
	// Workers bounds concurrently running plan jobs (default 4).
	Workers int
	// MaxArtifacts bounds each tenant's artifact shelf (default 8,
	// floor 3: promoted + last-known-good + one candidate).
	MaxArtifacts int
	// EventBuffer is the per-subscriber event channel depth (default
	// 256); a subscriber that falls further behind loses events.
	EventBuffer int
	// Trace parameterizes the embedded trace store serving the
	// …/trace/* incident queries (zero values take the tracestore
	// defaults: 1Mi events, 4096 windows per tenant, 900 s windows).
	Trace tracestore.Opts
	// PlanHook, when set, replaces the real planner for plan jobs —
	// a test seam for exercising cancellation and failure paths
	// deterministically.
	PlanHook func(ctx context.Context, tenant string) (*response.Plan, error)
}

func (o *Opts) defaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxArtifacts < 3 {
		if o.MaxArtifacts != 0 {
			o.MaxArtifacts = 3
		} else {
			o.MaxArtifacts = 8
		}
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 256
	}
}

// Server is the control-plane daemon: registry, scheduler, event hub
// and the HTTP API over them. Create one with New, mount Handler on
// an http.Server, and Drain it for a graceful shutdown.
type Server struct {
	opts  Opts
	reg   *registry
	sched *scheduler
	hub   *hub
	store *tracestore.Store
	mux   *http.ServeMux

	// ingestDone closes when the trace-store ingest goroutine has
	// drained its subscription (after hub.close).
	ingestDone chan struct{}

	draining  atomic.Bool
	drainOnce sync.Once
}

// New builds a Server.
func New(opts Opts) *Server {
	opts.defaults()
	s := &Server{
		opts:       opts,
		reg:        newRegistry(),
		hub:        newHub(),
		store:      tracestore.New(opts.Trace),
		mux:        http.NewServeMux(),
		ingestDone: make(chan struct{}),
	}
	s.sched = newScheduler(opts.Workers, s.runPlanJob)
	// The trace store is just another hub subscriber, behind a deep
	// buffer: a query burst can slow ingestion (dropped lines are the
	// same back-pressure answer every subscriber gets), but it can
	// never stall a tenant loop.
	sub := s.hub.subscribe("", 4096)
	go func() {
		defer close(s.ingestDone)
		for line := range sub.ch {
			s.store.IngestLine(line)
		}
	}()
	s.routes()
	return s
}

// TraceStore exposes the embedded trace store (the …/trace/* query
// backend) for in-process callers and tests.
func (s *Server) TraceStore() *tracestore.Store { return s.store }

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether a drain has begun (mutating requests are
// being refused).
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the daemon down: refuse new mutations,
// cancel every queued and running plan job, stop every tenant loop
// (each lifecycle manager stops on its own goroutine) and end every
// event stream. Idempotent; later calls return immediately.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.sched.shutdown()
		var wg sync.WaitGroup
		for _, t := range s.reg.all() {
			wg.Add(1)
			go func(t *tenant) {
				defer wg.Done()
				t.stop()
			}(t)
		}
		wg.Wait()
		s.hub.close()
		// The ingest goroutine drains its remaining buffer and exits, so
		// post-drain trace queries see every published event.
		<-s.ingestDone
	})
	return ctx.Err()
}

// Close is Drain with no deadline.
func (s *Server) Close() error { return s.Drain(context.Background()) }

// runPlanJob executes one plan job: snapshot the tenant's live demand
// on its loop goroutine, then plan (off-loop, cancellable) with the
// live matrix as d_low, and shelve the result as an artifact.
func (s *Server) runPlanJob(ctx context.Context, j *Job) (string, error) {
	t, ok := s.reg.get(j.Tenant)
	if !ok {
		return "", fmt.Errorf("controld: tenant %q deleted", j.Tenant)
	}
	var plan *response.Plan
	var err error
	if s.opts.PlanHook != nil {
		plan, err = s.opts.PlanHook(ctx, j.Tenant)
	} else {
		opts := []response.Option{}
		if j.WarmFrom != "" {
			// Resolve the warm-start digest strictly: a job that names a
			// seed gets that seed or fails, it never silently plans cold.
			raw, ok := t.store.get(j.WarmFrom)
			if !ok {
				return "", fmt.Errorf("controld: warm-start artifact %q not found", j.WarmFrom)
			}
			prev, rerr := response.ReadPlanFrom(bytes.NewReader(raw), t.topoGraph)
			if rerr != nil {
				return "", fmt.Errorf("controld: warm-start artifact %q: %w", j.WarmFrom, rerr)
			}
			opts = append(opts, response.WithWarmStartStrict(prev))
		}
		var live *traffic.Matrix
		if derr := t.do(func() { live = t.liveMatrixLocked() }); derr != nil {
			return "", derr
		}
		opts = append(opts, response.WithLowMatrix(live))
		plan, err = t.planner.Plan(ctx, t.topoGraph, opts...)
	}
	if err != nil {
		return "", err
	}
	raw, err := planBytes(plan)
	if err != nil {
		return "", err
	}
	return t.store.put(raw, plan.Fingerprint(), plan.Variant(), len(plan.Pairs()), "job:"+j.ID), nil
}
