package controld

// End-to-end exercise of the management API over real HTTP: tenant
// registration (generated, inline and builtin topologies), manual
// time, plan jobs, artifact shelving/diffing/promotion/rollback, hot
// config patches, the event stream and graceful drain. Tenants run in
// manual-time mode (sim_rate 0) so every assertion is deterministic:
// simulated time moves only when the test POSTs an advance.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"response"
)

// testClient wraps an httptest server with JSON helpers.
type testClient struct {
	t  *testing.T
	ts *httptest.Server
}

func newTestDaemon(t *testing.T, opts Opts) (*Server, *testClient) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, &testClient{t: t, ts: ts}
}

// req performs one JSON request and decodes the response into out
// (skipped when out is nil). It fails the test unless the status
// matches want.
func (c *testClient) req(method, path string, body any, want int, out any) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.ts.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.ts.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		c.t.Fatalf("%s %s: status %d, want %d; body: %s", method, path, resp.StatusCode, want, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
}

// genSpec is the small generated tenant the tests register.
func genSpec(name string, seed int64) TenantSpec {
	return TenantSpec{
		Name:     name,
		Topology: TopologySpec{Gen: &GenSpec{Family: "waxman", Size: 8, Seed: seed}},
		Workload: &WorkloadSpec{Flows: 30, Seed: seed},
	}
}

func (c *testClient) advance(name string, simSec float64) {
	c.t.Helper()
	c.req("POST", "/v1/tenants/"+name+"/advance", advanceRequest{SimSec: simSec}, http.StatusOK, nil)
}

func (c *testClient) status(name string) TenantStatus {
	c.t.Helper()
	var st TenantStatus
	c.req("GET", "/v1/tenants/"+name, nil, http.StatusOK, &st)
	return st
}

// waitJob polls a job until it reaches a terminal state.
func (c *testClient) waitJob(tenant, id string) jobView {
	c.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v jobView
		c.req("GET", "/v1/tenants/"+tenant+"/jobs/"+id, nil, http.StatusOK, &v)
		switch v.State {
		case JobDone, JobFailed, JobCanceled:
			return v
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s stuck in state %q", id, v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	s, c := newTestDaemon(t, Opts{Workers: 2, MaxArtifacts: 4})

	var health struct {
		OK      bool `json:"ok"`
		Tenants int  `json:"tenants"`
	}
	c.req("GET", "/v1/healthz", nil, http.StatusOK, &health)
	if !health.OK || health.Tenants != 0 {
		t.Fatalf("healthz = %+v", health)
	}

	// Register a generated tenant; re-registration conflicts; a spec
	// without a topology is rejected with nothing half-created.
	var created TenantStatus
	c.req("POST", "/v1/tenants", genSpec("alpha", 1), http.StatusCreated, &created)
	if created.Name != "alpha" || created.Flows != 30 || created.State != "idle" {
		t.Fatalf("created = %+v", created)
	}
	if created.Promoted == "" {
		t.Fatal("initial plan was not shelved as the promoted artifact")
	}
	c.req("POST", "/v1/tenants", genSpec("alpha", 2), http.StatusConflict, nil)
	c.req("POST", "/v1/tenants", TenantSpec{Name: "broken"}, http.StatusUnprocessableEntity, nil)
	c.req("POST", "/v1/tenants", TenantSpec{
		Name:     "Bad Name!",
		Topology: TopologySpec{Builtin: "geant"},
	}, http.StatusUnprocessableEntity, nil)

	// Inline topology: a 4-node ring of 10 Gbps links.
	inline := TenantSpec{
		Name: "ringo",
		Topology: TopologySpec{Inline: &InlineTopology{
			Name: "tiny-ring",
			Nodes: []InlineNode{
				{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"},
			},
			Links: []InlineLink{
				{A: "a", B: "b", CapacityGbps: 10}, {A: "b", B: "c", CapacityGbps: 10},
				{A: "c", B: "d", CapacityGbps: 10}, {A: "d", B: "a", CapacityGbps: 10},
			},
		}},
		Workload: &WorkloadSpec{Flows: 12},
	}
	c.req("POST", "/v1/tenants", inline, http.StatusCreated, nil)
	// A disconnected inline topology is refused.
	bad := inline
	bad.Name = "discon"
	bad.Topology = TopologySpec{Inline: &InlineTopology{
		Name:  "cut",
		Nodes: []InlineNode{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Links: []InlineLink{{A: "a", B: "b", CapacityGbps: 10}},
	}}
	c.req("POST", "/v1/tenants", bad, http.StatusUnprocessableEntity, nil)

	var listed []tenantSummary
	c.req("GET", "/v1/tenants", nil, http.StatusOK, &listed)
	if len(listed) != 2 || listed[0].Name != "alpha" || listed[1].Name != "ringo" {
		t.Fatalf("tenant list = %+v", listed)
	}

	// Manual time: advance moves the simulator exactly as asked.
	c.advance("alpha", 1800)
	if st := c.status("alpha"); st.SimNow != 1800 {
		t.Fatalf("sim_now = %g after advance 1800", st.SimNow)
	}
	c.req("POST", "/v1/tenants/alpha/advance", advanceRequest{SimSec: -5}, http.StatusUnprocessableEntity, nil)

	// Let demand drift well off the plan-time matrix, then plan
	// against the live demand via an async job.
	c.advance("alpha", 4*3600)
	var job jobView
	c.req("POST", "/v1/tenants/alpha/jobs", nil, http.StatusAccepted, &job)
	done := c.waitJob("alpha", job.ID)
	if done.State != JobDone || done.Artifact == "" {
		t.Fatalf("job = %+v", done)
	}
	var jobs []jobView
	c.req("GET", "/v1/tenants/alpha/jobs", nil, http.StatusOK, &jobs)
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("job list = %+v", jobs)
	}

	// The artifact shelf now holds the initial plan and (if the
	// demand-aware replan changed anything) the job result.
	var arts []artifactEntry
	c.req("GET", "/v1/tenants/alpha/artifacts", nil, http.StatusOK, &arts)
	if len(arts) < 1 || len(arts) > 2 {
		t.Fatalf("artifact shelf = %+v", arts)
	}
	initial := c.status("alpha").Promoted

	// Structural diff between the initial plan and the job's plan.
	var diff response.PlanDiff
	c.req("GET", fmt.Sprintf("/v1/tenants/alpha/diff?a=%s&b=%s", initial, done.Artifact),
		nil, http.StatusOK, &diff)
	if diff.FingerprintA == 0 || diff.PairsA == 0 {
		t.Fatalf("diff = %+v", diff)
	}
	if diff.Identical != (initial == done.Artifact) {
		t.Fatalf("diff.Identical=%v but digests %q vs %q", diff.Identical, initial, done.Artifact)
	}
	c.req("GET", "/v1/tenants/alpha/diff?a="+initial, nil, http.StatusBadRequest, nil)
	c.req("GET", "/v1/tenants/alpha/diff?a="+initial+"&b=nope", nil, http.StatusNotFound, nil)

	// Promote the job's plan through the lifecycle manager's stage
	// gates, complete the hot swap on simulated time, then roll back.
	var prom map[string]string
	c.req("POST", "/v1/tenants/alpha/promote", promoteRequest{Artifact: done.Artifact},
		http.StatusOK, &prom)
	changed := initial != done.Artifact
	if changed && prom["result"] != "swapping" {
		t.Fatalf("promote = %+v", prom)
	}
	c.advance("alpha", 1800) // drain grace + migration on simulated time
	st := c.status("alpha")
	if st.State != "idle" {
		t.Fatalf("state %q after swap window", st.State)
	}
	if changed && st.Promoted != done.Artifact {
		t.Fatalf("promoted = %q, want %q", st.Promoted, done.Artifact)
	}
	// Duplicate promote of the already-installed plan: recomputation
	// confirmed, nothing redeployed.
	c.req("POST", "/v1/tenants/alpha/promote", promoteRequest{Artifact: st.Promoted},
		http.StatusOK, &prom)
	if prom["result"] != "unchanged" {
		t.Fatalf("duplicate promote = %+v", prom)
	}
	if changed {
		c.req("POST", "/v1/tenants/alpha/rollback", nil, http.StatusOK, &prom)
		if prom["result"] != "swapping" || prom["promoted"] != initial {
			t.Fatalf("rollback = %+v", prom)
		}
		c.advance("alpha", 1800)
		if st := c.status("alpha"); st.Promoted != initial {
			t.Fatalf("promoted after rollback = %q, want %q", st.Promoted, initial)
		}
	} else {
		c.req("POST", "/v1/tenants/alpha/rollback", nil, http.StatusConflict, nil)
	}

	// Hot config patch: an invalid merge changes nothing; a valid one
	// applies and reads back.
	before := c.status("alpha").Policy
	c.req("PATCH", "/v1/tenants/alpha/config",
		PolicyPatch{Spread: f64(1.5)}, http.StatusUnprocessableEntity, nil)
	if got := c.status("alpha").Policy; got != before {
		t.Fatalf("rejected patch mutated policy: %+v -> %+v", before, got)
	}
	c.req("PATCH", "/v1/tenants/alpha/config",
		PolicyPatch{Spread: f64(0.9), DegradedAfter: intp(5)}, http.StatusOK, nil)
	after := c.status("alpha").Policy
	if after.Spread != 0.9 || after.DegradedAfter != 5 {
		t.Fatalf("patched policy = %+v", after)
	}
	// Repace the tenant loop, then pause it again.
	c.req("PATCH", "/v1/tenants/alpha/config", PolicyPatch{SimRate: f64(50)}, http.StatusOK, nil)
	if got := c.status("alpha").SimRate; got != 50 {
		t.Fatalf("sim_rate = %g after patch", got)
	}
	c.req("PATCH", "/v1/tenants/alpha/config", PolicyPatch{SimRate: f64(0)}, http.StatusOK, nil)

	// Raw artifact fetch round-trips through the hardened reader, and
	// uploads are gated by it: a cross-topology artifact and garbage
	// are both refused, a valid re-upload dedupes to the same digest.
	resp, err := http.Get(c.ts.URL + "/v1/tenants/alpha/artifacts/" + st.Promoted)
	if err != nil {
		t.Fatal(err)
	}
	rawArt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(rawArt) < 40 {
		t.Fatalf("artifact fetch: status %d, %d bytes", resp.StatusCode, len(rawArt))
	}
	up := func(tenant string, body []byte) int {
		resp, err := http.Post(c.ts.URL+"/v1/tenants/"+tenant+"/artifacts",
			"application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := up("ringo", rawArt); code != http.StatusUnprocessableEntity {
		t.Fatalf("cross-topology upload: status %d", code)
	}
	if code := up("alpha", []byte("garbage")); code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage upload: status %d", code)
	}
	if code := up("alpha", rawArt); code != http.StatusCreated {
		t.Fatalf("valid upload: status %d", code)
	}

	// Event stream: subscribe (NDJSON, one event), then drive time
	// until the tenant's trace delivers.
	streamed := make(chan string, 1)
	go func() {
		resp, err := http.Get(c.ts.URL + "/v1/tenants/alpha/events?format=ndjson&max=1")
		if err != nil {
			streamed <- "err: " + err.Error()
			return
		}
		defer resp.Body.Close()
		line, _ := bufio.NewReader(resp.Body).ReadString('\n')
		streamed <- line
	}()
	var line string
	deadline := time.After(20 * time.Second)
waitEvent:
	for {
		select {
		case line = <-streamed:
			break waitEvent
		case <-deadline:
			t.Fatal("no event arrived on the stream")
		default:
			c.advance("alpha", 900)
			time.Sleep(20 * time.Millisecond)
		}
	}
	var ev struct {
		Tenant string  `json:"tenant"`
		TS     float64 `json:"ts"`
		Span   string  `json:"span"`
	}
	if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Tenant != "alpha" || ev.Span == "" {
		t.Fatalf("streamed event %q (err %v)", line, err)
	}

	// Delete a tenant; it is gone from every route.
	c.req("DELETE", "/v1/tenants/ringo", nil, http.StatusNoContent, nil)
	c.req("GET", "/v1/tenants/ringo", nil, http.StatusNotFound, nil)
	c.req("DELETE", "/v1/tenants/ringo", nil, http.StatusNotFound, nil)

	// Drain: mutations refused, reads still served, tenants stopped.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	c.req("POST", "/v1/tenants", genSpec("late", 9), http.StatusServiceUnavailable, nil)
	c.req("POST", "/v1/tenants/alpha/advance", advanceRequest{SimSec: 900}, http.StatusServiceUnavailable, nil)
	c.req("GET", "/v1/tenants", nil, http.StatusOK, nil)
}

// TestFaultTenantDegradedCycle registers one fault-injected tenant and
// one healthy one, drives simulated time and requires the faulty
// tenant to enter AND exit the Degraded all-on fallback while the
// healthy tenant never leaves steady state.
func TestFaultTenantDegradedCycle(t *testing.T) {
	_, c := newTestDaemon(t, Opts{Workers: 2})

	faulty := genSpec("faulty", 3)
	faulty.Policy = &PolicySpec{
		Deviation:      0.05,
		Spread:         0.1,
		CheckSec:       900,
		MinIntervalSec: 900,
		DegradedAfter:  2,
	}
	faulty.Faults = &FaultSpec{FailFirst: 4}
	c.req("POST", "/v1/tenants", faulty, http.StatusCreated, nil)

	healthy := genSpec("healthy", 3)
	healthy.Policy = &PolicySpec{
		Deviation: 0.05, Spread: 0.1, CheckSec: 900, MinIntervalSec: 900,
	}
	c.req("POST", "/v1/tenants", healthy, http.StatusCreated, nil)

	sawDegraded := false
	var st TenantStatus
	for round := 0; round < 120; round++ {
		c.advance("faulty", 900)
		c.advance("healthy", 900)
		st = c.status("faulty")
		if st.State == "degraded" {
			sawDegraded = true
		}
		if sawDegraded && st.Metrics.DegradedExited > 0 && st.State != "degraded" {
			break
		}
	}
	if !sawDegraded {
		t.Fatalf("faulty tenant never entered Degraded: %+v", st.Metrics)
	}
	if st.Metrics.DegradedExited == 0 || st.State == "degraded" {
		t.Fatalf("faulty tenant never recovered: state %q, metrics %+v", st.State, st.Metrics)
	}
	if st.Injected == 0 {
		t.Fatal("fault injector reported no injected faults")
	}

	hs := c.status("healthy")
	if hs.Metrics.DegradedEntered != 0 || hs.State == "degraded" {
		t.Fatalf("healthy tenant degraded alongside the faulty one: state %q, metrics %+v",
			hs.State, hs.Metrics)
	}
	if hs.Metrics.Checks == 0 {
		t.Fatal("healthy tenant's monitor never ran")
	}
}

// TestStreamSSEFormat checks the server-sent-events framing.
func TestStreamSSEFormat(t *testing.T) {
	_, c := newTestDaemon(t, Opts{})
	c.req("POST", "/v1/tenants", genSpec("ssetee", 5), http.StatusCreated, nil)

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get(c.ts.URL + "/v1/events?tenant=ssetee&max=1")
		if err != nil {
			got <- "err: " + err.Error()
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			got <- "bad content-type: " + ct
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		got <- string(raw)
	}()
	deadline := time.After(20 * time.Second)
	for {
		select {
		case body := <-got:
			if !strings.HasPrefix(body, "data: {\"tenant\":\"ssetee\",") || !strings.HasSuffix(body, "\n\n") {
				t.Fatalf("SSE frame = %q", body)
			}
			return
		case <-deadline:
			t.Fatal("no SSE event arrived")
		default:
			c.advance("ssetee", 900)
			time.Sleep(20 * time.Millisecond)
		}
	}
}

func f64(v float64) *float64 { return &v }
func intp(v int) *int        { return &v }
