package te

import "math"

// probeWheel is the controller's probe delivery scheduler. Managed
// flows are hashed into wheel groups by their probe RTT (the delay
// between snapshotting a path's utilization and the edge agent hearing
// about it); one probe round issues a single simulator event per
// non-empty group, carrying a pooled flat buffer of utilizations for
// every flow in the group.
//
// This replaces the seed runtime's per-flow After closure and
// per-probe make([]float64, …): at 100k managed flows a probe round
// costs a handful of events and zero steady-state allocations.
type probeWheel struct {
	// gran is the wheel's slot granularity: probe RTTs are rounded up
	// to a multiple of it, so a topology with thousands of distinct
	// path RTTs still delivers each round in a bounded number of
	// batched events (at most period/gran slots). Feedback arrives at
	// most one slot later than the true RTT — well inside the
	// controller's damping margin.
	gran   float64
	groups []wheelGroup
	byRTT  map[float64]int

	scratchBuf []float64 // for synchronous DecideOnce calls
}

// wheelGroup is one wheel slot: the flows whose probes complete after
// the same RTT.
type wheelGroup struct {
	rtt     float64
	slots   []int // controller flow indices, in Manage order
	utilLen int   // Σ len(f.Paths) over slots
	free    [][]float64
	// inFlight counts snapshot buffers between grab and release; slot
	// compaction must not reorder slots while one is outstanding (its
	// delivery indexes the slot layout pinned at probe time).
	inFlight int
}

// add registers a managed flow (by its controller slot) with the wheel.
func (w *probeWheel) add(slot int, rtt float64, paths int) {
	if w.byRTT == nil {
		w.byRTT = make(map[float64]int)
	}
	if w.gran > 0 && rtt > 0 {
		rtt = math.Ceil(rtt/w.gran) * w.gran
	}
	gi, ok := w.byRTT[rtt]
	if !ok {
		gi = len(w.groups)
		w.byRTT[rtt] = gi
		w.groups = append(w.groups, wheelGroup{rtt: rtt})
	}
	g := &w.groups[gi]
	g.slots = append(g.slots, slot)
	g.utilLen += paths
}

// grab returns a utilization buffer covering the group's current flow
// set, reusing a pooled one when available. In steady state the pool
// holds ceil(rtt/period)+1 buffers and grab never allocates.
func (g *wheelGroup) grab() []float64 {
	g.inFlight++
	if n := len(g.free); n > 0 {
		buf := g.free[n-1]
		g.free = g.free[:n-1]
		if cap(buf) >= g.utilLen {
			return buf[:g.utilLen]
		}
	}
	return make([]float64, g.utilLen)
}

// release returns a delivered buffer to the pool.
func (g *wheelGroup) release(buf []float64) {
	g.inFlight--
	g.free = append(g.free, buf)
}

// compact drops slots whose flow has been removed, preserving slot
// order. Callers must ensure no snapshot is in flight.
func (g *wheelGroup) compact(removed func(slot int) bool, paths func(slot int) int) {
	kept := g.slots[:0]
	utilLen := 0
	for _, slot := range g.slots {
		if removed(slot) {
			continue
		}
		kept = append(kept, slot)
		utilLen += paths(slot)
	}
	g.slots = kept
	g.utilLen = utilLen
}

// inFlight sums outstanding snapshot buffers across all groups.
func (w *probeWheel) inFlight() int {
	n := 0
	for gi := range w.groups {
		n += w.groups[gi].inFlight
	}
	return n
}

// remapSlots rewrites every group's slot indices through remap
// (dropping entries mapped to -1), preserving slot order. Callers must
// ensure no snapshot is in flight in any group.
func (w *probeWheel) remapSlots(remap []int, paths func(slot int) int) {
	for gi := range w.groups {
		g := &w.groups[gi]
		kept := g.slots[:0]
		utilLen := 0
		for _, slot := range g.slots {
			ns := remap[slot]
			if ns < 0 {
				continue
			}
			kept = append(kept, ns)
			utilLen += paths(ns)
		}
		g.slots = kept
		g.utilLen = utilLen
	}
}

// scratch returns a reusable buffer for synchronous decisions.
func (w *probeWheel) scratch(n int) []float64 {
	if cap(w.scratchBuf) < n {
		w.scratchBuf = make([]float64, n)
	}
	return w.scratchBuf[:n]
}
