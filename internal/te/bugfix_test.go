package te

import (
	"math"
	"testing"

	"response/internal/sim"
	"response/internal/topo"
)

// evacTopo builds a two-path topology tuned so a probe is in flight
// when a failure notification lands: link latency 0.1 s makes the
// probe RTT (0.4 s) exceed failure detect+propagate (0.11 s), and a
// 1 s wake keeps the evacuation pending while the probe delivers.
func evacTopo(t *testing.T) (*sim.Simulator, *Controller, *sim.Flow, topo.LinkID) {
	t.Helper()
	tp := topo.New("evac")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	direct := tp.AddLink(a, b, 10*topo.Mbps, 0.1)
	tp.AddLink(a, c, 10*topo.Mbps, 0.1)
	tp.AddLink(c, b, 10*topo.Mbps, 0.1)
	ab, _ := tp.ArcBetween(a, b)
	ac, _ := tp.ArcBetween(a, c)
	cb, _ := tp.ArcBetween(c, b)
	s := sim.New(tp, sim.Opts{
		WakeUpDelay:      1,
		SleepAfterIdle:   0.05,
		FailureDetect:    0.05,
		FailurePropagate: 0.06,
	})
	ctrl := NewController(s, Opts{Threshold: 0.9, Period: 0.4})
	f, err := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{
		{Arcs: []topo.ArcID{ab}},
		{Arcs: []topo.ArcID{ac, cb}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Manage(f)
	return s, ctrl, f, direct
}

// TestNoDoubleEvacuation is the regression test for the double
// evacuation bug: the failure handler evacuates the failed primary and
// books a wake-then-shift; the probe that was in flight when the
// failure landed then also sees the failed primary and must NOT book a
// second wake-then-shift for the same level.
func TestNoDoubleEvacuation(t *testing.T) {
	s, ctrl, f, direct := evacTopo(t)
	ctrl.Start()
	s.Run(2) // failover path (idle) falls asleep; probes cycle
	if s.PathPhase(f.Paths[1]) != sim.LinkSleeping {
		t.Fatalf("failover phase = %v, want sleeping", s.PathPhase(f.Paths[1]))
	}
	// Fail the primary just after a probe snapshot left the source.
	s.Schedule(2.01, func() { s.FailLink(direct) })
	s.Run(5)
	if f.ShareOf(0) > 1e-9 || math.Abs(f.ShareOf(1)-1) > 1e-9 {
		t.Fatalf("shares after evacuation = %v / %v, want 0 / 1", f.ShareOf(0), f.ShareOf(1))
	}
	// One evacuation: one wake, one applied shift. Before the guard,
	// the probe backstop booked a second wake+shift for the same level
	// (Wakes=2) and double-counted the evacuation decision.
	if ctrl.Wakes != 1 {
		t.Errorf("Wakes = %d, want 1 (no double-booked evacuation)", ctrl.Wakes)
	}
	if ctrl.Shifts != 1 {
		t.Errorf("Shifts = %d, want 1", ctrl.Shifts)
	}
	if math.Abs(f.Rate()-5*topo.Mbps) > 1e3 {
		t.Errorf("rate after failover = %v, want 5 Mbps", f.Rate())
	}
}

// TestEvacuationRetriesAfterDeadTarget: the pending mark must clear
// when a booked evacuation dies (target fails before its wake
// completes), so the probe backstop can still rescue the flow later.
func TestEvacuationRetriesAfterDeadTarget(t *testing.T) {
	s, ctrl, f, direct := evacTopo(t)
	// Third path so there is a second escape route.
	ctrl.Start()
	s.Run(2)
	var detour topo.LinkID
	for _, l := range s.T.Links() {
		if l.ID != direct {
			detour = l.ID // fail one leg of the failover path
			break
		}
	}
	s.Schedule(2.01, func() { s.FailLink(direct) })
	// Kill the failover while its wake is in flight (wake takes 1 s).
	s.Schedule(2.5, func() { s.FailLink(detour) })
	s.Run(3.0)
	if f.Rate() != 0 {
		t.Fatalf("rate = %v, want 0 (both paths dead)", f.Rate())
	}
	// Repair the failover leg: probes must be able to book a fresh
	// evacuation (the pending mark cleared when the first one died).
	s.Schedule(3.1, func() { s.RepairLink(detour) })
	s.Run(8)
	if f.ShareOf(0) > 1e-9 {
		t.Errorf("share still on dead primary: %v", f.ShareOf(0))
	}
	if math.Abs(f.Rate()-5*topo.Mbps) > 1e3 {
		t.Errorf("rate after retry = %v, want 5 Mbps", f.Rate())
	}
}

// TestConsolidationBudget is the regression test for the consolidation
// loop bug: the pass must stop once the movable-rate budget is spent,
// and the total share moved down in one decision must keep the primary
// under Threshold×LowWater as documented on Opts.
func TestConsolidationBudget(t *testing.T) {
	tp := topo.New("consolidate")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	d := tp.AddNode("D", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.001)
	tp.AddLink(a, c, 10*topo.Mbps, 0.001)
	tp.AddLink(c, b, 10*topo.Mbps, 0.001)
	tp.AddLink(a, d, 10*topo.Mbps, 0.001)
	tp.AddLink(d, b, 10*topo.Mbps, 0.001)
	ab, _ := tp.ArcBetween(a, b)
	ac, _ := tp.ArcBetween(a, c)
	cb, _ := tp.ArcBetween(c, b)
	ad, _ := tp.ArcBetween(a, d)
	db, _ := tp.ArcBetween(d, b)
	s := sim.New(tp, sim.Opts{SleepAfterIdle: 1e9})
	// Gamma 1 so a single decision moves the full budget (the cap, not
	// the damping, must be what protects the low-water promise).
	ctrl := NewController(s, Opts{Threshold: 0.9, LowWater: 0.7, Gamma: 1})
	f, err := s.AddFlow(a, b, 9.5*topo.Mbps, []topo.Path{
		{Arcs: []topo.ArcID{ab}},
		{Arcs: []topo.ArcID{ac, cb}},
		{Arcs: []topo.ArcID{ad, db}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Primary already half loaded; the rest spread over two uppers.
	s.SetShare(f, []float64{0.5, 0.25, 0.25})
	s.Run(1)
	lowWater := 0.9 * 0.7
	for i := 0; i < 20; i++ {
		ctrl.DecideOnce(f)
		s.Run(s.Now() + 0.1)
		if u := s.ArcUtil(ab); u > lowWater+1e-6 {
			t.Fatalf("decision %d pushed primary util to %v, above the low-water %v", i, u, lowWater)
		}
	}
	// The budget must still make progress: share does consolidate.
	if f.ShareOf(0) <= 0.5 {
		t.Errorf("no consolidation progress: primary share still %v", f.ShareOf(0))
	}
}

// TestOnFailureTouchesOnlyAffected: failing a link evacuates only the
// flows whose installed paths cross it.
func TestOnFailureTouchesOnlyAffected(t *testing.T) {
	tp := topo.New("affected")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	d := tp.AddNode("D", topo.KindRouter)
	lab := tp.AddLink(a, b, 10*topo.Mbps, 0.001)
	tp.AddLink(c, d, 10*topo.Mbps, 0.001)
	tp.AddLink(a, d, 10*topo.Mbps, 0.001)
	tp.AddLink(c, b, 10*topo.Mbps, 0.001)
	ab, _ := tp.ArcBetween(a, b)
	cd, _ := tp.ArcBetween(c, d)
	ad, _ := tp.ArcBetween(a, d)
	cb, _ := tp.ArcBetween(c, b)
	s := sim.New(tp, sim.Opts{SleepAfterIdle: 1e9})
	ctrl := NewController(s, Opts{Period: 10})
	f1, _ := s.AddFlow(a, b, 1*topo.Mbps, []topo.Path{{Arcs: []topo.ArcID{ab}}, {Arcs: []topo.ArcID{ad}}})
	f2, _ := s.AddFlow(c, d, 1*topo.Mbps, []topo.Path{{Arcs: []topo.ArcID{cd}}, {Arcs: []topo.ArcID{cb}}})
	ctrl.Manage(f1)
	ctrl.Manage(f2)
	ctrl.Start()
	s.Run(1)
	s.FailLink(lab)
	s.Run(2)
	if f1.ShareOf(0) > 1e-9 {
		t.Errorf("affected flow not evacuated: share %v", f1.ShareOf(0))
	}
	if f2.ShareOf(0) < 1-1e-9 {
		t.Errorf("unaffected flow was moved: share %v", f2.ShareOf(0))
	}
}

// TestWheelCompactsRemovedFlows: flows removed from the simulator
// leave the probe wheel (once no snapshot is in flight), so probe
// rounds stay proportional to the live population under churn.
func TestWheelCompactsRemovedFlows(t *testing.T) {
	tp := topo.New("churn")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.001)
	ab, _ := tp.ArcBetween(a, b)
	s := sim.New(tp, sim.Opts{SleepAfterIdle: 1e9})
	ctrl := NewController(s, Opts{Period: 1})
	var flows []*sim.Flow
	for i := 0; i < 10; i++ {
		f, _ := s.AddFlow(a, b, 0.1*topo.Mbps, []topo.Path{{Arcs: []topo.ArcID{ab}}})
		ctrl.Manage(f)
		flows = append(flows, f)
	}
	ctrl.Start()
	s.Run(2)
	for _, f := range flows[:7] {
		s.RemoveFlow(f)
	}
	s.Run(5) // several probe rounds: quiet windows trigger compaction
	total := 0
	for gi := range ctrl.wheel.groups {
		total += len(ctrl.wheel.groups[gi].slots)
	}
	if total != 3 {
		t.Errorf("wheel holds %d slots after churn, want 3 live", total)
	}
	for _, f := range flows[7:] {
		if math.Abs(f.Rate()-0.1e6) > 1 {
			t.Errorf("survivor rate = %v", f.Rate())
		}
	}
}

// TestFingerprintDeterministic: two identical runs produce the same
// action fingerprint, and an action-free run keeps the seed value.
func TestFingerprintDeterministic(t *testing.T) {
	run := func() uint64 {
		s, ctrl, _, direct := evacTopo(t)
		ctrl.Start()
		s.Schedule(2.01, func() { s.FailLink(direct) })
		s.Run(6)
		return ctrl.Fingerprint()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("fingerprints differ across identical runs: %x vs %x", a, b)
	}
	if a == fnvOffset {
		t.Error("fingerprint unchanged despite shifts/wakes")
	}
}
