// Package te implements REsPoNseTE, the paper's online traffic
// engineering component (§4.4): edge agents periodically probe the
// utilization of the paths they originate (period T = the network's max
// RTT), aggregate traffic onto always-on paths while the SLO holds,
// activate on-demand paths when utilization crosses the ISP's
// threshold, and fall back to failover paths on element failure.
//
// Traffic shifts are damped (a TeXCP-style stable controller): at most
// Gamma of the measured excess moves per decision, and consolidation
// back onto lower levels only happens below a low-water mark, which
// gives hysteresis and prevents persistent oscillation.
package te

import (
	"math"

	"response/internal/sim"
	"response/internal/topo"
)

// Opts parameterizes the controller.
type Opts struct {
	// Threshold is the ISP's link-utilization ceiling that triggers
	// on-demand activation (default 0.9).
	Threshold float64
	// LowWater, as a fraction of Threshold, is the level a lower path
	// must stay under after consolidation for traffic to move back
	// down (default 0.7 — hysteresis against oscillation).
	LowWater float64
	// Gamma is the damping factor: the fraction of the excess shifted
	// per decision (default 0.5).
	Gamma float64
	// Period is the probe period T in seconds; 0 derives it from the
	// topology's max RTT, the paper's recommendation.
	Period float64
	// ProbeDelay, when true (default), delays utilization feedback by
	// the probed path's RTT, as a real probe packet would.
	NoProbeDelay bool
}

func (o *Opts) defaults(t *topo.Topology) {
	if o.Threshold == 0 {
		o.Threshold = 0.9
	}
	if o.LowWater == 0 {
		o.LowWater = 0.7
	}
	if o.Gamma == 0 {
		o.Gamma = 0.5
	}
	if o.Period == 0 {
		o.Period = t.MaxRTT()
		if o.Period == 0 {
			o.Period = 0.1
		}
	}
}

// Controller drives share decisions for the flows it manages.
type Controller struct {
	s    *sim.Simulator
	opts Opts

	flows []*sim.Flow

	// Decisions counts control actions taken (for the overhead bench).
	Decisions int
	// Shifts counts share movements actually applied.
	Shifts int
	// Wakes counts wake-ups requested.
	Wakes int
}

// NewController builds a controller over a simulator.
func NewController(s *sim.Simulator, opts Opts) *Controller {
	opts.defaults(s.T)
	return &Controller{s: s, opts: opts}
}

// Period returns the effective probe period T.
func (c *Controller) Period() float64 { return c.opts.Period }

// Manage registers a flow with the controller. The flow's Paths must be
// ordered by level: always-on first, failover last.
func (c *Controller) Manage(f *sim.Flow) { c.flows = append(c.flows, f) }

// Start begins periodic probing at the current simulation time and
// registers the failure handler.
func (c *Controller) Start() {
	c.s.OnLinkFail(c.onFailure)
	var tick func()
	tick = func() {
		for _, f := range c.flows {
			c.probe(f)
		}
		c.s.After(c.opts.Period, tick)
	}
	c.s.After(0, tick)
}

// DecideOnce runs one probe-collect-decide cycle for a flow
// synchronously, bypassing the probe RTT. It exists for overhead
// measurement (the paper reports the agent costs 2–3 % of a router's
// per-packet budget, §5.3).
func (c *Controller) DecideOnce(f *sim.Flow) {
	utils := make([]float64, len(f.Paths))
	for i, p := range f.Paths {
		utils[i] = c.s.PathUtil(p)
	}
	c.decide(f, utils)
}

// probe snapshots the utilizations of f's paths and delivers them to
// the decision logic after the probe RTT.
func (c *Controller) probe(f *sim.Flow) {
	utils := make([]float64, len(f.Paths))
	var maxRTT float64
	for i, p := range f.Paths {
		utils[i] = c.s.PathUtil(p)
		if rtt := 2 * p.Latency(c.s.T); rtt > maxRTT {
			maxRTT = rtt
		}
	}
	deliver := func() { c.decide(f, utils) }
	if c.opts.NoProbeDelay {
		deliver()
		return
	}
	c.s.After(maxRTT, deliver)
}

// decide applies the damped shifting policy for one flow given probed
// per-level utilizations.
func (c *Controller) decide(f *sim.Flow, utils []float64) {
	c.Decisions++
	primary := c.primaryLevel(f)
	if primary < 0 {
		return
	}
	th := c.opts.Threshold

	// Failed primary: evacuate entirely (normally the failure handler
	// already did this; probes are the backstop).
	if c.s.PathPhase(f.Paths[primary]) == sim.LinkFailed {
		c.evacuate(f, primary)
		return
	}

	if utils[primary] > th {
		// Overloaded: push a damped fraction of the excess up-level.
		next := c.nextUsable(f, primary)
		if next < 0 {
			return
		}
		excess := (utils[primary] - th) / math.Max(utils[primary], 1e-9)
		frac := c.opts.Gamma * excess * f.ShareOf(primary)
		if frac <= 1e-6 {
			return
		}
		c.shiftWhenReady(f, primary, next, frac)
		return
	}

	// Headroom: consolidate share from higher levels back down so
	// their elements can sleep.
	room := th*c.opts.LowWater - utils[primary]
	if room <= 0 {
		return
	}
	bottleneck := f.Paths[primary].Bottleneck(c.s.T)
	movableRate := room * bottleneck
	for lvl := len(f.Paths) - 1; lvl > primary; lvl-- {
		sh := f.ShareOf(lvl)
		if sh <= 1e-6 || movableRate <= 0 {
			continue
		}
		if c.s.PathPhase(f.Paths[primary]) != sim.LinkActive {
			break
		}
		maxShare := movableRate / math.Max(f.Demand, 1e-9)
		frac := math.Min(sh, c.opts.Gamma*maxShare)
		if frac <= 1e-6 {
			continue
		}
		c.s.ShiftShare(f, lvl, primary, frac)
		c.Shifts++
		movableRate -= frac * f.Demand
	}
}

// primaryLevel is the lowest level holding any share (the path the
// agent currently aggregates onto).
func (c *Controller) primaryLevel(f *sim.Flow) int {
	for i := range f.Paths {
		if f.ShareOf(i) > 1e-9 {
			return i
		}
	}
	// All share drained (e.g. after failure churn): restart at 0.
	if len(f.Paths) > 0 {
		return 0
	}
	return -1
}

// nextUsable finds the next higher level whose path is not failed.
func (c *Controller) nextUsable(f *sim.Flow, from int) int {
	for i := from + 1; i < len(f.Paths); i++ {
		if f.Paths[i].Empty() {
			continue
		}
		if c.s.PathPhase(f.Paths[i]) != sim.LinkFailed {
			return i
		}
	}
	return -1
}

// shiftWhenReady wakes the target path if needed and applies the share
// shift once it can forward; meanwhile traffic stays where it is (the
// paper's reserve-capacity-on-always-on behaviour, §4.5).
func (c *Controller) shiftWhenReady(f *sim.Flow, from, to int, frac float64) {
	p := f.Paths[to]
	switch c.s.PathPhase(p) {
	case sim.LinkActive:
		c.s.ShiftShare(f, from, to, frac)
		c.Shifts++
	case sim.LinkSleeping, sim.LinkWaking:
		ready := c.s.RequestWake(p)
		c.Wakes++
		c.s.Schedule(ready, func() {
			if c.s.PathPhase(p) == sim.LinkActive {
				c.s.ShiftShare(f, from, to, frac)
				c.Shifts++
			}
		})
	case sim.LinkFailed:
		// Target died since the decision; drop the shift.
	}
}

// onFailure reacts to a link failure notification (already delayed by
// detection + propagation): every managed flow with share on a path
// using the failed link evacuates that share to the best surviving
// level, waking it if necessary.
func (c *Controller) onFailure(_ float64, l topo.LinkID) {
	for _, f := range c.flows {
		for lvl, p := range f.Paths {
			if f.ShareOf(lvl) <= 1e-9 || !p.UsesLink(c.s.T, l) {
				continue
			}
			c.evacuate(f, lvl)
		}
	}
}

// evacuate moves all share off the given (failed) level.
func (c *Controller) evacuate(f *sim.Flow, lvl int) {
	sh := f.ShareOf(lvl)
	if sh <= 1e-9 {
		return
	}
	// Prefer the failover (last) level, then any other surviving one.
	target := -1
	for i := len(f.Paths) - 1; i >= 0; i-- {
		if i == lvl || f.Paths[i].Empty() {
			continue
		}
		if c.s.PathPhase(f.Paths[i]) != sim.LinkFailed {
			target = i
			break
		}
	}
	if target < 0 {
		return // nowhere to go
	}
	c.Decisions++
	p := f.Paths[target]
	if c.s.PathPhase(p) == sim.LinkActive {
		c.s.ShiftShare(f, lvl, target, sh)
		c.Shifts++
		return
	}
	ready := c.s.RequestWake(p)
	c.Wakes++
	c.s.Schedule(ready, func() {
		if c.s.PathPhase(p) == sim.LinkActive {
			c.s.ShiftShare(f, lvl, target, f.ShareOf(lvl))
			c.Shifts++
		}
	})
}
