// Package te implements REsPoNseTE, the paper's online traffic
// engineering component (§4.4): edge agents periodically probe the
// utilization of the paths they originate (period T = the network's max
// RTT), aggregate traffic onto always-on paths while the SLO holds,
// activate on-demand paths when utilization crosses the ISP's
// threshold, and fall back to failover paths on element failure.
//
// Traffic shifts are damped (a TeXCP-style stable controller): at most
// Gamma of the measured excess moves per decision, and consolidation
// back onto lower levels only happens below a low-water mark, which
// gives hysteresis and prevents persistent oscillation.
//
// The controller is built to manage 100k+ flows: probes are issued by
// a single timer wheel that batches all flows with the same probe RTT
// into one simulator event with one pooled utilization buffer (no
// per-flow closures or allocations), and failure reaction walks the
// simulator's link→flow inverted index, so its cost is proportional to
// the flows actually crossing the failed link.
package te

import (
	"math"

	"response/internal/metrics"
	"response/internal/sim"
	"response/internal/topo"
	"response/internal/trace"
)

// Opts parameterizes the controller.
type Opts struct {
	// Threshold is the ISP's link-utilization ceiling that triggers
	// on-demand activation (default 0.9).
	Threshold float64
	// LowWater, as a fraction of Threshold, is the level a lower path
	// must stay under after consolidation for traffic to move back
	// down (default 0.7 — hysteresis against oscillation).
	LowWater float64
	// Gamma is the damping factor: the fraction of the excess shifted
	// per decision (default 0.5).
	Gamma float64
	// Period is the probe period T in seconds; 0 derives it from the
	// topology's max RTT, the paper's recommendation.
	Period float64
	// ProbeDelay, when true (default), delays utilization feedback by
	// the probed path's RTT, as a real probe packet would.
	NoProbeDelay bool
	// Events, when non-nil, receives a JSONL trace of every controller
	// action (probe rounds, shifts, wakes, evacuations, retargets). Off
	// by default; when off the only cost is a nil check per action.
	Events *trace.EventWriter
	// Metrics, when non-nil, receives zero-alloc counter increments
	// mirroring the event stream (probe rounds, shifts, wake requests,
	// evacuations, retargets/handoffs/retires).
	Metrics *metrics.Runtime
}

func (o *Opts) defaults(t *topo.Topology) {
	if o.Threshold == 0 {
		o.Threshold = 0.9
	}
	if o.LowWater == 0 {
		o.LowWater = 0.7
	}
	if o.Gamma == 0 {
		o.Gamma = 0.5
	}
	if o.Period == 0 {
		o.Period = t.MaxRTT()
		if o.Period == 0 {
			o.Period = 0.1
		}
	}
}

// Fingerprint accumulation: FNV-1a over every state-changing action,
// so two runs (or two allocator modes) can be compared for behavioral
// identity without recording the full journal.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

const (
	opShift = iota + 1
	opWake
	opEvacuate
	opRetarget
	opHandoff
	opRetire
)

// opNames indexes the trace op label by action code.
var opNames = [...]string{"", "shift", "wake", "evacuate", "retarget", "handoff", "retire"}

// Controller drives share decisions for the flows it manages.
type Controller struct {
	s    *sim.Simulator
	opts Opts

	flows []*sim.Flow
	slot  map[int]int // flow ID -> index into flows

	// pendingEvac holds, per managed flow, a bitmask of levels with an
	// evacuation in flight (wake requested, shift not yet applied), so
	// the failure handler and the probe backstop cannot double-book
	// the same move.
	pendingEvac []uint32
	// pendingEvacs counts set pendingEvac bits: evacuation closures
	// capture slot indices, so the slot table must not compact while
	// any are outstanding.
	pendingEvacs int
	// deadManaged counts retired flows still occupying slots; once
	// they outnumber live ones (and nothing in flight pins the slot
	// layout) the slot table is compacted, so sustained swap churn
	// keeps per-round walks and memory O(live flows).
	deadManaged int

	wheel probeWheel

	fp uint64 // running FNV-1a action fingerprint

	// Decisions counts control actions taken (for the overhead bench).
	Decisions int
	// Shifts counts share movements actually applied.
	Shifts int
	// Wakes counts wake-ups requested.
	Wakes int
	// Retargets counts table hot-swaps begun (Retarget calls).
	Retargets int
}

// NewController builds a controller over a simulator.
func NewController(s *sim.Simulator, opts Opts) *Controller {
	opts.defaults(s.T)
	c := &Controller{s: s, opts: opts, slot: make(map[int]int), fp: fnvOffset}
	c.wheel.gran = opts.Period / 8
	return c
}

// Period returns the effective probe period T.
func (c *Controller) Period() float64 { return c.opts.Period }

// Fingerprint returns the FNV-1a hash of the action sequence so far —
// shifts, wakes, evacuations, and the retarget/handoff/retire steps of
// table hot-swaps: a compact behavioral fingerprint of the run.
func (c *Controller) Fingerprint() uint64 { return c.fp }

// record folds one action into the behavioral fingerprint. frac is
// quantized to nanoshares so the incremental and full-allocation
// reference modes fingerprint identically.
func (c *Controller) record(op int, flow, from, to int, frac float64) {
	c.recordLink(op, flow, from, to, -1, frac)
}

// recordLink is record with a causing link attached to the emitted
// event (failure evacuations name the link that died). The link is
// deliberately NOT folded into the behavioral fingerprint — the
// fingerprint's five-word schema is pinned by cross-mode identity
// tests — it only enriches the JSONL trace for the trace store's
// event→link incidence.
func (c *Controller) recordLink(op int, flow, from, to, link int, frac float64) {
	h := c.fp
	for _, x := range [5]uint64{
		uint64(op), uint64(flow), uint64(from + 1), uint64(to + 1),
		uint64(int64(math.Round(frac * 1e9))),
	} {
		h ^= x
		h *= fnvPrime
	}
	c.fp = h
	c.opts.Events.EmitFlowLink(c.s.Now(), "te", opNames[op], flow, from, to, link, frac)
	if m := c.opts.Metrics; m != nil {
		switch op {
		case opShift:
			m.Shifts.Inc()
		case opWake:
			m.WakeRequests.Inc()
		case opEvacuate:
			m.Evacuations.Inc()
		case opRetarget:
			m.Retargets.Inc()
		case opHandoff:
			m.Handoffs.Inc()
		case opRetire:
			m.Retires.Inc()
		}
	}
}

// Manage registers a flow with the controller. The flow's Paths must be
// ordered by level: always-on first, failover last. Flows may be added
// before or after Start.
func (c *Controller) Manage(f *sim.Flow) {
	slot := len(c.flows)
	c.flows = append(c.flows, f)
	c.slot[f.ID] = slot
	c.pendingEvac = append(c.pendingEvac, 0)
	var rtt float64
	for _, p := range f.Paths {
		if r := 2 * p.Latency(c.s.T); r > rtt {
			rtt = r
		}
	}
	c.wheel.add(slot, rtt, len(f.Paths))
}

// Start begins periodic probing at the current simulation time and
// registers the failure handler.
func (c *Controller) Start() {
	c.s.OnLinkFail(c.onFailure)
	var tick func()
	tick = func() {
		c.probeAll()
		c.s.After(c.opts.Period, tick)
	}
	c.s.After(0, tick)
}

// DecideOnce runs one probe-collect-decide cycle for a flow
// synchronously, bypassing the probe RTT. It exists for overhead
// measurement (the paper reports the agent costs 2–3 % of a router's
// per-packet budget, §5.3).
func (c *Controller) DecideOnce(f *sim.Flow) {
	utils := c.wheel.scratch(len(f.Paths))
	for i, p := range f.Paths {
		utils[i] = c.s.PathUtil(p)
	}
	c.decide(f, utils)
}

// probeAll snapshots the path utilizations of every managed flow and
// delivers them to the decision logic after each flow's probe RTT.
// Flows sharing an RTT share one wheel slot: one pooled buffer, one
// scheduled event — not a closure and a fresh slice per flow.
func (c *Controller) probeAll() {
	// Retired-slot majority and nothing pinning the layout (no
	// snapshot between grab and release, no evacuation closure holding
	// a slot index): compact the slot table.
	if c.deadManaged > len(c.flows)-c.deadManaged &&
		c.pendingEvacs == 0 && c.wheel.inFlight() == 0 {
		c.compactFlows()
	}
	if c.opts.Events != nil {
		probed := 0
		for gi := range c.wheel.groups {
			probed += len(c.wheel.groups[gi].slots)
		}
		c.opts.Events.Emit(c.s.Now(), "te", "probe", -1, -1, -1, float64(probed))
	}
	if m := c.opts.Metrics; m != nil {
		m.ProbeRounds.Inc()
	}
	for gi := range c.wheel.groups {
		g := &c.wheel.groups[gi]
		if g.inFlight == 0 {
			// Quiet window: drop slots of removed flows so sustained
			// churn keeps probe rounds O(live flows).
			g.compact(
				func(slot int) bool { return c.flows[slot].Removed() },
				func(slot int) int { return len(c.flows[slot].Paths) },
			)
		}
		n := len(g.slots)
		if n == 0 {
			continue
		}
		buf := g.grab()
		off := 0
		for _, slot := range g.slots {
			f := c.flows[slot]
			if !f.Removed() { // removed mid-flight: slot skipped at delivery
				for i, p := range f.Paths {
					buf[off+i] = c.s.PathUtil(p)
				}
			}
			off += len(f.Paths)
		}
		if c.opts.NoProbeDelay {
			c.deliver(gi, n, buf)
			continue
		}
		c.s.After(g.rtt, func() { c.deliver(gi, n, buf) })
	}
}

// deliver runs the decision logic for the first n flows of a wheel
// group against the utilizations snapshotted at probe time, then
// returns the buffer to the group's pool. n is pinned at probe time so
// flows managed mid-flight keep the snapshot layout intact.
func (c *Controller) deliver(gi, n int, buf []float64) {
	g := &c.wheel.groups[gi]
	off := 0
	for k := 0; k < n; k++ {
		f := c.flows[g.slots[k]]
		m := len(f.Paths)
		if !f.Removed() {
			c.decide(f, buf[off:off+m])
		}
		off += m
	}
	g.release(buf)
}

// decide applies the damped shifting policy for one flow given probed
// per-level utilizations.
func (c *Controller) decide(f *sim.Flow, utils []float64) {
	c.Decisions++
	primary := c.primaryLevel(f)
	if primary < 0 {
		return
	}
	th := c.opts.Threshold

	// Failed primary: evacuate entirely (normally the failure handler
	// already did this; probes are the backstop).
	if c.s.PathPhase(f.Paths[primary]) == sim.LinkFailed {
		c.evacuate(f, primary, -1)
		return
	}

	if utils[primary] > th {
		// Overloaded: push a damped fraction of the excess up-level.
		next := c.nextUsable(f, primary)
		if next < 0 {
			return
		}
		excess := (utils[primary] - th) / math.Max(utils[primary], 1e-9)
		frac := c.opts.Gamma * excess * f.ShareOf(primary)
		if frac <= 1e-6 {
			return
		}
		c.shiftWhenReady(f, primary, next, frac)
		return
	}

	// Headroom: consolidate share from higher levels back down so
	// their elements can sleep. movableRate budgets the whole pass:
	// everything moved down here raises the primary's bottleneck by at
	// most movableRate/bottleneck, so its post-move utilization
	// provably stays under Threshold×LowWater as documented on Opts.
	room := th*c.opts.LowWater - utils[primary]
	if room <= 0 {
		return
	}
	// Nothing below changes link phases, so check the primary's
	// forwarding state once, not per level.
	if c.s.PathPhase(f.Paths[primary]) != sim.LinkActive {
		return
	}
	bottleneck := f.Paths[primary].Bottleneck(c.s.T)
	movableRate := room * bottleneck
	for lvl := len(f.Paths) - 1; lvl > primary; lvl-- {
		if movableRate <= 1e-12 {
			break // budget spent: nothing below can move either
		}
		sh := f.ShareOf(lvl)
		if sh <= 1e-6 {
			continue
		}
		maxShare := movableRate / math.Max(f.Demand, 1e-9)
		frac := math.Min(sh, c.opts.Gamma*maxShare)
		if frac > maxShare {
			frac = maxShare // keep the LowWater promise even if Gamma > 1
		}
		if frac <= 1e-6 {
			continue
		}
		c.s.ShiftShare(f, lvl, primary, frac)
		c.Shifts++
		c.record(opShift, f.ID, lvl, primary, frac)
		movableRate -= frac * f.Demand
	}
}

// primaryLevel is the lowest level holding any share (the path the
// agent currently aggregates onto).
func (c *Controller) primaryLevel(f *sim.Flow) int {
	for i := range f.Paths {
		if f.ShareOf(i) > 1e-9 {
			return i
		}
	}
	// All share drained (e.g. after failure churn): restart at 0.
	if len(f.Paths) > 0 {
		return 0
	}
	return -1
}

// nextUsable finds the next higher level whose path is not failed.
func (c *Controller) nextUsable(f *sim.Flow, from int) int {
	for i := from + 1; i < len(f.Paths); i++ {
		if f.Paths[i].Empty() {
			continue
		}
		if c.s.PathPhase(f.Paths[i]) != sim.LinkFailed {
			return i
		}
	}
	return -1
}

// shiftWhenReady wakes the target path if needed and applies the share
// shift once it can forward; meanwhile traffic stays where it is (the
// paper's reserve-capacity-on-always-on behaviour, §4.5).
func (c *Controller) shiftWhenReady(f *sim.Flow, from, to int, frac float64) {
	p := f.Paths[to]
	switch c.s.PathPhase(p) {
	case sim.LinkActive:
		c.s.ShiftShare(f, from, to, frac)
		c.Shifts++
		c.record(opShift, f.ID, from, to, frac)
	case sim.LinkSleeping, sim.LinkWaking:
		ready := c.s.RequestWake(p)
		c.Wakes++
		c.record(opWake, f.ID, from, to, frac)
		c.s.Schedule(ready, func() {
			if c.s.PathPhase(p) == sim.LinkActive && !f.Removed() {
				c.s.ShiftShare(f, from, to, frac)
				c.Shifts++
				c.record(opShift, f.ID, from, to, frac)
			}
		})
	case sim.LinkFailed:
		// Target died since the decision; drop the shift.
	}
}

// onFailure reacts to a link failure notification (already delayed by
// detection + propagation). The simulator's inverted index yields
// exactly the (flow, level) pairs whose paths cross the failed link,
// so reaction cost is O(affected flows), not O(all flows × paths).
func (c *Controller) onFailure(_ float64, l topo.LinkID) {
	c.s.FlowsOnLink(l, func(f *sim.Flow, lvl int) {
		if _, managed := c.slot[f.ID]; !managed {
			return
		}
		if f.ShareOf(lvl) <= 1e-9 {
			return
		}
		c.evacuate(f, lvl, int(l))
	})
}

// evacuate moves all share off the given (failed) level. A per-flow
// pending mark guards the wake-then-shift window: the failure handler
// and the probe backstop may both observe the failed level before the
// first evacuation's wake completes, and only one move may be booked.
// cause is the failed link that triggered the evacuation (tagged onto
// the trace events), or -1 from the probe backstop, which only knows
// the path died.
func (c *Controller) evacuate(f *sim.Flow, lvl int, cause int) {
	slot, managed := c.slot[f.ID]
	if !managed {
		return
	}
	bit := uint32(1) << uint(lvl)
	if c.pendingEvac[slot]&bit != 0 {
		return // evacuation already in flight for this level
	}
	sh := f.ShareOf(lvl)
	if sh <= 1e-9 {
		return
	}
	// Prefer the failover (last) level, then any other surviving one.
	target := -1
	for i := len(f.Paths) - 1; i >= 0; i-- {
		if i == lvl || f.Paths[i].Empty() {
			continue
		}
		if c.s.PathPhase(f.Paths[i]) != sim.LinkFailed {
			target = i
			break
		}
	}
	if target < 0 {
		return // nowhere to go
	}
	c.Decisions++
	p := f.Paths[target]
	if c.s.PathPhase(p) == sim.LinkActive {
		c.s.ShiftShare(f, lvl, target, sh)
		c.Shifts++
		c.recordLink(opEvacuate, f.ID, lvl, target, cause, sh)
		return
	}
	c.pendingEvac[slot] |= bit
	c.pendingEvacs++
	ready := c.s.RequestWake(p)
	c.Wakes++
	c.recordLink(opWake, f.ID, lvl, target, cause, sh)
	c.s.Schedule(ready, func() {
		c.pendingEvac[slot] &^= bit // allow the backstop to retry if this move dies
		c.pendingEvacs--
		if c.s.PathPhase(p) == sim.LinkActive && !f.Removed() {
			moved := f.ShareOf(lvl)
			c.s.ShiftShare(f, lvl, target, moved)
			c.Shifts++
			c.recordLink(opEvacuate, f.ID, lvl, target, cause, moved)
		}
	})
}

// compactFlows drops removed flows' slots from c.flows, pendingEvac,
// the slot map and every wheel group, preserving the relative order of
// live slots — probe order over live flows (part of the runtime's
// deterministic behavior) is unchanged. Callers must ensure no
// snapshot buffer or evacuation closure holds a slot index.
func (c *Controller) compactFlows() {
	remap := make([]int, len(c.flows))
	kept := 0
	for i, f := range c.flows {
		if f.Removed() {
			remap[i] = -1
			continue
		}
		remap[i] = kept
		c.flows[kept] = f
		c.pendingEvac[kept] = c.pendingEvac[i]
		kept++
	}
	c.flows = c.flows[:kept]
	c.pendingEvac = c.pendingEvac[:kept]
	for id, s := range c.slot {
		if ns := remap[s]; ns >= 0 {
			c.slot[id] = ns
		} else {
			delete(c.slot, id) // app-removed flow never retired via Retarget
		}
	}
	c.wheel.remapSlots(remap, func(slot int) int { return len(c.flows[slot].Paths) })
	c.deadManaged = 0
}

// EachManaged calls yield for every live managed flow, in Manage order.
// Flows already retired (or removed by the application) are skipped.
func (c *Controller) EachManaged(yield func(f *sim.Flow)) {
	for _, f := range c.flows {
		if !f.Removed() {
			yield(f)
		}
	}
}

// RetargetOpts parameterizes one flow's table hot-swap.
type RetargetOpts struct {
	// DrainGrace is how long after the demand handoff the drained old
	// flow is kept installed before removal (its subflows idle at zero
	// rate through the grace, so in-flight probe snapshots and failure
	// walks still resolve it). Zero retires in the same event round.
	DrainGrace float64
	// OnHandoff, when non-nil, runs at the instant demand moves from
	// the old to the new flow — the external-reference switch-over
	// point (callers holding the old *Flow re-point to the new one).
	OnHandoff func(old, new *sim.Flow)
	// OnRetire, when non-nil, runs after the old flow has drained and
	// been removed; lifecycle managers count these to detect swap
	// completion.
	OnRetire func(old, new *sim.Flow)
}

// Retarget hot-swaps one managed flow onto replacement tables with
// zero traffic disruption: a fresh flow is installed over the new path
// levels as new subflows (zero demand — it forwards nothing yet), the
// new always-on path is woken if asleep, and once it can forward the
// offered demand moves from the old flow to the new one in a single
// allocation round — traffic keeps flowing over the old tables for the
// whole wake window, the paper's reserve-capacity behavior applied to
// table replacement. The drained old flow is retired after
// opts.DrainGrace via the simulator's removal machinery.
//
// The returned flow is the replacement; the old flow stays valid (and
// carries all traffic) until the handoff. Retarget, handoff and retire
// are folded into the controller's action fingerprint (with the
// replacement flow's ID in the `to` slot), so swap sequences are as
// pinnable as shift sequences.
//
// Cost note: the controller compacts its own slot table under churn,
// but the simulator retains a retired flow's Flow struct and flat
// subflow slots for the simulation's lifetime (sim IDs are stable; see
// RemoveFlow) — a few dozen bytes per retired level per swap.
func (c *Controller) Retarget(f *sim.Flow, paths []topo.Path, opts RetargetOpts) (*sim.Flow, error) {
	nf, err := c.s.AddFlow(f.O, f.D, 0, paths)
	if err != nil {
		return nil, err
	}
	c.Manage(nf)
	c.Retargets++
	c.record(opRetarget, f.ID, 0, nf.ID, 0)
	retire := func() {
		c.s.RemoveFlow(f)
		delete(c.slot, f.ID)
		c.deadManaged++
		c.record(opRetire, f.ID, 0, nf.ID, 0)
		if opts.OnRetire != nil {
			opts.OnRetire(f, nf)
		}
	}
	// Wake the new always-on path; a failed one is handed off
	// immediately (the normal failure machinery then moves the new
	// flow up its levels, exactly as for a fresh flow).
	ready := c.s.Now()
	if c.s.PathPhase(paths[0]) != sim.LinkFailed {
		ready = c.s.RequestWake(paths[0])
	}
	c.s.Schedule(ready, func() {
		if f.Removed() {
			// The application withdrew the old flow mid-swap: there is
			// no demand to hand over; retire bookkeeping still runs so
			// swap completion counts stay balanced.
			c.deadManaged++
			c.record(opHandoff, f.ID, 0, nf.ID, 0)
			if opts.OnRetire != nil {
				opts.OnRetire(f, nf)
			}
			return
		}
		d := f.Demand
		c.s.SetDemand(nf, d)
		c.s.SetDemand(f, 0)
		// Record the demand scaled down so record's nanoshare
		// quantization folds whole bits/s: d itself can exceed 9.2e9,
		// and d*1e9 would overflow int64 (an architecture-dependent
		// conversion, which would unpin fingerprints across machines).
		c.record(opHandoff, f.ID, 0, nf.ID, d*1e-9)
		if opts.OnHandoff != nil {
			opts.OnHandoff(f, nf)
		}
		if opts.DrainGrace <= 0 {
			retire()
			return
		}
		c.s.After(opts.DrainGrace, retire)
	})
	return nf, nil
}
