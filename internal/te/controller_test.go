package te

import (
	"math"
	"testing"

	"response/internal/power"
	"response/internal/sim"
	"response/internal/topo"
)

// fig3 builds the Click experiment setup of §5.3: Figure 3 topology
// without router B, flows from A and C to K, with the middle path as
// level 0 and the upper/lower on-demand paths as level 1 (failover
// coincides with on-demand, as in the paper).
func fig3(t *testing.T, wake float64) (*topo.Example, *sim.Simulator, *Controller, *sim.Flow, *sim.Flow) {
	t.Helper()
	ex := topo.NewExample(topo.ExampleOpts{})
	// Pin the always-on (middle) path elements so they never sleep.
	pinned := topo.AllOff(ex.Topology)
	pinned.ActivatePath(ex.Topology, ex.MiddlePath(ex.A))
	pinned.ActivatePath(ex.Topology, ex.MiddlePath(ex.C))
	s := sim.New(ex.Topology, sim.Opts{
		WakeUpDelay:      wake,
		SleepAfterIdle:   0.05,
		FailureDetect:    0.05,
		FailurePropagate: 0.05,
		Model:            power.Cisco12000{},
		PinnedOn:         pinned,
	})
	ctrl := NewController(s, Opts{Threshold: 0.9, Gamma: 0.5})
	// 5 flows of 0.5 Mbps each from A and from C (≈5 Mbps total, §5.3).
	fa, err := s.AddFlow(ex.A, ex.K, 2.5*topo.Mbps, []topo.Path{ex.MiddlePath(ex.A), ex.UpperPath()})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := s.AddFlow(ex.C, ex.K, 2.5*topo.Mbps, []topo.Path{ex.MiddlePath(ex.C), ex.LowerPath()})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Manage(fa)
	ctrl.Manage(fc)
	return ex, s, ctrl, fa, fc
}

func TestOnDemandPathsSleepAtLowLoad(t *testing.T) {
	ex, s, ctrl, fa, fc := fig3(t, 0.01)
	// Start with half the traffic wrongly on the on-demand paths.
	s.SetShare(fa, []float64{0.5, 0.5})
	s.SetShare(fc, []float64{0.5, 0.5})
	ctrl.Start()
	s.Run(5)
	// 5 Mbps total on a 10 Mbps middle path: fits under threshold, so
	// the controller must consolidate and the on-demand links sleep.
	if fa.ShareOf(1) > 0.01 || fc.ShareOf(1) > 0.01 {
		t.Errorf("on-demand shares not consolidated: %v / %v", fa.ShareOf(1), fc.ShareOf(1))
	}
	for _, p := range []topo.Path{ex.UpperPath(), ex.LowerPath()} {
		if got := s.PathPhase(p); got != sim.LinkSleeping {
			t.Errorf("on-demand path phase = %v, want sleeping", got)
		}
	}
	if math.Abs(fa.Rate()-2.5e6) > 1e3 || math.Abs(fc.Rate()-2.5e6) > 1e3 {
		t.Errorf("rates dropped during consolidation: %v / %v", fa.Rate(), fc.Rate())
	}
	if s.PowerPct() >= 99 {
		t.Errorf("power = %.1f%%, expected savings from sleeping paths", s.PowerPct())
	}
}

func TestThresholdActivatesOnDemand(t *testing.T) {
	_, s, ctrl, fa, fc := fig3(t, 0.01)
	ctrl.Start()
	s.Run(3) // settle at low load: everything on middle
	// Raise demand so the shared E-H link would run at 140%.
	s.SetDemand(fa, 7*topo.Mbps)
	s.SetDemand(fc, 7*topo.Mbps)
	s.Run(10)
	if fa.ShareOf(1) < 0.1 && fc.ShareOf(1) < 0.1 {
		t.Errorf("no on-demand activation under overload: %v / %v",
			fa.ShareOf(1), fc.ShareOf(1))
	}
	// Both flows should now achieve their demand.
	if fa.Rate() < 6.5e6 || fc.Rate() < 6.5e6 {
		t.Errorf("rates = %v / %v, want ≈7 Mbps each", fa.Rate(), fc.Rate())
	}
	// And the shared middle link must be back under threshold.
	if u := s.ArcUtil(mustArcUtilTarget(t, s)); u > 0.9+0.05 {
		t.Errorf("middle link util = %v, want <= threshold", u)
	}
}

func mustArcUtilTarget(t *testing.T, s *sim.Simulator) topo.ArcID {
	t.Helper()
	// Find the E-H arc by name.
	var e, h topo.NodeID = -1, -1
	for _, n := range s.T.Nodes() {
		switch n.Name {
		case "E":
			e = n.ID
		case "H":
			h = n.ID
		}
	}
	id, ok := s.T.ArcBetween(e, h)
	if !ok {
		t.Fatal("no E-H arc")
	}
	return id
}

// TestFig7Timeline reproduces the §5.3 Click experiment timeline: TE
// starts at t=5 s and consolidates within a few RTTs; the middle link
// fails at t=5.7 s and traffic is restored onto the sleeping paths.
func TestFig7Timeline(t *testing.T) {
	ex, s, ctrl, fa, fc := fig3(t, 0.01)
	// Traffic starts split (as in the paper's run) at t=0; TE at t=5.
	s.SetShare(fa, []float64{0.5, 0.5})
	s.SetShare(fc, []float64{0.5, 0.5})
	s.Schedule(5, func() { ctrl.Start() })
	// Fail the middle (E-H) link at t=5.7.
	ehArc := mustArcUtilTarget(t, s)
	eh := s.T.Arc(ehArc).Link
	s.Schedule(5.7, func() { s.FailLink(eh) })
	s.RateSampling(0)
	s.SampleEvery(0.05, 8, nil)
	s.Run(8)

	// Between TE start and the failure the flows kept full rate (the
	// consolidation itself must not disturb throughput).
	for _, smp := range s.RateSamples(fa.ID) {
		if smp.Time > 5.4 && smp.Time < 5.65 && smp.Value < 2.4e6 {
			t.Errorf("rate dipped to %v during consolidation at t=%.2f", smp.Value, smp.Time)
		}
	}
	// After failure + detection (100 ms) + wake (10 ms), traffic is
	// restored on upper/lower. Check final rates.
	if fa.Rate() < 2.4e6 || fc.Rate() < 2.4e6 {
		t.Errorf("final rates = %v / %v, want ≈2.5 Mbps", fa.Rate(), fc.Rate())
	}
	if fa.ShareOf(0) > 0.01 || fc.ShareOf(0) > 0.01 {
		t.Errorf("share left on failed middle: %v / %v", fa.ShareOf(0), fc.ShareOf(0))
	}
	if s.PathPhase(ex.UpperPath()) != sim.LinkActive {
		t.Error("upper path should be active after failover")
	}
	// Restoration must happen promptly: find when fa's rate recovered.
	recovered := math.Inf(1)
	for _, smp := range s.RateSamples(fa.ID) {
		if smp.Time > 5.7 && smp.Value > 2.4e6 {
			recovered = smp.Time
			break
		}
	}
	if recovered > 6.2 {
		t.Errorf("traffic restored at t=%.2f, want < 6.2 (fail 5.7 + detect 0.1 + wake 0.01 + slack)", recovered)
	}
}

// TestNoOscillation: with stationary demand below threshold, the
// controller reaches a fixed point and stops shifting.
func TestNoOscillation(t *testing.T) {
	_, s, ctrl, _, _ := fig3(t, 0.01)
	ctrl.Start()
	s.Run(10)
	early := ctrl.Shifts
	s.Run(30)
	if ctrl.Shifts > early {
		t.Errorf("controller still shifting at steady state: %d -> %d shifts", early, ctrl.Shifts)
	}
}

func TestPeriodDefaultsToMaxRTT(t *testing.T) {
	ex := topo.NewExample(topo.ExampleOpts{})
	s := sim.New(ex.Topology, sim.Opts{})
	c := NewController(s, Opts{})
	want := ex.MaxRTT()
	if math.Abs(c.Period()-want) > 1e-9 {
		t.Errorf("period = %v, want max RTT %v", c.Period(), want)
	}
}

func TestEvacuateWithoutAlternatives(t *testing.T) {
	// Single-path flow: failure leaves nowhere to go; must not panic
	// or loop.
	tp := topo.New("single")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	tp.AddLink(a, b, topo.Mbps, 0.001)
	ab, _ := tp.ArcBetween(a, b)
	s := sim.New(tp, sim.Opts{})
	ctrl := NewController(s, Opts{})
	f, _ := s.AddFlow(a, b, 0.5*topo.Mbps, []topo.Path{{Arcs: []topo.ArcID{ab}}})
	ctrl.Manage(f)
	ctrl.Start()
	s.Run(1)
	s.FailLink(0)
	s.Run(2)
	if f.Rate() != 0 {
		t.Error("flow should be dead")
	}
}
