package te

import (
	"math"
	"testing"

	"response/internal/sim"
	"response/internal/topo"
)

// retargetTopo: A-B direct (the old table) plus A-C-B (the new one),
// with a slow wake so the zero-disruption window is observable.
func retargetTopo(t *testing.T) (*sim.Simulator, *Controller, *sim.Flow, topo.Path, topo.Path) {
	t.Helper()
	tp := topo.New("retarget")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.01)
	tp.AddLink(a, c, 10*topo.Mbps, 0.01)
	tp.AddLink(c, b, 10*topo.Mbps, 0.01)
	ab, _ := tp.ArcBetween(a, b)
	ac, _ := tp.ArcBetween(a, c)
	cb, _ := tp.ArcBetween(c, b)
	old := topo.Path{Arcs: []topo.ArcID{ab}}
	via := topo.Path{Arcs: []topo.ArcID{ac, cb}}
	s := sim.New(tp, sim.Opts{WakeUpDelay: 1, SleepAfterIdle: 0.05})
	ctrl := NewController(s, Opts{Threshold: 0.9, Period: 0.4})
	f, err := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{old})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Manage(f)
	ctrl.Start()
	return s, ctrl, f, old, via
}

// TestRetargetZeroDisruption: during the whole wake window of the new
// table's always-on path, traffic keeps flowing on the old table; the
// handoff moves the full demand in one allocation round; the old flow
// drains and retires after the grace.
func TestRetargetZeroDisruption(t *testing.T) {
	s, ctrl, f, _, via := retargetTopo(t)
	s.Run(2) // the unused A-C-B path is asleep by now
	if s.PathPhase(via) != sim.LinkSleeping {
		t.Fatalf("new path phase = %v, want sleeping", s.PathPhase(via))
	}

	var nf *sim.Flow
	retired := 0
	s.Schedule(2.0, func() {
		var err error
		nf, err = ctrl.Retarget(f, []topo.Path{via}, RetargetOpts{
			DrainGrace: 0.5,
			OnRetire:   func(_, _ *sim.Flow) { retired++ },
		})
		if err != nil {
			t.Errorf("retarget: %v", err)
		}
	})
	// Sample the combined delivered rate through the wake window: the
	// old flow must carry everything until the handoff instant.
	for _, at := range []float64{2.1, 2.5, 2.9} {
		s.Run(at)
		if got := f.Rate() + nf.Rate(); math.Abs(got-5*topo.Mbps) > 1e3 {
			t.Errorf("t=%.1f: combined rate = %v, want 5 Mbps", at, got)
		}
		if nf.Rate() > 0 {
			t.Errorf("t=%.1f: new flow carries %v before wake completes", at, nf.Rate())
		}
	}
	s.Run(3.1) // wake (1 s) completed at t=3: handoff happened
	if math.Abs(nf.Rate()-5*topo.Mbps) > 1e3 {
		t.Errorf("after handoff: new flow rate = %v, want 5 Mbps", nf.Rate())
	}
	if f.Rate() > 1e-9 || f.Demand != 0 {
		t.Errorf("after handoff: old flow rate/demand = %v/%v, want 0/0", f.Rate(), f.Demand)
	}
	if f.Removed() {
		t.Error("old flow removed before drain grace elapsed")
	}
	s.Run(3.6) // grace (0.5 s) elapsed
	if !f.Removed() {
		t.Error("old flow not retired after drain grace")
	}
	if retired != 1 {
		t.Errorf("OnRetire ran %d times, want 1", retired)
	}
	if ctrl.Retargets != 1 {
		t.Errorf("Retargets = %d, want 1", ctrl.Retargets)
	}
	// The new flow is managed: it must keep being probed without the
	// old flow's slot breaking delivery.
	s.Run(6)
	if math.Abs(nf.Rate()-5*topo.Mbps) > 1e3 {
		t.Errorf("steady state: new flow rate = %v, want 5 Mbps", nf.Rate())
	}
}

// TestRetargetActivePathHandsOffImmediately: when the new always-on
// path already forwards, the handoff happens in the same event round.
func TestRetargetActivePathHandsOffImmediately(t *testing.T) {
	s, ctrl, f, _, via := retargetTopo(t)
	var nf *sim.Flow
	// Every link starts active; retarget before the idle path dozes
	// off (SleepAfterIdle is 0.05 s).
	s.Schedule(0.01, func() {
		nf, _ = ctrl.Retarget(f, []topo.Path{via}, RetargetOpts{})
	})
	s.Run(0.02)
	if nf == nil || math.Abs(nf.Rate()-5*topo.Mbps) > 1e3 {
		t.Fatalf("new flow not carrying after immediate handoff")
	}
	if !f.Removed() {
		t.Error("old flow not retired immediately with zero grace")
	}
}

// TestRetargetCompactsSlots: once retired flows outnumber live ones,
// the controller compacts its slot table in a quiet probe window, so
// sustained swap churn keeps memory and per-round walks O(live); the
// surviving flow keeps probing and forwarding afterwards.
func TestRetargetCompactsSlots(t *testing.T) {
	s, ctrl, f, old, via := retargetTopo(t)
	paths := [2]topo.Path{old, via}
	cur := f
	// Swap the one managed flow back and forth: every retarget retires
	// a slot, so dead slots quickly outnumber the single live one.
	for i := 0; i < 6; i++ {
		at := 2 + float64(i)*3 // > wake (1 s) + grace (0.5 s) apart
		p := paths[(i+1)%2]
		s.Schedule(at, func() {
			nf, err := ctrl.Retarget(cur, []topo.Path{p}, RetargetOpts{DrainGrace: 0.5})
			if err != nil {
				t.Errorf("retarget %d: %v", i, err)
				return
			}
			cur = nf
		})
	}
	s.Run(25)
	if len(ctrl.flows) != 1 {
		t.Errorf("slot table holds %d entries after churn, want 1 (compacted)", len(ctrl.flows))
	}
	if ctrl.deadManaged != 0 {
		t.Errorf("deadManaged = %d after compaction, want 0", ctrl.deadManaged)
	}
	if len(ctrl.slot) != 1 {
		t.Errorf("slot map holds %d entries, want 1", len(ctrl.slot))
	}
	if math.Abs(cur.Rate()-5*topo.Mbps) > 1e3 {
		t.Errorf("surviving flow rate = %v, want 5 Mbps", cur.Rate())
	}
	// Probing still works against the compacted table.
	decisions := ctrl.Decisions
	s.Run(27)
	if ctrl.Decisions <= decisions {
		t.Error("no decisions after compaction: probe wheel lost the live slot")
	}
}

// TestRetargetFingerprintPinsSwap: the retarget/handoff/retire ops are
// folded into the controller fingerprint, so two identical runs pin
// and a run without the swap differs.
func TestRetargetFingerprintPinsSwap(t *testing.T) {
	run := func(swap bool) uint64 {
		s, ctrl, f, _, via := retargetTopo(t)
		if swap {
			s.Schedule(2.0, func() {
				if _, err := ctrl.Retarget(f, []topo.Path{via}, RetargetOpts{DrainGrace: 0.5}); err != nil {
					t.Errorf("retarget: %v", err)
				}
			})
		}
		s.Run(5)
		return ctrl.Fingerprint()
	}
	a, b, c := run(true), run(true), run(false)
	if a != b {
		t.Errorf("identical swap runs fingerprint %016x vs %016x", a, b)
	}
	if a == c {
		t.Errorf("swap and no-swap runs share fingerprint %016x", a)
	}
}
