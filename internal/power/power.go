// Package power implements the router/switch power models of the
// paper's §5.1 and the network-wide power accounting of §2.2.1.
//
// The paper's objective is
//
//	Σ_i X_i [ Pc(i) + Σ_{i→j ∈ A_i} Y_i→j (Pl(i→j) + Pa(i→j)) ]
//
// where Pc is chassis power, Pl per-port line-card power and Pa
// optical-amplifier power. Three concrete models are provided:
//
//   - Cisco12000: a Cisco 12000-series configuration — 600 W chassis
//     (≈60 % of the budget) and 60–174 W line cards by rate (OC3..OC192).
//   - Alternative: any base model with the always-on (chassis) budget
//     divided by 10, the paper's "future energy-proportional hardware".
//   - Commodity: datacenter switches where fixed overheads (fans, switch
//     chips, transceivers) are ≈90 % of peak power regardless of load.
//
// A sleeping element consumes a negligible amount of power (§5.1,
// citing Nedevschi et al.), modelled as exactly zero.
package power

import (
	"response/internal/topo"
)

// Model prices the three element classes of the paper's formulation.
type Model interface {
	// ChassisWatts is Pc(i): the cost of running node n's chassis.
	ChassisWatts(n topo.Node) float64
	// PortWatts is Pl(i→j): the cost of the port on n driving arc a
	// (a.From == n.ID).
	PortWatts(n topo.Node, a topo.Arc) float64
	// AmpWatts is Pa(i→j): the per-direction optical amplifier cost of
	// the underlying link; it depends solely on link length.
	AmpWatts(l topo.Link) float64
	// Name labels the model in experiment output.
	Name() string
}

// Cisco12000 models a Cisco 12000-series router: 600 W chassis and
// line-card power stepped by interface rate (§5.1: 60–174 W per card,
// chassis ≈60 % of the router's budget). Optical repeaters draw 1.2 W
// per 80 km span.
type Cisco12000 struct{}

// Name implements Model.
func (Cisco12000) Name() string { return "cisco12000" }

// ChassisWatts implements Model: 600 W for any powered router, 0 for hosts.
func (Cisco12000) ChassisWatts(n topo.Node) float64 {
	if n.Kind == topo.KindHost {
		return 0
	}
	return 600
}

// PortWatts implements Model, stepping by the arc's capacity tier:
// OC3 (155 Mb/s) → 60 W, OC12 (622 Mb/s) → 80 W, OC48 (2.5 Gb/s) →
// 100 W, OC192 (10 Gb/s) → 174 W.
func (Cisco12000) PortWatts(n topo.Node, a topo.Arc) float64 {
	if n.Kind == topo.KindHost {
		return 0
	}
	switch {
	case a.Capacity <= 155*topo.Mbps:
		return 60
	case a.Capacity <= 622*topo.Mbps:
		return 80
	case a.Capacity <= 2500*topo.Mbps:
		return 100
	default:
		return 174
	}
}

// AmpWatts implements Model: 1.2 W per started 80 km span, per
// direction. Negligible next to line cards, as the paper observes.
func (Cisco12000) AmpWatts(l topo.Link) float64 {
	spans := int(l.LengthKm/80) + 1
	return 1.2 * float64(spans)
}

// Alternative wraps a base model and divides its chassis (always-on
// component) power by 10 — the paper's "alternative hardware model"
// reflecting ongoing energy-proportionality efforts (§5.1, Figure 5).
type Alternative struct{ Base Model }

// Name implements Model.
func (m Alternative) Name() string { return m.Base.Name() + "-alt" }

// ChassisWatts implements Model with the 10× reduced chassis budget.
func (m Alternative) ChassisWatts(n topo.Node) float64 {
	return m.Base.ChassisWatts(n) / 10
}

// PortWatts implements Model, delegating to the base model.
func (m Alternative) PortWatts(n topo.Node, a topo.Arc) float64 {
	return m.Base.PortWatts(n, a)
}

// AmpWatts implements Model, delegating to the base model.
func (m Alternative) AmpWatts(l topo.Link) float64 { return m.Base.AmpWatts(l) }

// Commodity models off-the-shelf datacenter switches (§5.1): fixed
// overheads (fans, switch chip, transceivers) are FixedFraction of peak
// power even with no traffic; the remainder is split across ports.
type Commodity struct {
	// PeakWatts is the switch's maximum draw (default 150 W).
	PeakWatts float64
	// FixedFraction of peak drawn by the chassis (default 0.9).
	FixedFraction float64
	// Ports is the port count over which the dynamic share is split
	// (default 4, a k=4 fat-tree switch).
	Ports int
}

// NewCommodity returns the defaults used in the fat-tree experiments:
// 150 W peak, 90 % fixed, k ports.
func NewCommodity(k int) Commodity {
	return Commodity{PeakWatts: 150, FixedFraction: 0.9, Ports: k}
}

// Name implements Model.
func (Commodity) Name() string { return "commodity" }

// ChassisWatts implements Model.
func (m Commodity) ChassisWatts(n topo.Node) float64 {
	if n.Kind == topo.KindHost {
		return 0
	}
	return m.peak() * m.fixed()
}

// PortWatts implements Model.
func (m Commodity) PortWatts(n topo.Node, a topo.Arc) float64 {
	if n.Kind == topo.KindHost {
		return 0
	}
	ports := m.Ports
	if ports <= 0 {
		ports = 4
	}
	return m.peak() * (1 - m.fixed()) / float64(ports)
}

// AmpWatts implements Model: datacenter links need no amplifiers.
func (Commodity) AmpWatts(l topo.Link) float64 { return 0 }

func (m Commodity) peak() float64 {
	if m.PeakWatts <= 0 {
		return 150
	}
	return m.PeakWatts
}

func (m Commodity) fixed() float64 {
	if m.FixedFraction <= 0 || m.FixedFraction >= 1 {
		return 0.9
	}
	return m.FixedFraction
}

// NetworkWatts evaluates the paper's objective for a given power state:
// every active non-host router contributes its chassis, and every
// active link contributes a port at each endpoint plus the
// per-direction amplifier cost (counted once per direction, as in the
// model's sum over arcs). Sleeping elements contribute zero.
func NetworkWatts(t *topo.Topology, m Model, active *topo.ActiveSet) float64 {
	var w float64
	for _, n := range t.Nodes() {
		if n.Kind == topo.KindHost || !active.Router[n.ID] {
			continue
		}
		w += m.ChassisWatts(n)
	}
	for _, l := range t.Links() {
		if !active.Link[l.ID] {
			continue
		}
		ab, ba := t.Arc(l.AB), t.Arc(l.BA)
		w += m.PortWatts(t.Node(l.A), ab) + m.PortWatts(t.Node(l.B), ba)
		w += 2 * m.AmpWatts(l)
	}
	return w
}

// FullWatts is NetworkWatts with everything powered: the "original
// power" 100 % baseline of Figures 4–6.
func FullWatts(t *topo.Topology, m Model) float64 {
	return NetworkWatts(t, m, topo.AllOn(t))
}

// Fraction returns NetworkWatts as a percentage of FullWatts.
func Fraction(t *topo.Topology, m Model, active *topo.ActiveSet) float64 {
	full := FullWatts(t, m)
	if full == 0 {
		return 0
	}
	return 100 * NetworkWatts(t, m, active) / full
}

// Meter integrates network energy over time as the active set evolves.
// Feed it state changes with Observe; it accumulates Joules between
// observations and keeps a (time, watts) series for plotting.
type Meter struct {
	topo   *topo.Topology
	model  Model
	last   float64 // last observation time, seconds
	watts  float64 // power level since last observation
	joules float64
	Series []Sample
	full   float64
}

// Sample is one point of a power time series.
type Sample struct {
	Time  float64 // seconds since simulation start
	Watts float64
	// PctOfFull is Watts as a percentage of the all-on network power.
	PctOfFull float64
}

// NewMeter starts metering at t=0 with the given initial state.
func NewMeter(t *topo.Topology, m Model, initial *topo.ActiveSet) *Meter {
	mt := &Meter{topo: t, model: m, full: FullWatts(t, m)}
	mt.watts = NetworkWatts(t, m, initial)
	mt.record(0)
	return mt
}

// Observe accounts energy up to now and records the new active set.
func (mt *Meter) Observe(now float64, active *topo.ActiveSet) {
	if now < mt.last {
		now = mt.last
	}
	mt.joules += mt.watts * (now - mt.last)
	mt.last = now
	mt.watts = NetworkWatts(mt.topo, mt.model, active)
	mt.record(now)
}

func (mt *Meter) record(now float64) {
	pct := 0.0
	if mt.full > 0 {
		pct = 100 * mt.watts / mt.full
	}
	mt.Series = append(mt.Series, Sample{Time: now, Watts: mt.watts, PctOfFull: pct})
}

// Finish closes the accounting interval at the given time and returns
// total energy in Joules.
func (mt *Meter) Finish(now float64) float64 {
	if now > mt.last {
		mt.joules += mt.watts * (now - mt.last)
		mt.last = now
	}
	return mt.joules
}

// Joules returns the energy accumulated so far.
func (mt *Meter) Joules() float64 { return mt.joules }

// FullWatts returns the all-on baseline power.
func (mt *Meter) FullWatts() float64 { return mt.full }
