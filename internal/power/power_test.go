package power

import (
	"math"
	"testing"
	"testing/quick"

	"response/internal/topo"
)

func pair(t *testing.T, capacity float64) (*topo.Topology, topo.LinkID) {
	t.Helper()
	tp := topo.New("pair")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	l := tp.AddLink(a, b, capacity, 0.001)
	return tp, l
}

func TestCisco12000PortTiers(t *testing.T) {
	m := Cisco12000{}
	cases := []struct {
		cap  float64
		want float64
	}{
		{100 * topo.Mbps, 60},
		{155 * topo.Mbps, 60},
		{622 * topo.Mbps, 80},
		{2.5 * topo.Gbps, 100},
		{10 * topo.Gbps, 174},
		{40 * topo.Gbps, 174},
	}
	for _, c := range cases {
		tp, l := pair(t, c.cap)
		link := tp.Link(l)
		got := m.PortWatts(tp.Node(link.A), tp.Arc(link.AB))
		if got != c.want {
			t.Errorf("cap %v: port = %v, want %v", c.cap, got, c.want)
		}
	}
}

func TestCisco12000ChassisAndHost(t *testing.T) {
	m := Cisco12000{}
	tp := topo.New("h")
	r := tp.AddNode("R", topo.KindRouter)
	h := tp.AddNode("H", topo.KindHost)
	if m.ChassisWatts(tp.Node(r)) != 600 {
		t.Error("router chassis != 600")
	}
	if m.ChassisWatts(tp.Node(h)) != 0 {
		t.Error("host should draw no chassis power")
	}
	tp.AddLink(r, h, topo.Gbps, 0.001)
	l := tp.Link(0)
	if m.PortWatts(tp.Node(h), tp.Arc(l.BA)) != 0 {
		t.Error("host-side port should be free")
	}
}

func TestAmplifierSpans(t *testing.T) {
	m := Cisco12000{}
	short := topo.Link{LengthKm: 10}
	long := topo.Link{LengthKm: 400}
	if m.AmpWatts(short) != 1.2 {
		t.Errorf("short amp = %v", m.AmpWatts(short))
	}
	if math.Abs(m.AmpWatts(long)-1.2*6) > 1e-9 {
		t.Errorf("400km amp = %v, want %v", m.AmpWatts(long), 1.2*6)
	}
}

func TestAlternativeDividesChassisOnly(t *testing.T) {
	base := Cisco12000{}
	alt := Alternative{Base: base}
	tp, l := pair(t, 10*topo.Gbps)
	n := tp.Node(0)
	if alt.ChassisWatts(n) != base.ChassisWatts(n)/10 {
		t.Error("chassis not divided by 10")
	}
	link := tp.Link(l)
	if alt.PortWatts(n, tp.Arc(link.AB)) != base.PortWatts(n, tp.Arc(link.AB)) {
		t.Error("ports should be unchanged")
	}
	if alt.AmpWatts(link) != base.AmpWatts(link) {
		t.Error("amps should be unchanged")
	}
	if alt.Name() != "cisco12000-alt" {
		t.Errorf("name = %q", alt.Name())
	}
}

func TestCommodityFixedFraction(t *testing.T) {
	m := NewCommodity(4)
	tp, l := pair(t, topo.Gbps)
	n := tp.Node(0)
	chassis := m.ChassisWatts(n)
	port := m.PortWatts(n, tp.Arc(tp.Link(l).AB))
	if math.Abs(chassis-135) > 1e-9 {
		t.Errorf("chassis = %v, want 135 (90%% of 150)", chassis)
	}
	if math.Abs(port-150*0.1/4) > 1e-9 {
		t.Errorf("port = %v", port)
	}
	if m.AmpWatts(tp.Link(l)) != 0 {
		t.Error("commodity links need no amps")
	}
	// Zero-value defaults.
	var zero Commodity
	if zero.ChassisWatts(n) != 135 {
		t.Errorf("zero-value chassis = %v", zero.ChassisWatts(n))
	}
}

func TestNetworkWattsAccounting(t *testing.T) {
	m := Cisco12000{}
	tp, l := pair(t, 10*topo.Gbps)
	on := topo.AllOn(tp)
	link := tp.Link(l)
	want := 2*600 + 2*174 + 2*m.AmpWatts(link)
	if got := NetworkWatts(tp, m, on); math.Abs(got-want) > 1e-9 {
		t.Errorf("all-on = %v, want %v", got, want)
	}
	// Sleep the link: only chassis remain... but constraint semantics
	// are the caller's concern; NetworkWatts just prices the mask.
	off := on.Clone()
	off.Link[l] = false
	if got := NetworkWatts(tp, m, off); math.Abs(got-1200) > 1e-9 {
		t.Errorf("link-off = %v, want 1200", got)
	}
	allOff := topo.AllOff(tp)
	if NetworkWatts(tp, m, allOff) != 0 {
		t.Error("all-off should draw nothing")
	}
}

// Property: power is monotone in the active set.
func TestNetworkWattsMonotoneProperty(t *testing.T) {
	tp := topo.NewGeant()
	m := Cisco12000{}
	f := func(bitsR, bitsL uint64) bool {
		a := topo.AllOff(tp)
		for i := range a.Router {
			a.Router[i] = bitsR&(1<<uint(i%64)) != 0
		}
		for i := range a.Link {
			a.Link[i] = bitsL&(1<<uint(i%64)) != 0
		}
		b := a.Clone()
		// Turn one more element on in b.
		for i := range b.Router {
			if !b.Router[i] {
				b.Router[i] = true
				break
			}
		}
		for i := range b.Link {
			if !b.Link[i] {
				b.Link[i] = true
				break
			}
		}
		return NetworkWatts(tp, m, b) >= NetworkWatts(tp, m, a)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFractionBounds(t *testing.T) {
	tp := topo.NewGeant()
	m := Cisco12000{}
	if got := Fraction(tp, m, topo.AllOn(tp)); math.Abs(got-100) > 1e-9 {
		t.Errorf("all-on fraction = %v", got)
	}
	if got := Fraction(tp, m, topo.AllOff(tp)); got != 0 {
		t.Errorf("all-off fraction = %v", got)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := Cisco12000{}
	tp, l := pair(t, 10*topo.Gbps)
	on := topo.AllOn(tp)
	fullW := NetworkWatts(tp, m, on)
	meter := NewMeter(tp, m, on)
	// 10 s at full power.
	off := on.Clone()
	off.Link[l] = false
	off.EnforceInvariants(tp)
	meter.Observe(10, off)
	// 5 s with everything asleep (link off → routers off).
	j := meter.Finish(15)
	want := fullW*10 + NetworkWatts(tp, m, off)*5
	if math.Abs(j-want) > 1e-6 {
		t.Errorf("joules = %v, want %v", j, want)
	}
	if len(meter.Series) != 2 {
		t.Errorf("series points = %d", len(meter.Series))
	}
	if meter.FullWatts() != fullW {
		t.Error("full watts mismatch")
	}
	// Out-of-order observation clamps rather than rewinding.
	meter2 := NewMeter(tp, m, on)
	meter2.Observe(5, on)
	meter2.Observe(3, on) // ignored time travel
	if meter2.Finish(5) != fullW*5 {
		t.Error("meter mishandled out-of-order observation")
	}
}
