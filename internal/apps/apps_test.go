package apps

import (
	"testing"

	"response/internal/sim"
	"response/internal/te"
	"response/internal/topo"
)

// starTopo builds a star: src in the middle, n clients around it.
func starTopo(t *testing.T, n int, capacity float64) (*topo.Topology, topo.NodeID, []topo.NodeID) {
	t.Helper()
	tp := topo.New("star")
	src := tp.AddNode("src", topo.KindRouter)
	var clients []topo.NodeID
	for i := 0; i < n; i++ {
		c := tp.AddNode("c", topo.KindRouter)
		tp.AddLink(src, c, capacity, 0.005)
		clients = append(clients, c)
	}
	return tp, src, clients
}

func singlePath(tp *topo.Topology) func(o, d topo.NodeID) []topo.Path {
	return func(o, d topo.NodeID) []topo.Path {
		aid, ok := tp.ArcBetween(o, d)
		if !ok {
			return nil
		}
		return []topo.Path{{Arcs: []topo.ArcID{aid}}}
	}
}

func TestStreamingAmpleCapacityPlaysClean(t *testing.T) {
	tp, src, clients := starTopo(t, 5, 10*topo.Mbps)
	res, err := RunStreaming(tp, StreamingOpts{
		Source:        src,
		Phase1Clients: clients,
		Phase2At:      30,
		Duration:      60,
		PathsFor:      singlePath(tp),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clients) != 5 {
		t.Fatalf("clients = %d", len(res.Clients))
	}
	for _, c := range res.Clients {
		if c.PlayablePct < 99 {
			t.Errorf("client %d playable %.1f%%, want ≈100", c.Client, c.PlayablePct)
		}
		if c.Blocks == 0 {
			t.Errorf("client %d scored no blocks", c.Client)
		}
	}
	if res.PlayableBox.Min < 99 {
		t.Errorf("boxplot min = %v", res.PlayableBox.Min)
	}
	// 600 kbps on an idle 10 Mbps path: retrieval latency ≈ one block
	// duration (live streaming at line rate) + propagation delay.
	if res.MeanBlockLatency > 1.1 {
		t.Errorf("mean block latency %.2fs too high", res.MeanBlockLatency)
	}
	if res.MeanBlockLatency < 0.9 {
		t.Errorf("mean block latency %.2fs implausibly low", res.MeanBlockLatency)
	}
}

func TestStreamingStarvedClientsStall(t *testing.T) {
	// 0.3 Mbps links cannot carry a 600 kbps stream.
	tp, src, clients := starTopo(t, 3, 0.3*topo.Mbps)
	res, err := RunStreaming(tp, StreamingOpts{
		Source:        src,
		Phase1Clients: clients,
		Phase2At:      30,
		Duration:      60,
		PathsFor:      singlePath(tp),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if c.PlayablePct > 50 {
			t.Errorf("starved client %d playable %.1f%%", c.Client, c.PlayablePct)
		}
	}
}

func TestStreamingPhase2Join(t *testing.T) {
	tp, src, clients := starTopo(t, 4, 10*topo.Mbps)
	res, err := RunStreaming(tp, StreamingOpts{
		Source:        src,
		Phase1Clients: clients[:2],
		Phase2Clients: clients[2:],
		Phase2At:      20,
		Duration:      60,
		PathsFor:      singlePath(tp),
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := map[float64]int{}
	for _, c := range res.Clients {
		joined[c.JoinAt]++
	}
	if joined[0] != 2 || joined[20] != 2 {
		t.Errorf("join times = %v", joined)
	}
	// Later joiners have fewer blocks but should still play.
	for _, c := range res.Clients {
		if c.PlayablePct < 99 {
			t.Errorf("client joined at %v playable %.1f%%", c.JoinAt, c.PlayablePct)
		}
	}
}

func TestStreamingNoPathError(t *testing.T) {
	tp, src, clients := starTopo(t, 1, topo.Mbps)
	_, err := RunStreaming(tp, StreamingOpts{
		Source:        src,
		Phase1Clients: clients,
		PathsFor:      func(o, d topo.NodeID) []topo.Path { return nil },
	})
	if err == nil {
		t.Error("missing paths should error")
	}
}

func TestSpecwebSizesPlausible(t *testing.T) {
	sizes := SpecwebBankingSizes(1000, 7)
	if len(sizes) != 1000 {
		t.Fatal("length")
	}
	var small, big int
	for _, s := range sizes {
		if s < 500 || s > 1e6 {
			t.Fatalf("size %v out of bounds", s)
		}
		if s < 30e3 {
			small++
		}
		if s > 100e3 {
			big++
		}
	}
	if small < 500 {
		t.Errorf("only %d small files; banking mix should be small-file heavy", small)
	}
	if big == 0 {
		t.Error("no tail files at all")
	}
	// Deterministic.
	again := SpecwebBankingSizes(1000, 7)
	for i := range sizes {
		if sizes[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestWebLatencyPathSensitivity(t *testing.T) {
	// Short path vs long path: latency must increase with path length.
	tp := topo.New("web")
	srv := tp.AddNode("srv", topo.KindRouter)
	mid := tp.AddNode("mid", topo.KindRouter)
	c1 := tp.AddNode("c1", topo.KindRouter)
	tp.AddLink(srv, c1, 100*topo.Mbps, 0.01)
	tp.AddLink(srv, mid, 100*topo.Mbps, 0.01)
	tp.AddLink(mid, c1, 100*topo.Mbps, 0.01)
	direct, _ := tp.ArcBetween(srv, c1)
	h1, _ := tp.ArcBetween(srv, mid)
	h2, _ := tp.ArcBetween(mid, c1)
	shortPath := topo.Path{Arcs: []topo.ArcID{direct}}
	longPath := topo.Path{Arcs: []topo.ArcID{h1, h2}}

	run := func(p topo.Path) *WebResult {
		res, err := RunWeb(tp, WebOpts{
			Server:  srv,
			Clients: []topo.NodeID{c1},
			PathFor: func(s, c topo.NodeID) topo.Path { return p },
			Seed:    3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(shortPath)
	slow := run(longPath)
	if slow.Mean <= fast.Mean {
		t.Errorf("long path %.4f <= short path %.4f", slow.Mean, fast.Mean)
	}
	increase := (slow.Mean - fast.Mean) / fast.Mean
	if increase <= 0 || increase > 1 {
		t.Errorf("latency increase = %.0f%%", increase*100)
	}
	if len(fast.Latencies) != 250 {
		t.Errorf("requests = %d", len(fast.Latencies))
	}
	if fast.P95 < fast.Mean {
		t.Error("P95 below mean is implausible for a heavy-tailed mix")
	}
}

func TestWebErrors(t *testing.T) {
	tp, src, clients := starTopo(t, 1, topo.Mbps)
	_, err := RunWeb(tp, WebOpts{
		Server:  src,
		Clients: clients,
		PathFor: func(s, c topo.NodeID) topo.Path { return topo.Path{} },
	})
	if err == nil {
		t.Error("empty path should error")
	}
	_, err = RunWeb(tp, WebOpts{
		Server:  src,
		Clients: clients,
		PathFor: func(s, c topo.NodeID) topo.Path {
			aid, _ := tp.ArcBetween(s, c)
			return topo.Path{Arcs: []topo.ArcID{aid}}
		},
		BackgroundUtil: 1.0,
	})
	if err == nil {
		t.Error("zero residual bandwidth should error")
	}
}

// TestStreamingWithTEKeepsPlayback runs streaming under the TE
// controller on a two-path topology, ensuring consolidation does not
// break playback.
func TestStreamingWithTEKeepsPlayback(t *testing.T) {
	tp := topo.New("twopath")
	src := tp.AddNode("src", topo.KindRouter)
	mid := tp.AddNode("mid", topo.KindRouter)
	dst := tp.AddNode("dst", topo.KindRouter)
	tp.AddLink(src, dst, 5*topo.Mbps, 0.01)
	tp.AddLink(src, mid, 5*topo.Mbps, 0.01)
	tp.AddLink(mid, dst, 5*topo.Mbps, 0.01)
	direct, _ := tp.ArcBetween(src, dst)
	h1, _ := tp.ArcBetween(src, mid)
	h2, _ := tp.ArcBetween(mid, dst)
	levels := []topo.Path{
		{Arcs: []topo.ArcID{direct}},
		{Arcs: []topo.ArcID{h1, h2}},
	}
	pinned := topo.AllOff(tp)
	pinned.ActivatePath(tp, levels[0])
	res, err := RunStreaming(tp, StreamingOpts{
		Source:        src,
		Phase1Clients: []topo.NodeID{dst},
		Phase2At:      20,
		Duration:      60,
		PathsFor:      func(o, d topo.NodeID) []topo.Path { return levels },
		Sim:           sim.Opts{PinnedOn: pinned},
		TE:            &te.Opts{Threshold: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients[0].PlayablePct < 99 {
		t.Errorf("playable %.1f%% under TE", res.Clients[0].PlayablePct)
	}
}
