package apps

import (
	"fmt"
	"math"
	"math/rand"

	"response/internal/stats"
	"response/internal/topo"
)

// WebOpts parameterizes the web workload of §5.4: one stub node runs
// the server, the remaining stub nodes run closed-loop clients fetching
// 100 static files whose sizes follow the SPECweb2005 online-banking
// distribution.
type WebOpts struct {
	Server  topo.NodeID
	Clients []topo.NodeID
	// Files is the static file population (default 100).
	Files int
	// RequestsPerClient (default 250).
	RequestsPerClient int
	// PathFor returns the forward path used for (server → client)
	// responses; requests travel its reverse latency.
	PathFor func(server, client topo.NodeID) topo.Path
	// BackgroundUtil is the fraction of each path's bottleneck already
	// consumed by other traffic (same for all variants; default 0.5).
	BackgroundUtil float64
	Seed           int64
}

func (o *WebOpts) defaults() {
	if o.Files == 0 {
		o.Files = 100
	}
	if o.RequestsPerClient == 0 {
		o.RequestsPerClient = 250
	}
	if o.BackgroundUtil == 0 {
		o.BackgroundUtil = 0.5
	}
}

// WebResult summarizes retrieval latencies.
type WebResult struct {
	Latencies []float64 // seconds, one per request
	Mean      float64
	P95       float64
}

// SpecwebBankingSizes generates a deterministic file-size population
// (bytes) approximating the SPECweb2005 online-banking static mix: a
// lognormal body (median ≈10 KB) with a small heavy tail capped at
// 1 MB.
func SpecwebBankingSizes(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]float64, n)
	for i := range sizes {
		// ln-median 10 KB, sigma 1.0; ~5 % of files get a 10× tail.
		s := 10e3 * math.Exp(rng.NormFloat64())
		if rng.Float64() < 0.05 {
			s *= 10
		}
		if s > 1e6 {
			s = 1e6
		}
		if s < 500 {
			s = 500
		}
		sizes[i] = s
	}
	return sizes
}

// RunWeb executes the closed-loop web workload analytically over the
// chosen paths: each retrieval costs one request RTT plus the transfer
// at the path's residual bottleneck bandwidth. The model is shared by
// every variant, so relative latency differences reflect only the path
// choice — exactly the quantity §5.4 reports (+≈9 % under REsPoNse).
func RunWeb(t *topo.Topology, opts WebOpts) (*WebResult, error) {
	opts.defaults()
	sizes := SpecwebBankingSizes(opts.Files, opts.Seed)
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	res := &WebResult{}
	for _, c := range opts.Clients {
		p := opts.PathFor(opts.Server, c)
		if p.Empty() {
			return nil, fmt.Errorf("apps: no web path %d->%d", opts.Server, c)
		}
		rtt := 2 * p.Latency(t)
		avail := p.Bottleneck(t) * (1 - opts.BackgroundUtil)
		if avail <= 0 {
			return nil, fmt.Errorf("apps: zero residual bandwidth %d->%d", opts.Server, c)
		}
		for r := 0; r < opts.RequestsPerClient; r++ {
			size := sizes[rng.Intn(len(sizes))]
			lat := rtt + size*8/avail
			res.Latencies = append(res.Latencies, lat)
		}
	}
	res.Mean = stats.Mean(res.Latencies)
	res.P95 = stats.MustPercentile(res.Latencies, 95)
	return res, nil
}
