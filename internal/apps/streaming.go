// Package apps runs the paper's application-level workloads (§5.4) over
// the fluid simulator: a BulletMedia-like live streaming session with
// block play deadlines (Figure 9) and a SPECweb2005-banking-like web
// workload, both comparing REsPoNse-chosen paths against OSPF-InvCap.
package apps

import (
	"fmt"
	"sort"

	"response/internal/sim"
	"response/internal/stats"
	"response/internal/te"
	"response/internal/topo"
)

// StreamingOpts parameterizes the live-streaming experiment: a source
// streams a file at BitRate to every client; a client can play the
// video when media blocks arrive before their play deadlines.
type StreamingOpts struct {
	Source topo.NodeID
	// Phase1Clients join at t=0; Phase2Clients join at Phase2At
	// (§5.4: 50 participants, then 50 more after 300 s).
	Phase1Clients []topo.NodeID
	Phase2Clients []topo.NodeID
	Phase2At      float64
	// BitRate is the stream rate (default 600 kb/s).
	BitRate float64
	// BlockSec is one media block's duration (default 1 s).
	BlockSec float64
	// StartupSec is the client-side buffering delay before playback
	// (default 5 s).
	StartupSec float64
	// Duration is the total experiment length (default Phase2At+300).
	Duration float64
	// PathsFor supplies the installed path levels per (source,client)
	// pair: REsPoNse tables or a single-element slice for OSPF.
	PathsFor func(o, d topo.NodeID) []topo.Path
	// Sim configures the underlying simulator.
	Sim sim.Opts
	// TE, when non-nil, runs a REsPoNseTE controller over the flows.
	TE *te.Opts
	// SamplePeriod for cumulative-byte sampling (default BlockSec/4).
	SamplePeriod float64
	// Background adds non-streaming load sharing the network (§5.4
	// runs the workloads at network utilization levels, not on an
	// idle network).
	Background []BackgroundFlow
}

// BackgroundFlow is ambient traffic competing with the application.
type BackgroundFlow struct {
	O, D  topo.NodeID
	Rate  float64
	Paths []topo.Path
}

func (o *StreamingOpts) defaults() {
	if o.BitRate == 0 {
		o.BitRate = 600 * topo.Kbps
	}
	if o.BlockSec == 0 {
		o.BlockSec = 1
	}
	if o.StartupSec == 0 {
		o.StartupSec = 5
	}
	if o.Phase2At == 0 {
		o.Phase2At = 300
	}
	if o.Duration == 0 {
		o.Duration = o.Phase2At + 300
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = o.BlockSec / 4
	}
}

// ClientResult summarizes one client's playback.
type ClientResult struct {
	Client      topo.NodeID
	JoinAt      float64
	Blocks      int
	OnTime      int
	PlayablePct float64
	// MeanRetrievalLatency is the mean time from a block becoming
	// available at the source to its complete arrival.
	MeanRetrievalLatency float64
}

// StreamingResult aggregates the experiment.
type StreamingResult struct {
	Clients []ClientResult
	// PlayableBox summarizes per-client playable percentages — the
	// boxplot bars of Figure 9.
	PlayableBox stats.Boxplot
	// MeanBlockLatency averages retrieval latency over all clients.
	MeanBlockLatency float64
}

type streamClient struct {
	node   topo.NodeID
	joinAt float64
	flow   *sim.Flow
	bytes  []sim.Sample
	// propDelay is the share-weighted one-way propagation delay of the
	// client's paths at the end of the run; the fluid byte counter has
	// no notion of it, so scoring adds it to every block arrival.
	propDelay float64
}

// RunStreaming executes the streaming workload and scores playback.
func RunStreaming(t *topo.Topology, opts StreamingOpts) (*StreamingResult, error) {
	opts.defaults()
	s := sim.New(t, opts.Sim)
	var ctrl *te.Controller
	if opts.TE != nil {
		ctrl = te.NewController(s, *opts.TE)
	}

	for _, b := range opts.Background {
		if len(b.Paths) == 0 || b.Rate <= 0 {
			continue
		}
		f, err := s.AddFlow(b.O, b.D, b.Rate, b.Paths)
		if err != nil {
			return nil, fmt.Errorf("apps: background %d->%d: %w", b.O, b.D, err)
		}
		if ctrl != nil {
			ctrl.Manage(f)
		}
	}

	var clients []*streamClient
	join := func(node topo.NodeID, at float64) error {
		paths := opts.PathsFor(opts.Source, node)
		if len(paths) == 0 {
			return fmt.Errorf("apps: no path %d->%d", opts.Source, node)
		}
		c := &streamClient{node: node, joinAt: at}
		clients = append(clients, c)
		s.Schedule(at, func() {
			f, err := s.AddFlow(opts.Source, node, opts.BitRate, paths)
			if err != nil {
				return
			}
			c.flow = f
			if ctrl != nil {
				ctrl.Manage(f)
			}
		})
		return nil
	}
	for _, n := range opts.Phase1Clients {
		if err := join(n, 0); err != nil {
			return nil, err
		}
	}
	for _, n := range opts.Phase2Clients {
		if err := join(n, opts.Phase2At); err != nil {
			return nil, err
		}
	}
	if ctrl != nil {
		ctrl.Start()
	}
	// Sample cumulative bytes.
	s.SampleEvery(opts.SamplePeriod, opts.Duration, func(now float64) {
		for _, c := range clients {
			if c.flow == nil {
				continue
			}
			c.bytes = append(c.bytes, sim.Sample{Time: now, Value: s.Bytes(c.flow)})
		}
	})
	s.Run(opts.Duration)
	for _, c := range clients {
		if c.flow == nil {
			continue
		}
		c.propDelay = shareWeightedLatency(t, c.flow)
	}

	res := &StreamingResult{}
	var playable []float64
	var latSum float64
	var latN int
	blockBytes := opts.BitRate / 8 * opts.BlockSec
	for _, c := range clients {
		cr := scoreClient(c, blockBytes, opts)
		res.Clients = append(res.Clients, cr)
		playable = append(playable, cr.PlayablePct)
		if cr.Blocks > 0 {
			latSum += cr.MeanRetrievalLatency * float64(cr.Blocks)
			latN += cr.Blocks
		}
	}
	if len(playable) > 0 {
		res.PlayableBox, _ = stats.NewBoxplot(playable)
	}
	if latN > 0 {
		res.MeanBlockLatency = latSum / float64(latN)
	}
	return res, nil
}

// scoreClient converts a cumulative-byte series into block arrival
// times and scores them against play deadlines.
func scoreClient(c *streamClient, blockBytes float64, opts StreamingOpts) ClientResult {
	cr := ClientResult{Client: c.node, JoinAt: c.joinAt}
	if len(c.bytes) == 0 {
		return cr
	}
	end := c.bytes[len(c.bytes)-1]
	// Blocks the client should have played by the end of the run.
	playSpan := end.Time - c.joinAt - opts.StartupSec
	nBlocks := int(playSpan / opts.BlockSec)
	if nBlocks <= 0 {
		return cr
	}
	var latSum float64
	for i := 0; i < nBlocks; i++ {
		need := float64(i+1) * blockBytes
		arrival, ok := arrivalTime(c.bytes, need)
		arrival += c.propDelay
		if !ok {
			// Never arrived within the run: late by definition.
			cr.Blocks++
			latSum += end.Time - (c.joinAt + float64(i)*opts.BlockSec)
			continue
		}
		deadline := c.joinAt + opts.StartupSec + float64(i)*opts.BlockSec
		cr.Blocks++
		if arrival <= deadline {
			cr.OnTime++
		}
		// Retrieval latency: from the block becoming available at the
		// source (live stream: i·blockSec after join) to full arrival.
		avail := c.joinAt + float64(i)*opts.BlockSec
		if arrival > avail {
			latSum += arrival - avail
		}
	}
	if cr.Blocks > 0 {
		cr.PlayablePct = 100 * float64(cr.OnTime) / float64(cr.Blocks)
		cr.MeanRetrievalLatency = latSum / float64(cr.Blocks)
	}
	return cr
}

// shareWeightedLatency returns the flow's propagation delay averaged
// over its path shares (falls back to the first path when all share
// has drained).
func shareWeightedLatency(t *topo.Topology, f *sim.Flow) float64 {
	var lat, total float64
	for i, p := range f.Paths {
		sh := f.ShareOf(i)
		if sh <= 0 || p.Empty() {
			continue
		}
		lat += sh * p.Latency(t)
		total += sh
	}
	if total <= 0 {
		if len(f.Paths) > 0 {
			return f.Paths[0].Latency(t)
		}
		return 0
	}
	return lat / total
}

// arrivalTime interpolates when cumulative bytes first reached need.
func arrivalTime(samples []sim.Sample, need float64) (float64, bool) {
	i := sort.Search(len(samples), func(i int) bool { return samples[i].Value >= need })
	if i == len(samples) {
		return 0, false
	}
	if i == 0 {
		return samples[0].Time, true
	}
	prev, cur := samples[i-1], samples[i]
	if cur.Value <= prev.Value {
		return cur.Time, true
	}
	frac := (need - prev.Value) / (cur.Value - prev.Value)
	return prev.Time + frac*(cur.Time-prev.Time), true
}

// PlayableFraction is a convenience accessor: fraction of clients whose
// playable percentage is at least pct.
func (r *StreamingResult) PlayableFraction(pct float64) float64 {
	if len(r.Clients) == 0 {
		return 0
	}
	n := 0
	for _, c := range r.Clients {
		if c.PlayablePct >= pct {
			n++
		}
	}
	return float64(n) / float64(len(r.Clients))
}
