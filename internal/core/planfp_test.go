package core

import (
	"testing"

	"response/internal/power"
	"response/internal/topo"
)

// TestPlanFingerprints pins the exact planner output on the named
// topologies. The constants were captured from the seed planner
// (sequential full-reroute greedy, container/heap Dijkstra); the
// rebuilt engine — workspace Dijkstra, delta-rerouting, parallel
// restarts — must reproduce them bit-for-bit.
func TestPlanFingerprints(t *testing.T) {
	model := power.Cisco12000{}
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		topo    *topo.Topology
		want    uint64
		tunnels int
	}{
		{"geant", topo.NewGeant(), 6569351175397795390, 1518},
		{"example", topo.NewExample(topo.ExampleOpts{}).Topology, 2457213049051472932, 216},
		{"fattree4", ft.Topology, 9603934104780153607, 720},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tables, err := Plan(tc.topo, PlanOpts{Model: model})
			if err != nil {
				t.Fatal(err)
			}
			got := tables.Fingerprint()
			if got != tc.want {
				t.Errorf("plan fingerprint = %d, want %d (planner output drifted from seed)", got, tc.want)
			}
			if n := tables.TunnelCount(); n != tc.tunnels {
				t.Errorf("tunnel count = %d, want %d", n, tc.tunnels)
			}
		})
	}
}
