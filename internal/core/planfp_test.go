package core

import (
	"fmt"
	"hash/fnv"
	"testing"

	"response/internal/power"
	"response/internal/topo"
)

// planFingerprint hashes the full content of the installed tables —
// every path of every pair, in deterministic order, plus the always-on
// element set — into one 64-bit value, so tests can assert that planner
// outputs are unchanged across refactors of the planning engine.
func planFingerprint(t *topo.Topology, tb *Tables) uint64 {
	h := fnv.New64a()
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		fmt.Fprintf(h, "%d>%d|", k[0], k[1])
		for _, p := range ps.Levels() {
			fmt.Fprintf(h, "%s;", p.Key())
		}
	}
	fmt.Fprintf(h, "aon:%d", tb.AlwaysOnSet.Fingerprint())
	return h.Sum64()
}

// TestPlanFingerprints pins the exact planner output on the named
// topologies. The constants were captured from the seed planner
// (sequential full-reroute greedy, container/heap Dijkstra); the
// rebuilt engine — workspace Dijkstra, delta-rerouting, parallel
// restarts — must reproduce them bit-for-bit.
func TestPlanFingerprints(t *testing.T) {
	model := power.Cisco12000{}
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		topo    *topo.Topology
		want    uint64
		tunnels int
	}{
		{"geant", topo.NewGeant(), 6569351175397795390, 1518},
		{"example", topo.NewExample(topo.ExampleOpts{}).Topology, 2457213049051472932, 216},
		{"fattree4", ft.Topology, 9603934104780153607, 720},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tables, err := Plan(tc.topo, PlanOpts{Model: model})
			if err != nil {
				t.Fatal(err)
			}
			got := planFingerprint(tc.topo, tables)
			if got != tc.want {
				t.Errorf("plan fingerprint = %d, want %d (planner output drifted from seed)", got, tc.want)
			}
			if n := tables.TunnelCount(); n != tc.tunnels {
				t.Errorf("tunnel count = %d, want %d", n, tc.tunnels)
			}
		})
	}
}
