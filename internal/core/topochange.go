package core

import (
	"response/internal/topo"
)

// The paper's stated future work (§6): "quantify the level at which
// topology changes (failures, routing changes, etc.) would warrant
// recomputing the energy-critical paths." TopologyChangeImpact answers
// that question for installed tables: for each hypothetical link
// failure it reports how many pairs lose each table level and how many
// lose *all* levels (the only event that forces a replan, since the
// online component survives anything less by shifting to surviving
// levels).
type TopologyChangeImpact struct {
	Link topo.LinkID
	// LostAlwaysOn / LostOnDemand / LostFailover count pairs whose
	// respective paths traverse the failed link.
	LostAlwaysOn int
	LostOnDemand int
	LostFailover int
	// Disconnected counts pairs with no surviving installed path —
	// these pairs make the failure replan-worthy.
	Disconnected int
}

// ReplanWorthy reports whether this failure leaves some pair with no
// installed path at all.
func (i TopologyChangeImpact) ReplanWorthy() bool { return i.Disconnected > 0 }

// AnalyzeTopologyChanges evaluates every single-link failure against
// the installed tables.
func (tb *Tables) AnalyzeTopologyChanges() []TopologyChangeImpact {
	t := tb.Topo
	out := make([]TopologyChangeImpact, 0, t.NumLinks())
	for _, l := range t.Links() {
		impact := TopologyChangeImpact{Link: l.ID}
		for _, ps := range tb.Pairs {
			hitAON := ps.AlwaysOn.UsesLink(t, l.ID)
			hitFO := !ps.Failover.Empty() && ps.Failover.UsesLink(t, l.ID)
			if hitAON {
				impact.LostAlwaysOn++
			}
			if hitFO {
				impact.LostFailover++
			}
			survivors := 0
			if !ps.AlwaysOn.Empty() && !hitAON {
				survivors++
			}
			for _, p := range ps.OnDemand {
				if p.Empty() {
					continue
				}
				if p.UsesLink(t, l.ID) {
					impact.LostOnDemand++
				} else {
					survivors++
				}
			}
			if !ps.Failover.Empty() && !hitFO {
				survivors++
			}
			if survivors == 0 {
				impact.Disconnected++
			}
		}
		out = append(out, impact)
	}
	return out
}

// ReplanWorthyFailures returns the links whose single failure would
// force recomputing the tables (some pair loses every installed path).
// On well-connected topologies this should be only bridges.
func (tb *Tables) ReplanWorthyFailures() []topo.LinkID {
	var out []topo.LinkID
	for _, impact := range tb.AnalyzeTopologyChanges() {
		if impact.ReplanWorthy() {
			out = append(out, impact.Link)
		}
	}
	return out
}

// Truncate returns a copy of the tables keeping only the first n
// levels per pair (n >= 2: always-on plus n-2 on-demand; the failover
// path is kept as the final level whenever n >= 2 allows it). This
// models memory-limited deployments such as Dual Topology Routing
// (§4.5: "if the routing memory is limited ... we can deploy only the
// most important routing tables").
func (tb *Tables) Truncate(n int) *Tables {
	if n < 2 {
		n = 2
	}
	out := &Tables{
		Topo:        tb.Topo,
		Pairs:       make(map[[2]topo.NodeID]*PathSet, len(tb.Pairs)),
		AlwaysOnSet: tb.AlwaysOnSet.Clone(),
		Variant:     tb.Variant + "-truncated",
	}
	for k, ps := range tb.Pairs {
		keep := &PathSet{AlwaysOn: ps.AlwaysOn, Failover: ps.Failover}
		budget := n - 2 // on-demand slots after always-on + failover
		for _, p := range ps.OnDemand {
			if budget <= 0 {
				break
			}
			keep.OnDemand = append(keep.OnDemand, p)
			budget--
		}
		out.Pairs[k] = keep
	}
	return out
}
