package core

import (
	"sort"

	"response/internal/mcf"
	"response/internal/topo"
)

// StressFactor computes the paper's per-link stress factor (§4.2):
//
//	sf(l) = (number of flows routed via l) / C(l)
//
// over a routing assignment — the probabilistic proxy for "how likely
// is this link to become a bottleneck". Flow counts sum both arc
// directions of the physical link. Capacity is expressed in Gb/s so the
// factors are O(1).
func StressFactor(t *topo.Topology, r *mcf.Routing) []float64 {
	paths := make([]topo.Path, 0, len(r.Paths))
	for _, p := range r.Paths {
		paths = append(paths, p)
	}
	return StressFactorPaths(t, paths)
}

// StressFactorPaths is StressFactor over an explicit path collection
// (e.g. always-on plus previously computed on-demand assignments).
func StressFactorPaths(t *topo.Topology, paths []topo.Path) []float64 {
	counts := make([]float64, t.NumLinks())
	for _, p := range paths {
		for _, aid := range p.Arcs {
			counts[t.Arc(aid).Link]++
		}
	}
	sf := make([]float64, t.NumLinks())
	for _, l := range t.Links() {
		capGbps := (t.Arc(l.AB).Capacity + t.Arc(l.BA).Capacity) / 2 / 1e9
		if capGbps > 0 {
			sf[l.ID] = counts[l.ID] / capGbps
		}
	}
	return sf
}

// TopStressed returns the IDs of the ⌈fraction·|links|⌉ links with the
// highest stress factor (ties broken by link ID for determinism).
// The paper's sensitivity analysis lands on fraction = 0.2.
func TopStressed(sf []float64, fraction float64) map[topo.LinkID]bool {
	if fraction <= 0 {
		return map[topo.LinkID]bool{}
	}
	if fraction > 1 {
		fraction = 1
	}
	ids := rankByStress(sf)
	n := int(float64(len(sf))*fraction + 0.9999)
	if n > len(ids) {
		n = len(ids)
	}
	out := make(map[topo.LinkID]bool, n)
	for _, id := range ids[:n] {
		if sf[id] > 0 { // never exclude links that carry nothing
			out[topo.LinkID(id)] = true
		}
	}
	return out
}

// ExcludableStressed is TopStressed with a connectivity guard: links
// are taken in stress order but a link is skipped when excluding it
// (on top of already-excluded ones) would disconnect the non-host
// topology. Degree-1 spurs — which score high on flows/capacity but
// are the only way to reach their node — therefore stay usable, which
// is what any operator deploying the §4.2 exclusion would require.
func ExcludableStressed(t *topo.Topology, sf []float64, fraction float64,
	already map[topo.LinkID]bool) map[topo.LinkID]bool {

	if fraction <= 0 {
		return map[topo.LinkID]bool{}
	}
	if fraction > 1 {
		fraction = 1
	}
	budget := int(float64(len(sf))*fraction + 0.9999)
	out := make(map[topo.LinkID]bool, budget)
	trial := topo.AllOn(t)
	for id := range already {
		trial.Link[id] = false
	}
	for _, id := range rankByStress(sf) {
		if len(out) >= budget {
			break
		}
		lid := topo.LinkID(id)
		if sf[id] <= 0 || already[lid] {
			continue
		}
		trial.Link[lid] = false
		if t.ConnectedUnder(trial) {
			out[lid] = true
		} else {
			trial.Link[lid] = true // keep: it is a bridge
		}
	}
	return out
}

// rankByStress returns link indices sorted by descending stress.
func rankByStress(sf []float64) []int {
	ids := make([]int, len(sf))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if sf[ids[a]] != sf[ids[b]] {
			return sf[ids[a]] > sf[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}
