package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"response/internal/mcf"
	"response/internal/power"
	"response/internal/spf"
	"response/internal/topo"
	"response/internal/traffic"
)

// Mode selects how on-demand paths are computed (§4.2).
type Mode int

// On-demand computation modes.
const (
	// ModeStress is the demand-oblivious default ("REsPoNse" in the
	// figures): solve the min-power problem while avoiding the
	// top-stressed fraction of links from the always-on assignment.
	ModeStress Mode = iota
	// ModeSolver uses the solver with the peak-hour traffic matrix,
	// carrying the always-on X/Y fixed to 1.
	ModeSolver
	// ModeOSPF substitutes the default OSPF-InvCap routing table for
	// the on-demand paths ("REsPoNse-ospf").
	ModeOSPF
	// ModeHeuristic uses the GreenTE-style k-shortest-path heuristic
	// with the peak matrix ("REsPoNse-heuristic").
	ModeHeuristic
)

// String names the mode as the figures label it.
func (m Mode) String() string {
	switch m {
	case ModeStress:
		return "REsPoNse"
	case ModeSolver:
		return "REsPoNse-solver"
	case ModeOSPF:
		return "REsPoNse-ospf"
	case ModeHeuristic:
		return "REsPoNse-heuristic"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// PlanOpts parameterizes the off-line path precomputation.
type PlanOpts struct {
	// N is the number of energy-critical paths per pair (default 3:
	// one always-on, N-2 on-demand, one failover). §3.3: 3 suffice on
	// GÉANT, 5 on a fat-tree.
	N int
	// Mode selects the on-demand computation (default ModeStress).
	Mode Mode
	// Beta, when > 0, enables the REsPoNse-lat delay bound (§4.1,
	// constraint 4): every always-on path's propagation delay must be
	// ≤ (1+Beta) × the OSPF-InvCap path delay. The paper uses 0.25.
	Beta float64
	// StressExclude is the fraction of top-stressed links excluded
	// when computing on-demand paths (default 0.2, §4.2). Zero selects
	// the default; a negative value disables exclusion entirely.
	StressExclude float64
	// Epsilon is the per-pair demand used for the traffic-oblivious
	// always-on computation (default 1 bit/s, §4.1).
	Epsilon float64
	// LowTM, when non-nil, replaces the ε-demand with a measured
	// off-peak matrix (d_low).
	LowTM *traffic.Matrix
	// PeakTM supplies d_peak for ModeSolver/ModeHeuristic.
	PeakTM *traffic.Matrix
	// Model prices elements (required).
	Model power.Model
	// MaxUtil is the ISP's utilization ceiling, which must be positive
	// (default 1.0).
	MaxUtil float64
	// Nodes is the OD universe (default: hosts if the topology has
	// any, otherwise all non-host nodes).
	Nodes []topo.NodeID
	// RandomRestarts for the optimal-subset search (default 4; a
	// negative value disables random restarts, leaving only the
	// deterministic orderings).
	RandomRestarts int
	Seed           int64
	// Warm, when non-nil, seeds each subset-search stage from the
	// corresponding stage of a previous plan (see WarmStart); stages
	// whose seed misses its tolerance fall back to the cold search, so
	// warm planning never changes feasibility, only speed.
	Warm *WarmStart
	// PathEngine selects the point-to-point shortest-path solver for
	// every search the plan issues (default: the reference Dijkstra).
	// The goal-directed engines are certified-exact — they fall back to
	// the reference engine on any query whose answer they cannot prove
	// identical — so the resulting plan is bit-for-bit the same under
	// every choice; only planning speed changes.
	PathEngine spf.Engine
	// Trace, when non-nil, receives human-readable planner tracing
	// (per-round exclusion and sizing decisions).
	Trace io.Writer
	// Progress, when non-nil, is invoked at every stage boundary of the
	// plan. It runs on the planning goroutine and must return quickly.
	Progress func(PlanProgress)
}

// PlanProgress reports planning advancement to a PlanOpts.Progress
// callback: the stage just completed and the overall step count.
type PlanProgress struct {
	// Stage names the completed stage: "always-on", "on-demand",
	// "failover" or "done".
	Stage string
	// Round is the on-demand round just finished (0-based); -1 for the
	// other stages.
	Round int
	// Step and Total count completed stages out of the plan's total.
	Step, Total int
}

func (o *PlanOpts) defaults(t *topo.Topology) error {
	if o.Model == nil {
		return errors.New("core: PlanOpts.Model is required")
	}
	if o.N == 0 {
		o.N = 3
	}
	if o.N < 3 {
		return fmt.Errorf("core: N must be >= 3 (always-on + on-demand + failover), got %d", o.N)
	}
	if o.StressExclude == 0 {
		o.StressExclude = 0.2
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1 // 1 bit/s
	}
	if o.MaxUtil < 0 {
		return fmt.Errorf("core: MaxUtil must be positive, got %g", o.MaxUtil)
	}
	if o.MaxUtil == 0 {
		o.MaxUtil = 1.0
	}
	if o.Nodes == nil {
		o.Nodes = DefaultEndpoints(t)
	}
	if o.Mode < ModeStress || o.Mode > ModeHeuristic {
		return fmt.Errorf("core: unknown mode %v", o.Mode)
	}
	if (o.Mode == ModeSolver || o.Mode == ModeHeuristic) && o.PeakTM == nil {
		return fmt.Errorf("core: mode %v requires PeakTM", o.Mode)
	}
	return nil
}

// DefaultEndpoints returns the natural demand endpoints of a topology:
// its hosts when it has any (datacenters), else every non-host node.
func DefaultEndpoints(t *topo.Topology) []topo.NodeID {
	var hosts, routers []topo.NodeID
	for _, n := range t.Nodes() {
		if n.Kind == topo.KindHost {
			hosts = append(hosts, n.ID)
		} else {
			routers = append(routers, n.ID)
		}
	}
	if len(hosts) > 0 {
		return hosts
	}
	return routers
}

// Plan precomputes the REsPoNse tables for a topology: always-on paths
// via the min-power solve, N-2 on-demand tables via the selected mode,
// and one failover path per pair (§4.1–4.3).
func Plan(t *topo.Topology, opts PlanOpts) (*Tables, error) {
	return PlanContext(context.Background(), t, opts)
}

// wrapPlanErr classifies err under the package sentinels so public
// callers can dispatch with errors.Is: context cancellation maps to
// ErrCanceled, delay-bound violations keep ErrDelayBound, and anything
// else that stopped the solve is a routing infeasibility.
func wrapPlanErr(prefix string, err error) error {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, ErrCanceled):
		return fmt.Errorf("%s: %w", prefix, ErrCanceled)
	case errors.Is(err, ErrDelayBound), errors.Is(err, ErrInfeasible):
		return fmt.Errorf("%s: %w", prefix, err)
	default:
		return fmt.Errorf("%s: %w: %v", prefix, ErrInfeasible, err)
	}
}

// emit delivers one progress event if the caller asked for them.
func (o *PlanOpts) emit(stage string, round, step, total int) {
	if o.Progress != nil {
		o.Progress(PlanProgress{Stage: stage, Round: round, Step: step, Total: total})
	}
}

// PlanContext is Plan with cancellation: ctx is threaded through every
// optimal-subset search, including the parallel restart pool, and a
// canceled context aborts planning promptly with an error satisfying
// errors.Is(err, ErrCanceled).
func PlanContext(ctx context.Context, t *topo.Topology, opts PlanOpts) (*Tables, error) {
	if err := opts.defaults(t); err != nil {
		return nil, err
	}
	rounds := opts.N - 2
	total := rounds + 3 // always-on + rounds + failover + done
	lowTM := opts.LowTM
	if lowTM == nil {
		lowTM = traffic.Uniform(opts.Nodes, opts.Epsilon)
	}
	lowDemands := lowTM.Demands()

	// ---- Always-on paths (§4.1): minimum-power full-connectivity. ----
	// For REsPoNse-lat, constraint (4) — delay(O,D) ≤ (1+β)·delayOSPF —
	// is enforced inside the subset search: a switch-off whose rerouting
	// would stretch any pair past its bound is rejected, exactly as the
	// MILP constraint would forbid it.
	var check func(*mcf.Routing) error
	var bounds map[[2]topo.NodeID]float64
	if opts.Beta > 0 {
		var err error
		bounds, err = delayBounds(t, opts.Nodes, opts.Beta)
		if err != nil {
			return nil, err
		}
		check = func(r *mcf.Routing) error {
			for k, bound := range bounds {
				p, ok := r.Paths[k]
				if !ok {
					continue
				}
				if p.Latency(t) > bound+1e-12 {
					return fmt.Errorf("pair %v exceeds delay bound: %w", k, ErrDelayBound)
				}
			}
			return nil
		}
	}
	_, aonRouting, err := mcf.OptimalSubsetContext(ctx, t, lowDemands, opts.Model, mcf.OptimalOpts{
		RandomRestarts: opts.RandomRestarts,
		Seed:           opts.Seed,
		Route:          mcf.RouteOpts{MaxUtil: opts.MaxUtil, Engine: opts.PathEngine},
		Check:          check,
		Warm:           opts.Warm.stage(-1),
	})
	if err != nil {
		return nil, wrapPlanErr("core: always-on computation", err)
	}
	opts.emit("always-on", -1, 1, total)

	tables := &Tables{
		Topo:    t,
		Pairs:   make(map[[2]topo.NodeID]*PathSet),
		Variant: opts.Mode.String(),
	}
	for _, d := range lowDemands {
		p, ok := aonRouting.Path(d.O, d.D)
		if !ok {
			return nil, fmt.Errorf("core: no always-on path %d->%d: %w", d.O, d.D, ErrInfeasible)
		}
		tables.Pairs[[2]topo.NodeID{d.O, d.D}] = &PathSet{AlwaysOn: p}
	}

	// ---- REsPoNse-lat (§4.1 constraint 4). ----
	if opts.Beta > 0 {
		tables.Variant = "REsPoNse-lat"
		if err := enforceLatencyBound(t, tables, opts, bounds); err != nil {
			return nil, err
		}
	}
	tables.AlwaysOnSet = alwaysOnElements(t, tables)

	// ---- On-demand tables (§4.2). ----
	if err := planOnDemand(ctx, t, tables, opts, total); err != nil {
		return nil, err
	}

	// ---- Failover paths (§4.3). ----
	planFailover(t, tables, opts.PathEngine)
	opts.emit("failover", -1, rounds+2, total)

	if err := tables.Validate(); err != nil {
		return nil, err
	}
	opts.emit("done", -1, total, total)
	return tables, nil
}

// delayBounds precomputes (1+β)·delayOSPF for every ordered pair of
// the endpoint set.
func delayBounds(t *topo.Topology, nodes []topo.NodeID, beta float64) (map[[2]topo.NodeID]float64, error) {
	out := make(map[[2]topo.NodeID]float64, len(nodes)*(len(nodes)-1))
	opts := spf.Options{Weight: spf.InvCap()}
	for _, o := range nodes {
		tree := spf.ShortestTree(t, o, opts)
		for _, d := range nodes {
			if o == d {
				continue
			}
			p, ok := tree.PathTo(t, d)
			if !ok {
				return nil, fmt.Errorf("core: no OSPF path %d->%d: %w", o, d, ErrInfeasible)
			}
			out[[2]topo.NodeID{o, d}] = (1 + beta) * p.Latency(t)
		}
	}
	return out, nil
}

// enforceLatencyBound swaps always-on paths violating the (1+β)·OSPF
// delay bound for the cheapest bounded alternative. With the bound
// already enforced inside the subset search this is a safety net for
// paths produced by other plan stages. The bounds map is the
// delayBounds precomputation, shared with the subset-search check so
// the OSPF reference paths are solved once per plan.
func enforceLatencyBound(t *topo.Topology, tables *Tables, opts PlanOpts,
	bounds map[[2]topo.NodeID]float64) error {
	active := alwaysOnElements(t, tables)
	ospf := spf.Options{Weight: spf.InvCap()}
	for _, k := range tables.PairKeys() {
		ps := tables.Pairs[k]
		bound, ok := bounds[k]
		if !ok {
			// Pair outside the precomputed endpoint set (custom LowTM):
			// derive its bound directly.
			ref, found := spf.ShortestPath(t, k[0], k[1], ospf)
			if !found {
				return fmt.Errorf("core: no OSPF path %v: %w", k, ErrInfeasible)
			}
			bound = (1 + opts.Beta) * ref.Latency(t)
		}
		if ps.AlwaysOn.Latency(t) <= bound {
			continue
		}
		// Candidate replacement: among the latency-k-shortest paths
		// within the bound, take the one activating the least new power.
		cands := spf.KShortest(t, k[0], k[1], 8, spf.Options{Engine: opts.PathEngine})
		var best topo.Path
		bestCost := math.Inf(1)
		for _, c := range cands {
			if c.Latency(t) > bound {
				continue
			}
			cost := incrementalPathWatts(t, opts.Model, active, c)
			if cost < bestCost {
				best, bestCost = c, cost
			}
		}
		if best.Empty() {
			// The latency-shortest path always satisfies the bound
			// (min-latency ≤ OSPF latency ≤ bound); KShortest returns
			// it first, so this is unreachable unless disconnected.
			return fmt.Errorf("core: no bounded path %v: %w", k, ErrDelayBound)
		}
		ps.AlwaysOn = best
		active.ActivatePath(t, best)
	}
	return nil
}

// alwaysOnElements unions the elements of every always-on path.
func alwaysOnElements(t *topo.Topology, tables *Tables) *topo.ActiveSet {
	a := topo.AllOff(t)
	for _, ps := range tables.Pairs {
		a.ActivatePath(t, ps.AlwaysOn)
	}
	return a
}

// planOnDemand computes the N-2 on-demand tables per the mode. Work
// invariant across rounds — the capacity-gravity sizing shape — is
// computed once here rather than per round.
func planOnDemand(ctx context.Context, t *topo.Topology, tables *Tables, opts PlanOpts, total int) error {
	rounds := opts.N - 2
	// Stress accumulates over always-on plus previously computed
	// on-demand assignments so each round diversifies further.
	var accum []topo.Path
	for _, ps := range tables.Pairs {
		accum = append(accum, ps.AlwaysOn)
	}
	excluded := map[topo.LinkID]bool{}
	// excludedLinks mirrors excluded as a dense slice: Avoid predicates
	// consult it per arc in the innermost Dijkstra loop, where a map
	// lookup is measurable.
	excludedLinks := make([]bool, t.NumLinks())
	var shape *traffic.Matrix
	if opts.Mode == ModeStress {
		shape = traffic.Gravity(t, traffic.GravityOpts{Nodes: opts.Nodes, TotalRate: 1})
	}

	for round := 0; round < rounds; round++ {
		if err := ctx.Err(); err != nil {
			return wrapPlanErr(fmt.Sprintf("core: on-demand round %d", round), err)
		}
		sf := StressFactorPaths(t, accum)
		for id := range ExcludableStressed(t, sf, opts.StressExclude, excluded) {
			excluded[id] = true
			excludedLinks[id] = true
		}
		var paths map[[2]topo.NodeID]topo.Path
		var err error
		switch opts.Mode {
		case ModeStress:
			paths, err = onDemandStress(ctx, t, tables, opts, shape, excludedLinks, round)
		case ModeSolver:
			paths, err = onDemandSolver(ctx, t, tables, opts, excludedLinks, round)
		case ModeOSPF:
			paths, err = onDemandOSPF(t, tables, round)
		case ModeHeuristic:
			paths, err = onDemandHeuristic(t, tables, opts)
		default:
			err = fmt.Errorf("core: unknown mode %v", opts.Mode)
		}
		if err != nil {
			return wrapPlanErr(fmt.Sprintf("core: on-demand round %d", round), err)
		}
		for k, p := range paths {
			tables.Pairs[k].OnDemand = append(tables.Pairs[k].OnDemand, p)
			accum = append(accum, p)
		}
		opts.emit("on-demand", round, 2+round, total)
	}
	return nil
}

// onDemandStress computes the demand-oblivious on-demand table (§4.2):
// avoid the top-stressed links and solve the min-power problem for a
// *uniform* demand sized near the largest uniformly-routable rate, so
// that the resulting subgraph — unlike the ε-sized always-on tree —
// retains the capacity needed to absorb peak-hour overflow (the
// paper's sensitivity result: 20 % exclusion suffices for always-on +
// on-demand to accommodate peak demands).
func onDemandStress(ctx context.Context, t *topo.Topology, tables *Tables, opts PlanOpts,
	shape *traffic.Matrix, excluded []bool, round int) (map[[2]topo.NodeID]topo.Path, error) {

	avoid := func(a topo.Arc) bool { return excluded[a.Link] }
	// Shape the sizing demand with the capacity-based gravity estimate
	// — derived purely from the topology, so the mode stays
	// demand-oblivious (§5.1 uses the same estimate when matrices are
	// unavailable) — and size it near the largest routable load while
	// avoiding the excluded links, derated to 80 % for slack.
	deltaMax := mcf.MaxFeasibleScale(t, shape, mcf.RouteOpts{
		MaxUtil: opts.MaxUtil, Avoid: avoid, Engine: opts.PathEngine,
	}, 0.05)
	sizing := traffic.Uniform(opts.Nodes, opts.Epsilon)
	if deltaMax > 0 {
		sizing = shape.Scale(0.8 * deltaMax)
	}
	if opts.Trace != nil {
		nex := 0
		for _, x := range excluded {
			if x {
				nex++
			}
		}
		fmt.Fprintf(opts.Trace, "[core] onDemandStress: excluded=%d deltaMax=%.3g total=%.3g\n",
			nex, deltaMax, sizing.Total())
	}
	low := sizing.Demands()
	_, routing, err := mcf.OptimalSubsetContext(ctx, t, low, opts.Model, mcf.OptimalOpts{
		RandomRestarts: opts.RandomRestarts,
		Seed:           opts.Seed + 1,
		KeepOn:         tables.AlwaysOnSet,
		Route:          mcf.RouteOpts{MaxUtil: opts.MaxUtil, Avoid: avoid, Engine: opts.PathEngine},
		Warm:           opts.Warm.stage(round),
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		// ExcludableStressed keeps the graph connected, so this only
		// triggers on pathological inputs; retry without exclusion
		// rather than failing the whole plan.
		_, routing, err = mcf.OptimalSubsetContext(ctx, t, low, opts.Model, mcf.OptimalOpts{
			RandomRestarts: opts.RandomRestarts,
			Seed:           opts.Seed + 1,
			KeepOn:         tables.AlwaysOnSet,
			Route:          mcf.RouteOpts{MaxUtil: opts.MaxUtil, Engine: opts.PathEngine},
		})
		if err != nil {
			return nil, err
		}
	}
	return pathsByPair(tables, routing)
}

// onDemandSolver carries always-on X/Y fixed and solves with d_peak.
func onDemandSolver(ctx context.Context, t *topo.Topology, tables *Tables, opts PlanOpts,
	excluded []bool, round int) (map[[2]topo.NodeID]topo.Path, error) {

	demands := opts.PeakTM.Demands()
	var avoid func(a topo.Arc) bool
	if round > 0 { // diversify later tables away from stressed links
		avoid = func(a topo.Arc) bool { return excluded[a.Link] }
	}
	_, routing, err := mcf.OptimalSubsetContext(ctx, t, demands, opts.Model, mcf.OptimalOpts{
		RandomRestarts: opts.RandomRestarts,
		Seed:           opts.Seed + int64(round)*13,
		KeepOn:         tables.AlwaysOnSet,
		Route:          mcf.RouteOpts{MaxUtil: opts.MaxUtil, Avoid: avoid, Engine: opts.PathEngine},
		Warm:           opts.Warm.stage(round),
	})
	if err != nil {
		return nil, err
	}
	return pathsByPair(tables, routing)
}

// onDemandOSPF installs the default OSPF-InvCap routing table as the
// on-demand set; additional rounds take the next-shortest InvCap path.
func onDemandOSPF(t *topo.Topology, tables *Tables, round int) (map[[2]topo.NodeID]topo.Path, error) {
	out := make(map[[2]topo.NodeID]topo.Path)
	for _, k := range tables.PairKeys() {
		cands := spf.KShortest(t, k[0], k[1], round+1, spf.Options{Weight: spf.InvCap()})
		if len(cands) == 0 {
			return nil, fmt.Errorf("no OSPF path %v", k)
		}
		i := round
		if i >= len(cands) {
			i = len(cands) - 1
		}
		out[k] = cands[i]
	}
	return out, nil
}

// onDemandHeuristic runs the GreenTE-style packer with d_peak.
// Restricting each pair to its k shortest paths cannot always reach the
// absolute maximum load (that is GreenTE's documented trade-off), so
// the peak is derated step-wise until the packer finds a routing; the
// resulting table is designed for the largest k-routable share of peak.
func onDemandHeuristic(t *topo.Topology, tables *Tables, opts PlanOpts) (map[[2]topo.NodeID]topo.Path, error) {
	cands := mcf.CandidatePathsEngine(t, opts.PeakTM.Demands(), 5, opts.PathEngine)
	var lastErr error
	for _, derate := range []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2} {
		_, routing, err := mcf.KShortestSubset(t, opts.PeakTM.Scale(derate).Demands(),
			opts.Model, mcf.KShortOpts{
				K:       5,
				Paths:   cands,
				KeepOn:  tables.AlwaysOnSet,
				MaxUtil: opts.MaxUtil,
			})
		if err != nil {
			lastErr = err
			continue
		}
		return pathsByPair(tables, routing)
	}
	return nil, lastErr
}

func pathsByPair(tables *Tables, r *mcf.Routing) (map[[2]topo.NodeID]topo.Path, error) {
	out := make(map[[2]topo.NodeID]topo.Path, len(tables.Pairs))
	for _, k := range tables.PairKeys() {
		p, ok := r.Path(k[0], k[1])
		if !ok {
			return nil, fmt.Errorf("no on-demand path %v", k)
		}
		out[k] = p
	}
	return out, nil
}

// planFailover finds, per pair, a path maximally link-disjoint from the
// pair's always-on and on-demand paths (§4.3): strictly disjoint when
// the graph allows it, otherwise the minimum-overlap path via a heavy
// penalty on reused links.
func planFailover(t *topo.Topology, tables *Tables, eng spf.Engine) {
	ws := spf.NewWorkspace()
	used := make([]bool, t.NumLinks())
	avoidUsed := spf.Options{
		Avoid:  func(a topo.Arc) bool { return used[a.Link] },
		Engine: eng,
	}
	penalizeUsed := spf.Options{
		Weight: func(a topo.Arc) float64 {
			w := a.Latency
			if used[a.Link] {
				w *= 1000
			}
			return w
		},
		Engine:       eng,
		LatencyBound: true,
	}
	for _, k := range tables.PairKeys() {
		ps := tables.Pairs[k]
		clear(used)
		for _, p := range ps.Levels() {
			for _, aid := range p.Arcs {
				used[t.Arc(aid).Link] = true
			}
		}
		// Strict disjointness first.
		p, ok := ws.ShortestPath(t, k[0], k[1], avoidUsed)
		if !ok || p.Empty() {
			// Minimum overlap: penalize reused links 1000×.
			p, ok = ws.ShortestPath(t, k[0], k[1], penalizeUsed)
			if !ok {
				continue // disconnected pair: no failover possible
			}
		}
		ps.Failover = p
	}
}

// incrementalPathWatts prices the elements p would newly activate
// beyond active (mirrors mcf's packer costing; kept here to avoid
// exporting it from mcf for one caller).
func incrementalPathWatts(t *topo.Topology, m power.Model, active *topo.ActiveSet, p topo.Path) float64 {
	var w float64
	seen := map[topo.LinkID]bool{}
	touch := func(n topo.NodeID) {
		node := t.Node(n)
		if node.Kind != topo.KindHost && !active.Router[n] {
			w += m.ChassisWatts(node)
		}
	}
	if p.Empty() {
		return 0
	}
	touch(p.Origin(t))
	for _, aid := range p.Arcs {
		a := t.Arc(aid)
		touch(a.To)
		if !active.Link[a.Link] && !seen[a.Link] {
			seen[a.Link] = true
			l := t.Link(a.Link)
			w += m.PortWatts(t.Node(l.A), t.Arc(l.AB)) +
				m.PortWatts(t.Node(l.B), t.Arc(l.BA)) + 2*m.AmpWatts(l)
		}
	}
	return w
}

