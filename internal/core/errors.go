package core

import "errors"

// Sentinel errors classifying why a planning run failed. The public
// response facade re-exports them; callers test with errors.Is.
var (
	// ErrInfeasible reports that the demand set cannot be routed on the
	// topology under the configured utilization ceiling — some pair is
	// disconnected or capacity is insufficient at any subset.
	ErrInfeasible = errors.New("response: demands cannot be routed on the topology")
	// ErrCanceled reports that the caller's context was canceled (or its
	// deadline expired) before planning completed.
	ErrCanceled = errors.New("response: planning canceled")
	// ErrDelayBound reports that the REsPoNse-lat (1+β)·OSPF delay bound
	// cannot be satisfied for some pair.
	ErrDelayBound = errors.New("response: delay bound unsatisfiable")
)
