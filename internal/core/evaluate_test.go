package core

import (
	"math"
	"testing"

	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

// twoPathTopo builds A-B direct (10 Mbps) plus A-C-B detour (10 Mbps
// per hop) and hand-crafts tables with the direct path always-on and
// the detour as on-demand.
func twoPathTables(t *testing.T) (*topo.Topology, *Tables, [3]topo.NodeID) {
	t.Helper()
	tp := topo.New("twopath")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.001)
	tp.AddLink(a, c, 10*topo.Mbps, 0.001)
	tp.AddLink(c, b, 10*topo.Mbps, 0.001)
	ab, _ := tp.ArcBetween(a, b)
	ac, _ := tp.ArcBetween(a, c)
	cb, _ := tp.ArcBetween(c, b)
	direct := topo.Path{Arcs: []topo.ArcID{ab}}
	detour := topo.Path{Arcs: []topo.ArcID{ac, cb}}
	aon := topo.AllOff(tp)
	aon.ActivatePath(tp, direct)
	tb := &Tables{
		Topo: tp,
		Pairs: map[[2]topo.NodeID]*PathSet{
			{a, b}: {AlwaysOn: direct, OnDemand: []topo.Path{detour}, Failover: detour},
		},
		AlwaysOnSet: aon,
		Variant:     "hand",
	}
	return tp, tb, [3]topo.NodeID{a, b, c}
}

func TestEvaluateSplitsAcrossLevels(t *testing.T) {
	tp, tb, n := twoPathTables(t)
	m := power.Cisco12000{}
	// 15 Mbps demand: 9 on the direct path (0.9 ceiling), 6 overflow
	// to the detour.
	tm := traffic.NewMatrix()
	tm.Set(n[0], n[1], 15*topo.Mbps)
	res := tb.Evaluate(tm, m, 0.9)
	placed := res.Placed[[2]topo.NodeID{n[0], n[1]}]
	if math.Abs(placed[0]-9e6) > 1e3 {
		t.Errorf("always-on share = %v, want 9 Mbps", placed[0])
	}
	if math.Abs(placed[1]-6e6) > 1e3 {
		t.Errorf("on-demand share = %v, want 6 Mbps", placed[1])
	}
	if res.Overloaded != 0 {
		t.Errorf("overloaded = %d", res.Overloaded)
	}
	if res.LevelUse[0] != 1 || res.LevelUse[1] != 1 {
		t.Errorf("level use = %v", res.LevelUse)
	}
	// Both paths active → all three routers, all three links on.
	r, l := res.Active.CountOn()
	if r != 3 || l != 3 {
		t.Errorf("active = %d routers %d links", r, l)
	}
	if res.MaxUtil > 0.9+1e-9 {
		t.Errorf("max util %v exceeds ceiling", res.MaxUtil)
	}
	_ = tp
}

func TestEvaluateLowLoadKeepsDetourDark(t *testing.T) {
	_, tb, n := twoPathTables(t)
	m := power.Cisco12000{}
	tm := traffic.NewMatrix()
	tm.Set(n[0], n[1], 2*topo.Mbps)
	res := tb.Evaluate(tm, m, 0.9)
	if res.LevelUse[1] != 0 {
		t.Error("on-demand used at low load")
	}
	// Router C must be dark: only the always-on direct path is active.
	if res.Active.Router[n[2]] {
		t.Error("detour router powered at low load")
	}
}

func TestEvaluateOverloadFallback(t *testing.T) {
	_, tb, n := twoPathTables(t)
	m := power.Cisco12000{}
	// 30 Mbps cannot fit even on both paths (9+9 at 0.9): the excess
	// rides the last level over the ceiling and the demand is counted
	// overloaded.
	tm := traffic.NewMatrix()
	tm.Set(n[0], n[1], 30*topo.Mbps)
	res := tb.Evaluate(tm, m, 0.9)
	if res.Overloaded != 1 {
		t.Errorf("overloaded = %d, want 1", res.Overloaded)
	}
	if res.MaxUtil <= 1 {
		t.Errorf("max util %v should exceed 1 under overload", res.MaxUtil)
	}
	total := 0.0
	for _, amt := range res.Placed[[2]topo.NodeID{n[0], n[1]}] {
		total += amt
	}
	if math.Abs(total-30e6) > 1e3 {
		t.Errorf("placed %v, want the full 30 Mbps (run hot, not drop)", total)
	}
}

func TestAnalyzeTopologyChanges(t *testing.T) {
	g, tb := planGeant(t, PlanOpts{})
	impacts := tb.AnalyzeTopologyChanges()
	if len(impacts) != g.NumLinks() {
		t.Fatalf("impacts = %d, want %d", len(impacts), g.NumLinks())
	}
	replan := tb.ReplanWorthyFailures()
	// GÉANT has degree-1 spurs (IE); their links are genuine bridges
	// and must be flagged; the meshed core must not be.
	bridges := 0
	for _, l := range g.Links() {
		if g.Degree(l.A) == 1 || g.Degree(l.B) == 1 {
			bridges++
		}
	}
	if len(replan) < bridges {
		t.Errorf("replan-worthy = %d, want at least the %d spur bridges", len(replan), bridges)
	}
	if len(replan) > g.NumLinks()/2 {
		t.Errorf("replan-worthy = %d of %d — tables far too fragile", len(replan), g.NumLinks())
	}
}

func TestTruncateTables(t *testing.T) {
	_, tb := planGeant(t, PlanOpts{N: 5})
	cut := tb.Truncate(2) // Dual-Topology-Routing-style: 2 tables
	for _, ps := range cut.Pairs {
		if len(ps.OnDemand) != 0 {
			t.Fatalf("truncated on-demand = %d, want 0", len(ps.OnDemand))
		}
		if ps.AlwaysOn.Empty() {
			t.Fatal("always-on lost")
		}
	}
	if err := cut.Validate(); err != nil {
		t.Fatal(err)
	}
	cut3 := tb.Truncate(3)
	for _, ps := range cut3.Pairs {
		if len(ps.OnDemand) != 1 {
			t.Fatalf("n=3 on-demand = %d, want 1", len(ps.OnDemand))
		}
		break
	}
	// Truncation can only reduce (or keep) evaluated power headroom:
	// fewer levels, same always-on.
	m := power.Cisco12000{}
	tm := traffic.Gravity(tb.Topo, traffic.GravityOpts{TotalRate: 3 * topo.Gbps})
	full := tb.Evaluate(tm, m, 0.9)
	trunc := cut.Evaluate(tm, m, 0.9)
	if trunc.Overloaded < full.Overloaded {
		t.Errorf("truncated tables overload less (%d) than full (%d)?",
			trunc.Overloaded, full.Overloaded)
	}
}
