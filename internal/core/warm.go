package core

import (
	"response/internal/mcf"
	"response/internal/topo"
)

// WarmStart carries the per-stage seeds of an incremental plan: the
// element sets a previous plan's stages settled on, used to warm-start
// the corresponding subset searches of the next plan (§4.5 deployment:
// plans are recomputed on deviation, and consecutive plans differ
// little). Build one from a previous plan with Tables.WarmStart.
type WarmStart struct {
	// AlwaysOn seeds the always-on minimum-power search.
	AlwaysOn *topo.ActiveSet
	// OnDemand seeds the on-demand rounds, one entry per round; rounds
	// beyond the slice run cold.
	OnDemand []*topo.ActiveSet
	// Tolerance is forwarded to every stage (see mcf.WarmStart).
	Tolerance float64
}

// stage converts one stage's seed into the mcf option: round -1 is the
// always-on stage. A nil receiver or a stage with no seed returns nil
// (cold).
func (w *WarmStart) stage(round int) *mcf.WarmStart {
	if w == nil {
		return nil
	}
	var a *topo.ActiveSet
	switch {
	case round < 0:
		a = w.AlwaysOn
	case round < len(w.OnDemand):
		a = w.OnDemand[round]
	}
	if a == nil {
		return nil
	}
	return &mcf.WarmStart{Active: a, Tolerance: w.Tolerance}
}

// WarmStart derives the per-stage warm seeds from these tables: the
// always-on element set, and per on-demand round the union of that
// round's path elements with the always-on set (on-demand searches pin
// the always-on elements, so their seed must contain them).
func (tb *Tables) WarmStart() *WarmStart {
	w := &WarmStart{AlwaysOn: tb.AlwaysOnSet.Clone()}
	rounds := 0
	for _, ps := range tb.Pairs {
		if len(ps.OnDemand) > rounds {
			rounds = len(ps.OnDemand)
		}
	}
	for r := 0; r < rounds; r++ {
		a := topo.AllOff(tb.Topo)
		for _, ps := range tb.Pairs {
			if r < len(ps.OnDemand) {
				a.ActivatePath(tb.Topo, ps.OnDemand[r])
			}
		}
		w.OnDemand = append(w.OnDemand, a.Union(tb.AlwaysOnSet))
	}
	return w
}
