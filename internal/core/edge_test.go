package core

// Degenerate-input regressions from the generated-corpus bugfix sweep
// (ISSUE 5): the planner must handle empty, single-node and
// zero-demand inputs by returning empty-but-valid tables, and
// disconnected endpoint universes by failing with ErrInfeasible —
// never by panicking. The verify corpus exercises the generated side;
// these tests pin the hand-built minimal cases.

import (
	"errors"
	"testing"

	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

func TestPlanSingleNodeTopology(t *testing.T) {
	t1 := topo.New("one")
	t1.AddNode("A", topo.KindRouter)
	tb, err := Plan(t1, PlanOpts{Model: power.Cisco12000{}, RandomRestarts: -1})
	if err != nil {
		t.Fatalf("single-node plan: %v", err)
	}
	if len(tb.Pairs) != 0 {
		t.Fatalf("single-node plan has %d pairs, want 0", len(tb.Pairs))
	}
	if err := tb.Validate(); err != nil {
		t.Fatalf("empty tables fail validation: %v", err)
	}
	_ = tb.Fingerprint() // must not panic on empty tables
}

func TestPlanEmptyTopology(t *testing.T) {
	tb, err := Plan(topo.New("zero"), PlanOpts{Model: power.Cisco12000{}, RandomRestarts: -1})
	if err != nil {
		t.Fatalf("empty-topology plan: %v", err)
	}
	if len(tb.Pairs) != 0 {
		t.Fatalf("empty-topology plan has %d pairs", len(tb.Pairs))
	}
}

func TestPlanZeroDemandLowTM(t *testing.T) {
	t2 := topo.New("two")
	a := t2.AddNode("A", topo.KindRouter)
	b := t2.AddNode("B", topo.KindRouter)
	t2.AddLink(a, b, 1e9, 0.001)
	m := traffic.NewMatrix()
	m.Set(a, b, 0) // zero-demand pair: removed, not planned
	tb, err := Plan(t2, PlanOpts{Model: power.Cisco12000{}, LowTM: m, RandomRestarts: -1})
	if err != nil {
		t.Fatalf("zero-demand plan: %v", err)
	}
	if len(tb.Pairs) != 0 {
		t.Fatalf("zero-demand plan has %d pairs, want 0", len(tb.Pairs))
	}
}

func TestPlanDisconnectedEndpoints(t *testing.T) {
	t2 := topo.New("split")
	a := t2.AddNode("A", topo.KindRouter)
	b := t2.AddNode("B", topo.KindRouter)
	c := t2.AddNode("C", topo.KindRouter)
	d := t2.AddNode("D", topo.KindRouter)
	t2.AddLink(a, b, 1e9, 0.001)
	t2.AddLink(c, d, 1e9, 0.001)
	_, err := Plan(t2, PlanOpts{Model: power.Cisco12000{}, RandomRestarts: -1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("disconnected plan: err = %v, want ErrInfeasible", err)
	}
}
