package core

import (
	"testing"

	"response/internal/mcf"
	"response/internal/power"
	"response/internal/spf"
	"response/internal/topo"
	"response/internal/traffic"
)

func planGeant(t *testing.T, opts PlanOpts) (*topo.Topology, *Tables) {
	t.Helper()
	g := topo.NewGeant()
	if opts.Model == nil {
		opts.Model = power.Cisco12000{}
	}
	tb, err := Plan(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, tb
}

func TestStressFactorCountsFlowsPerCapacity(t *testing.T) {
	tp := topo.New("y")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	tp.AddLink(a, b, 1*topo.Gbps, 0.001)
	tp.AddLink(b, c, 2*topo.Gbps, 0.001)
	ab, _ := tp.ArcBetween(a, b)
	bc, _ := tp.ArcBetween(b, c)
	r := mcf.NewRouting(tp)
	r.Assign(a, b, topo.Path{Arcs: []topo.ArcID{ab}}, 0)
	r.Assign(a, c, topo.Path{Arcs: []topo.ArcID{ab, bc}}, 0)
	sf := StressFactor(tp, r)
	// Link 0 (1G): 2 flows / 1 Gb = 2. Link 1 (2G): 1 flow / 2 Gb = 0.5.
	if sf[0] != 2 || sf[1] != 0.5 {
		t.Errorf("sf = %v", sf)
	}
	top := TopStressed(sf, 0.5)
	if len(top) != 1 || !top[0] {
		t.Errorf("top = %v, want {0}", top)
	}
}

func TestTopStressedNeverPicksIdleLinks(t *testing.T) {
	sf := []float64{0, 0, 3, 0}
	top := TopStressed(sf, 1.0)
	if len(top) != 1 || !top[2] {
		t.Errorf("top = %v", top)
	}
	if len(TopStressed(sf, 0)) != 0 {
		t.Error("zero fraction should exclude nothing")
	}
}

func TestPlanRequiresModel(t *testing.T) {
	g := topo.NewGeant()
	if _, err := Plan(g, PlanOpts{}); err == nil {
		t.Error("missing model should error")
	}
	if _, err := Plan(g, PlanOpts{Model: power.Cisco12000{}, N: 2}); err == nil {
		t.Error("N < 3 should error")
	}
	if _, err := Plan(g, PlanOpts{Model: power.Cisco12000{}, Mode: ModeSolver}); err == nil {
		t.Error("solver mode without PeakTM should error")
	}
}

func TestPlanProducesThreeDistinctLevels(t *testing.T) {
	_, tb := planGeant(t, PlanOpts{})
	distinct := 0
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		if len(ps.OnDemand) != 1 {
			t.Fatalf("pair %v: on-demand tables = %d, want 1", k, len(ps.OnDemand))
		}
		if ps.Failover.Empty() {
			t.Fatalf("pair %v: no failover", k)
		}
		if !ps.AlwaysOn.Equal(ps.OnDemand[0]) || !ps.AlwaysOn.Equal(ps.Failover) {
			distinct++
		}
	}
	if distinct < len(tb.Pairs)/4 {
		t.Errorf("only %d of %d pairs have path diversity", distinct, len(tb.Pairs))
	}
}

func TestPlanNFivePaths(t *testing.T) {
	_, tb := planGeant(t, PlanOpts{N: 5})
	for _, ps := range tb.Pairs {
		if len(ps.OnDemand) != 3 {
			t.Fatalf("on-demand tables = %d, want 3", len(ps.OnDemand))
		}
		if ps.NumLevels() != 5 {
			t.Fatalf("levels = %d, want 5", ps.NumLevels())
		}
		break
	}
}

func TestREsPoNseLatBound(t *testing.T) {
	const beta = 0.25
	g, tb := planGeant(t, PlanOpts{Beta: beta})
	if tb.Variant != "REsPoNse-lat" {
		t.Errorf("variant = %q", tb.Variant)
	}
	ospf := spf.Options{Weight: spf.InvCap()}
	for _, k := range tb.PairKeys() {
		ref, ok := spf.ShortestPath(g, k[0], k[1], ospf)
		if !ok {
			t.Fatalf("no OSPF path %v", k)
		}
		bound := (1 + beta) * ref.Latency(g)
		if got := tb.Pairs[k].AlwaysOn.Latency(g); got > bound+1e-12 {
			t.Errorf("pair %v: delay %.4f > bound %.4f", k, got*1000, bound*1000)
		}
	}
}

func TestFailoverDisjointWherePossible(t *testing.T) {
	g, tb := planGeant(t, PlanOpts{})
	disjoint := 0
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		if ps.Failover.SharedLinks(g, ps.AlwaysOn) == 0 {
			disjoint++
		}
	}
	// GÉANT is largely 2-edge-connected; most pairs should have a
	// fully link-disjoint failover.
	if frac := float64(disjoint) / float64(len(tb.Pairs)); frac < 0.5 {
		t.Errorf("only %.0f%% of failover paths disjoint from always-on", frac*100)
	}
}

func TestSingleLinkFailureSurvivable(t *testing.T) {
	// §4.3: all paths combined should not be vulnerable to any single
	// link failure for the vast majority of pairs.
	g, tb := planGeant(t, PlanOpts{})
	vulnerable := 0
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		levels := ps.Levels()
	links:
		for _, l := range g.Links() {
			allHit := true
			for _, p := range levels {
				if p.Empty() {
					continue
				}
				if !p.UsesLink(g, l.ID) {
					allHit = false
					break
				}
			}
			if allHit {
				vulnerable++
				break links
			}
		}
	}
	if frac := float64(vulnerable) / float64(len(tb.Pairs)); frac > 0.15 {
		t.Errorf("%.0f%% of pairs lose all paths to one link failure", frac*100)
	}
}

func TestEvaluatePowerMonotoneInLoad(t *testing.T) {
	g, tb := planGeant(t, PlanOpts{})
	m := power.Cisco12000{}
	base := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 1})
	scale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.02)
	low := tb.Evaluate(base.Scale(scale*0.1), m, 0.9)
	high := tb.Evaluate(base.Scale(scale*0.9), m, 0.9)
	if low.Watts > high.Watts+1e-6 {
		t.Errorf("power not monotone: low %.0fW > high %.0fW", low.Watts, high.Watts)
	}
	if low.PctOfFull >= 100 || high.PctOfFull > 100+1e-9 {
		t.Errorf("percentages out of range: %v %v", low.PctOfFull, high.PctOfFull)
	}
	// At low load everything should ride the always-on paths.
	if low.LevelUse[0] == 0 {
		t.Error("no demand on always-on paths at low load")
	}
	// At high load some on-demand activation is expected.
	sumHigher := 0
	for _, c := range high.LevelUse[1:] {
		sumHigher += c
	}
	if sumHigher == 0 {
		t.Log("note: high load fit entirely on always-on paths (unusual but legal)")
	}
}

func TestEvaluateActiveCoversRouting(t *testing.T) {
	g, tb := planGeant(t, PlanOpts{})
	m := power.Cisco12000{}
	tm := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 5 * topo.Gbps})
	res := tb.Evaluate(tm, m, 0.9)
	for _, p := range res.Routing.Paths {
		if !p.ActiveUnder(g, res.Active) {
			t.Fatal("routing path crosses inactive elements")
		}
	}
}

func TestOSPFPathsComplete(t *testing.T) {
	g := topo.NewGeant()
	nodes := DefaultEndpoints(g)
	paths := OSPFPaths(g, nodes)
	want := len(nodes) * (len(nodes) - 1)
	if len(paths) != want {
		t.Fatalf("paths = %d, want %d", len(paths), want)
	}
	for k, p := range paths {
		if p.Origin(g) != k[0] || p.Destination(g) != k[1] {
			t.Fatal("endpoint mismatch")
		}
	}
}

func TestAlwaysOnCapacityShare(t *testing.T) {
	g, tb := planGeant(t, PlanOpts{})
	base := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 1})
	share := tb.AlwaysOnCapacityShare(base, 1.0)
	if share <= 0.05 || share > 1.001 {
		t.Errorf("always-on capacity share = %v, want in (0,1]", share)
	}
	t.Logf("always-on carries %.0f%% of OSPF-routable volume (paper: ≈50%%)", share*100)
}

func TestTunnelAccounting(t *testing.T) {
	_, tb := planGeant(t, PlanOpts{})
	n := tb.TunnelCount()
	pairs := len(tb.Pairs)
	if n < pairs || n > pairs*3 {
		t.Errorf("tunnels = %d for %d pairs", n, pairs)
	}
	// §4.5: per-node tunnel count must be deployable (≈600 in 2005 HW).
	if per := tb.MaxTunnelsPerNode(); per > 600 {
		t.Errorf("max tunnels per node %d exceeds hardware budget", per)
	}
}

func TestModeOSPFUsesInvCapPaths(t *testing.T) {
	g, tb := planGeant(t, PlanOpts{Mode: ModeOSPF})
	ospf := OSPFPaths(g, DefaultEndpoints(g))
	match := 0
	for _, k := range tb.PairKeys() {
		if tb.Pairs[k].OnDemand[0].Equal(ospf[k]) {
			match++
		}
	}
	if frac := float64(match) / float64(len(tb.Pairs)); frac < 0.95 {
		t.Errorf("only %.0f%% of on-demand paths equal OSPF", frac*100)
	}
}

func TestModeHeuristicAndSolver(t *testing.T) {
	g := topo.NewGeant()
	m := power.Cisco12000{}
	base := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 1})
	scale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.02)
	peak := base.Scale(scale * 0.6)
	for _, mode := range []Mode{ModeHeuristic, ModeSolver} {
		tb, err := Plan(g, PlanOpts{Model: m, Mode: mode, PeakTM: peak})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := tb.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		// The REsPoNseTE split policy (aggregate first, overflow up)
		// produces a different load pattern than the design-time
		// assignment, so some residual overload is legal — but the
		// tables must absorb the bulk of their design load, and the
		// worst link must not run far past the ceiling.
		res := tb.Evaluate(peak, m, 1.0)
		if res.Overloaded > len(tb.Pairs)/5 {
			t.Errorf("%v: %d/%d overloaded pairs at 0.6×max design load",
				mode, res.Overloaded, len(tb.Pairs))
		}
		low := tb.Evaluate(peak.Scale(0.1), m, 1.0)
		if low.Watts > res.Watts+1e-6 {
			t.Errorf("%v: power not monotone (low %.0f > peak %.0f)", mode, low.Watts, res.Watts)
		}
	}
}

func TestPathLevelClamping(t *testing.T) {
	_, tb := planGeant(t, PlanOpts{})
	k := tb.PairKeys()[0]
	if tb.Path(k[0], k[1], -1).Empty() {
		t.Error("negative level should clamp to always-on")
	}
	if tb.Path(k[0], k[1], 99).Empty() {
		t.Error("huge level should clamp to failover")
	}
	if !tb.Path(999, 998, 0).Empty() {
		t.Error("unknown pair should return empty path")
	}
}

func TestDefaultEndpointsPrefersHosts(t *testing.T) {
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	eps := DefaultEndpoints(ft.Topology)
	if len(eps) != 16 {
		t.Errorf("endpoints = %d, want 16 hosts", len(eps))
	}
	g := topo.NewGeant()
	if len(DefaultEndpoints(g)) != 23 {
		t.Error("router topology should use all routers")
	}
}
