package core

import (
	"math"
	"sort"

	"response/internal/mcf"
	"response/internal/power"
	"response/internal/spf"
	"response/internal/topo"
	"response/internal/traffic"
)

// EvalResult is the outcome of applying the REsPoNseTE placement policy
// to one traffic matrix over installed tables: which elements end up
// active (and hence the network power), what the routing looks like,
// and how far each table level was exercised.
type EvalResult struct {
	Active *topo.ActiveSet
	// Placed maps each (O,D) pair to the rate placed per level.
	Placed map[[2]topo.NodeID][]float64
	// Load is the resulting per-arc load in bits/s.
	Load  []float64
	Watts float64
	// PctOfFull is Watts relative to the all-on network.
	PctOfFull float64
	// MaxUtil is the worst link utilization of the placement.
	MaxUtil float64
	// Overloaded counts demands whose traffic exceeded the combined
	// headroom of all installed paths; the excess runs over the
	// utilization ceiling on the last level (the network runs hot
	// rather than dropping traffic, §4.5).
	Overloaded int
	// LevelUse counts demands with traffic on each level (0 =
	// always-on); a split demand contributes to several levels.
	LevelUse []int
	// Routing exposes each pair's dominant path (the level carrying
	// the most traffic) for compatibility with path-based consumers.
	Routing *mcf.Routing
}

// Evaluate places a traffic matrix onto the installed tables the way
// REsPoNseTE does at steady state (§4.4): each demand aggregates onto
// its always-on path while the utilization ceiling holds and overflows
// the excess to successive on-demand levels — the same splitting the
// online controller performs with path shares. Elements that end up
// carrying nothing stay asleep. The resulting power is what Figures
// 4–6 plot.
func (tb *Tables) Evaluate(m *traffic.Matrix, model power.Model, maxUtil float64) EvalResult {
	if maxUtil <= 0 {
		maxUtil = 1.0
	}
	t := tb.Topo
	demands := m.Demands()
	sort.SliceStable(demands, func(i, j int) bool { return demands[i].Rate > demands[j].Rate })

	maxLevels := 0
	for _, ps := range tb.Pairs {
		if n := ps.NumLevels(); n > maxLevels {
			maxLevels = n
		}
	}
	res := EvalResult{
		Placed:   make(map[[2]topo.NodeID][]float64, len(demands)),
		Load:     make([]float64, t.NumArcs()),
		LevelUse: make([]int, maxLevels),
	}

	for _, d := range demands {
		if d.O == d.D || d.Rate == 0 {
			continue
		}
		ps, ok := tb.PathSetFor(d.O, d.D)
		if !ok {
			res.Overloaded++
			continue
		}
		levels := ps.Levels()
		placed := make([]float64, len(levels))
		remaining := d.Rate
		for li, p := range levels {
			if remaining <= 1e-9 {
				break
			}
			if p.Empty() {
				continue
			}
			room := headroom(t, res.Load, p, maxUtil)
			amt := math.Min(remaining, room)
			if amt <= 1e-9 {
				continue
			}
			addLoad(res.Load, p, amt)
			placed[li] = amt
			remaining -= amt
		}
		if remaining > 1e-9 {
			// No headroom anywhere: the excess rides the last
			// non-empty level over the ceiling.
			res.Overloaded++
			for li := len(levels) - 1; li >= 0; li-- {
				if !levels[li].Empty() {
					addLoad(res.Load, levels[li], remaining)
					placed[li] += remaining
					break
				}
			}
		}
		for li, amt := range placed {
			if amt > 1e-9 {
				res.LevelUse[li]++
			}
		}
		res.Placed[[2]topo.NodeID{d.O, d.D}] = placed
	}

	// Power: always-on elements plus whatever the placement touches.
	active := tb.AlwaysOnSet.Clone()
	routing := mcf.NewRouting(t)
	for k, placed := range res.Placed {
		ps := tb.Pairs[k]
		levels := ps.Levels()
		bestLi, bestAmt := -1, 0.0
		for li, amt := range placed {
			if amt <= 1e-9 {
				continue
			}
			active.ActivatePath(t, levels[li])
			if amt > bestAmt {
				bestLi, bestAmt = li, amt
			}
		}
		if bestLi >= 0 {
			routing.Assign(k[0], k[1], levels[bestLi], 0)
		}
	}
	res.Active = active
	res.Routing = routing
	res.Watts = power.NetworkWatts(t, model, active)
	if full := power.FullWatts(t, model); full > 0 {
		res.PctOfFull = 100 * res.Watts / full
	}
	for i, l := range res.Load {
		if l == 0 {
			continue
		}
		if u := l / t.Arc(topo.ArcID(i)).Capacity; u > res.MaxUtil {
			res.MaxUtil = u
		}
	}
	return res
}

// headroom returns the largest extra rate p can absorb with every arc
// staying at or below maxUtil.
func headroom(t *topo.Topology, load []float64, p topo.Path, maxUtil float64) float64 {
	room := math.Inf(1)
	for _, aid := range p.Arcs {
		if r := t.Arc(aid).Capacity*maxUtil - load[aid]; r < room {
			room = r
		}
	}
	if room < 0 {
		return 0
	}
	return room
}

func addLoad(load []float64, p topo.Path, rate float64) {
	for _, aid := range p.Arcs {
		load[aid] += rate
	}
}

// AlwaysOnCapacityShare estimates how much of the volume routable by
// OSPF-InvCap the always-on paths alone can carry (§4.1 reports ≈50 %):
// the ratio of max feasible gravity-scale on always-on paths vs. on
// OSPF paths over the full network.
func (tb *Tables) AlwaysOnCapacityShare(base *traffic.Matrix, maxUtil float64) float64 {
	if maxUtil <= 0 {
		maxUtil = 1.0
	}
	t := tb.Topo
	scaleOn := maxScaleOnPaths(t, base, maxUtil, func(o, d topo.NodeID) topo.Path {
		if ps, ok := tb.PathSetFor(o, d); ok {
			return ps.AlwaysOn
		}
		return topo.Path{}
	})
	ospf := OSPFPaths(t, endpointsOf(base))
	scaleOSPF := maxScaleOnPaths(t, base, maxUtil, func(o, d topo.NodeID) topo.Path {
		return ospf[[2]topo.NodeID{o, d}]
	})
	if scaleOSPF == 0 {
		return 0
	}
	return scaleOn / scaleOSPF
}

func endpointsOf(m *traffic.Matrix) []topo.NodeID {
	seen := map[topo.NodeID]bool{}
	var out []topo.NodeID
	for _, d := range m.Demands() {
		for _, n := range []topo.NodeID{d.O, d.D} {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// maxScaleOnPaths bisects the largest matrix multiplier that fits on
// fixed per-pair paths. The paths — and hence the per-arc load shape —
// do not depend on the multiplier, so they are resolved once and every
// probe reduces to a per-arc comparison instead of a full re-route.
func maxScaleOnPaths(t *topo.Topology, base *traffic.Matrix, maxUtil float64,
	choose func(o, d topo.NodeID) topo.Path) float64 {

	baseLoad := make([]float64, t.NumArcs())
	for _, d := range base.Demands() {
		if d.O == d.D || d.Rate == 0 {
			continue
		}
		p := choose(d.O, d.D)
		if p.Empty() {
			return 0 // an unroutable pair fails at any scale
		}
		for _, aid := range p.Arcs {
			baseLoad[aid] += d.Rate
		}
	}
	fits := func(s float64) bool {
		for _, a := range t.Arcs() {
			if baseLoad[a.ID]*s > a.Capacity*maxUtil+1e-6 {
				return false
			}
		}
		return true
	}
	if !fits(1e-12) {
		return 0
	}
	lo, hi := 0.0, 1.0
	for fits(hi) {
		lo = hi
		hi *= 2
		if hi > 1e18 {
			return lo
		}
	}
	for i := 0; i < 40 && hi-lo > 1e-3*lo; i++ {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// OSPFPaths computes the OSPF-InvCap shortest path for every ordered
// pair of the given nodes: the paper's baseline routing.
func OSPFPaths(t *topo.Topology, nodes []topo.NodeID) map[[2]topo.NodeID]topo.Path {
	out := make(map[[2]topo.NodeID]topo.Path)
	opts := spf.Options{Weight: spf.InvCap()}
	for _, o := range nodes {
		tree := spf.ShortestTree(t, o, opts)
		for _, d := range nodes {
			if o == d {
				continue
			}
			if p, ok := tree.PathTo(t, d); ok {
				out[[2]topo.NodeID{o, d}] = p
			}
		}
	}
	return out
}
