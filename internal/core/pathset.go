// Package core implements the REsPoNse framework — the paper's primary
// contribution (§4): off-line identification of energy-critical paths
// per origin-destination pair, materialized as three kinds of routing
// tables (always-on, on-demand, failover) that are installed once and
// never recomputed while the online component (internal/te) shifts
// traffic among them.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"response/internal/topo"
)

// PathLevel indexes the installed tables for one pair: level 0 is the
// always-on path, levels 1..N-2 are on-demand paths, and the last level
// is the failover path.
type PathLevel int

// PathSet holds the precomputed energy-critical paths of one (O,D)
// pair. A small N (the paper finds 3 for GÉANT, 5 for a fat-tree)
// suffices to carry almost all traffic.
type PathSet struct {
	AlwaysOn topo.Path
	OnDemand []topo.Path
	Failover topo.Path
}

// Levels returns the installed paths ordered by activation priority:
// always-on first, then each on-demand table, then failover.
func (ps *PathSet) Levels() []topo.Path {
	out := make([]topo.Path, 0, 2+len(ps.OnDemand))
	out = append(out, ps.AlwaysOn)
	out = append(out, ps.OnDemand...)
	out = append(out, ps.Failover)
	return out
}

// NumLevels returns the number of installed tables for this pair.
func (ps *PathSet) NumLevels() int { return 2 + len(ps.OnDemand) }

// Tables is the full set of installed routing state for a topology:
// one PathSet per pair plus the always-on element set that must stay
// powered at all times.
type Tables struct {
	Topo  *topo.Topology
	Pairs map[[2]topo.NodeID]*PathSet
	// AlwaysOnSet contains every element on some always-on path; these
	// elements are never put to sleep.
	AlwaysOnSet *topo.ActiveSet
	// Variant labels how the tables were computed (for experiment output).
	Variant string
}

// PathSetFor returns the installed paths for (o,d).
func (tb *Tables) PathSetFor(o, d topo.NodeID) (*PathSet, bool) {
	ps, ok := tb.Pairs[[2]topo.NodeID{o, d}]
	return ps, ok
}

// Path returns the level-th installed path for (o,d). Out-of-range
// levels clamp to failover.
func (tb *Tables) Path(o, d topo.NodeID, level PathLevel) topo.Path {
	ps, ok := tb.PathSetFor(o, d)
	if !ok {
		return topo.Path{}
	}
	ls := ps.Levels()
	i := int(level)
	if i < 0 {
		i = 0
	}
	if i >= len(ls) {
		i = len(ls) - 1
	}
	return ls[i]
}

// PairKeys returns all (O,D) keys in deterministic order.
func (tb *Tables) PairKeys() [][2]topo.NodeID {
	keys := make([][2]topo.NodeID, 0, len(tb.Pairs))
	for k := range tb.Pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// Validate checks that every installed path is structurally sound and
// connects its pair, and that every always-on path runs over the
// always-on element set.
func (tb *Tables) Validate() error {
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		for li, p := range ps.Levels() {
			if p.Empty() {
				continue
			}
			if err := p.Check(tb.Topo); err != nil {
				return fmt.Errorf("core: pair %v level %d: %w", k, li, err)
			}
			if p.Origin(tb.Topo) != k[0] || p.Destination(tb.Topo) != k[1] {
				return fmt.Errorf("core: pair %v level %d endpoints mismatch", k, li)
			}
		}
		if !ps.AlwaysOn.Empty() && !ps.AlwaysOn.ActiveUnder(tb.Topo, tb.AlwaysOnSet) {
			return fmt.Errorf("core: pair %v always-on path leaves always-on set", k)
		}
	}
	return nil
}

// Fingerprint hashes the full content of the installed tables — every
// path of every pair, in deterministic order, plus the always-on
// element set — into one 64-bit value. Tests pin it to assert that
// planner outputs are unchanged across refactors of the planning
// engine, and plan artifacts embed it as an end-to-end integrity check.
func (tb *Tables) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		fmt.Fprintf(h, "%d>%d|", k[0], k[1])
		for _, p := range ps.Levels() {
			fmt.Fprintf(h, "%s;", p.Key())
		}
	}
	fmt.Fprintf(h, "aon:%d", tb.AlwaysOnSet.Fingerprint())
	return h.Sum64()
}

// ComputeAlwaysOnSet rebuilds AlwaysOnSet as the union of the elements
// of every always-on path — exactly how Plan derives it. Deserialized
// tables use it to reconstruct the set instead of shipping it in the
// artifact.
func (tb *Tables) ComputeAlwaysOnSet() {
	tb.AlwaysOnSet = alwaysOnElements(tb.Topo, tb)
}

// TunnelCount returns the total number of installed paths, the quantity
// the deployment discussion (§4.5) compares against router tunnel
// limits (~600 in 2005-era hardware).
func (tb *Tables) TunnelCount() int {
	n := 0
	for _, ps := range tb.Pairs {
		for _, p := range ps.Levels() {
			if !p.Empty() {
				n++
			}
		}
	}
	return n
}

// MaxTunnelsPerNode returns the largest number of installed paths
// originating at any single node.
func (tb *Tables) MaxTunnelsPerNode() int {
	perNode := map[topo.NodeID]int{}
	for k, ps := range tb.Pairs {
		for _, p := range ps.Levels() {
			if !p.Empty() {
				perNode[k[0]]++
			}
		}
	}
	mx := 0
	for _, c := range perNode {
		if c > mx {
			mx = c
		}
	}
	return mx
}
