package core

import (
	"testing"

	"response/internal/power"
	"response/internal/topo"
	"response/internal/traffic"
)

// TestSmokeGeantPlan exercises the full planning pipeline on GÉANT.
func TestSmokeGeantPlan(t *testing.T) {
	g := topo.NewGeant()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	model := power.Cisco12000{}
	tb, err := Plan(g, PlanOpts{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := DefaultEndpoints(g)
	wantPairs := len(nodes) * (len(nodes) - 1)
	if len(tb.Pairs) != wantPairs {
		t.Fatalf("pairs = %d, want %d", len(tb.Pairs), wantPairs)
	}
	r, l := tb.AlwaysOnSet.CountOn()
	t.Logf("always-on: %d routers, %d links (of %d/%d)", r, l, g.NumNodes(), g.NumLinks())
	if r != g.NumNodes() {
		t.Errorf("always-on should keep all routers connected: %d < %d", r, g.NumNodes())
	}
	if l >= g.NumLinks() {
		t.Errorf("always-on uses all links (%d); expected a sparse subgraph", l)
	}
	// Power under low demand should be well below full power.
	low := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 1 * topo.Gbps})
	res := tb.Evaluate(low, model, 0.9)
	t.Logf("low-load power: %.1f%% of full, maxUtil %.3f, overloaded %d, levels %v",
		res.PctOfFull, res.MaxUtil, res.Overloaded, res.LevelUse)
	if res.PctOfFull >= 95 {
		t.Errorf("low-load power %.1f%% — no energy savings", res.PctOfFull)
	}
	if res.PctOfFull <= 20 {
		t.Errorf("low-load power %.1f%% — implausibly low", res.PctOfFull)
	}
}
