package spf

import (
	"math"
	"sync"

	"response/internal/topo"
)

// Workspace holds the scratch state of a Dijkstra run — distance,
// predecessor, finalized flags, and an index-based binary min-heap of
// (node, dist) entries — so repeated searches allocate nothing. Arrays
// are epoch-stamped: a slot is valid only when its stamp matches the
// current epoch, so no O(n) clearing happens between runs.
//
// A Workspace is not safe for concurrent use; create one per goroutine
// (the planner's parallel restarts each own one). The package-level
// search functions draw from an internal pool, so casual callers keep
// the old allocation-free-enough API without managing workspaces.
type Workspace struct {
	epoch   uint64
	stamp   []uint64
	dist    []float64
	prev    []topo.ArcID
	done    []bool
	heap    []heapEntry
	scratch []topo.ArcID // path reversal buffer
	src     topo.NodeID

	// Goal-directed state (see goal.go). The landmark table is cached
	// per topology pointer; the h-cache memoizes HBound per node per
	// query epoch; the b* arrays are the backward half of bidirectional
	// searches. All lazily allocated: a workspace used only through the
	// reference engine never touches them.
	lmTopo *topo.Topology
	lm     *Landmarks
	hval   []float64
	hstamp []uint64
	htgt   topo.NodeID
	hlm    *Landmarks
	hepoch uint64

	bstamp   []uint64
	bdist    []float64
	bprev    []topo.ArcID // arc leaving the node toward the target
	bdone    []bool
	bheap    []heapEntry
	btouched []topo.NodeID // nodes labeled by the backward search

	// Adaptive bailout counters: when the certified goal-directed
	// solver keeps falling back (tie-heavy topology), stop paying for
	// the failed attempts. Reset when the workspace changes topology.
	goalTopo  *topo.Topology
	goalTries int
	goalFails int
}

// heapEntry is one pending heap slot. Entries are pushed eagerly on
// every relaxation (lazy deletion: stale entries are skipped when their
// node is already finalized), which preserves the exact pop order of
// the previous container/heap implementation while eliminating its
// per-push *pqItem allocation.
type heapEntry struct {
	node topo.NodeID
	dist float64
}

// NewWorkspace returns an empty workspace; it grows to fit the first
// topology it is used on.
func NewWorkspace() *Workspace { return &Workspace{} }

var wsPool = sync.Pool{New: func() interface{} { return NewWorkspace() }}

// begin starts a new run over n nodes: bump the epoch, size the arrays,
// clear the heap. No per-node clearing is done.
func (ws *Workspace) begin(n int) {
	if len(ws.stamp) < n {
		ws.stamp = make([]uint64, n)
		ws.dist = make([]float64, n)
		ws.prev = make([]topo.ArcID, n)
		ws.done = make([]bool, n)
	}
	ws.epoch++
	ws.heap = ws.heap[:0]
}

// distAt returns the tentative distance of u, +Inf when untouched.
func (ws *Workspace) distAt(u topo.NodeID) float64 {
	if ws.stamp[u] == ws.epoch {
		return ws.dist[u]
	}
	return math.Inf(1)
}

// touch records a tentative (dist, prev) label for u in this epoch.
func (ws *Workspace) touch(u topo.NodeID, d float64, via topo.ArcID) {
	ws.stamp[u] = ws.epoch
	ws.dist[u] = d
	ws.prev[u] = via
	ws.done[u] = false
}

// push/pop/up/down implement the container/heap binary-heap protocol
// (identical sift rules, Less = strict dist comparison) over inline
// entries, so equal-distance ties resolve exactly as before.
func (ws *Workspace) push(n topo.NodeID, d float64) {
	ws.heap = append(ws.heap, heapEntry{node: n, dist: d})
	// Sift up.
	h := ws.heap
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (ws *Workspace) pop() heapEntry {
	h := ws.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift down within h[:n].
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	ws.heap = h[:n]
	return e
}

// run executes Dijkstra from src under opts. When target is a valid
// node ID, the search stops as soon as target is finalized (its label
// is exact at that point); pass -1 to label the whole graph.
//
// The relaxation loop indexes the arc and node tables directly and
// inlines Options.usable (same checks, same order) — this is the
// innermost loop of the whole planner, where per-arc struct copies and
// method dispatch are measurable.
func (ws *Workspace) run(t *topo.Topology, src topo.NodeID, opts Options, target topo.NodeID) {
	ws.begin(t.NumNodes())
	ws.src = src
	w := opts.weight()
	nodes := t.Nodes()
	arcs := t.Arcs()
	active := opts.Active
	avoid := opts.Avoid
	if active != nil && nodes[src].Kind != topo.KindHost && !active.Router[src] {
		return
	}
	ws.touch(src, 0, -1)
	ws.push(src, 0)
	for len(ws.heap) > 0 {
		it := ws.pop()
		u := it.node
		if ws.done[u] {
			continue
		}
		ws.done[u] = true
		if u == target {
			return
		}
		if nodes[u].Kind == topo.KindHost && u != src {
			continue // hosts terminate paths
		}
		du := ws.dist[u]
		for _, aid := range t.Out(u) {
			a := &arcs[aid]
			if active != nil {
				if !active.Link[a.Link] {
					continue
				}
				if nodes[a.To].Kind != topo.KindHost && !active.Router[a.To] {
					continue
				}
			}
			if avoid != nil && avoid(*a) {
				continue
			}
			wt := w(*a)
			if math.IsInf(wt, 1) || wt < 0 {
				continue
			}
			if nd := du + wt; nd < ws.distAt(a.To) {
				ws.touch(a.To, nd, aid)
				ws.push(a.To, nd)
			}
		}
	}
}

// runReverse executes Dijkstra from src over the *reversed* graph
// (t.In instead of t.Out), leaving dist[v] = shortest distance from v
// to src under forward path semantics. Host tails are labeled but never
// expanded, mirroring the forward rule that hosts terminate paths; used
// to build the backward landmark tables.
func (ws *Workspace) runReverse(t *topo.Topology, src topo.NodeID, opts Options) {
	ws.begin(t.NumNodes())
	ws.src = src
	w := opts.weight()
	nodes := t.Nodes()
	arcs := t.Arcs()
	active := opts.Active
	avoid := opts.Avoid
	if active != nil && nodes[src].Kind != topo.KindHost && !active.Router[src] {
		return
	}
	ws.touch(src, 0, -1)
	ws.push(src, 0)
	for len(ws.heap) > 0 {
		it := ws.pop()
		u := it.node
		if ws.done[u] {
			continue
		}
		ws.done[u] = true
		if nodes[u].Kind == topo.KindHost && u != src {
			continue // hosts terminate paths
		}
		du := ws.dist[u]
		for _, aid := range t.In(u) {
			a := &arcs[aid]
			v := a.From
			if active != nil {
				if !active.Link[a.Link] {
					continue
				}
				if nodes[v].Kind != topo.KindHost && !active.Router[v] {
					continue
				}
			}
			if avoid != nil && avoid(*a) {
				continue
			}
			wt := w(*a)
			if math.IsInf(wt, 1) || wt < 0 {
				continue
			}
			if nd := du + wt; nd < ws.distAt(v) {
				ws.touch(v, nd, aid)
				ws.push(v, nd)
			}
		}
	}
}

// pathTo materializes the path from the last run's source to dst. The
// single allocation is the returned arc slice, sized exactly.
func (ws *Workspace) pathTo(t *topo.Topology, dst topo.NodeID) (topo.Path, bool) {
	if ws.stamp[dst] != ws.epoch || math.IsInf(ws.dist[dst], 1) {
		return topo.Path{}, false
	}
	rev := ws.scratch[:0]
	for n := dst; n != ws.src; {
		aid := ws.prev[n]
		if aid < 0 {
			ws.scratch = rev
			return topo.Path{}, false
		}
		rev = append(rev, aid)
		n = t.Arc(aid).From
	}
	ws.scratch = rev
	arcs := make([]topo.ArcID, len(rev))
	for i := range arcs {
		arcs[i] = rev[len(rev)-1-i]
	}
	return topo.Path{Arcs: arcs}, true
}

// ShortestPath is ShortestPath threaded through the workspace: an
// early-exit Dijkstra whose only allocation is the returned path.
//
// When opts.Engine selects a goal-directed engine, the query first runs
// through the certified ALT A* / bidirectional solver (goal.go); if
// that run certifies itself tie-free its result is returned directly —
// provably identical to the reference engine's — and otherwise the
// reference Dijkstra below re-answers the query, so the engine choice
// can never change an output.
func (ws *Workspace) ShortestPath(t *topo.Topology, o, d topo.NodeID, opts Options) (topo.Path, bool) {
	if o == d {
		return topo.Path{}, true
	}
	if opts.Engine != EngineReference && ws.goalAllowed(t) {
		if p, ok, certified := ws.goalPath(t, o, d, opts); certified {
			ws.goalTries++
			return p, ok
		}
		ws.goalTries++
		ws.goalFails++
	}
	ws.run(t, o, opts, d)
	return ws.pathTo(t, d)
}

// ShortestTree runs a full Dijkstra from src and leaves the labels in
// the workspace; read them through Dist and PathTo until the next run.
func (ws *Workspace) ShortestTree(t *topo.Topology, src topo.NodeID, opts Options) {
	ws.run(t, src, opts, -1)
}

// Dist returns the distance label of n from the last run (+Inf when
// unreachable or not yet labeled).
func (ws *Workspace) Dist(n topo.NodeID) float64 { return ws.distAt(n) }

// PathTo extracts the path from the last run's source to dst.
func (ws *Workspace) PathTo(t *topo.Topology, dst topo.NodeID) (topo.Path, bool) {
	return ws.pathTo(t, dst)
}

// tree materializes the workspace labels into a standalone Tree.
func (ws *Workspace) tree(t *topo.Topology) Tree {
	n := t.NumNodes()
	tr := Tree{
		Source:  ws.src,
		Dist:    make([]float64, n),
		PrevArc: make([]topo.ArcID, n),
	}
	for i := 0; i < n; i++ {
		if ws.stamp[i] == ws.epoch {
			tr.Dist[i] = ws.dist[i]
			tr.PrevArc[i] = ws.prev[i]
		} else {
			tr.Dist[i] = math.Inf(1)
			tr.PrevArc[i] = -1
		}
	}
	return tr
}
