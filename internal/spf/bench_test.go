package spf

import (
	"testing"

	"response/internal/topo"
)

// Planner-hot-path micro-benchmarks. Run with -benchmem: the workspace
// refactor's contract is that repeated searches allocate only their
// returned paths, so allocs/op is the regression signal as much as
// ns/op.

func BenchmarkShortestTree(b *testing.B) {
	g := topo.NewGeant()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestTree(g, 0, Options{})
	}
}

// BenchmarkShortestPathWorkspace measures the allocation-free early-exit
// search the mcf feasibility router issues hundreds of thousands of
// times per plan.
func BenchmarkShortestPathWorkspace(b *testing.B) {
	g := topo.NewGeant()
	ws := NewWorkspace()
	n := topo.NodeID(g.NumNodes() - 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ws.ShortestPath(g, 0, n, Options{}); !ok {
			b.Fatal("no path")
		}
	}
}

func BenchmarkKShortest(b *testing.B) {
	g := topo.NewGeant()
	n := topo.NodeID(g.NumNodes() - 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := KShortest(g, 0, n, 8, Options{}); len(got) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkECMPPaths(b *testing.B) {
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		b.Fatal(err)
	}
	hosts := ft.Topology.NodesOfKind(topo.KindHost)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ECMPPaths(ft.Topology, hosts[0], hosts[len(hosts)-1], 16, Options{Weight: Hops()}); len(got) == 0 {
			b.Fatal("no paths")
		}
	}
}
