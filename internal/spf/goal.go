// Goal-directed point-to-point solvers: ALT A* over landmark lower
// bounds and bidirectional Dijkstra, both *certified*. The repository
// pins whole-plan fingerprints, and the reference engine's choice among
// equal-cost paths is a heap artifact no reordered search can
// reproduce, so neither solver tries to: each one detects — during its
// own run — every situation in which an equal-cost tie could have
// influenced the answer, and reports itself uncertified, upon which
// ShortestPath re-runs the query through the reference Dijkstra.
// A certified result is therefore provably the byte-identical answer
// the reference engine would have produced; an uncertified attempt
// costs time but can never change an output.
//
// The certification rules:
//
//   - ALT A* (forward, landmark heuristic): runs with key g+h (h
//     consistent, shrunk by hScale), does not stop at the target but
//     drains the heap until the top key exceeds dist(target)+slack,
//     and aborts on any relaxation that lands exactly on an existing
//     label (nd == dist). Consistency makes every tight parent of a
//     node inside the search ellipse itself part of the ellipse, so
//     all tie-making relaxations are performed before the cutoff: zero
//     observed equalities ⇒ every label and predecessor is forced ⇒
//     identical to the reference. Inf/NaN landmark entries are skipped
//     and host targets are bounded through their attachment routers,
//     keeping h admissible under the host-termination path semantics.
//
//   - Bidirectional Dijkstra: forward search from the origin, backward
//     search over t.In from the destination, stop when
//     topF+topB > μ+slack. Certification additionally requires that
//     no heap emptied before the stop rule fired and that every meeting
//     node whose two-sided distance sum is within slack of μ
//     reconstructs to the same arc sequence. This is deliberately
//     conservative; the DiffPathEngine oracle in internal/verify is
//     the ground truth that the rule set is tight enough on the
//     corpus.
//
// Adaptive bailout: tie-heavy topologies (tori, rings, fat-trees with
// uniform latencies) fail certification on most queries. Per-workspace
// counters watch the failure rate and stop attempting goal-directed
// runs on a topology where more than a quarter of attempts have failed,
// so the worst case degrades to a small constant overhead over the
// reference engine.
package spf

import (
	"fmt"
	"math"

	"response/internal/topo"
)

// Engine selects the point-to-point shortest-path solver.
type Engine uint8

const (
	// EngineReference is the seed engine: early-exit Dijkstra in the
	// exact heap order pinned by the plan fingerprints. The zero value,
	// so existing callers are untouched.
	EngineReference Engine = iota
	// EngineALT is certified A* with landmark (ALT) lower bounds.
	// Requires a latency-bounded weight (Options.LatencyBound); falls
	// back to the reference engine otherwise.
	EngineALT
	// EngineBidirectional is certified bidirectional Dijkstra. Valid
	// for any weight function.
	EngineBidirectional
)

// String returns the engine's configuration name.
func (e Engine) String() string {
	switch e {
	case EngineALT:
		return "alt"
	case EngineBidirectional:
		return "bidirectional"
	default:
		return "reference"
	}
}

// ParseEngine maps a configuration name to an Engine.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "reference":
		return EngineReference, nil
	case "alt":
		return EngineALT, nil
	case "bidirectional", "bidi":
		return EngineBidirectional, nil
	}
	return EngineReference, fmt.Errorf("spf: unknown path engine %q", name)
}

// goalSlack is the relative float slack used by the certified solvers:
// searches drain past their provisional optimum by slack(d) before
// concluding, absorbing rounding noise in the heuristic and in
// differently-associated weight sums.
func goalSlack(d float64) float64 { return 1e-9 * (1 + d) }

// goalAllowed implements the adaptive bailout: attempt goal-directed
// solves until the observed certification failure rate on this
// topology exceeds 25% (with a 16-query warm-up).
func (ws *Workspace) goalAllowed(t *topo.Topology) bool {
	if ws.goalTopo != t {
		ws.goalTopo = t
		ws.goalTries, ws.goalFails = 0, 0
	}
	return ws.goalTries < 16 || ws.goalFails*4 <= ws.goalTries
}

// ensureLM resolves the landmark table for t through the per-workspace
// pointer cache (registry lookup only on topology change).
func (ws *Workspace) ensureLM(t *topo.Topology) *Landmarks {
	if ws.lmTopo != t {
		ws.lm = LandmarksFor(t)
		ws.lmTopo = t
	}
	return ws.lm
}

// latencyBounded reports whether landmark latency bounds are admissible
// under o's weight: either declared by the caller, or the default
// weight (which is exactly latency).
func (o Options) latencyBounded() bool { return o.LatencyBound || o.Weight == nil }

// targetBound returns an admissible, consistent lower bound on the
// latency distance from v to d. Non-host targets use the landmark
// triangle inequalities directly; host targets (which paths may not
// transit, breaking the triangle inequality through them) are bounded
// through their attachment routers plus the final arc's latency.
func targetBound(t *topo.Topology, lm *Landmarks, v, d topo.NodeID) float64 {
	if v == d {
		return 0
	}
	if t.Node(d).Kind != topo.KindHost {
		return lm.HBound(v, d)
	}
	best := math.Inf(1)
	for _, aid := range t.In(d) {
		a := t.Arc(aid)
		if t.Node(a.From).Kind == topo.KindHost {
			continue
		}
		if b := lm.HBound(v, a.From) + a.Latency; b < best {
			best = b
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// hFor memoizes targetBound per node for the current h-epoch. The
// heuristic depends only on the landmark table and the target — not on
// the query's active set, avoid set or weights — so the cache survives
// across queries as long as both stay the same. Yen's spur searches,
// which all share one target, hit it almost every time.
func (ws *Workspace) hFor(t *topo.Topology, lm *Landmarks, v, d topo.NodeID) float64 {
	if ws.hstamp[v] == ws.hepoch {
		return ws.hval[v]
	}
	h := targetBound(t, lm, v, d)
	ws.hstamp[v] = ws.hepoch
	ws.hval[v] = h
	return h
}

// hBegin sizes the h-cache and starts a new h-epoch iff the (landmark
// table, target) pair changed since the previous query.
func (ws *Workspace) hBegin(lm *Landmarks, d topo.NodeID, n int) {
	if len(ws.hstamp) < n {
		ws.hstamp = make([]uint64, n)
		ws.hval = make([]float64, n)
	}
	if ws.htgt != d || ws.hlm != lm || ws.hepoch == 0 {
		ws.hepoch++
		ws.htgt = d
		ws.hlm = lm
	}
}

// goalPath dispatches a point-to-point query to the selected certified
// solver. The third return is the certification verdict: when false the
// first two returns are meaningless and the caller must re-run the
// query through the reference engine.
func (ws *Workspace) goalPath(t *topo.Topology, o, d topo.NodeID, opts Options) (topo.Path, bool, bool) {
	switch opts.Engine {
	case EngineALT:
		if !opts.latencyBounded() {
			return topo.Path{}, false, false
		}
		return ws.altPath(t, o, d, opts)
	case EngineBidirectional:
		return ws.bidiPath(t, o, d, opts)
	}
	return topo.Path{}, false, false
}

// altPath is the certified ALT A* solver. See the package comment at
// the top of this file for the certification argument.
func (ws *Workspace) altPath(t *topo.Topology, o, d topo.NodeID, opts Options) (topo.Path, bool, bool) {
	lm := ws.ensureLM(t)
	if lm.Count() == 0 {
		return topo.Path{}, false, false
	}
	n := t.NumNodes()
	ws.begin(n)
	ws.src = o
	ws.hBegin(lm, d, n)
	w := opts.weight()
	nodes := t.Nodes()
	arcs := t.Arcs()
	active := opts.Active
	avoid := opts.Avoid
	if active != nil && nodes[o].Kind != topo.KindHost && !active.Router[o] {
		return topo.Path{}, false, true // source powered off: certified no-path
	}
	ws.touch(o, 0, -1)
	ws.push(o, ws.hFor(t, lm, o, d))
	dStar := math.Inf(1)
	slack := 0.0
	for len(ws.heap) > 0 {
		if ws.heap[0].dist > dStar+slack {
			break // ellipse drained: every label that matters is final
		}
		u := ws.pop().node
		if ws.done[u] {
			continue
		}
		ws.done[u] = true
		if u == d {
			dStar = ws.dist[u]
			slack = goalSlack(dStar)
			continue // target settled; keep draining to certify
		}
		if nodes[u].Kind == topo.KindHost && u != o {
			continue // hosts terminate paths
		}
		du := ws.dist[u]
		for _, aid := range t.Out(u) {
			a := &arcs[aid]
			if active != nil {
				if !active.Link[a.Link] {
					continue
				}
				if nodes[a.To].Kind != topo.KindHost && !active.Router[a.To] {
					continue
				}
			}
			if avoid != nil && avoid(*a) {
				continue
			}
			wt := w(*a)
			if math.IsInf(wt, 1) || wt < 0 {
				continue
			}
			to := a.To
			nd := du + wt
			dt := ws.distAt(to)
			if nd == dt {
				// An exact equal-cost tie. The reference resolves it by
				// heap order; ties into dead-end hosts can never reach
				// the output, every other one voids the certificate.
				if to == d || nodes[to].Kind != topo.KindHost {
					return topo.Path{}, false, false
				}
				continue
			}
			if nd < dt {
				ws.touch(to, nd, aid)
				ws.push(to, nd+ws.hFor(t, lm, to, d))
			}
		}
	}
	if math.IsInf(dStar, 1) {
		// Heap drained without settling the target: certified no-path.
		return topo.Path{}, false, true
	}
	p, ok := ws.pathTo(t, d)
	return p, ok, true
}

// bdistAt mirrors distAt for the backward label arrays.
func (ws *Workspace) bdistAt(u topo.NodeID) float64 {
	if ws.bstamp[u] == ws.epoch {
		return ws.bdist[u]
	}
	return math.Inf(1)
}

// btouch mirrors touch for the backward label arrays and records the
// node on the touched list (scanned for meeting nodes afterwards).
func (ws *Workspace) btouch(u topo.NodeID, dd float64, via topo.ArcID) {
	if ws.bstamp[u] != ws.epoch {
		ws.btouched = append(ws.btouched, u)
	}
	ws.bstamp[u] = ws.epoch
	ws.bdist[u] = dd
	ws.bprev[u] = via
	ws.bdone[u] = false
}

func (ws *Workspace) bpush(n topo.NodeID, d float64) {
	ws.bheap = append(ws.bheap, heapEntry{node: n, dist: d})
	h := ws.bheap
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (ws *Workspace) bpop() heapEntry {
	h := ws.bheap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	e := h[n]
	ws.bheap = h[:n]
	return e
}

// bidiPath is the certified bidirectional Dijkstra solver. See the
// package comment at the top of this file for the certification rules.
func (ws *Workspace) bidiPath(t *topo.Topology, o, d topo.NodeID, opts Options) (topo.Path, bool, bool) {
	n := t.NumNodes()
	ws.begin(n)
	ws.src = o
	if len(ws.bstamp) < n {
		ws.bstamp = make([]uint64, n)
		ws.bdist = make([]float64, n)
		ws.bprev = make([]topo.ArcID, n)
		ws.bdone = make([]bool, n)
	}
	ws.bheap = ws.bheap[:0]
	ws.btouched = ws.btouched[:0]
	w := opts.weight()
	nodes := t.Nodes()
	arcs := t.Arcs()
	active := opts.Active
	avoid := opts.Avoid
	if active != nil {
		// The reference checks the origin's power state up front and
		// the destination's when relaxing its final arc; both sides of
		// a bidirectional search need them as start conditions.
		if nodes[o].Kind != topo.KindHost && !active.Router[o] {
			return topo.Path{}, false, true
		}
		if nodes[d].Kind != topo.KindHost && !active.Router[d] {
			return topo.Path{}, false, true
		}
	}
	ws.touch(o, 0, -1)
	ws.push(o, 0)
	ws.btouch(d, 0, -1)
	ws.bpush(d, 0)
	mu := math.Inf(1)
	slack := 0.0
	certified := true
	stopped := false
	for certified {
		// Drop finalized (stale) heads so the tops are live keys.
		for len(ws.heap) > 0 && ws.done[ws.heap[0].node] {
			ws.pop()
		}
		for len(ws.bheap) > 0 && ws.bdone[ws.bheap[0].node] {
			ws.bpop()
		}
		if len(ws.heap) == 0 || len(ws.bheap) == 0 {
			break
		}
		if ws.heap[0].dist+ws.bheap[0].dist > mu+slack {
			stopped = true
			break
		}
		if ws.heap[0].dist <= ws.bheap[0].dist {
			// Expand the forward side.
			u := ws.pop().node
			if ws.done[u] {
				continue
			}
			ws.done[u] = true
			if nodes[u].Kind == topo.KindHost && u != o {
				continue
			}
			du := ws.dist[u]
			for _, aid := range t.Out(u) {
				a := &arcs[aid]
				if active != nil {
					if !active.Link[a.Link] {
						continue
					}
					if nodes[a.To].Kind != topo.KindHost && !active.Router[a.To] {
						continue
					}
				}
				if avoid != nil && avoid(*a) {
					continue
				}
				wt := w(*a)
				if math.IsInf(wt, 1) || wt < 0 {
					continue
				}
				to := a.To
				nd := du + wt
				dt := ws.distAt(to)
				if nd == dt {
					if to == d || nodes[to].Kind != topo.KindHost {
						certified = false
						break
					}
					continue
				}
				if nd < dt {
					ws.touch(to, nd, aid)
					ws.push(to, nd)
					if ws.bstamp[to] == ws.epoch {
						if s := nd + ws.bdist[to]; s < mu {
							mu = s
							slack = goalSlack(mu)
						}
					}
				}
			}
		} else {
			// Expand the backward side over incoming arcs.
			u := ws.bpop().node
			if ws.bdone[u] {
				continue
			}
			ws.bdone[u] = true
			if nodes[u].Kind == topo.KindHost && u != d {
				continue
			}
			du := ws.bdist[u]
			for _, aid := range t.In(u) {
				a := &arcs[aid]
				v := a.From
				if active != nil {
					if !active.Link[a.Link] {
						continue
					}
					if nodes[v].Kind != topo.KindHost && !active.Router[v] {
						continue
					}
				}
				if avoid != nil && avoid(*a) {
					continue
				}
				wt := w(*a)
				if math.IsInf(wt, 1) || wt < 0 {
					continue
				}
				nd := du + wt
				dt := ws.bdistAt(v)
				if nd == dt {
					if v == o || nodes[v].Kind != topo.KindHost {
						certified = false
						break
					}
					continue
				}
				if nd < dt {
					ws.btouch(v, nd, aid)
					ws.bpush(v, nd)
					if ws.stamp[v] == ws.epoch {
						if s := nd + ws.dist[v]; s < mu {
							mu = s
							slack = goalSlack(mu)
						}
					}
				}
			}
		}
	}
	if !certified {
		return topo.Path{}, false, false
	}
	if math.IsInf(mu, 1) {
		// A heap drained with the frontiers never meeting: one side
		// exhausted its reachable set, so there is no path at all.
		return topo.Path{}, false, true
	}
	if !stopped {
		// A heap drained after the frontiers met but before the stop
		// rule fired; the usual invariants don't cover this corner, so
		// don't certify it.
		return topo.Path{}, false, false
	}
	// Certify uniqueness through the meeting set: every doubly-labeled
	// node whose two-sided sum is within slack of μ must reconstruct to
	// the same arc sequence.
	var best []topo.ArcID
	have := false
	for _, x := range ws.btouched {
		if ws.stamp[x] != ws.epoch {
			continue
		}
		if ws.dist[x]+ws.bdist[x] > mu+slack {
			continue
		}
		fwd, ok := ws.pathTo(t, x)
		if !ok {
			return topo.Path{}, false, false
		}
		full := fwd.Arcs
		for v := x; v != d; {
			aid := ws.bprev[v]
			if aid < 0 {
				return topo.Path{}, false, false
			}
			full = append(full, aid)
			v = arcs[aid].To
		}
		if !have {
			best, have = full, true
		} else if !sameArcs(best, full) {
			return topo.Path{}, false, false
		}
	}
	if !have {
		return topo.Path{}, false, false
	}
	return topo.Path{Arcs: best}, true, true
}
