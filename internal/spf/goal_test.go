package spf_test

// Differential, metamorphic and property tests for the goal-directed
// path engines. The certified engines promise byte-identical results to
// the reference engine on every query — these tests check that promise
// per query across the generator families, option variants (active
// subsets, avoid sets, load-style weights) and engine choices; the
// whole-plan check lives in internal/verify's DiffPathEngine oracle.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"response/internal/spf"
	"response/internal/topo"
	"response/internal/topogen"
)

type engCase struct {
	fam  topogen.Family
	size int
}

var engCases = []engCase{
	{topogen.FamilyFatTree, 4},
	{topogen.FamilyWaxman, 30},
	{topogen.FamilyWaxman, 60},
	{topogen.FamilyRing, 10},
	{topogen.FamilyTorus, 3},
	{topogen.FamilyISP, 3},
}

func genTopo(t testing.TB, fam topogen.Family, size int, seed int64) *topogen.Instance {
	t.Helper()
	inst, err := topogen.Generate(topogen.Config{Family: fam, Size: size, Seed: seed})
	if err != nil {
		t.Fatalf("generate %s:%d: %v", fam, size, err)
	}
	return inst
}

// pairSample returns deterministic endpoint pairs for an instance.
func pairSample(inst *topogen.Instance, rng *rand.Rand, n int) [][2]topo.NodeID {
	eps := inst.Endpoints
	var out [][2]topo.NodeID
	for i := 0; i < n && len(eps) >= 2; i++ {
		o := eps[rng.Intn(len(eps))]
		d := eps[rng.Intn(len(eps))]
		if o == d {
			continue
		}
		out = append(out, [2]topo.NodeID{o, d})
	}
	return out
}

// loadStyleWeight mimics the planner's load-penalized latency weight:
// per-arc factor ≥ 1 over latency, so LatencyBound holds.
func loadStyleWeight() spf.WeightFunc {
	return func(a topo.Arc) float64 {
		return a.Latency * (1 + 0.3*float64(a.ID%5))
	}
}

// optionVariants are the Options shapes the planner actually issues,
// minus the engine selection (filled in by the caller).
func optionVariants(t *topo.Topology, seed int64) map[string]spf.Options {
	rng := rand.New(rand.NewSource(seed))
	partial := topo.AllOn(t)
	for l := range partial.Link {
		if rng.Intn(5) == 0 {
			partial.Link[l] = false
		}
	}
	partial.EnforceInvariants(t)
	avoided := map[topo.LinkID]bool{}
	for l := 0; l < t.NumLinks(); l++ {
		if rng.Intn(7) == 0 {
			avoided[topo.LinkID(l)] = true
		}
	}
	return map[string]spf.Options{
		"plain":  {},
		"active": {Active: partial},
		"avoid":  {Avoid: func(a topo.Arc) bool { return avoided[a.Link] }},
		"load":   {Weight: loadStyleWeight(), LatencyBound: true},
	}
}

func samePaths(a, b []topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Arcs) != len(b[i].Arcs) {
			return false
		}
		for j := range a[i].Arcs {
			if a[i].Arcs[j] != b[i].Arcs[j] {
				return false
			}
		}
	}
	return true
}

// TestEnginesMatchReference is the per-query differential test: every
// engine must return exactly the reference engine's paths — same arcs,
// same order — for single-pair and K-shortest queries under every
// option variant.
func TestEnginesMatchReference(t *testing.T) {
	engines := []spf.Engine{spf.EngineALT, spf.EngineBidirectional}
	for _, c := range engCases {
		for seed := int64(1); seed <= 2; seed++ {
			inst := genTopo(t, c.fam, c.size, seed)
			g := inst.Topo
			rng := rand.New(rand.NewSource(seed * 977))
			pairs := pairSample(inst, rng, 25)
			for name, base := range optionVariants(g, seed) {
				for _, pair := range pairs {
					o, d := pair[0], pair[1]
					refPaths := spf.KShortest(g, o, d, 4, base)
					refP, refOK := spf.ShortestPath(g, o, d, base)
					for _, eng := range engines {
						opts := base
						opts.Engine = eng
						// Fresh workspace per query: the adaptive
						// bailout must not skip attempts mid-test.
						ws := spf.NewWorkspace()
						gotP, gotOK := ws.ShortestPath(g, o, d, opts)
						if gotOK != refOK || !samePaths([]topo.Path{gotP}, []topo.Path{refP}) {
							t.Fatalf("%s:%d seed %d %s %v→%v engine %v: ShortestPath diverged\nref %v (%v)\ngot %v (%v)",
								c.fam, c.size, seed, name, o, d, eng, refP.Arcs, refOK, gotP.Arcs, gotOK)
						}
						got := ws.KShortest(g, o, d, 4, opts)
						if !samePaths(refPaths, got) {
							t.Fatalf("%s:%d seed %d %s %v→%v engine %v: KShortest diverged\nref %v\ngot %v",
								c.fam, c.size, seed, name, o, d, eng, pathArcs(refPaths), pathArcs(got))
						}
					}
				}
			}
		}
	}
}

func pathArcs(ps []topo.Path) [][]topo.ArcID {
	out := make([][]topo.ArcID, len(ps))
	for i, p := range ps {
		out[i] = p.Arcs
	}
	return out
}

// TestAdmissibility property-tests the landmark heuristic: on 20 seeds
// per family, sampled lower bounds never exceed the true latency
// distance.
func TestAdmissibility(t *testing.T) {
	for _, c := range engCases {
		for seed := int64(1); seed <= 20; seed++ {
			inst := genTopo(t, c.fam, c.size, seed)
			g := inst.Topo
			lm := spf.LandmarksFor(g)
			rng := rand.New(rand.NewSource(seed))
			ws := spf.NewWorkspace()
			for _, pair := range pairSample(inst, rng, 10) {
				o, d := pair[0], pair[1]
				ws.ShortestTree(g, o, spf.Options{})
				true2 := ws.Dist(d)
				if math.IsInf(true2, 1) {
					continue
				}
				h := spf.TargetBoundForTest(g, lm, o, d)
				if h > true2*(1+1e-9)+1e-12 {
					t.Fatalf("%s:%d seed %d: bound %v exceeds true distance %v for %v→%v",
						c.fam, c.size, seed, h, true2, o, d)
				}
			}
		}
	}
}

// TestLandmarkSubsetMonotonicity: adding landmarks can only tighten the
// bound (the bound is a max over per-landmark terms).
func TestLandmarkSubsetMonotonicity(t *testing.T) {
	for _, c := range engCases {
		inst := genTopo(t, c.fam, c.size, 1)
		g := inst.Topo
		lm := spf.LandmarksFor(g)
		rng := rand.New(rand.NewSource(42))
		for _, pair := range pairSample(inst, rng, 15) {
			o, d := pair[0], pair[1]
			last := 0.0
			for k := 0; k <= lm.Count(); k++ {
				h := spf.TargetBoundForTest(g, lm.Subset(k), o, d)
				if h+1e-12 < last {
					t.Fatalf("%s:%d %v→%v: bound loosened from %v to %v at %d landmarks",
						c.fam, c.size, o, d, last, h, k)
				}
				last = h
			}
		}
	}
}

// TestUniformScalingPreservesPaths: scaling all weights by a constant
// preserves every engine's chosen paths (metamorphic).
func TestUniformScalingPreservesPaths(t *testing.T) {
	for _, c := range engCases {
		inst := genTopo(t, c.fam, c.size, 1)
		g := inst.Topo
		rng := rand.New(rand.NewSource(7))
		for _, eng := range []spf.Engine{spf.EngineReference, spf.EngineALT, spf.EngineBidirectional} {
			base := spf.Options{Engine: eng}
			scaled := spf.Options{
				Engine: eng,
				// 2.5ˣ scaling is exact in binary floating point, so
				// even tie structure is preserved.
				Weight:       func(a topo.Arc) float64 { return a.Latency * 4 },
				LatencyBound: true,
			}
			for _, pair := range pairSample(inst, rng, 10) {
				o, d := pair[0], pair[1]
				a := spf.KShortest(g, o, d, 3, base)
				b := spf.KShortest(g, o, d, 3, scaled)
				if !samePaths(a, b) {
					t.Fatalf("%s:%d engine %v %v→%v: scaled weights changed paths", c.fam, c.size, eng, o, d)
				}
			}
		}
	}
}

// TestRelabelingPreservesDistances: rebuilding the topology with
// permuted node insertion order (fresh IDs) must preserve pairwise
// distances (metamorphic: distance is a graph property, not an ID
// property).
func TestRelabelingPreservesDistances(t *testing.T) {
	inst := genTopo(t, topogen.FamilyWaxman, 24, 3)
	g := inst.Topo
	perm, remap := relabel(g, 99)
	for _, eng := range []spf.Engine{spf.EngineReference, spf.EngineALT, spf.EngineBidirectional} {
		ws, ws2 := spf.NewWorkspace(), spf.NewWorkspace()
		rng := rand.New(rand.NewSource(5))
		for _, pair := range pairSample(inst, rng, 15) {
			o, d := pair[0], pair[1]
			opts := spf.Options{Engine: eng}
			p1, ok1 := ws.ShortestPath(g, o, d, opts)
			p2, ok2 := ws2.ShortestPath(perm, remap[o], remap[d], opts)
			if ok1 != ok2 {
				t.Fatalf("engine %v %v→%v: reachability changed under relabeling", eng, o, d)
			}
			if !ok1 {
				continue
			}
			w1 := spf.PathWeight(g, p1, spf.Options{})
			w2 := spf.PathWeight(perm, p2, spf.Options{})
			if math.Abs(w1-w2) > 1e-9*(1+w1) {
				t.Fatalf("engine %v %v→%v: distance changed under relabeling: %v vs %v", eng, o, d, w1, w2)
			}
		}
	}
}

// relabel rebuilds g with nodes inserted in a permuted order, returning
// the new topology and old→new node ID mapping.
func relabel(g *topo.Topology, seed int64) (*topo.Topology, map[topo.NodeID]topo.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(g.NumNodes())
	nt := topo.New(fmt.Sprintf("%s-relabeled", g.Name))
	remap := make(map[topo.NodeID]topo.NodeID, g.NumNodes())
	for _, i := range order {
		n := g.Node(topo.NodeID(i))
		remap[n.ID] = nt.AddNode(fmt.Sprintf("r%d", i), n.Kind)
	}
	for l := 0; l < g.NumLinks(); l++ {
		lk := g.Link(topo.LinkID(l))
		ab := g.Arc(lk.AB)
		nt.AddLink(remap[lk.A], remap[lk.B], ab.Capacity, ab.Latency)
	}
	return nt, remap
}
