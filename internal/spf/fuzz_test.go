package spf_test

// FuzzKShortestEngines cross-checks the goal-directed engines against
// the reference on mutated generated topologies, including ones whose
// active subset is disconnected: for arbitrary (family, size, seed,
// link knockout, query) tuples the engines must not panic and must
// return exactly the reference's paths — or the same "no path" verdict.

import (
	"math/rand"
	"testing"

	"response/internal/spf"
	"response/internal/topo"
	"response/internal/topogen"
)

func FuzzKShortestEngines(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(4), uint16(0), uint16(3), uint8(3), uint64(0))
	f.Add(int64(2), uint8(1), uint8(20), uint16(2), uint16(9), uint8(5), uint64(0x5a5a))
	f.Add(int64(3), uint8(2), uint8(8), uint16(1), uint16(4), uint8(2), uint64(0xffff))
	f.Add(int64(4), uint8(3), uint8(3), uint16(5), uint16(6), uint8(4), uint64(1))
	f.Add(int64(5), uint8(4), uint8(3), uint16(7), uint16(2), uint8(1), uint64(0xdead))
	f.Fuzz(func(t *testing.T, seed int64, famIdx, size uint8, oi, di uint16, k uint8, knockout uint64) {
		fams := topogen.Families()
		fam := fams[int(famIdx)%len(fams)]
		var sz int
		switch fam {
		case topogen.FamilyFatTree:
			sz = 2 + 2*int(size%3)
		case topogen.FamilyWaxman:
			sz = 4 + int(size%28)
		case topogen.FamilyRing:
			sz = 3 + int(size%12)
		case topogen.FamilyTorus:
			sz = 3 + int(size%2)
		default: // isp
			sz = 3 + int(size%3)
		}
		inst, err := topogen.Generate(topogen.Config{Family: fam, Size: sz, Seed: 1 + seed%8})
		if err != nil {
			t.Skip()
		}
		g := inst.Topo
		opts := spf.Options{}
		if knockout != 0 {
			// Knock links out without re-enforcing invariants: the
			// active subgraph may be disconnected, which is the point.
			rng := rand.New(rand.NewSource(int64(knockout)))
			active := topo.AllOn(g)
			for l := range active.Link {
				if rng.Intn(4) == 0 {
					active.Link[l] = false
				}
			}
			opts.Active = active
		}
		eps := inst.Endpoints
		if len(eps) < 2 {
			t.Skip()
		}
		o := eps[int(oi)%len(eps)]
		d := eps[int(di)%len(eps)]
		if o == d {
			t.Skip()
		}
		kk := 1 + int(k%6)
		ref := spf.KShortest(g, o, d, kk, opts)
		refP, refOK := spf.ShortestPath(g, o, d, opts)
		for _, eng := range []spf.Engine{spf.EngineALT, spf.EngineBidirectional} {
			sub := opts
			sub.Engine = eng
			ws := spf.NewWorkspace()
			gotP, gotOK := ws.ShortestPath(g, o, d, sub)
			if gotOK != refOK {
				t.Fatalf("engine %v %v→%v: verdict %v vs reference %v", eng, o, d, gotOK, refOK)
			}
			if refOK && !samePaths([]topo.Path{refP}, []topo.Path{gotP}) {
				t.Fatalf("engine %v %v→%v: path diverged\nref %v\ngot %v", eng, o, d, refP.Arcs, gotP.Arcs)
			}
			got := ws.KShortest(g, o, d, kk, sub)
			if !samePaths(ref, got) {
				t.Fatalf("engine %v %v→%v k=%d: K-shortest diverged\nref %v\ngot %v",
					eng, o, d, kk, pathArcs(ref), pathArcs(got))
			}
		}
	})
}
