// Package spf is the shortest-path substrate: Dijkstra over pluggable
// arc weights, Yen's K-shortest paths, OSPF-InvCap weights (the paper's
// Cisco-recommended baseline: link weight = inverse capacity), and ECMP
// equal-cost path enumeration.
//
// All searches refuse to transit through hosts (hosts may only be path
// endpoints) and can be restricted to the powered subgraph via an
// ActiveSet.
package spf

import (
	"container/heap"
	"math"
	"sort"

	"response/internal/topo"
)

// WeightFunc assigns a non-negative routing weight to an arc. Return
// math.Inf(1) to exclude the arc entirely.
type WeightFunc func(a topo.Arc) float64

// Latency weights arcs by propagation delay: shortest-delay routing.
func Latency() WeightFunc {
	return func(a topo.Arc) float64 { return a.Latency }
}

// Hops weights every arc 1: minimum-hop routing.
func Hops() WeightFunc {
	return func(a topo.Arc) float64 { return 1 }
}

// InvCap implements the Cisco-recommended OSPF setting (the paper's
// OSPF-InvCap baseline): link weight inversely proportional to
// capacity, normalized to a 100 Mb/s reference so weights are O(1).
func InvCap() WeightFunc {
	const ref = 100 * topo.Mbps
	return func(a topo.Arc) float64 { return ref / a.Capacity }
}

// Options restricts and parameterizes a search.
type Options struct {
	// Weight is the arc weight (default Latency).
	Weight WeightFunc
	// Active, when non-nil, restricts the search to powered elements.
	Active *topo.ActiveSet
	// Avoid, when non-nil, excludes arcs for which it returns true
	// (used e.g. to skip high-stress links or failed elements).
	Avoid func(a topo.Arc) bool
}

func (o Options) weight() WeightFunc {
	if o.Weight == nil {
		return Latency()
	}
	return o.Weight
}

// usable reports whether an arc may be traversed under the options.
func (o Options) usable(t *topo.Topology, a topo.Arc) bool {
	if o.Active != nil {
		if !o.Active.Link[a.Link] {
			return false
		}
		if t.Node(a.To).Kind != topo.KindHost && !o.Active.Router[a.To] {
			return false
		}
	}
	if o.Avoid != nil && o.Avoid(a) {
		return false
	}
	return true
}

type pqItem struct {
	node topo.NodeID
	dist float64
	idx  int
}

type pq []*pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x interface{}) { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Tree is a single-source shortest-path tree.
type Tree struct {
	Source  topo.NodeID
	Dist    []float64    // per node; +Inf if unreachable
	PrevArc []topo.ArcID // arc used to reach each node; -1 at source/unreachable
}

// ShortestTree runs Dijkstra from src under opts. Hosts are never
// expanded unless they are the source, so paths cannot transit hosts.
func ShortestTree(t *topo.Topology, src topo.NodeID, opts Options) Tree {
	n := t.NumNodes()
	w := opts.weight()
	tree := Tree{
		Source:  src,
		Dist:    make([]float64, n),
		PrevArc: make([]topo.ArcID, n),
	}
	for i := range tree.Dist {
		tree.Dist[i] = math.Inf(1)
		tree.PrevArc[i] = -1
	}
	if opts.Active != nil && t.Node(src).Kind != topo.KindHost && !opts.Active.Router[src] {
		return tree
	}
	tree.Dist[src] = 0
	q := &pq{}
	heap.Push(q, &pqItem{node: src, dist: 0})
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if t.Node(u).Kind == topo.KindHost && u != src {
			continue // hosts terminate paths
		}
		for _, aid := range t.Out(u) {
			a := t.Arc(aid)
			if !opts.usable(t, a) {
				continue
			}
			wt := w(a)
			if math.IsInf(wt, 1) || wt < 0 {
				continue
			}
			if nd := tree.Dist[u] + wt; nd < tree.Dist[a.To] {
				tree.Dist[a.To] = nd
				tree.PrevArc[a.To] = aid
				heap.Push(q, &pqItem{node: a.To, dist: nd})
			}
		}
	}
	return tree
}

// PathTo extracts the path from the tree's source to dst.
func (tr Tree) PathTo(t *topo.Topology, dst topo.NodeID) (topo.Path, bool) {
	if math.IsInf(tr.Dist[dst], 1) {
		return topo.Path{}, false
	}
	var rev []topo.ArcID
	for n := dst; n != tr.Source; {
		aid := tr.PrevArc[n]
		if aid < 0 {
			return topo.Path{}, false
		}
		rev = append(rev, aid)
		n = t.Arc(aid).From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return topo.Path{Arcs: rev}, true
}

// ShortestPath returns the least-weight path from o to d under opts.
func ShortestPath(t *topo.Topology, o, d topo.NodeID, opts Options) (topo.Path, bool) {
	if o == d {
		return topo.Path{}, true
	}
	tree := ShortestTree(t, o, opts)
	return tree.PathTo(t, d)
}

// PathWeight sums the option weight over a path's arcs.
func PathWeight(t *topo.Topology, p topo.Path, opts Options) float64 {
	w := opts.weight()
	var s float64
	for _, aid := range p.Arcs {
		s += w(t.Arc(aid))
	}
	return s
}

// KShortest returns up to k loop-free shortest paths from o to d in
// non-decreasing weight order using Yen's algorithm.
func KShortest(t *topo.Topology, o, d topo.NodeID, k int, opts Options) []topo.Path {
	if k <= 0 {
		return nil
	}
	first, ok := ShortestPath(t, o, d, opts)
	if !ok || first.Empty() {
		return nil
	}
	paths := []topo.Path{first}
	type cand struct {
		p topo.Path
		w float64
	}
	var cands []cand
	seen := map[string]bool{first.Key(): true}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := prev.Nodes(t)
		// Spur from each node of the previous path.
		for i := 0; i < len(prev.Arcs); i++ {
			spurNode := prevNodes[i]
			rootArcs := append([]topo.ArcID(nil), prev.Arcs[:i]...)
			banned := map[topo.ArcID]bool{}
			// Ban the next arc of every accepted path sharing this root.
			for _, p := range paths {
				if len(p.Arcs) > i && sameArcs(p.Arcs[:i], rootArcs) {
					banned[p.Arcs[i]] = true
				}
			}
			// Ban revisiting root nodes.
			rootNodes := map[topo.NodeID]bool{}
			for _, n := range prevNodes[:i+1] {
				rootNodes[n] = true
			}
			delete(rootNodes, spurNode)
			sub := opts
			parentAvoid := opts.Avoid
			sub.Avoid = func(a topo.Arc) bool {
				if parentAvoid != nil && parentAvoid(a) {
					return true
				}
				return banned[a.ID] || rootNodes[a.To]
			}
			spur, ok := ShortestPath(t, spurNode, d, sub)
			if !ok || spur.Empty() {
				continue
			}
			full := topo.Path{Arcs: append(append([]topo.ArcID(nil), rootArcs...), spur.Arcs...)}
			if full.Check(t) != nil {
				continue
			}
			key := full.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			cands = append(cands, cand{p: full, w: PathWeight(t, full, opts)})
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].w < cands[j].w })
		paths = append(paths, cands[0].p)
		cands = cands[1:]
	}
	return paths
}

func sameArcs(a, b []topo.ArcID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ECMPPaths enumerates equal-cost shortest paths from o to d (up to
// maxPaths, default 16), the standard ECMP baseline of Figure 4.
func ECMPPaths(t *topo.Topology, o, d topo.NodeID, maxPaths int, opts Options) []topo.Path {
	if maxPaths <= 0 {
		maxPaths = 16
	}
	if o == d {
		return nil
	}
	tree := ShortestTree(t, o, opts)
	if math.IsInf(tree.Dist[d], 1) {
		return nil
	}
	w := opts.weight()
	const eps = 1e-12
	// DFS backwards from d along arcs on some shortest path.
	var out []topo.Path
	var stack []topo.ArcID
	var dfs func(n topo.NodeID)
	dfs = func(n topo.NodeID) {
		if len(out) >= maxPaths {
			return
		}
		if n == o {
			arcs := make([]topo.ArcID, len(stack))
			for i := range stack {
				arcs[i] = stack[len(stack)-1-i]
			}
			out = append(out, topo.Path{Arcs: arcs})
			return
		}
		for _, aid := range t.In(n) {
			a := t.Arc(aid)
			if !opts.usable(t, a) {
				continue
			}
			if t.Node(a.From).Kind == topo.KindHost && a.From != o {
				continue
			}
			wt := w(a)
			if math.IsInf(wt, 1) {
				continue
			}
			if math.Abs(tree.Dist[a.From]+wt-tree.Dist[n]) <= eps*(1+tree.Dist[n]) {
				stack = append(stack, aid)
				dfs(a.From)
				stack = stack[:len(stack)-1]
			}
		}
	}
	dfs(d)
	return out
}

// HashFlow deterministically selects one of n paths for a flow key, the
// way ECMP hashes five-tuples onto next hops.
func HashFlow(o, d topo.NodeID, flowID, n int) int {
	if n <= 0 {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, v := range []uint64{uint64(o), uint64(d), uint64(flowID)} {
		h ^= v
		h *= 1099511628211
	}
	return int(h % uint64(n))
}
