// Package spf is the shortest-path substrate: Dijkstra over pluggable
// arc weights, Yen's K-shortest paths, OSPF-InvCap weights (the paper's
// Cisco-recommended baseline: link weight = inverse capacity), and ECMP
// equal-cost path enumeration.
//
// All searches refuse to transit through hosts (hosts may only be path
// endpoints) and can be restricted to the powered subgraph via an
// ActiveSet.
//
// Searches run over a reusable Workspace (epoch-stamped label arrays
// plus an inline binary heap) so the hot planning loops in mcf and core
// perform no per-search allocations; the package-level functions below
// draw workspaces from a pool for callers that don't manage their own.
//
// Point-to-point queries can additionally run through a goal-directed
// engine (Options.Engine: EngineALT over cached landmark lower bounds,
// or EngineBidirectional). Both are certified-exact: a query either
// proves its answer byte-identical to the reference engine's — same
// arcs, same tie choices — or transparently falls back to it, so the
// engine selection never changes an output, only how fast it is
// computed. Yen's algorithm adds landmark-based dominance pruning of
// spur queries under the same contract. See goal.go for the
// certification argument and landmarks.go for landmark selection.
package spf

import (
	"math"
	"sort"

	"response/internal/topo"
)

// WeightFunc assigns a non-negative routing weight to an arc. Return
// math.Inf(1) to exclude the arc entirely.
type WeightFunc func(a topo.Arc) float64

// Latency weights arcs by propagation delay: shortest-delay routing.
func Latency() WeightFunc {
	return func(a topo.Arc) float64 { return a.Latency }
}

// Hops weights every arc 1: minimum-hop routing.
func Hops() WeightFunc {
	return func(a topo.Arc) float64 { return 1 }
}

// InvCap implements the Cisco-recommended OSPF setting (the paper's
// OSPF-InvCap baseline): link weight inversely proportional to
// capacity, normalized to a 100 Mb/s reference so weights are O(1).
func InvCap() WeightFunc {
	const ref = 100 * topo.Mbps
	return func(a topo.Arc) float64 { return ref / a.Capacity }
}

// Options restricts and parameterizes a search.
type Options struct {
	// Weight is the arc weight (default Latency).
	Weight WeightFunc
	// Active, when non-nil, restricts the search to powered elements.
	Active *topo.ActiveSet
	// Avoid, when non-nil, excludes arcs for which it returns true
	// (used e.g. to skip high-stress links or failed elements).
	Avoid func(a topo.Arc) bool
	// Engine selects the point-to-point solver (see goal.go). The zero
	// value is the reference engine; the goal-directed engines are
	// certified-exact: they return a result only when it is provably
	// identical to the reference engine's and silently fall back
	// otherwise, so the choice can never change an output.
	Engine Engine
	// LatencyBound declares that Weight(a) ≥ a.Latency for every arc,
	// which makes the latency-based landmark lower bounds admissible
	// under Weight. Automatically true when Weight is nil (the default
	// weight is exactly latency); required for EngineALT and for Yen
	// dominance pruning to engage under a custom weight.
	LatencyBound bool
}

func (o Options) weight() WeightFunc {
	if o.Weight == nil {
		return Latency()
	}
	return o.Weight
}

// usable reports whether an arc may be traversed under the options.
func (o Options) usable(t *topo.Topology, a topo.Arc) bool {
	if o.Active != nil {
		if !o.Active.Link[a.Link] {
			return false
		}
		if t.Node(a.To).Kind != topo.KindHost && !o.Active.Router[a.To] {
			return false
		}
	}
	if o.Avoid != nil && o.Avoid(a) {
		return false
	}
	return true
}

// Tree is a single-source shortest-path tree.
type Tree struct {
	Source  topo.NodeID
	Dist    []float64    // per node; +Inf if unreachable
	PrevArc []topo.ArcID // arc used to reach each node; -1 at source/unreachable
}

// ShortestTree runs Dijkstra from src under opts. Hosts are never
// expanded unless they are the source, so paths cannot transit hosts.
func ShortestTree(t *topo.Topology, src topo.NodeID, opts Options) Tree {
	ws := wsPool.Get().(*Workspace)
	ws.run(t, src, opts, -1)
	tr := ws.tree(t)
	wsPool.Put(ws)
	return tr
}

// PathTo extracts the path from the tree's source to dst.
func (tr Tree) PathTo(t *topo.Topology, dst topo.NodeID) (topo.Path, bool) {
	if math.IsInf(tr.Dist[dst], 1) {
		return topo.Path{}, false
	}
	var rev []topo.ArcID
	for n := dst; n != tr.Source; {
		aid := tr.PrevArc[n]
		if aid < 0 {
			return topo.Path{}, false
		}
		rev = append(rev, aid)
		n = t.Arc(aid).From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return topo.Path{Arcs: rev}, true
}

// ShortestPath returns the least-weight path from o to d under opts.
func ShortestPath(t *topo.Topology, o, d topo.NodeID, opts Options) (topo.Path, bool) {
	if o == d {
		return topo.Path{}, true
	}
	ws := wsPool.Get().(*Workspace)
	p, ok := ws.ShortestPath(t, o, d, opts)
	wsPool.Put(ws)
	return p, ok
}

// PathWeight sums the option weight over a path's arcs.
func PathWeight(t *topo.Topology, p topo.Path, opts Options) float64 {
	w := opts.weight()
	var s float64
	for _, aid := range p.Arcs {
		s += w(t.Arc(aid))
	}
	return s
}

// kCand is one pending Yen candidate; seq breaks weight ties toward
// older candidates, keeping the selection deterministic.
type kCand struct {
	p   topo.Path
	w   float64
	seq int
}

// candHeap is a min-heap of candidates keyed (w, seq). It replaces the
// previous full re-sort of the candidate list on every iteration.
type candHeap []kCand

func (h candHeap) less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w < h[j].w
	}
	return h[i].seq < h[j].seq
}

func (h *candHeap) push(c kCand) {
	*h = append(*h, c)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *candHeap) pop() kCand {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.less(j2, j1) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	c := s[n]
	*h = s[:n]
	return c
}

// KShortest returns up to k loop-free shortest paths from o to d in
// non-decreasing weight order using Yen's algorithm.
func KShortest(t *topo.Topology, o, d topo.NodeID, k int, opts Options) []topo.Path {
	ws := wsPool.Get().(*Workspace)
	out := ws.KShortest(t, o, d, k, opts)
	wsPool.Put(ws)
	return out
}

// KShortest is Yen's algorithm threaded through the workspace: spur
// searches reuse the Dijkstra scratch state and the candidate pool is
// kept as a heap instead of being re-sorted every round.
func (ws *Workspace) KShortest(t *topo.Topology, o, d topo.NodeID, k int, opts Options) []topo.Path {
	if k <= 0 {
		return nil
	}
	first, ok := ws.ShortestPath(t, o, d, opts)
	if !ok || first.Empty() {
		return nil
	}
	paths := []topo.Path{first}
	var cands candHeap
	seq := 0
	seen := map[string]bool{first.Key(): true}

	// Dominance pruning (goal-directed engines only): a spur query whose
	// root weight plus an admissible lower bound on the spur's remaining
	// distance provably exceeds the r-th lightest pending candidate —
	// where r is the number of paths still to emit — can never produce a
	// popped candidate, so the query is skipped outright. The skipped
	// candidates are exactly ones the reference engine pushes but never
	// pops, and seq tie-breaking is relative, so the emitted paths and
	// their order are untouched.
	prune := opts.Engine != EngineReference && opts.latencyBounded()
	var lm *Landmarks
	if prune {
		lm = ws.ensureLM(t)
		prune = lm.Count() > 0
	}
	w := opts.weight()
	var boundScratch []float64

	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := prev.Nodes(t)
		// The per-round prune bound. Candidates pushed later in the
		// round only tighten the true bound, so computing it once at
		// round start is conservative.
		bound := math.Inf(1)
		if prune {
			if r := k - len(paths); len(cands) >= r {
				boundScratch = boundScratch[:0]
				for j := range cands {
					boundScratch = append(boundScratch, cands[j].w)
				}
				sort.Float64s(boundScratch)
				bound = boundScratch[r-1]
			}
		}
		margin := 1e-9 * (1 + bound)
		rootW := 0.0
		// Spur from each node of the previous path.
		for i := 0; i < len(prev.Arcs); i++ {
			spurNode := prevNodes[i]
			if i > 0 {
				rootW += w(t.Arc(prev.Arcs[i-1]))
			}
			if !math.IsInf(bound, 1) && rootW+targetBound(t, lm, spurNode, d) > bound+margin {
				continue
			}
			rootArcs := prev.Arcs[:i]
			banned := map[topo.ArcID]bool{}
			// Ban the next arc of every accepted path sharing this root.
			for _, p := range paths {
				if len(p.Arcs) > i && sameArcs(p.Arcs[:i], rootArcs) {
					banned[p.Arcs[i]] = true
				}
			}
			// Ban revisiting root nodes.
			rootNodes := map[topo.NodeID]bool{}
			for _, n := range prevNodes[:i+1] {
				rootNodes[n] = true
			}
			delete(rootNodes, spurNode)
			sub := opts
			parentAvoid := opts.Avoid
			sub.Avoid = func(a topo.Arc) bool {
				if parentAvoid != nil && parentAvoid(a) {
					return true
				}
				return banned[a.ID] || rootNodes[a.To]
			}
			spur, ok := ws.ShortestPath(t, spurNode, d, sub)
			if !ok || spur.Empty() {
				continue
			}
			full := topo.Path{Arcs: append(append(make([]topo.ArcID, 0, i+len(spur.Arcs)), rootArcs...), spur.Arcs...)}
			if full.Check(t) != nil {
				continue
			}
			key := full.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			cands.push(kCand{p: full, w: PathWeight(t, full, opts), seq: seq})
			seq++
		}
		if len(cands) == 0 {
			break
		}
		paths = append(paths, cands.pop().p)
	}
	return paths
}

func sameArcs(a, b []topo.ArcID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ECMPPaths enumerates equal-cost shortest paths from o to d (up to
// maxPaths, default 16), the standard ECMP baseline of Figure 4.
func ECMPPaths(t *topo.Topology, o, d topo.NodeID, maxPaths int, opts Options) []topo.Path {
	ws := wsPool.Get().(*Workspace)
	out := ws.ECMPPaths(t, o, d, maxPaths, opts)
	wsPool.Put(ws)
	return out
}

// ECMPPaths enumerates equal-cost shortest paths using the workspace's
// label arrays directly, without materializing a Tree.
func (ws *Workspace) ECMPPaths(t *topo.Topology, o, d topo.NodeID, maxPaths int, opts Options) []topo.Path {
	if maxPaths <= 0 {
		maxPaths = 16
	}
	if o == d {
		return nil
	}
	ws.run(t, o, opts, -1)
	if math.IsInf(ws.distAt(d), 1) {
		return nil
	}
	w := opts.weight()
	const eps = 1e-12
	// DFS backwards from d along arcs on some shortest path.
	var out []topo.Path
	var stack []topo.ArcID
	var dfs func(n topo.NodeID)
	dfs = func(n topo.NodeID) {
		if len(out) >= maxPaths {
			return
		}
		if n == o {
			arcs := make([]topo.ArcID, len(stack))
			for i := range stack {
				arcs[i] = stack[len(stack)-1-i]
			}
			out = append(out, topo.Path{Arcs: arcs})
			return
		}
		dn := ws.distAt(n)
		for _, aid := range t.In(n) {
			a := t.Arc(aid)
			if !opts.usable(t, a) {
				continue
			}
			if t.Node(a.From).Kind == topo.KindHost && a.From != o {
				continue
			}
			wt := w(a)
			if math.IsInf(wt, 1) {
				continue
			}
			if math.Abs(ws.distAt(a.From)+wt-dn) <= eps*(1+dn) {
				stack = append(stack, aid)
				dfs(a.From)
				stack = stack[:len(stack)-1]
			}
		}
	}
	dfs(d)
	return out
}

// HashFlow deterministically selects one of n paths for a flow key, the
// way ECMP hashes five-tuples onto next hops.
func HashFlow(o, d topo.NodeID, flowID, n int) int {
	if n <= 0 {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, v := range []uint64{uint64(o), uint64(d), uint64(flowID)} {
		h ^= v
		h *= 1099511628211
	}
	return int(h % uint64(n))
}
