package spf

import (
	"math"
	"sync"

	"response/internal/topo"
)

// Landmarks is an ALT (A*, landmarks, triangle inequality) preprocessing
// table: latency distances from and to a small set of landmark nodes,
// computed once per topology on the plain (unrestricted) graph. The
// triangle inequality over these tables yields admissible lower bounds
// on the latency distance between any node pair.
//
// Bounds are valid for any search whose effective arc weight is
// everywhere ≥ the arc latency (Options.LatencyBound documents which
// searches qualify): a lower bound under a smaller weight is still a
// lower bound under the larger one. Searches under Active/Avoid
// restrictions only remove arcs, which can only increase true
// distances, so the bounds remain admissible there too.
type Landmarks struct {
	nodes []topo.NodeID // chosen landmark nodes
	fwd   [][]float64   // fwd[l][v] = dist(landmark l → v) on the plain graph
	bwd   [][]float64   // bwd[l][v] = dist(v → landmark l) on the plain graph
}

// hScale shrinks every ALT bound by one ulp-scale factor so that
// float-level noise in the triangle inequality (the tables and the
// search accumulate rounding differently) cannot push a bound above the
// true distance. Scaling a consistent heuristic by a constant ≤ 1
// preserves consistency.
const hScale = 1 - 1e-9

// defaultLandmarks is the landmark budget; small graphs take fewer
// (diminishing returns, and selection saturates once every candidate is
// a landmark).
const defaultLandmarks = 8

// landmarkRegistry caches landmark tables per topology fingerprint so
// concurrent workspaces planning the same topology share one
// preprocessing pass.
var landmarkRegistry struct {
	sync.Mutex
	m map[uint64]*Landmarks
}

// LandmarksFor returns the landmark table for t, building and caching
// it on first use. Safe for concurrent use.
func LandmarksFor(t *topo.Topology) *Landmarks {
	fp := t.Fingerprint()
	landmarkRegistry.Lock()
	defer landmarkRegistry.Unlock()
	if lm, ok := landmarkRegistry.m[fp]; ok {
		return lm
	}
	lm := buildLandmarks(t, defaultLandmarks)
	if landmarkRegistry.m == nil {
		landmarkRegistry.m = make(map[uint64]*Landmarks)
	}
	landmarkRegistry.m[fp] = lm
	return lm
}

// buildLandmarks selects n landmarks by farthest-point selection among
// non-host nodes and fills their forward/backward distance tables. The
// selection Dijkstras double as the forward tables, so preprocessing
// costs exactly 2n single-source runs.
func buildLandmarks(t *topo.Topology, n int) *Landmarks {
	var cands []topo.NodeID
	for _, nd := range t.Nodes() {
		if nd.Kind != topo.KindHost {
			cands = append(cands, nd.ID)
		}
	}
	if len(cands) == 0 {
		return &Landmarks{}
	}
	if len(cands) < 24 {
		n = 4
	}
	if n > len(cands) {
		n = len(cands)
	}
	lm := &Landmarks{}
	ws := NewWorkspace()
	// minDist[v] = distance from v to its nearest chosen landmark
	// (forward direction), used by the farthest-selection rule.
	minDist := make([]float64, t.NumNodes())
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	root := cands[0] // lowest-ID non-host: Nodes() is ID-ordered
	next := root
	for len(lm.nodes) < n {
		l := next
		ws.run(t, l, Options{}, -1)
		row := make([]float64, t.NumNodes())
		for v := 0; v < t.NumNodes(); v++ {
			row[v] = ws.distAt(topo.NodeID(v))
		}
		lm.nodes = append(lm.nodes, l)
		lm.fwd = append(lm.fwd, row)
		// Update nearest-landmark distances and pick the farthest
		// candidate as the next landmark (ties: lowest ID).
		best := math.Inf(-1)
		next = -1
		for _, c := range cands {
			if row[c] < minDist[c] {
				minDist[c] = row[c]
			}
			d := minDist[c]
			if math.IsInf(d, 1) {
				continue // disconnected from every landmark; skip
			}
			if d > best {
				best = d
				next = c
			}
		}
		if next < 0 || best <= 0 {
			break // every candidate is a landmark (or unreachable)
		}
	}
	// Backward tables: reverse Dijkstra from each landmark over In().
	for _, l := range lm.nodes {
		ws.runReverse(t, l, Options{})
		row := make([]float64, t.NumNodes())
		for v := 0; v < t.NumNodes(); v++ {
			row[v] = ws.distAt(topo.NodeID(v))
		}
		lm.bwd = append(lm.bwd, row)
	}
	return lm
}

// Count returns the number of landmarks in the table.
func (lm *Landmarks) Count() int { return len(lm.nodes) }

// Subset returns a view restricted to the first k landmarks (used by
// the monotonicity metamorphic tests: fewer landmarks can only loosen
// bounds).
func (lm *Landmarks) Subset(k int) *Landmarks {
	if k >= len(lm.nodes) {
		return lm
	}
	if k < 0 {
		k = 0
	}
	return &Landmarks{nodes: lm.nodes[:k], fwd: lm.fwd[:k], bwd: lm.bwd[:k]}
}

// HBound returns an admissible lower bound on the latency distance from
// v to target: the best of the two triangle inequalities over every
// landmark, shrunk by hScale. Returns 0 when no landmark gives a finite
// bound. As a max of per-landmark consistent potentials it is itself
// consistent.
func (lm *Landmarks) HBound(v, target topo.NodeID) float64 {
	var h float64
	for l := range lm.nodes {
		// dist(v,t) ≥ dist(v,L) − dist(t,L)  [backward table]
		if bv, bt := lm.bwd[l][v], lm.bwd[l][target]; !math.IsInf(bv, 1) && !math.IsInf(bt, 1) {
			if b := bv - bt; b > h {
				h = b
			}
		}
		// dist(v,t) ≥ dist(L,t) − dist(L,v)  [forward table]
		if fv, ft := lm.fwd[l][v], lm.fwd[l][target]; !math.IsInf(fv, 1) && !math.IsInf(ft, 1) {
			if b := ft - fv; b > h {
				h = b
			}
		}
	}
	return h * hScale
}
