package spf

import (
	"math"
	"testing"
	"testing/quick"

	"response/internal/topo"
)

// grid builds a 3x3 grid of routers with uniform 10 Mbps / 1 ms links.
func grid(t *testing.T) (*topo.Topology, [9]topo.NodeID) {
	t.Helper()
	tp := topo.New("grid3")
	var n [9]topo.NodeID
	for i := 0; i < 9; i++ {
		n[i] = tp.AddNode(string(rune('a'+i)), topo.KindRouter)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			i := r*3 + c
			if c < 2 {
				tp.AddLink(n[i], n[i+1], 10*topo.Mbps, 0.001)
			}
			if r < 2 {
				tp.AddLink(n[i], n[i+3], 10*topo.Mbps, 0.001)
			}
		}
	}
	return tp, n
}

func TestShortestPathLatency(t *testing.T) {
	tp, n := grid(t)
	p, ok := ShortestPath(tp, n[0], n[8], Options{})
	if !ok {
		t.Fatal("no path")
	}
	if p.Len() != 4 {
		t.Errorf("corner-to-corner hops = %d, want 4", p.Len())
	}
	if err := p.Check(tp); err != nil {
		t.Error(err)
	}
	if p.Origin(tp) != n[0] || p.Destination(tp) != n[8] {
		t.Error("endpoints wrong")
	}
}

func TestShortestPathSameNode(t *testing.T) {
	tp, n := grid(t)
	p, ok := ShortestPath(tp, n[0], n[0], Options{})
	if !ok || !p.Empty() {
		t.Error("self path should be empty and ok")
	}
}

func TestInvCapPrefersFatPipes(t *testing.T) {
	// A->B direct on thin link, A->C->B on fat links. InvCap picks the
	// detour; latency picks the direct hop.
	tp := topo.New("invcap")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.001)
	tp.AddLink(a, c, 1*topo.Gbps, 0.001)
	tp.AddLink(c, b, 1*topo.Gbps, 0.001)
	lat, _ := ShortestPath(tp, a, b, Options{Weight: Latency()})
	inv, _ := ShortestPath(tp, a, b, Options{Weight: InvCap()})
	if lat.Len() != 1 {
		t.Errorf("latency path hops = %d, want 1", lat.Len())
	}
	if inv.Len() != 2 {
		t.Errorf("InvCap path hops = %d, want 2", inv.Len())
	}
}

func TestHopsWeight(t *testing.T) {
	tp, n := grid(t)
	p, _ := ShortestPath(tp, n[0], n[2], Options{Weight: Hops()})
	if p.Len() != 2 {
		t.Errorf("hops = %d, want 2", p.Len())
	}
}

func TestActiveSetRestriction(t *testing.T) {
	tp, n := grid(t)
	active := topo.AllOn(tp)
	// Cut the top row after a: path must detour.
	ab, _ := tp.ArcBetween(n[0], n[1])
	active.Link[tp.Arc(ab).Link] = false
	p, ok := ShortestPath(tp, n[0], n[2], Options{Active: active})
	if !ok {
		t.Fatal("no path with detour available")
	}
	if p.Len() <= 2 {
		t.Errorf("detour hops = %d, want > 2", p.Len())
	}
	// Power everything off: unreachable.
	off := topo.AllOff(tp)
	if _, ok := ShortestPath(tp, n[0], n[2], Options{Active: off}); ok {
		t.Error("path found on powered-off network")
	}
}

func TestAvoidPredicate(t *testing.T) {
	tp, n := grid(t)
	p, ok := ShortestPath(tp, n[0], n[2], Options{
		Avoid: func(a topo.Arc) bool { return a.To == n[1] || a.From == n[1] },
	})
	if !ok {
		t.Fatal("no avoiding path")
	}
	if p.UsesNode(tp, n[1]) {
		t.Error("avoided node used")
	}
}

func TestHostsDoNotTransit(t *testing.T) {
	// A - H - B where H is a host, plus a long router detour A-R-B.
	tp := topo.New("host-transit")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	h := tp.AddNode("H", topo.KindHost)
	r := tp.AddNode("R", topo.KindRouter)
	tp.AddLink(a, h, topo.Gbps, 0.001)
	tp.AddLink(h, b, topo.Gbps, 0.001)
	tp.AddLink(a, r, topo.Mbps, 0.010)
	tp.AddLink(r, b, topo.Mbps, 0.010)
	p, ok := ShortestPath(tp, a, b, Options{})
	if !ok {
		t.Fatal("no path")
	}
	if p.UsesNode(tp, h) {
		t.Error("path transits a host")
	}
	// But a host can be an endpoint.
	p, ok = ShortestPath(tp, a, h, Options{})
	if !ok || p.Destination(tp) != h {
		t.Error("host endpoint unreachable")
	}
	// And a host can originate.
	p, ok = ShortestPath(tp, h, b, Options{})
	if !ok || p.Origin(tp) != h {
		t.Error("host origin failed")
	}
}

func TestKShortestProperties(t *testing.T) {
	tp, n := grid(t)
	paths := KShortest(tp, n[0], n[8], 6, Options{})
	if len(paths) < 4 {
		t.Fatalf("got %d paths", len(paths))
	}
	seen := map[string]bool{}
	prev := -1.0
	for i, p := range paths {
		if err := p.Check(tp); err != nil {
			t.Errorf("path %d: %v", i, err)
		}
		if p.Origin(tp) != n[0] || p.Destination(tp) != n[8] {
			t.Errorf("path %d endpoints wrong", i)
		}
		if seen[p.Key()] {
			t.Errorf("duplicate path %d", i)
		}
		seen[p.Key()] = true
		w := PathWeight(tp, p, Options{})
		if w < prev-1e-12 {
			t.Errorf("paths not sorted: %v after %v", w, prev)
		}
		prev = w
	}
}

func TestKShortestOnePathGraph(t *testing.T) {
	tp := topo.New("line2")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	tp.AddLink(a, b, topo.Mbps, 0.001)
	paths := KShortest(tp, a, b, 5, Options{})
	if len(paths) != 1 {
		t.Errorf("paths = %d, want 1", len(paths))
	}
	if KShortest(tp, a, b, 0, Options{}) != nil {
		t.Error("k=0 should return nil")
	}
}

func TestECMPEnumeratesEqualCost(t *testing.T) {
	tp, n := grid(t)
	// Corner to corner in a grid: C(4,2)=6 equal-hop paths.
	paths := ECMPPaths(tp, n[0], n[8], 16, Options{Weight: Hops()})
	if len(paths) != 6 {
		t.Fatalf("ECMP paths = %d, want 6", len(paths))
	}
	for _, p := range paths {
		if p.Len() != 4 {
			t.Errorf("non-shortest ECMP path of %d hops", p.Len())
		}
		if err := p.Check(tp); err != nil {
			t.Error(err)
		}
	}
	// Cap respected.
	if got := len(ECMPPaths(tp, n[0], n[8], 3, Options{Weight: Hops()})); got != 3 {
		t.Errorf("capped ECMP = %d, want 3", got)
	}
}

func TestHashFlowDeterministicAndBounded(t *testing.T) {
	for flows := 0; flows < 100; flows++ {
		i := HashFlow(1, 2, flows, 6)
		j := HashFlow(1, 2, flows, 6)
		if i != j {
			t.Fatal("hash not deterministic")
		}
		if i < 0 || i >= 6 {
			t.Fatalf("hash out of range: %d", i)
		}
	}
	if HashFlow(1, 2, 3, 0) != 0 {
		t.Error("n=0 should return 0")
	}
}

// Property: the shortest path weight is minimal among all simple paths
// found by exhaustive DFS on small random graphs.
func TestShortestIsMinimalProperty(t *testing.T) {
	f := func(seed uint32) bool {
		tp := randomGraph(int64(seed))
		if tp.NumNodes() < 2 {
			return true
		}
		o, d := topo.NodeID(0), topo.NodeID(tp.NumNodes()-1)
		got, ok := ShortestPath(tp, o, d, Options{})
		best := dfsBest(tp, o, d)
		if !ok {
			return math.IsInf(best, 1)
		}
		return math.Abs(PathWeight(tp, got, Options{})-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a connected-ish random topology of 4-7 routers.
func randomGraph(seed int64) *topo.Topology {
	tp := topo.New("rand")
	rng := seed
	next := func(n int64) int64 {
		rng = (rng*6364136223846793005 + 1442695040888963407)
		v := rng % n
		if v < 0 {
			v += n
		}
		return v
	}
	nodes := int(4 + next(4))
	ids := make([]topo.NodeID, nodes)
	for i := range ids {
		ids[i] = tp.AddNode(string(rune('A'+i)), topo.KindRouter)
	}
	// Spanning chain plus random chords.
	for i := 1; i < nodes; i++ {
		tp.AddLink(ids[i-1], ids[i], topo.Mbps, float64(1+next(5))/1000)
	}
	chords := int(next(int64(nodes)))
	for c := 0; c < chords; c++ {
		a := int(next(int64(nodes)))
		b := int(next(int64(nodes)))
		if a == b {
			continue
		}
		if _, dup := tp.ArcBetween(ids[a], ids[b]); dup {
			continue
		}
		tp.AddLink(ids[a], ids[b], topo.Mbps, float64(1+next(5))/1000)
	}
	return tp
}

// dfsBest exhaustively finds the min-latency simple path weight.
func dfsBest(tp *topo.Topology, o, d topo.NodeID) float64 {
	best := math.Inf(1)
	seen := make([]bool, tp.NumNodes())
	var dfs func(n topo.NodeID, w float64)
	dfs = func(n topo.NodeID, w float64) {
		if n == d {
			if w < best {
				best = w
			}
			return
		}
		seen[n] = true
		for _, aid := range tp.Out(n) {
			a := tp.Arc(aid)
			if !seen[a.To] {
				dfs(a.To, w+a.Latency)
			}
		}
		seen[n] = false
	}
	dfs(o, 0)
	return best
}
