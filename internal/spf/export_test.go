package spf

import "response/internal/topo"

// TargetBoundForTest exposes the ALT heuristic to the external test
// package for the admissibility and monotonicity property tests.
func TargetBoundForTest(t *topo.Topology, lm *Landmarks, v, d topo.NodeID) float64 {
	return targetBound(t, lm, v, d)
}
