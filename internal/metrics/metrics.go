// Package metrics provides the runtime's zero-allocation observability
// counters and a Prometheus text-format renderer over them.
//
// A Runtime is one tenant's bundle of counters, threaded through
// scenario.Config into the TE controller, the simulator and the
// lifecycle manager exactly like the *trace.EventWriter flight
// recorder: every hot-path hook is a nil check plus an atomic add, so
// instrumentation never allocates and the steady-state allocs/op
// pinned by the te/sim benchmarks are unchanged whether metrics are on
// or off.
//
// Counter, FloatCounter and Gauge are plain atomics — safe to read
// from the /metrics scrape goroutine while the owning loop keeps
// writing. Rendering (WritePrometheus) walks a static descriptor table
// metric-major so every sample family gets one HELP/TYPE header and
// one labeled sample per tenant, in registration order.
package metrics

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 (seconds of swap
// time, wake latency, …), updated with a CAS loop.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current sum.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-write-wins float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Runtime is one control loop's counter bundle. All fields are safe
// for concurrent use; a nil *Runtime is a valid "metrics off" sink —
// instrumented code checks the pointer once and skips the adds.
type Runtime struct {
	// TE controller (span "te").
	ProbeRounds  Counter // full probe sweeps over managed flows
	Shifts       Counter // always-on shift-up/down decisions
	WakeRequests Counter // on-demand level wake requests
	Evacuations  Counter // flows moved off a failed or overloaded link
	Retargets    Counter // pending wake retargeted mid-flight
	Handoffs     Counter // demand handed to a woken level
	Retires      Counter // drained levels retired

	// Simulator (span "sim").
	LinkFailures   Counter      // FailLink transitions
	LinkRepairs    Counter      // RepairLink transitions
	LinkSleeps     Counter      // idle links entering Sleeping
	LinkWakes      Counter      // sleeping links starting to wake
	WakeLatencySec FloatCounter // summed sleep→forwarding latency
	AllocEpochs    Counter      // incremental allocator passes
	AllocFlows     Counter      // flows touched across allocator passes

	// Lifecycle manager (span "lifecycle").
	Checks          Counter      // deviation checks
	Triggers        Counter      // trigger policy firings
	Replans         Counter      // replan attempts started
	ReplanFailed    Counter      // failed cycles (error/timeout/panic/reject)
	ReplanTimeouts  Counter      // ... of which blew the deadline
	ReplanPanics    Counter      // ... of which panicked
	RejectedInvalid Counter      // staged plans failing validation
	RejectedPower   Counter      // staged plans failing the power gate
	Unchanged       Counter      // replans fingerprint-equal to live
	Superseded      Counter      // stale results discarded after a swap
	Retries         Counter      // backoff retries scheduled
	Swaps           Counter      // hot swaps begun
	SwapsDone       Counter      // hot swaps completed
	MigratedFlows   Counter      // flows handed over across all swaps
	SwapDurationSec FloatCounter // summed sim-time swap→swap-done
	DegradedEntered Counter      // entries into the pinned all-on state
	DegradedExited  Counter      // recoveries out of it
	DegradedSec     FloatCounter // summed sim time spent degraded
	SimSeconds      Gauge        // sim clock at the last lifecycle check
}
