package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Labeled pairs a Runtime with its tenant label for rendering. An
// empty Tenant renders samples without a label set (single-process
// tools like response-sim).
type Labeled struct {
	Tenant  string
	Runtime *Runtime
}

// descriptor describes one sample family: Prometheus name, HELP text,
// TYPE and the accessor pulling the value out of a Runtime.
type descriptor struct {
	name string
	help string
	typ  string // "counter" or "gauge"
	get  func(*Runtime) float64
}

func ctr(c *Counter) float64       { return float64(c.Value()) }
func fctr(c *FloatCounter) float64 { return c.Value() }

// descriptors is the full metric inventory, rendered in this order.
var descriptors = []descriptor{
	{"response_te_probe_rounds_total", "Full TE probe sweeps over managed flows.", "counter", func(r *Runtime) float64 { return ctr(&r.ProbeRounds) }},
	{"response_te_shifts_total", "Always-on shift-up/down decisions.", "counter", func(r *Runtime) float64 { return ctr(&r.Shifts) }},
	{"response_te_wake_requests_total", "On-demand level wake requests.", "counter", func(r *Runtime) float64 { return ctr(&r.WakeRequests) }},
	{"response_te_evacuations_total", "Flows moved off a failed or overloaded link.", "counter", func(r *Runtime) float64 { return ctr(&r.Evacuations) }},
	{"response_te_retargets_total", "Pending wakes retargeted mid-flight.", "counter", func(r *Runtime) float64 { return ctr(&r.Retargets) }},
	{"response_te_handoffs_total", "Demand handoffs to a woken level.", "counter", func(r *Runtime) float64 { return ctr(&r.Handoffs) }},
	{"response_te_retires_total", "Drained levels retired.", "counter", func(r *Runtime) float64 { return ctr(&r.Retires) }},
	{"response_sim_link_failures_total", "Simulated link failures.", "counter", func(r *Runtime) float64 { return ctr(&r.LinkFailures) }},
	{"response_sim_link_repairs_total", "Simulated link repairs.", "counter", func(r *Runtime) float64 { return ctr(&r.LinkRepairs) }},
	{"response_sim_link_sleeps_total", "Idle links entering the Sleeping phase.", "counter", func(r *Runtime) float64 { return ctr(&r.LinkSleeps) }},
	{"response_sim_link_wakes_total", "Sleeping links starting to wake.", "counter", func(r *Runtime) float64 { return ctr(&r.LinkWakes) }},
	{"response_sim_wake_latency_seconds_total", "Summed sleep-to-forwarding wake latency.", "counter", func(r *Runtime) float64 { return fctr(&r.WakeLatencySec) }},
	{"response_sim_alloc_epochs_total", "Incremental max-min allocator passes.", "counter", func(r *Runtime) float64 { return ctr(&r.AllocEpochs) }},
	{"response_sim_alloc_flows_total", "Flows touched across allocator passes.", "counter", func(r *Runtime) float64 { return ctr(&r.AllocFlows) }},
	{"response_lifecycle_checks_total", "Deviation checks.", "counter", func(r *Runtime) float64 { return ctr(&r.Checks) }},
	{"response_lifecycle_triggers_total", "Trigger policy firings.", "counter", func(r *Runtime) float64 { return ctr(&r.Triggers) }},
	{"response_lifecycle_replans_total", "Replan attempts started.", "counter", func(r *Runtime) float64 { return ctr(&r.Replans) }},
	{"response_lifecycle_replans_failed_total", "Failed replan cycles (error, timeout, panic or rejection).", "counter", func(r *Runtime) float64 { return ctr(&r.ReplanFailed) }},
	{"response_lifecycle_replan_timeouts_total", "Replan cycles that blew the deadline.", "counter", func(r *Runtime) float64 { return ctr(&r.ReplanTimeouts) }},
	{"response_lifecycle_replan_panics_total", "Replan cycles that panicked.", "counter", func(r *Runtime) float64 { return ctr(&r.ReplanPanics) }},
	{"response_lifecycle_rejected_invalid_total", "Staged plans rejected by validation.", "counter", func(r *Runtime) float64 { return ctr(&r.RejectedInvalid) }},
	{"response_lifecycle_rejected_power_total", "Staged plans rejected by the power gate.", "counter", func(r *Runtime) float64 { return ctr(&r.RejectedPower) }},
	{"response_lifecycle_unchanged_total", "Replans fingerprint-equal to the live plan.", "counter", func(r *Runtime) float64 { return ctr(&r.Unchanged) }},
	{"response_lifecycle_superseded_total", "Stale replan results discarded after a swap.", "counter", func(r *Runtime) float64 { return ctr(&r.Superseded) }},
	{"response_lifecycle_retries_total", "Backoff retries scheduled.", "counter", func(r *Runtime) float64 { return ctr(&r.Retries) }},
	{"response_lifecycle_swaps_total", "Hot swaps begun.", "counter", func(r *Runtime) float64 { return ctr(&r.Swaps) }},
	{"response_lifecycle_swaps_done_total", "Hot swaps completed.", "counter", func(r *Runtime) float64 { return ctr(&r.SwapsDone) }},
	{"response_lifecycle_migrated_flows_total", "Flows handed over across all swaps.", "counter", func(r *Runtime) float64 { return ctr(&r.MigratedFlows) }},
	{"response_lifecycle_swap_duration_seconds_total", "Summed sim time from swap begin to swap done.", "counter", func(r *Runtime) float64 { return fctr(&r.SwapDurationSec) }},
	{"response_lifecycle_degraded_entered_total", "Entries into the pinned all-on degraded state.", "counter", func(r *Runtime) float64 { return ctr(&r.DegradedEntered) }},
	{"response_lifecycle_degraded_exited_total", "Recoveries out of the degraded state.", "counter", func(r *Runtime) float64 { return ctr(&r.DegradedExited) }},
	{"response_lifecycle_degraded_seconds_total", "Summed sim time spent degraded.", "counter", func(r *Runtime) float64 { return fctr(&r.DegradedSec) }},
	{"response_lifecycle_sim_seconds", "Sim clock at the last lifecycle check.", "gauge", func(r *Runtime) float64 { return r.SimSeconds.Value() }},
}

// WritePrometheus renders every runtime in Prometheus text exposition
// format (version 0.0.4), metric-major: one HELP/TYPE header per
// family, then one sample per labeled runtime, in the given order. Nil
// runtimes are skipped. The scrape path may allocate; only the
// increment path is zero-alloc.
func WritePrometheus(w io.Writer, sets []Labeled) error {
	bw := bufio.NewWriter(w)
	for _, d := range descriptors {
		bw.WriteString("# HELP ")
		bw.WriteString(d.name)
		bw.WriteByte(' ')
		bw.WriteString(d.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(d.name)
		bw.WriteByte(' ')
		bw.WriteString(d.typ)
		bw.WriteByte('\n')
		for _, s := range sets {
			if s.Runtime == nil {
				continue
			}
			bw.WriteString(d.name)
			if s.Tenant != "" {
				bw.WriteString(`{tenant="`)
				bw.WriteString(escapeLabel(s.Tenant))
				bw.WriteString(`"}`)
			}
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(d.get(s.Runtime), 'g', -1, 64))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
