package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestCountersZeroAlloc: the increment path must not allocate — these
// sit on the te/sim hot paths whose allocs/op are pinned by benchmarks.
func TestCountersZeroAlloc(t *testing.T) {
	var r Runtime
	avg := testing.AllocsPerRun(1000, func() {
		r.Shifts.Inc()
		r.MigratedFlows.Add(3)
		r.SwapDurationSec.Add(0.25)
		r.SimSeconds.Set(123.5)
	})
	if avg != 0 {
		t.Errorf("counter ops allocate %.2f per run, want 0", avg)
	}
}

// TestFloatCounterConcurrent: the CAS loop must not lose adds.
func TestFloatCounterConcurrent(t *testing.T) {
	var c FloatCounter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Errorf("FloatCounter = %g, want 4000", got)
	}
}

// TestWritePrometheus: exposition format shape — HELP/TYPE per family,
// tenant labels, escaping, nil runtimes skipped.
func TestWritePrometheus(t *testing.T) {
	a, b := &Runtime{}, &Runtime{}
	a.Evacuations.Add(7)
	b.Evacuations.Add(2)
	a.SwapDurationSec.Add(1.5)
	a.SimSeconds.Set(3600)

	var buf bytes.Buffer
	err := WritePrometheus(&buf, []Labeled{
		{Tenant: "edge1", Runtime: a},
		{Tenant: `we"ird`, Runtime: b},
		{Tenant: "gone", Runtime: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP response_te_evacuations_total ",
		"# TYPE response_te_evacuations_total counter",
		`response_te_evacuations_total{tenant="edge1"} 7`,
		`response_te_evacuations_total{tenant="we\"ird"} 2`,
		`response_lifecycle_swap_duration_seconds_total{tenant="edge1"} 1.5`,
		"# TYPE response_lifecycle_sim_seconds gauge",
		`response_lifecycle_sim_seconds{tenant="edge1"} 3600`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, "gone") {
		t.Error("nil runtime rendered")
	}

	// Unlabeled rendering (single-process tools).
	buf.Reset()
	if err := WritePrometheus(&buf, []Labeled{{Runtime: a}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "response_te_evacuations_total 7\n") {
		t.Error("unlabeled sample missing")
	}

	// Every family header appears exactly once.
	for _, d := range descriptors {
		if n := strings.Count(out, "# TYPE "+d.name+" "); n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", d.name, n)
		}
	}
}
