// Package lp is a small, self-contained linear-programming toolkit: a
// two-phase dense primal simplex solver plus branch-and-bound for
// integer (binary) variables.
//
// It substitutes for CPLEX (paper §2.2.2): the energy-aware routing
// formulation of §2.2.1 is a mixed-integer program, and the paper's
// point is precisely that exact solving is slow. This solver handles the
// exact formulation at Figure 3 scale (used in tests to cross-check the
// heuristics in internal/mcf) and LP relaxations for lower bounds.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// VarID indexes a decision variable within a Problem.
type VarID int

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ a_i x_i <= b
	GE            // Σ a_i x_i >= b
	EQ            // Σ a_i x_i == b
)

// Term is one coefficient of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// Constraint is a linear constraint over the problem's variables.
type Constraint struct {
	Terms []Term
	Rel   Rel
	RHS   float64
	Name  string
}

type variable struct {
	name    string
	lo, hi  float64 // hi may be +Inf
	obj     float64
	integer bool
}

// Problem is a minimization program: min c'x subject to linear
// constraints and variable bounds, with optional integrality marks
// consumed by the branch-and-bound driver.
type Problem struct {
	vars []variable
	cons []Constraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar declares a variable with bounds [lo, hi] (hi may be
// math.Inf(1)) and objective coefficient obj; it returns the VarID.
func (p *Problem) AddVar(name string, lo, hi, obj float64) VarID {
	p.vars = append(p.vars, variable{name: name, lo: lo, hi: hi, obj: obj})
	return VarID(len(p.vars) - 1)
}

// AddBinary declares a {0,1} integer variable.
func (p *Problem) AddBinary(name string, obj float64) VarID {
	id := p.AddVar(name, 0, 1, obj)
	p.vars[id].integer = true
	return id
}

// SetInteger marks an existing variable as integer-constrained.
func (p *Problem) SetInteger(v VarID) { p.vars[v].integer = true }

// AddConstraint appends a constraint built from terms.
func (p *Problem) AddConstraint(name string, terms []Term, rel Rel, rhs float64) {
	p.cons = append(p.cons, Constraint{Terms: terms, Rel: rel, RHS: rhs, Name: name})
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints returns the number of constraints.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// VarName returns a variable's name.
func (p *Problem) VarName(v VarID) string { return p.vars[v].name }

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Solution holds a solve result.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // indexed by VarID
}

// Value returns the solution value of v.
func (s Solution) Value(v VarID) float64 { return s.X[v] }

// ErrBadProblem flags structurally invalid input (e.g. lo > hi).
var ErrBadProblem = errors.New("lp: invalid problem")

// validate checks bound sanity.
func (p *Problem) validate() error {
	for i, v := range p.vars {
		if v.lo > v.hi {
			return fmt.Errorf("%w: var %d (%s) has lo %g > hi %g", ErrBadProblem, i, v.name, v.lo, v.hi)
		}
		if math.IsInf(v.lo, -1) {
			return fmt.Errorf("%w: var %d (%s) has unbounded-below domain (unsupported)", ErrBadProblem, i, v.name)
		}
	}
	return nil
}

// Feasible reports whether x satisfies every constraint and bound of p
// within tol. Used by tests as an independent solution certifier.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) != len(p.vars) {
		return false
	}
	for i, v := range p.vars {
		if x[i] < v.lo-tol || x[i] > v.hi+tol {
			return false
		}
	}
	for _, c := range p.cons {
		var s float64
		for _, t := range c.Terms {
			s += t.Coef * x[t.Var]
		}
		switch c.Rel {
		case LE:
			if s > c.RHS+tol {
				return false
			}
		case GE:
			if s < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(s-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// ObjectiveValue evaluates c'x.
func (p *Problem) ObjectiveValue(x []float64) float64 {
	var s float64
	for i, v := range p.vars {
		s += v.obj * x[i]
	}
	return s
}
