package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !p.Feasible(sol.X, 1e-6) {
		t.Fatalf("solution infeasible: %v", sol.X)
	}
	return sol
}

func TestSimpleLP(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
	// Optimum at (2,2): objective -6.
	p := NewProblem()
	x := p.AddVar("x", 0, 3, -1)
	y := p.AddVar("y", 0, 2, -2)
	p.AddConstraint("sum", []Term{{x, 1}, {y, 1}}, LE, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+6) > 1e-6 {
		t.Errorf("objective = %v, want -6", sol.Objective)
	}
	if math.Abs(sol.Value(x)-2) > 1e-6 || math.Abs(sol.Value(y)-2) > 1e-6 {
		t.Errorf("x,y = %v,%v", sol.Value(x), sol.Value(y))
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x + y = 5, x <= 2 → x=2? No: both cost 1, any split
	// gives 5. Check objective only.
	p := NewProblem()
	x := p.AddVar("x", 0, 2, 1)
	y := p.AddVar("y", 0, math.Inf(1), 1)
	p.AddConstraint("eq", []Term{{x, 1}, {y, 1}}, EQ, 5)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-5) > 1e-6 {
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 4, x >= 1. Optimum (1,3) = 9.
	p := NewProblem()
	x := p.AddVar("x", 1, math.Inf(1), 3)
	y := p.AddVar("y", 0, math.Inf(1), 2)
	p.AddConstraint("cover", []Term{{x, 1}, {y, 1}}, GE, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-9) > 1e-6 {
		t.Errorf("objective = %v, want 9", sol.Objective)
	}
}

func TestLowerBoundShift(t *testing.T) {
	// Variables with non-zero lower bounds.
	// min x + y s.t. x + y >= 7, x in [2,10], y in [3,10] → 7.
	p := NewProblem()
	x := p.AddVar("x", 2, 10, 1)
	y := p.AddVar("y", 3, 10, 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 7)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-7) > 1e-6 {
		t.Errorf("objective = %v, want 7", sol.Objective)
	}
	if sol.Value(x) < 2-1e-9 || sol.Value(y) < 3-1e-9 {
		t.Error("bounds violated")
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, 1, 1)
	p.AddConstraint("c", []Term{{x, 1}}, GE, 2)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, math.Inf(1), -1)
	p.AddConstraint("c", []Term{{x, 1}}, GE, 0)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestBadBounds(t *testing.T) {
	p := NewProblem()
	p.AddVar("x", 5, 1, 0)
	if _, err := Solve(p); err == nil {
		t.Error("lo > hi should error")
	}
	q := NewProblem()
	q.AddVar("y", math.Inf(-1), 0, 1)
	if _, err := Solve(q); err == nil {
		t.Error("unbounded-below should error")
	}
}

func TestDegenerateDiet(t *testing.T) {
	// Classic diet-style LP with redundant constraints.
	p := NewProblem()
	x := p.AddVar("x", 0, math.Inf(1), 2)
	y := p.AddVar("y", 0, math.Inf(1), 3)
	p.AddConstraint("p1", []Term{{x, 1}, {y, 2}}, GE, 4)
	p.AddConstraint("p2", []Term{{x, 2}, {y, 1}}, GE, 4)
	p.AddConstraint("redundant", []Term{{x, 3}, {y, 3}}, GE, 6)
	sol := solveOK(t, p)
	// Optimum at x=y=4/3: 2*(4/3)+3*(4/3) = 20/3.
	if math.Abs(sol.Objective-20.0/3) > 1e-6 {
		t.Errorf("objective = %v, want %v", sol.Objective, 20.0/3)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 with min x+y → (0,1).
	p := NewProblem()
	x := p.AddVar("x", 0, 10, 1)
	y := p.AddVar("y", 0, 10, 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, -1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestMIPKnapsack(t *testing.T) {
	// max 10a+13b+7c st 3a+4b+2c <= 6 (binary) → min negated.
	// Brute force best: a+c (weight 5, value 17); b+c (6, 20) ✓.
	p := NewProblem()
	a := p.AddBinary("a", -10)
	b := p.AddBinary("b", -13)
	c := p.AddBinary("c", -7)
	p.AddConstraint("w", []Term{{a, 3}, {b, 4}, {c, 2}}, LE, 6)
	res, err := SolveMIP(p, MIPOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective+20) > 1e-6 {
		t.Errorf("objective = %v, want -20", res.Objective)
	}
	if res.X[a] > 0.5 || res.X[b] < 0.5 || res.X[c] < 0.5 {
		t.Errorf("selection = %v", res.X)
	}
	if !res.Proven {
		t.Error("tiny knapsack should be proven optimal")
	}
}

func TestMIPIntegerRounding(t *testing.T) {
	// LP relaxation fractional: min -x st 2x <= 3, x integer in [0,5] → x=1.
	p := NewProblem()
	x := p.AddVar("x", 0, 5, -1)
	p.SetInteger(x)
	p.AddConstraint("c", []Term{{x, 2}}, LE, 3)
	res, err := SolveMIP(p, MIPOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[x]-1) > 1e-6 {
		t.Errorf("x = %v, want 1", res.X[x])
	}
}

func TestMIPInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddBinary("x", 1)
	y := p.AddBinary("y", 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 3)
	res, err := SolveMIP(p, MIPOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

// Property: MIP objective >= LP relaxation objective (minimization).
func TestMIPDominatesRelaxationProperty(t *testing.T) {
	f := func(seed uint16) bool {
		p, q := randomBinaryPacking(int64(seed))
		lpSol, err := Solve(q)
		if err != nil || lpSol.Status != Optimal {
			return true // skip infeasible randoms
		}
		mip, err := SolveMIP(p, MIPOpts{MaxNodes: 5000})
		if err != nil || mip.Status != Optimal {
			return true
		}
		return mip.Objective >= lpSol.Objective-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: simplex solutions on random covering LPs are feasible and
// no worse than a reference greedy feasible point.
func TestSimplexBeatsGreedyProperty(t *testing.T) {
	f := func(seed uint16) bool {
		p, _ := randomCovering(int64(seed))
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return sol.Status == Infeasible // random coverings are feasible by design
		}
		if !p.Feasible(sol.X, 1e-6) {
			return false
		}
		// All-ones is always feasible for these instances.
		ones := make([]float64, p.NumVars())
		for i := range ones {
			ones[i] = 1
		}
		if !p.Feasible(ones, 1e-6) {
			return true
		}
		return sol.Objective <= p.ObjectiveValue(ones)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomBinaryPacking builds paired MIP/LP-relaxed packing problems.
func randomBinaryPacking(seed int64) (mip, relaxed *Problem) {
	rng := seed
	next := func(n int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := rng % n
		if v < 0 {
			v += n
		}
		return v
	}
	nVars := int(2 + next(4))
	nCons := int(1 + next(3))
	mip = NewProblem()
	relaxed = NewProblem()
	costs := make([]float64, nVars)
	for i := range costs {
		costs[i] = -float64(1 + next(9))
		mip.AddBinary("x", costs[i])
		relaxed.AddVar("x", 0, 1, costs[i])
	}
	for c := 0; c < nCons; c++ {
		var terms []Term
		var sum float64
		for i := 0; i < nVars; i++ {
			w := float64(1 + next(5))
			terms = append(terms, Term{Var: VarID(i), Coef: w})
			sum += w
		}
		rhs := sum * (0.3 + float64(next(5))/10)
		mip.AddConstraint("w", terms, LE, rhs)
		relaxed.AddConstraint("w", terms, LE, rhs)
	}
	return mip, relaxed
}

// randomCovering builds feasible covering LPs (all-ones feasible).
func randomCovering(seed int64) (*Problem, int) {
	rng := seed
	next := func(n int64) int64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		v := rng % n
		if v < 0 {
			v += n
		}
		return v
	}
	nVars := int(2 + next(4))
	nCons := int(1 + next(4))
	p := NewProblem()
	for i := 0; i < nVars; i++ {
		p.AddVar("x", 0, 1, float64(1+next(7)))
	}
	for c := 0; c < nCons; c++ {
		var terms []Term
		var sum float64
		for i := 0; i < nVars; i++ {
			w := float64(next(4))
			if w == 0 {
				continue
			}
			terms = append(terms, Term{Var: VarID(i), Coef: w})
			sum += w
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint("cover", terms, GE, sum*0.5)
	}
	return p, nVars
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}
