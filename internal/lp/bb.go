package lp

import (
	"math"
	"sort"
)

// MIPOpts bounds the branch-and-bound search.
type MIPOpts struct {
	// MaxNodes caps explored nodes (default 100000).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Gap stops early when (upper-lower)/|upper| falls below it
	// (default 0: prove optimality).
	Gap float64
}

func (o *MIPOpts) defaults() {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
}

// MIPResult reports a branch-and-bound outcome.
type MIPResult struct {
	Solution
	// Bound is the best proven lower bound on the optimum.
	Bound float64
	// Nodes is the number of LP relaxations solved.
	Nodes int
	// Proven is true when the search closed the tree (optimality
	// proven rather than node-limited).
	Proven bool
}

type bbNode struct {
	lo, hi []float64 // bound overrides per variable (NaN = inherit)
	bound  float64   // parent LP bound (priority)
}

// SolveMIP runs best-first branch-and-bound over the variables marked
// integer in p.
func SolveMIP(p *Problem, opts MIPOpts) (MIPResult, error) {
	opts.defaults()
	if err := p.validate(); err != nil {
		return MIPResult{Solution: Solution{Status: Infeasible}}, err
	}
	var intVars []VarID
	for i, v := range p.vars {
		if v.integer {
			intVars = append(intVars, VarID(i))
		}
	}
	// Work on a copy whose bounds we mutate per node.
	work := &Problem{vars: append([]variable(nil), p.vars...), cons: p.cons}
	baseLo := make([]float64, len(p.vars))
	baseHi := make([]float64, len(p.vars))
	for i, v := range p.vars {
		baseLo[i], baseHi[i] = v.lo, v.hi
	}

	res := MIPResult{Solution: Solution{Status: Infeasible, Objective: math.Inf(1)}}
	res.Bound = math.Inf(-1)

	root := bbNode{lo: cloneNaN(len(p.vars)), hi: cloneNaN(len(p.vars)), bound: math.Inf(-1)}
	open := []bbNode{root}
	incumbent := math.Inf(1)

	for len(open) > 0 && res.Nodes < opts.MaxNodes {
		// Best-first: pop the node with the smallest parent bound.
		sort.Slice(open, func(i, j int) bool { return open[i].bound < open[j].bound })
		node := open[0]
		open = open[1:]
		if node.bound >= incumbent-1e-12 {
			continue // pruned by incumbent
		}
		// Apply node bounds.
		for i := range work.vars {
			work.vars[i].lo = pick(node.lo[i], baseLo[i])
			work.vars[i].hi = pick(node.hi[i], baseHi[i])
			if work.vars[i].lo > work.vars[i].hi {
				work.vars[i].lo = work.vars[i].hi // will come out infeasible or fixed
			}
		}
		res.Nodes++
		sol, err := Solve(work)
		if err != nil {
			return res, err
		}
		if sol.Status != Optimal {
			continue // infeasible or unbounded branch
		}
		if sol.Objective >= incumbent-1e-12 {
			continue
		}
		// Find most fractional integer variable.
		branch := VarID(-1)
		worst := opts.IntTol
		for _, v := range intVars {
			f := sol.X[v] - math.Floor(sol.X[v])
			frac := math.Min(f, 1-f)
			if frac > worst {
				worst = frac
				branch = v
			}
		}
		if branch < 0 {
			// Integer-feasible: new incumbent.
			incumbent = sol.Objective
			res.Solution = sol
			res.Status = Optimal
			continue
		}
		floorV := math.Floor(sol.X[branch])
		down := bbNode{lo: append([]float64(nil), node.lo...), hi: append([]float64(nil), node.hi...), bound: sol.Objective}
		down.hi[branch] = floorV
		up := bbNode{lo: append([]float64(nil), node.lo...), hi: append([]float64(nil), node.hi...), bound: sol.Objective}
		up.lo[branch] = floorV + 1
		open = append(open, down, up)

		if opts.Gap > 0 && !math.IsInf(incumbent, 1) {
			lowest := sol.Objective
			for _, n := range open {
				if n.bound < lowest {
					lowest = n.bound
				}
			}
			if (incumbent-lowest)/math.Max(1e-9, math.Abs(incumbent)) < opts.Gap {
				break
			}
		}
	}
	res.Proven = len(open) == 0 || allPruned(open, incumbent)
	if math.IsInf(incumbent, 1) {
		res.Bound = math.Inf(-1)
	} else {
		res.Bound = incumbent
		if !res.Proven {
			lowest := incumbent
			for _, n := range open {
				if n.bound < lowest {
					lowest = n.bound
				}
			}
			res.Bound = lowest
		}
	}
	return res, nil
}

func allPruned(open []bbNode, incumbent float64) bool {
	for _, n := range open {
		if n.bound < incumbent-1e-12 {
			return false
		}
	}
	return true
}

func cloneNaN(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = math.NaN()
	}
	return s
}

func pick(override, base float64) float64 {
	if math.IsNaN(override) {
		return base
	}
	return override
}
