package lp

import (
	"math"
)

// solver tolerances.
const (
	epsPivot = 1e-9 // minimum pivot magnitude
	epsZero  = 1e-9 // treat |x| below this as zero
	epsFeas  = 1e-7 // feasibility tolerance on phase-1 objective
)

// Solve runs the two-phase primal simplex on the LP relaxation of p
// (integrality marks are ignored; see SolveMIP for branch-and-bound).
func Solve(p *Problem) (Solution, error) {
	if err := p.validate(); err != nil {
		return Solution{Status: Infeasible}, err
	}
	t, err := newTableau(p)
	if err != nil {
		return Solution{Status: Infeasible}, err
	}
	status := t.solveTwoPhase()
	sol := Solution{Status: status}
	if status == Optimal {
		sol.X = t.extract(p)
		sol.Objective = p.ObjectiveValue(sol.X)
	}
	return sol, nil
}

// tableau is a dense standard-form simplex tableau.
//
// Standard form: min c'y  s.t.  A y = b, y >= 0, with b >= 0 after row
// normalization. Original variables are shifted by their lower bounds;
// finite upper bounds become explicit rows. Columns are laid out as
// [shifted originals | slacks/surplus | artificials].
type tableau struct {
	m, n    int // rows, structural+slack columns (artificials appended after n)
	nOrig   int
	nTotal  int         // n + artificials
	a       [][]float64 // m rows × nTotal cols
	b       []float64   // m
	cost    []float64   // phase-2 costs per column (length nTotal)
	basis   []int       // basic column per row
	lo      []float64   // original lower bounds (for extraction)
	artBase int         // first artificial column
	maxIter int
}

func newTableau(p *Problem) (*tableau, error) {
	nOrig := len(p.vars)
	// Count rows: every constraint, plus one per finite upper bound.
	type row struct {
		terms []Term
		rel   Rel
		rhs   float64
	}
	rows := make([]row, 0, len(p.cons)+nOrig)
	for _, c := range p.cons {
		rows = append(rows, row{terms: c.Terms, rel: c.Rel, rhs: c.RHS})
	}
	lo := make([]float64, nOrig)
	for i, v := range p.vars {
		lo[i] = v.lo
		if !math.IsInf(v.hi, 1) {
			rows = append(rows, row{
				terms: []Term{{Var: VarID(i), Coef: 1}},
				rel:   LE,
				rhs:   v.hi,
			})
		}
	}
	m := len(rows)
	// Shift variables: y_i = x_i - lo_i >= 0 ⇒ rhs -= Σ a_ij lo_j.
	// Count slack columns.
	nSlack := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	n := nOrig + nSlack
	t := &tableau{
		m: m, n: n, nOrig: nOrig,
		lo:      lo,
		maxIter: 200 * (m + n + 10),
	}
	// Worst case every row needs an artificial.
	t.nTotal = n + m
	t.artBase = n
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, t.nTotal)
	}
	t.b = make([]float64, m)
	t.cost = make([]float64, t.nTotal)
	for j, v := range p.vars {
		t.cost[j] = v.obj
	}
	t.basis = make([]int, m)

	slack := nOrig
	nArt := 0
	for i, r := range rows {
		rhs := r.rhs
		for _, tm := range r.terms {
			t.a[i][tm.Var] += tm.Coef
			rhs -= tm.Coef * lo[tm.Var]
		}
		rel := r.rel
		// Normalize to rhs >= 0.
		if rhs < 0 {
			for j := 0; j < nOrig; j++ {
				t.a[i][j] = -t.a[i][j]
			}
			rhs = -rhs
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		t.b[i] = rhs
		switch rel {
		case LE:
			t.a[i][slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			t.a[i][slack] = -1
			slack++
			art := t.artBase + nArt
			nArt++
			t.a[i][art] = 1
			t.basis[i] = art
		case EQ:
			art := t.artBase + nArt
			nArt++
			t.a[i][art] = 1
			t.basis[i] = art
		}
	}
	t.nTotal = n + nArt
	// Trim unused artificial columns.
	for i := range t.a {
		t.a[i] = t.a[i][:t.nTotal]
	}
	t.cost = t.cost[:t.nTotal]
	return t, nil
}

// solveTwoPhase runs phase 1 (drive artificials to zero) then phase 2.
func (t *tableau) solveTwoPhase() Status {
	if t.nTotal > t.n {
		// Phase 1: minimize sum of artificials.
		c1 := make([]float64, t.nTotal)
		for j := t.artBase; j < t.nTotal; j++ {
			c1[j] = 1
		}
		st, obj := t.iterate(c1, t.nTotal)
		if st != Optimal {
			return st
		}
		if obj > epsFeas {
			return Infeasible
		}
		// Pivot any artificial still basic (at zero) out if possible.
		for i := 0; i < t.m; i++ {
			if t.basis[i] < t.artBase {
				continue
			}
			pivoted := false
			for j := 0; j < t.n; j++ {
				if math.Abs(t.a[i][j]) > epsPivot {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: harmless; the artificial stays basic
				// at zero and phase 2 costs keep it there.
				_ = pivoted
			}
		}
	}
	// Phase 2 over structural + slack columns only (artificials get a
	// prohibitive cost to keep them at zero if still basic).
	c2 := make([]float64, t.nTotal)
	copy(c2, t.cost)
	big := 1.0
	for _, c := range t.cost {
		if math.Abs(c) > big {
			big = math.Abs(c)
		}
	}
	for j := t.artBase; j < t.nTotal; j++ {
		c2[j] = big * 1e9
	}
	st, _ := t.iterate(c2, t.n)
	return st
}

// iterate runs simplex iterations with the given cost vector, allowing
// entering columns in [0, allowCols). Returns status and objective.
func (t *tableau) iterate(cost []float64, allowCols int) (Status, float64) {
	// Reduced costs are computed on the fly: r_j = c_j - c_B' B^{-1} A_j.
	// With a dense tableau kept in canonical form, r_j = c_j - Σ_i
	// c_basis[i] * a[i][j].
	degenerate := 0
	for iter := 0; iter < t.maxIter; iter++ {
		// Compute basic cost weights.
		enter := -1
		var bestR float64
		useBland := degenerate > 2*(t.m+t.n)
		for j := 0; j < allowCols; j++ {
			if t.isBasic(j) {
				continue
			}
			r := cost[j]
			for i := 0; i < t.m; i++ {
				cb := cost[t.basis[i]]
				if cb != 0 {
					r -= cb * t.a[i][j]
				}
			}
			if r < -1e-9 {
				if useBland {
					enter = j
					break
				}
				if enter < 0 || r < bestR {
					enter, bestR = j, r
				}
			}
		}
		if enter < 0 {
			return Optimal, t.objective(cost)
		}
		// Ratio test.
		leave := -1
		var bestRatio float64
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > epsPivot {
				ratio := t.b[i] / t.a[i][enter]
				if leave < 0 || ratio < bestRatio-epsZero ||
					(math.Abs(ratio-bestRatio) <= epsZero && t.basis[i] < t.basis[leave]) {
					leave, bestRatio = i, ratio
				}
			}
		}
		if leave < 0 {
			return Unbounded, 0
		}
		if bestRatio <= epsZero {
			degenerate++
		} else {
			degenerate = 0
		}
		t.pivot(leave, enter)
	}
	return IterLimit, 0
}

func (t *tableau) isBasic(col int) bool {
	for _, b := range t.basis {
		if b == col {
			return true
		}
	}
	return false
}

func (t *tableau) objective(cost []float64) float64 {
	var s float64
	for i := 0; i < t.m; i++ {
		s += cost[t.basis[i]] * t.b[i]
	}
	return s
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	piv := t.a[leave][enter]
	inv := 1 / piv
	row := t.a[leave]
	for j := range row {
		row[j] *= inv
	}
	t.b[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			ai[j] -= f * row[j]
		}
		t.b[i] -= f * t.b[leave]
	}
	t.basis[leave] = enter
}

// extract recovers original-variable values (adding back lower bounds).
func (t *tableau) extract(p *Problem) []float64 {
	y := make([]float64, t.nTotal)
	for i, col := range t.basis {
		y[col] = t.b[i]
	}
	x := make([]float64, t.nOrig)
	for j := 0; j < t.nOrig; j++ {
		x[j] = y[j] + t.lo[j]
		if math.Abs(x[j]) < epsZero {
			x[j] = 0
		}
	}
	return x
}
