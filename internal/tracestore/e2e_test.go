package tracestore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"response/internal/metrics"
	"response/internal/scenario"
	"response/internal/trace"
)

// The acceptance path end to end: trace an SRLG-storm scenario (the
// chaos preset — srlgstorm plus a fault-injected control plane, so
// degraded transitions appear too), ingest the JSONL stream, and
// require (a) the storm window surfaces as critical in tier-1 search,
// (b) the tier-3 critical path ranks the cut links at the top, and
// (c) /metrics agrees with the store's own event counts.
func TestE2ESRLGStormTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e scenario run in -short mode")
	}
	var buf bytes.Buffer
	rt := &metrics.Runtime{}
	cfg := scenario.Config{
		Seed:     42,
		Flows:    200,
		Duration: 4 * 3600,
		StepSec:  900,
		Events:   trace.NewEventWriter(&buf),
		Metrics:  rt,
	}
	res, err := scenario.Run("chaos", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Fatal("storm cut no links; nothing to diagnose")
	}

	s := New(Opts{WindowSec: cfg.StepSec})
	added, skipped, err := s.Ingest(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("Ingest: added %d skipped %d err %v", added, skipped, err)
	}
	if added == 0 {
		t.Fatal("scenario emitted no events")
	}

	// Tier 1: the storm window (StormAt = Duration/3 = 4800) must be
	// critical.
	stormAt := cfg.Duration / 3
	crit := s.Windows(WindowQuery{MinSeverity: SevCritical})
	if len(crit) == 0 {
		t.Fatal("no critical windows after an SRLG storm")
	}
	var stormWin *WindowSummary
	for i := range crit {
		if crit[i].Start <= stormAt && stormAt < crit[i].End {
			stormWin = &crit[i]
		}
	}
	if stormWin == nil {
		t.Fatalf("storm instant %.0f not inside any critical window: %+v", stormAt, crit)
	}
	if stormWin.Failures == 0 || stormWin.Evacuations == 0 {
		t.Errorf("storm window counts %+v, want failures and evacuations", stormWin)
	}

	// The links actually cut in the incident window, per the trace.
	cut := map[int]bool{}
	for _, e := range s.Events(EventQuery{
		Span: "sim", Op: "fail",
		Since: stormWin.Start, Until: stormWin.End, Limit: 10000,
	}) {
		if e.Link >= 0 {
			cut[e.Link] = true
		}
	}
	if len(cut) == 0 {
		t.Fatal("no sim fail events carry a link id")
	}

	// Tier 3: the critical path ranks the cut links at the top.
	cp := s.CriticalPathQuery("", stormAt, 64)
	if len(cp.Links) == 0 {
		t.Fatal("critical path empty for the storm window")
	}
	if !cut[cp.Links[0].Link] {
		t.Errorf("top-ranked link %d is not one of the %d cut links", cp.Links[0].Link, len(cut))
	}
	topCut := 0
	for _, ls := range cp.Links[:min(len(cut), len(cp.Links))] {
		if cut[ls.Link] {
			topCut++
		}
	}
	if topCut*2 < len(cut) {
		t.Errorf("only %d of the top %d ranks are cut links (%d cut total)", topCut, len(cut), len(cut))
	}
	ranked := map[int]bool{}
	for _, ls := range cp.Links {
		ranked[ls.Link] = true
		if ls.Failures > 0 && ls.Seed < 0.5 {
			t.Errorf("failed link %d seeded %g, below the evidence floor", ls.Link, ls.Seed)
		}
	}
	for l := range cut {
		if !ranked[l] {
			t.Errorf("cut link %d missing from the ranking", l)
		}
	}

	// Tier 2 drill-down of the same window names the cut links among
	// the busiest.
	det, ok := s.Summary("", stormAt)
	if !ok {
		t.Fatal("Summary of the storm window failed")
	}
	seen := map[int]bool{}
	for _, ls := range det.Links {
		seen[ls.Link] = true
	}
	for l := range cut {
		if !seen[l] {
			t.Errorf("cut link %d missing from the window summary", l)
		}
	}

	// /metrics agrees with the store: every traced evacuation, failure
	// and degraded entry was also counted on the hot path.
	countStore := func(span, op string) int {
		return len(s.Events(EventQuery{Span: span, Op: op, Limit: 10000}))
	}
	if got, want := int(rt.Evacuations.Value()), countStore("te", "evacuate"); got != want {
		t.Errorf("metrics evacuations %d, trace has %d", got, want)
	}
	if got, want := int(rt.LinkFailures.Value()), countStore("sim", "fail"); got != want {
		t.Errorf("metrics link failures %d, trace has %d", got, want)
	}
	if got, want := int(rt.DegradedEntered.Value()), countStore("lifecycle", "degraded"); got != want {
		t.Errorf("metrics degraded entries %d, trace has %d", got, want)
	}
	if rt.DegradedEntered.Value() == 0 {
		t.Error("chaos preset never entered degraded; e2e lost its degraded coverage")
	}
	var prom bytes.Buffer
	if err := metrics.WritePrometheus(&prom, []metrics.Labeled{{Tenant: "prod", Runtime: rt}}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("response_te_evacuations_total{tenant=\"prod\"} %d\n", rt.Evacuations.Value()),
		fmt.Sprintf("response_sim_link_failures_total{tenant=\"prod\"} %d\n", rt.LinkFailures.Value()),
		fmt.Sprintf("response_lifecycle_degraded_entered_total{tenant=\"prod\"} %d\n", rt.DegradedEntered.Value()),
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("/metrics missing %q", strings.TrimSpace(want))
		}
	}
}
