package tracestore

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strings"
	"testing"
)

func ip(v int) *int { return &v }

// line renders a minimal JSONL event the way trace.EventWriter does.
func line(ts float64, span, op string, val float64) string {
	return fmt.Sprintf(`{"ts":%g,"span":%q,"op":%q,"val":%g}`, ts, span, op, val)
}

func linkLine(ts float64, span, op string, link int, val float64) string {
	return fmt.Sprintf(`{"ts":%g,"span":%q,"op":%q,"link":%d,"val":%g}`, ts, span, op, link, val)
}

func flowLine(ts float64, span, op string, flow, link int, val float64) string {
	return fmt.Sprintf(`{"ts":%g,"span":%q,"op":%q,"flow":%d,"from":0,"to":1,"link":%d,"val":%g}`,
		ts, span, op, flow, link, val)
}

func tenantLine(tenant string, ts float64, span, op string, val float64) string {
	return fmt.Sprintf(`{"tenant":%q,"ts":%g,"span":%q,"op":%q,"val":%g}`, tenant, ts, span, op, val)
}

func ingestAll(t *testing.T, s *Store, lines ...string) {
	t.Helper()
	added, skipped, err := s.Ingest(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if skipped != 0 || added != len(lines) {
		t.Fatalf("Ingest: added %d skipped %d, want %d/0", added, skipped, len(lines))
	}
}

// Corrupt, truncated, or schema-violating lines are counted and
// skipped; valid neighbours still land.
func TestIngestCorruptLines(t *testing.T) {
	s := New(Opts{})
	input := strings.Join([]string{
		line(1, "sim", "fail", 0.9),
		`{"ts":2,"span":"sim","op":"fail","val":`, // truncated mid-value
		`not json at all`,
		`{"span":"sim","op":"fail","val":1}`,     // missing ts
		`{"ts":3,"op":"fail","val":1}`,           // missing span
		`{"ts":4,"span":"sim","val":1}`,          // missing op
		`{"ts":"soon","span":"sim","op":"fail"}`, // ts wrong type
		`{"ts":1e999,"span":"sim","op":"fail"}`,  // ts overflows to +Inf
		`[1,2,3]`,                                // not an object
		line(5, "sim", "repair", 0),
	}, "\n")
	added, skipped, err := s.Ingest(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if added != 2 || skipped != 8 {
		t.Errorf("added %d skipped %d, want 2/8", added, skipped)
	}
	st := s.Stats()
	if st.Events != 2 || st.Ingested != 2 || st.Skipped != 8 {
		t.Errorf("stats %+v, want events 2, ingested 2, skipped 8", st)
	}
	// A line over the 1 MiB bound kills the scanner but not the store.
	big := `{"ts":6,"span":"` + strings.Repeat("x", 1<<21) + `","op":"y"}`
	added, skipped, err = s.Ingest(strings.NewReader(line(5.5, "te", "probe", 0) + "\n" + big))
	if err != nil {
		t.Fatalf("oversized line must not surface an error, got %v", err)
	}
	if added != 1 || skipped != 1 {
		t.Errorf("oversized: added %d skipped %d, want 1/1", added, skipped)
	}
	if got := s.Stats().Events; got != 3 {
		t.Errorf("events after oversized line = %d, want 3", got)
	}
}

// Out-of-order timestamps are placed by insertion: queries always see
// a time-sorted ring, and equal timestamps keep arrival order.
func TestIngestOutOfOrder(t *testing.T) {
	s := New(Opts{})
	ingestAll(t, s,
		line(100, "sim", "fail", 1),
		line(50, "sim", "fail", 2),
		line(75, "sim", "fail", 3),
		line(75, "sim", "repair", 4), // equal ts: lands after val 3
		line(10, "sim", "fail", 5),
		line(200, "sim", "fail", 6),
	)
	evs := s.Events(EventQuery{})
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	var ts, vals []float64
	for _, e := range evs {
		ts = append(ts, e.TS)
		vals = append(vals, e.Val)
	}
	if !sort.Float64sAreSorted(ts) {
		t.Errorf("events not time-sorted: %v", ts)
	}
	want := []float64{5, 2, 3, 4, 1, 6}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("val order %v, want %v", vals, want)
		}
	}
}

// The ring evicts oldest-first at MaxEvents; the window index keeps
// counting what the ring forgot.
func TestRingEviction(t *testing.T) {
	s := New(Opts{MaxEvents: 100, WindowSec: 100})
	for i := 0; i < 250; i++ {
		if !s.IngestLine([]byte(line(float64(i), "sim", "fail", 0))) {
			t.Fatalf("event %d rejected", i)
		}
	}
	st := s.Stats()
	if st.Events != 100 || st.Evicted != 150 || st.Ingested != 250 {
		t.Fatalf("stats %+v, want events 100, evicted 150, ingested 250", st)
	}
	evs := s.Events(EventQuery{Limit: 10000})
	if len(evs) != 100 || evs[0].TS != 150 || evs[99].TS != 249 {
		t.Errorf("retained [%g, %g] ×%d, want [150, 249] ×100", evs[0].TS, evs[len(evs)-1].TS, len(evs))
	}
	// Tier 1 still sees all 250 events across the window index.
	total := 0
	for _, w := range s.Windows(WindowQuery{}) {
		total += w.Events
	}
	if total != 250 {
		t.Errorf("window index counts %d events, want 250 (must survive ring eviction)", total)
	}
	// Tier 2 on the fully-evicted window [0,100) answers from nothing;
	// the retained window [200,300) still drills down.
	if _, ok := s.Summary("", 0); ok {
		t.Error("Summary of fully-evicted window reported ok")
	}
	if det, ok := s.Summary("", 200); !ok || det.Window.Events != 50 {
		t.Errorf("Summary of retained window: ok=%v %+v, want 50 events", ok, det.Window)
	}
}

// Compaction keeps the dead prefix bounded without losing live events.
func TestRingCompaction(t *testing.T) {
	s := New(Opts{MaxEvents: 1000})
	for i := 0; i < 20000; i++ {
		s.IngestLine([]byte(line(float64(i), "sim", "fail", 0)))
	}
	if s.start > len(s.recs)/2 && s.start > 4096 {
		t.Errorf("dead prefix %d of %d never compacted", s.start, len(s.recs))
	}
	evs := s.Events(EventQuery{Limit: 10000})
	if len(evs) != 1000 || evs[0].TS != 19000 {
		t.Errorf("after compaction: %d events from %g, want 1000 from 19000", len(evs), evs[0].TS)
	}
}

// The per-tenant window index is bounded at MaxWindows, oldest dropped.
func TestWindowEviction(t *testing.T) {
	s := New(Opts{MaxWindows: 10, WindowSec: 100})
	for i := 0; i < 25; i++ {
		s.IngestLine([]byte(line(float64(i*100), "sim", "fail", 0)))
	}
	st := s.Stats()
	if st.Windows != 10 || st.WindowsDropped != 15 {
		t.Errorf("windows %d dropped %d, want 10/15", st.Windows, st.WindowsDropped)
	}
	wins := s.Windows(WindowQuery{})
	if len(wins) != 10 || wins[0].Start != 1500 {
		t.Errorf("oldest surviving window starts %g, want 1500", wins[0].Start)
	}
}

// The 16-bit intern space overflows by skipping, not by growing.
func TestInternOverflow(t *testing.T) {
	s := New(Opts{})
	rejected := 0
	for i := 0; i < math.MaxUint16+100; i++ {
		if !s.IngestLine([]byte(line(float64(i), fmt.Sprintf("span%d", i), "op", 0))) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("interning never overflowed")
	}
	if st := s.Stats(); st.Skipped != rejected {
		t.Errorf("skipped %d, want %d", st.Skipped, rejected)
	}
}

func TestWindowsFilters(t *testing.T) {
	s := New(Opts{WindowSec: 100})
	ingestAll(t, s,
		tenantLine("a", 10, "te", "probe", 0),            // a/[0,100): info
		tenantLine("a", 110, "te", "evacuate", 0),        // a/[100,200): warn
		tenantLine("a", 210, "sim", "fail", 0.8),         // a/[200,300): critical
		tenantLine("b", 215, "lifecycle", "degraded", 0), // b/[200,300): critical
	)
	if got := len(s.Windows(WindowQuery{})); got != 4 {
		t.Fatalf("unfiltered windows = %d, want 4", got)
	}
	if got := s.Windows(WindowQuery{Tenant: "a"}); len(got) != 3 {
		t.Errorf("tenant a windows = %d, want 3", len(got))
	}
	crit := s.Windows(WindowQuery{MinSeverity: SevCritical})
	if len(crit) != 2 {
		t.Fatalf("critical windows = %d, want 2", len(crit))
	}
	for _, w := range crit {
		if w.Severity != "critical" {
			t.Errorf("window %s/%g severity %q", w.Tenant, w.Start, w.Severity)
		}
	}
	warm := s.Windows(WindowQuery{MinSeverity: SevWarn, Tenant: "a"})
	if len(warm) != 2 || warm[0].Start != 100 {
		t.Errorf("warn+ tenant a = %+v, want starts 100, 200", warm)
	}
	ranged := s.Windows(WindowQuery{Since: 100, Until: 300})
	if len(ranged) != 3 {
		t.Errorf("ranged windows = %d, want 3", len(ranged))
	}
	if lim := s.Windows(WindowQuery{Limit: 2}); len(lim) != 2 || lim[1].Start != 200 {
		t.Errorf("limit keeps most recent: got %+v", lim)
	}
}

func TestSummaryAggregates(t *testing.T) {
	s := New(Opts{WindowSec: 100})
	ingestAll(t, s,
		linkLine(10, "sim", "fail", 3, 0.9),
		linkLine(11, "chaos", "cascade", 4, 0.5),
		flowLine(12, "te", "evacuate", 7, 3, 1),
		flowLine(13, "te", "shift", 8, 5, 0.25),
		linkLine(14, "sim", "wake", 5, 2),
		linkLine(15, "sim", "sleep", 6, 30),
		line(16, "lifecycle", "swap", 0),
		linkLine(150, "sim", "fail", 9, 0.7), // next window
	)
	det, ok := s.Summary("", 10)
	if !ok {
		t.Fatal("Summary !ok")
	}
	w := det.Window
	if w.Start != 0 || w.End != 100 || w.Events != 7 {
		t.Errorf("window %+v, want [0,100) with 7 events", w)
	}
	if w.Failures != 1 || w.Cascades != 1 || w.Evacuations != 1 || w.Shifts != 1 ||
		w.LinkWakes != 1 || w.LinkSleeps != 1 || w.Swaps != 1 {
		t.Errorf("window counts off: %+v", w)
	}
	if w.Severity != "critical" {
		t.Errorf("severity %q, want critical", w.Severity)
	}
	if det.FlowsTouched != 2 {
		t.Errorf("flows touched %d, want 2", det.FlowsTouched)
	}
	byLink := map[int]LinkSummary{}
	for _, ls := range det.Links {
		byLink[ls.Link] = ls
	}
	if len(byLink) != 4 {
		t.Fatalf("links %v, want 4 distinct (3, 4, 5, 6)", det.Links)
	}
	if l3 := byLink[3]; l3.Events != 2 || l3.Failures != 1 || l3.Evacuations != 1 || l3.MaxUtil != 0.9 {
		t.Errorf("link 3 summary %+v", l3)
	}
	if l4 := byLink[4]; l4.Failures != 1 || l4.MaxUtil != 0.5 {
		t.Errorf("cascade on link 4 must count as failure: %+v", l4)
	}
	// Link 5 carries a te shift (events only) and a sim wake.
	if l5 := byLink[5]; l5.Events != 2 || l5.Wakes != 1 {
		t.Errorf("link 5 summary %+v, want 2 events 1 wake", l5)
	}
	if l6 := byLink[6]; l6.Sleeps != 1 {
		t.Errorf("link 6 summary %+v, want 1 sleep", l6)
	}
	// Busiest link first, ties by id.
	if det.Links[0].Link != 3 || det.Links[1].Link != 5 {
		t.Errorf("link order %+v, want 3, 5 first", det.Links)
	}
	// Time addressed anywhere inside the window resolves to it.
	det2, ok := s.Summary("", 99.9)
	if !ok || det2.Window.Events != det.Window.Events {
		t.Error("mid-window addressing broken")
	}
}

// The critical path ranks the failed links above bystanders: failure
// evidence floors the seed at 0.5 vs 0.05 for mere participants.
func TestCriticalPathRanking(t *testing.T) {
	s := New(Opts{WindowSec: 1000})
	var lines []string
	// Links 1 and 2 fail at high utilization; flows 10..14 evacuate off
	// them, each landing on busy bystander links 20..24.
	lines = append(lines,
		linkLine(10, "sim", "fail", 1, 0.95),
		linkLine(11, "sim", "fail", 2, 0.85),
	)
	for f := 10; f < 15; f++ {
		lines = append(lines,
			flowLine(12, "te", "evacuate", f, 1, 1),
			flowLine(13, "te", "shift", f, 20+f-10, 0.5),
			flowLine(14, "te", "shift", f, 20+f-10, 0.5),
		)
	}
	ingestAll(t, s, lines...)
	cp := s.CriticalPathQuery("", 0, 10)
	if cp.Events != len(lines) {
		t.Fatalf("cp.Events = %d, want %d", cp.Events, len(lines))
	}
	if len(cp.Links) < 3 {
		t.Fatalf("ranked %d links, want ≥ 3", len(cp.Links))
	}
	if cp.Links[0].Link != 1 {
		t.Errorf("top link %d, want 1 (failed at 0.95 and coupled to every evacuating flow)", cp.Links[0].Link)
	}
	rank := map[int]int{}
	for i, ls := range cp.Links {
		rank[ls.Link] = i + 1
	}
	if rank[2] == 0 {
		t.Error("failed link 2 missing from ranking")
	}
	if cp.Links[0].Seed < 0.95 {
		t.Errorf("failed link seed %g, want utilization 0.95", cp.Links[0].Seed)
	}
	// Scores are normalized and descending.
	if cp.Links[0].Score != 1 {
		t.Errorf("top score %g, want 1 after NormalizeMax", cp.Links[0].Score)
	}
	for i := 1; i < len(cp.Links); i++ {
		if cp.Links[i].Score > cp.Links[i-1].Score {
			t.Fatalf("scores not descending at %d", i)
		}
	}
	// A failure with val 0 (no utilization recorded) still gets the
	// evidence floor.
	s2 := New(Opts{WindowSec: 1000})
	ingestAll(t, s2, linkLine(1, "sim", "fail", 1, 0), linkLine(2, "te", "shift", 2, 0.5))
	cp2 := s2.CriticalPathQuery("", 0, 10)
	if cp2.Links[0].Link != 1 || cp2.Links[0].Seed != 0.5 {
		t.Errorf("zero-util failure not floored: %+v", cp2.Links)
	}
	// Empty window: empty answer, no panic.
	if cp3 := s.CriticalPathQuery("", 1e9, 10); len(cp3.Links) != 0 || cp3.Events != 0 {
		t.Errorf("empty window returned %+v", cp3)
	}
}

func TestEventsFilters(t *testing.T) {
	s := New(Opts{})
	ingestAll(t, s,
		tenantLine("a", 1, "sim", "fail", 0.9),
		tenantLine("b", 2, "sim", "fail", 0.8),
		flowLine(3, "te", "evacuate", 7, 3, 1),
		flowLine(4, "te", "shift", 8, 5, 0.25),
		linkLine(5, "sim", "wake", 3, 2),
	)
	if got := s.Events(EventQuery{Tenant: "a"}); len(got) != 1 || got[0].Val != 0.9 {
		t.Errorf("tenant filter: %+v", got)
	}
	if got := s.Events(EventQuery{Span: "te"}); len(got) != 2 {
		t.Errorf("span filter: %+v", got)
	}
	if got := s.Events(EventQuery{Op: "evacuate"}); len(got) != 1 || got[0].Flow != 7 {
		t.Errorf("op filter: %+v", got)
	}
	if got := s.Events(EventQuery{Link: ip(3)}); len(got) != 2 {
		t.Errorf("link filter: %+v", got)
	}
	if got := s.Events(EventQuery{Flow: ip(8)}); len(got) != 1 || got[0].Op != "shift" {
		t.Errorf("flow filter: %+v", got)
	}
	if got := s.Events(EventQuery{Span: "sim", Flow: ip(-1)}); len(got) != 3 {
		t.Errorf("flow=-1 matches flow-less events: %+v", got)
	}
	if got := s.Events(EventQuery{Since: 2, Until: 4}); len(got) != 2 || got[0].TS != 2 {
		t.Errorf("time range: %+v", got)
	}
	if got := s.Events(EventQuery{Limit: 2}); len(got) != 2 || got[1].TS != 2 {
		t.Errorf("limit: %+v", got)
	}
	// Absent optional fields come back as -1, like the writer API.
	ev := s.Events(EventQuery{Tenant: "a"})[0]
	if ev.Flow != -1 || ev.From != -1 || ev.To != -1 || ev.Link != -1 {
		t.Errorf("absent fields not -1: %+v", ev)
	}
}

func TestParseQueries(t *testing.T) {
	q, err := ParseWindowQuery(url.Values{
		"tenant": {"a"}, "since": {"100"}, "until": {"200"},
		"severity": {"warn"}, "limit": {"5"},
	})
	if err != nil || q.Tenant != "a" || q.Since != 100 || q.Until != 200 ||
		q.MinSeverity != SevWarn || q.Limit != 5 {
		t.Errorf("ParseWindowQuery = %+v, %v", q, err)
	}
	for _, bad := range []url.Values{
		{"since": {"soon"}},
		{"until": {"NaN"}},
		{"severity": {"calamitous"}},
		{"limit": {"many"}},
		{"limit": {"-1"}},
	} {
		if _, err := ParseWindowQuery(bad); err == nil {
			t.Errorf("ParseWindowQuery(%v) accepted", bad)
		}
	}
	d, err := ParseDrillQuery(url.Values{"tenant": {"a"}, "start": {"900"}, "k": {"3"}})
	if err != nil || d.Start != 900 || d.K != 3 {
		t.Errorf("ParseDrillQuery = %+v, %v", d, err)
	}
	if _, err := ParseDrillQuery(url.Values{}); err == nil {
		t.Error("ParseDrillQuery without start accepted")
	}
	if _, err := ParseDrillQuery(url.Values{"start": {"1"}, "k": {"-2"}}); err == nil {
		t.Error("negative k accepted")
	}
	e, err := ParseEventQuery(url.Values{"span": {"sim"}, "flow": {"4"}, "link": {"9"}})
	if err != nil || e.Span != "sim" || e.Flow == nil || *e.Flow != 4 || e.Link == nil || *e.Link != 9 {
		t.Errorf("ParseEventQuery = %+v, %v", e, err)
	}
	e, err = ParseEventQuery(url.Values{})
	if err != nil || e.Flow != nil || e.Link != nil {
		t.Errorf("empty ParseEventQuery must leave actors nil: %+v, %v", e, err)
	}
	if _, err := ParseEventQuery(url.Values{"flow": {"seven"}}); err == nil {
		t.Error("non-numeric flow accepted")
	}
	if _, err := ParseEventQuery(url.Values{"since": {"+Inf"}}); err == nil {
		t.Error("infinite since accepted")
	}
}
