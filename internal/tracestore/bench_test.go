package tracestore

// Ingest and query benchmarks. BENCH_trace.json is recorded by
// cmd/response-bench -trace (a 1M-event synthetic incident stream);
// these cover the same paths at Go-bench granularity so -benchmem
// regressions show up in the CI log.

import (
	"fmt"
	"testing"
)

// benchFill ingests n synthetic events: steady te/sim churn with an
// incident (5 failures + evacuation wave) opening every 10th window.
func benchFill(b *testing.B, s *Store, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		ts := float64(i) / 10
		window := i / 9000
		inWin := i % 9000
		var line string
		switch {
		case window%10 == 1 && inWin < 5:
			line = fmt.Sprintf(`{"ts":%g,"span":"sim","op":"fail","link":%d,"val":0.9}`, ts, (window*17+inWin*31)%200)
		case window%10 == 1 && inWin < 55:
			line = fmt.Sprintf(`{"ts":%g,"span":"te","op":"evacuate","flow":%d,"from":0,"to":1,"link":%d,"val":1}`,
				ts, i%5000, (window*17+(inWin%5)*31)%200)
		default:
			line = fmt.Sprintf(`{"ts":%g,"span":"te","op":"shift","flow":%d,"from":0,"to":1,"link":%d,"val":0.5}`,
				ts, i%5000, i%200)
		}
		if !s.IngestLine([]byte(line)) {
			b.Fatalf("line %d rejected", i)
		}
	}
}

func BenchmarkIngestLine(b *testing.B) {
	s := New(Opts{MaxEvents: 1 << 17})
	line := []byte(`{"ts":123.5,"span":"te","op":"shift","flow":42,"from":0,"to":1,"link":7,"val":0.25}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.IngestLine(line)
	}
}

func BenchmarkWindowsQuery(b *testing.B) {
	s := New(Opts{})
	benchFill(b, s, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Windows(WindowQuery{MinSeverity: SevCritical})
	}
}

func BenchmarkSummary(b *testing.B) {
	s := New(Opts{})
	benchFill(b, s, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Summary("", 900); !ok {
			b.Fatal("incident window missing")
		}
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	s := New(Opts{})
	benchFill(b, s, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := s.CriticalPathQuery("", 900, 10)
		if len(cp.Links) == 0 {
			b.Fatal("incident window empty")
		}
	}
}
