package tracestore

import (
	"fmt"
	"math"
	"net/url"
	"sort"
	"strconv"

	"response/internal/criticality"
)

// Severity is a window's triage tier.
type Severity uint8

// Severity tiers: critical windows saw failures, cascades or degraded
// entries; warn windows saw evacuations, replan failures or retries;
// everything else is info.
const (
	SevInfo Severity = iota
	SevWarn
	SevCritical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevCritical:
		return "critical"
	}
	return "info"
}

// ParseSeverity parses a severity name ("info", "warn", "critical";
// empty means info).
func ParseSeverity(v string) (Severity, bool) {
	switch v {
	case "", "info":
		return SevInfo, true
	case "warn":
		return SevWarn, true
	case "critical":
		return SevCritical, true
	}
	return SevInfo, false
}

// WindowQuery filters the tier-1 window search.
type WindowQuery struct {
	// Tenant restricts to one tenant label; empty matches all.
	Tenant string
	// Since/Until bound the window start time: Since inclusive, Until
	// exclusive; zero means open.
	Since, Until float64
	// MinSeverity drops windows below the tier.
	MinSeverity Severity
	// Limit caps the result (default 100, cap 1000); the most recent
	// windows win.
	Limit int
}

// WindowSummary is one tier-1 search result.
type WindowSummary struct {
	Tenant         string  `json:"tenant,omitempty"`
	Start          float64 `json:"start"`
	End            float64 `json:"end"`
	Severity       string  `json:"severity"`
	Events         int     `json:"events"`
	Failures       int     `json:"failures"`
	Cascades       int     `json:"cascades"`
	Repairs        int     `json:"repairs"`
	Evacuations    int     `json:"evacuations"`
	Shifts         int     `json:"shifts"`
	WakeRequests   int     `json:"wake_requests"`
	LinkWakes      int     `json:"link_wakes"`
	LinkSleeps     int     `json:"link_sleeps"`
	Probes         int     `json:"probes"`
	Swaps          int     `json:"swaps"`
	ReplanFailures int     `json:"replan_failures"`
	Degraded       int     `json:"degraded"`
	Recovered      int     `json:"recovered"`
	Retries        int     `json:"retries"`
}

func (s *Store) summaryOf(tenant string, w *window) WindowSummary {
	return WindowSummary{
		Tenant:         tenant,
		Start:          float64(w.bucket) * s.opts.WindowSec,
		End:            float64(w.bucket+1) * s.opts.WindowSec,
		Severity:       w.severity().String(),
		Events:         w.events,
		Failures:       w.failures,
		Cascades:       w.cascades,
		Repairs:        w.repairs,
		Evacuations:    w.evacuations,
		Shifts:         w.shifts,
		WakeRequests:   w.wakeRequests,
		LinkWakes:      w.linkWakes,
		LinkSleeps:     w.linkSleeps,
		Probes:         w.probes,
		Swaps:          w.swaps,
		ReplanFailures: w.replanFailures,
		Degraded:       w.degraded,
		Recovered:      w.recovered,
		Retries:        w.retries,
	}
}

// Windows is tier 1: search the window index. Results are ordered by
// (start, tenant) ascending; when Limit trims, the most recent windows
// are kept. Index-only — no event scan.
func (s *Store) Windows(q WindowQuery) []WindowSummary {
	limit := q.Limit
	if limit <= 0 {
		limit = 100
	}
	if limit > 1000 {
		limit = 1000
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []WindowSummary
	for tid, tw := range s.byTenant {
		tenant := s.names[tid]
		if q.Tenant != "" && tenant != q.Tenant {
			continue
		}
		for _, w := range tw.wins {
			start := float64(w.bucket) * s.opts.WindowSec
			if q.Since != 0 && start < q.Since {
				continue
			}
			if q.Until != 0 && start >= q.Until {
				continue
			}
			if w.severity() < q.MinSeverity {
				continue
			}
			out = append(out, s.summaryOf(tenant, w))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Tenant < out[j].Tenant
	})
	if len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// LinkSummary is one affected link in a tier-2 window drill-down.
type LinkSummary struct {
	Link        int     `json:"link"`
	Events      int     `json:"events"`
	Failures    int     `json:"failures"`
	Evacuations int     `json:"evacuations"`
	Wakes       int     `json:"wakes"`
	Sleeps      int     `json:"sleeps"`
	MaxUtil     float64 `json:"max_util"`
	FirstTS     float64 `json:"first_ts"`
	LastTS      float64 `json:"last_ts"`
}

// WindowDetail is the tier-2 drill-down of one window.
type WindowDetail struct {
	Window WindowSummary `json:"window"`
	// Links lists the affected links, busiest first. FlowsTouched
	// counts distinct flows with at least one event in the window.
	Links        []LinkSummary `json:"links"`
	FlowsTouched int           `json:"flows_touched"`
}

// scanRange yields every retained event of the window starting at
// start for the given tenant ("" = all). Caller holds mu.RLock.
func (s *Store) scanRange(tenant string, start float64, yield func(r *rec)) {
	end := start + s.opts.WindowSec
	live := s.recs[s.start:]
	lo := sort.Search(len(live), func(i int) bool { return live[i].ts >= start })
	var tid uint16
	filter := tenant != ""
	if filter {
		id, ok := s.nameID[tenant]
		if !ok {
			return
		}
		tid = id
	}
	for i := lo; i < len(live) && live[i].ts < end; i++ {
		if filter && live[i].tenant != tid {
			continue
		}
		yield(&live[i])
	}
}

// Summary is tier 2: the per-link topology summary of one window,
// recomputed from retained events (a window whose events have been
// evicted from the ring returns ok=false). start is the window start
// time; any time inside the window works too.
func (s *Store) Summary(tenant string, start float64) (WindowDetail, bool) {
	start = math.Floor(start/s.opts.WindowSec) * s.opts.WindowSec
	s.mu.RLock()
	defer s.mu.RUnlock()
	agg := window{bucket: int64(math.Floor(start / s.opts.WindowSec))}
	links := map[int32]*LinkSummary{}
	flows := map[int32]struct{}{}
	n := 0
	s.scanRange(tenant, start, func(r *rec) {
		if n == 0 {
			agg.firstTS, agg.lastTS = r.ts, r.ts
		}
		n++
		accountInto(&agg, r)
		if r.flow >= 0 {
			flows[r.flow] = struct{}{}
		}
		if r.link < 0 {
			return
		}
		ls := links[r.link]
		if ls == nil {
			ls = &LinkSummary{Link: int(r.link), FirstTS: r.ts, LastTS: r.ts}
			links[r.link] = ls
		}
		ls.Events++
		if r.ts < ls.FirstTS {
			ls.FirstTS = r.ts
		}
		if r.ts > ls.LastTS {
			ls.LastTS = r.ts
		}
		switch r.class {
		case clsFailure, clsCascade:
			ls.Failures++
			if r.val > ls.MaxUtil {
				ls.MaxUtil = r.val
			}
		case clsEvacuate:
			ls.Evacuations++
		case clsLinkWake, clsWakeReq:
			ls.Wakes++
		case clsLinkSleep:
			ls.Sleeps++
		}
	})
	if n == 0 {
		return WindowDetail{}, false
	}
	det := WindowDetail{Window: s.summaryOf(tenant, &agg), FlowsTouched: len(flows)}
	for _, ls := range links {
		det.Links = append(det.Links, *ls)
	}
	sort.Slice(det.Links, func(i, j int) bool {
		if det.Links[i].Events != det.Links[j].Events {
			return det.Links[i].Events > det.Links[j].Events
		}
		return det.Links[i].Link < det.Links[j].Link
	})
	return det, true
}

// accountInto applies one event to a scratch window aggregate (the
// tier-2 recomputation twin of Store.account).
func accountInto(w *window, r *rec) {
	w.events++
	if r.ts < w.firstTS {
		w.firstTS = r.ts
	}
	if r.ts > w.lastTS {
		w.lastTS = r.ts
	}
	switch r.class {
	case clsFailure:
		w.failures++
	case clsCascade:
		w.cascades++
	case clsRepair:
		w.repairs++
	case clsEvacuate:
		w.evacuations++
	case clsShift:
		w.shifts++
	case clsWakeReq:
		w.wakeRequests++
	case clsLinkWake:
		w.linkWakes++
	case clsLinkSleep:
		w.linkSleeps++
	case clsProbe:
		w.probes++
	case clsSwap:
		w.swaps++
	case clsReplanFail:
		w.replanFailures++
	case clsDegraded:
		w.degraded++
	case clsRecovered:
		w.recovered++
	case clsRetry:
		w.retries++
	}
}

// LinkScore is one ranked link of a tier-3 critical-path answer.
type LinkScore struct {
	Link        int     `json:"link"`
	Score       float64 `json:"score"`
	Seed        float64 `json:"seed"`
	Events      int     `json:"events"`
	Failures    int     `json:"failures"`
	Evacuations int     `json:"evacuations"`
}

// CriticalPath is the tier-3 answer: the window's links ranked by
// energy-criticality.
type CriticalPath struct {
	Tenant string      `json:"tenant,omitempty"`
	Start  float64     `json:"start"`
	End    float64     `json:"end"`
	Events int         `json:"events"`
	Actors int         `json:"actors"`
	Links  []LinkScore `json:"links"`
}

// Failure-evidence floor and participation floor of the criticality
// seeds: a link that failed in the window is seeded at ≥ seedFailure
// even if it idled before the cut (the failure IS the excursion); any
// other link with events gets seedBase so repeated involvement can
// still surface it.
const (
	seedFailure = 0.5
	seedBase    = 0.05
)

// CriticalPathQuery runs tier 3: HITS-style criticality over the
// window's event→link incidence (internal/criticality — the same
// kernel that orders the planner's warm descent), seeded with link
// utilization at failure time. Actors are flows (coupling every link
// a flow touched in the window: evacuations tie their cause link to
// the paths the flow landed on) plus one synthetic actor per
// flow-less link event (wake/sleep/repair churn). Links are returned
// ranked, top k (default 10, cap 256).
func (s *Store) CriticalPathQuery(tenant string, start float64, k int) CriticalPath {
	if k <= 0 {
		k = 10
	}
	if k > 256 {
		k = 256
	}
	start = math.Floor(start/s.opts.WindowSec) * s.opts.WindowSec
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp := CriticalPath{Tenant: tenant, Start: start, End: start + s.opts.WindowSec}

	linkIdx := map[int32]int{}
	var stats []LinkScore // per dense link: counters + seed scratch
	var hasFail []bool    // per dense link: failure evidence
	flowIdx := map[int32]int{}
	var actorLinks [][]int32 // per actor: touched links (dense ids, with multiplicity)

	dense := func(link int32) int {
		li, ok := linkIdx[link]
		if !ok {
			li = len(stats)
			linkIdx[link] = li
			stats = append(stats, LinkScore{Link: int(link)})
			hasFail = append(hasFail, false)
		}
		return li
	}
	s.scanRange(tenant, start, func(r *rec) {
		cp.Events++
		if r.link < 0 {
			return
		}
		li := dense(r.link)
		stats[li].Events++
		switch r.class {
		case clsFailure, clsCascade:
			stats[li].Failures++
			hasFail[li] = true
			if r.val > stats[li].Seed {
				stats[li].Seed = r.val
			}
		case clsEvacuate:
			stats[li].Evacuations++
		}
		if r.flow >= 0 {
			ai, ok := flowIdx[r.flow]
			if !ok {
				ai = len(actorLinks)
				flowIdx[r.flow] = ai
				actorLinks = append(actorLinks, nil)
			}
			actorLinks[ai] = append(actorLinks[ai], int32(li))
		} else {
			// Flow-less link event: its own single-link actor.
			actorLinks = append(actorLinks, []int32{int32(li)})
		}
	})
	if len(stats) == 0 {
		return cp
	}
	seed := make([]float64, len(stats))
	for li := range stats {
		switch {
		case hasFail[li] && stats[li].Seed < seedFailure:
			seed[li] = seedFailure
		case hasFail[li]:
			seed[li] = stats[li].Seed
		default:
			seed[li] = seedBase
		}
		stats[li].Seed = seed[li]
	}
	scores := criticality.Scores(seed, len(actorLinks), func(a int, yield func(link int)) {
		for _, li := range actorLinks[a] {
			yield(int(li))
		}
	}, 4)
	for li := range stats {
		stats[li].Score = scores[li]
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Score != stats[j].Score {
			return stats[i].Score > stats[j].Score
		}
		return stats[i].Link < stats[j].Link
	})
	cp.Actors = len(actorLinks)
	if len(stats) > k {
		stats = stats[:k]
	}
	cp.Links = stats
	return cp
}

// EventQuery filters tier-4 individual event retrieval.
type EventQuery struct {
	Tenant string
	Span   string
	Op     string
	// Flow/Link filter by actor when set; nil matches any. A pointer to
	// -1 matches events with that field absent.
	Flow, Link *int
	// Since inclusive, Until exclusive; zero means open.
	Since, Until float64
	// Limit caps the result (default 100, cap 10000); earliest first.
	Limit int
}

// Event is one retrieved event, strings restored. Absent actors are
// -1, mirroring the EventWriter API.
type Event struct {
	TS     float64 `json:"ts"`
	Tenant string  `json:"tenant,omitempty"`
	Span   string  `json:"span"`
	Op     string  `json:"op"`
	Flow   int     `json:"flow"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Link   int     `json:"link"`
	Val    float64 `json:"val"`
}

// Events is tier 4: retrieve individual retained events, time-ordered,
// bounded by Limit.
func (s *Store) Events(q EventQuery) []Event {
	limit := q.Limit
	if limit <= 0 {
		limit = 100
	}
	if limit > 10000 {
		limit = 10000
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	live := s.recs[s.start:]
	lo := 0
	if q.Since != 0 {
		lo = sort.Search(len(live), func(i int) bool { return live[i].ts >= q.Since })
	}
	var out []Event
	for i := lo; i < len(live) && len(out) < limit; i++ {
		r := &live[i]
		if q.Until != 0 && r.ts >= q.Until {
			break
		}
		if q.Tenant != "" && s.names[r.tenant] != q.Tenant {
			continue
		}
		if q.Span != "" && s.names[r.span] != q.Span {
			continue
		}
		if q.Op != "" && s.names[r.op] != q.Op {
			continue
		}
		if q.Flow != nil && r.flow != int32(*q.Flow) {
			continue
		}
		if q.Link != nil && r.link != int32(*q.Link) {
			continue
		}
		out = append(out, Event{
			TS:     r.ts,
			Tenant: s.names[r.tenant],
			Span:   s.names[r.span],
			Op:     s.names[r.op],
			Flow:   int(r.flow),
			From:   int(r.from),
			To:     int(r.to),
			Link:   int(r.link),
			Val:    r.val,
		})
	}
	return out
}

// --- Query-parameter parsing (the REST/CLI surface; fuzzed) ---

func parseFloatParam(v url.Values, key string) (float64, error) {
	raw := v.Get(key)
	if raw == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("tracestore: bad %s %q", key, raw)
	}
	return f, nil
}

func parseIntParam(v url.Values, key string, def int) (int, error) {
	raw := v.Get(key)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("tracestore: bad %s %q", key, raw)
	}
	return n, nil
}

// ParseWindowQuery builds a tier-1 query from URL parameters: tenant,
// since, until, severity, limit.
func ParseWindowQuery(v url.Values) (WindowQuery, error) {
	q := WindowQuery{Tenant: v.Get("tenant")}
	var err error
	if q.Since, err = parseFloatParam(v, "since"); err != nil {
		return q, err
	}
	if q.Until, err = parseFloatParam(v, "until"); err != nil {
		return q, err
	}
	sev, ok := ParseSeverity(v.Get("severity"))
	if !ok {
		return q, fmt.Errorf("tracestore: bad severity %q", v.Get("severity"))
	}
	q.MinSeverity = sev
	if q.Limit, err = parseIntParam(v, "limit", 0); err != nil {
		return q, err
	}
	if q.Limit < 0 {
		return q, fmt.Errorf("tracestore: negative limit")
	}
	return q, nil
}

// DrillQuery addresses one window for the tier-2/3 drill-downs.
type DrillQuery struct {
	Tenant string
	Start  float64
	K      int
}

// ParseDrillQuery builds a tier-2/3 query from URL parameters: tenant,
// start (required), k (tier 3 only).
func ParseDrillQuery(v url.Values) (DrillQuery, error) {
	q := DrillQuery{Tenant: v.Get("tenant")}
	if v.Get("start") == "" {
		return q, fmt.Errorf("tracestore: missing start")
	}
	var err error
	if q.Start, err = parseFloatParam(v, "start"); err != nil {
		return q, err
	}
	if q.K, err = parseIntParam(v, "k", 0); err != nil {
		return q, err
	}
	if q.K < 0 {
		return q, fmt.Errorf("tracestore: negative k")
	}
	return q, nil
}

// ParseEventQuery builds a tier-4 query from URL parameters: tenant,
// span, op, flow, link, since, until, limit.
func ParseEventQuery(v url.Values) (EventQuery, error) {
	q := EventQuery{
		Tenant: v.Get("tenant"),
		Span:   v.Get("span"),
		Op:     v.Get("op"),
	}
	var err error
	for _, p := range []struct {
		key string
		dst **int
	}{{"flow", &q.Flow}, {"link", &q.Link}} {
		if v.Get(p.key) == "" {
			continue
		}
		n, perr := parseIntParam(v, p.key, 0)
		if perr != nil {
			return q, perr
		}
		*p.dst = &n
	}
	if q.Since, err = parseFloatParam(v, "since"); err != nil {
		return q, err
	}
	if q.Until, err = parseFloatParam(v, "until"); err != nil {
		return q, err
	}
	if q.Limit, err = parseIntParam(v, "limit", 0); err != nil {
		return q, err
	}
	if q.Limit < 0 {
		return q, fmt.Errorf("tracestore: negative limit")
	}
	return q, nil
}
