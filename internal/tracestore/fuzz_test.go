package tracestore

import (
	"net/url"
	"testing"
)

// FuzzIngestLine: no input line may panic the store or desync its
// bookkeeping — every line is either accepted (ingested) or counted
// skipped, and queries stay well-formed afterwards.
func FuzzIngestLine(f *testing.F) {
	f.Add([]byte(`{"ts":1,"span":"sim","op":"fail","link":3,"val":0.9}`))
	f.Add([]byte(`{"tenant":"a","ts":2.5,"span":"te","op":"shift","flow":7,"from":0,"to":1,"val":0.25}`))
	f.Add([]byte(`{"ts":`))
	f.Add([]byte(``))
	f.Add([]byte(`{"ts":-1e308,"span":"s","op":"o"}`))
	f.Add([]byte(`{"ts":null,"span":"s","op":"o"}`))
	f.Add([]byte(`{"ts":1,"span":"s","op":"o","flow":-2147483648}`))
	s := New(Opts{MaxEvents: 1 << 10, MaxWindows: 16, WindowSec: 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		before := s.Stats()
		ok := s.IngestLine(data)
		after := s.Stats()
		if ok && after.Ingested != before.Ingested+1 {
			t.Fatalf("accepted line not counted: %+v -> %+v", before, after)
		}
		if !ok && after.Skipped != before.Skipped+1 {
			t.Fatalf("rejected line not counted: %+v -> %+v", before, after)
		}
		if after.Events > (1 << 10) {
			t.Fatalf("ring bound violated: %d events", after.Events)
		}
		// Queries over arbitrary state must not panic.
		s.Windows(WindowQuery{Limit: 5})
		s.Summary("", 0)
		s.CriticalPathQuery("", 0, 5)
		s.Events(EventQuery{Limit: 5})
	})
}

// FuzzParseQuery: the REST query-parameter surface never panics and
// either errors or returns in-range values.
func FuzzParseQuery(f *testing.F) {
	f.Add("tenant=a&since=100&until=200&severity=warn&limit=5")
	f.Add("start=900&k=3")
	f.Add("span=sim&op=fail&flow=4&link=9&limit=10000")
	f.Add("since=NaN&limit=-1")
	f.Add("severity=%00&start=1e999")
	f.Fuzz(func(t *testing.T, raw string) {
		v, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		if q, err := ParseWindowQuery(v); err == nil {
			if q.Limit < 0 {
				t.Fatalf("ParseWindowQuery accepted negative limit: %+v", q)
			}
			if q.Since != q.Since || q.Until != q.Until {
				t.Fatalf("ParseWindowQuery accepted NaN bounds: %+v", q)
			}
		}
		if q, err := ParseDrillQuery(v); err == nil {
			if q.K < 0 || q.Start != q.Start {
				t.Fatalf("ParseDrillQuery out of range: %+v", q)
			}
		}
		if q, err := ParseEventQuery(v); err == nil {
			if q.Limit < 0 {
				t.Fatalf("ParseEventQuery accepted negative limit: %+v", q)
			}
		}
	})
}
