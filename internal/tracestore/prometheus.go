package tracestore

import (
	"fmt"
	"io"
)

// WritePrometheus renders the store's bookkeeping counters in
// Prometheus text exposition format (version 0.0.4), for appending to
// a /metrics page alongside the runtime counter families.
func (s *Store) WritePrometheus(w io.Writer) error {
	st := s.Stats()
	for _, m := range []struct {
		name, help, typ string
		val             int
	}{
		{"response_tracestore_retained_events", "Events currently retained in the ring.", "gauge", st.Events},
		{"response_tracestore_ingested_total", "Events accepted since startup.", "counter", st.Ingested},
		{"response_tracestore_skipped_total", "Corrupt or rejected lines dropped.", "counter", st.Skipped},
		{"response_tracestore_evicted_total", "Events evicted by the ring bound.", "counter", st.Evicted},
		{"response_tracestore_windows", "Live tier-1 search windows across tenants.", "gauge", st.Windows},
		{"response_tracestore_windows_dropped_total", "Windows evicted by the per-tenant bound.", "counter", st.WindowsDropped},
		{"response_tracestore_tenants", "Distinct tenant labels seen.", "gauge", st.Tenants},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.typ, m.name, m.val); err != nil {
			return err
		}
	}
	return nil
}
