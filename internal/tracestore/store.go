// Package tracestore is the read side of the runtime's JSONL flight
// recorder: an indexed, bounded-memory store that ingests
// trace.EventWriter streams — recorded files or controld's live
// per-tenant event hub — and serves progressive-disclosure incident
// queries modeled on Jaeger's search → drill-down → span ADR:
//
//	tier 1  Windows       search fixed-width time windows by tenant,
//	                      severity and time range (index only, no scan)
//	tier 2  Summary       per-link topology summary of one window
//	tier 3  CriticalPath  HITS-ranked energy-critical links of one
//	                      window (internal/criticality, seeded with
//	                      link utilization at failure)
//	tier 4  Events        individual event retrieval by span/op/actor
//
// Never the whole trace at once: every tier is bounded.
//
// Memory is bounded two ways. The event ring retains the most recent
// Opts.MaxEvents events (oldest evicted first); the window index is
// bounded separately per tenant (Opts.MaxWindows), so tier-1 search
// keeps working for history whose raw events have already been
// evicted — drill-down tiers answer from retained events only.
//
// Ingestion is resilient by construction: a corrupt or truncated JSONL
// line is counted and skipped, never a panic and never a poisoned
// store; out-of-order timestamps are placed by binary insertion so
// queries always see a time-sorted ring.
package tracestore

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
)

// Opts parameterizes a Store.
type Opts struct {
	// MaxEvents bounds the event ring (default 1<<20).
	MaxEvents int
	// MaxWindows bounds the per-tenant window index (default 4096
	// windows ≈ 42 days at the default width).
	MaxWindows int
	// WindowSec is the search-window width in simulation seconds
	// (default 900, the GÉANT trace granularity).
	WindowSec float64
}

func (o *Opts) defaults() {
	if o.MaxEvents <= 0 {
		o.MaxEvents = 1 << 20
	}
	if o.MaxWindows <= 0 {
		o.MaxWindows = 4096
	}
	if o.WindowSec <= 0 {
		o.WindowSec = 900
	}
}

// eventClass buckets (span, op) pairs for window accounting and
// severity derivation.
type eventClass uint8

const (
	clsOther eventClass = iota
	clsFailure
	clsRepair
	clsCascade
	clsEvacuate
	clsShift
	clsWakeReq
	clsLinkWake
	clsLinkSleep
	clsProbe
	clsSwap
	clsReplanFail
	clsDegraded
	clsRecovered
	clsRetry
)

// classify maps a (span, op) pair onto its accounting class.
func classify(span, op string) eventClass {
	switch span {
	case "sim":
		switch op {
		case "fail":
			return clsFailure
		case "repair":
			return clsRepair
		case "wake":
			return clsLinkWake
		case "sleep":
			return clsLinkSleep
		}
	case "te":
		switch op {
		case "evacuate":
			return clsEvacuate
		case "shift":
			return clsShift
		case "wake":
			return clsWakeReq
		case "probe":
			return clsProbe
		}
	case "lifecycle":
		switch op {
		case "swap", "swap-done", "stage":
			return clsSwap
		case "replan-error", "replan-timeout", "replan-panic", "reject-invalid":
			return clsReplanFail
		case "degraded":
			return clsDegraded
		case "recovered":
			return clsRecovered
		case "retry":
			return clsRetry
		}
	case "chaos":
		switch op {
		case "cascade":
			return clsCascade
		case "srlg-cut":
			return clsFailure
		}
	}
	return clsOther
}

// rec is one stored event: interned strings, fixed width.
type rec struct {
	ts     float64
	val    float64
	flow   int32
	from   int32
	to     int32
	link   int32
	tenant uint16
	span   uint16
	op     uint16
	class  eventClass
}

// window is one tier-1 aggregate: everything ever ingested for a
// (tenant, bucket), independent of ring eviction.
type window struct {
	bucket          int64
	events          int
	failures        int
	cascades        int
	repairs         int
	evacuations     int
	shifts          int
	wakeRequests    int
	linkWakes       int
	linkSleeps      int
	probes          int
	swaps           int
	replanFailures  int
	degraded        int
	recovered       int
	retries         int
	firstTS, lastTS float64
}

// severity derives the window's triage tier from its counts.
func (w *window) severity() Severity {
	if w.failures+w.cascades+w.degraded > 0 {
		return SevCritical
	}
	if w.evacuations+w.replanFailures+w.retries > 0 {
		return SevWarn
	}
	return SevInfo
}

// tenantWindows is one tenant's bounded, bucket-sorted window index.
type tenantWindows struct {
	wins    []*window // sorted by bucket
	dropped int       // windows evicted by the MaxWindows bound
}

// Stats reports the store's bookkeeping counters.
type Stats struct {
	// Events is the number of events currently retained in the ring.
	Events int `json:"events"`
	// Ingested counts every event ever accepted; Skipped counts
	// corrupt or truncated lines dropped; Evicted counts events pushed
	// out of the ring by the memory bound.
	Ingested int `json:"ingested"`
	Skipped  int `json:"skipped"`
	Evicted  int `json:"evicted"`
	// Windows is the number of live tier-1 windows across all tenants;
	// WindowsDropped counts windows evicted by the per-tenant bound.
	Windows        int `json:"windows"`
	WindowsDropped int `json:"windows_dropped"`
	// Tenants is the number of distinct tenant labels seen.
	Tenants int `json:"tenants"`
}

// Store is the indexed, bounded-memory trace store. All methods are
// safe for concurrent use: one ingest goroutine and any number of
// query goroutines.
type Store struct {
	opts Opts

	mu sync.RWMutex

	// String interning: index 0 is always "".
	names  []string
	nameID map[string]uint16

	// Event ring: recs[start:] are live, time-sorted. Eviction
	// advances start; compaction copies down when the dead prefix
	// outgrows the live half.
	recs  []rec
	start int

	byTenant map[uint16]*tenantWindows

	ingested int
	skipped  int
	evicted  int
}

// New builds a Store.
func New(opts Opts) *Store {
	opts.defaults()
	s := &Store{
		opts:     opts,
		names:    []string{""},
		nameID:   map[string]uint16{"": 0},
		byTenant: make(map[uint16]*tenantWindows),
	}
	return s
}

// WindowSec returns the effective search-window width.
func (s *Store) WindowSec() float64 { return s.opts.WindowSec }

// intern maps a string to its stable id, minting one if needed. The
// id space is 16-bit; overflow reports false (the event is skipped —
// a store fed adversarial cardinality degrades by counting, not by
// unbounded growth).
func (s *Store) intern(v string) (uint16, bool) {
	if id, ok := s.nameID[v]; ok {
		return id, true
	}
	if len(s.names) > math.MaxUint16 {
		return 0, false
	}
	id := uint16(len(s.names))
	s.names = append(s.names, v)
	s.nameID[v] = id
	return id, true
}

// wireEvent mirrors the EventWriter JSONL schema. Optional fields are
// pointers so "absent" and "zero" stay distinguishable.
type wireEvent struct {
	TS     *float64 `json:"ts"`
	Tenant string   `json:"tenant"`
	Span   string   `json:"span"`
	Op     string   `json:"op"`
	Flow   *int32   `json:"flow"`
	From   *int32   `json:"from"`
	To     *int32   `json:"to"`
	Link   *int32   `json:"link"`
	Val    float64  `json:"val"`
}

// IngestLine ingests one JSONL event line. Corrupt, truncated or
// schema-violating lines are counted and dropped — the return value
// reports acceptance — and never panic or poison the store.
func (s *Store) IngestLine(line []byte) bool {
	var w wireEvent
	if err := json.Unmarshal(line, &w); err != nil {
		s.mu.Lock()
		s.skipped++
		s.mu.Unlock()
		return false
	}
	return s.ingestWire(&w)
}

func (s *Store) ingestWire(w *wireEvent) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.TS == nil || math.IsNaN(*w.TS) || math.IsInf(*w.TS, 0) || w.Span == "" || w.Op == "" {
		s.skipped++
		return false
	}
	tenant, ok1 := s.intern(w.Tenant)
	span, ok2 := s.intern(w.Span)
	op, ok3 := s.intern(w.Op)
	if !ok1 || !ok2 || !ok3 {
		s.skipped++
		return false
	}
	r := rec{
		ts:     *w.TS,
		val:    w.Val,
		flow:   -1,
		from:   -1,
		to:     -1,
		link:   -1,
		tenant: tenant,
		span:   span,
		op:     op,
		class:  classify(w.Span, w.Op),
	}
	if w.Flow != nil {
		r.flow = *w.Flow
	}
	if w.From != nil {
		r.from = *w.From
	}
	if w.To != nil {
		r.to = *w.To
	}
	if w.Link != nil {
		r.link = *w.Link
	}
	s.insert(r)
	s.account(&r)
	s.ingested++
	return true
}

// insert places r in timestamp order (stable for equal timestamps:
// later arrivals land after earlier ones) and applies the ring bound.
func (s *Store) insert(r rec) {
	live := s.recs[s.start:]
	// Fast path: in-order arrival.
	if n := len(live); n == 0 || live[n-1].ts <= r.ts {
		s.recs = append(s.recs, r)
	} else {
		// First live index with ts strictly greater than r.ts.
		i := sort.Search(n, func(i int) bool { return live[i].ts > r.ts })
		s.recs = append(s.recs, rec{})
		pos := s.start + i
		copy(s.recs[pos+1:], s.recs[pos:])
		s.recs[pos] = r
	}
	if len(s.recs)-s.start > s.opts.MaxEvents {
		s.start++
		s.evicted++
	}
	// Amortized compaction keeps total memory ≤ ~2× the live bound.
	if s.start > 4096 && s.start > len(s.recs)/2 {
		n := copy(s.recs, s.recs[s.start:])
		s.recs = s.recs[:n]
		s.start = 0
	}
}

// account folds r into its tenant's tier-1 window index.
func (s *Store) account(r *rec) {
	tw := s.byTenant[r.tenant]
	if tw == nil {
		tw = &tenantWindows{}
		s.byTenant[r.tenant] = tw
	}
	bucket := int64(math.Floor(r.ts / s.opts.WindowSec))
	var w *window
	if n := len(tw.wins); n > 0 && tw.wins[n-1].bucket == bucket {
		w = tw.wins[n-1] // common case: current window
	} else {
		i := sort.Search(len(tw.wins), func(i int) bool { return tw.wins[i].bucket >= bucket })
		if i < len(tw.wins) && tw.wins[i].bucket == bucket {
			w = tw.wins[i]
		} else {
			w = &window{bucket: bucket, firstTS: r.ts, lastTS: r.ts}
			tw.wins = append(tw.wins, nil)
			copy(tw.wins[i+1:], tw.wins[i:])
			tw.wins[i] = w
			if len(tw.wins) > s.opts.MaxWindows {
				copy(tw.wins, tw.wins[1:])
				tw.wins = tw.wins[:len(tw.wins)-1]
				tw.dropped++
			}
		}
	}
	w.events++
	if r.ts < w.firstTS {
		w.firstTS = r.ts
	}
	if r.ts > w.lastTS {
		w.lastTS = r.ts
	}
	switch r.class {
	case clsFailure:
		w.failures++
	case clsCascade:
		w.cascades++
	case clsRepair:
		w.repairs++
	case clsEvacuate:
		w.evacuations++
	case clsShift:
		w.shifts++
	case clsWakeReq:
		w.wakeRequests++
	case clsLinkWake:
		w.linkWakes++
	case clsLinkSleep:
		w.linkSleeps++
	case clsProbe:
		w.probes++
	case clsSwap:
		w.swaps++
	case clsReplanFail:
		w.replanFailures++
	case clsDegraded:
		w.degraded++
	case clsRecovered:
		w.recovered++
	case clsRetry:
		w.retries++
	}
}

// Ingest reads a whole JSONL stream, line by line. Malformed lines are
// skipped and counted; only the reader's own error (if any) is
// returned. Lines longer than 1 MiB are treated as corrupt.
func (s *Store) Ingest(r io.Reader) (added, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if s.IngestLine(line) {
			added++
		} else {
			skipped++
		}
	}
	if serr := sc.Err(); serr != nil {
		// A stream dying mid-line (bufio.ErrTooLong, I/O error) keeps
		// everything ingested so far; the partial line counts skipped.
		s.mu.Lock()
		s.skipped++
		s.mu.Unlock()
		skipped++
		if serr != bufio.ErrTooLong {
			err = serr
		}
	}
	return added, skipped, err
}

// Stats returns the store's bookkeeping counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Events:   len(s.recs) - s.start,
		Ingested: s.ingested,
		Skipped:  s.skipped,
		Evicted:  s.evicted,
		Tenants:  0,
	}
	for _, tw := range s.byTenant {
		st.Windows += len(tw.wins)
		st.WindowsDropped += tw.dropped
		st.Tenants++
	}
	return st
}
