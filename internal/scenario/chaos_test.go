package scenario

// The chaos soak: the acceptance harness for the correlated-failure
// model and the fault-injected control loop. On three generated
// families it drives an SRLG cascade storm through a lifecycle manager
// whose replan path faults at up to 50 % — and requires the invariant
// checker clean, Degraded always entered AND exited, no starving flows
// outside the disruption window, and (in the oblivious regime) a
// post-recovery data plane bit-identical to a fault-free run at the
// same seed.

import (
	"testing"

	"response/internal/faultinject"
	"response/internal/lifecycle"
	"response/internal/topogen"
	"response/internal/verify"
)

// soakFamilies: the ≥3 generated families the acceptance criterion
// names. Sizes keep each run in the seconds range so the soak stays
// race-detector friendly.
func soakFamilies() []topogen.Config {
	return []topogen.Config{
		{Family: topogen.FamilyFatTree, Size: 4, Seed: 1},
		{Family: topogen.FamilyISP, Size: 4, Seed: 2},
		{Family: topogen.FamilyWaxman, Size: 20, Seed: 3},
	}
}

// chaosConfig is the storm-plus-faults regime: two shared-risk groups
// cut whole at t=4800 s with cascades behind them, while the replan
// path errors half the time and panics, stalls, and corrupts artifacts
// on top. FailFirst ≥ DegradedAfter guarantees the manager reaches
// Degraded on the first trigger, so the exit path is always exercised.
func chaosConfig(inst *topogen.Instance, seed int64) Config {
	return Config{
		Seed:     seed,
		Flows:    300,
		Duration: 4 * 3600,
		StepSec:  900,
		PeakUtil: 0.6,

		SRLGs:       inst.SRLGs,
		StormSRLGs:  2,
		StormAt:     4800,
		CascadeProb: 0.5,
		RepairAfter: 900,
		RepairEvery: 300,

		ReplanDeviation: 0.2,
		ReplanDeadline:  900,
		DegradedAfter:   2,
		Faults: faultinject.Config{
			FailFirst: 2, ErrorRate: 0.5, PanicRate: 0.05,
			SlowRate: 0.1, CorruptRate: 0.1, TruncateRate: 0.05,
		},
	}
}

// disruptionEnd bounds the storm window: last scheduled repair of the
// worst case (every group link plus every possible cascade casualty on
// the rolling schedule) plus the sleep/settle transient.
func disruptionEnd(cfg Config, cuts int) float64 {
	cascadeTail := float64(cfg.CascadeDepth) * cfg.CascadeDelay
	repairs := cfg.RepairAfter + float64(cuts)*cfg.RepairEvery
	return cfg.StormAt + cascadeTail + repairs + 120
}

func TestChaosSoakGeneratedFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	for _, tc := range soakFamilies() {
		tc := tc
		t.Run(string(tc.Family), func(t *testing.T) {
			inst, err := topogen.Generate(tc)
			if err != nil {
				t.Fatal(err)
			}
			if rep := verify.CheckSRLGs(inst.Topo, inst.SRLGs); !rep.Ok() {
				t.Fatal(rep.Err())
			}
			cfg := chaosConfig(inst, 100+tc.Seed)
			cfg.defaults()
			r, err := NewDiurnal(inst.Topo, inst.Endpoints, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Calm before the storm: nothing may starve.
			r.Advance(cfg.StormAt - 10)
			if n := r.Starving(); n != 0 {
				t.Fatalf("%d flows starving before the storm", n)
			}

			// Through the storm, cascades and rolling repairs.
			r.Advance(cfg.Duration - (cfg.StormAt - 10))
			if end := disruptionEnd(cfg, len(flattenGroups(r.stormGroups))+r.cascaded); end > cfg.Duration {
				t.Fatalf("disruption window %.0f s overruns the %g s horizon; shrink the repair schedule", end, cfg.Duration)
			}

			// The manager must always leave Degraded: with faults still
			// firing at 50 % the exit is probabilistic per retry, so give
			// the backoff loop a bounded cooldown to land a success.
			for extra := 0.0; r.Mgr.State() == lifecycle.StateDegraded; extra += cfg.StepSec {
				if extra >= 2*3600 {
					t.Fatalf("manager still Degraded %.0f s after the horizon", extra)
				}
				r.Advance(cfg.StepSec)
			}

			res := r.Finish()
			if !res.Healthy() {
				t.Errorf("final state %q, want healthy", res.FinalState)
			}
			if res.DegradedEntered == 0 {
				t.Error("manager never entered Degraded despite FailFirst ≥ DegradedAfter")
			}
			if res.DegradedEntered != res.DegradedExited {
				t.Errorf("degraded entered %d times but exited %d", res.DegradedEntered, res.DegradedExited)
			}
			if res.ReplanFailed == 0 || res.InjectedFaults == 0 {
				t.Errorf("fault injection idle: %d failed cycles, %d injected faults",
					res.ReplanFailed, res.InjectedFaults)
			}
			if res.Failed == 0 || res.Repaired != res.Failed {
				t.Errorf("failed %d links, repaired %d — storm or repair schedule broken",
					res.Failed, res.Repaired)
			}
			if n := r.Starving(); n != 0 {
				t.Errorf("%d flows starving after recovery", n)
			}

			// The surviving control state must satisfy every invariant:
			// the installed plan's tables and the SRLG model stay clean.
			tb := r.Mgr.CurrentPlan().Tables()
			if rep := verify.CheckTables(inst.Topo, tb, verify.Opts{}); !rep.Ok() {
				t.Errorf("post-chaos tables: %v", rep.Err())
			}
		})
	}
}

// flattenGroups counts the distinct links the SRLG storm cut.
func flattenGroups(groups []topogen.SRLG) []int {
	seen := map[int]bool{}
	for _, g := range groups {
		for _, l := range g.Links {
			seen[int(l)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	return out
}

// TestChaosFingerprintMatchesFaultFree: the recovery-exactness half of
// the acceptance criterion. In the oblivious regime (replans recompute
// the plan-time answer, load too low for any load-driven shift or
// cascade) a fault-injected run and a fault-free run at the same seed
// must converge to bit-identical data planes once the degraded pin is
// restored and the sleep transients settle — proving chaos touched
// nothing durable.
func TestChaosFingerprintMatchesFaultFree(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos fingerprint soak in -short mode")
	}
	for _, tc := range soakFamilies() {
		tc := tc
		t.Run(string(tc.Family), func(t *testing.T) {
			inst, err := topogen.Generate(tc)
			if err != nil {
				t.Fatal(err)
			}
			run := func(faulty bool, minHorizon float64) (Result, uint64, int, float64) {
				cfg := chaosConfig(inst, 200+tc.Seed)
				cfg.PeakUtil = 0.04 // shift-free: nothing ever crosses the TE threshold
				cfg.ObliviousReplan = true
				if !faulty {
					cfg.Faults = faultinject.Config{}
				}
				cfg.defaults()
				r, err := NewDiurnal(inst.Topo, inst.Endpoints, cfg)
				if err != nil {
					t.Fatal(err)
				}
				r.Advance(cfg.Duration)
				horizon := cfg.Duration
				// Cooldown until the manager has been out of Degraded for
				// two whole steps: the exit restores the plan's pin, and
				// the awakened links need SleepAfterIdle to re-sleep before
				// the data plane is comparable.
				for extra, settled := 0.0, 0; settled < 2; extra += cfg.StepSec {
					if extra >= 2*3600 {
						t.Fatalf("faulty=%v: still Degraded %.0f s past the horizon", faulty, extra)
					}
					r.Advance(cfg.StepSec)
					horizon += cfg.StepSec
					if r.Mgr.State() == lifecycle.StateDegraded {
						settled = 0
					} else {
						settled++
					}
				}
				// Equal horizons: both runs must end at the same simulated
				// instant, or the diurnal phase alone would split the
				// fingerprints. The twin advances to whichever horizon is
				// longer; StateFingerprint is compared only then.
				if horizon < minHorizon {
					r.Advance(minHorizon - horizon)
					horizon = minHorizon
				}
				return r.Finish(), r.Sim.StateFingerprint(), r.Ctrl.Shifts, horizon
			}

			faultyRes, faultyFP, faultyShifts, horizon := run(true, 0)
			if faultyRes.DegradedEntered == 0 || faultyRes.DegradedEntered != faultyRes.DegradedExited {
				t.Fatalf("faulty run degraded entered/exited = %d/%d, want matched and > 0",
					faultyRes.DegradedEntered, faultyRes.DegradedExited)
			}
			if faultyRes.Swaps != 0 {
				t.Fatalf("oblivious run staged %d swaps; fingerprint comparison void", faultyRes.Swaps)
			}

			cleanRes, cleanFP, cleanShifts, cleanHorizon := run(false, horizon)
			if cleanHorizon != horizon {
				t.Fatalf("horizons diverged: %.0f faulty vs %.0f clean; comparison void", horizon, cleanHorizon)
			}
			// At 4 % load nothing crosses the TE threshold, so every shift
			// is a storm failover — and the storm is identical in both
			// runs. Unequal counts would mean the fault injection leaked
			// into the controller's decisions.
			if faultyShifts != cleanShifts {
				t.Fatalf("shifts = %d faulty / %d clean; fault injection leaked into TE decisions",
					faultyShifts, cleanShifts)
			}
			if cleanRes.DegradedEntered != 0 {
				t.Fatalf("fault-free run entered Degraded %d times", cleanRes.DegradedEntered)
			}
			if faultyFP != cleanFP {
				t.Errorf("post-recovery state fingerprint %016x differs from fault-free %016x",
					faultyFP, cleanFP)
			}
		})
	}
}
