package scenario

// Scenario runs over generated topologies (ISSUE 5): the online
// runtime — simulator, controller, lifecycle manager — must drive
// topogen instances exactly as it drives the built-in networks, and
// its incremental allocator must stay behaviorally identical to the
// global reference mode on them.

import (
	"testing"

	"response/internal/topogen"
)

func generatedInstance(t *testing.T, fam topogen.Family, size int, seed int64) *topogen.Instance {
	t.Helper()
	inst, err := topogen.Generate(topogen.Config{Family: fam, Size: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestGeneratedDiurnalScenario replays a diurnal day on a generated
// Waxman mesh under both allocator modes: the runs must carry load and
// agree action for action (identical controller fingerprints).
func TestGeneratedDiurnalScenario(t *testing.T) {
	inst := generatedInstance(t, topogen.FamilyWaxman, 16, 2)
	run := func(full bool) Result {
		cfg := Config{Seed: 5, Flows: 300, Duration: 2 * 3600, FullAllocate: full}
		r, err := NewDiurnal(inst.Topo, inst.Endpoints, cfg)
		if err != nil {
			t.Fatalf("full=%v: %v", full, err)
		}
		r.Advance(cfg.Duration)
		return r.Finish()
	}
	inc, ref := run(false), run(true)
	if inc.Fingerprint != ref.Fingerprint {
		t.Errorf("allocator modes diverge on generated topology: %016x vs %016x",
			inc.Fingerprint, ref.Fingerprint)
	}
	if inc.Flows != 300 {
		t.Errorf("flows = %d, want 300", inc.Flows)
	}
	// The matched peak sits at 0.6 of the multipath max-flow; fixed
	// 3-level tables retain less than that on irregular meshes (see
	// verify.TableScale), so high-but-not-full delivery is the correct
	// steady state here.
	if f := inc.DeliveredFrac(); f < 0.85 {
		t.Errorf("delivered fraction %.3f < 0.85 on generated topology", f)
	}
	if inc.Decisions == 0 {
		t.Error("controller made no decisions over a simulated day")
	}
}

// TestGeneratedScenarioDeterminism: identical Config on the same
// generated instance reproduces the identical Result fingerprint.
func TestGeneratedScenarioDeterminism(t *testing.T) {
	inst := generatedInstance(t, topogen.FamilyISP, 4, 3)
	run := func() Result {
		r, err := NewDiurnal(inst.Topo, inst.Endpoints, Config{Seed: 9, Flows: 200, Duration: 7200})
		if err != nil {
			t.Fatal(err)
		}
		r.Advance(7200)
		return r.Finish()
	}
	a, b := run(), run()
	if a.Fingerprint != b.Fingerprint || a.DeliveredBytes != b.DeliveredBytes {
		t.Errorf("generated scenario not deterministic: %016x/%.1f vs %016x/%.1f",
			a.Fingerprint, a.DeliveredBytes, b.Fingerprint, b.DeliveredBytes)
	}
}

// TestGeneratedReplanScenario closes the lifecycle loop on a generated
// network: diurnal drift past the deviation threshold must trigger
// replans and complete hot swaps mid-replay, with the books intact.
func TestGeneratedReplanScenario(t *testing.T) {
	inst := generatedInstance(t, topogen.FamilyWaxman, 14, 6)
	cfg := Config{
		Seed:            4,
		Flows:           200,
		Duration:        12 * 3600,
		ReplanDeviation: 0.1,
		ReplanSpread:    0.25,
	}
	r, err := NewDiurnal(inst.Topo, inst.Endpoints, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mgr == nil {
		t.Fatal("replan config did not attach a lifecycle manager")
	}
	r.Advance(cfg.Duration)
	res := r.Finish()
	met := r.Mgr.Metrics()
	if met.Checks == 0 {
		t.Fatal("lifecycle manager never checked for deviation")
	}
	if met.Replans == 0 {
		t.Errorf("no replan fired over half a simulated day of drift (metrics %+v)", met)
	}
	if met.SwapsDone != res.Swaps {
		t.Errorf("swaps done %d vs result %d", met.SwapsDone, res.Swaps)
	}
	if f := res.DeliveredFrac(); f < 0.9 {
		t.Errorf("delivered fraction %.3f < 0.9 across replans", f)
	}
}
