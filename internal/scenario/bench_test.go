package scenario

// Online-runtime benchmarks: each op replays one simulated hour of the
// GÉANT diurnal scenario (demand steps every 15 min, REsPoNseTE
// probing every 60 s) on a warmed-up runtime, so ns/op is "wall time
// per simulated hour" and allocs/op is the steady-state allocation
// rate of the whole online stack (simulator + controller).
//
// Pre-rebuild comparison, measured on this machine with the seed
// runtime driving an equivalent diurnal step harness — same topology,
// plan tables, flow counts and 60 s probe period (Xeon @ 2.10GHz):
//
//	flows   seed runtime          rebuilt runtime      ratio
//	 1k      40.3 ms/op, 235,503 allocs/op   5.3 ms/op, 324 allocs/op   7.6× / 727×
//	 5k     179.2 ms/op, 1,172,819 allocs/op  25.3 ms/op, 324 allocs/op  7.1× / 3,620×
//	100k    (extrapolated ≥3.6 s/op, ≥23M allocs/op — linear in flows)
//
// The seed runtime's allocations grew linearly with flow count (a
// closure + utils slice per flow per probe, map-based allocation per
// settle); the rebuilt runtime's are flat — the probe wheel pools its
// buffers and the allocator reuses epoch-stamped workspaces.

import (
	"testing"
)

func benchReplay(b *testing.B, flows int, saturate bool) {
	cfg := Config{Seed: 1, Flows: flows}
	if saturate {
		cfg.PeakUtil = 0.75 // overload: heavy shifting every probe round
	}
	r, err := NewGeantDiurnal(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r.Advance(3600) // warm up: pools filled, sleep state settled
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Advance(3600)
	}
	b.StopTimer()
	res := r.Finish()
	b.ReportMetric(float64(res.Shifts)/float64(b.N+1), "shifts/hour")
	b.ReportMetric(100*res.DeliveredFrac(), "delivered%")
}

// BenchmarkOnline100kFlows is the acceptance benchmark: a sustained
// 100k-managed-flow diurnal replay.
func BenchmarkOnline100kFlows(b *testing.B) { benchReplay(b, 100_000, false) }

// BenchmarkOnline100kFlowsSaturated runs the same replay in permanent
// overload, where nearly every probe round shifts traffic and the
// allocator re-solves large components continuously.
func BenchmarkOnline100kFlowsSaturated(b *testing.B) { benchReplay(b, 100_000, true) }

// BenchmarkOnlineDiurnal1k / 5k are the direct A/B points against the
// seed runtime (numbers in the header comment).
func BenchmarkOnlineDiurnal1k(b *testing.B) { benchReplay(b, 1_000, false) }
func BenchmarkOnlineDiurnal5k(b *testing.B) { benchReplay(b, 5_000, false) }

// BenchmarkOnlineDiurnal5kFullAllocate runs the reference global
// allocator on every settle — the in-tree proxy for the seed
// runtime's solve-everything behavior (it still benefits from the
// rebuilt kernel and probe wheel, so the seed was slower still).
func BenchmarkOnlineDiurnal5kFullAllocate(b *testing.B) {
	r, err := NewGeantDiurnal(Config{Seed: 1, Flows: 5_000, FullAllocate: true})
	if err != nil {
		b.Fatal(err)
	}
	r.Advance(3600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Advance(3600)
	}
}

// BenchmarkOnlineFailureStorm measures failure reaction at scale: each
// op fails 5 links under 20k managed flows, lets the evacuations play
// out for 10 simulated minutes, repairs, and lets consolidation pull
// traffic back. Reaction cost is proportional to the flows crossing
// the failed links (the inverted index), not to the flow population.
func BenchmarkOnlineFailureStorm(b *testing.B) {
	r, err := NewGeantDiurnal(Config{Seed: 1, Flows: 20_000, StormLinks: 5})
	if err != nil {
		b.Fatal(err)
	}
	r.Advance(3600)
	links := r.StormLinks()
	warmWakes := r.Ctrl.Wakes // exclude warm-up activity from the metric
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range links {
			r.Sim.FailLink(l)
		}
		r.Advance(600)
		for _, l := range links {
			r.Sim.RepairLink(l)
		}
		r.Advance(600)
	}
	b.StopTimer()
	res := r.Finish()
	b.ReportMetric(float64(res.Wakes-warmWakes)/float64(b.N), "wakes/storm")
}
