// Package scenario is the online runtime's workload catalog: named,
// seed-deterministic large-scale scenarios (diurnal replay, flash
// crowd, correlated failure storm, rolling repair, the Click failover)
// that drive the fluid simulator and the REsPoNseTE controller with up
// to hundreds of thousands of managed flows.
//
// Each scenario returns a Result carrying the controller's action
// counters and behavioral fingerprint, so runs can be compared across
// machines, allocator modes (incremental vs. FullAllocate) and code
// revisions — the online analog of the planner's pinned plan
// fingerprints.
package scenario

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"response"
	"response/internal/core"
	"response/internal/faultinject"
	"response/internal/lifecycle"
	"response/internal/mcf"
	"response/internal/metrics"
	"response/internal/power"
	"response/internal/sim"
	"response/internal/te"
	"response/internal/topo"
	"response/internal/topogen"
	"response/internal/trace"
	"response/internal/traffic"
)

// Config parameterizes a scenario. The zero value plus a name gives a
// small smoke-scale run; presets fill scenario-specific fields.
type Config struct {
	// Seed drives every random choice (endpoint subset, per-flow
	// diurnal phase, flash-crowd membership, storm link selection).
	// Identical Config ⇒ identical Result, including the fingerprint.
	Seed int64
	// Flows is the number of managed flows (default 1000), spread
	// across the planned origin–destination pairs.
	Flows int
	// Duration is the simulated time in seconds (default 6 h).
	Duration float64
	// StepSec is the demand-update interval (default 900 s, the
	// 15-minute granularity of the GÉANT traces).
	StepSec float64
	// PeakUtil scales the aggregate diurnal peak to this fraction of
	// the maximum feasible load (default 0.6: peaks cross the
	// activation threshold on the hot links without drowning the whole
	// network; push it toward 1 for a saturation stress test).
	PeakUtil float64

	// Flash crowd: at FlashAt, the demand of FlashFraction of the
	// flows multiplies by FlashFactor for FlashDuration seconds.
	FlashAt       float64
	FlashDuration float64
	FlashFactor   float64
	FlashFraction float64

	// Failure storm: at StormAt, StormLinks randomly chosen links fail
	// together. When RepairEvery > 0, repairs roll out one link every
	// RepairEvery seconds starting RepairAfter seconds after the storm.
	StormAt     float64
	StormLinks  int
	RepairAfter float64
	RepairEvery float64

	// Correlated failures (the srlgstorm/chaos presets): instead of —
	// or in addition to — StormLinks independent cuts, StormSRLGs
	// randomly chosen shared-risk groups fail whole at StormAt (one
	// fiber cut takes every link in its conduit/pod/PoP). SRLGs is the
	// group model, typically a topogen Instance's derived SRLGs; the
	// GÉANT presets derive geometric conduits when it is empty.
	SRLGs      []topogen.SRLG
	StormSRLGs int
	// Cascading failure chains: for CascadeDepth rounds spaced
	// CascadeDelay seconds after the storm (defaults 3 and 60), every
	// surviving link at or above CascadeUtil utilization (default 0.9)
	// fails with probability CascadeProb — overload propagates along
	// the chain statistics instead of striking independently. The
	// cascade draws its own rng stream from Seed, so enabling it never
	// perturbs the pinned storm selection.
	CascadeProb  float64
	CascadeUtil  float64
	CascadeDepth int
	CascadeDelay float64

	// Faults injects control-plane failures (the chaos preset): the
	// replan path and the artifact staging path run through a
	// faultinject.Injector with these rates. Requires the lifecycle
	// manager (ReplanDeviation > 0) to have a control plane to break.
	Faults faultinject.Config

	// Lifecycle replanning (the replan scenario): when ReplanDeviation
	// is > 0 a lifecycle.Manager monitors per-pair drift against the
	// plan-time matrix and hot-swaps freshly replanned tables into the
	// running controller mid-replay, with the deviation-triggered
	// policy of paper §2/§3.
	ReplanDeviation float64 // per-pair relative change counting as deviating
	ReplanSpread    float64 // deviating-pair fraction that fires (default 0.25)
	ReplanCheck     float64 // monitor cadence (default StepSec)
	ReplanMinGap    float64 // min seconds between replans (default 2×StepSec)
	ReplanLatency   float64 // modeled background compute+deploy (default 60)
	ReplanDeadline  float64 // replan compute budget; blown = failed cycle (0 = unbounded)
	DegradedAfter   int     // consecutive failed cycles before the all-on fallback (lifecycle default 3)
	// ObliviousReplan recomputes plans for the plan-time (ε) demand
	// instead of the live matrix, so every successful cycle is a
	// fingerprint-unchanged no-op. The chaos soak uses it to compare a
	// fault-injected run's converged state against a fault-free run at
	// the same seed: with no swaps ever staged, both runs' data planes
	// must end bit-identical.
	ObliviousReplan bool

	// Events, when non-nil, receives the opt-in JSONL event trace of
	// controller decisions, simulator link transitions, lifecycle
	// transitions and chaos injections.
	Events *trace.EventWriter
	// Metrics, when non-nil, receives zero-alloc observability counters
	// from the same subsystems — the /metrics Prometheus feed.
	Metrics *metrics.Runtime

	// Period is the controller probe period (default 60 s — at replay
	// scale, probing at the paper's max-RTT period would dominate the
	// event stream without changing the outcome).
	Period float64
	// FullAllocate runs the simulator's global reference allocator
	// instead of the incremental one (cross-checking).
	FullAllocate bool
	// Power meters energy with the Cisco12000 model (off by default at
	// scale: metering walks every link per settle).
	Power bool
}

func (c *Config) defaults() {
	if c.Flows == 0 {
		c.Flows = 1000
	}
	if c.Duration == 0 {
		c.Duration = 6 * 3600
	}
	if c.StepSec == 0 {
		c.StepSec = 900
	}
	if c.PeakUtil == 0 {
		c.PeakUtil = 0.6
	}
	if c.Period == 0 {
		c.Period = 60
	}
	if c.CascadeUtil == 0 {
		c.CascadeUtil = 0.9
	}
	if c.CascadeDepth == 0 {
		c.CascadeDepth = 3
	}
	if c.CascadeDelay == 0 {
		c.CascadeDelay = 60
	}
}

// Result summarizes a scenario run.
type Result struct {
	Name         string
	Flows        int
	SimulatedSec float64

	// Controller action counters and behavioral fingerprint.
	Decisions   int
	Shifts      int
	Wakes       int
	Fingerprint uint64

	// MaxUtil is the worst arc utilization observed at any demand step.
	MaxUtil float64

	// Lifecycle counters (the replan scenario): completed replan
	// computations, fully drained hot swaps, and flows migrated.
	Replans       int
	Swaps         int
	MigratedFlows int
	// Robustness counters (the srlgstorm/chaos presets): failed replan
	// cycles, backoff retries, Degraded fallback transitions and dwell
	// time, injected control-plane faults, and links lost to cascade
	// rounds (Failed includes them). FinalState is the lifecycle
	// manager's state when the run ended ("" without a manager).
	ReplanFailed    int
	Retries         int
	DegradedEntered int
	DegradedExited  int
	DegradedSec     float64
	InjectedFaults  int
	Cascaded        int
	FinalState      string
	// DeliveredBytes / OfferedBytes measure how much of the offered
	// load the runtime carried.
	DeliveredBytes float64
	OfferedBytes   float64
	// AvgPowerPct is the mean metered power (0 without Config.Power).
	AvgPowerPct float64

	Failed   int
	Repaired int
}

// DeliveredFrac is delivered/offered (1 when nothing was offered).
func (r Result) DeliveredFrac() float64 {
	if r.OfferedBytes <= 0 {
		return 1
	}
	return r.DeliveredBytes / r.OfferedBytes
}

// Healthy reports whether the control loop ended in a steady state:
// the lifecycle manager (when one ran) finished outside the Degraded
// fallback. CLI runs use it as their exit condition.
func (r Result) Healthy() bool {
	return r.FinalState != lifecycle.StateDegraded.String()
}

// Print writes the result as a small table.
func (r Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Scenario %s — %d flows over %.0f s simulated\n", r.Name, r.Flows, r.SimulatedSec)
	fmt.Fprintf(w, "  decisions %d, shifts %d, wakes %d\n", r.Decisions, r.Shifts, r.Wakes)
	fmt.Fprintf(w, "  delivered %.1f%% of offered load, max arc util %.2f\n",
		100*r.DeliveredFrac(), r.MaxUtil)
	if r.Failed > 0 || r.Repaired > 0 {
		fmt.Fprintf(w, "  links failed %d (%d by cascade), repaired %d\n",
			r.Failed, r.Cascaded, r.Repaired)
	}
	if r.Replans > 0 || r.Swaps > 0 {
		fmt.Fprintf(w, "  replans %d, hot swaps %d, flows migrated %d\n",
			r.Replans, r.Swaps, r.MigratedFlows)
	}
	if r.InjectedFaults > 0 || r.ReplanFailed > 0 || r.DegradedEntered > 0 {
		fmt.Fprintf(w, "  injected faults %d, failed cycles %d, retries %d\n",
			r.InjectedFaults, r.ReplanFailed, r.Retries)
		fmt.Fprintf(w, "  degraded entered %d, exited %d (%.0f s pinned all-on), final state %s\n",
			r.DegradedEntered, r.DegradedExited, r.DegradedSec, r.FinalState)
	}
	if r.AvgPowerPct > 0 {
		fmt.Fprintf(w, "  mean power %.1f%% of all-on\n", r.AvgPowerPct)
	}
	fmt.Fprintf(w, "  fingerprint %016x\n", r.Fingerprint)
}

// Names lists the runnable scenario presets.
func Names() []string {
	return []string{"diurnal", "flash", "storm", "repair", "click", "replan", "srlgstorm", "chaos"}
}

// geantConduitKm is the proximity radius the GÉANT presets derive
// their SRLG model with: at continental scale, links whose midpoints
// run within 300 km share a corridor.
const geantConduitKm = 300

// stormDefaults fills the correlated-failure preset fields.
func stormDefaults(cfg *Config) {
	if cfg.StormSRLGs == 0 {
		cfg.StormSRLGs = 2
	}
	if cfg.StormAt == 0 {
		cfg.StormAt = cfg.Duration / 3
	}
	if cfg.CascadeProb == 0 {
		cfg.CascadeProb = 0.5
	}
	if cfg.RepairEvery == 0 {
		cfg.RepairEvery = cfg.StepSec / 2
	}
	if cfg.RepairAfter == 0 {
		cfg.RepairAfter = cfg.StepSec
	}
}

// Run executes a named scenario preset.
func Run(name string, cfg Config) (Result, error) {
	cfg.defaults()
	needSRLGs := false
	switch name {
	case "diurnal":
	case "flash":
		if cfg.FlashFactor == 0 {
			cfg.FlashFactor = 3
		}
		if cfg.FlashFraction == 0 {
			cfg.FlashFraction = 0.1
		}
		if cfg.FlashAt == 0 {
			cfg.FlashAt = cfg.Duration / 3
		}
		if cfg.FlashDuration == 0 {
			cfg.FlashDuration = cfg.Duration / 6
		}
	case "storm":
		if cfg.StormLinks == 0 {
			cfg.StormLinks = 5
		}
		if cfg.StormAt == 0 {
			cfg.StormAt = cfg.Duration / 3
		}
	case "repair":
		if cfg.StormLinks == 0 {
			cfg.StormLinks = 5
		}
		if cfg.StormAt == 0 {
			cfg.StormAt = cfg.Duration / 3
		}
		if cfg.RepairEvery == 0 {
			cfg.RepairEvery = cfg.StepSec / 2
		}
		if cfg.RepairAfter == 0 {
			cfg.RepairAfter = cfg.StepSec
		}
	case "click":
		return ClickFailover(cfg)
	case "replan":
		// Diurnal drift past the deviation threshold, background
		// replan, table hot-swap mid-replay.
		if cfg.ReplanDeviation == 0 {
			cfg.ReplanDeviation = 0.2
		}
	case "srlgstorm":
		// Correlated cut: whole shared-risk groups fail together, then
		// overloaded survivors cascade.
		needSRLGs = true
		stormDefaults(&cfg)
	case "chaos":
		// srlgstorm plus a fault-injected control plane: the lifecycle
		// manager replans through the injector while the network burns.
		needSRLGs = true
		stormDefaults(&cfg)
		if cfg.ReplanDeviation == 0 {
			cfg.ReplanDeviation = 0.2
		}
		if cfg.ReplanDeadline == 0 {
			cfg.ReplanDeadline = cfg.StepSec
		}
		if !cfg.Faults.Any() {
			cfg.Faults = faultinject.Config{
				FailFirst: 3, ErrorRate: 0.25, PanicRate: 0.05,
				SlowRate: 0.1, CorruptRate: 0.1, TruncateRate: 0.05,
			}
		}
	default:
		return Result{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	g := topo.NewGeant()
	if needSRLGs && len(cfg.SRLGs) == 0 {
		cfg.SRLGs = topogen.ProximitySRLGs(g, geantConduitKm)
	}
	r, err := NewDiurnal(g, nil, cfg)
	if err != nil {
		return Result{}, err
	}
	r.Advance(cfg.Duration)
	res := r.Finish()
	res.Name = name
	return res, nil
}

// Replay is a running scenario: a planned topology, a populated
// simulator/controller pair and the demand program driving them.
// Benchmarks Advance it window by window; Run drives it end to end.
type Replay struct {
	Topo *topo.Topology
	Sim  *sim.Simulator
	Ctrl *te.Controller
	// Mgr is the plan lifecycle manager (nil unless the replan
	// scenario enabled it with Config.ReplanDeviation > 0).
	Mgr *lifecycle.Manager

	cfg   Config
	flows []*sim.Flow
	base  []float64 // per-flow peak demand
	phase []float64 // per-flow diurnal phase jitter
	flash []bool    // flash-crowd membership

	// idx maps a live flow ID to its slot in flows, so lifecycle
	// hot-swaps can re-point the slot to the replacement flow (only
	// populated when the lifecycle manager is attached).
	idx          map[int]int
	retiredBytes float64 // delivered bytes of flows retired by swaps

	stormOrder []topo.LinkID
	stormDone  bool

	// Correlated-failure state: the SRLG groups the storm cuts, the
	// cascade's private rng stream, and the set of currently cut links
	// (cascade rounds and rolling repairs share it).
	stormGroups []topogen.SRLG
	cascadeRng  *rand.Rand
	cut         map[topo.LinkID]bool
	cascaded    int

	// inj is the control-plane fault injector (nil unless Config.Faults
	// set any rate).
	inj *faultinject.Injector

	offered     float64
	offeredRate float64 // current aggregate demand, for offered integration
	lastCharge  float64
	maxUtil     float64
	failed      int
	repaired    int
	start       float64
	nextStep    float64
}

// NewGeantDiurnal plans the GÉANT topology and installs cfg.Flows
// managed flows over the planned path levels, each with a
// phase-jittered diurnal demand. Nothing runs until Advance.
func NewGeantDiurnal(cfg Config) (*Replay, error) {
	return NewDiurnal(topo.NewGeant(), nil, cfg)
}

// NewDiurnal is NewGeantDiurnal over an arbitrary topology — built-in
// or generated (response/topogen) — so every scenario in the catalog
// can drive networks beyond the paper's three. endpoints nil selects
// the deterministic random 70 % of the topology's natural endpoints
// (the paper's §5.1 procedure); an explicit list is used as given.
func NewDiurnal(g *topo.Topology, endpoints []topo.NodeID, cfg Config) (*Replay, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	if endpoints == nil {
		// Endpoint subset (§5.1): deterministic random 70% of the PoPs.
		all := core.DefaultEndpoints(g)
		n := int(float64(len(all))*0.7 + 0.5)
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		endpoints = append([]topo.NodeID(nil), all[:n]...)
		sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })
	}

	model := power.Cisco12000{}
	base := traffic.Gravity(g, traffic.GravityOpts{Nodes: endpoints, TotalRate: 1})
	maxScale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.05)
	peak := base.Scale(maxScale * cfg.PeakUtil)
	// Plan through the public facade (identical tables to core.Plan)
	// so the lifecycle manager can stage replacements as versioned
	// plan artifacts.
	planner := response.NewPlanner(response.WithEndpoints(endpoints))
	plan, err := planner.Plan(context.Background(), g)
	if err != nil {
		return nil, fmt.Errorf("scenario: plan: %w", err)
	}
	tables := plan.Tables()

	simOpts := sim.Opts{
		WakeUpDelay:    5, // §5.3's upper bound for existing ISP hardware
		SleepAfterIdle: 60,
		PinnedOn:       tables.AlwaysOnSet,
		FullAllocate:   cfg.FullAllocate,
		Events:         cfg.Events,
		Metrics:        cfg.Metrics,
	}
	if cfg.Power {
		simOpts.Model = model
	}
	s := sim.New(g, simOpts)
	ctrl := te.NewController(s, te.Opts{Threshold: 0.9, Gamma: 0.5, Period: cfg.Period, Events: cfg.Events, Metrics: cfg.Metrics})

	r := &Replay{Topo: g, Sim: s, Ctrl: ctrl, cfg: cfg}
	demands := peak.Demands()
	type pair struct {
		o, d  topo.NodeID
		rate  float64
		paths []topo.Path
	}
	var pairs []pair
	for _, d := range demands {
		ps, ok := tables.PathSetFor(d.O, d.D)
		if !ok {
			continue
		}
		pairs = append(pairs, pair{d.O, d.D, d.Rate, ps.Levels()})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("scenario: no routable pairs")
	}
	perPair := cfg.Flows / len(pairs)
	extra := cfg.Flows % len(pairs)
	for i, p := range pairs {
		k := perPair
		if i < extra {
			k++
		}
		if k == 0 {
			continue
		}
		each := p.rate / float64(k)
		for j := 0; j < k; j++ {
			f, err := s.AddFlow(p.o, p.d, 0, p.paths)
			if err != nil {
				return nil, fmt.Errorf("scenario: flow %d->%d: %w", p.o, p.d, err)
			}
			ctrl.Manage(f)
			r.flows = append(r.flows, f)
			r.base = append(r.base, each)
			r.phase = append(r.phase, rng.Float64()*2*math.Pi)
			r.flash = append(r.flash, rng.Float64() < cfg.FlashFraction)
		}
	}
	// Storm link order, chosen up front so repair order is pinned too.
	if cfg.StormLinks > 0 {
		perm := rng.Perm(g.NumLinks())
		for _, li := range perm[:min(cfg.StormLinks, g.NumLinks())] {
			r.stormOrder = append(r.stormOrder, topo.LinkID(li))
		}
	}
	// SRLG storm selection: whole groups, drawn after (and therefore
	// never perturbing) the independent-cut order above. The cascade
	// rolls its own rng stream so enabling chains cannot shift either
	// selection.
	if cfg.StormSRLGs > 0 && len(cfg.SRLGs) > 0 {
		perm := rng.Perm(len(cfg.SRLGs))
		for _, gi := range perm[:min(cfg.StormSRLGs, len(cfg.SRLGs))] {
			r.stormGroups = append(r.stormGroups, cfg.SRLGs[gi])
		}
	}
	if cfg.CascadeProb > 0 {
		r.cascadeRng = rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e))
	}
	r.applyDemands(0)
	ctrl.Start()
	if cfg.ReplanDeviation > 0 {
		r.idx = make(map[int]int, len(r.flows))
		for i, f := range r.flows {
			r.idx[f.ID] = i
		}
		// Replans are demand-aware: the live matrix replaces the
		// ε-demand as d_low, so drifted traffic reshapes the always-on
		// assignment and a genuinely different plan can stage.
		replan := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
			opts := []response.Option{response.WithLowMatrix(live)}
			if prev, ok := lifecycle.WarmHint(ctx); ok {
				opts = append(opts, response.WithWarmStart(prev))
			}
			return planner.Plan(ctx, g, opts...)
		}
		if cfg.ObliviousReplan {
			// Demand-oblivious: recompute for the plan-time demand, so
			// every successful cycle fingerprint-matches the installed
			// plan (an Unchanged no-op, never a swap). Deliberately cold:
			// a warm-started plan is only power-equal outside the slack
			// regime, which would turn the guaranteed no-op into a swap.
			replan = func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
				return planner.Plan(ctx, g)
			}
		}
		check := cfg.ReplanCheck
		if check == 0 {
			check = cfg.StepSec
		}
		minGap := cfg.ReplanMinGap
		if minGap == 0 {
			minGap = 2 * cfg.StepSec
		}
		opts := lifecycle.Opts{
			CheckEvery:     check,
			Deviation:      cfg.ReplanDeviation,
			Spread:         cfg.ReplanSpread,
			MinInterval:    minGap,
			ReplanLatency:  cfg.ReplanLatency,
			ReplanDeadline: cfg.ReplanDeadline,
			DegradedAfter:  cfg.DegradedAfter,
			Seed:           cfg.Seed,
			Model:          model,
			Events:         cfg.Events,
			Metrics:        cfg.Metrics,
			OnSwap:         r.flowSwapped,
		}
		if cfg.Faults.Any() {
			fc := cfg.Faults
			if fc.Seed == 0 {
				fc.Seed = cfg.Seed + 1
			}
			r.inj = faultinject.New(fc)
			replan = r.inj.WrapReplan(replan)
			opts.ArtifactFilter = r.inj.ArtifactFilter()
		}
		r.Mgr = lifecycle.New(s, ctrl, plan, replan, opts)
		r.Mgr.Start()
	}
	return r, nil
}

// flowSwapped re-points a replay slot from a retired flow to its
// hot-swap replacement at the demand handoff, folding the retired
// flow's delivered bytes into the scenario totals.
func (r *Replay) flowSwapped(old, nf *sim.Flow) {
	i, ok := r.idx[old.ID]
	if !ok {
		return
	}
	r.retiredBytes += r.Sim.Bytes(old)
	delete(r.idx, old.ID)
	r.idx[nf.ID] = i
	r.flows[i] = nf
}

// StormLinks returns the seeded storm link selection (empty unless
// Config.StormLinks > 0); benchmarks use it to drive manual storms.
func (r *Replay) StormLinks() []topo.LinkID { return r.stormOrder }

// Flows returns the number of managed flows installed in the replay.
func (r *Replay) Flows() int { return len(r.flows) }

// InjectedFaults returns the control-plane faults injected so far (0
// without a fault injector). Unlike Finish it does not close the
// books, so a long-running driver — the controld status endpoint —
// can report it mid-replay.
func (r *Replay) InjectedFaults() int {
	if r.inj == nil {
		return 0
	}
	return r.inj.Counts().Faults()
}

// observeUtil folds the current settled worst arc utilization into
// the running maximum.
func (r *Replay) observeUtil() {
	if u := r.Sim.MaxArcUtil(); u > r.maxUtil {
		r.maxUtil = u
	}
}

// demandAt evaluates flow i's offered rate at simulated time t.
func (r *Replay) demandAt(i int, t float64) float64 {
	// Diurnal: trough at 55%−45%, peak at 55%+45% of the flow's base,
	// phase-jittered per flow so steps are not lockstep.
	d := r.base[i] * (0.55 + 0.45*math.Sin(2*math.Pi*t/86400+r.phase[i]))
	if r.flash[i] && t >= r.cfg.FlashAt && t < r.cfg.FlashAt+r.cfg.FlashDuration &&
		r.cfg.FlashFactor > 0 {
		d *= r.cfg.FlashFactor
	}
	return d
}

// applyDemands sets every flow's demand for the step at time t,
// charging the offered-load integral for the interval just ended.
func (r *Replay) applyDemands(t float64) {
	r.offered += r.offeredRate * (t - r.lastCharge) / 8
	r.lastCharge = t
	var total float64
	for i, f := range r.flows {
		d := r.demandAt(i, t)
		r.Sim.SetDemand(f, d)
		total += d
	}
	r.offeredRate = total
}

// Advance runs the scenario for the given additional simulated time,
// scheduling the demand steps and any storm/flash/repair events that
// fall inside the window. Diurnal demand is periodic, so a Replay can
// be advanced indefinitely (benchmarks replay extra days).
func (r *Replay) Advance(seconds float64) {
	end := r.start + seconds
	if r.nextStep == 0 {
		r.nextStep = r.cfg.StepSec
	}
	for ; r.nextStep <= end; r.nextStep += r.cfg.StepSec {
		at := r.nextStep
		r.Sim.Schedule(at, func() {
			// Rates for the interval just ended are settled; observe
			// them before the new demands dirty the allocation.
			r.observeUtil()
			r.applyDemands(at)
		})
	}
	if !r.stormDone && (len(r.stormOrder) > 0 || len(r.stormGroups) > 0) &&
		r.cfg.StormAt > 0 && r.cfg.StormAt >= r.start && r.cfg.StormAt < end {
		r.stormDone = true
		// Flatten the cut list: independent links first (their pinned
		// order predates SRLGs), then whole shared-risk groups.
		cutList := append([]topo.LinkID(nil), r.stormOrder...)
		for _, sg := range r.stormGroups {
			cutList = append(cutList, sg.Links...)
		}
		r.Sim.Schedule(r.cfg.StormAt, func() {
			for _, sg := range r.stormGroups {
				r.cfg.Events.Emit(r.Sim.Now(), "chaos", "srlg-cut", -1, -1, -1, float64(len(sg.Links)))
			}
			for _, l := range cutList {
				r.failLink(l)
			}
			r.scheduleCascades()
		})
		if r.cfg.RepairEvery > 0 {
			for k, l := range cutList {
				at := r.cfg.StormAt + r.cfg.RepairAfter + float64(k)*r.cfg.RepairEvery
				lk := l
				r.Sim.Schedule(at, func() { r.repairLink(lk) })
			}
		}
	}
	r.Sim.Run(end)
	r.start = end
}

// failLink cuts a link once (storm lists and SRLG groups may overlap),
// tracking it for repair bookkeeping.
func (r *Replay) failLink(l topo.LinkID) {
	if r.cut == nil {
		r.cut = make(map[topo.LinkID]bool)
	}
	if r.cut[l] {
		return
	}
	r.cut[l] = true
	r.Sim.FailLink(l)
	r.failed++
}

// repairLink returns a previously cut link to service.
func (r *Replay) repairLink(l topo.LinkID) {
	if !r.cut[l] {
		return
	}
	delete(r.cut, l)
	r.Sim.RepairLink(l)
	r.repaired++
}

// scheduleCascades books the post-storm cascade rounds: CascadeDepth
// rounds, CascadeDelay apart, each failing currently overloaded
// survivors with probability CascadeProb from the cascade's own rng
// stream. Rounds are scheduled from storm time, so the chain timing is
// part of the deterministic replay.
func (r *Replay) scheduleCascades() {
	if r.cascadeRng == nil {
		return
	}
	now := r.Sim.Now()
	for k := 1; k <= r.cfg.CascadeDepth; k++ {
		r.Sim.Schedule(now+float64(k)*r.cfg.CascadeDelay, func() { r.cascadeRound() })
	}
}

// cascadeRound is one step of the chain: every overloaded survivor
// rolls the chain probability; casualties fail now and join the
// rolling-repair schedule.
func (r *Replay) cascadeRound() {
	cands := r.Sim.OverloadedLinks(r.cfg.CascadeUtil)
	idx := 0
	for _, l := range cands {
		if r.cut[l] || r.cascadeRng.Float64() >= r.cfg.CascadeProb {
			continue
		}
		r.failLink(l)
		r.cascaded++
		r.cfg.Events.EmitLink(r.Sim.Now(), "chaos", "cascade", int(l), r.cfg.CascadeProb)
		if r.cfg.RepairEvery > 0 {
			at := r.Sim.Now() + r.cfg.RepairAfter + float64(idx)*r.cfg.RepairEvery
			lk := l
			r.Sim.Schedule(at, func() { r.repairLink(lk) })
		}
		idx++
	}
}

// Starving returns the number of flows currently offered demand but
// achieving zero rate — traffic the network is failing entirely. The
// chaos soak bounds it: outside the storm-to-repair disruption window
// it must be zero (the always-correct fallback guarantee).
func (r *Replay) Starving() int {
	n := 0
	for _, f := range r.flows {
		if f.Demand > 0 && f.Rate() == 0 {
			n++
		}
	}
	return n
}

// Finish closes the books and returns the Result.
func (r *Replay) Finish() Result {
	r.offered += r.offeredRate * (r.start - r.lastCharge) / 8
	r.lastCharge = r.start
	r.observeUtil() // the final interval has no closing step event
	delivered := r.retiredBytes
	for _, f := range r.flows {
		delivered += r.Sim.Bytes(f)
	}
	res := Result{
		Name:           "diurnal",
		Flows:          len(r.flows),
		SimulatedSec:   r.start,
		Decisions:      r.Ctrl.Decisions,
		Shifts:         r.Ctrl.Shifts,
		Wakes:          r.Ctrl.Wakes,
		Fingerprint:    r.Ctrl.Fingerprint(),
		MaxUtil:        r.maxUtil,
		DeliveredBytes: delivered,
		OfferedBytes:   r.offered,
		Failed:         r.failed,
		Repaired:       r.repaired,
	}
	res.Cascaded = r.cascaded
	if r.Mgr != nil {
		lm := r.Mgr.Metrics()
		res.Replans = lm.Replans
		res.Swaps = lm.SwapsDone
		res.MigratedFlows = lm.MigratedFlows
		res.ReplanFailed = lm.ReplanFailed
		res.Retries = lm.Retries
		res.DegradedEntered = lm.DegradedEntered
		res.DegradedExited = lm.DegradedExited
		res.DegradedSec = lm.DegradedSec
		res.FinalState = r.Mgr.State().String()
	}
	if r.inj != nil {
		res.InjectedFaults = r.inj.Counts().Faults()
	}
	if m := r.Sim.Meter(); m != nil && r.start > 0 {
		joules := m.Finish(r.start)
		res.AvgPowerPct = 100 * joules / (m.FullWatts() * r.start)
	}
	return res
}

// ClickFailover is the §5.3 Click-testbed experiment as a scenario:
// two flows on the Figure 3 topology, TE starting at t=5 s, the shared
// middle link failing at t=5.7 s, run to t=8 s. Its scale, timing and
// seedless determinism are pinned — it is the behavioral anchor whose
// fingerprint tests pin — so of cfg only FullAllocate (allocator
// cross-check mode) is honored.
func ClickFailover(cfg Config) (Result, error) {
	ex := topo.NewExample(topo.ExampleOpts{})
	pinned := topo.AllOff(ex.Topology)
	pinned.ActivatePath(ex.Topology, ex.MiddlePath(ex.A))
	pinned.ActivatePath(ex.Topology, ex.MiddlePath(ex.C))
	s := sim.New(ex.Topology, sim.Opts{
		WakeUpDelay:      0.010,
		SleepAfterIdle:   0.050,
		FailureDetect:    0.050,
		FailurePropagate: 0.050,
		Model:            power.Cisco12000{},
		PinnedOn:         pinned,
		FullAllocate:     cfg.FullAllocate,
	})
	ctrl := te.NewController(s, te.Opts{Threshold: 0.9, Gamma: 0.5})
	fa, err := s.AddFlow(ex.A, ex.K, 2.5*topo.Mbps,
		[]topo.Path{ex.MiddlePath(ex.A), ex.UpperPath()})
	if err != nil {
		return Result{}, err
	}
	fc, err := s.AddFlow(ex.C, ex.K, 2.5*topo.Mbps,
		[]topo.Path{ex.MiddlePath(ex.C), ex.LowerPath()})
	if err != nil {
		return Result{}, err
	}
	s.SetShare(fa, []float64{0.5, 0.5})
	s.SetShare(fc, []float64{0.5, 0.5})
	ctrl.Manage(fa)
	ctrl.Manage(fc)
	s.Schedule(5, func() { ctrl.Start() })
	eh, _ := ex.ArcBetween(ex.E, ex.H)
	s.Schedule(5.7, func() { s.FailLink(ex.Arc(eh).Link) })
	s.Run(8)
	offered := 2 * 2.5e6 / 8 * 8 // two flows, full horizon
	return Result{
		Name:           "click",
		Flows:          2,
		SimulatedSec:   8,
		Decisions:      ctrl.Decisions,
		Shifts:         ctrl.Shifts,
		Wakes:          ctrl.Wakes,
		Fingerprint:    ctrl.Fingerprint(),
		MaxUtil:        s.MaxArcUtil(),
		DeliveredBytes: s.Bytes(fa) + s.Bytes(fc),
		OfferedBytes:   offered,
		Failed:         1,
	}, nil
}
