package scenario

import (
	"math"
	"testing"

	"response/internal/lifecycle"
)

// Pinned behavioral fingerprints of the replan scenario at two seeds
// (500 flows, 6 simulated hours): the controller action sequence
// including the retarget/handoff/retire ops of every hot swap. A
// change here means the closed loop — deviation trigger, background
// replan, gating, table hot-swap — changed behavior. Seed 2 was
// re-pinned when the warm subset search gained its early bail (a
// repair that outgrows the warm tolerance now sends the replan to
// the cold pool instead of descending first; one of seed 2's
// deviation replans takes that path).
const (
	replanFingerprintSeed1 = 0xdef13e8d3ba8dd0d
	replanFingerprintSeed2 = 0xd6f998ce53cf6cd3
)

var replanSmall = Config{Flows: 500, Duration: 6 * 3600}

func TestReplanScenarioFingerprints(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		want uint64
	}{
		{1, replanFingerprintSeed1},
		{2, replanFingerprintSeed2},
	} {
		cfg := replanSmall
		cfg.Seed = tc.seed
		res, err := Run("replan", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fingerprint != tc.want {
			t.Errorf("seed %d: fingerprint = %016x, want %016x", tc.seed, res.Fingerprint, tc.want)
		}
		if res.Replans == 0 || res.Swaps == 0 || res.MigratedFlows == 0 {
			t.Errorf("seed %d: replans/swaps/migrated = %d/%d/%d, want all > 0 (loop never closed)",
				tc.seed, res.Replans, res.Swaps, res.MigratedFlows)
		}
		if res.DeliveredFrac() < 0.95 {
			t.Errorf("seed %d: delivered %.3f of offered load through the swaps, want >= 0.95",
				tc.seed, res.DeliveredFrac())
		}
	}
}

// TestReplanSwapDisruptionBound verifies the hot-swap disruption
// bound: sampling every managed flow's delivered rate once per probe
// period across the whole replay, no flow slot may sit below
// min(pre-swap rate, current demand) for more than 2 consecutive
// probe periods while a swap (plus its settling tail) is in progress.
func TestReplanSwapDisruptionBound(t *testing.T) {
	cfg := Config{Seed: 1, Flows: 400, Duration: 6 * 3600, ReplanDeviation: 0.2}
	r, err := NewGeantDiurnal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	period := r.Ctrl.Period()
	n := len(r.flows)
	preSwap := make([]float64, n) // rate snapshot from the last calm window
	badRuns := make([]int, n)     // consecutive below-floor windows per slot
	const tol = 0.02              // 2% slack for damped-controller jitter
	swapTail := 0                 // windows since the swap completed
	observedSwaps := 0
	lastSwaps := 0

	for now := period; now <= cfg.Duration; now += period {
		r.Advance(period)
		swapping := r.Mgr.State() == lifecycle.StateSwapping
		if s := r.Mgr.Metrics().Swaps; s != lastSwaps {
			lastSwaps = s
			observedSwaps++
		}
		if swapping {
			swapTail = 3 // keep checking through the settling tail
		}
		checking := swapping || swapTail > 0
		if swapTail > 0 {
			swapTail--
		}
		for i, f := range r.flows {
			rate := f.Rate()
			if !checking {
				// Calm window: refresh the pre-swap baseline.
				preSwap[i] = rate
				badRuns[i] = 0
				continue
			}
			floor := math.Min(preSwap[i], f.Demand) * (1 - tol)
			if rate < floor {
				badRuns[i]++
				if badRuns[i] > 2 {
					t.Fatalf("t=%.0f: flow slot %d (%d->%d) below its pre-swap share for %d probe periods: rate %g < floor %g",
						now, i, f.O, f.D, badRuns[i], rate, floor)
				}
			} else {
				badRuns[i] = 0
			}
		}
	}
	if observedSwaps == 0 {
		t.Fatal("no swap occurred; disruption bound untested")
	}
}
