package scenario

import (
	"testing"
)

// Pinned behavioral fingerprints — the online analog of the planner's
// TestPlanFingerprints. A change here means the online runtime's
// decision/shift sequence changed: either an intentional behavioral
// change (update the constants, explain in the commit) or a regression.
const (
	clickFingerprint = 0x002a7288ebf8d3ee
	geantFingerprint = 0x740ef45a3b9b9c82
	clickShifts      = 4
	clickWakes       = 2
	clickDecisions   = 46
)

func TestClickFailoverFingerprint(t *testing.T) {
	res, err := ClickFailover(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != clickFingerprint {
		t.Errorf("click fingerprint = %016x, want %016x", res.Fingerprint, uint64(clickFingerprint))
	}
	// The global reference allocator must walk the identical sequence.
	ful, err := ClickFailover(Config{FullAllocate: true})
	if err != nil {
		t.Fatal(err)
	}
	if ful.Fingerprint != res.Fingerprint {
		t.Errorf("full-allocate click fingerprint = %016x, want %016x", ful.Fingerprint, res.Fingerprint)
	}
	if res.Shifts != clickShifts || res.Wakes != clickWakes || res.Decisions != clickDecisions {
		t.Errorf("click counters = %d/%d/%d (decisions/shifts/wakes), want %d/%d/%d",
			res.Decisions, res.Shifts, res.Wakes, clickDecisions, clickShifts, clickWakes)
	}
	if res.DeliveredFrac() < 0.98 {
		t.Errorf("click delivered %.3f of offered load, want >= 0.98", res.DeliveredFrac())
	}
}

var geantSmall = Config{Seed: 1, Flows: 500, Duration: 2 * 3600}

func TestGeantDiurnalFingerprint(t *testing.T) {
	res, err := Run("diurnal", geantSmall)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != geantFingerprint {
		t.Errorf("geant diurnal fingerprint = %016x, want %016x", res.Fingerprint, uint64(geantFingerprint))
	}
	if res.Flows != 500 {
		t.Errorf("flows = %d, want 500", res.Flows)
	}
	if res.DeliveredFrac() < 0.9 {
		t.Errorf("delivered %.3f, want >= 0.9", res.DeliveredFrac())
	}
}

// TestFullAllocateSameBehavior cross-checks the incremental allocator
// against the global reference solve on a whole scenario: identical
// decision sequences, so identical fingerprints and counters.
func TestFullAllocateSameBehavior(t *testing.T) {
	inc, err := Run("diurnal", geantSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := geantSmall
	cfg.FullAllocate = true
	ful, err := Run("diurnal", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Fingerprint != ful.Fingerprint {
		t.Errorf("incremental fingerprint %016x != full-allocate %016x", inc.Fingerprint, ful.Fingerprint)
	}
	if inc.Shifts != ful.Shifts || inc.Wakes != ful.Wakes || inc.Decisions != ful.Decisions {
		t.Errorf("counters diverge: incremental %d/%d/%d, full %d/%d/%d",
			inc.Decisions, inc.Shifts, inc.Wakes, ful.Decisions, ful.Shifts, ful.Wakes)
	}
}

// TestScenariosDeterministic: every preset reproduces its result
// exactly under the same seed.
func TestScenariosDeterministic(t *testing.T) {
	for _, name := range Names() {
		cfg := Config{Seed: 7, Flows: 300, Duration: 3600}
		a, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Run(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: results differ across identical runs:\n  %+v\n  %+v", name, a, b)
		}
	}
}

// TestStormAndRepair: a correlated failure storm degrades delivery,
// rolling repair restores the failed links, and the seeded choices are
// visible in the result.
func TestStormAndRepair(t *testing.T) {
	cfg := Config{Seed: 3, Flows: 300, Duration: 2 * 3600}
	storm, err := Run("storm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if storm.Failed == 0 || storm.Repaired != 0 {
		t.Errorf("storm failed/repaired = %d/%d, want >0/0", storm.Failed, storm.Repaired)
	}
	rep, err := Run("repair", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != rep.Failed {
		t.Errorf("repair restored %d of %d links", rep.Repaired, rep.Failed)
	}
	calm, err := Run("diurnal", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if storm.DeliveredFrac() > calm.DeliveredFrac()+1e-9 {
		t.Errorf("storm delivered %.4f, calm %.4f: storm should not beat calm",
			storm.DeliveredFrac(), calm.DeliveredFrac())
	}
}

// TestFlashCrowdRaisesLoad: the flash subset visibly raises offered
// and shifts relative to the plain diurnal run.
func TestFlashCrowdRaisesLoad(t *testing.T) {
	cfg := Config{Seed: 5, Flows: 300, Duration: 2 * 3600, FlashFactor: 4, FlashFraction: 0.2}
	flash, err := Run("flash", cfg)
	if err != nil {
		t.Fatal(err)
	}
	calm, err := Run("diurnal", Config{Seed: 5, Flows: 300, Duration: 2 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if flash.OfferedBytes <= calm.OfferedBytes {
		t.Errorf("flash offered %.0f <= calm %.0f", flash.OfferedBytes, calm.OfferedBytes)
	}
}

func TestUnknownScenario(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Error("unknown scenario did not error")
	}
}
