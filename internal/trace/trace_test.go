package trace

import (
	"bytes"
	"strings"
	"testing"

	"response/internal/stats"
	"response/internal/topo"
	"response/internal/traffic"
)

func TestSeriesRoundTrip(t *testing.T) {
	s := &traffic.Series{IntervalSec: 900}
	for i := 0; i < 3; i++ {
		m := traffic.NewMatrix()
		m.Set(0, 1, float64(100+i))
		m.Set(2, 3, float64(50*i)) // zero in first interval: dropped
		s.Matrices = append(s.Matrices, m)
	}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.IntervalSec != 900 || len(got.Matrices) != 3 {
		t.Fatalf("shape: %v / %d", got.IntervalSec, len(got.Matrices))
	}
	for i := range s.Matrices {
		if got.Matrices[i].Rate(0, 1) != s.Matrices[i].Rate(0, 1) {
			t.Errorf("interval %d mismatch", i)
		}
		if got.Matrices[i].Rate(topo.NodeID(2), topo.NodeID(3)) != s.Matrices[i].Rate(2, 3) {
			t.Errorf("interval %d pair (2,3) mismatch", i)
		}
	}
}

func TestReadSeriesErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,1\n",
		"interval_sec,abc\n",
		"interval_sec,900\n", // missing header row
		"interval_sec,900\ninterval,origin,destination,rate_bps\nx,0,1,5\n",
		"interval_sec,900\ninterval,origin,destination,rate_bps\n0,x,1,5\n",
		"interval_sec,900\ninterval,origin,destination,rate_bps\n0,0,x,5\n",
		"interval_sec,900\ninterval,origin,destination,rate_bps\n0,0,1,x\n",
	}
	for i, c := range cases {
		if _, err := ReadSeries(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWritePoints(t *testing.T) {
	var buf bytes.Buffer
	err := WritePoints(&buf, "x", "y", []stats.Point{{X: 1, Y: 0.5}, {X: 2, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "x,y\n") || !strings.Contains(out, "1,0.5\n") {
		t.Errorf("output = %q", out)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3,4") {
		t.Errorf("output = %q", buf.String())
	}
}
