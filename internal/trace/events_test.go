package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestEventWriterJSONL: every emitted line is a standalone JSON object
// with the fixed span fields; negative actor IDs are omitted.
func TestEventWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ew.Emit(1.5, "te", "shift", 7, 0, 1, 0.25)
	ew.Emit(2.0, "lifecycle", "check", -1, -1, -1, 0.4)
	if err := ew.Err(); err != nil {
		t.Fatal(err)
	}
	if ew.Events() != 2 {
		t.Fatalf("Events() = %d, want 2", ew.Events())
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	for k, want := range map[string]any{
		"ts": 1.5, "span": "te", "op": "shift",
		"flow": 7.0, "from": 0.0, "to": 1.0, "val": 0.25,
	} {
		if first[k] != want {
			t.Errorf("line 1 field %q = %v, want %v", k, first[k], want)
		}
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	for _, k := range []string{"flow", "from", "to"} {
		if _, ok := second[k]; ok {
			t.Errorf("line 2 carries %q despite negative actor", k)
		}
	}
	if second["val"] != 0.4 || second["span"] != "lifecycle" {
		t.Errorf("line 2 = %v", second)
	}
}

// TestEventWriterNilIsNoOp: a nil *EventWriter accepts the whole API.
func TestEventWriterNilIsNoOp(t *testing.T) {
	var ew *EventWriter
	ew.Emit(1, "te", "shift", 0, 0, 0, 0)
	if ew.Events() != 0 || ew.Err() != nil {
		t.Error("nil writer not a clean no-op")
	}
}

// TestEventWriterZeroAlloc: steady-state emission must not allocate —
// the opt-in trace may be left on during 100k-flow replays.
func TestEventWriterZeroAlloc(t *testing.T) {
	ew := NewEventWriter(io.Discard)
	ew.Emit(0, "te", "probe", -1, -1, -1, 1) // warm the buffer
	avg := testing.AllocsPerRun(1000, func() {
		ew.Emit(123.456, "te", "shift", 99999, 2, 3, 0.123456789)
	})
	if avg != 0 {
		t.Errorf("Emit allocates %.2f per op in steady state, want 0", avg)
	}
}

// TestEventWriterLinkField: EmitLink/EmitFlowLink carry the link field
// after the actors, omit it when negative, and stay zero-alloc.
func TestEventWriterLinkField(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ew.EmitLink(3.5, "sim", "fail", 12, 0.8)
	ew.EmitFlowLink(4.0, "te", "evacuate", 7, 2, 1, 12, 0.5)
	ew.Emit(5.0, "te", "shift", 7, 0, 1, 0.25)
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["link"] != 12.0 || first["span"] != "sim" || first["val"] != 0.8 {
		t.Errorf("line 1 = %v", first)
	}
	if _, ok := first["flow"]; ok {
		t.Error("link-only event carries a flow field")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if second["flow"] != 7.0 || second["link"] != 12.0 {
		t.Errorf("line 2 = %v", second)
	}
	var third map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &third); err != nil {
		t.Fatalf("line 3 not JSON: %v", err)
	}
	if _, ok := third["link"]; ok {
		t.Error("Emit grew a link field; plain schema must be unchanged")
	}

	ew2 := NewEventWriter(io.Discard)
	ew2.EmitFlowLink(0, "te", "evacuate", 1, 0, 1, 2, 0.5) // warm the buffer
	avg := testing.AllocsPerRun(1000, func() {
		ew2.EmitFlowLink(123.456, "te", "evacuate", 99999, 2, 3, 17, 0.123456789)
	})
	if avg != 0 {
		t.Errorf("EmitFlowLink allocates %.2f per op in steady state, want 0", avg)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, io.ErrClosedPipe
}

// TestEventWriterStopsAfterError: the first write error latches; the
// writer goes quiet instead of hammering a dead sink.
func TestEventWriterStopsAfterError(t *testing.T) {
	fw := &failWriter{}
	ew := NewEventWriter(fw)
	ew.Emit(0, "te", "shift", 1, 0, 1, 0.5)
	ew.Emit(1, "te", "shift", 1, 0, 1, 0.5)
	if ew.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if fw.n != 1 {
		t.Errorf("writer called %d times after error, want 1", fw.n)
	}
}
