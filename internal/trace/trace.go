// Package trace is the runtime's serialization layer for everything
// observable: offline datasets and the online flight recorder.
//
// The CSV half (this file) serializes traffic-matrix series and figure
// data so experiments can be exported, replayed and diffed — the
// stand-in for the GÉANT TOTEM dataset's interchange role.
//
// The JSONL half (events.go) is the EventWriter flight recorder: an
// allocation-free, nil-safe structured event stream that the TE
// controller, simulator, lifecycle manager and chaos scenarios emit
// into — one self-contained JSON object per line with jaeger-style
// span/op fields and optional flow/link actors. Recorded streams are
// replayed by `response-analyze trace` and ingested live by
// response/tracestore for progressive-disclosure incident queries.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"response/internal/stats"
	"response/internal/topo"
	"response/internal/traffic"
)

// WriteSeries encodes a series as CSV with a preamble row holding the
// sampling interval, then one row per (interval, origin, destination,
// rate) tuple.
func WriteSeries(w io.Writer, s *traffic.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"interval_sec", fmt.Sprintf("%g", s.IntervalSec)}); err != nil {
		return err
	}
	if err := cw.Write([]string{"interval", "origin", "destination", "rate_bps"}); err != nil {
		return err
	}
	for i, m := range s.Matrices {
		for _, d := range m.Demands() {
			rec := []string{
				strconv.Itoa(i),
				strconv.Itoa(int(d.O)),
				strconv.Itoa(int(d.D)),
				strconv.FormatFloat(d.Rate, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeries decodes a series written by WriteSeries.
func ReadSeries(r io.Reader) (*traffic.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: missing preamble: %w", err)
	}
	if len(head) != 2 || head[0] != "interval_sec" {
		return nil, fmt.Errorf("trace: bad preamble %v", head)
	}
	interval, err := strconv.ParseFloat(head[1], 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad interval: %w", err)
	}
	if _, err := cr.Read(); err != nil { // column header
		return nil, fmt.Errorf("trace: missing header: %w", err)
	}
	s := &traffic.Series{IntervalSec: interval}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != 4 {
			return nil, fmt.Errorf("trace: bad record %v", rec)
		}
		idx, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: bad interval index: %w", err)
		}
		o, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: bad origin: %w", err)
		}
		d, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: bad destination: %w", err)
		}
		rate, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad rate: %w", err)
		}
		for idx >= len(s.Matrices) {
			s.Matrices = append(s.Matrices, traffic.NewMatrix())
		}
		s.Matrices[idx].Set(topo.NodeID(o), topo.NodeID(d), rate)
	}
	return s, nil
}

// WritePoints encodes an (X, Y) curve (CDF/CCDF/time series) as CSV.
func WritePoints(w io.Writer, xLabel, yLabel string, pts []stats.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{xLabel, yLabel}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable encodes a generic labelled table as CSV.
func WriteTable(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
