package trace

import (
	"io"
	"strconv"
)

// EventWriter emits a structured JSONL event stream: one self-contained
// JSON object per line, with jaeger-style span fields, for controller
// decisions (probe/shift/wake/evacuate) and lifecycle transitions
// (replan/stage/swap). It is the runtime's opt-in flight recorder: a
// nil *EventWriter is a valid no-op sink, so instrumented code calls
// Emit unconditionally and pays one branch when tracing is off.
//
// Emit is allocation-free in steady state: the line is rendered into a
// reused buffer with strconv appends (no fmt, no interface boxing) and
// handed to the underlying writer in one Write call. Wrap files in a
// bufio.Writer; the stream is valid JSONL at every line boundary.
//
// The fixed schema per line is
//
//	{"ts":12.5,"span":"te","op":"shift","flow":7,"from":0,"to":1,"link":4,"val":0.25}
//
// where ts is simulation seconds, span names the emitting subsystem
// ("te", "sim", "lifecycle", "chaos"), op the action, flow/from/to
// identify the actors and link the affected physical link (each field
// omitted when negative: lifecycle transitions carry no flow, TE
// shifts no link; val holds the action's magnitude — shifted share
// fraction, link utilization at failure, wake latency, migrated-flow
// count — and is always present). The link field is what lets the
// trace store (response/tracestore) rebuild the event→link incidence
// for energy-critical-path scoring.
type EventWriter struct {
	w      io.Writer
	buf    []byte
	events int
	err    error
}

// NewEventWriter returns an EventWriter emitting JSONL to w.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{w: w, buf: make([]byte, 0, 160)}
}

// Emit writes one event line. Safe on a nil receiver (no-op), so
// callers hold a possibly-nil *EventWriter and call unconditionally.
// After a write error the writer goes quiet; check Err.
func (e *EventWriter) Emit(ts float64, span, op string, flow, from, to int, val float64) {
	e.EmitFlowLink(ts, span, op, flow, from, to, -1, val)
}

// EmitLink writes one event line about a physical link with no flow
// actor — link failures, repairs, sleep and wake transitions. Same
// nil-receiver and error semantics as Emit.
func (e *EventWriter) EmitLink(ts float64, span, op string, link int, val float64) {
	e.EmitFlowLink(ts, span, op, -1, -1, -1, link, val)
}

// EmitFlowLink is the full-schema emitter: flow/from/to actors plus
// the affected link, each omitted when negative. Emit and EmitLink are
// shorthands over it; all three share the one allocation-free render
// path. Same nil-receiver and error semantics as Emit.
func (e *EventWriter) EmitFlowLink(ts float64, span, op string, flow, from, to, link int, val float64) {
	if e == nil || e.err != nil {
		return
	}
	b := e.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendFloat(b, ts, 'g', -1, 64)
	b = append(b, `,"span":"`...)
	b = append(b, span...)
	b = append(b, `","op":"`...)
	b = append(b, op...)
	b = append(b, '"')
	if flow >= 0 {
		b = append(b, `,"flow":`...)
		b = strconv.AppendInt(b, int64(flow), 10)
	}
	if from >= 0 {
		b = append(b, `,"from":`...)
		b = strconv.AppendInt(b, int64(from), 10)
	}
	if to >= 0 {
		b = append(b, `,"to":`...)
		b = strconv.AppendInt(b, int64(to), 10)
	}
	if link >= 0 {
		b = append(b, `,"link":`...)
		b = strconv.AppendInt(b, int64(link), 10)
	}
	b = append(b, `,"val":`...)
	b = strconv.AppendFloat(b, val, 'g', -1, 64)
	b = append(b, '}', '\n')
	e.buf = b
	e.events++
	if _, err := e.w.Write(b); err != nil {
		e.err = err
	}
}

// Events returns the number of events emitted so far.
func (e *EventWriter) Events() int {
	if e == nil {
		return 0
	}
	return e.events
}

// Err returns the first write error, if any.
func (e *EventWriter) Err() error {
	if e == nil {
		return nil
	}
	return e.err
}
