// Package faultinject is the chaos layer of the control plane: a
// seed-deterministic Injector that wraps a lifecycle.ReplanFunc and
// the plan-artifact staging path to produce the control-plane faults a
// production deployment must survive — planner errors, infeasibility,
// deadline-blown slow replans, outright panics, and bit-flipped or
// truncated plan artifacts — each at an independently configurable
// rate.
//
// The injector exists so the graceful-degradation machinery of
// internal/lifecycle (bounded retry with decorrelated-jitter backoff,
// panic recovery, the last-known-good artifact slot, the Degraded
// all-on fallback) can be proven under adversarial conditions rather
// than assumed: the chaos soak tests and the response-sim -fail-rate
// flag drive the full monitor→replan→stage→swap loop through it.
//
// Determinism: every fault decision is drawn from one rand.Rand seeded
// by Config.Seed, in call order. Under the lifecycle manager's default
// inline-replan mode every call happens on the simulator's event loop,
// so an identical (scenario seed, fault config) reproduces the exact
// fault sequence. The injector is nevertheless safe for concurrent use
// (a mutex serializes draws) because background replans run in their
// own goroutine.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"response"
	"response/internal/lifecycle"
	"response/internal/traffic"
)

// ErrInjected is the error returned for an injected generic planner
// failure. Injected infeasibility returns response.ErrInfeasible and
// injected deadline blowups wrap context.DeadlineExceeded, so the
// lifecycle manager classifies each the way it would the real fault.
var ErrInjected = errors.New("faultinject: injected planner error")

// Config sets the per-call fault rates. All rates are probabilities in
// [0, 1] and are evaluated in the field order below — at most one
// replan fault and one artifact fault fire per call. The zero value
// injects nothing.
type Config struct {
	// Seed drives every fault decision (default 1). Identical
	// (Seed, rates, call sequence) reproduce the identical faults.
	Seed int64
	// FailFirst deterministically fails the first FailFirst replan
	// calls with ErrInjected before any rate applies — a control-plane
	// outage window, used to force the manager through its Degraded
	// entry/exit path regardless of the dice.
	FailFirst int
	// ErrorRate is the probability a replan returns ErrInjected.
	ErrorRate float64
	// InfeasibleRate is the probability a replan returns
	// response.ErrInfeasible (the planner's honest "no plan exists").
	InfeasibleRate float64
	// PanicRate is the probability a replan panics mid-computation.
	PanicRate float64
	// SlowRate is the probability a replan runs so slowly it blows the
	// manager's replan deadline: when the context carries a budget
	// (lifecycle.Opts.ReplanDeadline), the call returns an error
	// wrapping context.DeadlineExceeded; with no budget the slowness
	// is harmless and the underlying replan proceeds.
	SlowRate float64
	// CorruptRate is the probability the staged plan artifact has one
	// bit flipped before the gate re-reads it; TruncateRate the
	// probability it is truncated instead. Both must be caught by the
	// artifact round-trip gate (CRC / header validation), never
	// installed.
	CorruptRate  float64
	TruncateRate float64
}

// Any reports whether the config can inject at least one fault.
func (c Config) Any() bool {
	return c.FailFirst > 0 || c.ErrorRate > 0 || c.InfeasibleRate > 0 ||
		c.PanicRate > 0 || c.SlowRate > 0 || c.CorruptRate > 0 || c.TruncateRate > 0
}

// Counts tallies what the injector actually did.
type Counts struct {
	// Replans counts wrapped replan calls; Artifacts counts artifact
	// filter applications.
	Replans   int
	Artifacts int
	// Per-fault tallies.
	Errors     int
	Infeasible int
	Panics     int
	Slow       int
	Corrupted  int
	Truncated  int
}

// Faults is the total number of injected faults.
func (c Counts) Faults() int {
	return c.Errors + c.Infeasible + c.Panics + c.Slow + c.Corrupted + c.Truncated
}

// Injector injects control-plane faults per one Config. Create with
// New; wire WrapReplan around the manager's ReplanFunc and
// ArtifactFilter into lifecycle.Opts.ArtifactFilter.
type Injector struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	counts Counts
}

// New builds an injector. A zero-rate config yields a transparent
// injector (every call passes through).
func New(cfg Config) *Injector {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Counts returns a snapshot of the injection tallies.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// replanFault enumerates the decided fault for one replan call.
type replanFault uint8

const (
	faultNone replanFault = iota
	faultError
	faultInfeasible
	faultPanic
	faultSlow
)

// decideReplan draws one replan fault under the lock.
func (in *Injector) decideReplan() replanFault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts.Replans++
	if in.counts.Replans <= in.cfg.FailFirst {
		in.counts.Errors++
		return faultError
	}
	v := in.rng.Float64()
	switch {
	case v < in.cfg.ErrorRate:
		in.counts.Errors++
		return faultError
	case v < in.cfg.ErrorRate+in.cfg.InfeasibleRate:
		in.counts.Infeasible++
		return faultInfeasible
	case v < in.cfg.ErrorRate+in.cfg.InfeasibleRate+in.cfg.PanicRate:
		in.counts.Panics++
		return faultPanic
	case v < in.cfg.ErrorRate+in.cfg.InfeasibleRate+in.cfg.PanicRate+in.cfg.SlowRate:
		in.counts.Slow++
		return faultSlow
	}
	return faultNone
}

// WrapReplan returns fn with the configured replan faults injected in
// front of it. The wrapped function is a drop-in lifecycle.ReplanFunc.
func (in *Injector) WrapReplan(fn lifecycle.ReplanFunc) lifecycle.ReplanFunc {
	return func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		switch in.decideReplan() {
		case faultError:
			return nil, ErrInjected
		case faultInfeasible:
			return nil, fmt.Errorf("faultinject: %w", response.ErrInfeasible)
		case faultPanic:
			panic("faultinject: injected replan panic")
		case faultSlow:
			if _, ok := lifecycle.ReplanBudget(ctx); ok {
				// The modeled computation outlives the manager's
				// deadline: report what the watchdog would.
				return nil, fmt.Errorf("faultinject: replan overran its budget: %w",
					context.DeadlineExceeded)
			}
			// No deadline configured: slowness is harmless.
		}
		return fn(ctx, live)
	}
}

// ArtifactFilter returns the staging-path filter: it corrupts (one
// flipped bit) or truncates the serialized plan artifact at the
// configured rates, leaving it untouched otherwise. The returned
// function never mutates its input slice.
func (in *Injector) ArtifactFilter() func([]byte) []byte {
	return func(b []byte) []byte {
		in.mu.Lock()
		defer in.mu.Unlock()
		in.counts.Artifacts++
		if len(b) == 0 {
			return b
		}
		v := in.rng.Float64()
		switch {
		case v < in.cfg.CorruptRate:
			in.counts.Corrupted++
			out := append([]byte(nil), b...)
			bit := in.rng.Intn(len(out) * 8)
			out[bit/8] ^= 1 << uint(bit%8)
			return out
		case v < in.cfg.CorruptRate+in.cfg.TruncateRate:
			in.counts.Truncated++
			return b[:in.rng.Intn(len(b))]
		}
		return b
	}
}
