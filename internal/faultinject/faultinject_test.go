package faultinject

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"response"
	"response/internal/lifecycle"
	"response/internal/topo"
	"response/internal/traffic"
)

// okReplan plans the GÉANT topology for real, so wrapped calls return
// an artifact-serializable plan.
func okReplan(t *testing.T) (lifecycle.ReplanFunc, *response.Plan) {
	t.Helper()
	g := topo.NewGeant()
	plan, err := response.NewPlanner().Plan(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		return plan, nil
	}, plan
}

func callN(t *testing.T, fn lifecycle.ReplanFunc, n int) (errs, panics int) {
	t.Helper()
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			if _, err := fn(context.Background(), nil); err != nil {
				errs++
			}
		}()
	}
	return errs, panics
}

// TestDeterministicSequence: identical (seed, rates) reproduce the
// identical fault decisions call by call.
func TestDeterministicSequence(t *testing.T) {
	fn, _ := okReplan(t)
	cfg := Config{Seed: 42, ErrorRate: 0.2, InfeasibleRate: 0.1, PanicRate: 0.1, SlowRate: 0.1}
	outcome := func() []string {
		in := New(cfg)
		wrapped := in.WrapReplan(fn)
		var seq []string
		for i := 0; i < 200; i++ {
			func() {
				defer func() {
					if recover() != nil {
						seq = append(seq, "panic")
					}
				}()
				_, err := wrapped(context.Background(), nil)
				switch {
				case err == nil:
					seq = append(seq, "ok")
				case errors.Is(err, ErrInjected):
					seq = append(seq, "err")
				case errors.Is(err, response.ErrInfeasible):
					seq = append(seq, "infeasible")
				default:
					seq = append(seq, "other")
				}
			}()
		}
		return seq
	}
	a, b := outcome(), outcome()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestFailFirst: the outage window fails exactly the first N calls
// regardless of rates.
func TestFailFirst(t *testing.T) {
	fn, _ := okReplan(t)
	in := New(Config{Seed: 1, FailFirst: 4})
	wrapped := in.WrapReplan(fn)
	for i := 0; i < 4; i++ {
		if _, err := wrapped(context.Background(), nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i, err)
		}
	}
	if _, err := wrapped(context.Background(), nil); err != nil {
		t.Fatalf("call after the outage window: err = %v, want nil", err)
	}
	c := in.Counts()
	if c.Errors != 4 || c.Replans != 5 {
		t.Errorf("counts = %+v, want 4 errors over 5 replans", c)
	}
}

// TestRates: at rate 1 every call faults; at rate 0 none do; the
// error classes map to the errors the lifecycle manager classifies.
func TestRates(t *testing.T) {
	fn, _ := okReplan(t)

	errs, _ := callN(t, New(Config{Seed: 1, ErrorRate: 1}).WrapReplan(fn), 50)
	if errs != 50 {
		t.Errorf("ErrorRate 1: %d/50 errors", errs)
	}
	_, panics := callN(t, New(Config{Seed: 1, PanicRate: 1}).WrapReplan(fn), 50)
	if panics != 50 {
		t.Errorf("PanicRate 1: %d/50 panics", panics)
	}
	errs, panics = callN(t, New(Config{Seed: 1}).WrapReplan(fn), 50)
	if errs != 0 || panics != 0 {
		t.Errorf("zero config: %d errors, %d panics, want none", errs, panics)
	}
	in := New(Config{Seed: 1, InfeasibleRate: 1})
	if _, err := in.WrapReplan(fn)(context.Background(), nil); !errors.Is(err, response.ErrInfeasible) {
		t.Errorf("infeasible fault: err = %v, want ErrInfeasible", err)
	}
}

// TestSlowNeedsBudget: the slow fault only fires when the context
// carries a replan budget; without a deadline the slowness is
// harmless.
func TestSlowNeedsBudget(t *testing.T) {
	calls := 0
	fn := lifecycle.ReplanFunc(func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		calls++
		return nil, nil
	})
	wrapped := New(Config{Seed: 1, SlowRate: 1}).WrapReplan(fn)
	if _, err := wrapped(context.Background(), nil); err != nil {
		t.Fatalf("no budget: err = %v, want pass-through", err)
	}
	if calls != 1 {
		t.Fatalf("no budget: underlying replan not called")
	}
	// lifecycle.Opts.ReplanDeadline attaches the budget; reproduce it
	// through a manager-independent probe: the injector only sees the
	// context, so any budget-carrying ctx triggers the fault. The only
	// way to build one is through the manager, so assert via error
	// class on a real manager in the scenario soak; here assert the
	// pass-through behavior and the counter.
	if got := New(Config{Seed: 1, SlowRate: 1}).Counts().Slow; got != 0 {
		t.Errorf("fresh injector counts %d slow faults", got)
	}
}

// TestArtifactFilterRoundTrip: corrupted artifacts never survive the
// plan round trip — exactly what the lifecycle staging gate relies on
// — and the filter never mutates its input.
func TestArtifactFilterRoundTrip(t *testing.T) {
	_, plan := okReplan(t)
	var buf bytes.Buffer
	if _, err := plan.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	orig := append([]byte(nil), good...)

	in := New(Config{Seed: 7, CorruptRate: 0.5, TruncateRate: 0.5})
	filter := in.ArtifactFilter()
	for i := 0; i < 40; i++ {
		out := filter(good)
		if !bytes.Equal(good, orig) {
			t.Fatal("filter mutated its input slice")
		}
		loaded, err := response.ReadPlanFrom(bytes.NewReader(out), plan.Topology())
		if err == nil && loaded.Fingerprint() != plan.Fingerprint() {
			t.Fatalf("corrupted artifact round-tripped to a different plan undetected")
		}
		if err == nil && !bytes.Equal(out, good) {
			t.Fatalf("mangled bytes loaded cleanly: corruption the gate cannot see")
		}
	}
	c := in.Counts()
	if c.Corrupted+c.Truncated != 40 {
		t.Errorf("counts = %+v, want every call mangled at combined rate 1", c)
	}
	if c.Faults() != 40 {
		t.Errorf("Faults() = %d, want 40", c.Faults())
	}
}

// TestAny: the zero config injects nothing and says so.
func TestAny(t *testing.T) {
	if (Config{}).Any() {
		t.Error("zero config reports Any")
	}
	for _, c := range []Config{
		{FailFirst: 1}, {ErrorRate: 0.1}, {InfeasibleRate: 0.1}, {PanicRate: 0.1},
		{SlowRate: 0.1}, {CorruptRate: 0.1}, {TruncateRate: 0.1},
	} {
		if !c.Any() {
			t.Errorf("config %+v reports no faults", c)
		}
	}
}
