// Package criticality implements the HITS-style mutual-reinforcement
// scoring shared by the planner's warm descent (internal/mcf) and the
// trace store's energy-critical-path diagnostics
// (internal/tracestore) — the "identify critical branches with
// cascading failure chain statistics and HITS" idea applied to the
// paper's energy-critical links.
//
// The model is a bipartite graph between links and items (routed
// demands offline, failure-chain actors online): a link is critical
// when it carries items that themselves depend on critical links,
// seeded and reweighted each round by per-link utilization (the slack
// term). Both callers share the identical float-operation order, so
// extracting the kernel here keeps the planner's pinned plan
// fingerprints bit-identical.
package criticality

// Scores runs iters rounds of utilization-seeded HITS over an
// item→link incidence and returns the per-link hub scores, normalized
// to max 1. seed holds one non-negative weight per link (utilization);
// incidence must yield, for item i, every link the item touches — with
// multiplicity, in a deterministic order, identically on every call.
//
// Each round: auth[item] = Σ h[link] over the item's links;
// hub[link] = Σ auth[item] over items touching the link;
// h[link] = seed[link] · hub[link]; then h is max-normalized. The
// returned slice is freshly allocated; seed is not modified.
func Scores(seed []float64, items int, incidence func(item int, yield func(link int)), iters int) []float64 {
	h := append([]float64(nil), seed...)
	NormalizeMax(h)
	auth := make([]float64, items)
	hub := make([]float64, len(seed))
	for iter := 0; iter < iters; iter++ {
		clear(auth)
		for i := 0; i < items; i++ {
			incidence(i, func(l int) {
				auth[i] += h[l]
			})
		}
		clear(hub)
		for i := 0; i < items; i++ {
			incidence(i, func(l int) {
				hub[l] += auth[i]
			})
		}
		for l := range h {
			h[l] = seed[l] * hub[l]
		}
		NormalizeMax(h)
	}
	return h
}

// NormalizeMax scales v in place so its maximum is 1; an all-zero or
// empty slice is left untouched.
func NormalizeMax(v []float64) {
	var mx float64
	for _, x := range v {
		if x > mx {
			mx = x
		}
	}
	if mx > 0 {
		for i := range v {
			v[i] /= mx
		}
	}
}
