package sim

import (
	"fmt"
	"math"

	"response/internal/topo"
)

// Flow is a fluid traffic aggregate from O to D with an offered demand
// split across installed paths by per-path shares. The achieved rate on
// each path is set by max-min fair sharing of link capacities among all
// subflows in the network.
type Flow struct {
	ID     int
	O, D   topo.NodeID
	Demand float64 // offered rate, bits/s

	// Paths are the installed table levels for this flow's pair.
	Paths []topo.Path
	// Share is the fraction of Demand offered to each path; the
	// controller moves share between levels. Sums to <= 1.
	Share []float64

	// pathRate is the achieved rate per path after allocation.
	pathRate []float64

	// CumulativeBytes integrates the achieved rate; application
	// workloads (streaming blocks, web transfers) read it.
	CumulativeBytes float64
	lastIntegrate   float64
}

// Rate returns the flow's total achieved rate.
func (f *Flow) Rate() float64 {
	var s float64
	for _, r := range f.pathRate {
		s += r
	}
	return s
}

// PathRate returns the achieved rate on path level i.
func (f *Flow) PathRate(i int) float64 {
	if i < 0 || i >= len(f.pathRate) {
		return 0
	}
	return f.pathRate[i]
}

// ShareOf returns the current share on level i.
func (f *Flow) ShareOf(i int) float64 {
	if i < 0 || i >= len(f.Share) {
		return 0
	}
	return f.Share[i]
}

// AddFlow installs a flow with all share initially on level 0.
func (s *Simulator) AddFlow(o, d topo.NodeID, demand float64, paths []topo.Path) (*Flow, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("sim: flow %d->%d needs at least one path", o, d)
	}
	for i, p := range paths {
		if p.Empty() {
			continue
		}
		if err := p.Check(s.T); err != nil {
			return nil, fmt.Errorf("sim: flow %d->%d path %d: %w", o, d, i, err)
		}
	}
	f := &Flow{
		ID:       len(s.flows),
		O:        o,
		D:        d,
		Demand:   demand,
		Paths:    paths,
		Share:    make([]float64, len(paths)),
		pathRate: make([]float64, len(paths)),
	}
	f.Share[0] = 1
	f.lastIntegrate = s.now
	s.flows = append(s.flows, f)
	s.markDirty()
	return f, nil
}

// Flows returns all installed flows.
func (s *Simulator) Flows() []*Flow { return s.flows }

// SetDemand changes a flow's offered rate at the current time.
func (s *Simulator) SetDemand(f *Flow, demand float64) {
	s.integrate(f)
	f.Demand = demand
	s.markDirty()
}

// SetShare overwrites a flow's share vector (normalizing negatives to
// zero). Callers that need wake-aware shifting should use the te
// package instead.
func (s *Simulator) SetShare(f *Flow, share []float64) {
	s.integrate(f)
	var sum float64
	for i := range share {
		if share[i] < 0 {
			share[i] = 0
		}
		sum += share[i]
	}
	if sum > 1+1e-9 {
		for i := range share {
			share[i] /= sum
		}
	}
	copy(f.Share, share)
	s.markDirty()
}

// ShiftShare moves frac of the flow's total share from level `from` to
// level `to`, clamped to what `from` holds.
func (s *Simulator) ShiftShare(f *Flow, from, to int, frac float64) {
	if from < 0 || from >= len(f.Share) || to < 0 || to >= len(f.Share) || from == to {
		return
	}
	s.integrate(f)
	amt := math.Min(frac, f.Share[from])
	if amt <= 0 {
		return
	}
	f.Share[from] -= amt
	f.Share[to] += amt
	s.markDirty()
}

// Bytes returns the flow's cumulative received bytes as of now.
func (s *Simulator) Bytes(f *Flow) float64 {
	s.integrate(f)
	return f.CumulativeBytes
}

// integrate folds achieved bytes up to now into the flow counter.
func (s *Simulator) integrate(f *Flow) {
	dt := s.now - f.lastIntegrate
	if dt > 0 {
		f.CumulativeBytes += f.Rate() / 8 * dt
	}
	f.lastIntegrate = s.now
}

// allocate computes max-min fair subflow rates. Each (flow, path) with
// positive share and a fully active path is a subflow demanding
// share×Demand; progressive filling freezes the subflows of the
// currently most-contended link at its fair share.
func (s *Simulator) allocate() {
	type subflow struct {
		flow   *Flow
		level  int
		want   float64
		rate   float64
		frozen bool
		arcs   []topo.ArcID
	}
	// Integrate everyone before rates change.
	for _, f := range s.flows {
		s.integrate(f)
	}
	var subs []*subflow
	arcSubs := make(map[topo.ArcID][]*subflow)
	for _, f := range s.flows {
		for i := range f.pathRate {
			f.pathRate[i] = 0
		}
		for i, p := range f.Paths {
			if f.Share[i] <= 0 || p.Empty() {
				continue
			}
			want := f.Share[i] * f.Demand
			if want <= 0 {
				continue
			}
			if phase := s.PathPhase(p); phase != LinkActive {
				// Sleeping/waking/failed paths carry nothing now, but
				// offered traffic wakes sleeping elements (wake-on-
				// arrival): the subflow starts once the wake completes.
				if phase == LinkSleeping {
					s.RequestWake(p)
				}
				continue
			}
			sf := &subflow{flow: f, level: i, want: want, arcs: p.Arcs}
			subs = append(subs, sf)
			for _, aid := range p.Arcs {
				arcSubs[aid] = append(arcSubs[aid], sf)
			}
		}
	}
	if len(subs) == 0 {
		for i := range s.arcLoad {
			s.arcLoad[i] = 0
		}
		return
	}
	capLeft := make(map[topo.ArcID]float64, len(arcSubs))
	for aid := range arcSubs {
		capLeft[aid] = s.T.Arc(aid).Capacity
	}
	remaining := len(subs)
	for remaining > 0 {
		// Fair share per arc among unfrozen subflows.
		minShare := math.Inf(1)
		for aid, list := range arcSubs {
			n := 0
			for _, sf := range list {
				if !sf.frozen {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if sh := capLeft[aid] / float64(n); sh < minShare {
				minShare = sh
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Demand-limited subflows freeze at their want.
		progressed := false
		for _, sf := range subs {
			if sf.frozen || sf.want > minShare+1e-12 {
				continue
			}
			sf.frozen = true
			sf.rate = sf.want
			remaining--
			progressed = true
			for _, aid := range sf.arcs {
				capLeft[aid] -= sf.rate
			}
		}
		if progressed {
			continue
		}
		// Otherwise freeze subflows on the bottleneck arc(s) at the
		// fair share.
		for aid, list := range arcSubs {
			n := 0
			for _, sf := range list {
				if !sf.frozen {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if capLeft[aid]/float64(n) <= minShare+1e-12 {
				for _, sf := range list {
					if sf.frozen {
						continue
					}
					sf.frozen = true
					sf.rate = minShare
					remaining--
					for _, a2 := range sf.arcs {
						capLeft[a2] -= sf.rate
					}
				}
			}
		}
	}
	for i := range s.arcLoad {
		s.arcLoad[i] = 0
	}
	for _, sf := range subs {
		if sf.rate < 0 {
			sf.rate = 0
		}
		sf.flow.pathRate[sf.level] = sf.rate
		for _, aid := range sf.arcs {
			s.arcLoad[aid] += sf.rate
			// Mark links busy so the idle timer resets.
			if sf.rate > 1e-9 {
				s.lastBusy[s.T.Arc(aid).Link] = s.now
			}
		}
	}
}
