package sim

import (
	"fmt"
	"math"

	"response/internal/topo"
)

// Flow is a fluid traffic aggregate from O to D with an offered demand
// split across installed paths by per-path shares. The achieved rate on
// each path is set by max-min fair sharing of link capacities among all
// subflows in the network.
type Flow struct {
	ID     int
	O, D   topo.NodeID
	Demand float64 // offered rate, bits/s

	// Paths are the installed table levels for this flow's pair.
	Paths []topo.Path
	// Share is the fraction of Demand offered to each path; the
	// controller moves share between levels. Sums to <= 1.
	Share []float64

	// pathRate is the achieved rate per path after allocation.
	pathRate []float64

	// CumulativeBytes integrates the achieved rate; application
	// workloads (streaming blocks, web transfers) read it.
	CumulativeBytes float64
	lastIntegrate   float64

	// subBase is the first subflow slot of this flow; level i lives at
	// subBase+i in the simulator's subflow universe.
	subBase int32
	removed bool
}

// Rate returns the flow's total achieved rate.
func (f *Flow) Rate() float64 {
	var s float64
	for _, r := range f.pathRate {
		s += r
	}
	return s
}

// PathRate returns the achieved rate on path level i.
func (f *Flow) PathRate(i int) float64 {
	if i < 0 || i >= len(f.pathRate) {
		return 0
	}
	return f.pathRate[i]
}

// ShareOf returns the current share on level i.
func (f *Flow) ShareOf(i int) float64 {
	if i < 0 || i >= len(f.Share) {
		return 0
	}
	return f.Share[i]
}

// Removed reports whether the flow has been withdrawn with RemoveFlow.
func (f *Flow) Removed() bool { return f.removed }

// AddFlow installs a flow with all share initially on level 0 and
// registers its (flow, level) subflows in the link inverted index.
func (s *Simulator) AddFlow(o, d topo.NodeID, demand float64, paths []topo.Path) (*Flow, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("sim: flow %d->%d needs at least one path", o, d)
	}
	for i, p := range paths {
		if p.Empty() {
			continue
		}
		if err := p.Check(s.T); err != nil {
			return nil, fmt.Errorf("sim: flow %d->%d path %d: %w", o, d, i, err)
		}
	}
	f := &Flow{
		ID:       len(s.flows),
		O:        o,
		D:        d,
		Demand:   demand,
		Paths:    paths,
		Share:    make([]float64, len(paths)),
		pathRate: make([]float64, len(paths)),
		subBase:  int32(len(s.subFlow)),
	}
	f.Share[0] = 1
	f.lastIntegrate = s.now
	for i, p := range paths {
		sf := int32(len(s.subFlow))
		s.subFlow = append(s.subFlow, int32(f.ID))
		s.subLevel = append(s.subLevel, int32(i))
		s.subRate = append(s.subRate, 0)
		blocked := int32(0)
		for _, aid := range p.Arcs {
			s.subArcs = append(s.subArcs, aid)
			s.arcSubs[aid] = append(s.arcSubs[aid], sf)
			if s.phase[s.T.Arc(aid).Link] != LinkActive {
				blocked++
			}
		}
		s.subBlocked = append(s.subBlocked, blocked)
		s.subArcStart = append(s.subArcStart, int32(len(s.subArcs)))
		s.indexLive += len(p.Arcs)
	}
	s.flows = append(s.flows, f)
	s.flowDirty = append(s.flowDirty, false)
	s.ws.grow(len(s.flows), len(s.subFlow))
	s.markFlowDirty(int32(f.ID))
	return f, nil
}

// RemoveFlow withdraws a flow: its offered traffic drops to zero, the
// freed capacity is redistributed, and its recorded rate samples are
// released. The *Flow stays readable (ID, CumulativeBytes) but is
// skipped by sampling and probing, and its inverted-index entries are
// compacted away once removed flows hold the majority of the index —
// under sustained churn, index walks and memory stay proportional to
// the live flow set. The flat subflow slots themselves are retained
// (IDs are stable for the simulator's lifetime), costing a few dozen
// bytes per removed level.
func (s *Simulator) RemoveFlow(f *Flow) {
	if f == nil || f.removed {
		return
	}
	s.integrate(f)
	f.removed = true
	s.markFlowDirty(int32(f.ID))
	delete(s.rateSamples, f.ID)
	for _, p := range f.Paths {
		s.indexLive -= len(p.Arcs)
		s.indexDead += len(p.Arcs)
	}
	if s.indexDead > s.indexLive {
		s.compactIndex()
	}
}

// compactIndex drops removed flows' entries from the inverted index,
// preserving the relative order of live entries (walk order is part of
// the runtime's deterministic behavior).
func (s *Simulator) compactIndex() {
	for aid := range s.arcSubs {
		list := s.arcSubs[aid]
		kept := list[:0]
		for _, sf := range list {
			if !s.flows[s.subFlow[sf]].removed {
				kept = append(kept, sf)
			}
		}
		s.arcSubs[aid] = kept
	}
	s.indexDead = 0
}

// Flows returns all installed flows, including removed ones (check
// Flow.Removed).
func (s *Simulator) Flows() []*Flow { return s.flows }

// SetDemand changes a flow's offered rate at the current time.
func (s *Simulator) SetDemand(f *Flow, demand float64) {
	s.integrate(f)
	f.Demand = demand
	s.markFlowDirty(int32(f.ID))
}

// SetShare overwrites a flow's share vector (normalizing negatives to
// zero). Callers that need wake-aware shifting should use the te
// package instead.
func (s *Simulator) SetShare(f *Flow, share []float64) {
	s.integrate(f)
	var sum float64
	for i := range share {
		if share[i] < 0 {
			share[i] = 0
		}
		sum += share[i]
	}
	if sum > 1+1e-9 {
		for i := range share {
			share[i] /= sum
		}
	}
	copy(f.Share, share)
	s.markFlowDirty(int32(f.ID))
}

// ShiftShare moves frac of the flow's total share from level `from` to
// level `to`, clamped to what `from` holds.
func (s *Simulator) ShiftShare(f *Flow, from, to int, frac float64) {
	if from < 0 || from >= len(f.Share) || to < 0 || to >= len(f.Share) || from == to {
		return
	}
	s.integrate(f)
	amt := math.Min(frac, f.Share[from])
	if amt <= 0 {
		return
	}
	f.Share[from] -= amt
	f.Share[to] += amt
	s.markFlowDirty(int32(f.ID))
}

// Bytes returns the flow's cumulative received bytes as of now.
func (s *Simulator) Bytes(f *Flow) float64 {
	s.integrate(f)
	return f.CumulativeBytes
}

// integrate folds achieved bytes up to now into the flow counter.
func (s *Simulator) integrate(f *Flow) {
	dt := s.now - f.lastIntegrate
	if dt > 0 {
		f.CumulativeBytes += f.Rate() / 8 * dt
	}
	f.lastIntegrate = s.now
}
