package sim

import (
	"math"
	"math/rand"
	"testing"

	"response/internal/topo"
)

// TestRequestWakeInFlightDeadline is the regression test for the wake
// over-report bug: a second RequestWake against a link that is already
// LinkWaking must return the in-flight wake's completion time, not
// now+WakeUpDelay, so a shift scheduled on the returned time fires as
// soon as the first wake completes.
func TestRequestWakeInFlightDeadline(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{SleepAfterIdle: 0.1, WakeUpDelay: 2})
	f, _ := s.AddFlow(a, b, 0, []topo.Path{p})
	s.Run(1) // zero demand: link sleeps
	if s.LinkState(0) != LinkSleeping {
		t.Fatalf("state = %v", s.LinkState(0))
	}
	first := s.RequestWake(p)
	if math.Abs(first-(s.Now()+2)) > 1e-9 {
		t.Fatalf("first ready = %v, want now+2", first)
	}
	// Half-way through the wake, a second requester shows up.
	s.Run(s.Now() + 1)
	if s.LinkState(0) != LinkWaking {
		t.Fatalf("state = %v, want waking", s.LinkState(0))
	}
	second := s.RequestWake(p)
	if math.Abs(second-first) > 1e-9 {
		t.Errorf("second ready = %v, want the in-flight deadline %v (was reported as now+delay = %v)",
			second, first, s.Now()+2)
	}
	// The second requester's shift, booked at the returned time, must
	// see a forwarding path at exactly the first wake's completion.
	var stateAtReady LinkPhase = LinkFailed
	s.Schedule(second, func() {
		stateAtReady = s.LinkState(0)
		s.SetDemand(f, 5*topo.Mbps)
	})
	s.Run(second + 0.05)
	if stateAtReady != LinkActive {
		t.Errorf("link %v at the reported ready time, want active", stateAtReady)
	}
	if math.Abs(f.Rate()-5*topo.Mbps) > 1 {
		t.Errorf("rate after shift at ready = %v", f.Rate())
	}
}

// multi builds a mesh with enough path diversity to exercise shared
// bottlenecks across components.
func multi(t *testing.T) (*topo.Topology, []topo.NodeID, [][]topo.Path) {
	t.Helper()
	tp := topo.New("mesh")
	n := make([]topo.NodeID, 6)
	for i := range n {
		n[i] = tp.AddNode(string(rune('A'+i)), topo.KindRouter)
	}
	caps := []float64{10, 8, 6, 12, 5, 7, 9, 11}
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}, {2, 5}}
	for i, e := range edges {
		tp.AddLink(n[e[0]], n[e[1]], caps[i]*topo.Mbps, 0.001)
	}
	arc := func(i, j int) topo.ArcID {
		id, ok := tp.ArcBetween(n[i], n[j])
		if !ok {
			t.Fatalf("no arc %d-%d", i, j)
		}
		return id
	}
	paths := [][]topo.Path{
		{{Arcs: []topo.ArcID{arc(0, 1), arc(1, 2)}}, {Arcs: []topo.ArcID{arc(0, 5), arc(5, 2)}}},
		{{Arcs: []topo.ArcID{arc(1, 2), arc(2, 3)}}, {Arcs: []topo.ArcID{arc(1, 4), arc(4, 3)}}},
		{{Arcs: []topo.ArcID{arc(3, 4)}}, {Arcs: []topo.ArcID{arc(3, 2), arc(2, 5), arc(5, 4)}}},
		{{Arcs: []topo.ArcID{arc(5, 0)}}},
		{{Arcs: []topo.ArcID{arc(4, 1), arc(1, 0)}}},
	}
	return tp, n, paths
}

// TestIncrementalMatchesFullAllocate drives an identical randomized
// event sequence (demand steps, share shifts, failures, repairs, flow
// removals) through the incremental allocator and the FullAllocate
// reference mode, asserting flow rates and arc loads agree throughout.
func TestIncrementalMatchesFullAllocate(t *testing.T) {
	tp, _, paths := multi(t)
	mk := func(full bool) (*Simulator, []*Flow) {
		s := New(tp, Opts{SleepAfterIdle: 0.5, WakeUpDelay: 0.05, FullAllocate: full})
		var fl []*Flow
		srcDst := [][2]int{{0, 2}, {1, 3}, {3, 4}, {5, 0}, {4, 0}}
		for i, ps := range paths {
			f, err := s.AddFlow(topo.NodeID(srcDst[i][0]), topo.NodeID(srcDst[i][1]),
				float64(2+i)*topo.Mbps, ps)
			if err != nil {
				t.Fatal(err)
			}
			fl = append(fl, f)
		}
		return s, fl
	}
	inc, fi := mk(false)
	ful, ff := mk(true)

	rng := rand.New(rand.NewSource(77))
	ops := make([]func(s *Simulator, fl []*Flow), 0, 400)
	for step := 0; step < 400; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			i, d := rng.Intn(len(fi)), rng.Float64()*12*topo.Mbps
			ops = append(ops, func(s *Simulator, fl []*Flow) { s.SetDemand(fl[i], d) })
		case 4, 5:
			i, frac := rng.Intn(len(fi)), rng.Float64()
			from, to := rng.Intn(2), rng.Intn(2)
			ops = append(ops, func(s *Simulator, fl []*Flow) { s.ShiftShare(fl[i], from, to, frac) })
		case 6:
			l := topo.LinkID(rng.Intn(tp.NumLinks()))
			ops = append(ops, func(s *Simulator, fl []*Flow) { s.FailLink(l) })
		case 7:
			l := topo.LinkID(rng.Intn(tp.NumLinks()))
			ops = append(ops, func(s *Simulator, fl []*Flow) { s.RepairLink(l) })
		case 8:
			i := rng.Intn(len(fi))
			ops = append(ops, func(s *Simulator, fl []*Flow) {
				if i == 3 { // retire at most one flow, repeatedly (idempotent)
					s.RemoveFlow(fl[i])
				}
			})
		case 9:
			ops = append(ops, func(s *Simulator, fl []*Flow) {}) // idle tick
		}
	}
	at := 0.0
	for step, op := range ops {
		at += 0.03
		op(inc, fi)
		op(ful, ff)
		inc.Run(at)
		ful.Run(at)
		for i := range fi {
			for lvl := range fi[i].Paths {
				a, b := fi[i].PathRate(lvl), ff[i].PathRate(lvl)
				if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
					t.Fatalf("step %d flow %d level %d: incremental %v != full %v", step, i, lvl, a, b)
				}
			}
		}
		for _, arc := range tp.Arcs() {
			a, b := inc.arcLoad[arc.ID], ful.arcLoad[arc.ID]
			if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
				t.Fatalf("step %d arc %d: incremental load %v != full %v", step, arc.ID, a, b)
			}
			if a > arc.Capacity+1e-6 {
				t.Fatalf("step %d arc %d over capacity: %v > %v", step, arc.ID, a, arc.Capacity)
			}
		}
		for i := range fi {
			if inc.LinkState(topo.LinkID(i%tp.NumLinks())) != ful.LinkState(topo.LinkID(i%tp.NumLinks())) {
				t.Fatalf("step %d: link phase divergence", step)
			}
		}
	}
}

func TestRateSamplingRing(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	s.RateSampling(4)
	f, _ := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{p})
	s.SampleEvery(1, 10, nil)
	s.Run(10.5)
	got := s.RateSamples(f.ID)
	if len(got) != 4 {
		t.Fatalf("ring kept %d samples, want capacity 4", len(got))
	}
	// Chronological, and only the most recent four (t = 7, 8, 9, 10).
	for i, smp := range got {
		if want := 7.0 + float64(i); math.Abs(smp.Time-want) > 1e-9 {
			t.Errorf("sample %d at t=%v, want %v", i, smp.Time, want)
		}
	}
}

func TestRateSamplingOptIn(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	f, _ := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{p})
	s.SampleEvery(0.5, 4, nil)
	s.Run(5)
	if got := s.RateSamples(f.ID); got != nil {
		t.Errorf("sampling recorded %d samples without opt-in", len(got))
	}
}

func TestRemoveFlow(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	s.RateSampling(8)
	f1, _ := s.AddFlow(a, b, 20*topo.Mbps, []topo.Path{p})
	f2, _ := s.AddFlow(a, b, 20*topo.Mbps, []topo.Path{p})
	s.SampleEvery(0.5, 20, nil)
	s.Run(1)
	if math.Abs(f1.Rate()-5*topo.Mbps) > 1 {
		t.Fatalf("pre-removal split = %v", f1.Rate())
	}
	s.RemoveFlow(f2)
	s.Run(2)
	if !f2.Removed() {
		t.Error("f2 not marked removed")
	}
	if f2.Rate() != 0 {
		t.Errorf("removed flow still achieves %v", f2.Rate())
	}
	if math.Abs(f1.Rate()-10*topo.Mbps) > 1 {
		t.Errorf("survivor did not reclaim capacity: %v", f1.Rate())
	}
	if got := s.RateSamples(f2.ID); got != nil {
		t.Errorf("removed flow retains %d samples", len(got))
	}
	s.RemoveFlow(f2) // idempotent
	if got := s.RateSamples(f1.ID); len(got) == 0 {
		t.Error("survivor lost its samples")
	}
}

// TestChurnCompactsIndex: sustained add/remove churn must not grow
// the inverted index beyond the live flow set (amortized compaction),
// and the surviving flows keep exact allocation.
func TestChurnCompactsIndex(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	keeper, _ := s.AddFlow(a, b, 2*topo.Mbps, []topo.Path{p})
	for i := 0; i < 1000; i++ {
		f, err := s.AddFlow(a, b, 1*topo.Mbps, []topo.Path{p})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(float64(i) * 0.01)
		s.RemoveFlow(f)
	}
	s.Run(11)
	ab, _ := tp.ArcBetween(a, b)
	if n := len(s.arcSubs[ab]); n > 3 {
		t.Errorf("index holds %d entries after churn, want <= 3 (1 live flow)", n)
	}
	live := 0
	s.FlowsOnLink(0, func(f *Flow, level int) { live++ })
	if live != 1 {
		t.Errorf("FlowsOnLink yields %d entries, want 1", live)
	}
	if math.Abs(keeper.Rate()-2*topo.Mbps) > 1 {
		t.Errorf("survivor rate = %v after churn", keeper.Rate())
	}
}

// TestSleepWakeStaysEventDriven: with a stationary busy network, no
// sleep-check events accumulate (the seed runtime rescanned every link
// on every settle; the rebuild must stay quiet while nothing changes).
func TestSleepWakeStaysEventDriven(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{SleepAfterIdle: 0.1})
	s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{p})
	s.Run(1)
	before := s.seq
	s.Run(1000)
	if grew := s.seq - before; grew > 4 {
		t.Errorf("%d events scheduled across a quiet millennium, want ~0", grew)
	}
}
