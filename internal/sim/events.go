// Package sim is an event-driven fluid-flow network simulator standing
// in for the paper's ns-2 simulations, Click testbed and ModelNet
// emulation (§5.3–5.4; DESIGN.md §2 documents the substitution).
//
// Links have capacity, propagation delay and a power state (active,
// sleeping, waking, failed); flows are fluid and share links max-min
// fairly across the paths they are assigned to. The simulator tracks
// network power over time through a power.Meter and delivers delayed
// notifications (probe RTTs, failure detection/propagation, wake-up
// completion) so that reaction times measured in RTTs are faithful.
package sim

import "container/heap"

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

var _ heap.Interface = (*eventHeap)(nil)
