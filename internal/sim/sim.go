package sim

import (
	"container/heap"
	"fmt"

	"response/internal/power"
	"response/internal/topo"
)

// LinkPhase is the power state of a physical link.
type LinkPhase uint8

// Link power states. Waking links are powered (they draw power while
// coming up) but do not forward traffic until the wake completes.
const (
	LinkActive LinkPhase = iota
	LinkSleeping
	LinkWaking
	LinkFailed
)

// String names the phase.
func (p LinkPhase) String() string {
	switch p {
	case LinkActive:
		return "active"
	case LinkSleeping:
		return "sleeping"
	case LinkWaking:
		return "waking"
	case LinkFailed:
		return "failed"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Opts parameterizes a simulation.
type Opts struct {
	// WakeUpDelay is the time for a sleeping link to become active
	// (10 ms in the Click experiment, 5 s in the ns-2 experiments).
	WakeUpDelay float64
	// SleepAfterIdle is how long a link must carry zero traffic
	// before it sleeps (default 100 ms).
	SleepAfterIdle float64
	// FailureDetect is the local failure detection time (50 ms, §5.3).
	FailureDetect float64
	// FailurePropagate is the time for failure news to reach sources
	// (50 ms ≈ 3 hops of 16.67 ms, §5.3).
	FailurePropagate float64
	// Model meters power when non-nil.
	Model power.Model
	// PinnedOn elements never sleep (the always-on set).
	PinnedOn *topo.ActiveSet
}

func (o *Opts) defaults() {
	if o.WakeUpDelay == 0 {
		o.WakeUpDelay = 0.01
	}
	if o.SleepAfterIdle == 0 {
		o.SleepAfterIdle = 0.1
	}
	if o.FailureDetect == 0 {
		o.FailureDetect = 0.05
	}
	if o.FailurePropagate == 0 {
		o.FailurePropagate = 0.05
	}
}

// Simulator runs the event loop over a topology.
type Simulator struct {
	T    *topo.Topology
	opts Opts

	now    float64
	seq    uint64
	events eventHeap

	phase    []LinkPhase // per link
	lastBusy []float64   // per link: last time it carried traffic
	arcLoad  []float64   // per arc: carried rate, maintained by allocate
	sleepChk []float64   // per link: time of the pending sleep check (0 = none)

	flows []*Flow
	dirty bool // rate allocation needs recompute

	meter *power.Meter

	failHandlers []func(now float64, l topo.LinkID)
	rateSamples  map[int][]Sample // per flow ID
}

// Sample is one (time, value) observation.
type Sample struct {
	Time  float64
	Value float64
}

// New builds a simulator with every link initially active.
func New(t *topo.Topology, opts Opts) *Simulator {
	opts.defaults()
	s := &Simulator{
		T:           t,
		opts:        opts,
		phase:       make([]LinkPhase, t.NumLinks()),
		lastBusy:    make([]float64, t.NumLinks()),
		arcLoad:     make([]float64, t.NumArcs()),
		sleepChk:    make([]float64, t.NumLinks()),
		rateSamples: make(map[int][]Sample),
	}
	if opts.Model != nil {
		s.meter = power.NewMeter(t, opts.Model, s.activeSet())
	}
	return s
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Schedule runs fn at the given absolute time (>= now).
func (s *Simulator) Schedule(at float64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
}

// After runs fn delay seconds from now.
func (s *Simulator) After(delay float64, fn func()) { s.Schedule(s.now+delay, fn) }

// Run processes events until the given time, then advances the clock
// to it.
func (s *Simulator) Run(until float64) {
	// Mutations made between Run calls (AddFlow, SetDemand, ...) must
	// take effect at the current time, not after the clock jumps.
	s.settle()
	for len(s.events) > 0 && s.events[0].at <= until {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		// Coalesce: apply allocation after all same-time events.
		if len(s.events) == 0 || s.events[0].at > s.now {
			s.settle()
		}
	}
	s.now = until
	s.settle()
}

// settle recomputes rates if dirty, updates sleep bookkeeping and the
// power meter.
func (s *Simulator) settle() {
	if s.dirty {
		s.allocate()
		s.dirty = false
	}
	s.scheduleSleeps()
	if s.meter != nil {
		s.meter.Observe(s.now, s.activeSet())
	}
}

// markDirty forces a rate reallocation at the end of the current tick.
func (s *Simulator) markDirty() { s.dirty = true }

// LinkState returns the current phase of a link.
func (s *Simulator) LinkState(l topo.LinkID) LinkPhase { return s.phase[l] }

// LinkCarried returns the traffic (both directions summed per arc) on
// the link's arcs in bits/s.
func (s *Simulator) LinkCarried(l topo.LinkID) float64 {
	lk := s.T.Link(l)
	return s.arcLoad[lk.AB] + s.arcLoad[lk.BA]
}

// ArcUtil returns carried/capacity for one arc direction.
func (s *Simulator) ArcUtil(a topo.ArcID) float64 {
	return s.arcLoad[a] / s.T.Arc(a).Capacity
}

// PathUtil returns the maximum arc utilization along a path.
func (s *Simulator) PathUtil(p topo.Path) float64 {
	var mx float64
	for _, aid := range p.Arcs {
		if u := s.ArcUtil(aid); u > mx {
			mx = u
		}
	}
	return mx
}

// PathPhase summarizes a path: Failed if any link failed, else
// Sleeping if any link sleeps, else Waking if any link wakes, else
// Active.
func (s *Simulator) PathPhase(p topo.Path) LinkPhase {
	worst := LinkActive
	for _, aid := range p.Arcs {
		switch s.phase[s.T.Arc(aid).Link] {
		case LinkFailed:
			return LinkFailed
		case LinkSleeping:
			worst = LinkSleeping
		case LinkWaking:
			if worst == LinkActive {
				worst = LinkWaking
			}
		}
	}
	return worst
}

// RequestWake starts waking every sleeping link on p and returns the
// time at which the whole path will be forwarding (now if already
// active). Failed links cannot be woken.
func (s *Simulator) RequestWake(p topo.Path) float64 {
	ready := s.now
	for _, aid := range p.Arcs {
		l := s.T.Arc(aid).Link
		switch s.phase[l] {
		case LinkSleeping:
			s.phase[l] = LinkWaking
			id := l
			done := s.now + s.opts.WakeUpDelay
			s.Schedule(done, func() {
				if s.phase[id] == LinkWaking {
					s.phase[id] = LinkActive
					s.lastBusy[id] = s.now
					s.markDirty()
				}
			})
			if done > ready {
				ready = done
			}
		case LinkWaking:
			// Already waking; a fresh wake would complete no later.
			if done := s.now + s.opts.WakeUpDelay; done > ready {
				ready = done
			}
		}
	}
	return ready
}

// FailLink fails a link at the current time. Registered failure
// handlers hear about it after detection + propagation delay.
func (s *Simulator) FailLink(l topo.LinkID) {
	if s.phase[l] == LinkFailed {
		return
	}
	s.phase[l] = LinkFailed
	s.markDirty()
	delay := s.opts.FailureDetect + s.opts.FailurePropagate
	id := l
	for _, h := range s.failHandlers {
		fn := h
		s.After(delay, func() { fn(s.now, id) })
	}
}

// RepairLink returns a failed link to service (active immediately).
func (s *Simulator) RepairLink(l topo.LinkID) {
	if s.phase[l] != LinkFailed {
		return
	}
	s.phase[l] = LinkActive
	s.lastBusy[l] = s.now
	s.markDirty()
}

// OnLinkFail registers a handler invoked (after detection and
// propagation delays) when a link fails.
func (s *Simulator) OnLinkFail(fn func(now float64, l topo.LinkID)) {
	s.failHandlers = append(s.failHandlers, fn)
}

// scheduleSleeps puts links that have been idle long enough to sleep
// and books future sleep checks for recently idled links.
func (s *Simulator) scheduleSleeps() {
	for _, l := range s.T.Links() {
		id := l.ID
		if s.phase[id] != LinkActive {
			continue
		}
		if s.opts.PinnedOn != nil && s.opts.PinnedOn.Link[id] {
			continue
		}
		if s.LinkCarried(id) > 1e-9 {
			s.lastBusy[id] = s.now
			continue
		}
		idle := s.now - s.lastBusy[id]
		if idle >= s.opts.SleepAfterIdle {
			s.phase[id] = LinkSleeping
			s.markDirtyPower()
		} else {
			// Check again when the idle timer would expire; dedup so
			// each link has at most one pending check.
			at := s.lastBusy[id] + s.opts.SleepAfterIdle
			if s.sleepChk[id] >= at-1e-12 && s.sleepChk[id] > s.now {
				continue
			}
			s.sleepChk[id] = at
			lid := id
			s.Schedule(at, func() {
				if s.sleepChk[lid] <= s.now+1e-12 {
					s.sleepChk[lid] = 0
				}
				if s.phase[lid] == LinkActive && s.LinkCarried(lid) <= 1e-9 &&
					(s.opts.PinnedOn == nil || !s.opts.PinnedOn.Link[lid]) &&
					s.now-s.lastBusy[lid] >= s.opts.SleepAfterIdle-1e-9 {
					s.phase[lid] = LinkSleeping
					s.markDirtyPower()
				}
			})
		}
	}
}

// markDirtyPower updates the meter without a rate recompute (phase
// changes that do not affect forwarding).
func (s *Simulator) markDirtyPower() {
	if s.meter != nil {
		s.meter.Observe(s.now, s.activeSet())
	}
}

// activeSet derives the powered element set from link phases: a link
// draws power unless sleeping or failed; a router draws power while
// any incident link does (constraint 3 of the model).
func (s *Simulator) activeSet() *topo.ActiveSet {
	a := topo.AllOff(s.T)
	for _, l := range s.T.Links() {
		on := s.phase[l.ID] == LinkActive || s.phase[l.ID] == LinkWaking
		a.Link[l.ID] = on
		if on {
			if s.T.Node(l.A).Kind != topo.KindHost {
				a.Router[l.A] = true
			}
			if s.T.Node(l.B).Kind != topo.KindHost {
				a.Router[l.B] = true
			}
		}
	}
	return a
}

// Meter returns the power meter (nil when no model was configured).
func (s *Simulator) Meter() *power.Meter { return s.meter }

// PowerPct returns the current power as a percentage of all-on, or 0
// with no meter.
func (s *Simulator) PowerPct() float64 {
	if s.meter == nil {
		return 0
	}
	if n := len(s.meter.Series); n > 0 {
		return s.meter.Series[n-1].PctOfFull
	}
	return 0
}

// SampleRates records every flow's achieved rate at the current time.
func (s *Simulator) SampleRates() {
	for _, f := range s.flows {
		s.rateSamples[f.ID] = append(s.rateSamples[f.ID], Sample{Time: s.now, Value: f.Rate()})
	}
}

// SampleEvery arranges for fn (and a rate sample) to run periodically
// until the simulator stops being run past the horizon.
func (s *Simulator) SampleEvery(period, until float64, fn func(now float64)) {
	var tick func()
	tick = func() {
		s.SampleRates()
		if fn != nil {
			fn(s.now)
		}
		if s.now+period <= until {
			s.After(period, tick)
		}
	}
	s.After(0, tick)
}

// RateSamples returns the recorded samples for a flow.
func (s *Simulator) RateSamples(id int) []Sample { return s.rateSamples[id] }

// MaxArcUtil returns the current worst arc utilization.
func (s *Simulator) MaxArcUtil() float64 {
	var mx float64
	for _, a := range s.T.Arcs() {
		if u := s.ArcUtil(a.ID); u > mx {
			mx = u
		}
	}
	return mx
}
