package sim

import (
	"container/heap"
	"fmt"
	"math"

	"response/internal/metrics"
	"response/internal/power"
	"response/internal/topo"
	"response/internal/trace"
)

// LinkPhase is the power state of a physical link.
type LinkPhase uint8

// Link power states. Waking links are powered (they draw power while
// coming up) but do not forward traffic until the wake completes.
const (
	LinkActive LinkPhase = iota
	LinkSleeping
	LinkWaking
	LinkFailed
)

// String names the phase.
func (p LinkPhase) String() string {
	switch p {
	case LinkActive:
		return "active"
	case LinkSleeping:
		return "sleeping"
	case LinkWaking:
		return "waking"
	case LinkFailed:
		return "failed"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Opts parameterizes a simulation.
type Opts struct {
	// WakeUpDelay is the time for a sleeping link to become active
	// (10 ms in the Click experiment, 5 s in the ns-2 experiments).
	WakeUpDelay float64
	// SleepAfterIdle is how long a link must carry zero traffic
	// before it sleeps (default 100 ms).
	SleepAfterIdle float64
	// FailureDetect is the local failure detection time (50 ms, §5.3).
	FailureDetect float64
	// FailurePropagate is the time for failure news to reach sources
	// (50 ms ≈ 3 hops of 16.67 ms, §5.3).
	FailurePropagate float64
	// Model meters power when non-nil.
	Model power.Model
	// PinnedOn elements never sleep (the always-on set).
	PinnedOn *topo.ActiveSet
	// FullAllocate switches the rate allocator into the global
	// reference mode: every settle re-solves max-min fairness for the
	// entire network instead of only the dirty component. Much slower
	// at scale; kept (like mcf's FullReroute) so tests can cross-check
	// the incremental allocator against the textbook solve.
	FullAllocate bool
	// Events, when non-nil, receives link phase transitions (span
	// "sim": fail/repair/sleep/wake) as JSONL events — the link-actor
	// half of the flight recorder; fail events carry the link's
	// utilization at failure time as val, the seed of the trace
	// store's critical-path scoring. Nil-safe, like all EventWriter
	// sinks.
	Events *trace.EventWriter
	// Metrics, when non-nil, receives zero-alloc counter increments
	// for link transitions and allocator passes.
	Metrics *metrics.Runtime
}

func (o *Opts) defaults() {
	if o.WakeUpDelay == 0 {
		o.WakeUpDelay = 0.01
	}
	if o.SleepAfterIdle == 0 {
		o.SleepAfterIdle = 0.1
	}
	if o.FailureDetect == 0 {
		o.FailureDetect = 0.05
	}
	if o.FailurePropagate == 0 {
		o.FailurePropagate = 0.05
	}
}

// Simulator runs the event loop over a topology.
//
// Internally it maintains a subflow universe — one entry per installed
// (flow, path level) — and a link→subflow inverted index, so that rate
// reallocation, failure reaction and sleep/wake bookkeeping all cost
// O(affected flows) rather than O(all flows × paths) per event.
type Simulator struct {
	T    *topo.Topology
	opts Opts

	now    float64
	seq    uint64
	events eventHeap

	phase    []LinkPhase // per link
	lastBusy []float64   // per link: last time it carried traffic
	wakeAt   []float64   // per link: completion time of an in-flight wake (0 = none)
	sleepChk []float64   // per link: time of the pending sleep check (0 = none)
	arcLoad  []float64   // per arc: carried rate, maintained by allocate

	flows []*Flow

	// Subflow universe: one slot per (flow, level), assigned at AddFlow
	// and stable for the simulation's lifetime.
	subFlow     []int32      // owner flow ID
	subLevel    []int32      // path level within the owner
	subRate     []float64    // last allocated rate
	subBlocked  []int32      // #arcs on the path whose link is not forwarding
	subArcStart []int32      // CSR offsets into subArcs (len = #subflows+1)
	subArcs     []topo.ArcID // concatenated path arcs per subflow

	arcSubs [][]int32 // inverted index: arc -> subflow IDs crossing it

	// Index occupancy: arc references held by live vs. removed flows.
	// When dead references outnumber live ones the index is compacted,
	// so long flow churn keeps walks and memory O(live), amortized.
	indexLive int
	indexDead int

	// Dirty frontier: flows whose offered rates or path availability
	// changed since the last allocate.
	dirtyFlows []int32
	flowDirty  []bool
	dirty      bool

	ws allocWorkspace

	started bool // initial sleep checks booked

	meter *power.Meter

	failHandlers []func(now float64, l topo.LinkID)

	// Rate sampling is opt-in (RateSampling); sampleCap 0 means
	// disabled, <0 unbounded, >0 a per-flow ring of that capacity.
	sampleCap   int
	rateSamples map[int]*sampleRing
}

// Sample is one (time, value) observation.
type Sample struct {
	Time  float64
	Value float64
}

// sampleRing holds the most recent samples of one flow. With a
// positive capacity it overwrites the oldest entry once full, so long
// replays hold bounded memory per flow. The capacity is fixed at ring
// creation: re-tuning RateSampling mid-run applies to flows sampled
// for the first time afterwards, never reshaping a live ring (which
// would scramble its chronology).
type sampleRing struct {
	cap  int // <= 0: unbounded
	buf  []Sample
	head int // next write position when full
	full bool
}

func (r *sampleRing) push(s Sample) {
	if r.cap <= 0 || len(r.buf) < r.cap {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.head] = s
	r.head = (r.head + 1) % r.cap
	r.full = true
}

func (r *sampleRing) snapshot() []Sample {
	out := make([]Sample, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.head:]...)
		out = append(out, r.buf[:r.head]...)
		return out
	}
	return append(out, r.buf...)
}

// New builds a simulator with every link initially active.
func New(t *topo.Topology, opts Opts) *Simulator {
	opts.defaults()
	s := &Simulator{
		T:           t,
		opts:        opts,
		phase:       make([]LinkPhase, t.NumLinks()),
		lastBusy:    make([]float64, t.NumLinks()),
		wakeAt:      make([]float64, t.NumLinks()),
		sleepChk:    make([]float64, t.NumLinks()),
		arcLoad:     make([]float64, t.NumArcs()),
		arcSubs:     make([][]int32, t.NumArcs()),
		subArcStart: []int32{0},
		rateSamples: make(map[int]*sampleRing),
	}
	s.ws.init(t)
	if opts.Model != nil {
		s.meter = power.NewMeter(t, opts.Model, s.activeSet())
	}
	return s
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Schedule runs fn at the given absolute time (>= now).
func (s *Simulator) Schedule(at float64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
}

// After runs fn delay seconds from now.
func (s *Simulator) After(delay float64, fn func()) { s.Schedule(s.now+delay, fn) }

// Run processes events until the given time, then advances the clock
// to it.
func (s *Simulator) Run(until float64) {
	// Mutations made between Run calls (AddFlow, SetDemand, ...) must
	// take effect at the current time, not after the clock jumps.
	s.settle()
	for len(s.events) > 0 && s.events[0].at <= until {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		// Coalesce: apply allocation after all same-time events.
		if len(s.events) == 0 || s.events[0].at > s.now {
			s.settle()
		}
	}
	s.now = until
	s.settle()
}

// settle recomputes rates if dirty and updates the power meter.
func (s *Simulator) settle() {
	if !s.started {
		s.started = true
		s.initialSleepChecks()
	}
	if s.dirty {
		s.allocate()
		s.dirty = false
	}
	if s.meter != nil {
		s.meter.Observe(s.now, s.activeSet())
	}
}

// markFlowDirty adds a flow to the reallocation frontier.
func (s *Simulator) markFlowDirty(fid int32) {
	if !s.flowDirty[fid] {
		s.flowDirty[fid] = true
		s.dirtyFlows = append(s.dirtyFlows, fid)
	}
	s.dirty = true
}

// LinkState returns the current phase of a link.
func (s *Simulator) LinkState(l topo.LinkID) LinkPhase { return s.phase[l] }

// LinkCarried returns the traffic (both directions summed per arc) on
// the link's arcs in bits/s.
func (s *Simulator) LinkCarried(l topo.LinkID) float64 {
	lk := s.T.Link(l)
	return s.arcLoad[lk.AB] + s.arcLoad[lk.BA]
}

// ArcUtil returns carried/capacity for one arc direction.
func (s *Simulator) ArcUtil(a topo.ArcID) float64 {
	return s.arcLoad[a] / s.T.Arc(a).Capacity
}

// PathUtil returns the maximum arc utilization along a path.
func (s *Simulator) PathUtil(p topo.Path) float64 {
	var mx float64
	for _, aid := range p.Arcs {
		if u := s.ArcUtil(aid); u > mx {
			mx = u
		}
	}
	return mx
}

// PathPhase summarizes a path: Failed if any link failed, else
// Sleeping if any link sleeps, else Waking if any link wakes, else
// Active.
func (s *Simulator) PathPhase(p topo.Path) LinkPhase {
	worst := LinkActive
	for _, aid := range p.Arcs {
		switch s.phase[s.T.Arc(aid).Link] {
		case LinkFailed:
			return LinkFailed
		case LinkSleeping:
			worst = LinkSleeping
		case LinkWaking:
			if worst == LinkActive {
				worst = LinkWaking
			}
		}
	}
	return worst
}

// setLinkPhase moves a link between phases, maintaining the blocked
// counters of every subflow whose path crosses it and dirtying the
// flows whose forwarding actually changes — the O(affected) core of
// failure and sleep/wake reaction.
func (s *Simulator) setLinkPhase(l topo.LinkID, p LinkPhase) {
	old := s.phase[l]
	if old == p {
		return
	}
	s.phase[l] = p
	if (old == LinkActive) == (p == LinkActive) {
		return // forwarding unchanged (e.g. sleeping -> waking)
	}
	delta := int32(1)
	if p == LinkActive {
		delta = -1
	}
	lk := s.T.Link(l)
	for _, aid := range [2]topo.ArcID{lk.AB, lk.BA} {
		for _, sf := range s.arcSubs[aid] {
			s.subBlocked[sf] += delta
			f := s.flows[s.subFlow[sf]]
			// Only flows that carry traffic here or offer traffic to
			// this path need a reallocation.
			if s.subRate[sf] > 0 ||
				(!f.removed && f.Demand > 0 && f.Share[s.subLevel[sf]] > 0) {
				s.markFlowDirty(s.subFlow[sf])
			}
		}
	}
}

// RequestWake starts waking every sleeping link on p and returns the
// time at which the whole path will be forwarding (now if already
// active). Failed links cannot be woken.
func (s *Simulator) RequestWake(p topo.Path) float64 {
	ready := s.now
	for _, aid := range p.Arcs {
		if done := s.wakeLink(s.T.Arc(aid).Link); done > ready {
			ready = done
		}
	}
	return ready
}

// wakeLink starts waking one link if it sleeps and returns the time it
// will forward (now if it already does, or the in-flight wake deadline).
func (s *Simulator) wakeLink(l topo.LinkID) float64 {
	switch s.phase[l] {
	case LinkSleeping:
		s.setLinkPhase(l, LinkWaking)
		done := s.now + s.opts.WakeUpDelay
		s.wakeAt[l] = done
		id := l
		s.Schedule(done, func() { s.completeWake(id) })
		s.opts.Events.EmitLink(s.now, "sim", "wake", int(l), s.opts.WakeUpDelay)
		if m := s.opts.Metrics; m != nil {
			m.LinkWakes.Inc()
			m.WakeLatencySec.Add(s.opts.WakeUpDelay)
		}
		return done
	case LinkWaking:
		// A wake is already in flight: it completes at the recorded
		// deadline, not a full WakeUpDelay from now.
		return s.wakeAt[l]
	}
	return s.now
}

func (s *Simulator) completeWake(l topo.LinkID) {
	if s.phase[l] != LinkWaking {
		return
	}
	s.wakeAt[l] = 0
	s.lastBusy[l] = s.now
	s.setLinkPhase(l, LinkActive)
	// If no traffic arrives the link must be able to doze off again.
	s.scheduleSleepCheck(l, s.now+s.opts.SleepAfterIdle)
}

// FailLink fails a link at the current time. Registered failure
// handlers hear about it after detection + propagation delay.
func (s *Simulator) FailLink(l topo.LinkID) {
	if s.phase[l] == LinkFailed {
		return
	}
	if s.opts.Events != nil || s.opts.Metrics != nil {
		// Utilization at the instant of failure — the seed weight of
		// the trace store's energy-critical-path scoring.
		lk := s.T.Link(l)
		util := s.ArcUtil(lk.AB)
		if v := s.ArcUtil(lk.BA); v > util {
			util = v
		}
		s.opts.Events.EmitLink(s.now, "sim", "fail", int(l), util)
		if m := s.opts.Metrics; m != nil {
			m.LinkFailures.Inc()
		}
	}
	s.wakeAt[l] = 0
	s.setLinkPhase(l, LinkFailed)
	s.markDirtyPower()
	delay := s.opts.FailureDetect + s.opts.FailurePropagate
	id := l
	for _, h := range s.failHandlers {
		fn := h
		s.After(delay, func() { fn(s.now, id) })
	}
}

// RepairLink returns a failed link to service (active immediately).
func (s *Simulator) RepairLink(l topo.LinkID) {
	if s.phase[l] != LinkFailed {
		return
	}
	s.lastBusy[l] = s.now
	s.setLinkPhase(l, LinkActive)
	s.markDirtyPower()
	s.scheduleSleepCheck(l, s.now+s.opts.SleepAfterIdle)
	s.opts.Events.EmitLink(s.now, "sim", "repair", int(l), 0)
	if m := s.opts.Metrics; m != nil {
		m.LinkRepairs.Inc()
	}
}

// OnLinkFail registers a handler invoked (after detection and
// propagation delays) when a link fails.
func (s *Simulator) OnLinkFail(fn func(now float64, l topo.LinkID)) {
	s.failHandlers = append(s.failHandlers, fn)
}

// FlowsOnLink calls yield for every installed (flow, level) whose path
// crosses the given link, via the inverted index: O(paths over l), not
// O(all flows). A flow appears once per level that uses the link;
// removed flows are skipped.
func (s *Simulator) FlowsOnLink(l topo.LinkID, yield func(f *Flow, level int)) {
	lk := s.T.Link(l)
	for _, aid := range [2]topo.ArcID{lk.AB, lk.BA} {
		for _, sf := range s.arcSubs[aid] {
			f := s.flows[s.subFlow[sf]]
			if f.removed {
				continue
			}
			yield(f, int(s.subLevel[sf]))
		}
	}
}

// pinned reports whether a link belongs to the never-sleep set.
func (s *Simulator) pinned(l topo.LinkID) bool {
	return s.opts.PinnedOn != nil && s.opts.PinnedOn.Link[l]
}

// SetPinnedOn replaces the never-sleep element set while the simulation
// runs — the hot-swap path for a new plan's always-on set. Newly pinned
// links are woken if asleep (an always-on path must be able to forward
// before traffic is handed to it); links leaving the pinned set become
// eligible to sleep again and get an idle check booked. Cost is
// O(links), independent of the flow universe, and allocation-free.
func (s *Simulator) SetPinnedOn(a *topo.ActiveSet) {
	old := s.opts.PinnedOn
	s.opts.PinnedOn = a
	for _, l := range s.T.Links() {
		was := old != nil && old.Link[l.ID]
		now := a != nil && a.Link[l.ID]
		if was == now {
			continue
		}
		if now {
			s.wakeLink(l.ID)
		} else if s.phase[l.ID] == LinkActive && s.LinkCarried(l.ID) <= 1e-9 {
			s.scheduleSleepCheck(l.ID, s.lastBusy[l.ID]+s.opts.SleepAfterIdle)
		}
	}
}

// initialSleepChecks books the first idle check for every link; after
// this, checks are driven purely by busy->idle transitions and wake or
// repair completions, so steady state costs nothing per settle.
func (s *Simulator) initialSleepChecks() {
	for _, l := range s.T.Links() {
		if s.phase[l.ID] != LinkActive || s.pinned(l.ID) {
			continue
		}
		if s.LinkCarried(l.ID) <= 1e-9 {
			s.scheduleSleepCheck(l.ID, s.lastBusy[l.ID]+s.opts.SleepAfterIdle)
		}
	}
}

// scheduleSleepCheck books an idle check for a link, keeping at most
// one outstanding check per link.
func (s *Simulator) scheduleSleepCheck(l topo.LinkID, at float64) {
	if s.pinned(l) {
		return
	}
	if s.sleepChk[l] > s.now {
		return // one already pending; it reschedules itself if needed
	}
	if at < s.now {
		at = s.now
	}
	s.sleepChk[l] = at
	id := l
	s.Schedule(at, func() { s.sleepCheck(id) })
}

// sleepCheck puts an idle link to sleep once its idle timer expired,
// or re-books itself if the link was busy in between.
func (s *Simulator) sleepCheck(l topo.LinkID) {
	s.sleepChk[l] = 0
	if s.phase[l] != LinkActive || s.pinned(l) {
		return
	}
	if s.LinkCarried(l) > 1e-9 {
		// Busy: the next busy->idle transition books a fresh check.
		return
	}
	if s.now-s.lastBusy[l] >= s.opts.SleepAfterIdle-1e-9 {
		s.setLinkPhase(l, LinkSleeping)
		s.markDirtyPower()
		s.opts.Events.EmitLink(s.now, "sim", "sleep", int(l), s.now-s.lastBusy[l])
		if m := s.opts.Metrics; m != nil {
			m.LinkSleeps.Inc()
		}
	} else {
		// Went busy and idle again since this check was booked.
		s.scheduleSleepCheck(l, s.lastBusy[l]+s.opts.SleepAfterIdle)
	}
}

// markDirtyPower updates the meter without a rate recompute (phase
// changes that do not affect forwarding).
func (s *Simulator) markDirtyPower() {
	if s.meter != nil {
		s.meter.Observe(s.now, s.activeSet())
	}
}

// activeSet derives the powered element set from link phases: a link
// draws power unless sleeping or failed; a router draws power while
// any incident link does (constraint 3 of the model).
func (s *Simulator) activeSet() *topo.ActiveSet {
	a := topo.AllOff(s.T)
	for _, l := range s.T.Links() {
		on := s.phase[l.ID] == LinkActive || s.phase[l.ID] == LinkWaking
		a.Link[l.ID] = on
		if on {
			if s.T.Node(l.A).Kind != topo.KindHost {
				a.Router[l.A] = true
			}
			if s.T.Node(l.B).Kind != topo.KindHost {
				a.Router[l.B] = true
			}
		}
	}
	return a
}

// Meter returns the power meter (nil when no model was configured).
func (s *Simulator) Meter() *power.Meter { return s.meter }

// PowerPct returns the current power as a percentage of all-on, or 0
// with no meter.
func (s *Simulator) PowerPct() float64 {
	if s.meter == nil {
		return 0
	}
	if n := len(s.meter.Series); n > 0 {
		return s.meter.Series[n-1].PctOfFull
	}
	return 0
}

// RateSampling enables per-flow rate recording. A positive capacity
// keeps a ring of the most recent capacity samples per flow (bounded
// memory for long replays); capacity <= 0 keeps every sample.
// Sampling is off until this is called: SampleRates and SampleEvery
// record nothing, so large-scale runs pay no memory for observability
// they did not ask for.
func (s *Simulator) RateSampling(capacity int) {
	if capacity <= 0 {
		capacity = -1
	}
	s.sampleCap = capacity
}

// SampleRates records every live flow's achieved rate at the current
// time. A no-op unless RateSampling was called.
func (s *Simulator) SampleRates() {
	if s.sampleCap == 0 {
		return
	}
	for _, f := range s.flows {
		if f.removed {
			continue
		}
		r := s.rateSamples[f.ID]
		if r == nil {
			r = &sampleRing{cap: s.sampleCap}
			s.rateSamples[f.ID] = r
		}
		r.push(Sample{Time: s.now, Value: f.Rate()})
	}
}

// SampleEvery arranges for fn (and, when RateSampling is enabled, a
// rate sample) to run periodically until the simulator stops being run
// past the horizon.
func (s *Simulator) SampleEvery(period, until float64, fn func(now float64)) {
	var tick func()
	tick = func() {
		s.SampleRates()
		if fn != nil {
			fn(s.now)
		}
		if s.now+period <= until {
			s.After(period, tick)
		}
	}
	s.After(0, tick)
}

// RateSamples returns the recorded samples for a flow in chronological
// order (nil when sampling was never enabled for it).
func (s *Simulator) RateSamples(id int) []Sample {
	r := s.rateSamples[id]
	if r == nil {
		return nil
	}
	return r.snapshot()
}

// StateFingerprint hashes the simulator's externally observable
// steady state — every arc's carried load quantized to 1 bit/s plus
// every link's phase — into one FNV-1a value. Unlike the controller's
// action fingerprint it is independent of flow identities and history,
// so a runtime that hot-swapped to a plan can be compared against one
// started fresh on it: once both settle, equal traffic placement means
// equal fingerprints.
func (s *Simulator) StateFingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	for _, load := range s.arcLoad {
		mix(uint64(int64(math.Round(load))))
	}
	for _, p := range s.phase {
		mix(uint64(p))
	}
	return h
}

// MaxArcUtil returns the current worst arc utilization.
func (s *Simulator) MaxArcUtil() float64 {
	var mx float64
	for _, a := range s.T.Arcs() {
		if u := s.ArcUtil(a.ID); u > mx {
			mx = u
		}
	}
	return mx
}

// OverloadedLinks returns, in LinkID order, every non-failed link
// whose worse arc utilization is at least minUtil — the candidate set
// for load-driven cascading failures (a correlated-failure model
// fails overloaded survivors of a cut with some chain probability).
func (s *Simulator) OverloadedLinks(minUtil float64) []topo.LinkID {
	var out []topo.LinkID
	for _, l := range s.T.Links() {
		if s.phase[l.ID] == LinkFailed {
			continue
		}
		if s.ArcUtil(l.AB) >= minUtil || s.ArcUtil(l.BA) >= minUtil {
			out = append(out, l.ID)
		}
	}
	return out
}
