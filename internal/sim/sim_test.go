package sim

import (
	"math"
	"testing"
	"testing/quick"

	"response/internal/power"
	"response/internal/topo"
)

// dumbbell: A-B single 10 Mbps, 10 ms link.
func dumbbell(t *testing.T) (*topo.Topology, topo.NodeID, topo.NodeID, topo.Path) {
	t.Helper()
	tp := topo.New("dumbbell")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.01)
	ab, _ := tp.ArcBetween(a, b)
	return tp, a, b, topo.Path{Arcs: []topo.ArcID{ab}}
}

func TestSingleFlowDemandLimited(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	f, err := s.AddFlow(a, b, 4*topo.Mbps, []topo.Path{p})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1)
	if math.Abs(f.Rate()-4*topo.Mbps) > 1 {
		t.Errorf("rate = %v, want 4 Mbps", f.Rate())
	}
	if u := s.PathUtil(p); math.Abs(u-0.4) > 1e-6 {
		t.Errorf("util = %v, want 0.4", u)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	f1, _ := s.AddFlow(a, b, 20*topo.Mbps, []topo.Path{p})
	f2, _ := s.AddFlow(a, b, 20*topo.Mbps, []topo.Path{p})
	s.Run(1)
	if math.Abs(f1.Rate()-5*topo.Mbps) > 1 || math.Abs(f2.Rate()-5*topo.Mbps) > 1 {
		t.Errorf("rates = %v / %v, want 5 Mbps each", f1.Rate(), f2.Rate())
	}
}

func TestMaxMinSmallFlowGetsDemand(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	small, _ := s.AddFlow(a, b, 1*topo.Mbps, []topo.Path{p})
	big, _ := s.AddFlow(a, b, 100*topo.Mbps, []topo.Path{p})
	s.Run(1)
	if math.Abs(small.Rate()-1*topo.Mbps) > 1 {
		t.Errorf("small flow got %v, want its full 1 Mbps", small.Rate())
	}
	if math.Abs(big.Rate()-9*topo.Mbps) > 1 {
		t.Errorf("big flow got %v, want the residual 9 Mbps", big.Rate())
	}
}

func TestSetDemandTakesEffect(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	f, _ := s.AddFlow(a, b, 2*topo.Mbps, []topo.Path{p})
	s.Run(1)
	s.SetDemand(f, 8*topo.Mbps)
	s.Run(2)
	if math.Abs(f.Rate()-8*topo.Mbps) > 1 {
		t.Errorf("rate after SetDemand = %v", f.Rate())
	}
}

func TestBytesIntegration(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	f, _ := s.AddFlow(a, b, 8*topo.Mbps, []topo.Path{p})
	s.Run(10)
	want := 8e6 / 8 * 10 // 10 MB
	if got := s.Bytes(f); math.Abs(got-want) > want*0.01 {
		t.Errorf("bytes = %v, want %v", got, want)
	}
}

func TestIdleLinkSleepsAndPowerDrops(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{Model: power.Cisco12000{}, SleepAfterIdle: 0.5})
	f, _ := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{p})
	s.Run(1)
	if s.LinkState(0) != LinkActive {
		t.Fatal("busy link should be active")
	}
	s.SetDemand(f, 0)
	s.Run(3)
	if s.LinkState(0) != LinkSleeping {
		t.Fatalf("idle link state = %v, want sleeping", s.LinkState(0))
	}
	if s.PowerPct() != 0 {
		t.Errorf("power = %v%%, want 0 (everything asleep)", s.PowerPct())
	}
}

func TestPinnedLinksNeverSleep(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	pinned := topo.AllOn(tp)
	s := New(tp, Opts{SleepAfterIdle: 0.1, PinnedOn: pinned})
	f, _ := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{p})
	s.SetDemand(f, 0)
	s.Run(5)
	if s.LinkState(0) != LinkActive {
		t.Errorf("pinned link slept: %v", s.LinkState(0))
	}
}

func TestWakeDelay(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{SleepAfterIdle: 0.1, WakeUpDelay: 2})
	f, _ := s.AddFlow(a, b, 0, []topo.Path{p})
	s.Run(1) // link sleeps (zero demand)
	if s.LinkState(0) != LinkSleeping {
		t.Fatalf("state = %v", s.LinkState(0))
	}
	s.SetDemand(f, 5*topo.Mbps)
	ready := s.RequestWake(p)
	if math.Abs(ready-(s.Now()+2)) > 1e-9 {
		t.Errorf("ready = %v, want now+2", ready)
	}
	s.Run(s.Now() + 1)
	if f.Rate() != 0 {
		t.Error("flow sent while path waking")
	}
	s.Run(ready + 0.1)
	if math.Abs(f.Rate()-5*topo.Mbps) > 1 {
		t.Errorf("rate after wake = %v", f.Rate())
	}
}

func TestFailureStopsTrafficAndNotifies(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{FailureDetect: 0.05, FailurePropagate: 0.05})
	f, _ := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{p})
	var notifiedAt float64 = -1
	s.OnLinkFail(func(now float64, l topo.LinkID) { notifiedAt = now })
	s.Run(1)
	s.FailLink(0)
	s.Run(2)
	if f.Rate() != 0 {
		t.Error("flow still sending over failed link")
	}
	if math.Abs(notifiedAt-1.1) > 1e-9 {
		t.Errorf("notified at %v, want 1.1 (fail at 1 + 0.1 delay)", notifiedAt)
	}
	if s.PathPhase(p) != LinkFailed {
		t.Error("path phase should be failed")
	}
	s.RepairLink(0)
	s.Run(3)
	if math.Abs(f.Rate()-5*topo.Mbps) > 1 {
		t.Error("flow did not recover after repair")
	}
}

func TestShiftShare(t *testing.T) {
	// Two disjoint paths A->B: direct and via C.
	tp := topo.New("twopath")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.01)
	tp.AddLink(a, c, 10*topo.Mbps, 0.01)
	tp.AddLink(c, b, 10*topo.Mbps, 0.01)
	ab, _ := tp.ArcBetween(a, b)
	ac, _ := tp.ArcBetween(a, c)
	cb, _ := tp.ArcBetween(c, b)
	direct := topo.Path{Arcs: []topo.ArcID{ab}}
	detour := topo.Path{Arcs: []topo.ArcID{ac, cb}}

	// Disable sleeping: this test is about share arithmetic, and an
	// idle detour would (correctly) doze off otherwise.
	s := New(tp, Opts{SleepAfterIdle: 1e9})
	f, _ := s.AddFlow(a, b, 8*topo.Mbps, []topo.Path{direct, detour})
	s.Run(1)
	if f.PathRate(0) == 0 || f.PathRate(1) != 0 {
		t.Fatal("initial share should be all on level 0")
	}
	s.ShiftShare(f, 0, 1, 0.5)
	s.Run(2)
	if math.Abs(f.PathRate(0)-4e6) > 1 || math.Abs(f.PathRate(1)-4e6) > 1 {
		t.Errorf("split rates = %v / %v", f.PathRate(0), f.PathRate(1))
	}
	// Clamped shift: moving 2.0 moves only what's there.
	s.ShiftShare(f, 0, 1, 2.0)
	s.Run(3)
	if f.PathRate(0) != 0 || math.Abs(f.Rate()-8e6) > 1 {
		t.Errorf("after full shift: %v / %v", f.PathRate(0), f.PathRate(1))
	}
	// Invalid shifts are no-ops.
	s.ShiftShare(f, 5, 0, 1)
	s.ShiftShare(f, 0, 0, 1)
}

func TestMeterTracksSleepTransitions(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{Model: power.Cisco12000{}, SleepAfterIdle: 1})
	f, _ := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{p})
	s.Run(5)
	s.SetDemand(f, 0)
	s.Run(20)
	j := s.Meter().Finish(20)
	full := s.Meter().FullWatts()
	// Power: full for ≈6 s (5 s busy + 1 s idle timeout), then zero.
	want := full * 6
	if math.Abs(j-want) > full*1.0 {
		t.Errorf("energy = %.0f J, want ≈%.0f J", j, want)
	}
}

func TestSampleRates(t *testing.T) {
	tp, a, b, p := dumbbell(t)
	s := New(tp, Opts{})
	s.RateSampling(0) // unbounded
	f, _ := s.AddFlow(a, b, 5*topo.Mbps, []topo.Path{p})
	s.SampleEvery(0.5, 4.9, nil)
	s.Run(5)
	samples := s.RateSamples(f.ID)
	if len(samples) < 9 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, smp := range samples[1:] {
		if math.Abs(smp.Value-5e6) > 1 {
			t.Errorf("sample %v = %v", smp.Time, smp.Value)
		}
	}
}

func TestAddFlowValidation(t *testing.T) {
	tp, a, b, _ := dumbbell(t)
	s := New(tp, Opts{})
	if _, err := s.AddFlow(a, b, 1, nil); err == nil {
		t.Error("no paths should error")
	}
	bad := topo.Path{Arcs: []topo.ArcID{99}}
	if _, err := s.AddFlow(a, b, 1, []topo.Path{bad}); err == nil {
		t.Error("invalid path should error")
	}
}

// Property: allocation never exceeds arc capacity regardless of flow mix.
func TestAllocationCapacityProperty(t *testing.T) {
	tp := topo.New("tri")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.001)
	tp.AddLink(b, c, 5*topo.Mbps, 0.001)
	tp.AddLink(a, c, 2*topo.Mbps, 0.001)
	ab, _ := tp.ArcBetween(a, b)
	bc, _ := tp.ArcBetween(b, c)
	ac, _ := tp.ArcBetween(a, c)
	paths := [][]topo.Path{
		{{Arcs: []topo.ArcID{ab}}},
		{{Arcs: []topo.ArcID{ab, bc}}, {Arcs: []topo.ArcID{ac}}},
		{{Arcs: []topo.ArcID{ac}}},
	}
	f := func(d1, d2, d3 uint16, split uint8) bool {
		s := New(tp, Opts{})
		f1, _ := s.AddFlow(a, b, float64(d1)*1e3, paths[0])
		f2, _ := s.AddFlow(a, c, float64(d2)*1e3, paths[1])
		f3, _ := s.AddFlow(a, c, float64(d3)*1e3, paths[2])
		s.Run(0.1)
		s.ShiftShare(f2, 0, 1, float64(split%101)/100)
		s.Run(0.2)
		for _, arc := range tp.Arcs() {
			if s.ArcUtil(arc.ID) > 1+1e-9 {
				return false
			}
		}
		// Work conservation: flows never exceed demand.
		for _, fl := range []*Flow{f1, f2, f3} {
			if fl.Rate() > fl.Demand+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLinkPhaseString(t *testing.T) {
	for p, want := range map[LinkPhase]string{
		LinkActive: "active", LinkSleeping: "sleeping",
		LinkWaking: "waking", LinkFailed: "failed",
	} {
		if p.String() != want {
			t.Errorf("%d = %q", p, p.String())
		}
	}
}

// TestOverloadedLinks: only hot, non-failed links are candidates for
// the cascading-failure model.
func TestOverloadedLinks(t *testing.T) {
	tp := topo.New("triangle")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	tp.AddLink(a, b, 10*topo.Mbps, 0.01)
	tp.AddLink(b, c, 10*topo.Mbps, 0.01)
	tp.AddLink(a, c, 10*topo.Mbps, 0.01)
	ab, _ := tp.ArcBetween(a, b)
	bc, _ := tp.ArcBetween(b, c)

	s := New(tp, Opts{})
	// Saturate A->B->C; leave A-C idle.
	if _, err := s.AddFlow(a, c, 50*topo.Mbps, []topo.Path{{Arcs: []topo.ArcID{ab, bc}}}); err != nil {
		t.Fatal(err)
	}
	s.Run(1)

	hot := s.OverloadedLinks(0.9)
	if len(hot) != 2 {
		t.Fatalf("OverloadedLinks(0.9) = %v, want the two saturated path links", hot)
	}
	if none := s.OverloadedLinks(1.5); len(none) != 0 {
		t.Errorf("threshold above max util still returns %v", none)
	}

	// A failed link is never a cascade candidate even if it was hot.
	s.FailLink(tp.Arc(ab).Link)
	s.Run(2)
	for _, l := range s.OverloadedLinks(0.9) {
		if l == tp.Arc(ab).Link {
			t.Errorf("failed link %d reported as overloaded", l)
		}
	}
}
