package sim

import (
	"math"
	"slices"

	"response/internal/topo"
)

// allocWorkspace holds the allocator's reusable scratch state. Arrays
// indexed by arc are sized once at New; arrays indexed by flow or
// subflow grow with AddFlow. Epoch stamping (the spf Workspace trick)
// makes per-allocate clearing O(component), not O(universe).
type allocWorkspace struct {
	epoch     uint32
	flowSeen  []uint32 // per flow: BFS visit stamp
	arcSeen   []uint32 // per arc: component membership stamp
	linkSeen  []uint32 // per link: touched stamp
	subActive []uint32 // per subflow: unfrozen stamp during the solve

	queue    []int32      // BFS queue of component flow IDs
	compArcs []topo.ArcID // component arcs
	active   []wantSub    // unfrozen subflows, want-sorted
	newRate  []float64    // per subflow: solved rate this solve
	capLeft  []float64    // per arc
	unfrozen []int32      // per arc
	links    []topo.LinkID
	oldLoad  []float64 // parallel to links: pre-solve carried load
}

func (w *allocWorkspace) init(t *topo.Topology) {
	w.arcSeen = make([]uint32, t.NumArcs())
	w.capLeft = make([]float64, t.NumArcs())
	w.unfrozen = make([]int32, t.NumArcs())
	w.linkSeen = make([]uint32, t.NumLinks())
}

func (w *allocWorkspace) grow(flows, subs int) {
	for len(w.flowSeen) < flows {
		w.flowSeen = append(w.flowSeen, 0)
	}
	for len(w.subActive) < subs {
		w.subActive = append(w.subActive, 0)
		w.newRate = append(w.newRate, 0)
	}
}

// wantSub pairs a subflow with its offered rate for the want-sorted
// filling pass; sorting the pair directly (rather than ids indirecting
// into a side array) keeps the hot comparator cache-local.
type wantSub struct {
	want float64
	sf   int32
}

// subArcSpan returns the arcs of one subflow's path.
func (s *Simulator) subArcSpan(sf int32) []topo.ArcID {
	return s.subArcs[s.subArcStart[sf]:s.subArcStart[sf+1]]
}

// subRelevant reports whether a subflow matters to the max-min solve:
// it either carries traffic now (its capacity must be redistributed)
// or offers traffic over a fully forwarding path.
func (s *Simulator) subRelevant(sf int32, f *Flow, level int) bool {
	if s.subRate[sf] > 0 {
		return true
	}
	return !f.removed && f.Demand > 0 && f.Share[level] > 0 &&
		s.subBlocked[sf] == 0 && !f.Paths[level].Empty()
}

// allocate recomputes max-min fair subflow rates for the dirty
// component. Each (flow, path) with positive share and a fully active
// path is a subflow demanding share×Demand; progressive filling
// freezes the subflows of the currently most-contended arc at its fair
// share.
//
// Unlike the textbook global solve, only the connected component of
// the subflow↔arc constraint graph reachable from the dirty flows is
// re-solved: max-min rates of disjoint components are independent, so
// the result is exactly the global solution restricted to the affected
// flows. Opts.FullAllocate forces the whole universe into the
// component for cross-checking.
func (s *Simulator) allocate() {
	w := &s.ws
	w.epoch++
	epoch := w.epoch
	w.queue = w.queue[:0]
	w.compArcs = w.compArcs[:0]

	// 1. Component discovery: BFS from the dirty flows across shared
	// arcs, following only subflows that carry or could carry traffic.
	if s.opts.FullAllocate {
		for _, f := range s.flows {
			w.flowSeen[f.ID] = epoch
			w.queue = append(w.queue, int32(f.ID))
		}
	} else {
		for _, fid := range s.dirtyFlows {
			if w.flowSeen[fid] != epoch {
				w.flowSeen[fid] = epoch
				w.queue = append(w.queue, fid)
			}
		}
	}
	for head := 0; head < len(w.queue); head++ {
		f := s.flows[w.queue[head]]
		for i := range f.Paths {
			sf := f.subBase + int32(i)
			if !s.subRelevant(sf, f, i) {
				continue
			}
			for _, aid := range s.subArcSpan(sf) {
				if w.arcSeen[aid] == epoch {
					continue
				}
				w.arcSeen[aid] = epoch
				w.compArcs = append(w.compArcs, aid)
				for _, sf2 := range s.arcSubs[aid] {
					fid2 := s.subFlow[sf2]
					if w.flowSeen[fid2] == epoch {
						continue
					}
					f2 := s.flows[fid2]
					if !s.subRelevant(sf2, f2, int(s.subLevel[sf2])) {
						continue
					}
					w.flowSeen[fid2] = epoch
					w.queue = append(w.queue, fid2)
				}
			}
		}
	}
	// Deterministic order regardless of how the component was entered,
	// so the incremental and full modes solve identical sequences.
	slices.Sort(w.queue)
	slices.Sort(w.compArcs)
	if m := s.opts.Metrics; m != nil {
		m.AllocEpochs.Inc()
		m.AllocFlows.Add(uint64(len(w.queue)))
	}

	// 2. Build the offered subflow set; wake-on-arrival for offered
	// traffic whose path is asleep (the subflow starts once the wake
	// completes).
	w.active = w.active[:0]
	for _, fid := range w.queue {
		f := s.flows[fid]
		s.integrate(f) // before this component's rates change
		for i, p := range f.Paths {
			sf := f.subBase + int32(i)
			w.newRate[sf] = 0
			if f.removed || p.Empty() || f.Share[i] <= 0 {
				continue
			}
			want := f.Share[i] * f.Demand
			if want <= 0 {
				continue
			}
			if s.subBlocked[sf] > 0 {
				if s.PathPhase(p) == LinkSleeping {
					s.RequestWake(p)
				}
				continue
			}
			w.active = append(w.active, wantSub{want: want, sf: sf})
		}
	}

	// Want-sorted active list: the demand-limited freezing pass below
	// consumes a sorted prefix, amortizing to O(n log n) overall
	// instead of rescanning every subflow per filling round.
	slices.SortFunc(w.active, func(a, b wantSub) int {
		if a.want != b.want {
			if a.want < b.want {
				return -1
			}
			return 1
		}
		if a.sf < b.sf {
			return -1
		} else if a.sf > b.sf {
			return 1
		}
		return 0
	})

	// 3. Progressive filling over the component.
	for _, aid := range w.compArcs {
		w.capLeft[aid] = s.T.Arc(aid).Capacity
		w.unfrozen[aid] = 0
	}
	for _, as := range w.active {
		w.subActive[as.sf] = epoch
		for _, aid := range s.subArcSpan(as.sf) {
			w.unfrozen[aid]++
		}
	}
	freeze := func(sf int32, rate float64) {
		w.newRate[sf] = rate
		w.subActive[sf] = 0
		for _, aid := range s.subArcSpan(sf) {
			w.capLeft[aid] -= rate
			w.unfrozen[aid]--
		}
	}
	remaining := len(w.active)
	lo := 0
	for remaining > 0 {
		// Fair share per arc among unfrozen subflows.
		minShare := math.Inf(1)
		for _, aid := range w.compArcs {
			if n := w.unfrozen[aid]; n > 0 {
				if sh := w.capLeft[aid] / float64(n); sh < minShare {
					minShare = sh
				}
			}
		}
		if math.IsInf(minShare, 1) {
			break
		}
		// Demand-limited subflows freeze at their want.
		progressed := false
		for lo < len(w.active) {
			as := w.active[lo]
			if w.subActive[as.sf] != epoch {
				lo++ // frozen earlier by a bottleneck arc
				continue
			}
			if as.want > minShare+1e-12 {
				break
			}
			freeze(as.sf, as.want)
			lo++
			remaining--
			progressed = true
		}
		if progressed {
			continue
		}
		// Otherwise freeze subflows on the bottleneck arc(s) at the
		// fair share.
		for _, aid := range w.compArcs {
			n := w.unfrozen[aid]
			if n == 0 {
				continue
			}
			if w.capLeft[aid]/float64(n) <= minShare+1e-12 {
				for _, sf := range s.arcSubs[aid] {
					if w.subActive[sf] != epoch {
						continue
					}
					freeze(sf, minShare)
					remaining--
				}
			}
		}
	}

	// 4. Write back: recompute component arc loads from scratch (no
	// incremental drift) and detect per-link busy/idle transitions.
	w.links = w.links[:0]
	w.oldLoad = w.oldLoad[:0]
	for _, aid := range w.compArcs {
		l := s.T.Arc(aid).Link
		if w.linkSeen[l] == epoch {
			continue
		}
		w.linkSeen[l] = epoch
		w.links = append(w.links, l)
		w.oldLoad = append(w.oldLoad, s.LinkCarried(l))
	}
	for _, aid := range w.compArcs {
		s.arcLoad[aid] = 0
	}
	for _, fid := range w.queue {
		f := s.flows[fid]
		for i := range f.Paths {
			sf := f.subBase + int32(i)
			r := w.newRate[sf]
			if r < 0 {
				r = 0
			}
			s.subRate[sf] = r
			f.pathRate[i] = r
			if r > 0 {
				for _, aid := range s.subArcSpan(sf) {
					s.arcLoad[aid] += r
				}
			}
		}
	}
	for k, l := range w.links {
		load := s.LinkCarried(l)
		if load > 1e-9 {
			s.lastBusy[l] = s.now
		} else if w.oldLoad[k] > 1e-9 {
			// Busy -> idle: start the idle timer and book the check.
			s.lastBusy[l] = s.now
			s.scheduleSleepCheck(l, s.now+s.opts.SleepAfterIdle)
		}
	}

	// 5. Reset the dirty frontier.
	for _, fid := range s.dirtyFlows {
		s.flowDirty[fid] = false
	}
	s.dirtyFlows = s.dirtyFlows[:0]
}
