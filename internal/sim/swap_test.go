package sim

import (
	"testing"

	"response/internal/topo"
)

func pinTopo(t *testing.T) (*Simulator, *topo.Topology, topo.LinkID, topo.LinkID) {
	t.Helper()
	tp := topo.New("pin")
	a := tp.AddNode("A", topo.KindRouter)
	b := tp.AddNode("B", topo.KindRouter)
	c := tp.AddNode("C", topo.KindRouter)
	l1 := tp.AddLink(a, b, 10*topo.Mbps, 0.01)
	l2 := tp.AddLink(b, c, 10*topo.Mbps, 0.01)
	pinned := topo.AllOff(tp)
	pinned.Link[l1] = true
	s := New(tp, Opts{WakeUpDelay: 1, SleepAfterIdle: 0.1, PinnedOn: pinned})
	return s, tp, l1, l2
}

// TestSetPinnedOnSwapsSleepEligibility: un-pinning an idle link lets
// it sleep; pinning a sleeping link wakes it.
func TestSetPinnedOnSwapsSleepEligibility(t *testing.T) {
	s, tp, l1, l2 := pinTopo(t)
	s.Run(1)
	if got := s.LinkState(l1); got != LinkActive {
		t.Fatalf("pinned idle link state = %v, want active", got)
	}
	if got := s.LinkState(l2); got != LinkSleeping {
		t.Fatalf("unpinned idle link state = %v, want sleeping", got)
	}
	// Swap the pinned set: l2 becomes always-on, l1 leaves the set.
	swapped := topo.AllOff(tp)
	swapped.Link[l2] = true
	s.SetPinnedOn(swapped)
	if got := s.LinkState(l2); got != LinkWaking {
		t.Errorf("newly pinned sleeping link state = %v, want waking", got)
	}
	s.Run(2.5)
	if got := s.LinkState(l2); got != LinkActive {
		t.Errorf("newly pinned link state = %v, want active after wake", got)
	}
	if got := s.LinkState(l1); got != LinkSleeping {
		t.Errorf("unpinned idle link state = %v, want sleeping after idle", got)
	}
}

// TestStateFingerprintReflectsPlacement: equal traffic placement gives
// equal fingerprints regardless of flow identity/history; different
// placement differs.
func TestStateFingerprintReflectsPlacement(t *testing.T) {
	build := func(extraDead bool, rate float64) uint64 {
		tp := topo.New("fp")
		a := tp.AddNode("A", topo.KindRouter)
		b := tp.AddNode("B", topo.KindRouter)
		tp.AddLink(a, b, 10*topo.Mbps, 0.01)
		ab, _ := tp.ArcBetween(a, b)
		p := []topo.Path{{Arcs: []topo.ArcID{ab}}}
		s := New(tp, Opts{SleepAfterIdle: 1e9})
		if extraDead {
			// History that should not matter: an earlier flow that was
			// removed again.
			g, _ := s.AddFlow(a, b, 2*topo.Mbps, p)
			s.Run(1)
			s.RemoveFlow(g)
		}
		if _, err := s.AddFlow(a, b, rate, p); err != nil {
			t.Fatal(err)
		}
		s.Run(2)
		return s.StateFingerprint()
	}
	plain := build(false, 5*topo.Mbps)
	churned := build(true, 5*topo.Mbps)
	other := build(false, 6*topo.Mbps)
	if plain != churned {
		t.Errorf("same placement, different history: %016x vs %016x", plain, churned)
	}
	if plain == other {
		t.Errorf("different placement shares fingerprint %016x", plain)
	}
}
