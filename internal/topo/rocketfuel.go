package topo

// Rocketfuel-style PoP-level ISP topologies (paper §5.1). The paper
// uses Abovenet (AS 6461) and Genuity (AS 1) maps inferred by
// Rocketfuel, applies the capacity rule from TeXCP — 100 Mbps when an
// endpoint has degree < 7, else 52 Mbps — and keeps latencies from the
// Rocketfuel mapping engine (here: derived from city geography).
//
// Substitution note (DESIGN.md §2): the raw Rocketfuel maps are not
// bundled; these embeddings preserve PoP counts of the published
// PoP-level maps within a few nodes, the degree distribution shape
// (a dense national core plus lower-degree spurs), and the redundancy
// level that makes energy-aware routing non-trivial.

// rocketCapacity applies the TeXCP capacity convention after all links
// are added: 100 Mbps unless either endpoint has degree >= 7.
func rocketCapacity(t *Topology) {
	for i := range t.arcs {
		a := &t.arcs[i]
		if t.Degree(a.From) >= 7 || t.Degree(a.To) >= 7 {
			a.Capacity = 52 * Mbps
		} else {
			a.Capacity = 100 * Mbps
		}
	}
}

// NewAbovenet returns a 19-PoP approximation of the Abovenet (AS 6461)
// backbone used for the application-level experiments (Figure 9, web
// workload).
func NewAbovenet() *Topology {
	t := New("abovenet")
	add := func(name string, e, n float64) NodeID {
		return t.AddNodeAt(name, KindRouter, e, n)
	}
	sjc := add("SanJose", 0, 0)
	sfo := add("SanFrancisco", -20, 60)
	sea := add("Seattle", 100, 1100)
	lax := add("LosAngeles", 300, -450)
	phx := add("Phoenix", 900, -500)
	den := add("Denver", 1500, 200)
	dfw := add("Dallas", 2200, -600)
	hou := add("Houston", 2350, -800)
	chi := add("Chicago", 2900, 500)
	stl := add("StLouis", 2750, 100)
	atl := add("Atlanta", 3400, -400)
	mia := add("Miami", 3900, -1000)
	iad := add("Washington", 3900, 200)
	jfk := add("NewYork", 4100, 400)
	bos := add("Boston", 4250, 550)
	lhr := add("London", 8500, 1500)
	ams := add("Amsterdam", 8900, 1600)
	fra := add("Frankfurt", 9100, 1450)
	nrt := add("Tokyo", -8500, 600)

	links := [][2]NodeID{
		{sjc, sfo}, {sjc, lax}, {sjc, sea}, {sjc, den}, {sjc, dfw}, {sjc, chi},
		{sfo, sea}, {sfo, lax}, {lax, phx}, {phx, dfw}, {den, chi}, {den, dfw},
		{dfw, hou}, {dfw, atl}, {dfw, stl}, {hou, atl}, {chi, stl}, {chi, jfk},
		{chi, iad}, {stl, atl}, {atl, mia}, {atl, iad}, {mia, iad}, {iad, jfk},
		{jfk, bos}, {jfk, lhr}, {iad, lhr}, {lhr, ams}, {lhr, fra}, {ams, fra},
		{sjc, nrt}, {sea, nrt}, {chi, bos}, {sea, chi},
	}
	for _, l := range links {
		t.AddLinkKm(l[0], l[1], 100*Mbps)
	}
	rocketCapacity(t)
	return t
}

// NewGenuity returns a 27-PoP approximation of the Genuity (AS 1)
// backbone used for the utilization sweep (Figure 6).
func NewGenuity() *Topology {
	t := New("genuity")
	add := func(name string, e, n float64) NodeID {
		return t.AddNodeAt(name, KindRouter, e, n)
	}
	sea := add("Seattle", 100, 1100)
	pdx := add("Portland", 80, 950)
	sfo := add("SanFrancisco", -20, 60)
	sjc := add("SanJose", 0, 0)
	lax := add("LosAngeles", 300, -450)
	san := add("SanDiego", 350, -550)
	phx := add("Phoenix", 900, -500)
	slc := add("SaltLake", 1100, 300)
	den := add("Denver", 1500, 200)
	dfw := add("Dallas", 2200, -600)
	hou := add("Houston", 2350, -800)
	kcy := add("KansasCity", 2400, 100)
	msp := add("Minneapolis", 2600, 700)
	stl := add("StLouis", 2750, 100)
	chi := add("Chicago", 2900, 500)
	ind := add("Indianapolis", 3000, 300)
	det := add("Detroit", 3200, 550)
	clv := add("Cleveland", 3350, 500)
	nsh := add("Nashville", 3100, -150)
	atl := add("Atlanta", 3400, -400)
	mia := add("Miami", 3900, -1000)
	tpa := add("Tampa", 3700, -900)
	iad := add("Washington", 3900, 200)
	phl := add("Philadelphia", 4000, 320)
	jfk := add("NewYork", 4100, 400)
	bos := add("Boston", 4250, 550)
	pit := add("Pittsburgh", 3550, 350)

	links := [][2]NodeID{
		{sea, pdx}, {sea, sfo}, {sea, msp}, {pdx, sfo}, {sfo, sjc}, {sjc, lax},
		{sfo, slc}, {lax, san}, {lax, phx}, {san, phx}, {phx, dfw}, {slc, den},
		{den, kcy}, {den, dfw}, {dfw, hou}, {dfw, kcy}, {hou, atl}, {kcy, stl},
		{kcy, chi}, {msp, chi}, {stl, chi}, {stl, nsh}, {chi, ind}, {chi, det},
		{chi, jfk}, {ind, clv}, {det, clv}, {clv, pit}, {nsh, atl}, {atl, mia},
		{atl, iad}, {mia, tpa}, {tpa, atl}, {pit, iad}, {iad, phl}, {phl, jfk},
		{jfk, bos}, {iad, jfk}, {chi, iad}, {sjc, dfw}, {sfo, chi}, {den, chi},
		{bos, chi}, {lax, dfw},
	}
	for _, l := range links {
		t.AddLinkKm(l[0], l[1], 100*Mbps)
	}
	rocketCapacity(t)
	return t
}
