package topo

import (
	"math"
	"strings"
	"testing"
)

// line builds A-B-C with 10 Mbps links of 1 ms.
func line(t *testing.T) (*Topology, []NodeID) {
	t.Helper()
	tp := New("line")
	a := tp.AddNode("A", KindRouter)
	b := tp.AddNode("B", KindRouter)
	c := tp.AddNode("C", KindRouter)
	tp.AddLink(a, b, 10*Mbps, 0.001)
	tp.AddLink(b, c, 10*Mbps, 0.001)
	return tp, []NodeID{a, b, c}
}

func TestAddLinkCreatesArcPair(t *testing.T) {
	tp, ids := line(t)
	if tp.NumNodes() != 3 || tp.NumLinks() != 2 || tp.NumArcs() != 4 {
		t.Fatalf("counts: %d nodes %d links %d arcs", tp.NumNodes(), tp.NumLinks(), tp.NumArcs())
	}
	ab, ok := tp.ArcBetween(ids[0], ids[1])
	if !ok {
		t.Fatal("missing arc A->B")
	}
	ba := tp.Reverse(ab)
	if tp.Arc(ba).From != ids[1] || tp.Arc(ba).To != ids[0] {
		t.Errorf("reverse arc endpoints wrong: %+v", tp.Arc(ba))
	}
	if tp.Arc(ab).Link != tp.Arc(ba).Link {
		t.Error("arc pair should share a link")
	}
	if err := tp.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddLinkPanics(t *testing.T) {
	tp := New("x")
	a := tp.AddNode("A", KindRouter)
	b := tp.AddNode("B", KindRouter)
	tp.AddLink(a, b, Mbps, 0.001)
	assertPanics(t, "self-loop", func() { tp.AddLink(a, a, Mbps, 0.001) })
	assertPanics(t, "duplicate", func() { tp.AddLink(b, a, Mbps, 0.001) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestAsymmetricCapacity(t *testing.T) {
	tp := New("asym")
	a := tp.AddNode("A", KindRouter)
	b := tp.AddNode("B", KindRouter)
	tp.AddAsymLink(a, b, 10*Mbps, 2*Mbps, 0.001)
	ab, _ := tp.ArcBetween(a, b)
	ba, _ := tp.ArcBetween(b, a)
	if tp.Arc(ab).Capacity != 10*Mbps || tp.Arc(ba).Capacity != 2*Mbps {
		t.Errorf("capacities %v / %v", tp.Arc(ab).Capacity, tp.Arc(ba).Capacity)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAndAdjacency(t *testing.T) {
	tp, ids := line(t)
	if tp.Degree(ids[1]) != 2 || tp.Degree(ids[0]) != 1 {
		t.Errorf("degrees: %d %d", tp.Degree(ids[1]), tp.Degree(ids[0]))
	}
	if len(tp.Out(ids[1])) != 2 || len(tp.In(ids[1])) != 2 {
		t.Error("adjacency lists wrong")
	}
}

func TestConnected(t *testing.T) {
	tp, _ := line(t)
	if !tp.Connected() {
		t.Error("line should be connected")
	}
	tp.AddNode("isolated", KindRouter)
	if tp.Connected() {
		t.Error("isolated node should break connectivity")
	}
}

func TestConnectedUnder(t *testing.T) {
	tp, ids := line(t)
	a := AllOn(tp)
	if !tp.ConnectedUnder(a) {
		t.Fatal("all-on should be connected")
	}
	// Power off the middle link: A and C split.
	lid := tp.Arc(mustArc(t, tp, ids[1], ids[2])).Link
	a.Link[lid] = false
	if tp.ConnectedUnder(a) {
		t.Error("removing B-C should disconnect C")
	}
	// Powering C off too makes the remaining set connected again.
	a.Router[ids[2]] = false
	if !tp.ConnectedUnder(a) {
		t.Error("A-B alone should be connected")
	}
}

func mustArc(t *testing.T, tp *Topology, a, b NodeID) ArcID {
	t.Helper()
	id, ok := tp.ArcBetween(a, b)
	if !ok {
		t.Fatalf("no arc %d->%d", a, b)
	}
	return id
}

func TestDistanceAndLinkKm(t *testing.T) {
	tp := New("geo")
	a := tp.AddNodeAt("A", KindRouter, 0, 0)
	b := tp.AddNodeAt("B", KindRouter, 300, 400) // 500 km
	if d := tp.DistanceKm(a, b); math.Abs(d-500) > 1e-9 {
		t.Fatalf("distance = %v", d)
	}
	lid := tp.AddLinkKm(a, b, Gbps)
	l := tp.Link(lid)
	wantLat := 500/200000.0 + 0.0001
	if math.Abs(tp.Arc(l.AB).Latency-wantLat) > 1e-9 {
		t.Errorf("latency = %v, want %v", tp.Arc(l.AB).Latency, wantLat)
	}
	if math.Abs(l.LengthKm-wantLat*200000) > 1e-6 {
		t.Errorf("length = %v", l.LengthKm)
	}
}

func TestMaxRTT(t *testing.T) {
	tp, _ := line(t)
	// Longest shortest path: A..C = 2 ms one-way, RTT 4 ms.
	if rtt := tp.MaxRTT(); math.Abs(rtt-0.004) > 1e-9 {
		t.Errorf("MaxRTT = %v, want 0.004", rtt)
	}
}

func TestNodesOfKindAndByName(t *testing.T) {
	tp := New("kinds")
	tp.AddNode("r1", KindRouter)
	tp.AddNode("h1", KindHost)
	tp.AddNode("r2", KindRouter)
	if got := tp.NodesOfKind(KindRouter); len(got) != 2 {
		t.Errorf("routers = %v", got)
	}
	id, ok := tp.NodeByName("h1")
	if !ok || tp.Node(id).Kind != KindHost {
		t.Error("NodeByName failed")
	}
	if _, ok := tp.NodeByName("nope"); ok {
		t.Error("unknown name should miss")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRouter: "router", KindCore: "core", KindAggr: "aggr",
		KindEdge: "edge", KindHost: "host",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestBuildersValidateAndConnect(t *testing.T) {
	builders := map[string]*Topology{
		"geant":    NewGeant(),
		"abovenet": NewAbovenet(),
		"genuity":  NewGenuity(),
	}
	pa := NewPopAccess(PopAccessOpts{})
	builders["pop-access"] = pa.Topology
	ex := NewExample(ExampleOpts{})
	builders["fig3"] = ex.Topology
	exB := NewExample(ExampleOpts{IncludeB: true})
	builders["fig3+B"] = exB.Topology
	for name, tp := range builders {
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if !tp.Connected() {
			t.Errorf("%s: not connected", name)
		}
	}
	if NewGeant().NumNodes() != 23 {
		t.Errorf("GÉANT nodes = %d, want 23", NewGeant().NumNodes())
	}
	if NewGeant().NumLinks() != 37 {
		t.Errorf("GÉANT links = %d, want 37", NewGeant().NumLinks())
	}
}

func TestRocketfuelCapacityRule(t *testing.T) {
	tp := NewGenuity()
	hiDeg := false
	for _, a := range tp.Arcs() {
		want := 100 * Mbps
		if tp.Degree(a.From) >= 7 || tp.Degree(a.To) >= 7 {
			want = 52 * Mbps
			hiDeg = true
		}
		if a.Capacity != want {
			t.Fatalf("arc %d capacity %v, want %v", a.ID, a.Capacity, want)
		}
	}
	if !hiDeg {
		t.Error("expected at least one degree>=7 PoP in Genuity")
	}
}

func TestPopAccessStructure(t *testing.T) {
	pa := NewPopAccess(PopAccessOpts{Cores: 4, BackbonePerCore: 2, MetroPerBackbone: 2})
	if len(pa.Core) != 4 || len(pa.Backbone) != 8 || len(pa.Metro) != 16 {
		t.Fatalf("layer sizes: %d/%d/%d", len(pa.Core), len(pa.Backbone), len(pa.Metro))
	}
	// Core full mesh: 6 links; backbone dual-homed: 16; metro: 32.
	if pa.NumLinks() != 6+16+32 {
		t.Errorf("links = %d, want 54", pa.NumLinks())
	}
	for _, m := range pa.Metro {
		if pa.Degree(m) != 2 {
			t.Errorf("metro %d degree %d, want 2 (dual-homed)", m, pa.Degree(m))
		}
	}
}

func TestExamplePaths(t *testing.T) {
	ex := NewExample(ExampleOpts{})
	for name, p := range map[string]Path{
		"middleA": ex.MiddlePath(ex.A),
		"middleC": ex.MiddlePath(ex.C),
		"upper":   ex.UpperPath(),
		"lower":   ex.LowerPath(),
	} {
		if p.Empty() {
			t.Fatalf("%s path empty", name)
		}
		if err := p.Check(ex.Topology); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Destination(ex.Topology) != ex.K {
			t.Errorf("%s should end at K", name)
		}
	}
	if ex.MiddlePath(ex.A).SharedLinks(ex.Topology, ex.UpperPath()) != 0 {
		t.Error("middle and upper should be link-disjoint")
	}
}

func TestSortedNodeIDs(t *testing.T) {
	tp, _ := line(t)
	ids := tp.SortedNodeIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("not sorted")
		}
	}
	if len(ids) != tp.NumNodes() {
		t.Fatal("wrong length")
	}
}
