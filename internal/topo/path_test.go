package topo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds A->{B,C}->D.
func diamond(t *testing.T) (*Topology, [4]NodeID) {
	t.Helper()
	tp := New("diamond")
	a := tp.AddNode("A", KindRouter)
	b := tp.AddNode("B", KindRouter)
	c := tp.AddNode("C", KindRouter)
	d := tp.AddNode("D", KindRouter)
	tp.AddLink(a, b, 10*Mbps, 0.001)
	tp.AddLink(a, c, 20*Mbps, 0.002)
	tp.AddLink(b, d, 10*Mbps, 0.001)
	tp.AddLink(c, d, 20*Mbps, 0.002)
	return tp, [4]NodeID{a, b, c, d}
}

func pathVia(t *testing.T, tp *Topology, hops ...NodeID) Path {
	t.Helper()
	var arcs []ArcID
	for i := 0; i+1 < len(hops); i++ {
		id, ok := tp.ArcBetween(hops[i], hops[i+1])
		if !ok {
			t.Fatalf("no arc %d->%d", hops[i], hops[i+1])
		}
		arcs = append(arcs, id)
	}
	return Path{Arcs: arcs}
}

func TestPathBasics(t *testing.T) {
	tp, n := diamond(t)
	p := pathVia(t, tp, n[0], n[1], n[3])
	if p.Empty() || p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Origin(tp) != n[0] || p.Destination(tp) != n[3] {
		t.Error("endpoints wrong")
	}
	nodes := p.Nodes(tp)
	if len(nodes) != 3 || nodes[1] != n[1] {
		t.Errorf("nodes = %v", nodes)
	}
	if math.Abs(p.Latency(tp)-0.002) > 1e-12 {
		t.Errorf("latency = %v", p.Latency(tp))
	}
	if p.Bottleneck(tp) != 10*Mbps {
		t.Errorf("bottleneck = %v", p.Bottleneck(tp))
	}
	if err := p.Check(tp); err != nil {
		t.Error(err)
	}
}

func TestPathCheckCatchesErrors(t *testing.T) {
	tp, n := diamond(t)
	ab, _ := tp.ArcBetween(n[0], n[1])
	cd, _ := tp.ArcBetween(n[2], n[3])
	disc := Path{Arcs: []ArcID{ab, cd}}
	if disc.Check(tp) == nil {
		t.Error("discontinuous path accepted")
	}
	ba := tp.Reverse(ab)
	loop := Path{Arcs: []ArcID{ab, ba}}
	if loop.Check(tp) == nil {
		t.Error("looping path accepted")
	}
	bad := Path{Arcs: []ArcID{ArcID(999)}}
	if bad.Check(tp) == nil {
		t.Error("out-of-range arc accepted")
	}
	var empty Path
	if empty.Check(tp) != nil {
		t.Error("empty path should be valid")
	}
}

func TestPathUsesAndShares(t *testing.T) {
	tp, n := diamond(t)
	up := pathVia(t, tp, n[0], n[1], n[3])
	down := pathVia(t, tp, n[0], n[2], n[3])
	if up.SharedLinks(tp, down) != 0 {
		t.Error("disjoint paths report sharing")
	}
	if up.SharedLinks(tp, up) != 2 {
		t.Error("self-sharing should equal length")
	}
	if !up.UsesNode(tp, n[1]) || up.UsesNode(tp, n[2]) {
		t.Error("UsesNode wrong")
	}
	lid := tp.Arc(up.Arcs[0]).Link
	if !up.UsesLink(tp, lid) || down.UsesLink(tp, lid) {
		t.Error("UsesLink wrong")
	}
}

func TestPathActiveUnder(t *testing.T) {
	tp, n := diamond(t)
	p := pathVia(t, tp, n[0], n[1], n[3])
	a := AllOn(tp)
	if !p.ActiveUnder(tp, a) {
		t.Fatal("all-on should satisfy path")
	}
	a.Router[n[1]] = false
	if p.ActiveUnder(tp, a) {
		t.Error("path through off router should be inactive")
	}
	a = AllOn(tp)
	a.Link[tp.Arc(p.Arcs[1]).Link] = false
	if p.ActiveUnder(tp, a) {
		t.Error("path over off link should be inactive")
	}
}

func TestPathEqualAndKey(t *testing.T) {
	tp, n := diamond(t)
	p := pathVia(t, tp, n[0], n[1], n[3])
	q := pathVia(t, tp, n[0], n[2], n[3])
	if p.Equal(q) || !p.Equal(p) {
		t.Error("Equal wrong")
	}
	if p.Key() == q.Key() {
		t.Error("distinct paths share a key")
	}
	if !strings.Contains(p.Format(tp), "A -> B -> D") {
		t.Errorf("Format = %q", p.Format(tp))
	}
	var empty Path
	if empty.Format(tp) != "(empty)" || empty.Key() != "" {
		t.Error("empty path formatting wrong")
	}
}

func TestNewPathValidates(t *testing.T) {
	tp, n := diamond(t)
	ab, _ := tp.ArcBetween(n[0], n[1])
	cd, _ := tp.ArcBetween(n[2], n[3])
	if _, err := NewPath(tp, []ArcID{ab, cd}); err == nil {
		t.Error("NewPath accepted discontinuity")
	}
	bd, _ := tp.ArcBetween(n[1], n[3])
	if _, err := NewPath(tp, []ArcID{ab, bd}); err != nil {
		t.Errorf("NewPath rejected valid path: %v", err)
	}
}

func TestActiveSetBasics(t *testing.T) {
	tp, n := diamond(t)
	a := AllOn(tp)
	r, l := a.CountOn()
	if r != 4 || l != 4 {
		t.Fatalf("counts %d/%d", r, l)
	}
	b := a.Clone()
	b.Router[n[0]] = false
	if a.Equal(b) {
		t.Error("clone mutation leaked")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprints should differ")
	}
	off := AllOff(tp)
	if r, l := off.CountOn(); r != 0 || l != 0 {
		t.Error("AllOff not off")
	}
	if !strings.Contains(a.String(), "routers:4/4") {
		t.Errorf("String = %q", a.String())
	}
}

func TestEnforceInvariants(t *testing.T) {
	tp, n := diamond(t)
	a := AllOn(tp)
	a.Router[n[1]] = false
	a.EnforceInvariants(tp)
	// Both links touching B must now be off.
	for _, l := range tp.Links() {
		if l.A == n[1] || l.B == n[1] {
			if a.Link[l.ID] {
				t.Errorf("link %d still on next to off router", l.ID)
			}
		}
	}
	// A router with all links off powers off.
	b := AllOn(tp)
	for i := range b.Link {
		b.Link[i] = false
	}
	b.EnforceInvariants(tp)
	for _, node := range tp.Nodes() {
		if b.Router[node.ID] {
			t.Errorf("router %d on with no links", node.ID)
		}
	}
}

// Property: EnforceInvariants is idempotent.
func TestEnforceInvariantsIdempotent(t *testing.T) {
	tp, _ := diamond(t)
	f := func(rbits, lbits uint8) bool {
		a := AllOff(tp)
		for i := range a.Router {
			a.Router[i] = rbits&(1<<uint(i)) != 0
		}
		for i := range a.Link {
			a.Link[i] = lbits&(1<<uint(i)) != 0
		}
		a.EnforceInvariants(tp)
		b := a.Clone()
		b.EnforceInvariants(tp)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

func TestActivatePathAndUnion(t *testing.T) {
	tp, n := diamond(t)
	p := pathVia(t, tp, n[0], n[1], n[3])
	a := AllOff(tp)
	a.ActivatePath(tp, p)
	if !p.ActiveUnder(tp, a) {
		t.Fatal("ActivatePath did not power the path")
	}
	if a.Router[n[2]] {
		t.Error("unrelated router powered")
	}
	q := pathVia(t, tp, n[0], n[2], n[3])
	b := AllOff(tp)
	b.ActivatePath(tp, q)
	a.Union(b)
	if !q.ActiveUnder(tp, a) {
		t.Error("union lost second path")
	}
}

func TestFingerprintSeparatesRoutersFromLinks(t *testing.T) {
	// Topology with equal router and link counts so that swapping the
	// two vectors could collide without domain separation.
	tp := New("ring3")
	a := tp.AddNode("A", KindRouter)
	b := tp.AddNode("B", KindRouter)
	c := tp.AddNode("C", KindRouter)
	tp.AddLink(a, b, Mbps, 0.001)
	tp.AddLink(b, c, Mbps, 0.001)
	tp.AddLink(a, c, Mbps, 0.001)
	x := AllOff(tp)
	x.Router[0] = true
	y := AllOff(tp)
	y.Link[0] = true
	if x.Fingerprint() == y.Fingerprint() {
		t.Error("router/link patterns collide")
	}
}
