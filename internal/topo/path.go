package topo

import (
	"fmt"
	"strings"
)

// Path is a loop-free sequence of arcs from an origin to a destination.
// The zero value is the empty path (origin == destination).
type Path struct {
	Arcs []ArcID
}

// NewPath builds a Path from arcs, verifying contiguity against t.
func NewPath(t *Topology, arcs []ArcID) (Path, error) {
	p := Path{Arcs: arcs}
	if err := p.Check(t); err != nil {
		return Path{}, err
	}
	return p, nil
}

// Empty reports whether the path has no arcs.
func (p Path) Empty() bool { return len(p.Arcs) == 0 }

// Len returns the hop count.
func (p Path) Len() int { return len(p.Arcs) }

// Origin returns the first node of the path (valid only if non-empty).
func (p Path) Origin(t *Topology) NodeID { return t.Arc(p.Arcs[0]).From }

// Destination returns the last node of the path (valid only if non-empty).
func (p Path) Destination(t *Topology) NodeID { return t.Arc(p.Arcs[len(p.Arcs)-1]).To }

// Nodes returns the node sequence along the path, origin first.
func (p Path) Nodes(t *Topology) []NodeID {
	if p.Empty() {
		return nil
	}
	out := make([]NodeID, 0, len(p.Arcs)+1)
	out = append(out, p.Origin(t))
	for _, aid := range p.Arcs {
		out = append(out, t.Arc(aid).To)
	}
	return out
}

// Latency returns the one-way propagation delay of the path in seconds.
func (p Path) Latency(t *Topology) float64 {
	var s float64
	for _, aid := range p.Arcs {
		s += t.Arc(aid).Latency
	}
	return s
}

// Bottleneck returns the minimum arc capacity along the path, or 0 for
// the empty path.
func (p Path) Bottleneck(t *Topology) float64 {
	if p.Empty() {
		return 0
	}
	m := t.Arc(p.Arcs[0]).Capacity
	for _, aid := range p.Arcs[1:] {
		if c := t.Arc(aid).Capacity; c < m {
			m = c
		}
	}
	return m
}

// UsesLink reports whether the path traverses the given physical link
// in either direction.
func (p Path) UsesLink(t *Topology, l LinkID) bool {
	for _, aid := range p.Arcs {
		if t.Arc(aid).Link == l {
			return true
		}
	}
	return false
}

// UsesNode reports whether the path visits n (including endpoints).
func (p Path) UsesNode(t *Topology, n NodeID) bool {
	if p.Empty() {
		return false
	}
	if p.Origin(t) == n {
		return true
	}
	for _, aid := range p.Arcs {
		if t.Arc(aid).To == n {
			return true
		}
	}
	return false
}

// SharedLinks counts physical links used by both p and q.
func (p Path) SharedLinks(t *Topology, q Path) int {
	used := make(map[LinkID]bool, len(p.Arcs))
	for _, aid := range p.Arcs {
		used[t.Arc(aid).Link] = true
	}
	n := 0
	for _, aid := range q.Arcs {
		if used[t.Arc(aid).Link] {
			n++
		}
	}
	return n
}

// Check verifies that the path is contiguous and simple (visits no node
// twice). An empty path is valid.
func (p Path) Check(t *Topology) error {
	if p.Empty() {
		return nil
	}
	for i, aid := range p.Arcs {
		if aid < 0 || int(aid) >= t.NumArcs() {
			return fmt.Errorf("path: arc %d out of range at hop %d", aid, i)
		}
	}
	seen := map[NodeID]bool{p.Origin(t): true}
	prev := p.Origin(t)
	for i, aid := range p.Arcs {
		a := t.Arc(aid)
		if a.From != prev {
			return fmt.Errorf("path: discontinuity at hop %d (%d != %d)", i, a.From, prev)
		}
		if seen[a.To] {
			return fmt.Errorf("path: revisits node %d at hop %d", a.To, i)
		}
		seen[a.To] = true
		prev = a.To
	}
	return nil
}

// ActiveUnder reports whether every router and link on the path is
// switched on in active.
func (p Path) ActiveUnder(t *Topology, active *ActiveSet) bool {
	if p.Empty() {
		return true
	}
	if !active.Router[p.Origin(t)] && t.Node(p.Origin(t)).Kind != KindHost {
		return false
	}
	for _, aid := range p.Arcs {
		a := t.Arc(aid)
		if !active.Link[a.Link] {
			return false
		}
		if t.Node(a.To).Kind != KindHost && !active.Router[a.To] {
			return false
		}
	}
	return true
}

// Equal reports whether two paths traverse the same arc sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Arcs) != len(q.Arcs) {
		return false
	}
	for i := range p.Arcs {
		if p.Arcs[i] != q.Arcs[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key identifying the arc sequence,
// suitable for map keys and configuration fingerprints.
func (p Path) Key() string {
	var b strings.Builder
	for i, aid := range p.Arcs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", aid)
	}
	return b.String()
}

// Format renders the path as "A -> B -> C" using node names.
func (p Path) Format(t *Topology) string {
	if p.Empty() {
		return "(empty)"
	}
	nodes := p.Nodes(t)
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = t.Node(n).Name
	}
	return strings.Join(parts, " -> ")
}
