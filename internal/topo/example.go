package topo

// NewExample returns the 10-router topology of the paper's Figure 3,
// used for the Click testbed experiment (Figure 7): sources A, B, C
// reach K via the common always-on path E-H-K, the "upper" on-demand
// path D-G-K (reachable from A), and the "lower" on-demand path F-J-K
// (reachable from C).
//
// Every link is 10 Mbps with 16.67 ms one-way latency, matching the
// lartc-enforced emulation in §5.3.
type Example struct {
	*Topology
	A, B, C, D, E, F, G, H, J, K NodeID
}

// ExampleOpts tunes the Figure 3 build.
type ExampleOpts struct {
	// IncludeB controls whether router B is present; the Click
	// experiment runs "the topology shown in Figure 3 (excluding
	// router B)" with 9 routers.
	IncludeB bool
	// Capacity per link in bits/s (default 10 Mbps).
	Capacity float64
	// Latency per link one-way in seconds (default 16.67 ms).
	Latency float64
}

// NewExample builds the Figure 3 topology.
func NewExample(opts ExampleOpts) *Example {
	if opts.Capacity == 0 {
		opts.Capacity = 10 * Mbps
	}
	if opts.Latency == 0 {
		opts.Latency = 0.01667
	}
	e := &Example{Topology: New("fig3-example")}
	e.A = e.AddNode("A", KindRouter)
	if opts.IncludeB {
		e.B = e.AddNode("B", KindRouter)
	} else {
		e.B = -1
	}
	e.C = e.AddNode("C", KindRouter)
	e.D = e.AddNode("D", KindRouter)
	e.E = e.AddNode("E", KindRouter)
	e.F = e.AddNode("F", KindRouter)
	e.G = e.AddNode("G", KindRouter)
	e.H = e.AddNode("H", KindRouter)
	e.J = e.AddNode("J", KindRouter)
	e.K = e.AddNode("K", KindRouter)

	add := func(a, b NodeID) { e.AddLink(a, b, opts.Capacity, opts.Latency) }
	add(e.A, e.D) // feeds the upper on-demand path
	add(e.A, e.E)
	if opts.IncludeB {
		add(e.B, e.E)
	}
	add(e.C, e.E)
	add(e.C, e.F) // feeds the lower on-demand path
	add(e.D, e.G) // upper: D-G-K
	add(e.E, e.H) // middle (always-on): E-H-K
	add(e.F, e.J) // lower: F-J-K
	add(e.G, e.K)
	add(e.H, e.K)
	add(e.J, e.K)
	return e
}

// MiddlePath returns the always-on path from src through E-H-K.
func (e *Example) MiddlePath(src NodeID) Path {
	var arcs []ArcID
	for _, hop := range [][2]NodeID{{src, e.E}, {e.E, e.H}, {e.H, e.K}} {
		id, ok := e.ArcBetween(hop[0], hop[1])
		if !ok {
			return Path{}
		}
		arcs = append(arcs, id)
	}
	return Path{Arcs: arcs}
}

// UpperPath returns A-D-G-K (valid for src A).
func (e *Example) UpperPath() Path {
	return e.mustPath([][2]NodeID{{e.A, e.D}, {e.D, e.G}, {e.G, e.K}})
}

// LowerPath returns C-F-J-K (valid for src C).
func (e *Example) LowerPath() Path {
	return e.mustPath([][2]NodeID{{e.C, e.F}, {e.F, e.J}, {e.J, e.K}})
}

func (e *Example) mustPath(hops [][2]NodeID) Path {
	var arcs []ArcID
	for _, h := range hops {
		id, ok := e.ArcBetween(h[0], h[1])
		if !ok {
			panic("topo: example path hop missing")
		}
		arcs = append(arcs, id)
	}
	return Path{Arcs: arcs}
}
