package topo

import "fmt"

// Bandwidth convenience constants (bits per second).
const (
	Kbps = 1e3
	Mbps = 1e6
	Gbps = 1e9
)

// FatTree describes a k-ary fat-tree datacenter network (Al-Fares et
// al., SIGCOMM 2008), the topology ElasticTree and the paper's Figures
// 2b, 4 and 8b evaluate on.
type FatTree struct {
	*Topology
	K     int
	Core  []NodeID   // (k/2)^2 core switches
	Aggr  [][]NodeID // [pod][k/2] aggregation switches
	Edge  [][]NodeID // [pod][k/2] edge switches
	Hosts [][]NodeID // [pod][k/2 * k/2] hosts
}

// FatTreeOpts tunes a fat-tree build.
type FatTreeOpts struct {
	// LinkCapacity is the bandwidth of every link (default 1 Gbps:
	// the commodity-hardware assumption of the fat-tree paper).
	LinkCapacity float64
	// LinkLatency is the per-hop one-way delay in seconds (default
	// 25 µs, a datacenter-scale value so that "a few RTTs" is sub-ms).
	LinkLatency float64
	// WithHosts controls whether end hosts are attached below edge
	// switches. Path analysis at switch granularity can omit them.
	WithHosts bool
}

// NewFatTree builds a k-ary fat-tree. k must be even and >= 2.
func NewFatTree(k int, opts FatTreeOpts) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity must be even and >= 2, got %d", k)
	}
	if opts.LinkCapacity == 0 {
		opts.LinkCapacity = 1 * Gbps
	}
	if opts.LinkLatency == 0 {
		opts.LinkLatency = 25e-6
	}
	half := k / 2
	ft := &FatTree{
		Topology: New(fmt.Sprintf("fattree-k%d", k)),
		K:        k,
	}
	// Core layer: (k/2)^2 switches, grouped into k/2 groups of k/2.
	for g := 0; g < half; g++ {
		for i := 0; i < half; i++ {
			ft.Core = append(ft.Core, ft.AddNode(fmt.Sprintf("core-%d-%d", g, i), KindCore))
		}
	}
	for p := 0; p < k; p++ {
		aggr := make([]NodeID, half)
		edge := make([]NodeID, half)
		for i := 0; i < half; i++ {
			aggr[i] = ft.AddNode(fmt.Sprintf("aggr-%d-%d", p, i), KindAggr)
		}
		for i := 0; i < half; i++ {
			edge[i] = ft.AddNode(fmt.Sprintf("edge-%d-%d", p, i), KindEdge)
		}
		// Pod fabric: every edge switch connects to every aggregation
		// switch in its pod.
		for _, e := range edge {
			for _, a := range aggr {
				ft.AddLink(e, a, opts.LinkCapacity, opts.LinkLatency)
			}
		}
		// Uplinks: aggregation switch i serves core group i.
		for i, a := range aggr {
			for j := 0; j < half; j++ {
				ft.AddLink(a, ft.Core[i*half+j], opts.LinkCapacity, opts.LinkLatency)
			}
		}
		ft.Aggr = append(ft.Aggr, aggr)
		ft.Edge = append(ft.Edge, edge)
		if opts.WithHosts {
			hosts := make([]NodeID, 0, half*half)
			for ei, e := range edge {
				for h := 0; h < half; h++ {
					hid := ft.AddNode(fmt.Sprintf("host-%d-%d-%d", p, ei, h), KindHost)
					ft.AddLink(e, hid, opts.LinkCapacity, opts.LinkLatency)
					hosts = append(hosts, hid)
				}
			}
			ft.Hosts = append(ft.Hosts, hosts)
		} else {
			ft.Hosts = append(ft.Hosts, nil)
		}
	}
	return ft, nil
}

// NumCore returns the number of core switches ((k/2)^2).
func (f *FatTree) NumCore() int { return len(f.Core) }

// AllHosts returns every host in pod order.
func (f *FatTree) AllHosts() []NodeID {
	var out []NodeID
	for _, hs := range f.Hosts {
		out = append(out, hs...)
	}
	return out
}

// PodOf returns the pod index of a host or pod switch, or -1 for core
// switches and unknown nodes.
func (f *FatTree) PodOf(n NodeID) int {
	for p := range f.Aggr {
		for _, id := range f.Aggr[p] {
			if id == n {
				return p
			}
		}
		for _, id := range f.Edge[p] {
			if id == n {
				return p
			}
		}
		for _, id := range f.Hosts[p] {
			if id == n {
				return p
			}
		}
	}
	return -1
}
