package topo

import (
	"fmt"
	"hash/fnv"
)

// ActiveSet records the power state of every router and link: the X_i
// and Y_i→j decision variables of the paper's model (§2.2.1). Hosts are
// always considered on but carry no power cost.
type ActiveSet struct {
	Router []bool // indexed by NodeID
	Link   []bool // indexed by LinkID
}

// AllOn returns an ActiveSet with every element powered.
func AllOn(t *Topology) *ActiveSet {
	a := &ActiveSet{
		Router: make([]bool, t.NumNodes()),
		Link:   make([]bool, t.NumLinks()),
	}
	for i := range a.Router {
		a.Router[i] = true
	}
	for i := range a.Link {
		a.Link[i] = true
	}
	return a
}

// AllOff returns an ActiveSet with every element unpowered.
func AllOff(t *Topology) *ActiveSet {
	return &ActiveSet{
		Router: make([]bool, t.NumNodes()),
		Link:   make([]bool, t.NumLinks()),
	}
}

// Clone returns a deep copy.
func (a *ActiveSet) Clone() *ActiveSet {
	return &ActiveSet{
		Router: append([]bool(nil), a.Router...),
		Link:   append([]bool(nil), a.Link...),
	}
}

// CountOn returns the number of active routers and links.
func (a *ActiveSet) CountOn() (routers, links int) {
	for _, on := range a.Router {
		if on {
			routers++
		}
	}
	for _, on := range a.Link {
		if on {
			links++
		}
	}
	return routers, links
}

// Equal reports element-wise equality.
func (a *ActiveSet) Equal(b *ActiveSet) bool {
	if len(a.Router) != len(b.Router) || len(a.Link) != len(b.Link) {
		return false
	}
	for i := range a.Router {
		if a.Router[i] != b.Router[i] {
			return false
		}
	}
	for i := range a.Link {
		if a.Link[i] != b.Link[i] {
			return false
		}
	}
	return true
}

// Fingerprint hashes the on/off pattern into a stable 64-bit value used
// to identify routing configurations (Figure 2a counts distinct ones).
func (a *ActiveSet) Fingerprint() uint64 {
	h := fnv.New64a()
	buf := []byte{0}
	for _, on := range a.Router {
		buf[0] = 0
		if on {
			buf[0] = 1
		}
		h.Write(buf)
	}
	buf[0] = 2
	h.Write(buf)
	for _, on := range a.Link {
		buf[0] = 0
		if on {
			buf[0] = 1
		}
		h.Write(buf)
	}
	return h.Sum64()
}

// EnforceInvariants applies the model's constraints (1) and (3) in
// place: links attached to an off router are deactivated, and a router
// with no active links is powered off (hosts and their attachment links
// are left untouched). It returns a so calls can chain.
func (a *ActiveSet) EnforceInvariants(t *Topology) *ActiveSet {
	// Constraint (1): Y_i→j ≤ X_i — no active link on an off router.
	for _, l := range t.Links() {
		na, nb := t.Node(l.A), t.Node(l.B)
		offA := na.Kind != KindHost && !a.Router[l.A]
		offB := nb.Kind != KindHost && !a.Router[l.B]
		if offA || offB {
			a.Link[l.ID] = false
		}
	}
	// Constraint (3): X_i ≤ Σ Y_i→j — no active router with all links off.
	for _, n := range t.Nodes() {
		if n.Kind == KindHost || !a.Router[n.ID] {
			continue
		}
		any := false
		for _, aid := range t.Out(n.ID) {
			if a.Link[t.Arc(aid).Link] {
				any = true
				break
			}
		}
		if !any {
			a.Router[n.ID] = false
		}
	}
	return a
}

// Union merges b into a: an element is on if it is on in either set.
func (a *ActiveSet) Union(b *ActiveSet) *ActiveSet {
	for i := range a.Router {
		a.Router[i] = a.Router[i] || b.Router[i]
	}
	for i := range a.Link {
		a.Link[i] = a.Link[i] || b.Link[i]
	}
	return a
}

// ActivatePath powers on every router and link along p.
func (a *ActiveSet) ActivatePath(t *Topology, p Path) {
	if p.Empty() {
		return
	}
	if o := p.Origin(t); t.Node(o).Kind != KindHost {
		a.Router[o] = true
	}
	for _, aid := range p.Arcs {
		arc := t.Arc(aid)
		a.Link[arc.Link] = true
		if t.Node(arc.To).Kind != KindHost {
			a.Router[arc.To] = true
		}
	}
}

// String summarizes on/off counts.
func (a *ActiveSet) String() string {
	r, l := a.CountOn()
	return fmt.Sprintf("active{routers:%d/%d links:%d/%d}", r, len(a.Router), l, len(a.Link))
}
