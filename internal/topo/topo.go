// Package topo models the networks REsPoNse operates on: directed-arc
// multigraphs of routers/switches/hosts annotated with link capacities
// and propagation latencies.
//
// Links are physical and bidirectional — they are created in pairs of
// directed arcs sharing one LinkID — because a link "cannot be
// half-powered" (paper §2.2.1): power state is tracked per link, routing
// per arc.
//
// The package also ships builders for every topology the paper
// evaluates: fat-trees (§5.1 datacenter), an embedded GÉANT map, Rocketfuel
// PoP-level approximations of Abovenet and Genuity, the hierarchical
// Italian "PoP-access" ISP, and the 10-router example of Figure 3.
package topo

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
)

// NodeID identifies a node (router, switch, or host) within a Topology.
type NodeID int

// ArcID identifies a directed arc within a Topology.
type ArcID int

// LinkID identifies an undirected physical link (a pair of arcs).
type LinkID int

// Kind classifies nodes. Power models and builders use it: hosts draw
// no network power, and datacenter layers get layer-specific roles.
type Kind uint8

// Node kinds.
const (
	KindRouter Kind = iota // generic ISP router (PoP)
	KindCore               // datacenter core switch / ISP core
	KindAggr               // datacenter aggregation switch / ISP backbone
	KindEdge               // datacenter edge (ToR) switch / ISP metro
	KindHost               // end host: origin/destination only, no power
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindRouter:
		return "router"
	case KindCore:
		return "core"
	case KindAggr:
		return "aggr"
	case KindEdge:
		return "edge"
	case KindHost:
		return "host"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is a vertex of the topology.
type Node struct {
	ID   NodeID
	Name string
	Kind Kind
	// KmEast/KmNorth give a coarse planar embedding in kilometres;
	// builders use it to derive propagation latencies and the gravity
	// traffic model may use it for locality. Zero for abstract nodes.
	KmEast, KmNorth float64
}

// Arc is one direction of a physical link.
type Arc struct {
	ID   ArcID
	From NodeID
	To   NodeID
	Link LinkID
	// Capacity is the arc bandwidth in bits per second.
	Capacity float64
	// Latency is the one-way propagation delay in seconds.
	Latency float64
}

// Link is an undirected physical link: the canonical pairing of the two
// arcs between its endpoints.
type Link struct {
	ID       LinkID
	A, B     NodeID // A < B
	AB, BA   ArcID  // arc A->B and arc B->A
	LengthKm float64
}

// Topology is an immutable-after-build network graph. Build one with
// New and the Add* methods, then treat it as read-only; all algorithms
// in this module share Topology values across goroutines.
type Topology struct {
	Name   string
	nodes  []Node
	arcs   []Arc
	links  []Link
	out    [][]ArcID
	in     [][]ArcID
	byPair map[[2]NodeID]ArcID
}

// New returns an empty topology with the given name.
func New(name string) *Topology {
	return &Topology{Name: name, byPair: make(map[[2]NodeID]ArcID)}
}

// AddNode appends a node and returns its ID.
func (t *Topology) AddNode(name string, kind Kind) NodeID {
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Name: name, Kind: kind})
	t.out = append(t.out, nil)
	t.in = append(t.in, nil)
	return id
}

// AddNodeAt appends a node with a planar position in kilometres.
func (t *Topology) AddNodeAt(name string, kind Kind, kmEast, kmNorth float64) NodeID {
	id := t.AddNode(name, kind)
	t.nodes[id].KmEast = kmEast
	t.nodes[id].KmNorth = kmNorth
	return id
}

// speedKmPerSec is the signal propagation speed in fibre (≈2/3 c).
const speedKmPerSec = 200000.0

// AddLink creates a bidirectional link between a and b with symmetric
// capacity (bits/s) and one-way latency (seconds), returning its LinkID.
// It panics on self-loops or duplicate (a,b) pairs: builders are static
// data and an invalid one is a programming error.
func (t *Topology) AddLink(a, b NodeID, capacity, latency float64) LinkID {
	return t.AddAsymLink(a, b, capacity, capacity, latency)
}

// AddAsymLink is AddLink with per-direction capacities (paper §2.2.1:
// Ci→j = Cj→i need not hold).
func (t *Topology) AddAsymLink(a, b NodeID, capAB, capBA, latency float64) LinkID {
	if a == b {
		panic(fmt.Sprintf("topo: self-loop on node %d", a))
	}
	if _, dup := t.byPair[[2]NodeID{a, b}]; dup {
		panic(fmt.Sprintf("topo: duplicate link %d-%d", a, b))
	}
	lo, hi := a, b
	capLo, capHi := capAB, capBA
	if lo > hi {
		lo, hi = hi, lo
		capLo, capHi = capHi, capLo
	}
	lid := LinkID(len(t.links))
	ab := t.addArc(lo, hi, capLo, latency, lid)
	ba := t.addArc(hi, lo, capHi, latency, lid)
	t.links = append(t.links, Link{
		ID: lid, A: lo, B: hi, AB: ab, BA: ba,
		LengthKm: latency * speedKmPerSec,
	})
	return lid
}

// AddLinkKm creates a link whose latency is derived from the planar
// distance between the endpoints (plus a 0.1 ms forwarding floor).
func (t *Topology) AddLinkKm(a, b NodeID, capacity float64) LinkID {
	d := t.DistanceKm(a, b)
	lat := d/speedKmPerSec + 0.0001
	return t.AddLink(a, b, capacity, lat)
}

func (t *Topology) addArc(from, to NodeID, capacity, latency float64, link LinkID) ArcID {
	id := ArcID(len(t.arcs))
	t.arcs = append(t.arcs, Arc{
		ID: id, From: from, To: to, Link: link,
		Capacity: capacity, Latency: latency,
	})
	t.out[from] = append(t.out[from], id)
	t.in[to] = append(t.in[to], id)
	t.byPair[[2]NodeID{from, to}] = id
	return id
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumArcs returns the directed arc count (2× the link count).
func (t *Topology) NumArcs() int { return len(t.arcs) }

// NumLinks returns the undirected link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Arc returns the arc with the given ID.
func (t *Topology) Arc(id ArcID) Arc { return t.arcs[id] }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Nodes returns a read-only view of all nodes.
func (t *Topology) Nodes() []Node { return t.nodes }

// Arcs returns a read-only view of all arcs.
func (t *Topology) Arcs() []Arc { return t.arcs }

// Links returns a read-only view of all links.
func (t *Topology) Links() []Link { return t.links }

// Out returns the IDs of arcs leaving n.
func (t *Topology) Out(n NodeID) []ArcID { return t.out[n] }

// In returns the IDs of arcs entering n.
func (t *Topology) In(n NodeID) []ArcID { return t.in[n] }

// ArcBetween returns the arc from a to b, if one exists.
func (t *Topology) ArcBetween(a, b NodeID) (ArcID, bool) {
	id, ok := t.byPair[[2]NodeID{a, b}]
	return id, ok
}

// Reverse returns the opposite-direction arc of a.
func (t *Topology) Reverse(a ArcID) ArcID {
	l := t.links[t.arcs[a].Link]
	if l.AB == a {
		return l.BA
	}
	return l.AB
}

// Degree returns the number of links incident to n.
func (t *Topology) Degree(n NodeID) int { return len(t.out[n]) }

// DistanceKm returns the planar distance between two nodes.
func (t *Topology) DistanceKm(a, b NodeID) float64 {
	na, nb := t.nodes[a], t.nodes[b]
	dx := na.KmEast - nb.KmEast
	dy := na.KmNorth - nb.KmNorth
	return math.Sqrt(dx*dx + dy*dy)
}

// NodesOfKind returns the IDs of all nodes with the given kind, in ID order.
func (t *Topology) NodesOfKind(kind Kind) []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// NodeByName returns the first node with the given name.
func (t *Topology) NodeByName(name string) (NodeID, bool) {
	for _, n := range t.nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return 0, false
}

// Validate checks structural invariants: arc endpoints in range,
// link/arc pairing consistency, positive capacities, non-negative
// latencies, and no duplicate links. It returns the first violation.
func (t *Topology) Validate() error {
	for _, a := range t.arcs {
		if a.From < 0 || int(a.From) >= len(t.nodes) || a.To < 0 || int(a.To) >= len(t.nodes) {
			return fmt.Errorf("topo %s: arc %d endpoint out of range", t.Name, a.ID)
		}
		if a.From == a.To {
			return fmt.Errorf("topo %s: arc %d is a self-loop", t.Name, a.ID)
		}
		if a.Capacity <= 0 {
			return fmt.Errorf("topo %s: arc %d has non-positive capacity", t.Name, a.ID)
		}
		if a.Latency < 0 {
			return fmt.Errorf("topo %s: arc %d has negative latency", t.Name, a.ID)
		}
		if int(a.Link) >= len(t.links) {
			return fmt.Errorf("topo %s: arc %d references missing link %d", t.Name, a.ID, a.Link)
		}
	}
	for _, l := range t.links {
		if l.A >= l.B {
			return fmt.Errorf("topo %s: link %d not canonical (A<B)", t.Name, l.ID)
		}
		ab, ba := t.arcs[l.AB], t.arcs[l.BA]
		if ab.From != l.A || ab.To != l.B || ba.From != l.B || ba.To != l.A {
			return fmt.Errorf("topo %s: link %d arc pairing inconsistent", t.Name, l.ID)
		}
		if ab.Link != l.ID || ba.Link != l.ID {
			return fmt.Errorf("topo %s: link %d back-reference broken", t.Name, l.ID)
		}
	}
	return nil
}

// Connected reports whether all non-host nodes are reachable from each
// other over the full topology (ignoring power state).
func (t *Topology) Connected() bool {
	if len(t.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(t.nodes))
	var stack []NodeID
	stack = append(stack, 0)
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, aid := range t.out[n] {
			to := t.arcs[aid].To
			if !seen[to] {
				seen[to] = true
				count++
				stack = append(stack, to)
			}
		}
	}
	return count == len(t.nodes)
}

// ConnectedUnder reports whether every node that is switched on in
// active can reach every other switched-on node using only active
// routers and links. Hosts are exempt: a host is reachable iff its
// attachment link is active.
func (t *Topology) ConnectedUnder(active *ActiveSet) bool {
	var start NodeID = -1
	want := 0
	for _, n := range t.nodes {
		if n.Kind == KindHost {
			continue
		}
		if active.Router[n.ID] {
			want++
			if start < 0 {
				start = n.ID
			}
		}
	}
	if want <= 1 {
		return true
	}
	seen := make([]bool, len(t.nodes))
	seen[start] = true
	got := 1
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, aid := range t.out[n] {
			a := t.arcs[aid]
			if !active.Link[a.Link] {
				continue
			}
			to := a.To
			if t.nodes[to].Kind == KindHost || !active.Router[to] || seen[to] {
				continue
			}
			seen[to] = true
			got++
			stack = append(stack, to)
		}
	}
	return got == want
}

// TotalCapacity returns the sum of all arc capacities (bits/s).
func (t *Topology) TotalCapacity() float64 {
	var s float64
	for _, a := range t.arcs {
		s += a.Capacity
	}
	return s
}

// MaxRTT returns the largest round-trip propagation delay between any
// pair of non-host nodes along shortest-latency paths. REsPoNseTE uses
// it as its probe period T (paper §4.4).
func (t *Topology) MaxRTT() float64 {
	n := len(t.nodes)
	const inf = 1e18
	var worst float64
	for _, src := range t.nodes {
		if src.Kind == KindHost {
			continue
		}
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = inf
		}
		dist[src.ID] = 0
		// Dijkstra without a heap: topologies here are small enough
		// that O(n²) per source is fine and avoids an import cycle
		// with the spf package.
		done := make([]bool, n)
		for {
			best, bi := inf, -1
			for i := 0; i < n; i++ {
				if !done[i] && dist[i] < best {
					best, bi = dist[i], i
				}
			}
			if bi < 0 {
				break
			}
			done[bi] = true
			for _, aid := range t.out[bi] {
				a := t.arcs[aid]
				if nd := dist[bi] + a.Latency; nd < dist[a.To] {
					dist[a.To] = nd
				}
			}
		}
		for _, dst := range t.nodes {
			if dst.Kind == KindHost || dist[dst.ID] >= inf {
				continue
			}
			if rtt := 2 * dist[dst.ID]; rtt > worst {
				worst = rtt
			}
		}
	}
	return worst
}

// Fingerprint hashes the full structure of the topology — its name,
// every node (name, kind) and every arc (endpoints, link pairing,
// capacity, latency) — into a stable 64-bit value. Plan artifacts embed
// it so a precomputed routing table can only be installed against the
// topology it was computed for.
func (t *Topology) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	io.WriteString(h, t.Name)
	u64(uint64(len(t.nodes)))
	for _, n := range t.nodes {
		io.WriteString(h, n.Name)
		h.Write([]byte{byte(n.Kind)})
	}
	u64(uint64(len(t.arcs)))
	for _, a := range t.arcs {
		u64(uint64(a.From))
		u64(uint64(a.To))
		u64(uint64(a.Link))
		u64(math.Float64bits(a.Capacity))
		u64(math.Float64bits(a.Latency))
	}
	return h.Sum64()
}

// String summarizes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("%s: %d nodes, %d links", t.Name, len(t.nodes), len(t.links))
}

// SortedNodeIDs returns all node IDs in ascending order. Useful for
// deterministic iteration in tests and experiments.
func (t *Topology) SortedNodeIDs() []NodeID {
	ids := make([]NodeID, len(t.nodes))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
