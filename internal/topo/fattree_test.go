package topo

import "testing"

func TestFatTreeCounts(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		ft, err := NewFatTree(k, FatTreeOpts{WithHosts: true})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		half := k / 2
		if got, want := ft.NumCore(), half*half; got != want {
			t.Errorf("k=%d core = %d, want %d", k, got, want)
		}
		if got, want := len(ft.AllHosts()), k*k*k/4; got != want {
			t.Errorf("k=%d hosts = %d, want %d", k, got, want)
		}
		// Switch count: (k/2)^2 core + k pods × k aggr+edge.
		switches := 0
		for _, n := range ft.Nodes() {
			if n.Kind != KindHost {
				switches++
			}
		}
		if want := half*half + k*k; switches != want {
			t.Errorf("k=%d switches = %d, want %d", k, switches, want)
		}
		// Links: pod fabric k×(k/2)^2 + uplinks k×(k/2)^2 + host k^3/4.
		if got, want := ft.NumLinks(), k*half*half*2+k*k*k/4; got != want {
			t.Errorf("k=%d links = %d, want %d", k, got, want)
		}
		if err := ft.Validate(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		if !ft.Connected() {
			t.Errorf("k=%d: disconnected", k)
		}
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	for _, k := range []int{0, 1, 3, -2} {
		if _, err := NewFatTree(k, FatTreeOpts{}); err == nil {
			t.Errorf("k=%d should be rejected", k)
		}
	}
}

func TestFatTreeWithoutHosts(t *testing.T) {
	ft, err := NewFatTree(4, FatTreeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.AllHosts()) != 0 {
		t.Error("hosts should be absent")
	}
	if ft.NumNodes() != 20 { // 4 core + 16 pod switches
		t.Errorf("nodes = %d, want 20", ft.NumNodes())
	}
}

func TestFatTreePodOf(t *testing.T) {
	ft, err := NewFatTree(4, FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		for _, id := range ft.Edge[p] {
			if ft.PodOf(id) != p {
				t.Errorf("edge %d pod = %d, want %d", id, ft.PodOf(id), p)
			}
		}
		for _, id := range ft.Hosts[p] {
			if ft.PodOf(id) != p {
				t.Errorf("host %d pod = %d, want %d", id, ft.PodOf(id), p)
			}
		}
	}
	for _, id := range ft.Core {
		if ft.PodOf(id) != -1 {
			t.Errorf("core %d pod = %d, want -1", id, ft.PodOf(id))
		}
	}
}

func TestFatTree36CoreForFig2b(t *testing.T) {
	// The paper's Figure 2b uses a fat-tree with 36 core switches,
	// i.e. k=12.
	ft, err := NewFatTree(12, FatTreeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if ft.NumCore() != 36 {
		t.Fatalf("k=12 core = %d, want 36", ft.NumCore())
	}
}

func TestFatTreeEdgeAggrFullBipartite(t *testing.T) {
	ft, err := NewFatTree(4, FatTreeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		for _, e := range ft.Edge[p] {
			for _, a := range ft.Aggr[p] {
				if _, ok := ft.ArcBetween(e, a); !ok {
					t.Errorf("pod %d: edge %d not connected to aggr %d", p, e, a)
				}
			}
		}
	}
}
