package topo

// NewGeant returns an embedded approximation of the GÉANT European
// research network as of 2005, the topology behind the paper's Figures
// 1b, 2a, 2b and 5: 23 PoPs and 37 links.
//
// Substitution note (DESIGN.md §2): the exact 2005 map ships with the
// TOTEM dataset which is not redistributable here; this embedding keeps
// the published node count, the 10G/2.5G/622M capacity tiers and the
// West-European core / peripheral-spur structure that drive the
// energy-critical-path analyses.
func NewGeant() *Topology {
	t := New("geant")
	// Approximate planar coordinates in km relative to Geneva (east, north).
	add := func(name string, e, n float64) NodeID {
		return t.AddNodeAt(name, KindRouter, e, n)
	}
	at := add("AT", 1000, 200)   // Vienna
	be := add("BE", 300, 550)    // Brussels
	ch := add("CH", 0, 0)        // Geneva
	cz := add("CZ", 900, 450)    // Prague
	de := add("DE", 550, 500)    // Frankfurt
	dk := add("DK", 700, 1100)   // Copenhagen
	es := add("ES", -650, -750)  // Madrid
	fr := add("FR", 150, 350)    // Paris
	gr := add("GR", 1750, -850)  // Athens
	hr := add("HR", 1100, -100)  // Zagreb
	hu := add("HU", 1250, 150)   // Budapest
	ie := add("IE", -650, 900)   // Dublin
	il := add("IL", 2900, -550)  // Tel Aviv
	it := add("IT", 450, -300)   // Milan
	lu := add("LU", 350, 450)    // Luxembourg
	nl := add("NL", 350, 700)    // Amsterdam
	pl := add("PL", 1150, 650)   // Poznan
	pt := add("PT", -1100, -700) // Lisbon
	se := add("SE", 950, 1450)   // Stockholm
	si := add("SI", 950, -100)   // Ljubljana
	sk := add("SK", 1150, 250)   // Bratislava
	uk := add("UK", -100, 750)   // London
	us := add("US", -5500, 600)  // New York (transatlantic PoP)

	const (
		c10g  = 10 * Gbps
		c25g  = 2.5 * Gbps
		c622m = 622 * Mbps
	)
	// Western core ring at 10G.
	t.AddLinkKm(uk, fr, c10g)
	t.AddLinkKm(uk, nl, c10g)
	t.AddLinkKm(nl, de, c10g)
	t.AddLinkKm(de, fr, c10g)
	t.AddLinkKm(fr, ch, c10g)
	t.AddLinkKm(ch, de, c10g)
	t.AddLinkKm(ch, it, c10g)
	t.AddLinkKm(de, at, c10g)
	t.AddLinkKm(it, at, c10g)
	t.AddLinkKm(fr, es, c10g)
	t.AddLinkKm(it, fr, c10g)
	// Regional 2.5G mesh.
	t.AddLinkKm(be, nl, c25g)
	t.AddLinkKm(be, fr, c25g)
	t.AddLinkKm(lu, de, c25g)
	t.AddLinkKm(lu, be, c25g)
	t.AddLinkKm(cz, de, c25g)
	t.AddLinkKm(cz, at, c25g)
	t.AddLinkKm(cz, pl, c25g)
	t.AddLinkKm(pl, de, c25g)
	t.AddLinkKm(sk, cz, c25g)
	t.AddLinkKm(sk, hu, c25g)
	t.AddLinkKm(hu, at, c25g)
	t.AddLinkKm(si, at, c25g)
	t.AddLinkKm(hr, si, c25g)
	t.AddLinkKm(hr, hu, c25g)
	t.AddLinkKm(se, dk, c25g)
	t.AddLinkKm(dk, de, c25g)
	t.AddLinkKm(se, pl, c25g)
	t.AddLinkKm(es, pt, c25g)
	t.AddLinkKm(gr, it, c25g)
	// Peripheral spurs at 622M.
	t.AddLinkKm(ie, uk, c622m)
	t.AddLinkKm(pt, uk, c622m)
	t.AddLinkKm(gr, at, c622m)
	t.AddLinkKm(il, it, c622m)
	t.AddLinkKm(il, nl, c622m)
	// Transatlantic.
	t.AddLinkKm(us, uk, c10g)
	t.AddLinkKm(us, de, c10g)
	return t
}
