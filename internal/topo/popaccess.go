package topo

import "fmt"

// PopAccessOpts parameterizes the hierarchical Italian-ISP-style
// topology of Chiaraviglio et al. that the paper calls "PoP-access"
// (§5.1): a fully meshed core, a backbone level dual-homed to the core,
// and a metro level dual-homed to the backbone. The paper restricts
// itself to these top three levels (feeder nodes must stay powered).
type PopAccessOpts struct {
	Cores            int // fully meshed core routers (default 4)
	BackbonePerCore  int // backbone routers homed per core (default 2)
	MetroPerBackbone int // metro routers homed per backbone (default 2)
	CoreCapacity     float64
	BackboneCapacity float64
	MetroCapacity    float64
	LinkLatency      float64 // one-way delay per link, seconds
}

func (o *PopAccessOpts) defaults() {
	if o.Cores == 0 {
		o.Cores = 4
	}
	if o.BackbonePerCore == 0 {
		o.BackbonePerCore = 2
	}
	if o.MetroPerBackbone == 0 {
		o.MetroPerBackbone = 2
	}
	if o.CoreCapacity == 0 {
		o.CoreCapacity = 10 * Gbps
	}
	if o.BackboneCapacity == 0 {
		o.BackboneCapacity = 2.5 * Gbps
	}
	if o.MetroCapacity == 0 {
		o.MetroCapacity = 1 * Gbps
	}
	if o.LinkLatency == 0 {
		o.LinkLatency = 0.002 // 2 ms: national-scale hops
	}
}

// PopAccess is the built hierarchical topology with its layers exposed.
type PopAccess struct {
	*Topology
	Core     []NodeID
	Backbone []NodeID
	Metro    []NodeID
}

// NewPopAccess builds the PoP-access topology. Redundancy: cores form a
// full mesh; each backbone router is homed to two distinct cores; each
// metro router is homed to two distinct backbone routers.
func NewPopAccess(opts PopAccessOpts) *PopAccess {
	opts.defaults()
	p := &PopAccess{Topology: New("pop-access")}
	for i := 0; i < opts.Cores; i++ {
		p.Core = append(p.Core, p.AddNode(fmt.Sprintf("core-%d", i), KindCore))
	}
	for i := 0; i < opts.Cores; i++ {
		for j := i + 1; j < opts.Cores; j++ {
			p.AddLink(p.Core[i], p.Core[j], opts.CoreCapacity, opts.LinkLatency)
		}
	}
	nb := opts.Cores * opts.BackbonePerCore
	for i := 0; i < nb; i++ {
		b := p.AddNode(fmt.Sprintf("backbone-%d", i), KindAggr)
		p.Backbone = append(p.Backbone, b)
		// Dual-home to the "parent" core and the next one around the ring.
		c0 := p.Core[i%opts.Cores]
		c1 := p.Core[(i+1)%opts.Cores]
		p.AddLink(b, c0, opts.BackboneCapacity, opts.LinkLatency)
		p.AddLink(b, c1, opts.BackboneCapacity, opts.LinkLatency)
	}
	nm := nb * opts.MetroPerBackbone
	for i := 0; i < nm; i++ {
		m := p.AddNode(fmt.Sprintf("metro-%d", i), KindEdge)
		p.Metro = append(p.Metro, m)
		b0 := p.Backbone[i%nb]
		b1 := p.Backbone[(i+1)%nb]
		p.AddLink(m, b0, opts.MetroCapacity, opts.LinkLatency)
		p.AddLink(m, b1, opts.MetroCapacity, opts.LinkLatency)
	}
	return p
}
