// Package analysis implements the paper's §3 trace analytics: the
// per-interval traffic-deviation CCDF (Figure 1a), the network-wide
// recomputation-rate metric (Figure 1b), routing-configuration
// dominance (Figure 2a), and energy-critical-path coverage (Figure 2b).
package analysis

import (
	"sort"

	"response/internal/mcf"
	"response/internal/power"
	"response/internal/stats"
	"response/internal/topo"
	"response/internal/traffic"
)

// DeviationCCDF returns the CCDF of per-interval relative per-flow
// demand changes (percent) of a series: Figure 1a's "traffic deviation
// in 5-min period (out)" — each flow dominates the outbound traffic of
// its host link in a datacenter, so per-flow deviation is the link
// statistic.
func DeviationCCDF(s *traffic.Series) []stats.Point {
	return stats.CCDF(traffic.PerFlowChanges(s))
}

// Replay is the result of recomputing the minimal network subset for
// every (sub-sampled) interval of a trace — what the state-of-the-art
// approaches the paper critiques would do online.
type Replay struct {
	// IntervalSec is the effective spacing between entries (trace
	// interval × the sub-sampling stride).
	IntervalSec float64
	// Fingerprints identify each interval's active-set configuration.
	Fingerprints []uint64
	// Watts is each interval's network power.
	Watts []float64
	// Paths records the per-pair routing of each interval.
	Paths []map[[2]topo.NodeID]topo.Path
	// Volumes records each interval's matrix total.
	Volumes []float64
	// matrices retained for coverage computation.
	matrices []*traffic.Matrix
}

// ReplayOpts tunes ReplayMinSubsets.
type ReplayOpts struct {
	// Stride sub-samples the trace (default 1: every interval).
	Stride int
	// Route configures feasibility routing.
	Route mcf.RouteOpts
	// Order is the greedy ordering (default PowerDesc — the fastest
	// single heuristic; the recomputation-rate metric only needs the
	// subset to track demand).
	Order mcf.Order
	// Optimal switches to the multi-restart subset search (slower,
	// used when power numbers matter more than speed).
	Optimal bool
}

// ReplayMinSubsets recomputes the minimum network subset for each
// interval of the series, as GreenTE/ElasticTree-style approaches would.
func ReplayMinSubsets(t *topo.Topology, s *traffic.Series, m power.Model, opts ReplayOpts) (*Replay, error) {
	if opts.Stride <= 0 {
		opts.Stride = 1
	}
	r := &Replay{IntervalSec: s.IntervalSec * float64(opts.Stride)}
	for i := 0; i < len(s.Matrices); i += opts.Stride {
		tm := s.Matrices[i]
		demands := tm.Demands()
		var (
			active  *topo.ActiveSet
			routing *mcf.Routing
			err     error
		)
		if opts.Optimal {
			active, routing, err = mcf.OptimalSubset(t, demands, m, mcf.OptimalOpts{Route: opts.Route})
		} else {
			active, routing, err = mcf.GreedyMinSubset(t, demands, m, mcf.GreedyOpts{Order: opts.Order, Route: opts.Route})
		}
		if err != nil {
			return nil, err
		}
		r.Fingerprints = append(r.Fingerprints, active.Fingerprint())
		r.Watts = append(r.Watts, power.NetworkWatts(t, m, active))
		paths := make(map[[2]topo.NodeID]topo.Path, len(routing.Paths))
		for k, p := range routing.Paths {
			paths[k] = p
		}
		r.Paths = append(r.Paths, paths)
		r.Volumes = append(r.Volumes, tm.Total())
		r.matrices = append(r.matrices, tm)
	}
	return r, nil
}

// AddInterval appends one externally computed interval to the replay
// (used when the per-interval optimization runs outside
// ReplayMinSubsets, e.g. the fat-tree packer at k=12 scale). The
// configuration fingerprint is derived from the elements the routing
// touches; Watts is recorded as given (pass 0 when unused).
func (r *Replay) AddInterval(t *topo.Topology, tm *traffic.Matrix, routing *mcf.Routing, watts float64) {
	paths := make(map[[2]topo.NodeID]topo.Path, len(routing.Paths))
	for k, p := range routing.Paths {
		paths[k] = p
	}
	r.Paths = append(r.Paths, paths)
	r.Volumes = append(r.Volumes, tm.Total())
	r.matrices = append(r.matrices, tm)
	r.Fingerprints = append(r.Fingerprints, routing.UsedElements(t).Fingerprint())
	r.Watts = append(r.Watts, watts)
}

// Recomputations counts intervals whose configuration differs from the
// previous one — each would force a routing-table redeploy.
func (r *Replay) Recomputations() int {
	n := 0
	for i := 1; i < len(r.Fingerprints); i++ {
		if r.Fingerprints[i] != r.Fingerprints[i-1] {
			n++
		}
	}
	return n
}

// RatePerHour buckets recomputations into wall-clock hours: the Figure
// 1b series. Entry h is the number of configuration changes in hour h.
func (r *Replay) RatePerHour() []float64 {
	if len(r.Fingerprints) < 2 {
		return nil
	}
	perHour := int(3600/r.IntervalSec + 0.5)
	if perHour < 1 {
		perHour = 1
	}
	nHours := (len(r.Fingerprints) + perHour - 1) / perHour
	out := make([]float64, nHours)
	for i := 1; i < len(r.Fingerprints); i++ {
		if r.Fingerprints[i] != r.Fingerprints[i-1] {
			out[i/perHour]++
		}
	}
	return out
}

// ConfigShare is one routing configuration's share of trace time.
type ConfigShare struct {
	Fingerprint uint64
	Fraction    float64
}

// ConfigDominance returns distinct configurations sorted by the
// fraction of intervals they were active: Figure 2a. The paper finds
// one configuration (the minimal power tree) active ≈60 % of the time
// and ≈13 configurations total on GÉANT.
func (r *Replay) ConfigDominance() []ConfigShare {
	if len(r.Fingerprints) == 0 {
		return nil
	}
	counts := map[uint64]int{}
	for _, f := range r.Fingerprints {
		counts[f]++
	}
	out := make([]ConfigShare, 0, len(counts))
	for f, c := range counts {
		out = append(out, ConfigShare{Fingerprint: f, Fraction: float64(c) / float64(len(r.Fingerprints))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Coverage summarizes energy-critical path concentration: for each
// pair, paths are ranked by the traffic they carried across the trace;
// MeanTopX[k-1] is the average (over pairs) fraction of traffic the top
// k paths account for, and PerPairTopX[k-1] holds the per-pair
// fractions for CDF plotting.
type Coverage struct {
	MeanTopX    []float64
	PerPairTopX [][]float64
}

// PathCoverage ranks each pair's observed paths by carried traffic:
// Figure 2b. maxX is the deepest rank evaluated (the figure uses 5).
func (r *Replay) PathCoverage(maxX int) Coverage {
	if maxX <= 0 {
		maxX = 5
	}
	type acc map[string]float64
	perPair := map[[2]topo.NodeID]acc{}
	totals := map[[2]topo.NodeID]float64{}
	for i, paths := range r.Paths {
		tm := r.matrices[i]
		for k, p := range paths {
			rate := tm.Rate(k[0], k[1])
			if rate <= 0 || p.Empty() {
				continue
			}
			a := perPair[k]
			if a == nil {
				a = acc{}
				perPair[k] = a
			}
			a[p.Key()] += rate
			totals[k] += rate
		}
	}
	cov := Coverage{
		MeanTopX:    make([]float64, maxX),
		PerPairTopX: make([][]float64, maxX),
	}
	keys := make([][2]topo.NodeID, 0, len(perPair))
	for k := range perPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		a := perPair[k]
		vols := make([]float64, 0, len(a))
		for _, v := range a {
			vols = append(vols, v)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(vols)))
		var cum float64
		for x := 0; x < maxX; x++ {
			if x < len(vols) {
				cum += vols[x]
			}
			frac := 1.0
			if totals[k] > 0 {
				frac = cum / totals[k]
			}
			cov.PerPairTopX[x] = append(cov.PerPairTopX[x], frac)
		}
	}
	for x := 0; x < maxX; x++ {
		cov.MeanTopX[x] = stats.Mean(cov.PerPairTopX[x])
	}
	return cov
}

// DistinctPathsPerPair returns the number of distinct paths each pair
// used across the replay (CDF input for deeper analysis).
func (r *Replay) DistinctPathsPerPair() []float64 {
	seen := map[[2]topo.NodeID]map[string]bool{}
	for _, paths := range r.Paths {
		for k, p := range paths {
			if p.Empty() {
				continue
			}
			m := seen[k]
			if m == nil {
				m = map[string]bool{}
				seen[k] = m
			}
			m[p.Key()] = true
		}
	}
	out := make([]float64, 0, len(seen))
	for _, m := range seen {
		out = append(out, float64(len(m)))
	}
	sort.Float64s(out)
	return out
}
