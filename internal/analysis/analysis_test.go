package analysis

import (
	"math"
	"testing"

	"response/internal/mcf"
	"response/internal/power"
	"response/internal/stats"
	"response/internal/topo"
	"response/internal/traffic"
)

// geantReplay builds a short GÉANT replay for analysis tests.
func geantReplay(t *testing.T, days int, stride int) (*topo.Topology, *Replay, *traffic.Series) {
	t.Helper()
	g := topo.NewGeant()
	base := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 1})
	scale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.05)
	series := traffic.DiurnalSeries(base.Scale(scale*0.6), traffic.DiurnalOpts{
		Days: days, Seed: 5,
	})
	r, err := ReplayMinSubsets(g, series, power.Cisco12000{}, ReplayOpts{Stride: stride})
	if err != nil {
		t.Fatal(err)
	}
	return g, r, series
}

func TestDeviationCCDFShape(t *testing.T) {
	base := traffic.NewMatrix()
	for i := 0; i < 8; i++ {
		base.Set(topo.NodeID(i), topo.NodeID(i+8), 1000)
	}
	s := traffic.VolatileSeries(base, traffic.VolatileOpts{Days: 2, Seed: 9})
	ccdf := DeviationCCDF(s)
	if len(ccdf) == 0 {
		t.Fatal("empty CCDF")
	}
	if ccdf[0].Y != 1 {
		t.Error("CCDF must start at 1")
	}
	// Figure 1a: P(change >= 20%) should be substantial.
	frac := stats.FractionAtLeast(traffic.PerFlowChanges(s), 20)
	if frac < 0.25 {
		t.Errorf("P(change>=20%%) = %.2f, too tame for the DC trace", frac)
	}
}

func TestReplayRecomputations(t *testing.T) {
	_, r, _ := geantReplay(t, 2, 4)
	n := r.Recomputations()
	if n == 0 {
		t.Error("diurnal trace should force configuration changes")
	}
	per := r.RatePerHour()
	var sum float64
	for _, v := range per {
		sum += v
	}
	if int(sum) != n {
		t.Errorf("hourly sum %v != total %d", sum, n)
	}
	// With one sample per hour the rate is capped at 1/h; at the
	// trace's native 15-min granularity it is capped at 4/h.
	maxRate := 3600 / r.IntervalSec
	for h, v := range per {
		if v > maxRate+1e-9 {
			t.Errorf("hour %d rate %v exceeds cap %v", h, v, maxRate)
		}
	}
}

func TestConfigDominance(t *testing.T) {
	_, r, _ := geantReplay(t, 2, 4)
	shares := r.ConfigDominance()
	if len(shares) == 0 {
		t.Fatal("no configurations")
	}
	var sum float64
	for i, s := range shares {
		sum += s.Fraction
		if i > 0 && s.Fraction > shares[i-1].Fraction {
			t.Error("not sorted by share")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	t.Logf("configs: %d, dominant share %.0f%%", len(shares), shares[0].Fraction*100)
}

func TestPathCoverageMonotone(t *testing.T) {
	_, r, _ := geantReplay(t, 2, 4)
	cov := r.PathCoverage(5)
	if len(cov.MeanTopX) != 5 {
		t.Fatal("wrong depth")
	}
	for i := 1; i < 5; i++ {
		if cov.MeanTopX[i] < cov.MeanTopX[i-1]-1e-12 {
			t.Error("coverage must be monotone in X")
		}
	}
	for i, v := range cov.MeanTopX {
		if v <= 0 || v > 1+1e-12 {
			t.Errorf("top-%d coverage %v out of range", i+1, v)
		}
	}
	// Figure 2b: a few paths cover almost everything on GÉANT.
	if cov.MeanTopX[2] < 0.9 {
		t.Errorf("top-3 coverage = %.2f, want >= 0.9 (energy-critical paths exist)", cov.MeanTopX[2])
	}
	// Per-pair CDF data has one entry per pair per depth.
	if len(cov.PerPairTopX[0]) == 0 {
		t.Error("no per-pair data")
	}
}

func TestDistinctPathsPerPair(t *testing.T) {
	_, r, _ := geantReplay(t, 2, 4)
	d := r.DistinctPathsPerPair()
	if len(d) == 0 {
		t.Fatal("no pairs")
	}
	for _, v := range d {
		if v < 1 {
			t.Error("every pair used at least one path")
		}
	}
}

func TestReplayOptimalMode(t *testing.T) {
	g := topo.NewGeant()
	base := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 2 * topo.Gbps})
	s := &traffic.Series{IntervalSec: 900, Matrices: []*traffic.Matrix{base, base.Scale(1.5)}}
	r, err := ReplayMinSubsets(g, s, power.Cisco12000{}, ReplayOpts{Optimal: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Watts) != 2 {
		t.Fatal("wrong length")
	}
	full := power.FullWatts(g, power.Cisco12000{})
	for _, w := range r.Watts {
		if w > full {
			t.Error("subset power exceeds full network")
		}
	}
}

func TestReplayInfeasibleDemand(t *testing.T) {
	g := topo.NewGeant()
	over := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 1e15})
	s := &traffic.Series{IntervalSec: 900, Matrices: []*traffic.Matrix{over}}
	if _, err := ReplayMinSubsets(g, s, power.Cisco12000{}, ReplayOpts{}); err == nil {
		t.Error("expected infeasibility error")
	}
}
