package experiments

import (
	"response/internal/scenario"
)

// Online is the result of a large-scale online-runtime scenario: the
// controller's action counters, behavioral fingerprint and delivery
// fraction. It has a Print method like every other experiment result.
type Online = scenario.Result

// OnlineScenarios lists the runnable online scenario names: "diurnal"
// (GÉANT diurnal replay), "flash" (flash crowd), "storm" (correlated
// failure storm), "repair" (storm followed by rolling repair), "click"
// (the §5.3 Click-testbed failover at its original scale) and "replan"
// (diurnal drift past the deviation threshold triggering a background
// replan and a zero-disruption table hot-swap mid-replay).
func OnlineScenarios() []string { return scenario.Names() }

// RunOnline executes a named online scenario with the given managed
// flow count, seed and simulated duration. fullAlloc switches the
// simulator to the global reference allocator (cross-checking);
// meterPower enables the power meter. Identical arguments produce an
// identical Result, including the fingerprint.
func RunOnline(name string, flows int, seed int64, durationSec float64, fullAlloc, meterPower bool) (Online, error) {
	return scenario.Run(name, scenario.Config{
		Seed:         seed,
		Flows:        flows,
		Duration:     durationSec,
		FullAllocate: fullAlloc,
		Power:        meterPower,
	})
}
