package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"response"
	"response/internal/topogen"
)

// WarmPoint is one instance of the warm-start benchmark: the wall-clock
// cost of planning an instance cold versus replanning it warm-started
// from its own cold plan with unchanged inputs — the lifecycle's
// recomputation-confirms-the-tables common case.
type WarmPoint struct {
	Family string `json:"family"`
	Size   int    `json:"size"`
	Pairs  int    `json:"pairs"`

	ColdMs float64 `json:"cold_ms"`
	WarmMs float64 `json:"warm_ms"`
	// Identical reports the warm plan reproduced the cold fingerprint
	// bit-for-bit (guaranteed in the capacity-slack regime).
	Identical bool `json:"identical"`
}

// WarmBench is the result of RunWarmBench, emitted by
// cmd/response-bench -warm.
type WarmBench struct {
	Points []WarmPoint `json:"points"`
}

// MaxWarmMs returns the slowest warm replan of the bench — the number
// CI gates on.
func (b WarmBench) MaxWarmMs() float64 {
	var worst float64
	for _, p := range b.Points {
		if p.WarmMs > worst {
			worst = p.WarmMs
		}
	}
	return worst
}

// Print writes the bench as a table.
func (b WarmBench) Print(w io.Writer) {
	fmt.Fprintf(w, "Warm-start replan benchmark (%d instances)\n", len(b.Points))
	fmt.Fprintf(w, "  %-10s %5s %6s %10s %10s %8s %6s\n",
		"family", "size", "pairs", "cold ms", "warm ms", "speedup", "ident")
	for _, p := range b.Points {
		speedup := 0.0
		if p.WarmMs > 0 {
			speedup = p.ColdMs / p.WarmMs
		}
		fmt.Fprintf(w, "  %-10s %5d %6d %10.1f %10.1f %7.1fx %6v\n",
			p.Family, p.Size, p.Pairs, p.ColdMs, p.WarmMs, speedup, p.Identical)
	}
}

// parseWarmSpecs parses a comma-separated "family:size[,family:size…]"
// benchmark spec ("fattree:14,waxman:50").
func parseWarmSpecs(spec string) ([]topogen.Config, error) {
	var out []topogen.Config
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		fam, sz, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("warm spec %q: want family:size", item)
		}
		n, err := strconv.Atoi(sz)
		if err != nil {
			return nil, fmt.Errorf("warm spec %q: %v", item, err)
		}
		out = append(out, topogen.Config{
			Family: topogen.Family(fam), Size: n, Seed: 1,
			PeakUtil: 0.5, MaxEndpoints: 20,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("warm spec %q selects no instances", spec)
	}
	return out, nil
}

// RunWarmBench times, for each instance of a "family:size[,…]" spec, a
// cold plan and a warm replan seeded from it (same inputs). The
// instances keep the scale sweep's historical 20-endpoint clamp so the
// timings are comparable across releases and the CI threshold stays
// meaningful.
func RunWarmBench(spec string) (WarmBench, error) {
	configs, err := parseWarmSpecs(spec)
	if err != nil {
		return WarmBench{}, err
	}
	var bench WarmBench
	for _, cfg := range configs {
		inst, err := topogen.Generate(cfg)
		if err != nil {
			return bench, fmt.Errorf("warmbench %s-%d: %w", cfg.Family, cfg.Size, err)
		}
		planner := response.NewPlanner(
			response.WithEndpoints(inst.Endpoints),
			response.WithRestarts(0),
			response.WithSeed(cfg.Seed),
		)
		start := time.Now()
		cold, err := planner.Plan(context.Background(), inst.Topo)
		if err != nil {
			return bench, fmt.Errorf("warmbench %s-%d cold: %w", cfg.Family, cfg.Size, err)
		}
		coldMs := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		warm, err := planner.Plan(context.Background(), inst.Topo,
			response.WithWarmStartStrict(cold))
		if err != nil {
			return bench, fmt.Errorf("warmbench %s-%d warm: %w", cfg.Family, cfg.Size, err)
		}
		warmMs := float64(time.Since(start).Microseconds()) / 1000
		bench.Points = append(bench.Points, WarmPoint{
			Family: string(cfg.Family), Size: cfg.Size, Pairs: len(cold.Pairs()),
			ColdMs: coldMs, WarmMs: warmMs,
			Identical: warm.Fingerprint() == cold.Fingerprint(),
		})
	}
	return bench, nil
}
