package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"response/internal/spf"
	"response/internal/topo"
	"response/internal/topogen"
)

// PathPoint is one instance × engine cell of the path-engine benchmark:
// the wall-clock cost of a fixed point-to-point K-shortest query
// workload through the reference engine versus a goal-directed one,
// with every answer cross-checked for byte equality along the way.
type PathPoint struct {
	Family string `json:"family"`
	Size   int    `json:"size"`
	Engine string `json:"engine"`

	Nodes   int `json:"nodes"`
	Queries int `json:"queries"`
	K       int `json:"k"`

	RefMs float64 `json:"ref_ms"`
	EngMs float64 `json:"eng_ms"`
	// Speedup is RefMs / EngMs — above 1 the goal-directed engine wins.
	Speedup float64 `json:"speedup"`
	// Mismatches counts queries whose engine answer differed from the
	// reference answer. The engines are certified-exact, so any nonzero
	// value is a bug and fails the bench harness.
	Mismatches int `json:"mismatches"`
}

// PathBench is the result of RunPathBench, emitted by
// cmd/response-bench -paths.
type PathBench struct {
	Points []PathPoint `json:"points"`
}

// Mismatches sums the cross-check failures over all points.
func (b PathBench) Mismatches() int {
	var n int
	for _, p := range b.Points {
		n += p.Mismatches
	}
	return n
}

// WorstSpeedup returns the smallest speedup over points matching the
// given family and size (0 selects every size) — the number CI gates
// on: below 1.0 the goal-directed engines lose outright.
func (b PathBench) WorstSpeedup(family string, size int) float64 {
	worst := 0.0
	first := true
	for _, p := range b.Points {
		if family != "" && p.Family != family {
			continue
		}
		if size != 0 && p.Size != size {
			continue
		}
		if first || p.Speedup < worst {
			worst, first = p.Speedup, false
		}
	}
	return worst
}

// Print writes the bench as a table.
func (b PathBench) Print(w io.Writer) {
	fmt.Fprintf(w, "Path-engine K-shortest benchmark (%d cells)\n", len(b.Points))
	fmt.Fprintf(w, "  %-10s %5s %6s %8s %3s %10s %10s %8s %5s\n",
		"family", "size", "nodes", "queries", "k", "ref ms", "eng ms", "speedup", "miss")
	for _, p := range b.Points {
		fmt.Fprintf(w, "  %-10s %5d %6d %8d %3d %10.1f %10.1f %7.1fx %5d\n",
			p.Family, p.Size, p.Nodes, p.Queries, p.K, p.RefMs, p.EngMs, p.Speedup, p.Mismatches)
	}
}

// WriteJSON writes the bench as indented JSON.
func (b PathBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// pathBenchPairs samples a deterministic ordered-pair workload from the
// instance's endpoint universe.
func pathBenchPairs(endpoints []topo.NodeID, limit int, seed int64) [][2]topo.NodeID {
	n := len(endpoints)
	var out [][2]topo.NodeID
	if n*(n-1) <= limit {
		for _, o := range endpoints {
			for _, d := range endpoints {
				if o != d {
					out = append(out, [2]topo.NodeID{o, d})
				}
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]topo.NodeID]bool{}
	for len(out) < limit {
		o := endpoints[rng.Intn(n)]
		d := endpoints[rng.Intn(n)]
		key := [2]topo.NodeID{o, d}
		if o == d || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

// runPathWorkload runs the K-shortest workload through one engine and
// returns the results plus the best-of-repeats wall time. One
// workspace serves the whole workload, as in the planner: landmark
// construction and the adaptive-bailout state are part of the engine's
// measured cost, amortized across queries exactly as production
// amortizes them.
func runPathWorkload(t *topo.Topology, pairs [][2]topo.NodeID, k, repeats int,
	eng spf.Engine) ([][]topo.Path, time.Duration) {

	opts := spf.Options{Engine: eng}
	best := time.Duration(1<<63 - 1)
	var out [][]topo.Path
	for r := 0; r < repeats; r++ {
		ws := spf.NewWorkspace()
		res := make([][]topo.Path, len(pairs))
		start := time.Now()
		for i, pr := range pairs {
			res[i] = ws.KShortest(t, pr[0], pr[1], k, opts)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		out = res
	}
	return out, best
}

// RunPathBench times a fixed point-to-point K-shortest workload on
// each instance of a "family:size[,…]" spec through the reference
// engine and each goal-directed engine, cross-checking every answer.
// The workload is maxQueries ordered endpoint pairs (default 120) at
// k=4; each cell reports the best of `repeats` passes (default 3) so
// scheduler noise cannot manufacture a loss.
func RunPathBench(spec string, maxQueries, repeats int) (PathBench, error) {
	if maxQueries <= 0 {
		maxQueries = 120
	}
	if repeats <= 0 {
		repeats = 3
	}
	const k = 4
	configs, err := parseWarmSpecs(spec)
	if err != nil {
		return PathBench{}, err
	}
	var bench PathBench
	for _, cfg := range configs {
		inst, err := topogen.Generate(cfg)
		if err != nil {
			return bench, fmt.Errorf("pathbench %s-%d: %w", cfg.Family, cfg.Size, err)
		}
		pairs := pathBenchPairs(inst.Endpoints, maxQueries, cfg.Seed)
		refRes, refBest := runPathWorkload(inst.Topo, pairs, k, repeats, spf.EngineReference)
		for _, eng := range []spf.Engine{spf.EngineALT, spf.EngineBidirectional} {
			engRes, engBest := runPathWorkload(inst.Topo, pairs, k, repeats, eng)
			pt := PathPoint{
				Family: string(cfg.Family), Size: cfg.Size, Engine: eng.String(),
				Nodes: inst.Topo.NumNodes(), Queries: len(pairs), K: k,
				RefMs: float64(refBest.Microseconds()) / 1000,
				EngMs: float64(engBest.Microseconds()) / 1000,
			}
			if pt.EngMs > 0 {
				pt.Speedup = pt.RefMs / pt.EngMs
			}
			for i := range refRes {
				if !samePathSet(refRes[i], engRes[i]) {
					pt.Mismatches++
				}
			}
			bench.Points = append(bench.Points, pt)
		}
	}
	return bench, nil
}

// samePathSet reports whether two K-shortest answers agree exactly:
// same count, same arc sequences, same emission order.
func samePathSet(a, b []topo.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Arcs) != len(b[i].Arcs) {
			return false
		}
		for j := range a[i].Arcs {
			if a[i].Arcs[j] != b[i].Arcs[j] {
				return false
			}
		}
	}
	return true
}
