package experiments

import (
	"bytes"
	"strings"
	"testing"

	"response/internal/topo"
)

func TestEndpointSubset(t *testing.T) {
	g := topo.NewGeant()
	sub := EndpointSubset(g, 0.7, 1)
	if len(sub) != 16 { // 0.7 × 23 rounded
		t.Errorf("subset size = %d, want 16", len(sub))
	}
	again := EndpointSubset(g, 0.7, 1)
	for i := range sub {
		if sub[i] != again[i] {
			t.Fatal("subset not deterministic")
		}
	}
	if len(EndpointSubset(g, 2.0, 1)) != 23 {
		t.Error("fraction >= 1 should return all")
	}
	if len(EndpointSubset(g, 0.0, 1)) != 2 {
		t.Error("tiny fraction should clamp to 2 endpoints")
	}
	for i := 1; i < len(sub); i++ {
		if sub[i] <= sub[i-1] {
			t.Fatal("subset not sorted")
		}
	}
}

func TestGeantTraceShape(t *testing.T) {
	g, endpoints, series := GeantTrace(1, 0.2, 0.7, 7)
	if g.NumNodes() != 23 {
		t.Error("wrong topology")
	}
	if len(endpoints) != 16 {
		t.Errorf("endpoints = %d", len(endpoints))
	}
	if len(series.Matrices) != 96 { // 1 day of 15-min intervals
		t.Errorf("intervals = %d, want 96", len(series.Matrices))
	}
	// Demands only between selected endpoints.
	inSet := map[topo.NodeID]bool{}
	for _, e := range endpoints {
		inSet[e] = true
	}
	for _, d := range series.Matrices[0].Demands() {
		if !inSet[d.O] || !inSet[d.D] {
			t.Fatalf("demand %d->%d outside endpoint subset", d.O, d.D)
		}
	}
}

func TestRunFig1a(t *testing.T) {
	res := RunFig1a(1)
	if res.FracGE20 < 0.25 || res.FracGE20 > 0.75 {
		t.Errorf("FracGE20 = %.2f, want ≈0.5", res.FracGE20)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 1a") {
		t.Error("print output malformed")
	}
}

func TestRunFig1bAndDerived(t *testing.T) {
	res, err := RunFig1b(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RatePerHour) != 24 {
		t.Errorf("hours = %d, want 24", len(res.RatePerHour))
	}
	if res.MaxPerHour > 1 {
		t.Errorf("stride-4 (hourly) replay cannot exceed 1/hour, got %v", res.MaxPerHour)
	}
	if len(res.Dominance) == 0 {
		t.Fatal("no configurations")
	}
	if len(res.Coverage.MeanTopX) != 5 {
		t.Fatal("coverage depth wrong")
	}
	// Figure 2b headline on GÉANT: 3 paths cover nearly everything.
	if res.Coverage.MeanTopX[2] < 0.9 {
		t.Errorf("top-3 coverage %.2f < 0.9", res.Coverage.MeanTopX[2])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	res.PrintFig2a(&buf)
	for _, want := range []string{"Figure 1b", "Figure 2a", "recomputations"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestRunFig4Shape(t *testing.T) {
	res, err := RunFig4(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Near) != 8 || len(res.Far) != 8 {
		t.Fatalf("series lengths %d/%d", len(res.Near), len(res.Far))
	}
	// The paper's ordering: near <= far <= ecmp = 100.
	for i := range res.Near {
		if res.Near[i] > res.Far[i]+1e-9 {
			t.Errorf("step %d: near %.1f > far %.1f", i, res.Near[i], res.Far[i])
		}
		if res.Far[i] > 100+1e-9 {
			t.Errorf("step %d: far %.1f > 100", i, res.Far[i])
		}
	}
	// Far traffic must show diurnal power variation.
	if !(max64(res.Far) > min64(res.Far)) {
		t.Error("far power flat: no energy proportionality")
	}
}

func TestRunFig7Timeline(t *testing.T) {
	res, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	// Consolidation within ≈2 RTTs (0.2 s) + a sampling period.
	if res.ConsolidatedAt < 5 || res.ConsolidatedAt > 5.5 {
		t.Errorf("consolidated at %.2f, want shortly after 5.0", res.ConsolidatedAt)
	}
	// Restoration after 5.7 + 0.1 detect + 0.01 wake (+ slack).
	if res.RestoredAt < 5.7 || res.RestoredAt > 6.3 {
		t.Errorf("restored at %.2f, want ≈5.85", res.RestoredAt)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "consolidated") {
		t.Error("print output malformed")
	}
}

func TestRunAlwaysOnShare(t *testing.T) {
	res, err := RunAlwaysOnShare(topo.NewGeant())
	if err != nil {
		t.Fatal(err)
	}
	if res.Share <= 0.05 || res.Share > 1.0001 {
		t.Errorf("share = %.2f out of plausible range", res.Share)
	}
}

func TestRunWebIncrease(t *testing.T) {
	res, err := RunWeb()
	if err != nil {
		t.Fatal(err)
	}
	if res.IncreasePct < 0 {
		t.Errorf("REsPoNse-lat should not be faster than InvCap: %+.1f%%", res.IncreasePct)
	}
	if res.IncreasePct > 30 {
		t.Errorf("latency increase %.1f%% far above the paper's ≈9%%", res.IncreasePct)
	}
}

func max64(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func min64(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
