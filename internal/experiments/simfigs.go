package experiments

import (
	"fmt"
	"io"

	"response/internal/apps"
	"response/internal/core"
	"response/internal/mcf"
	"response/internal/power"
	"response/internal/sim"
	"response/internal/stats"
	"response/internal/te"
	"response/internal/topo"
	"response/internal/traffic"
)

// Fig7 is the Click-testbed timeline: per-path rates around TE start
// (t=5 s) and the middle-link failure (t=5.7 s).
type Fig7 struct {
	Times  []float64
	Middle []float64 // Mbps on the always-on middle path (both flows)
	Upper  []float64 // Mbps on the upper on-demand path
	Lower  []float64 // Mbps on the lower on-demand path
	Power  []float64 // % of full
	// ConsolidatedAt is when the on-demand paths drained (s).
	ConsolidatedAt float64
	// RestoredAt is when rates recovered after the failure (s).
	RestoredAt float64
}

// RunFig7 reproduces §5.3's Click experiment in the simulator: 16.67 ms
// 10 Mbps links, 100 ms failure detect+propagate, 10 ms wake-up.
func RunFig7() (Fig7, error) {
	ex := topo.NewExample(topo.ExampleOpts{})
	pinned := topo.AllOff(ex.Topology)
	pinned.ActivatePath(ex.Topology, ex.MiddlePath(ex.A))
	pinned.ActivatePath(ex.Topology, ex.MiddlePath(ex.C))
	s := sim.New(ex.Topology, sim.Opts{
		WakeUpDelay:      0.010,
		SleepAfterIdle:   0.050,
		FailureDetect:    0.050,
		FailurePropagate: 0.050,
		Model:            power.Cisco12000{},
		PinnedOn:         pinned,
	})
	ctrl := te.NewController(s, te.Opts{Threshold: 0.9, Gamma: 0.5})
	fa, err := s.AddFlow(ex.A, ex.K, 2.5*topo.Mbps,
		[]topo.Path{ex.MiddlePath(ex.A), ex.UpperPath()})
	if err != nil {
		return Fig7{}, err
	}
	fc, err := s.AddFlow(ex.C, ex.K, 2.5*topo.Mbps,
		[]topo.Path{ex.MiddlePath(ex.C), ex.LowerPath()})
	if err != nil {
		return Fig7{}, err
	}
	s.SetShare(fa, []float64{0.5, 0.5})
	s.SetShare(fc, []float64{0.5, 0.5})
	ctrl.Manage(fa)
	ctrl.Manage(fc)
	s.Schedule(5, func() { ctrl.Start() })
	eh, _ := ex.ArcBetween(ex.E, ex.H)
	s.Schedule(5.7, func() { s.FailLink(ex.Arc(eh).Link) })

	out := Fig7{}
	s.SampleEvery(0.05, 6.5, func(now float64) {
		out.Times = append(out.Times, now)
		out.Middle = append(out.Middle, (fa.PathRate(0)+fc.PathRate(0))/1e6)
		out.Upper = append(out.Upper, fa.PathRate(1)/1e6)
		out.Lower = append(out.Lower, fc.PathRate(1)/1e6)
		out.Power = append(out.Power, s.PowerPct())
	})
	s.Run(6.5)

	for i, t := range out.Times {
		if t >= 5 && out.Upper[i] == 0 && out.Lower[i] == 0 && out.ConsolidatedAt == 0 {
			out.ConsolidatedAt = t
		}
		if t > 5.7 && out.Upper[i] >= 2.4 && out.Lower[i] >= 2.4 && out.RestoredAt == 0 {
			out.RestoredAt = t
		}
	}
	return out, nil
}

// Print writes the Figure 7 timeline.
func (f Fig7) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7 — REsPoNseTE on the Click-testbed topology")
	fmt.Fprintln(w, "  time    middle   upper   lower   power%")
	for i, t := range f.Times {
		if int(t*20)%5 != 0 { // thin the output
			continue
		}
		fmt.Fprintf(w, "  %5.2f   %6.2f  %6.2f  %6.2f   %5.1f\n",
			t, f.Middle[i], f.Upper[i], f.Lower[i], f.Power[i])
	}
	fmt.Fprintf(w, "  consolidated at t=%.2f s (TE start 5.00; paper: ≈200 ms ≈ 2 RTTs)\n", f.ConsolidatedAt)
	fmt.Fprintf(w, "  restored at t=%.2f s (failure 5.70 + 100 ms detect + 10 ms wake)\n", f.RestoredAt)
}

// Fig8 is an ns-2-style adaptation trace: offered demand vs. achieved
// aggregate rate vs. power, under stepped demand changes and 5 s wakes.
type Fig8 struct {
	Label     string
	Times     []float64
	DemandPct []float64 // % of peak demand
	RatePct   []float64 // achieved rate as % of peak demand
	PowerPct  []float64
	// MaxLagSec is the worst observed settling lag after a step.
	MaxLagSec float64
}

// RunFig8a reproduces Figure 8a on the PoP-access ISP topology:
// demands step every 30 s between util-50 and util-100 of the metro
// gravity load; wake-up takes 5 s.
func RunFig8a() (Fig8, error) {
	pa := topo.NewPopAccess(topo.PopAccessOpts{})
	return runFig8(pa.Topology, pa.Metro, "PoP-access", 300)
}

// RunFig8b reproduces Figure 8b on a k=4 fat-tree with sine-stepped
// demand; the datacenter RTT is far smaller, so rates track demand even
// more closely.
func RunFig8b() (Fig8, error) {
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		return Fig8{}, err
	}
	return runFig8(ft.Topology, ft.AllHosts(), "FatTree", 300)
}

func runFig8(t *topo.Topology, endpoints []topo.NodeID, label string, dur float64) (Fig8, error) {
	model := power.Cisco12000{}
	base := traffic.Gravity(t, traffic.GravityOpts{Nodes: endpoints, TotalRate: 1})
	maxScale := mcf.MaxFeasibleScale(t, base, mcf.RouteOpts{}, 0.05)
	peak := base.Scale(maxScale * 0.9)
	// Solver-designed on-demand tables (d_peak known): the ns-2
	// experiments change demands between util levels the tables were
	// designed for.
	tables, err := core.Plan(t, core.PlanOpts{
		Model: model, Nodes: endpoints, Mode: core.ModeSolver, PeakTM: peak,
	})
	if err != nil {
		return Fig8{}, err
	}

	pinned := tables.AlwaysOnSet
	s := sim.New(t, sim.Opts{
		WakeUpDelay:    5, // §5.3: upper bound reported for existing HW
		SleepAfterIdle: 2,
		Model:          model,
		PinnedOn:       pinned,
	})
	ctrl := te.NewController(s, te.Opts{Threshold: 0.9, Gamma: 0.7, Period: 0.5})
	var flows []*sim.Flow
	demands := peak.Demands()
	for _, d := range demands {
		ps, ok := tables.PathSetFor(d.O, d.D)
		if !ok {
			continue
		}
		f, err := s.AddFlow(d.O, d.D, d.Rate*0.5, ps.Levels())
		if err != nil {
			return Fig8{}, err
		}
		ctrl.Manage(f)
		flows = append(flows, f)
	}
	ctrl.Start()

	// Step demand every 30 s, alternating util-50 and util-100 (the
	// paper's "aggressive" schedule).
	levels := []float64{0.5, 1.0}
	for step := 0; float64(step)*30 < dur; step++ {
		frac := levels[step%2]
		at := float64(step) * 30
		s.Schedule(at, func() {
			for i, f := range flows {
				s.SetDemand(f, demands[i].Rate*frac)
			}
		})
	}

	out := Fig8{Label: label}
	peakTotal := peak.Total()
	s.SampleEvery(1, dur, func(now float64) {
		var rate, demand float64
		for _, f := range flows {
			rate += f.Rate()
			demand += f.Demand
		}
		out.Times = append(out.Times, now)
		out.DemandPct = append(out.DemandPct, 100*demand/peakTotal)
		out.RatePct = append(out.RatePct, 100*rate/peakTotal)
		out.PowerPct = append(out.PowerPct, s.PowerPct())
	})
	s.Run(dur)

	// Settling lag per upward step: time until the achieved rate comes
	// within 5 % of its eventual plateau for that step (the plateau
	// rather than the demand: near util-100 the installed tables run
	// hot and the achieved rate legitimately tops out below demand).
	for i := 1; i < len(out.Times); i++ {
		if out.DemandPct[i] <= out.DemandPct[i-1] {
			continue
		}
		stepStart := out.Times[i]
		end := len(out.Times)
		for j := i + 1; j < len(out.Times); j++ {
			if out.DemandPct[j] != out.DemandPct[i] {
				end = j
				break
			}
		}
		plateau := out.RatePct[end-1]
		for j := i; j < end; j++ {
			if out.RatePct[j] >= plateau-5 {
				if lag := out.Times[j] - stepStart; lag > out.MaxLagSec {
					out.MaxLagSec = lag
				}
				break
			}
		}
	}
	return out, nil
}

// Print writes the Figure 8 trace.
func (f Fig8) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 8 (%s) — demand vs. achieved rate vs. power\n", f.Label)
	fmt.Fprintln(w, "  time   demand%   rate%   power%")
	for i, t := range f.Times {
		if int(t)%15 != 0 {
			continue
		}
		fmt.Fprintf(w, "  %4.0f   %6.0f   %5.0f   %6.1f\n",
			t, f.DemandPct[i], f.RatePct[i], f.PowerPct[i])
	}
	fmt.Fprintf(w, "  worst settling lag after an up-step: %.1f s (wake-up delay: 5 s)\n", f.MaxLagSec)
}

// Fig9 is the streaming experiment: playable-percentage boxplots per
// variant and load level, plus the block-latency delta.
type Fig9 struct {
	// Boxes maps "REP-lat50", "InvCap50", "REP-lat100", "InvCap100"
	// to per-client playable % summaries.
	Boxes map[string]stats.Boxplot
	// BlockLatencyIncreasePct is REsPoNse-lat vs. InvCap at 100
	// clients (paper: ≈5 %).
	BlockLatencyIncreasePct float64
}

// RunFig9 streams 600 kb/s video to 50 then 100 clients over Abovenet
// with REsPoNse-lat tables vs. OSPF-InvCap paths.
func RunFig9() (Fig9, error) {
	ab := topo.NewAbovenet()
	model := power.Cisco12000{}
	tables, err := core.Plan(ab, core.PlanOpts{Model: model, Beta: 0.25})
	if err != nil {
		return Fig9{}, err
	}
	src, _ := ab.NodeByName("SanJose")
	// Clients: every other PoP, repeated to reach the target count.
	var clientNodes []topo.NodeID
	for _, n := range ab.Nodes() {
		if n.ID != src {
			clientNodes = append(clientNodes, n.ID)
		}
	}
	mkClients := func(n int) []topo.NodeID {
		out := make([]topo.NodeID, n)
		for i := range out {
			out[i] = clientNodes[i%len(clientNodes)]
		}
		return out
	}
	ospf := core.OSPFPaths(ab, ab.SortedNodeIDs())

	variants := map[string]func(o, d topo.NodeID) []topo.Path{
		"REP-lat": func(o, d topo.NodeID) []topo.Path {
			if ps, ok := tables.PathSetFor(o, d); ok {
				return ps.Levels()
			}
			return nil
		},
		"InvCap": func(o, d topo.NodeID) []topo.Path {
			if p, ok := ospf[[2]topo.NodeID{o, d}]; ok {
				return []topo.Path{p}
			}
			return nil
		},
	}
	// Ambient load: gravity traffic at roughly half the network's
	// capacity, routed per-variant the same way the application is.
	bgBase := traffic.Gravity(ab, traffic.GravityOpts{TotalRate: 1, Seed: 17})
	bgScale := mcf.MaxFeasibleScale(ab, bgBase, mcf.RouteOpts{}, 0.05)
	bgTM := bgBase.Scale(bgScale * 0.5)

	out := Fig9{Boxes: map[string]stats.Boxplot{}}
	var latREP, latInv float64
	for name, pathsFor := range variants {
		var background []apps.BackgroundFlow
		for _, d := range bgTM.Demands() {
			paths := pathsFor(d.O, d.D)
			if len(paths) == 0 {
				continue
			}
			background = append(background, apps.BackgroundFlow{
				O: d.O, D: d.D, Rate: d.Rate, Paths: paths,
			})
		}
		for _, load := range []int{50, 100} {
			phase1 := mkClients(50)
			var phase2 []topo.NodeID
			if load == 100 {
				phase2 = mkClients(100)[50:]
			}
			teOpts := &te.Opts{Threshold: 0.9, Period: 0.5}
			simOpts := sim.Opts{
				WakeUpDelay:    0.1,
				SleepAfterIdle: 5,
				Model:          model,
			}
			if name == "REP-lat" {
				simOpts.PinnedOn = tables.AlwaysOnSet
			} else {
				simOpts.PinnedOn = topo.AllOn(ab) // OSPF never sleeps
				teOpts = nil
			}
			res, err := apps.RunStreaming(ab, apps.StreamingOpts{
				Source:        src,
				Phase1Clients: phase1,
				Phase2Clients: phase2,
				Phase2At:      100,
				Duration:      200,
				PathsFor:      pathsFor,
				Sim:           simOpts,
				TE:            teOpts,
				Background:    background,
			})
			if err != nil {
				return Fig9{}, fmt.Errorf("%s/%d: %w", name, load, err)
			}
			out.Boxes[fmt.Sprintf("%s%d", name, load)] = res.PlayableBox
			if load == 100 {
				switch name {
				case "REP-lat":
					latREP = res.MeanBlockLatency
				case "InvCap":
					latInv = res.MeanBlockLatency
				}
			}
		}
	}
	if latInv > 0 {
		out.BlockLatencyIncreasePct = 100 * (latREP - latInv) / latInv
	}
	return out, nil
}

// Print writes the Figure 9 boxplots.
func (f Fig9) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 9 — % of clients able to play the video (min/Q1/med/Q3/max)")
	for _, name := range []string{"REP-lat50", "InvCap50", "REP-lat100", "InvCap100"} {
		b := f.Boxes[name]
		fmt.Fprintf(w, "  %-11s  %5.1f / %5.1f / %5.1f / %5.1f / %5.1f   (n=%d)\n",
			name, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
	}
	fmt.Fprintf(w, "  block retrieval latency increase: %.1f%% (paper: ≈5%%)\n",
		f.BlockLatencyIncreasePct)
}

// WebTable is the §5.4 web workload comparison.
type WebTable struct {
	InvCapMean float64
	REPMean    float64
	// IncreasePct is the REsPoNse-lat latency increase (paper: ≈9 %).
	IncreasePct float64
}

// RunWeb measures web retrieval latency on Abovenet under REsPoNse-lat
// always-on paths vs. OSPF-InvCap.
func RunWeb() (WebTable, error) {
	ab := topo.NewAbovenet()
	model := power.Cisco12000{}
	tables, err := core.Plan(ab, core.PlanOpts{Model: model, Beta: 0.25})
	if err != nil {
		return WebTable{}, err
	}
	server, _ := ab.NodeByName("NewYork")
	clients := []topo.NodeID{}
	for _, name := range []string{"SanJose", "Seattle", "Miami", "Chicago"} {
		id, ok := ab.NodeByName(name)
		if !ok {
			return WebTable{}, fmt.Errorf("missing stub node %s", name)
		}
		clients = append(clients, id)
	}
	ospf := core.OSPFPaths(ab, ab.SortedNodeIDs())
	runVariant := func(pathFor func(s, c topo.NodeID) topo.Path) (float64, error) {
		res, err := apps.RunWeb(ab, apps.WebOpts{
			Server: server, Clients: clients, PathFor: pathFor, Seed: 505,
		})
		if err != nil {
			return 0, err
		}
		return res.Mean, nil
	}
	inv, err := runVariant(func(s, c topo.NodeID) topo.Path {
		return ospf[[2]topo.NodeID{s, c}]
	})
	if err != nil {
		return WebTable{}, err
	}
	rep, err := runVariant(func(s, c topo.NodeID) topo.Path {
		if ps, ok := tables.PathSetFor(s, c); ok {
			return ps.AlwaysOn
		}
		return topo.Path{}
	})
	if err != nil {
		return WebTable{}, err
	}
	return WebTable{
		InvCapMean:  inv,
		REPMean:     rep,
		IncreasePct: 100 * (rep - inv) / inv,
	}, nil
}

// Print writes the web workload table.
func (t WebTable) Print(w io.Writer) {
	fmt.Fprintln(w, "Web workload (SPECweb2005-banking-like) — mean retrieval latency")
	fmt.Fprintf(w, "  OSPF-InvCap:  %.1f ms\n", t.InvCapMean*1000)
	fmt.Fprintf(w, "  REsPoNse-lat: %.1f ms\n", t.REPMean*1000)
	fmt.Fprintf(w, "  increase: %.1f%% (paper: ≈9%%)\n", t.IncreasePct)
}
