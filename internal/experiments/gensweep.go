package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"response"
	"response/internal/lifecycle"
	"response/internal/power"
	"response/internal/scenario"
	"response/internal/sim"
	"response/internal/te"
	"response/internal/topogen"
	"response/internal/verify"
)

// GenPoint is one instance of the generated scale sweep: how large the
// network is, how long the off-line plan took, how much the hot swap
// into a loaded runtime cost, and whether any invariant broke.
type GenPoint struct {
	Family string `json:"family"`
	Size   int    `json:"size"`
	Seed   int64  `json:"seed"`
	Nodes  int    `json:"nodes"`
	Links  int    `json:"links"`
	Pairs  int    `json:"pairs"`

	// PlanMs is the wall-clock off-line planning time; Tunnels and
	// PlanFingerprint identify the result.
	PlanMs          float64 `json:"plan_ms"`
	Tunnels         int     `json:"tunnels"`
	PlanFingerprint string  `json:"plan_fingerprint"`

	// AlwaysOnPct is the always-on power as a percentage of all-on;
	// TableShare is the fraction of the network's routable load the
	// installed tables retain (verify.TableScale / max feasible).
	AlwaysOnPct float64 `json:"always_on_pct"`
	TableShare  float64 `json:"table_share"`

	// ColdReplanMs and WarmReplanMs time the demand-aware replan (the
	// live matrix as d_low): from scratch, and warm-started from the
	// installed plan. WarmIdentical records whether the warm replan
	// reproduced the cold replan's fingerprint bit-for-bit (the
	// capacity-slack regime guarantees it; outside it the warm plan is
	// instead gated to the warm tolerance and fully invariant-checked).
	ColdReplanMs  float64 `json:"cold_replan_ms,omitempty"`
	WarmReplanMs  float64 `json:"warm_replan_ms,omitempty"`
	WarmIdentical bool    `json:"warm_identical,omitempty"`

	// SwapMs is the wall-clock cost of hot-swapping a demand-aware
	// replan into a controller managing Flows flows; MigratedFlows is
	// how many were retargeted.
	Flows         int     `json:"flows"`
	SwapMs        float64 `json:"swap_ms"`
	MigratedFlows int     `json:"migrated_flows"`

	// Violations counts invariant-checker findings (0 = clean).
	Violations int `json:"violations"`

	// SRLG-storm drill fields (Scenario == "srlgstorm" marks these
	// points): a correlated-failure storm cuts whole shared-risk groups
	// on the loaded instance, overloaded survivors cascade, and
	// RecoverySec records how long the network took from the storm to a
	// whole data plane again — every link repaired, no flow starving,
	// lifecycle manager out of any fallback.
	Scenario    string  `json:"scenario,omitempty"`
	FailedLinks int     `json:"failed_links,omitempty"`
	Cascaded    int     `json:"cascaded,omitempty"`
	RecoverySec float64 `json:"recovery_sec,omitempty"`
	DegradedSec float64 `json:"degraded_sec,omitempty"`
}

// GenSweep is the result of RunGeneratedSweep: plan-time and swap-cost
// scaling over generated fat-tree and Waxman instances, with every
// instance vetted by the invariant checker. cmd/response-bench -gen
// emits it as BENCH_gen.json.
type GenSweep struct {
	Points []GenPoint `json:"points"`
}

// Violations sums the invariant findings across all points.
func (g GenSweep) Violations() int {
	n := 0
	for _, p := range g.Points {
		n += p.Violations
	}
	return n
}

// Print writes the sweep as a table.
func (g GenSweep) Print(w io.Writer) {
	fmt.Fprintf(w, "Generated scale sweep (%d instances)\n", len(g.Points))
	fmt.Fprintf(w, "  %-10s %5s %6s %6s %6s %9s %7s %7s %10s %10s %5s %9s %9s %5s\n",
		"family", "size", "nodes", "links", "pairs", "plan ms", "aon%", "share",
		"cold ms", "warm ms", "ident", "swap ms", "migrated", "viol")
	storms := false
	for _, p := range g.Points {
		if p.Scenario != "" {
			storms = true
			continue
		}
		ident := "-"
		if p.WarmReplanMs > 0 {
			ident = fmt.Sprintf("%v", p.WarmIdentical)
		}
		fmt.Fprintf(w, "  %-10s %5d %6d %6d %6d %9.1f %7.1f %7.2f %10.1f %10.1f %5s %9.2f %9d %5d\n",
			p.Family, p.Size, p.Nodes, p.Links, p.Pairs, p.PlanMs,
			p.AlwaysOnPct, p.TableShare, p.ColdReplanMs, p.WarmReplanMs, ident,
			p.SwapMs, p.MigratedFlows, p.Violations)
	}
	if !storms {
		return
	}
	fmt.Fprintf(w, "  SRLG-storm drills\n")
	fmt.Fprintf(w, "  %-10s %5s %6s %6s %6s %8s %12s %12s %5s\n",
		"family", "size", "nodes", "links", "flows", "failed", "recovery s", "degraded s", "viol")
	for _, p := range g.Points {
		if p.Scenario == "" {
			continue
		}
		fmt.Fprintf(w, "  %-10s %5d %6d %6d %6d %8d %12.0f %12.0f %5d\n",
			p.Family, p.Size, p.Nodes, p.Links, p.Flows,
			p.FailedLinks, p.RecoverySec, p.DegradedSec, p.Violations)
	}
}

// WriteJSON emits the sweep as indented JSON (the BENCH_gen.json
// artifact).
func (g GenSweep) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// GenSweepOpts parameterizes RunGeneratedSweep.
type GenSweepOpts struct {
	// Quick restricts the sweep to the small sizes (CI smoke); the full
	// sweep grows fat-trees to 245 switches and Waxman meshes to 200
	// nodes.
	Quick bool
	// Flows is the managed-flow count of the swap-cost rig (default
	// 1000; Quick uses 300).
	Flows int
}

// genSweepConfigs returns the instance list: fat-tree and Waxman,
// growing past 200 nodes in the full sweep. The endpoint universe
// grows with the instance (the historical flat 20-endpoint / 380-pair
// clamp is gone) so the pair count is a scaling variable again; the
// caps are calibrated so the slowest cold point stays in low minutes.
// The k=24 fat-tree point (720 switches) intentionally shrinks its
// endpoint set: there the topology itself is the scaling variable,
// and the cold plan merely has to complete.
func genSweepConfigs(quick bool) []topogen.Config {
	type pt struct{ size, eps int }
	ft := []pt{{4, 16}, {6, 20}, {8, 24}, {10, 28}, {14, 36}, {24, 12}}
	wx := []pt{{25, 21}, {50, 23}, {100, 26}, {200, 32}}
	if quick {
		ft = []pt{{4, 16}, {6, 20}}
		wx = []pt{{25, 21}, {50, 23}}
	}
	var out []topogen.Config
	for _, p := range ft {
		out = append(out, topogen.Config{
			Family: topogen.FamilyFatTree, Size: p.size, Seed: 1,
			PeakUtil: 0.5, MaxEndpoints: p.eps,
		})
	}
	for _, p := range wx {
		out = append(out, topogen.Config{
			Family: topogen.FamilyWaxman, Size: p.size, Seed: 1,
			PeakUtil: 0.5, MaxEndpoints: p.eps,
		})
	}
	return out
}

// RunGeneratedSweep generates the sweep instances, plans each one
// (timed), vets the tables with the invariant checker, and measures
// the cost of hot-swapping a demand-aware replan into a controller
// managing opts.Flows flows — the full REsPoNse lifecycle as a
// function of network size.
func RunGeneratedSweep(opts GenSweepOpts) (GenSweep, error) {
	if opts.Flows == 0 {
		opts.Flows = 1000
		if opts.Quick {
			opts.Flows = 300
		}
	}
	var sweep GenSweep
	for _, cfg := range genSweepConfigs(opts.Quick) {
		pt, err := runGenPoint(cfg, opts.Flows)
		if err != nil {
			return sweep, fmt.Errorf("gensweep %s-%d: %w", cfg.Family, cfg.Size, err)
		}
		sweep.Points = append(sweep.Points, pt)
	}
	// One SRLG-storm drill per family rides along: a correlated cut on
	// a loaded instance, timed to recovery. The drill points raise the
	// endpoint cap (so the pair universe — and thus the blast radius —
	// is not artificially small) and double the flow count.
	for _, cfg := range genChaosConfigs(opts.Quick) {
		pt, err := runGenChaosPoint(cfg, 2*opts.Flows)
		if err != nil {
			return sweep, fmt.Errorf("gensweep srlgstorm %s-%d: %w", cfg.Family, cfg.Size, err)
		}
		sweep.Points = append(sweep.Points, pt)
	}
	return sweep, nil
}

// genChaosConfigs returns the SRLG-storm drill instances: one per
// sweep family, with the endpoint universe uncapped to twice the scale
// points' limit.
func genChaosConfigs(quick bool) []topogen.Config {
	ft, wx := 6, 50
	if quick {
		ft, wx = 4, 25
	}
	return []topogen.Config{
		{Family: topogen.FamilyFatTree, Size: ft, Seed: 1, PeakUtil: 0.5, MaxEndpoints: 40},
		{Family: topogen.FamilyWaxman, Size: wx, Seed: 1, PeakUtil: 0.5, MaxEndpoints: 40},
	}
}

// runGenChaosPoint loads the instance into a diurnal replay, cuts two
// shared-risk groups at one hour with cascades behind them, and
// advances in one-minute windows until the data plane is whole again:
// every link repaired, no flow starving, the lifecycle manager healthy.
func runGenChaosPoint(cfg topogen.Config, flows int) (GenPoint, error) {
	inst, err := topogen.Generate(cfg)
	if err != nil {
		return GenPoint{}, err
	}
	if rep := verify.CheckSRLGs(inst.Topo, inst.SRLGs); !rep.Ok() {
		return GenPoint{}, rep.Err()
	}
	pt := GenPoint{
		Family:   string(cfg.Family),
		Size:     cfg.Size,
		Seed:     cfg.Seed,
		Nodes:    inst.Topo.NumNodes(),
		Links:    inst.Topo.NumLinks(),
		Flows:    flows,
		Scenario: "srlgstorm",
	}
	const stormAt = 3600
	scfg := scenario.Config{
		Seed: cfg.Seed, Flows: flows, Duration: 4 * 3600, StepSec: 900, PeakUtil: 0.5,
		SRLGs: inst.SRLGs, StormSRLGs: 2, StormAt: stormAt, CascadeProb: 0.5,
		RepairAfter: 900, RepairEvery: 300, ReplanDeviation: 0.2,
	}
	r, err := scenario.NewDiurnal(inst.Topo, inst.Endpoints, scfg)
	if err != nil {
		return GenPoint{}, err
	}
	whole := func() bool {
		for _, l := range inst.Topo.Links() {
			if r.Sim.LinkState(l.ID) == sim.LinkFailed {
				return false
			}
		}
		if r.Mgr != nil && r.Mgr.State() == lifecycle.StateDegraded {
			return false
		}
		return r.Starving() == 0
	}
	now, recovered := 0.0, 0.0
	for now < scfg.Duration {
		step := 60.0
		if now < stormAt {
			step = stormAt - now + 60 // jump to just past the cut
		}
		r.Advance(step)
		now += step
		if whole() {
			recovered = now
			break
		}
	}
	res := r.Finish()
	pt.Flows = res.Flows
	pt.FailedLinks = res.Failed
	pt.Cascaded = res.Cascaded
	pt.DegradedSec = res.DegradedSec
	if recovered > 0 {
		pt.RecoverySec = recovered - stormAt
	} else {
		pt.Violations++ // never recovered inside the horizon
	}
	if !res.Healthy() {
		pt.Violations++
	}
	return pt, nil
}

func runGenPoint(cfg topogen.Config, flows int) (GenPoint, error) {
	inst, err := topogen.Generate(cfg)
	if err != nil {
		return GenPoint{}, err
	}
	pt := GenPoint{
		Family: string(cfg.Family),
		Size:   cfg.Size,
		Seed:   cfg.Seed,
		Nodes:  inst.Topo.NumNodes(),
		Links:  inst.Topo.NumLinks(),
		Flows:  flows,
	}
	// The sweep measures scaling, not solution quality: the three
	// deterministic orderings keep the largest instances tractable.
	planner := response.NewPlanner(
		response.WithEndpoints(inst.Endpoints),
		response.WithRestarts(0),
		response.WithSeed(cfg.Seed),
	)
	start := time.Now()
	plan, err := planner.Plan(context.Background(), inst.Topo)
	if err != nil {
		return GenPoint{}, err
	}
	pt.PlanMs = float64(time.Since(start).Microseconds()) / 1000
	pt.Pairs = len(plan.Pairs())
	pt.Tunnels = plan.TunnelCount()
	pt.PlanFingerprint = fmt.Sprintf("%016x", plan.Fingerprint())

	model := power.Cisco12000{}
	if full := power.FullWatts(inst.Topo, model); full > 0 {
		pt.AlwaysOnPct = 100 * power.NetworkWatts(inst.Topo, model, plan.AlwaysOnSet()) / full
	}
	rep := verify.CheckTables(inst.Topo, plan.Tables(), verify.Opts{
		TM: inst.Shape, NetScale: inst.MaxScale,
	})
	pt.Violations = len(rep.Violations)
	if inst.MaxScale > 0 {
		pt.TableShare = rep.TableScale / inst.MaxScale
	}

	// Replan for the undiluted matched matrix — the "demand drifted to
	// peak" scenario — cold and warm-started from the installed plan.
	// The cold result doubles as the swap rig's target tables.
	start = time.Now()
	planB, err := planner.Plan(context.Background(), inst.Topo,
		response.WithLowMatrix(inst.TM))
	if err != nil {
		return GenPoint{}, err
	}
	pt.ColdReplanMs = float64(time.Since(start).Microseconds()) / 1000
	start = time.Now()
	planW, err := planner.Plan(context.Background(), inst.Topo,
		response.WithLowMatrix(inst.TM), response.WithWarmStart(plan))
	if err != nil {
		return GenPoint{}, err
	}
	pt.WarmReplanMs = float64(time.Since(start).Microseconds()) / 1000
	pt.WarmIdentical = planW.Fingerprint() == planB.Fingerprint()
	// The warm plan still has to pass the full invariant checker — the
	// warm-vs-cold differential oracle itself (verify.DiffWarmStart)
	// only applies to warm-from-cold with unchanged inputs, which the
	// verify corpus test covers; here the seed is the previous plan.
	wrep := verify.CheckTables(inst.Topo, planW.Tables(), verify.Opts{
		TM: inst.Shape, NetScale: inst.MaxScale,
	})
	pt.Violations += len(wrep.Violations)

	swapMs, migrated, err := measureSwap(inst, plan, planB, flows)
	if err != nil {
		return GenPoint{}, err
	}
	pt.SwapMs, pt.MigratedFlows = swapMs, migrated
	return pt, nil
}

// measureSwap loads a simulator/controller with the instance workload
// spread over `flows` managed flows and times the lifecycle hot swap
// from planA to planB (the caller's timed demand-aware replan).
func measureSwap(inst *topogen.Instance, planA, planB *response.Plan,
	flows int) (float64, int, error) {

	t := inst.Topo
	demands := inst.TM.Demands()
	if len(demands) == 0 || flows == 0 {
		return 0, 0, nil
	}
	// Derate so that all demand aggregated on always-on paths stays
	// well under the activation threshold: the swap then measures the
	// retarget machinery, not congestion reaction.
	worst := verify.AlwaysOnMaxUtil(t, planA, inst.TM)
	derate := 1.0
	if worst > 0 {
		derate = 0.2 / worst
	}
	if derate > 1 {
		derate = 1
	}

	s := sim.New(t, sim.Opts{WakeUpDelay: 5, SleepAfterIdle: 60, PinnedOn: planA.AlwaysOnSet()})
	ctrl := te.NewController(s, te.Opts{Threshold: 0.9, Gamma: 0.5, Period: 60})
	perPair := flows / len(demands)
	extra := flows % len(demands)
	for i, d := range demands {
		ps, ok := planA.PathSet(d.O, d.D)
		if !ok {
			continue
		}
		k := perPair
		if i < extra {
			k++
		}
		for j := 0; j < k; j++ {
			f, err := s.AddFlow(d.O, d.D, d.Rate*derate/float64(max(k, 1)), ps.Levels())
			if err != nil {
				return 0, 0, err
			}
			ctrl.Manage(f)
		}
	}
	ctrl.Start()
	s.Run(120)

	mgr := lifecycle.New(s, ctrl, planA, func(context.Context, *response.TrafficMatrix) (*response.Plan, error) {
		return nil, fmt.Errorf("gensweep: replan must not fire")
	}, lifecycle.Opts{CheckEvery: 1e9, NoPowerGate: true})
	mgr.Start()
	start := time.Now()
	if err := mgr.StageAndSwap(planB); err != nil {
		return 0, 0, err
	}
	swapMs := float64(time.Since(start).Microseconds()) / 1000
	s.Run(600) // drain retired tables
	return swapMs, mgr.Metrics().MigratedFlows, nil
}
