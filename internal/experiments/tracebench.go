package experiments

// The trace-store benchmark: ingest throughput and query latency of
// response/tracestore at scale (cmd/response-bench -trace, recorded as
// BENCH_trace.json and smoke-tested in CI).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"response/internal/trace"
	"response/internal/tracestore"
)

// TraceBench is the result of RunTraceBench: a synthetic incident
// stream rendered through the real trace.EventWriter, ingested whole,
// then drilled into with the progressive-disclosure query tiers.
type TraceBench struct {
	// Events is the stream size; IngestSec the wall time to ingest it;
	// IngestPerSec the resulting throughput in events per second.
	Events       int     `json:"events"`
	IngestSec    float64 `json:"ingest_sec"`
	IngestPerSec float64 `json:"ingest_events_per_sec"`
	// Retained/Windows/Skipped echo the store's post-ingest stats.
	Retained int `json:"retained"`
	Windows  int `json:"windows"`
	Skipped  int `json:"skipped"`
	// Query latencies in milliseconds: tier-1 window search, tier-2
	// summary and tier-3 critical path over the incident windows
	// (mean and worst over QueryIters runs each).
	QueryIters         int     `json:"query_iters"`
	WindowsMeanMs      float64 `json:"windows_mean_ms"`
	SummaryMeanMs      float64 `json:"summary_mean_ms"`
	CriticalMeanMs     float64 `json:"critical_path_mean_ms"`
	CriticalMaxMs      float64 `json:"critical_path_max_ms"`
	CriticalPathLinks  int     `json:"critical_path_links"`
	CriticalTopIsBurst bool    `json:"critical_top_is_burst"`
}

// traceBenchStream renders a deterministic synthetic incident stream:
// steady te/sim churn over 200 links and 5000 flows at 10 events/s,
// with an SRLG-style failure burst (5 cuts, evacuation wave) opening
// every 10th 900-second window. Returns the JSONL bytes and the burst
// links of the first incident window.
func traceBenchStream(events int) (*bytes.Buffer, []int, float64) {
	var buf bytes.Buffer
	ew := trace.NewEventWriter(&buf)
	rng := rand.New(rand.NewSource(7))
	const (
		links     = 200
		flows     = 5000
		windowSec = 900
		perWindow = windowSec * 10 // 10 events/s
	)
	// The first incident window and its burst links are deterministic:
	// windowIdx 1, cuts at (17 + i*31) % links.
	var burst []int
	for i := 0; i < 5; i++ {
		burst = append(burst, (17+i*31)%links)
	}
	burstAt := float64(windowSec)
	for i := 0; i < events; i++ {
		ts := float64(i) / 10
		inWindow := i % perWindow
		windowIdx := i / perWindow
		if windowIdx%10 == 1 && inWindow < 55 {
			// Incident: 5 cuts then a 50-flow evacuation wave.
			if inWindow < 5 {
				l := (windowIdx*17 + inWindow*31) % links
				ew.EmitLink(ts, "sim", "fail", l, 0.9+0.02*float64(inWindow))
				continue
			}
			l := (windowIdx*17 + (inWindow%5)*31) % links
			ew.EmitFlowLink(ts, "te", "evacuate", rng.Intn(flows), rng.Intn(40), rng.Intn(40), l, 1)
			continue
		}
		switch i % 10 {
		case 0:
			ew.Emit(ts, "te", "probe", -1, -1, -1, 0)
		case 1:
			ew.EmitLink(ts, "sim", "sleep", rng.Intn(links), 30)
		case 2:
			ew.EmitLink(ts, "sim", "wake", rng.Intn(links), 2)
		default:
			ew.EmitFlowLink(ts, "te", "shift", rng.Intn(flows), rng.Intn(40), rng.Intn(40), rng.Intn(links), rng.Float64())
		}
	}
	return &buf, burst, burstAt
}

// RunTraceBench ingests a synthetic events-sized incident stream and
// times the query tiers. cmd/response-bench -trace drives it.
func RunTraceBench(events, queryIters int) (TraceBench, error) {
	if events <= 0 {
		events = 1 << 20
	}
	if queryIters <= 0 {
		queryIters = 100
	}
	buf, burst, burstAt := traceBenchStream(events)
	s := tracestore.New(tracestore.Opts{MaxEvents: events})

	start := time.Now()
	added, skipped, err := s.Ingest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return TraceBench{}, err
	}
	ingest := time.Since(start).Seconds()
	st := s.Stats()
	b := TraceBench{
		Events:       added,
		IngestSec:    ingest,
		IngestPerSec: float64(added) / ingest,
		Retained:     st.Events,
		Windows:      st.Windows,
		Skipped:      skipped,
		QueryIters:   queryIters,
	}

	timeIt := func(f func()) float64 {
		t0 := time.Now()
		for i := 0; i < queryIters; i++ {
			f()
		}
		return time.Since(t0).Seconds() * 1000 / float64(queryIters)
	}
	b.WindowsMeanMs = timeIt(func() {
		s.Windows(tracestore.WindowQuery{MinSeverity: tracestore.SevCritical})
	})
	b.SummaryMeanMs = timeIt(func() { s.Summary("", burstAt) })

	var worst time.Duration
	t0 := time.Now()
	for i := 0; i < queryIters; i++ {
		q0 := time.Now()
		cp := s.CriticalPathQuery("", burstAt, 10)
		if d := time.Since(q0); d > worst {
			worst = d
		}
		if i == 0 {
			b.CriticalPathLinks = len(cp.Links)
			if len(cp.Links) > 0 {
				for _, l := range burst {
					if cp.Links[0].Link == l {
						b.CriticalTopIsBurst = true
					}
				}
			}
		}
	}
	b.CriticalMeanMs = time.Since(t0).Seconds() * 1000 / float64(queryIters)
	b.CriticalMaxMs = worst.Seconds() * 1000
	return b, nil
}

// Print writes the benchmark in the table style of the other suites.
func (b TraceBench) Print(w io.Writer) {
	fmt.Fprintf(w, "trace-store benchmark (%d events)\n", b.Events)
	fmt.Fprintf(w, "  ingest          %.2f s  (%.0f events/s, %d retained, %d windows, %d skipped)\n",
		b.IngestSec, b.IngestPerSec, b.Retained, b.Windows, b.Skipped)
	fmt.Fprintf(w, "  windows query   %.3f ms mean over %d iters\n", b.WindowsMeanMs, b.QueryIters)
	fmt.Fprintf(w, "  summary query   %.3f ms mean\n", b.SummaryMeanMs)
	fmt.Fprintf(w, "  critical path   %.3f ms mean, %.3f ms worst (%d links, top-is-burst %v)\n",
		b.CriticalMeanMs, b.CriticalMaxMs, b.CriticalPathLinks, b.CriticalTopIsBurst)
}

// WriteJSON emits the benchmark as indented JSON (the BENCH_trace.json
// artifact).
func (b TraceBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
