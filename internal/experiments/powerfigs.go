package experiments

import (
	"fmt"
	"io"

	"response/internal/core"
	"response/internal/mcf"
	"response/internal/power"
	"response/internal/stats"
	"response/internal/topo"
	"response/internal/traffic"
)

// Fig4 is the fat-tree sine-wave power trace.
type Fig4 struct {
	Times     []float64
	DemandPct []float64 // demand as % of peak
	ECMP      []float64 // power % of full (always 100: nothing sleeps)
	Near      []float64 // REsPoNse power %, localized traffic
	Far       []float64 // REsPoNse power %, cross-pod traffic
}

// RunFig4 regenerates Figure 4 on a k=4 fat-tree with the commodity
// power model and an ElasticTree-style sine demand.
func RunFig4(steps int) (Fig4, error) {
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		return Fig4{}, err
	}
	model := power.NewCommodity(4)
	out := Fig4{}
	for _, loc := range []traffic.Locality{traffic.Near, traffic.Far} {
		series := traffic.SineSeries(ft, traffic.SineOpts{Locality: loc, Steps: steps})
		tables, err := core.Plan(ft.Topology, core.PlanOpts{
			Model:  model,
			Mode:   core.ModeSolver,
			Nodes:  ft.AllHosts(),
			LowTM:  series.OffPeak(),
			PeakTM: series.Peak(),
		})
		if err != nil {
			return Fig4{}, err
		}
		peak := series.Peak().Total()
		for i, m := range series.Matrices {
			res := tables.Evaluate(m, model, 0.95)
			switch loc {
			case traffic.Near:
				out.Times = append(out.Times, float64(i)*series.IntervalSec)
				out.DemandPct = append(out.DemandPct, 100*m.Total()/peak)
				out.ECMP = append(out.ECMP, 100)
				out.Near = append(out.Near, res.PctOfFull)
			case traffic.Far:
				out.Far = append(out.Far, res.PctOfFull)
			}
		}
	}
	return out, nil
}

// Print writes the Figure 4 series.
func (f Fig4) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4 — power under sinusoidal demand, k=4 fat-tree (% of full)")
	fmt.Fprintln(w, "  step  demand%   ecmp   REsPoNse(near)   REsPoNse(far)")
	for i := range f.Times {
		fmt.Fprintf(w, "  %4d   %5.0f   %5.0f   %13.1f   %12.1f\n",
			i, f.DemandPct[i], f.ECMP[i], f.Near[i], f.Far[i])
	}
	fmt.Fprintf(w, "  means: near %.1f%%, far %.1f%% (paper: near < far < ecmp=100%%)\n",
		stats.Mean(f.Near), stats.Mean(f.Far))
}

// Fig5 is the GÉANT 15-day replay power trace.
type Fig5 struct {
	IntervalSec float64
	DemandPct   []float64 // total demand as % of trace max
	Today       []float64 // power % under Cisco 12000
	Alt         []float64 // power % under the alternative HW model
	// Savings vs. the OSPF baseline (which keeps everything at 100 %).
	MeanSavingsToday float64
	MeanSavingsAlt   float64
	Recomputations   int // always 0: tables are computed once
}

// RunFig5 regenerates Figure 5.
func RunFig5(days int) (Fig5, error) {
	g, endpoints, series := GeantTrace(days, 0.3, 0.6, 404)
	model := power.Cisco12000{}
	alt := power.Alternative{Base: model}
	tables, err := core.Plan(g, core.PlanOpts{Model: model, Nodes: endpoints})
	if err != nil {
		return Fig5{}, err
	}
	out := Fig5{IntervalSec: series.IntervalSec}
	var maxTotal float64
	for _, m := range series.Matrices {
		if t := m.Total(); t > maxTotal {
			maxTotal = t
		}
	}
	for _, m := range series.Matrices {
		res := tables.Evaluate(m, model, 0.9)
		resAlt := tables.Evaluate(m, alt, 0.9)
		out.DemandPct = append(out.DemandPct, 100*m.Total()/maxTotal)
		out.Today = append(out.Today, res.PctOfFull)
		out.Alt = append(out.Alt, resAlt.PctOfFull)
	}
	out.MeanSavingsToday = 100 - stats.Mean(out.Today)
	out.MeanSavingsAlt = 100 - stats.Mean(out.Alt)
	return out, nil
}

// Print writes a daily-profile condensation of Figure 5.
func (f Fig5) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5 — GÉANT replay, power % of full (ospf = 100%)")
	fmt.Fprintf(w, "  intervals: %d at %.0f s\n", len(f.Today), f.IntervalSec)
	fmt.Fprintf(w, "  mean power: REsPoNse %.1f%%, alternative-HW %.1f%%\n",
		stats.Mean(f.Today), stats.Mean(f.Alt))
	fmt.Fprintf(w, "  savings:    REsPoNse %.1f%%, alternative-HW %.1f%% (paper: ≈30%% / ≈42%%)\n",
		f.MeanSavingsToday, f.MeanSavingsAlt)
	fmt.Fprintf(w, "  power range across demand swings: %.1f%%..%.1f%% (paper: varies little)\n",
		stats.Min(f.Today), stats.Max(f.Today))
	fmt.Fprintf(w, "  on-demand recomputations during replay: %d\n", f.Recomputations)
}

// Fig6 is the Genuity utilization sweep: power per technique per load.
type Fig6 struct {
	Utils    []float64 // 0.1, 0.5, 1.0
	Variants []string
	// Power[variant][util] in % of full network power.
	Power map[string][]float64
}

// RunFig6 regenerates Figure 6: REsPoNse-lat, REsPoNse, REsPoNse-ospf,
// REsPoNse-heuristic and Optimal on the Genuity topology at util-10,
// util-50 and util-100 gravity demands.
func RunFig6() (Fig6, error) {
	g := topo.NewGenuity()
	model := power.Cisco12000{}
	endpoints := EndpointSubset(g, 0.7, 606)
	base := traffic.Gravity(g, traffic.GravityOpts{Nodes: endpoints, TotalRate: 1})
	maxScale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.02)
	peak := base.Scale(maxScale)
	out := Fig6{
		Utils:    []float64{0.1, 0.5, 1.0},
		Variants: []string{"REsPoNse-lat", "REsPoNse", "REsPoNse-ospf", "REsPoNse-heuristic", "Optimal"},
		Power:    map[string][]float64{},
	}

	plans := map[string]core.PlanOpts{
		"REsPoNse-lat":       {Model: model, Beta: 0.25, Nodes: endpoints},
		"REsPoNse":           {Model: model, Nodes: endpoints},
		"REsPoNse-ospf":      {Model: model, Mode: core.ModeOSPF, Nodes: endpoints},
		"REsPoNse-heuristic": {Model: model, Mode: core.ModeHeuristic, PeakTM: peak, Nodes: endpoints},
	}
	full := power.FullWatts(g, model)
	for name, opts := range plans {
		tables, err := core.Plan(g, opts)
		if err != nil {
			return Fig6{}, fmt.Errorf("%s: %w", name, err)
		}
		for _, u := range out.Utils {
			res := tables.Evaluate(base.Scale(maxScale*u), model, 1.0)
			out.Power[name] = append(out.Power[name], res.PctOfFull)
		}
	}
	// Optimal: per-matrix multi-restart minimum subset.
	for _, u := range out.Utils {
		demands := base.Scale(maxScale * u).Demands()
		active, _, err := mcf.OptimalSubset(g, demands, model, mcf.OptimalOpts{})
		if err != nil {
			return Fig6{}, fmt.Errorf("optimal at util %.0f: %w", u*100, err)
		}
		out.Power["Optimal"] = append(out.Power["Optimal"],
			100*power.NetworkWatts(g, model, active)/full)
	}
	return out, nil
}

// Print writes the Figure 6 table.
func (f Fig6) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 — Genuity power (% of full) by utilization")
	fmt.Fprintf(w, "  %-20s", "technique")
	for _, u := range f.Utils {
		fmt.Fprintf(w, "  util-%-3.0f", u*100)
	}
	fmt.Fprintln(w)
	for _, v := range f.Variants {
		fmt.Fprintf(w, "  %-20s", v)
		for i := range f.Utils {
			fmt.Fprintf(w, "  %7.1f ", f.Power[v][i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  paper shape: savings ≈30% at low util; Optimal <= others;")
	fmt.Fprintln(w, "  heuristic wins at high load (traffic-aware); -lat slightly above REsPoNse")
}

// AlwaysOnShare reports the §4.1 claim: always-on paths alone carry
// about 50 % of the volume OSPF-InvCap can carry.
type AlwaysOnShare struct {
	Topology string
	Share    float64
}

// RunAlwaysOnShare measures the claim on a topology.
func RunAlwaysOnShare(t *topo.Topology) (AlwaysOnShare, error) {
	model := power.Cisco12000{}
	tables, err := core.Plan(t, core.PlanOpts{Model: model})
	if err != nil {
		return AlwaysOnShare{}, err
	}
	base := traffic.Gravity(t, traffic.GravityOpts{TotalRate: 1})
	return AlwaysOnShare{
		Topology: t.Name,
		Share:    tables.AlwaysOnCapacityShare(base, 1.0),
	}, nil
}

// StressSweep is the §4.2 sensitivity ablation: peak-carrying ability
// of always-on + on-demand tables as the stress-exclusion fraction
// varies. The paper settles on 20 %.
type StressSweep struct {
	Fractions []float64
	// PeakShare is the feasible fraction of the max load carried by
	// the two tables combined, per exclusion fraction.
	PeakShare []float64
}

// RunStressSweep regenerates the sensitivity analysis on GÉANT.
func RunStressSweep(fractions []float64) (StressSweep, error) {
	g := topo.NewGeant()
	model := power.Cisco12000{}
	base := traffic.Gravity(g, traffic.GravityOpts{TotalRate: 1})
	maxScale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.02)
	out := StressSweep{Fractions: fractions}
	for _, frac := range fractions {
		se := frac
		if se == 0 {
			se = -1 // the sweep's 0-point means "no exclusion", not the 0.2 default
		}
		tables, err := core.Plan(g, core.PlanOpts{Model: model, StressExclude: se})
		if err != nil {
			return StressSweep{}, err
		}
		// Largest load the installed tables can place without overload.
		lo, hi := 0.0, 1.0
		for i := 0; i < 20; i++ {
			mid := (lo + hi) / 2
			res := tables.Evaluate(base.Scale(maxScale*mid), model, 1.0)
			if res.Overloaded == 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		out.PeakShare = append(out.PeakShare, lo)
	}
	return out, nil
}

// Print writes the sweep.
func (s StressSweep) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation — stress-factor exclusion sensitivity (GÉANT)")
	fmt.Fprintln(w, "  excluded%   peak load carried by installed tables")
	for i, f := range s.Fractions {
		fmt.Fprintf(w, "  %8.0f%%   %.0f%% of max feasible\n", f*100, s.PeakShare[i]*100)
	}
	fmt.Fprintln(w, "  paper: 20% exclusion suffices for peak demands")
}
