// Package experiments wires the substrates into the paper's evaluation:
// one entry point per figure/table of §3 and §5, each returning a
// structured result that the CLI tools print and the benchmark harness
// regenerates. EXPERIMENTS.md records paper-vs-measured for each.
//
// Every experiment is deterministic (fixed seeds) so repeated runs give
// identical tables.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"response/internal/analysis"
	"response/internal/core"
	"response/internal/mcf"
	"response/internal/power"
	"response/internal/stats"
	"response/internal/topo"
	"response/internal/traffic"
)

// EndpointSubset picks a deterministic random subset of a topology's
// non-host nodes as traffic origins/destinations, per the paper's "we
// select the origins and destinations at random, as in [24]" (§5.1).
// PoPs outside the subset are transit-only and may sleep entirely.
func EndpointSubset(t *topo.Topology, fraction float64, seed int64) []topo.NodeID {
	all := core.DefaultEndpoints(t)
	n := int(float64(len(all))*fraction + 0.5)
	if n < 2 {
		n = 2
	}
	if n >= len(all) {
		return all
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	picked := append([]topo.NodeID(nil), all[:n]...)
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	return picked
}

// GeantTrace builds the synthetic GÉANT 15-min trace used by Figures
// 1b, 2a, 2b and 5: gravity over a random endpoint subset (endpointFrac
// of the PoPs), scaled so the diurnal peak sits at peakUtil of the
// maximum feasible load.
func GeantTrace(days int, peakUtil, endpointFrac float64, seed int64) (*topo.Topology, []topo.NodeID, *traffic.Series) {
	g := topo.NewGeant()
	endpoints := EndpointSubset(g, endpointFrac, seed)
	base := traffic.Gravity(g, traffic.GravityOpts{Nodes: endpoints, TotalRate: 1})
	maxScale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.02)
	series := traffic.DiurnalSeries(base.Scale(maxScale*peakUtil), traffic.DiurnalOpts{
		Days: days, Seed: seed,
	})
	return g, endpoints, series
}

// DCTrace builds the Google-datacenter-like 5-min trace of Figure 1a.
func DCTrace(days int, seed int64) *traffic.Series {
	// An aggregate of rack-level flows; absolute rates are irrelevant
	// for the deviation statistic.
	base := traffic.NewMatrix()
	for i := 0; i < 32; i++ {
		base.Set(topo.NodeID(i), topo.NodeID((i+7)%32), 1*topo.Gbps)
	}
	return traffic.VolatileSeries(base, traffic.VolatileOpts{Days: days, Seed: seed})
}

// Fig1a is the CCDF of 5-minute traffic deviation in the datacenter
// trace. The paper's reading: in ≈50 % of cases traffic changes by at
// least 20 % within 5 minutes.
type Fig1a struct {
	CCDF []stats.Point
	// FracGE20 is P(change >= 20 %).
	FracGE20 float64
}

// RunFig1a regenerates Figure 1a.
func RunFig1a(days int) Fig1a {
	s := DCTrace(days, 101)
	changes := traffic.PerFlowChanges(s)
	return Fig1a{
		CCDF:     stats.CCDF(changes),
		FracGE20: stats.FractionAtLeast(changes, 20),
	}
}

// Print writes the figure as a small table.
func (f Fig1a) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 1a — CCDF of 5-min traffic change (Google-DC-like trace)")
	fmt.Fprintln(w, "  change >= X%    fraction of intervals")
	for _, x := range []float64{5, 10, 20, 40, 60, 80, 100} {
		var y float64
		for _, p := range f.CCDF {
			if p.X <= x {
				y = p.Y
			}
		}
		fmt.Fprintf(w, "  %10.0f%%    %.2f\n", x, y)
	}
	fmt.Fprintf(w, "  paper: ≈0.50 at 20%%; measured: %.2f\n", f.FracGE20)
}

// Fig1b is the recomputation-rate replay of the GÉANT trace.
type Fig1b struct {
	RatePerHour []float64
	Total       int
	MaxPerHour  float64
	// Configs is the number of distinct routing configurations seen
	// (shared with Figure 2a).
	Dominance []analysis.ConfigShare
	Coverage  analysis.Coverage
}

// RunFig1b replays the GÉANT trace, recomputing the minimal subset per
// interval as the state-of-the-art approaches would, and derives the
// recomputation rate (Fig. 1b), configuration dominance (Fig. 2a) and
// GÉANT path coverage (Fig. 2b) from the same replay.
func RunFig1b(days, stride int) (Fig1b, error) {
	g, _, series := GeantTrace(days, 0.2, 0.7, 202)
	r, err := analysis.ReplayMinSubsets(g, series, power.Cisco12000{}, analysis.ReplayOpts{
		Stride: stride,
	})
	if err != nil {
		return Fig1b{}, err
	}
	out := Fig1b{
		RatePerHour: r.RatePerHour(),
		Total:       r.Recomputations(),
		Dominance:   r.ConfigDominance(),
		Coverage:    r.PathCoverage(5),
	}
	for _, v := range out.RatePerHour {
		if v > out.MaxPerHour {
			out.MaxPerHour = v
		}
	}
	return out, nil
}

// Print writes Figure 1b.
func (f Fig1b) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 1b — recomputation rate (GÉANT replay)")
	fmt.Fprintf(w, "  total recomputations: %d over %d hours\n", f.Total, len(f.RatePerHour))
	fmt.Fprintf(w, "  max rate: %.0f/hour (trace-granularity cap: 4/hour at 15-min)\n", f.MaxPerHour)
	hist := map[int]int{}
	for _, v := range f.RatePerHour {
		hist[int(v)]++
	}
	for rate := 0; rate <= 4; rate++ {
		fmt.Fprintf(w, "  hours with %d recomputations: %d\n", rate, hist[rate])
	}
}

// PrintFig2a writes the configuration-dominance slice table.
func (f Fig1b) PrintFig2a(w io.Writer) {
	fmt.Fprintln(w, "Figure 2a — routing configuration dominance (GÉANT replay)")
	fmt.Fprintf(w, "  distinct configurations: %d (paper: ≈13)\n", len(f.Dominance))
	for i, s := range f.Dominance {
		if i >= 5 {
			fmt.Fprintf(w, "  ... %d more\n", len(f.Dominance)-i)
			break
		}
		fmt.Fprintf(w, "  config %d: active %.0f%% of the time\n", i+1, s.Fraction*100)
	}
	if len(f.Dominance) > 0 {
		fmt.Fprintf(w, "  paper: dominant config ≈60%%; measured: %.0f%%\n",
			f.Dominance[0].Fraction*100)
	}
}

// Fig2b is the energy-critical path coverage curve for both networks.
type Fig2b struct {
	Geant   []float64 // mean fraction of traffic carried by top-X paths
	FatTree []float64
}

// RunFig2b computes top-X path coverage on GÉANT (from the min-subset
// replay) and on a fat-tree with 36 core switches (k=12) driven by the
// Google-like trace.
func RunFig2b(geantDays, geantStride, dcDays, dcStride int) (Fig2b, error) {
	fb, err := RunFig1b(geantDays, geantStride)
	if err != nil {
		return Fig2b{}, err
	}
	ft, err := FatTreeCoverage(12, dcDays, dcStride)
	if err != nil {
		return Fig2b{}, err
	}
	return Fig2b{Geant: fb.Coverage.MeanTopX, FatTree: ft.MeanTopX}, nil
}

// FatTreeCoverage replays a Google-driven fat-tree and ranks per-pair
// paths by carried traffic using the k-shortest-path packer (the
// fat-tree-scale stand-in for per-interval re-optimization).
func FatTreeCoverage(k, days, stride int) (analysis.Coverage, error) {
	ft, err := topo.NewFatTree(k, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		return analysis.Coverage{}, err
	}
	// Mixed near/far host pairs, volumes driven by the DC trace. A
	// host's ingress link can see two flows, so the base rate plus a
	// clamp keep even spiked intervals within the 1 Gb/s host links.
	base := traffic.NewMatrix()
	for i, p := range traffic.SinePairs(ft, traffic.Far) {
		if i%2 == 0 {
			base.Set(p[0], p[1], 0.25*topo.Gbps)
		}
	}
	for i, p := range traffic.SinePairs(ft, traffic.Near) {
		if i%2 == 1 {
			base.Set(p[0], p[1], 0.25*topo.Gbps)
		}
	}
	series := traffic.VolatileSeries(base, traffic.VolatileOpts{Days: days, Seed: 303})
	const clamp = 0.45 * topo.Gbps
	for _, m := range series.Matrices {
		for _, d := range m.Demands() {
			if d.Rate > clamp {
				m.Set(d.O, d.D, clamp)
			}
		}
	}
	model := power.NewCommodity(k)
	cands := mcf.CandidatePaths(ft.Topology, base.Demands(), 8)

	replay := &analysis.Replay{IntervalSec: series.IntervalSec * float64(stride)}
	for i := 0; i < len(series.Matrices); i += stride {
		tm := series.Matrices[i]
		_, routing, err := mcf.KShortestSubset(ft.Topology, tm.Demands(), model, mcf.KShortOpts{
			K: 8, Paths: cands,
		})
		if err != nil {
			return analysis.Coverage{}, err
		}
		replay.AddInterval(ft.Topology, tm, routing, 0)
	}
	return replay.PathCoverage(5), nil
}

// Print writes Figure 2b.
func (f Fig2b) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 2b — traffic covered by top-X energy-critical paths")
	fmt.Fprintln(w, "  X    GÉANT     FatTree(36-core)")
	for i := range f.Geant {
		ftv := "-"
		if i < len(f.FatTree) {
			ftv = fmt.Sprintf("%.1f%%", f.FatTree[i]*100)
		}
		fmt.Fprintf(w, "  %d   %5.1f%%    %s\n", i+1, f.Geant[i]*100, ftv)
	}
	fmt.Fprintln(w, "  paper: GÉANT 2 paths ≈98%, 3 ≈100%; FatTree needs ≈5")
}
