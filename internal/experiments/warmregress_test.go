package experiments

import (
	"context"
	"testing"
	"time"

	"response"
	"response/internal/topogen"
)

// TestWarmReplanNotSlowerFatTree6 pins the k=6 fat-tree warm-replan
// regression once visible in BENCH_gen.json (warm 485 ms vs cold
// 449 ms): when the warm seed cannot help — the repaired hint already
// burns more power than the tolerance admits — the warm plan must bail
// to the cold search early instead of paying for a doomed descent on
// top of the cold plan. The pin is warm ≤ cold × 1.1 (min of three
// runs each, so scheduler noise does not flake the bound).
func TestWarmReplanNotSlowerFatTree6(t *testing.T) {
	if testing.Short() {
		t.Skip("timing regression test; skipped in -short")
	}
	cfg := topogen.Config{
		Family: topogen.FamilyFatTree, Size: 6, Seed: 1,
		PeakUtil: 0.5, MaxEndpoints: 20,
	}
	inst, err := topogen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	planner := response.NewPlanner(
		response.WithEndpoints(inst.Endpoints),
		response.WithRestarts(0),
		response.WithSeed(cfg.Seed),
	)
	ctx := context.Background()
	plan, err := planner.Plan(ctx, inst.Topo)
	if err != nil {
		t.Fatal(err)
	}

	const runs = 3
	cold, warm := time.Duration(1<<62), time.Duration(1<<62)
	var coldFP, warmFP uint64
	for i := 0; i < runs; i++ {
		start := time.Now()
		planB, err := planner.Plan(ctx, inst.Topo, response.WithLowMatrix(inst.TM))
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < cold {
			cold = d
		}
		coldFP = planB.Fingerprint()

		start = time.Now()
		planW, err := planner.Plan(ctx, inst.Topo,
			response.WithLowMatrix(inst.TM), response.WithWarmStart(plan))
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
		warmFP = planW.Fingerprint()
	}
	t.Logf("cold %v warm %v identical=%v", cold, warm, coldFP == warmFP)
	if warm > cold+cold/10 {
		t.Fatalf("warm replan %v exceeds cold %v x 1.1", warm, cold)
	}
}
