package traffic

import (
	"math"

	"response/internal/topo"
)

// Locality selects the fat-tree communication pattern of §5.1.
type Locality int

// Localities: Near keeps traffic within pods ("highly localized"); Far
// sends it across pods through the network core ("non-localized").
const (
	Near Locality = iota
	Far
)

// String names the locality for experiment labels.
func (l Locality) String() string {
	if l == Near {
		return "near"
	}
	return "far"
}

// SineOpts parameterizes the ElasticTree-style sine-wave demand used in
// Figures 4 and 8b: each flow's rate follows a sine over [0, PeakRate],
// mimicking diurnal variation in a datacenter.
type SineOpts struct {
	Locality Locality
	// PeakRate is each flow's maximum (default 0.8 Gb/s, under the
	// 1 Gb/s host links so routing stays feasible at peak).
	PeakRate float64
	// PeriodSec is one full diurnal cycle (default 100 s of simulated
	// time; the figures use arbitrary time units).
	PeriodSec float64
	// Steps is the number of matrices per period (default 40).
	Steps int
	// Periods is the number of full cycles (default 1).
	Periods int
	// Floor is the minimum rate as a fraction of peak (default 0.05;
	// exactly zero flows would leave nothing to route at the valley).
	Floor float64
}

func (o *SineOpts) defaults() {
	if o.PeakRate == 0 {
		o.PeakRate = 0.8 * topo.Gbps
	}
	if o.PeriodSec == 0 {
		o.PeriodSec = 100
	}
	if o.Steps == 0 {
		o.Steps = 40
	}
	if o.Periods == 0 {
		o.Periods = 1
	}
	if o.Floor == 0 {
		o.Floor = 0.05
	}
}

// SinePairs returns the (O,D) host pairs for the locality pattern:
// Near pairs each host with the next host under the same edge switch's
// pod; Far pairs each host with its counterpart in the next pod.
func SinePairs(ft *topo.FatTree, loc Locality) [][2]topo.NodeID {
	var pairs [][2]topo.NodeID
	k := ft.K
	switch loc {
	case Near:
		for p := 0; p < k; p++ {
			hosts := ft.Hosts[p]
			for i, h := range hosts {
				pairs = append(pairs, [2]topo.NodeID{h, hosts[(i+1)%len(hosts)]})
			}
		}
	case Far:
		for p := 0; p < k; p++ {
			hosts := ft.Hosts[p]
			next := ft.Hosts[(p+1)%k]
			for i, h := range hosts {
				pairs = append(pairs, [2]topo.NodeID{h, next[i%len(next)]})
			}
		}
	}
	return pairs
}

// SineSeries generates the sine-wave demand series on a fat-tree built
// with hosts.
func SineSeries(ft *topo.FatTree, opts SineOpts) *Series {
	opts.defaults()
	pairs := SinePairs(ft, opts.Locality)
	n := opts.Steps * opts.Periods
	s := &Series{IntervalSec: opts.PeriodSec / float64(opts.Steps)}
	for i := 0; i < n; i++ {
		t := float64(i) * s.IntervalSec
		// Raised sine starting at the floor, peaking mid-period.
		x := 0.5 * (1 - math.Cos(2*math.Pi*t/opts.PeriodSec))
		rate := opts.PeakRate * (opts.Floor + (1-opts.Floor)*x)
		m := NewMatrix()
		for _, p := range pairs {
			m.Set(p[0], p[1], rate)
		}
		s.Matrices = append(s.Matrices, m)
	}
	return s
}
