// Package traffic models traffic demands: origin-destination matrices,
// the capacity-based gravity model (§5.1), the ElasticTree sine-wave
// datacenter demand with near/far locality (§5.1), and the synthetic
// GÉANT-like and Google-datacenter-like traces behind Figures 1, 2 and 5
// (see DESIGN.md §2 for the substitution rationale).
package traffic

import (
	"fmt"
	"sort"

	"response/internal/topo"
)

// Demand is one origin-destination flow demand in bits per second.
type Demand struct {
	O, D topo.NodeID
	Rate float64
}

// Matrix is a traffic matrix: aggregate demand per (O,D) pair.
// The zero value is an empty matrix ready for Set.
type Matrix struct {
	rates map[[2]topo.NodeID]float64
}

// NewMatrix returns an empty traffic matrix.
func NewMatrix() *Matrix {
	return &Matrix{rates: make(map[[2]topo.NodeID]float64)}
}

// Set assigns the demand from o to d (bits/s); zero removes the entry.
func (m *Matrix) Set(o, d topo.NodeID, rate float64) {
	if m.rates == nil {
		m.rates = make(map[[2]topo.NodeID]float64)
	}
	k := [2]topo.NodeID{o, d}
	if rate == 0 {
		delete(m.rates, k)
		return
	}
	m.rates[k] = rate
}

// Reset removes every entry, retaining the allocated capacity —
// monitors that rebuild a live matrix periodically reuse one Matrix
// instead of allocating per sample.
func (m *Matrix) Reset() { clear(m.rates) }

// Add increases the demand from o to d.
func (m *Matrix) Add(o, d topo.NodeID, rate float64) {
	m.Set(o, d, m.Rate(o, d)+rate)
}

// Rate returns the demand from o to d, 0 if absent.
func (m *Matrix) Rate(o, d topo.NodeID) float64 {
	return m.rates[[2]topo.NodeID{o, d}]
}

// Len returns the number of non-zero (O,D) pairs.
func (m *Matrix) Len() int { return len(m.rates) }

// Demands returns all non-zero demands sorted by (O,D) for
// deterministic iteration.
func (m *Matrix) Demands() []Demand {
	out := make([]Demand, 0, len(m.rates))
	for k, r := range m.rates {
		out = append(out, Demand{O: k[0], D: k[1], Rate: r})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].O != out[j].O {
			return out[i].O < out[j].O
		}
		return out[i].D < out[j].D
	})
	return out
}

// Total returns the sum of all demands (bits/s).
func (m *Matrix) Total() float64 {
	var s float64
	for _, r := range m.rates {
		s += r
	}
	return s
}

// MaxRate returns the largest single (O,D) demand.
func (m *Matrix) MaxRate() float64 {
	var mx float64
	for _, r := range m.rates {
		if r > mx {
			mx = r
		}
	}
	return mx
}

// Scale returns a new matrix with every demand multiplied by f.
func (m *Matrix) Scale(f float64) *Matrix {
	out := NewMatrix()
	for k, r := range m.rates {
		out.rates[k] = r * f
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix { return m.Scale(1) }

// Uniform returns a matrix with demand rate between every ordered pair
// of the given nodes — the paper's ε-demand trick (§4.1): with no
// traffic knowledge, set every flow to a tiny value to obtain a
// minimal-power routing with full connectivity.
func Uniform(nodes []topo.NodeID, rate float64) *Matrix {
	m := NewMatrix()
	for _, o := range nodes {
		for _, d := range nodes {
			if o != d {
				m.Set(o, d, rate)
			}
		}
	}
	return m
}

// RelativeChange returns |total(b)-total(a)| / total(a) in percent,
// the per-interval "change in traffic" statistic of Figure 1a.
func RelativeChange(a, b *Matrix) float64 {
	ta := a.Total()
	if ta == 0 {
		if b.Total() == 0 {
			return 0
		}
		return 100
	}
	d := b.Total() - ta
	if d < 0 {
		d = -d
	}
	return 100 * d / ta
}

// String summarizes the matrix.
func (m *Matrix) String() string {
	return fmt.Sprintf("tm{pairs:%d total:%.3g bps}", m.Len(), m.Total())
}

// Series is a sequence of matrices sampled at a fixed interval.
type Series struct {
	// IntervalSec is the sampling period in seconds (900 for GÉANT's
	// 15-minute TMs, 300 for the 5-minute datacenter trace).
	IntervalSec float64
	Matrices    []*Matrix
}

// Duration returns the covered time span in seconds.
func (s *Series) Duration() float64 {
	return s.IntervalSec * float64(len(s.Matrices))
}

// At returns the matrix governing time tSec.
func (s *Series) At(tSec float64) *Matrix {
	if len(s.Matrices) == 0 {
		return NewMatrix()
	}
	i := int(tSec / s.IntervalSec)
	if i < 0 {
		i = 0
	}
	if i >= len(s.Matrices) {
		i = len(s.Matrices) - 1
	}
	return s.Matrices[i]
}

// Peak returns the matrix with the largest total demand: the paper's
// d_peak estimation input for on-demand path computation (§4.2).
func (s *Series) Peak() *Matrix {
	if len(s.Matrices) == 0 {
		return NewMatrix()
	}
	best := s.Matrices[0]
	for _, m := range s.Matrices[1:] {
		if m.Total() > best.Total() {
			best = m
		}
	}
	return best
}

// OffPeak returns the matrix with the smallest total demand: d_low.
func (s *Series) OffPeak() *Matrix {
	if len(s.Matrices) == 0 {
		return NewMatrix()
	}
	best := s.Matrices[0]
	for _, m := range s.Matrices[1:] {
		if m.Total() < best.Total() {
			best = m
		}
	}
	return best
}
