package traffic

import (
	"math/rand"

	"response/internal/topo"
)

// GravityOpts parameterizes the capacity-based gravity model of §5.1:
// the incoming/outgoing flow of each PoP is proportional to the
// combined capacity of its adjacent links.
type GravityOpts struct {
	// Nodes restricts origins/destinations; default: all non-host nodes.
	Nodes []topo.NodeID
	// TotalRate is the aggregate demand to distribute (bits/s).
	TotalRate float64
	// FractionOfPairs, in (0,1], randomly selects a subset of (O,D)
	// pairs as in the paper ("we select the origins and destinations
	// at random, as in [24]"). Default 1 (all pairs).
	FractionOfPairs float64
	// Seed makes the random pair selection deterministic.
	Seed int64
}

// Gravity builds a traffic matrix from the capacity-based gravity
// model: rate(o,d) ∝ w(o)·w(d) with w(n) = Σ capacity of n's links,
// normalized to TotalRate over the selected pairs.
func Gravity(t *topo.Topology, opts GravityOpts) *Matrix {
	nodes := opts.Nodes
	if nodes == nil {
		for _, n := range t.Nodes() {
			if n.Kind != topo.KindHost {
				nodes = append(nodes, n.ID)
			}
		}
	}
	frac := opts.FractionOfPairs
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	w := make(map[topo.NodeID]float64, len(nodes))
	for _, id := range nodes {
		var c float64
		for _, aid := range t.Out(id) {
			c += t.Arc(aid).Capacity
		}
		w[id] = c
	}
	// Unnormalized weights for the selected pairs.
	m := NewMatrix()
	var sum float64
	for _, o := range nodes {
		for _, d := range nodes {
			if o == d {
				continue
			}
			if frac < 1 && rng.Float64() >= frac {
				continue
			}
			g := w[o] * w[d]
			m.Set(o, d, g)
			sum += g
		}
	}
	if sum == 0 || opts.TotalRate == 0 {
		return m
	}
	return m.Scale(opts.TotalRate / sum)
}

// HostGravity is Gravity restricted to host nodes, for datacenter
// topologies where demand originates at servers.
func HostGravity(t *topo.Topology, totalRate float64, seed int64) *Matrix {
	var hosts []topo.NodeID
	for _, n := range t.Nodes() {
		if n.Kind == topo.KindHost {
			hosts = append(hosts, n.ID)
		}
	}
	return Gravity(t, GravityOpts{Nodes: hosts, TotalRate: totalRate, Seed: seed})
}
