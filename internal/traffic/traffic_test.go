package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"response/internal/stats"
	"response/internal/topo"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix()
	m.Set(1, 2, 100)
	m.Set(2, 1, 50)
	if m.Rate(1, 2) != 100 || m.Rate(2, 1) != 50 || m.Rate(1, 3) != 0 {
		t.Error("rates wrong")
	}
	if m.Len() != 2 || m.Total() != 150 || m.MaxRate() != 100 {
		t.Error("aggregates wrong")
	}
	m.Add(1, 2, 25)
	if m.Rate(1, 2) != 125 {
		t.Error("Add failed")
	}
	m.Set(1, 2, 0)
	if m.Len() != 1 {
		t.Error("zero should delete")
	}
}

func TestMatrixDemandsDeterministic(t *testing.T) {
	m := NewMatrix()
	m.Set(3, 1, 10)
	m.Set(1, 3, 20)
	m.Set(1, 2, 30)
	d := m.Demands()
	if len(d) != 3 {
		t.Fatal("length")
	}
	if d[0].O != 1 || d[0].D != 2 || d[1].D != 3 || d[2].O != 3 {
		t.Errorf("order: %+v", d)
	}
}

func TestScaleAndClone(t *testing.T) {
	m := NewMatrix()
	m.Set(0, 1, 10)
	s := m.Scale(2.5)
	if s.Rate(0, 1) != 25 || m.Rate(0, 1) != 10 {
		t.Error("scale wrong or mutated original")
	}
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.Rate(0, 1) != 10 {
		t.Error("clone shares storage")
	}
}

// Property: Total is linear under Scale.
func TestScaleLinearProperty(t *testing.T) {
	f := func(rates []uint16, factor uint8) bool {
		m := NewMatrix()
		for i, r := range rates {
			if i > 20 {
				break
			}
			m.Set(topo.NodeID(i), topo.NodeID(i+1), float64(r))
		}
		k := float64(factor) / 16
		got := m.Scale(k).Total()
		want := m.Total() * k
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	nodes := []topo.NodeID{0, 1, 2}
	m := Uniform(nodes, 5)
	if m.Len() != 6 {
		t.Errorf("pairs = %d, want 6", m.Len())
	}
	for _, d := range m.Demands() {
		if d.Rate != 5 || d.O == d.D {
			t.Errorf("bad demand %+v", d)
		}
	}
}

func TestRelativeChange(t *testing.T) {
	a := NewMatrix()
	a.Set(0, 1, 100)
	b := NewMatrix()
	b.Set(0, 1, 120)
	if got := RelativeChange(a, b); math.Abs(got-20) > 1e-9 {
		t.Errorf("change = %v, want 20", got)
	}
	if got := RelativeChange(b, a); math.Abs(got-100.0/6) > 1e-9 {
		t.Errorf("reverse change = %v", got)
	}
	empty := NewMatrix()
	if RelativeChange(empty, empty) != 0 {
		t.Error("empty-empty should be 0")
	}
	if RelativeChange(empty, b) != 100 {
		t.Error("growth from zero should saturate at 100")
	}
}

func TestGravityProportionality(t *testing.T) {
	g := topo.NewGeant()
	m := Gravity(g, GravityOpts{TotalRate: 1000})
	if math.Abs(m.Total()-1000) > 1e-6 {
		t.Errorf("total = %v, want 1000", m.Total())
	}
	// Gravity rates must be proportional to w(o)*w(d): check ratio
	// invariance across destination for two origins.
	capOf := func(n topo.NodeID) float64 {
		var c float64
		for _, aid := range g.Out(n) {
			c += g.Arc(aid).Capacity
		}
		return c
	}
	var o1, o2, d topo.NodeID = 0, 1, 2
	r1 := m.Rate(o1, d) / capOf(o1)
	r2 := m.Rate(o2, d) / capOf(o2)
	if math.Abs(r1-r2) > 1e-12*(r1+r2) {
		t.Errorf("gravity not proportional: %v vs %v", r1, r2)
	}
}

func TestGravityFractionOfPairs(t *testing.T) {
	g := topo.NewGeant()
	full := Gravity(g, GravityOpts{TotalRate: 100})
	part := Gravity(g, GravityOpts{TotalRate: 100, FractionOfPairs: 0.4, Seed: 7})
	if part.Len() >= full.Len() {
		t.Errorf("partial pairs %d !< full %d", part.Len(), full.Len())
	}
	if math.Abs(part.Total()-100) > 1e-6 {
		t.Error("partial matrix should still normalize")
	}
	// Deterministic under the same seed.
	again := Gravity(g, GravityOpts{TotalRate: 100, FractionOfPairs: 0.4, Seed: 7})
	if again.Len() != part.Len() {
		t.Error("same seed gave different pair sets")
	}
}

func TestHostGravityUsesHosts(t *testing.T) {
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	m := HostGravity(ft.Topology, 100, 1)
	for _, d := range m.Demands() {
		if ft.Node(d.O).Kind != topo.KindHost || ft.Node(d.D).Kind != topo.KindHost {
			t.Fatal("non-host endpoint in host gravity")
		}
	}
}

func TestSinePairsLocality(t *testing.T) {
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	near := SinePairs(ft, Near)
	for _, p := range near {
		if ft.PodOf(p[0]) != ft.PodOf(p[1]) {
			t.Fatal("near pair crosses pods")
		}
	}
	far := SinePairs(ft, Far)
	for _, p := range far {
		if ft.PodOf(p[0]) == ft.PodOf(p[1]) {
			t.Fatal("far pair stays in pod")
		}
	}
	if len(near) != len(ft.AllHosts()) || len(far) != len(ft.AllHosts()) {
		t.Error("one flow per host expected")
	}
}

func TestSineSeriesShape(t *testing.T) {
	ft, err := topo.NewFatTree(4, topo.FatTreeOpts{WithHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	s := SineSeries(ft, SineOpts{Locality: Far, PeakRate: 1000, PeriodSec: 100, Steps: 20})
	if len(s.Matrices) != 20 {
		t.Fatalf("steps = %d", len(s.Matrices))
	}
	tot := TotalSeries(s)
	// Valley at step 0, peak near the middle.
	if tot[0] >= tot[10] {
		t.Error("sine should rise from valley to mid-period peak")
	}
	for i, v := range tot {
		if v <= 0 {
			t.Errorf("step %d total %v; floor should keep it positive", i, v)
		}
	}
	if s.Peak().Total() < s.OffPeak().Total() {
		t.Error("peak < off-peak")
	}
}

func TestDiurnalFactorShape(t *testing.T) {
	opts := DiurnalOpts{}
	opts.defaults()
	peak := opts.DiurnalFactor(15 * 3600) // Wednesday 15:00
	night := opts.DiurnalFactor(3 * 3600) // Wednesday 03:00
	if peak <= night {
		t.Errorf("peak %v <= night %v", peak, night)
	}
	if peak > 1+1e-9 || night < opts.NightFloor-1e-9 {
		t.Errorf("factor out of range: %v %v", peak, night)
	}
	// Day 3 of a Wednesday start = Saturday: weekend dip.
	sat := opts.DiurnalFactor((3*24 + 15) * 3600)
	if sat >= peak {
		t.Error("weekend should dip")
	}
}

func TestDiurnalSeriesLengthAndDeterminism(t *testing.T) {
	base := NewMatrix()
	base.Set(0, 1, 1000)
	base.Set(1, 0, 500)
	s1 := DiurnalSeries(base, DiurnalOpts{Days: 2, IntervalSec: 900, Seed: 3})
	if len(s1.Matrices) != 2*24*4 {
		t.Fatalf("intervals = %d", len(s1.Matrices))
	}
	s2 := DiurnalSeries(base, DiurnalOpts{Days: 2, IntervalSec: 900, Seed: 3})
	for i := range s1.Matrices {
		if s1.Matrices[i].Total() != s2.Matrices[i].Total() {
			t.Fatal("same seed diverged")
		}
	}
	s3 := DiurnalSeries(base, DiurnalOpts{Days: 2, IntervalSec: 900, Seed: 4})
	same := true
	for i := range s1.Matrices {
		if s1.Matrices[i].Total() != s3.Matrices[i].Total() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

// TestVolatileSeriesCalibration checks the Figure 1a property: roughly
// half of 5-minute intervals change total demand by at least 20 %.
func TestVolatileSeriesCalibration(t *testing.T) {
	base := NewMatrix()
	// A handful of flows, like a datacenter aggregate.
	for i := 0; i < 10; i++ {
		base.Set(topo.NodeID(i), topo.NodeID((i+1)%10), 1000)
	}
	s := VolatileSeries(base, VolatileOpts{Seed: 11})
	changes := PerFlowChanges(s)
	frac := stats.FractionAtLeast(changes, 20)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("P(per-flow change >= 20%%) = %.2f, want ≈0.5 (Figure 1a)", frac)
	}
	// Aggregate changes are tamer (flows decorrelate) but non-trivial.
	agg := stats.FractionAtLeast(Changes(s), 10)
	if agg == 0 {
		t.Error("aggregate volatility collapsed to zero")
	}
}

func TestSeriesAt(t *testing.T) {
	s := &Series{IntervalSec: 10}
	for i := 0; i < 3; i++ {
		m := NewMatrix()
		m.Set(0, 1, float64(i+1))
		s.Matrices = append(s.Matrices, m)
	}
	if s.At(-5).Rate(0, 1) != 1 || s.At(0).Rate(0, 1) != 1 {
		t.Error("At clamp low")
	}
	if s.At(15).Rate(0, 1) != 2 {
		t.Error("At mid")
	}
	if s.At(1e9).Rate(0, 1) != 3 {
		t.Error("At clamp high")
	}
	if s.Duration() != 30 {
		t.Error("duration")
	}
	empty := &Series{IntervalSec: 10}
	if empty.At(0).Len() != 0 || empty.Peak().Len() != 0 || empty.OffPeak().Len() != 0 {
		t.Error("empty series accessors should return empty matrices")
	}
}
