package traffic

import (
	"math"
	"math/rand"
)

// DiurnalOpts parameterizes the synthetic GÉANT-like trace generator.
// The real dataset (Uhlig et al.: 15-min TMs over 15 days from 25 May
// 2005) is substituted by gravity-base × diurnal × weekly × correlated
// lognormal noise; see DESIGN.md §2.
type DiurnalOpts struct {
	Days        int     // default 15
	IntervalSec float64 // default 900 (15 minutes)
	// NightFloor is the off-peak demand as a fraction of the daily
	// peak (default 0.3 — ISP diurnal swing of ≈3×).
	NightFloor float64
	// WeekendFactor scales Saturday/Sunday demand (default 0.7).
	WeekendFactor float64
	// NoiseSigma is the stationary per-flow lognormal sigma (default
	// 0.18), applied via a mean-reverting log-space random walk so
	// consecutive intervals are correlated.
	NoiseSigma float64
	// MeanReversion is the AR(1) coefficient of the log-noise
	// (default 0.9: slowly wandering flows).
	MeanReversion float64
	// PeakHour is the local hour of maximum demand (default 15).
	PeakHour float64
	Seed     int64
}

func (o *DiurnalOpts) defaults() {
	if o.Days == 0 {
		o.Days = 15
	}
	if o.IntervalSec == 0 {
		o.IntervalSec = 900
	}
	if o.NightFloor == 0 {
		o.NightFloor = 0.3
	}
	if o.WeekendFactor == 0 {
		o.WeekendFactor = 0.7
	}
	if o.NoiseSigma == 0 {
		o.NoiseSigma = 0.18
	}
	if o.MeanReversion == 0 {
		o.MeanReversion = 0.9
	}
	if o.PeakHour == 0 {
		o.PeakHour = 15
	}
}

// DiurnalFactor returns the deterministic demand multiplier at a given
// time offset (seconds) for the options: a raised cosine peaking at
// PeakHour with the configured night floor, scaled down on weekends.
// The trace starts on a Wednesday (25 May 2005 was one).
func (o DiurnalOpts) DiurnalFactor(tSec float64) float64 {
	hours := tSec / 3600
	day := int(hours / 24)
	hod := hours - float64(day)*24
	x := 0.5 * (1 + math.Cos(2*math.Pi*(hod-o.PeakHour)/24))
	f := o.NightFloor + (1-o.NightFloor)*x
	weekday := (3 + day) % 7 // day 0 = Wednesday
	if weekday == 6 || weekday == 0 {
		f *= o.WeekendFactor
	}
	return f
}

// DiurnalSeries generates a trace by modulating the base matrix (whose
// rates are interpreted as the daily peak) with the diurnal profile and
// correlated per-flow noise.
func DiurnalSeries(base *Matrix, opts DiurnalOpts) *Series {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	demands := base.Demands()
	n := int(float64(opts.Days) * 24 * 3600 / opts.IntervalSec)
	s := &Series{IntervalSec: opts.IntervalSec}
	// Per-flow AR(1) state in log space.
	state := make([]float64, len(demands))
	innovSigma := opts.NoiseSigma * math.Sqrt(1-opts.MeanReversion*opts.MeanReversion)
	for i := range state {
		state[i] = rng.NormFloat64() * opts.NoiseSigma
	}
	for step := 0; step < n; step++ {
		t := float64(step) * opts.IntervalSec
		f := opts.DiurnalFactor(t)
		m := NewMatrix()
		for i, d := range demands {
			state[i] = opts.MeanReversion*state[i] + rng.NormFloat64()*innovSigma
			m.Set(d.O, d.D, d.Rate*f*math.Exp(state[i]))
		}
		s.Matrices = append(s.Matrices, m)
	}
	return s
}

// VolatileOpts parameterizes the Google-datacenter-like trace: 5-minute
// samples over 8 days with heavy multiplicative innovations calibrated
// so that roughly half of all intervals change total demand by >= 20 %
// (Figure 1a).
type VolatileOpts struct {
	Days        int     // default 8
	IntervalSec float64 // default 300 (5 minutes)
	// Sigma is the innovation sigma of the per-flow multiplicative
	// walk (default 0.33; the median |change| of exp(N(0,σ)) with
	// mean reversion lands near the paper's 20 % figure).
	Sigma float64
	// MeanReversion pulls flows back toward their diurnal mean
	// (default 0.5: datacenter traffic decorrelates fast).
	MeanReversion float64
	// Diurnal applies a mild day/night swing (default on with floor 0.5).
	NightFloor float64
	Seed       int64
}

func (o *VolatileOpts) defaults() {
	if o.Days == 0 {
		o.Days = 8
	}
	if o.IntervalSec == 0 {
		o.IntervalSec = 300
	}
	if o.Sigma == 0 {
		o.Sigma = 0.33
	}
	if o.MeanReversion == 0 {
		o.MeanReversion = 0.5
	}
	if o.NightFloor == 0 {
		o.NightFloor = 0.5
	}
}

// VolatileSeries generates the Google-DC-like trace by perturbing the
// base matrix with fast-decorrelating multiplicative noise plus a mild
// diurnal swing.
func VolatileSeries(base *Matrix, opts VolatileOpts) *Series {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	demands := base.Demands()
	n := int(float64(opts.Days) * 24 * 3600 / opts.IntervalSec)
	s := &Series{IntervalSec: opts.IntervalSec}
	state := make([]float64, len(demands))
	innovSigma := opts.Sigma * math.Sqrt(1-opts.MeanReversion*opts.MeanReversion)
	for i := range state {
		state[i] = rng.NormFloat64() * opts.Sigma
	}
	diurnal := DiurnalOpts{
		Days:        opts.Days,
		IntervalSec: opts.IntervalSec,
		NightFloor:  opts.NightFloor,
		// Datacenters barely slow down on weekends.
		WeekendFactor: 0.95,
		NoiseSigma:    opts.Sigma,
		MeanReversion: opts.MeanReversion,
		PeakHour:      15,
	}
	for step := 0; step < n; step++ {
		t := float64(step) * opts.IntervalSec
		f := diurnal.DiurnalFactor(t)
		m := NewMatrix()
		for i, d := range demands {
			state[i] = opts.MeanReversion*state[i] + rng.NormFloat64()*innovSigma
			m.Set(d.O, d.D, d.Rate*f*math.Exp(state[i]))
		}
		s.Matrices = append(s.Matrices, m)
	}
	return s
}

// TotalSeries returns the per-interval total demand of a series, the
// quantity whose 5-minute relative changes Figure 1a plots.
func TotalSeries(s *Series) []float64 {
	out := make([]float64, len(s.Matrices))
	for i, m := range s.Matrices {
		out[i] = m.Total()
	}
	return out
}

// Changes returns the percent relative change between consecutive
// matrices of a series (per-interval |ΔT|/T of the aggregate).
func Changes(s *Series) []float64 {
	if len(s.Matrices) < 2 {
		return nil
	}
	out := make([]float64, 0, len(s.Matrices)-1)
	for i := 1; i < len(s.Matrices); i++ {
		out = append(out, RelativeChange(s.Matrices[i-1], s.Matrices[i]))
	}
	return out
}

// PerFlowChanges returns the percent relative change of every
// individual (O,D) demand between consecutive intervals — the
// link-level deviation statistic of Figure 1a ("traffic deviation in a
// 5-min period (out)"), since in a datacenter each flow dominates the
// outbound traffic of its host link. Flows absent in the earlier
// interval are skipped.
func PerFlowChanges(s *Series) []float64 {
	if len(s.Matrices) < 2 {
		return nil
	}
	var out []float64
	for i := 1; i < len(s.Matrices); i++ {
		prev, cur := s.Matrices[i-1], s.Matrices[i]
		for _, d := range prev.Demands() {
			if d.Rate <= 0 {
				continue
			}
			delta := cur.Rate(d.O, d.D) - d.Rate
			if delta < 0 {
				delta = -delta
			}
			out = append(out, 100*delta/d.Rate)
		}
	}
	return out
}
