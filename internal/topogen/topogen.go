// Package topogen generates parameterized, seed-deterministic
// synthetic topologies with matched traffic matrices, so planner and
// runtime invariants can be tested as properties over hundreds of
// structurally diverse networks instead of being pinned to the three
// topologies the paper evaluates.
//
// Five families are provided, spanning the structural regimes the
// energy-critical-path analyses care about:
//
//   - fattree: the k-ary fat-tree datacenter fabric (massive path
//     diversity, uniform capacities);
//   - waxman: the classic Waxman random geometric graph (ISP-like
//     irregular meshes with distance-correlated connectivity and mixed
//     capacity tiers);
//   - ring: a cycle with seeded chord links (sparse backbones where
//     single exclusions matter);
//   - torus: a 2-D wrap-around grid (regular meshes with no capacity
//     hierarchy);
//   - isp: a two-tier hierarchical ISP — a chorded core ring with
//     dual-homed access routers per PoP (the PoP-access structure of
//     the paper's Figure 6 topology, parameterized).
//
// Every generator is deterministic: the same (family, size, seed)
// produce a byte-identical topology — same node order, same link
// order, same capacities and positions — and therefore the same
// Fingerprint, on any machine and under any GOMAXPROCS. Generated
// topologies are always connected and pass topo.Validate.
package topogen

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"response/internal/mcf"
	"response/internal/topo"
	"response/internal/traffic"
)

// Family names a generator family.
type Family string

// Generator families.
const (
	FamilyFatTree Family = "fattree"
	FamilyWaxman  Family = "waxman"
	FamilyRing    Family = "ring"
	FamilyTorus   Family = "torus"
	FamilyISP     Family = "isp"
)

// Families returns every generator family in deterministic order.
func Families() []Family {
	return []Family{FamilyFatTree, FamilyWaxman, FamilyRing, FamilyTorus, FamilyISP}
}

// Config parameterizes one generated instance.
type Config struct {
	Family Family
	// Size steers the scale; its meaning is per family:
	//
	//	fattree: arity k (even, ≥ 2; default 4) → 5k²/4 switches
	//	waxman:  node count (≥ 2; default 20)
	//	ring:    node count (≥ 3; default 8)
	//	torus:   grid side w (≥ 3; default 4) → w² nodes
	//	isp:     core PoP count (≥ 3; default 4)
	Size int
	// Seed drives every random choice (positions, edge selection,
	// capacity tiers, access-router counts). Identical Config ⇒
	// byte-identical Instance.
	Seed int64
	// PeakUtil scales the matched gravity matrix to this fraction of
	// the topology's maximum routable load (default 0.6, the operating
	// point the scenario catalog uses; ≤ 0 keeps the default).
	PeakUtil float64
	// MaxEndpoints, when > 0, caps the origin-destination universe at
	// a deterministic random subset of that many nodes. Large sweep
	// instances use it so that pair count stays fixed while topology
	// size grows.
	MaxEndpoints int
}

func (c *Config) defaults() error {
	switch c.Family {
	case FamilyFatTree:
		if c.Size == 0 {
			c.Size = 4
		}
		if c.Size < 2 || c.Size%2 != 0 {
			return fmt.Errorf("topogen: fattree size must be even and >= 2, got %d", c.Size)
		}
	case FamilyWaxman:
		if c.Size == 0 {
			c.Size = 20
		}
		if c.Size < 2 {
			return fmt.Errorf("topogen: waxman size must be >= 2, got %d", c.Size)
		}
	case FamilyRing:
		if c.Size == 0 {
			c.Size = 8
		}
		if c.Size < 3 {
			return fmt.Errorf("topogen: ring size must be >= 3, got %d", c.Size)
		}
	case FamilyTorus:
		if c.Size == 0 {
			c.Size = 4
		}
		if c.Size < 3 {
			return fmt.Errorf("topogen: torus side must be >= 3, got %d", c.Size)
		}
	case FamilyISP:
		if c.Size == 0 {
			c.Size = 4
		}
		if c.Size < 3 {
			return fmt.Errorf("topogen: isp core count must be >= 3, got %d", c.Size)
		}
	default:
		return fmt.Errorf("topogen: unknown family %q (have %v)", c.Family, Families())
	}
	if c.PeakUtil <= 0 {
		c.PeakUtil = 0.6
	}
	return nil
}

// name is the canonical topology name of a config; the topology
// fingerprint covers it, so instances of different families, sizes or
// seeds never collide.
func (c Config) name() string {
	return fmt.Sprintf("gen-%s-%d-s%d", c.Family, c.Size, c.Seed)
}

// Instance is one generated network plus its matched workload.
type Instance struct {
	Config Config
	Topo   *topo.Topology
	// Endpoints is the origin-destination universe the matched matrix
	// covers, in ascending node-ID order.
	Endpoints []topo.NodeID
	// Shape is the unit capacity-gravity demand shape over the
	// endpoints (total rate 1); invariant checkers scale it themselves.
	Shape *traffic.Matrix
	// TM is the matched workload: Shape scaled so that the aggregate
	// demand is PeakUtil × the maximum load routable on the full
	// topology.
	TM *traffic.Matrix
	// MaxScale is the maximum feasible multiplier of Shape on the full
	// topology (the scale TM was derived from).
	MaxScale float64
	// SRLGs is the family's structural shared-risk model (fat-tree pod
	// domains, ISP PoP bundles, geometric conduits for the planar
	// families) — the groups correlated-failure scenarios cut whole.
	// Derived deterministically from the topology alone; not covered
	// by Fingerprint, which predates it and stays pinned.
	SRLGs []SRLG
}

// Generate builds the instance described by cfg. The build is
// deterministic and the resulting topology is connected and valid.
func Generate(cfg Config) (*Instance, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var t *topo.Topology
	var ft *topo.FatTree
	var err error
	switch cfg.Family {
	case FamilyFatTree:
		ft, err = genFatTree(cfg)
		if err == nil {
			t = ft.Topology
		}
	case FamilyWaxman:
		t = genWaxman(cfg, rng)
	case FamilyRing:
		t = genRing(cfg, rng)
	case FamilyTorus:
		t = genTorus(cfg)
	case FamilyISP:
		t = genISP(cfg, rng)
	}
	if err != nil {
		return nil, err
	}
	t.Name = cfg.name()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topogen: generated topology invalid: %w", err)
	}
	if !t.Connected() {
		return nil, fmt.Errorf("topogen: generated topology %s is disconnected", t.Name)
	}

	inst := &Instance{Config: cfg, Topo: t}
	inst.Endpoints = chooseEndpoints(t, cfg, rng)
	inst.Shape, inst.TM, inst.MaxScale = matchedMatrix(t, inst.Endpoints, cfg.PeakUtil)
	inst.SRLGs = deriveSRLGs(cfg, t, ft)
	return inst, nil
}

// chooseEndpoints selects the OD universe: the family's natural
// endpoints, capped at MaxEndpoints by a deterministic random subset.
func chooseEndpoints(t *topo.Topology, cfg Config, rng *rand.Rand) []topo.NodeID {
	var eps []topo.NodeID
	switch cfg.Family {
	case FamilyFatTree:
		// Demand originates below the edge layer; with no hosts
		// attached, the edge switches are the natural endpoints.
		eps = t.NodesOfKind(topo.KindEdge)
	case FamilyISP:
		// Access routers exchange the traffic; the core only transits.
		eps = t.NodesOfKind(topo.KindRouter)
	default:
		for _, n := range t.Nodes() {
			if n.Kind != topo.KindHost {
				eps = append(eps, n.ID)
			}
		}
	}
	if cfg.MaxEndpoints > 0 && len(eps) > cfg.MaxEndpoints {
		rng.Shuffle(len(eps), func(i, j int) { eps[i], eps[j] = eps[j], eps[i] })
		eps = eps[:cfg.MaxEndpoints]
		sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	}
	return eps
}

// matchedMatrix derives the instance workload: the capacity-gravity
// shape over the endpoints, anchored at peakUtil of the largest load
// the full topology can route.
func matchedMatrix(t *topo.Topology, eps []topo.NodeID, peakUtil float64) (*traffic.Matrix, *traffic.Matrix, float64) {
	if len(eps) < 2 {
		return traffic.NewMatrix(), traffic.NewMatrix(), 0
	}
	base := traffic.Gravity(t, traffic.GravityOpts{Nodes: eps, TotalRate: 1})
	scale := mcf.MaxFeasibleScale(t, base, mcf.RouteOpts{}, 0.05)
	if scale <= 0 {
		return base, traffic.NewMatrix(), 0
	}
	return base, base.Scale(scale * peakUtil), scale
}

// Fingerprint hashes the full instance — topology structure plus every
// demand of the matched matrix — into a stable 64-bit value.
// Determinism tests pin it per family.
func (in *Instance) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(in.Topo.Fingerprint())
	u64(uint64(len(in.Endpoints)))
	for _, e := range in.Endpoints {
		u64(uint64(e))
	}
	demands := in.TM.Demands()
	u64(uint64(len(demands)))
	for _, d := range demands {
		u64(uint64(d.O))
		u64(uint64(d.D))
		u64(math.Float64bits(d.Rate))
	}
	return h.Sum64()
}

// String summarizes the instance.
func (in *Instance) String() string {
	return fmt.Sprintf("%s: %d nodes, %d links, %d endpoints, %d demands",
		in.Topo.Name, in.Topo.NumNodes(), in.Topo.NumLinks(), len(in.Endpoints), in.TM.Len())
}
