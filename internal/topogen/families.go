package topogen

import (
	"fmt"
	"math"
	"math/rand"

	"response/internal/topo"
)

// Capacity tiers of the generated ISP-style families (the GÉANT tiers).
const (
	tier622M = 622 * topo.Mbps
	tier25G  = 2.5 * topo.Gbps
	tier10G  = 10 * topo.Gbps
)

// genFatTree wraps the fat-tree builder at switch granularity: path
// analysis and planning run over the fabric, with edge switches as the
// demand endpoints. The *topo.FatTree is retained so SRLG derivation
// can group links by pod.
func genFatTree(cfg Config) (*topo.FatTree, error) {
	return topo.NewFatTree(cfg.Size, topo.FatTreeOpts{})
}

// genWaxman builds a Waxman random geometric graph: n nodes uniform in
// a square (the plane grows with √n, keeping node density constant),
// each pair linked with probability α·exp(−d/(β·Dc)). Dc is a FIXED
// characteristic reach — the diagonal of the default 20-node plane —
// not the instance's own diameter: with a per-instance diameter the
// link probability becomes scale-free and the link count grows as n²
// (36-degree "ISP meshes" at n=200); a fixed reach keeps expected
// degree roughly constant as the family scales, like a real backbone.
// Components left over by the random pass are stitched together along
// their closest inter-component pair, so the result is always
// connected. Capacities draw from the GÉANT tiers, biased toward
// 2.5G; latencies follow planar distance.
func genWaxman(cfg Config, rng *rand.Rand) *topo.Topology {
	const (
		alpha = 0.55
		beta  = 0.3
	)
	n := cfg.Size
	t := topo.New(cfg.name())
	side := 120 * math.Sqrt(float64(n))
	ids := make([]topo.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = t.AddNodeAt(fmt.Sprintf("w%d", i), topo.KindRouter,
			rng.Float64()*side, rng.Float64()*side)
	}
	charD := 120 * math.Sqrt(20) * math.Sqrt2 // ≈759 km: the 20-node plane diagonal
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := t.DistanceKm(ids[i], ids[j])
			if rng.Float64() < alpha*math.Exp(-d/(beta*charD)) {
				t.AddLinkKm(ids[i], ids[j], waxmanTier(rng))
			}
		}
	}
	stitchComponents(t, ids)
	return t
}

func waxmanTier(rng *rand.Rand) float64 {
	switch v := rng.Float64(); {
	case v < 0.25:
		return tier622M
	case v < 0.75:
		return tier25G
	default:
		return tier10G
	}
}

// stitchComponents connects a possibly fragmented graph by repeatedly
// adding a 2.5G link across the closest pair of nodes in different
// components (ties broken by lowest node IDs, so the mend is
// deterministic).
func stitchComponents(t *topo.Topology, ids []topo.NodeID) {
	comp := make([]int, len(ids))
	var label func(root topo.NodeID, c int) // iterative DFS over links
	label = func(root topo.NodeID, c int) {
		stack := []topo.NodeID{root}
		comp[root] = c
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, aid := range t.Out(n) {
				to := t.Arc(aid).To
				if comp[to] == 0 {
					comp[to] = c
					stack = append(stack, to)
				}
			}
		}
	}
	for {
		clear(comp)
		next := 0
		for _, id := range ids {
			if comp[id] == 0 {
				next++
				label(id, next)
			}
		}
		if next <= 1 {
			return
		}
		// Closest pair spanning components 1 and any other.
		best := math.Inf(1)
		var ba, bb topo.NodeID = -1, -1
		for _, a := range ids {
			if comp[a] != 1 {
				continue
			}
			for _, b := range ids {
				if comp[b] == 1 {
					continue
				}
				if d := t.DistanceKm(a, b); d < best {
					best, ba, bb = d, a, b
				}
			}
		}
		t.AddLinkKm(ba, bb, tier25G)
	}
}

// genRing builds an n-node cycle with ⌈n/6⌉ seeded chord links: the
// ring carries 10G, chords 2.5G. Nodes sit on a circle sized so that
// neighbors are ~60 km apart.
func genRing(cfg Config, rng *rand.Rand) *topo.Topology {
	n := cfg.Size
	t := topo.New(cfg.name())
	r := 60 * float64(n) / (2 * math.Pi)
	ids := make([]topo.NodeID, n)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		ids[i] = t.AddNodeAt(fmt.Sprintf("r%d", i), topo.KindRouter,
			r*math.Cos(th), r*math.Sin(th))
	}
	for i := 0; i < n; i++ {
		t.AddLinkKm(ids[i], ids[(i+1)%n], tier10G)
	}
	for chords := (n + 5) / 6; chords > 0; {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if _, dup := t.ArcBetween(ids[a], ids[b]); dup {
			// Occupied pair (ring neighbor or repeated draw): consume
			// the attempt so a tiny ring cannot loop forever.
			chords--
			continue
		}
		t.AddLinkKm(ids[a], ids[b], tier25G)
		chords--
	}
	return t
}

// genTorus builds a w×w wrap-around grid: rows at 10G, columns at
// 2.5G, 80 km spacing. Every node has degree 4 and there is no
// capacity hierarchy, the opposite structural regime from the ISP
// families. w ≥ 3 keeps the wrap links distinct from the grid links.
func genTorus(cfg Config) *topo.Topology {
	w := cfg.Size
	t := topo.New(cfg.name())
	ids := make([]topo.NodeID, w*w)
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			ids[r*w+c] = t.AddNodeAt(fmt.Sprintf("t%d-%d", r, c), topo.KindRouter,
				float64(c)*80, float64(r)*80)
		}
	}
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			// Latency from the 80 km hop, not planar distance: wrap
			// links span the grid visually but are one hop long.
			t.AddLink(ids[r*w+c], ids[r*w+(c+1)%w], tier10G, 80/200000.0+0.0001)
			t.AddLink(ids[r*w+c], ids[((r+1)%w)*w+c], tier25G, 80/200000.0+0.0001)
		}
	}
	return t
}

// genISP builds a two-tier hierarchical ISP: c core PoPs (KindCore) on
// a chorded 10G ring, each with 2–3 access routers (KindRouter)
// dual-homed — a 2.5G uplink to the home core and a 622M protection
// link to the next core around the ring. Only access routers exchange
// traffic; the core transits, like the PoP-access topology of the
// paper's Figure 6.
func genISP(cfg Config, rng *rand.Rand) *topo.Topology {
	c := cfg.Size
	t := topo.New(cfg.name())
	r := 90 * float64(c) / (2 * math.Pi) * 2
	cores := make([]topo.NodeID, c)
	for i := 0; i < c; i++ {
		th := 2 * math.Pi * float64(i) / float64(c)
		cores[i] = t.AddNodeAt(fmt.Sprintf("core%d", i), topo.KindCore,
			r*math.Cos(th), r*math.Sin(th))
	}
	for i := 0; i < c; i++ {
		t.AddLinkKm(cores[i], cores[(i+1)%c], tier10G)
	}
	// Core chords: one per four PoPs, skipping occupied pairs.
	for chords := c / 4; chords > 0; {
		a, b := rng.Intn(c), rng.Intn(c)
		if a == b {
			continue
		}
		if _, dup := t.ArcBetween(cores[a], cores[b]); dup {
			chords--
			continue
		}
		t.AddLinkKm(cores[a], cores[b], tier10G)
		chords--
	}
	for i := 0; i < c; i++ {
		access := 2 + rng.Intn(2)
		for j := 0; j < access; j++ {
			th := 2*math.Pi*float64(i)/float64(c) + (float64(j)-1)*0.08
			rr := r + 60 + 20*rng.Float64()
			a := t.AddNodeAt(fmt.Sprintf("acc%d-%d", i, j), topo.KindRouter,
				rr*math.Cos(th), rr*math.Sin(th))
			t.AddLinkKm(a, cores[i], tier25G)
			t.AddLinkKm(a, cores[(i+1)%c], tier622M)
		}
	}
	return t
}
