package topogen

import (
	"testing"

	"response/internal/topo"
)

// TestSRLGsDerivedForEveryFamily: every generated instance carries a
// non-empty, well-formed SRLG model covering only real links.
func TestSRLGsDerivedForEveryFamily(t *testing.T) {
	for _, fam := range Families() {
		inst, err := Generate(Config{Family: fam, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if len(inst.SRLGs) == 0 {
			t.Fatalf("%s: no SRLGs derived", fam)
		}
		names := map[string]bool{}
		for _, g := range inst.SRLGs {
			if g.Name == "" || len(g.Links) == 0 {
				t.Fatalf("%s: malformed group %+v", fam, g)
			}
			if names[g.Name] {
				t.Fatalf("%s: duplicate group name %q", fam, g.Name)
			}
			names[g.Name] = true
			if len(g.Links) >= inst.Topo.NumLinks() {
				t.Fatalf("%s: group %q covers the whole topology", fam, g.Name)
			}
			for _, l := range g.Links {
				if l < 0 || int(l) >= inst.Topo.NumLinks() {
					t.Fatalf("%s: group %q references link %d of %d", fam, g.Name, l, inst.Topo.NumLinks())
				}
			}
		}
	}
}

// TestSRLGsDeterministic: the SRLG model is a pure function of the
// config, like everything else in the instance.
func TestSRLGsDeterministic(t *testing.T) {
	for _, fam := range Families() {
		a, err := Generate(Config{Family: fam, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Config{Family: fam, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.SRLGs) != len(b.SRLGs) {
			t.Fatalf("%s: SRLG count diverged: %d vs %d", fam, len(a.SRLGs), len(b.SRLGs))
		}
		for i := range a.SRLGs {
			if a.SRLGs[i].Name != b.SRLGs[i].Name {
				t.Fatalf("%s: group %d name diverged", fam, i)
			}
			if len(a.SRLGs[i].Links) != len(b.SRLGs[i].Links) {
				t.Fatalf("%s: group %q size diverged", fam, a.SRLGs[i].Name)
			}
			for j := range a.SRLGs[i].Links {
				if a.SRLGs[i].Links[j] != b.SRLGs[i].Links[j] {
					t.Fatalf("%s: group %q member %d diverged", fam, a.SRLGs[i].Name, j)
				}
			}
		}
	}
}

// TestFatTreeSRLGStructure: pod grouping must follow the fabric — one
// fabric and one uplink group per pod, and a pod's fabric group holds
// exactly its (k/2)² edge↔aggr links.
func TestFatTreeSRLGStructure(t *testing.T) {
	const k = 4
	inst, err := Generate(Config{Family: FamilyFatTree, Size: k, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fabric, uplink := 0, 0
	for _, g := range inst.SRLGs {
		switch {
		case len(g.Name) > 4 && g.Name[len(g.Name)-6:] == "fabric":
			fabric++
			if want := (k / 2) * (k / 2); len(g.Links) != want {
				t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
			}
		case len(g.Name) > 4 && g.Name[len(g.Name)-6:] == "uplink":
			uplink++
			if want := (k / 2) * (k / 2); len(g.Links) != want {
				t.Errorf("%s: %d links, want %d", g.Name, len(g.Links), want)
			}
		default:
			t.Errorf("unexpected fat-tree group %q", g.Name)
		}
	}
	if fabric != k || uplink != k {
		t.Errorf("fabric/uplink groups = %d/%d, want %d/%d", fabric, uplink, k, k)
	}
}

// TestISPSRLGStructure: every access link lands in exactly one PoP
// bundle; every core trunk is a singleton group; together they cover
// all links exactly once.
func TestISPSRLGStructure(t *testing.T) {
	inst, err := Generate(Config{Family: FamilyISP, Size: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	covered := map[topo.LinkID]int{}
	for _, g := range inst.SRLGs {
		for _, l := range g.Links {
			covered[l]++
		}
	}
	for _, l := range inst.Topo.Links() {
		if covered[l.ID] != 1 {
			t.Fatalf("link %d covered %d times, want exactly once", l.ID, covered[l.ID])
		}
	}
}

// TestProximitySRLGsCoverAndCluster: the geometric model covers every
// link exactly once, and two parallel links laid in the same corridor
// share a group while a distant one does not.
func TestProximitySRLGsCoverAndCluster(t *testing.T) {
	tp := topo.New("prox-test")
	a := tp.AddNodeAt("a", topo.KindRouter, 0, 0)
	b := tp.AddNodeAt("b", topo.KindRouter, 100, 0)
	c := tp.AddNodeAt("c", topo.KindRouter, 0, 10)
	d := tp.AddNodeAt("d", topo.KindRouter, 100, 10)
	e := tp.AddNodeAt("e", topo.KindRouter, 0, 1000)
	tp.AddLinkKm(a, b, tier25G) // midpoint (50, 0)
	tp.AddLinkKm(c, d, tier25G) // midpoint (50, 5): same corridor
	tp.AddLinkKm(a, c, tier25G) // joins the graph
	tp.AddLinkKm(b, d, tier25G)
	tp.AddLinkKm(a, e, tier25G) // midpoint (0, 500): far away

	groups := ProximitySRLGs(tp, 20)
	covered := map[topo.LinkID]int{}
	byLink := map[topo.LinkID]string{}
	for _, g := range groups {
		for _, l := range g.Links {
			covered[l]++
			byLink[l] = g.Name
		}
	}
	for _, l := range tp.Links() {
		if covered[l.ID] != 1 {
			t.Fatalf("link %d covered %d times", l.ID, covered[l.ID])
		}
	}
	ab, _ := tp.ArcBetween(a, b)
	cd, _ := tp.ArcBetween(c, d)
	ae, _ := tp.ArcBetween(a, e)
	abL, cdL, aeL := tp.Arc(ab).Link, tp.Arc(cd).Link, tp.Arc(ae).Link
	if byLink[abL] != byLink[cdL] {
		t.Errorf("parallel corridor links in different groups: %q vs %q", byLink[abL], byLink[cdL])
	}
	if byLink[abL] == byLink[aeL] {
		t.Errorf("distant link clustered into the corridor group %q", byLink[abL])
	}
}
