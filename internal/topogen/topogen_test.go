package topogen

import (
	"runtime"
	"testing"
)

// TestGenerateDeterminism: the same (family, size, seed) must produce a
// byte-identical instance — same topology fingerprint, same endpoints,
// same matched matrix — on repeated runs and regardless of GOMAXPROCS.
func TestGenerateDeterminism(t *testing.T) {
	cfgs := []Config{
		{Family: FamilyFatTree, Size: 4, Seed: 7},
		{Family: FamilyWaxman, Size: 18, Seed: 7},
		{Family: FamilyRing, Size: 9, Seed: 7},
		{Family: FamilyTorus, Size: 4, Seed: 7},
		{Family: FamilyISP, Size: 4, Seed: 7},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(string(cfg.Family), func(t *testing.T) {
			a, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("two runs differ: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
			}
			prev := runtime.GOMAXPROCS(1)
			c, err := Generate(cfg)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatal(err)
			}
			if a.Fingerprint() != c.Fingerprint() {
				t.Fatalf("GOMAXPROCS=1 run differs: %016x vs %016x", a.Fingerprint(), c.Fingerprint())
			}
		})
	}
}

// TestGenerateSeedsAndSizesDiffer: seeds must matter for the seeded
// families, and size must matter everywhere.
func TestGenerateSeedsAndSizesDiffer(t *testing.T) {
	for _, fam := range []Family{FamilyWaxman, FamilyRing, FamilyISP} {
		a, err := Generate(Config{Family: fam, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Config{Family: fam, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() == b.Fingerprint() {
			t.Errorf("%s: seeds 1 and 2 collide", fam)
		}
	}
	for _, fam := range Families() {
		small, err := Generate(Config{Family: fam, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		bigger := small.Config
		bigger.Size += 2 // +2 keeps fat-tree arity even
		big, err := Generate(bigger)
		if err != nil {
			t.Fatal(err)
		}
		if big.Topo.NumNodes() <= small.Topo.NumNodes() {
			t.Errorf("%s: size %d has %d nodes, size %d has %d", fam,
				small.Config.Size, small.Topo.NumNodes(), bigger.Size, big.Topo.NumNodes())
		}
	}
}

// TestGenerateValidity: every family at several sizes and seeds yields
// a valid, connected topology with a routable matched workload.
func TestGenerateValidity(t *testing.T) {
	for _, fam := range Families() {
		sizes := map[Family][]int{
			FamilyFatTree: {2, 4, 6},
			FamilyWaxman:  {2, 5, 16, 40},
			FamilyRing:    {3, 7, 24},
			FamilyTorus:   {3, 5},
			FamilyISP:     {3, 6},
		}[fam]
		for _, size := range sizes {
			for _, seed := range []int64{0, 1, 99} {
				inst, err := Generate(Config{Family: fam, Size: size, Seed: seed})
				if err != nil {
					t.Fatalf("%s-%d-s%d: %v", fam, size, seed, err)
				}
				if err := inst.Topo.Validate(); err != nil {
					t.Errorf("%s: %v", inst.Topo.Name, err)
				}
				if !inst.Topo.Connected() {
					t.Errorf("%s: disconnected", inst.Topo.Name)
				}
				if len(inst.Endpoints) >= 2 {
					if inst.MaxScale <= 0 || inst.TM.Total() <= 0 {
						t.Errorf("%s: degenerate workload (scale %g, total %g)",
							inst.Topo.Name, inst.MaxScale, inst.TM.Total())
					}
				}
			}
		}
	}
}

// TestGenerateEndpointCap: MaxEndpoints caps the OD universe with a
// deterministic, sorted subset.
func TestGenerateEndpointCap(t *testing.T) {
	cfg := Config{Family: FamilyWaxman, Size: 30, Seed: 3, MaxEndpoints: 8}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Endpoints) != 8 {
		t.Fatalf("endpoints = %d, want 8", len(a.Endpoints))
	}
	for i := 1; i < len(a.Endpoints); i++ {
		if a.Endpoints[i-1] >= a.Endpoints[i] {
			t.Fatalf("endpoints not sorted: %v", a.Endpoints)
		}
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("capped endpoint selection is not deterministic")
	}
}

// TestGenerateRejectsBadConfigs: invalid sizes and unknown families
// return errors instead of panicking.
func TestGenerateRejectsBadConfigs(t *testing.T) {
	for _, cfg := range []Config{
		{Family: "nope"},
		{Family: FamilyFatTree, Size: 3},
		{Family: FamilyWaxman, Size: 1},
		{Family: FamilyRing, Size: 2},
		{Family: FamilyTorus, Size: 2},
		{Family: FamilyISP, Size: 2},
	} {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) = nil error, want error", cfg)
		}
	}
}
