package topogen

import (
	"fmt"
	"math"
	"sort"

	"response/internal/topo"
)

// SRLG is a shared-risk link group: a set of links that share a
// physical fate — a fiber conduit, a pod power domain, a PoP — so one
// underlying fault takes them all down together. Correlated-failure
// scenarios cut whole groups instead of independent links.
type SRLG struct {
	// Name identifies the shared risk ("pod2-fabric", "pop0-access",
	// "conduit3", ...).
	Name string
	// Links are the group members, in ascending LinkID order.
	Links []topo.LinkID
}

// defaultProximityRadiusKm is the conduit-sharing radius of the
// geometric SRLG model: link midpoints within this distance are
// assumed to run through the same physical corridor. 45 km sits below
// the regular link spacing of the ring (≈60 km) and torus (≈57 km
// between a node's row/column midpoints) families — their SRLGs stay
// singleton cuts — while Waxman's irregular clusters produce genuine
// multi-link conduits.
const defaultProximityRadiusKm = 45

// deriveSRLGs builds the family's structural shared-risk model. It
// consumes no randomness — groups are a pure function of the already-
// built topology — so adding SRLGs cannot perturb pinned instance
// fingerprints.
func deriveSRLGs(cfg Config, t *topo.Topology, ft *topo.FatTree) []SRLG {
	switch cfg.Family {
	case FamilyFatTree:
		return fatTreeSRLGs(t, ft)
	case FamilyISP:
		return ispSRLGs(t)
	default:
		return ProximitySRLGs(t, defaultProximityRadiusKm)
	}
}

// fatTreeSRLGs models pod-level shared fate: each pod's intra-pod
// fabric (edge↔aggr links, one power/cabling domain per pod) is one
// group, and each pod's core uplinks (its aggr→core bundle, typically
// routed through the same cable tray) is another.
func fatTreeSRLGs(t *topo.Topology, ft *topo.FatTree) []SRLG {
	fabric := map[int][]topo.LinkID{}
	uplink := map[int][]topo.LinkID{}
	for _, l := range t.Links() {
		pa, pb := ft.PodOf(l.A), ft.PodOf(l.B)
		switch {
		case pa >= 0 && pa == pb:
			fabric[pa] = append(fabric[pa], l.ID)
		case pa >= 0 && pb < 0:
			uplink[pa] = append(uplink[pa], l.ID)
		case pb >= 0 && pa < 0:
			uplink[pb] = append(uplink[pb], l.ID)
		}
	}
	var out []SRLG
	for p := 0; p < len(ft.Aggr); p++ {
		if ls := fabric[p]; len(ls) > 0 {
			out = append(out, SRLG{Name: fmt.Sprintf("pod%d-fabric", p), Links: ls})
		}
		if ls := uplink[p]; len(ls) > 0 {
			out = append(out, SRLG{Name: fmt.Sprintf("pod%d-uplink", p), Links: ls})
		}
	}
	return out
}

// ispSRLGs models PoP-level shared fate: all access links terminating
// at one core PoP (the 2.5G uplinks homed there plus the 622M
// protection links arriving from the previous PoP's access routers)
// share that PoP's building and entry conduit; each core↔core trunk is
// its own long-haul fiber.
func ispSRLGs(t *topo.Topology) []SRLG {
	access := map[topo.NodeID][]topo.LinkID{}
	var trunks []topo.Link
	for _, l := range t.Links() {
		ka, kb := t.Node(l.A).Kind, t.Node(l.B).Kind
		switch {
		case ka == topo.KindCore && kb == topo.KindCore:
			trunks = append(trunks, l)
		case ka == topo.KindCore:
			access[l.A] = append(access[l.A], l.ID)
		case kb == topo.KindCore:
			access[l.B] = append(access[l.B], l.ID)
		}
	}
	var out []SRLG
	for _, core := range t.NodesOfKind(topo.KindCore) {
		if ls := access[core]; len(ls) > 0 {
			out = append(out, SRLG{Name: fmt.Sprintf("pop%d-access", core), Links: ls})
		}
	}
	for _, l := range trunks {
		out = append(out, SRLG{Name: fmt.Sprintf("trunk%d", l.ID), Links: []topo.LinkID{l.ID}})
	}
	return out
}

// ProximitySRLGs is the geometric shared-risk model for topologies
// with a planar embedding: links whose midpoints lie within radiusKm
// of each other (transitively, via union-find) are assumed to share a
// physical conduit and form one group. Nodes without coordinates
// cluster at the origin — use only on embedded topologies. The result
// covers every link (singleton groups included) in deterministic
// order.
func ProximitySRLGs(t *topo.Topology, radiusKm float64) []SRLG {
	links := t.Links()
	n := len(links)
	mx := make([]float64, n)
	my := make([]float64, n)
	for i, l := range links {
		a, b := t.Node(l.A), t.Node(l.B)
		mx[i] = (a.KmEast + b.KmEast) / 2
		my[i] = (a.KmNorth + b.KmNorth) / 2
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := mx[i]-mx[j], my[i]-my[j]
			if math.Sqrt(dx*dx+dy*dy) <= radiusKm {
				parent[find(j)] = find(i)
			}
		}
	}
	groups := map[int][]topo.LinkID{}
	for i, l := range links {
		r := find(i)
		groups[r] = append(groups[r], l.ID)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([]SRLG, 0, len(roots))
	for i, r := range roots {
		out = append(out, SRLG{Name: fmt.Sprintf("conduit%d", i), Links: groups[r]})
	}
	return out
}
