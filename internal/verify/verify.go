// Package verify is the full-stack correctness harness of the module:
// an invariant checker that vets installed REsPoNse tables against the
// properties the paper claims (flow conservation per commodity,
// capacity feasibility, delay-bound compliance, always-on
// connectivity, power never above all-on), and a differential oracle
// that cross-checks every incremental engine against its from-scratch
// reference mode on arbitrary — typically topogen-generated —
// instances.
//
// The checker re-derives each property from the raw tables rather than
// trusting the library helpers that produced them, so a planner bug
// that corrupts its own bookkeeping still surfaces. A Report collects
// every violation instead of stopping at the first, which keeps corpus
// runs diagnosable.
package verify

import (
	"errors"
	"fmt"
	"strings"

	"response/internal/core"
	"response/internal/power"
	"response/internal/spf"
	"response/internal/topo"
	"response/internal/topogen"
	"response/internal/traffic"
)

// Opts parameterizes an invariant check.
type Opts struct {
	// Model prices elements for the power invariants (default
	// Cisco12000, the planner's default).
	Model power.Model
	// MaxUtil is the utilization ceiling the plan was computed under
	// (default 1.0).
	MaxUtil float64
	// Beta, when > 0, additionally checks the REsPoNse-lat delay bound:
	// every always-on path must satisfy delay ≤ (1+Beta) × the
	// OSPF-InvCap path delay.
	Beta float64
	// TM, when non-nil, drives the capacity invariants: it is taken as
	// the demand shape, the checker finds the largest multiple of it
	// the installed tables can absorb (TableScale), and the placement
	// at that operating point must respect every arc capacity and the
	// ceiling exactly.
	TM *traffic.Matrix
	// NetScale, when > 0 alongside TM, is the largest multiple of TM
	// routable on the full network (mcf.MaxFeasibleScale); the tables
	// must then retain at least MinShare of it — fixed precomputed
	// paths may not reach the multipath optimum, but they must never be
	// capacity-starved.
	NetScale float64
	// MinShare is the required TableScale/NetScale floor (default 0.1;
	// the generated corpus measures 0.13–1.0 across families, tori and
	// large Waxman meshes at the low end where one thin link on a fixed
	// path caps the global multiplier).
	MinShare float64
}

// Violation is one invariant breach.
type Violation struct {
	// Invariant names the broken property ("flow-conservation",
	// "always-on-connectivity", "capacity", "delay-bound", "power").
	Invariant string
	// Detail locates the breach.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Report is the outcome of one check: the instance it ran on and every
// violation found.
type Report struct {
	Name       string
	Violations []Violation
	// TableScale is the largest multiple of Opts.TM the checked tables
	// absorbed without overload (0 when no TM was supplied). CheckTables
	// computes it for the capacity invariant; callers that also want the
	// share can read it here instead of re-running the bisection.
	TableScale float64
}

// Ok reports whether no invariant was violated.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, else one error summarizing
// every violation.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %s: %d violation(s)", r.Name, len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return errors.New(b.String())
}

func (r *Report) addf(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

const eps = 1e-9

// CheckTables runs every table-level invariant against tb and returns
// the collected violations.
func CheckTables(t *topo.Topology, tb *core.Tables, opts Opts) *Report {
	if opts.Model == nil {
		opts.Model = power.Cisco12000{}
	}
	if opts.MaxUtil <= 0 {
		opts.MaxUtil = 1.0
	}
	r := &Report{Name: t.Name}

	checkFlowConservation(t, tb, r)
	checkAlwaysOnConnectivity(t, tb, r)
	if opts.Beta > 0 {
		checkDelayBound(t, tb, opts.Beta, r)
	}
	checkPower(t, tb, opts, r)
	if opts.TM != nil {
		checkCapacity(t, tb, opts, r)
	}
	return r
}

// checkFlowConservation re-derives per-commodity flow conservation for
// every installed path from its raw arc sequence: at the origin net
// out-degree is +1, at the destination net in-degree is +1, every
// transit node is balanced, and no node is visited twice (the
// unsplittable-path form of constraint 2).
func checkFlowConservation(t *topo.Topology, tb *core.Tables, r *Report) {
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		for li, p := range ps.Levels() {
			if p.Empty() {
				if li == 0 {
					r.addf("flow-conservation", "pair %v has empty always-on path", k)
				}
				continue
			}
			net := map[topo.NodeID]int{}
			visited := map[topo.NodeID]int{}
			prev := topo.NodeID(-1)
			bad := false
			for hi, aid := range p.Arcs {
				if aid < 0 || int(aid) >= t.NumArcs() {
					r.addf("flow-conservation", "pair %v level %d: arc %d out of range", k, li, aid)
					bad = true
					break
				}
				a := t.Arc(aid)
				if hi == 0 {
					// Seed the origin: a path looping back through it
					// balances the net flows, so only the visit count
					// can catch the revisit.
					visited[a.From]++
				} else if a.From != prev {
					r.addf("flow-conservation", "pair %v level %d: discontinuity at hop %d", k, li, hi)
					bad = true
					break
				}
				net[a.From]++
				net[a.To]--
				visited[a.To]++
				prev = a.To
			}
			if bad {
				continue
			}
			for n, d := range net {
				want := 0
				if n == k[0] {
					want = 1
				} else if n == k[1] {
					want = -1
				}
				if d != want {
					r.addf("flow-conservation",
						"pair %v level %d: node %d net flow %+d, want %+d", k, li, n, d, want)
				}
			}
			for n, c := range visited {
				if c > 1 {
					r.addf("flow-conservation", "pair %v level %d: node %d visited %d times", k, li, n, c)
				}
			}
		}
	}
}

// checkAlwaysOnConnectivity asserts that the always-on set alone
// connects every planned pair: each pair's always-on path runs wholly
// over always-on elements, and the powered-on subgraph is mutually
// reachable.
func checkAlwaysOnConnectivity(t *topo.Topology, tb *core.Tables, r *Report) {
	if tb.AlwaysOnSet == nil {
		if len(tb.Pairs) > 0 {
			r.addf("always-on-connectivity", "tables have %d pairs but no always-on set", len(tb.Pairs))
		}
		return
	}
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		if ps.AlwaysOn.Empty() {
			continue // reported by flow-conservation
		}
		if !ps.AlwaysOn.ActiveUnder(t, tb.AlwaysOnSet) {
			r.addf("always-on-connectivity", "pair %v always-on path leaves the always-on set", k)
		}
	}
	if !t.ConnectedUnder(tb.AlwaysOnSet) {
		r.addf("always-on-connectivity", "always-on set does not connect all powered nodes")
	}
}

// checkDelayBound asserts the REsPoNse-lat constraint: every always-on
// path's propagation delay stays within (1+β) of the OSPF-InvCap
// reference path's.
func checkDelayBound(t *topo.Topology, tb *core.Tables, beta float64, r *Report) {
	opts := spf.Options{Weight: spf.InvCap()}
	trees := map[topo.NodeID]spf.Tree{}
	for _, k := range tb.PairKeys() {
		ps := tb.Pairs[k]
		if ps.AlwaysOn.Empty() {
			continue
		}
		tree, ok := trees[k[0]]
		if !ok {
			tree = spf.ShortestTree(t, k[0], opts)
			trees[k[0]] = tree
		}
		ref, ok := tree.PathTo(t, k[1])
		if !ok {
			r.addf("delay-bound", "pair %v has no OSPF reference path", k)
			continue
		}
		bound := (1 + beta) * ref.Latency(t)
		if got := ps.AlwaysOn.Latency(t); got > bound+1e-12 {
			r.addf("delay-bound", "pair %v always-on delay %.3gs exceeds (1+%.2f)×OSPF = %.3gs",
				k, got, beta, bound)
		}
	}
}

// checkPower asserts the power-side invariants: the always-on set
// never draws more than the all-on network, and (with a matrix) the
// evaluated placement's power lies between always-on and all-on.
func checkPower(t *topo.Topology, tb *core.Tables, opts Opts, r *Report) {
	full := power.FullWatts(t, opts.Model)
	if tb.AlwaysOnSet == nil {
		return
	}
	aon := power.NetworkWatts(t, opts.Model, tb.AlwaysOnSet)
	if aon > full+eps {
		r.addf("power", "always-on set draws %.1f W > all-on %.1f W", aon, full)
	}
	if opts.TM == nil {
		return
	}
	ev := tb.Evaluate(opts.TM, opts.Model, opts.MaxUtil)
	if ev.Watts > full+eps {
		r.addf("power", "evaluated placement draws %.1f W > all-on %.1f W", ev.Watts, full)
	}
	if ev.Watts < aon-eps {
		r.addf("power", "evaluated placement draws %.1f W < always-on %.1f W", ev.Watts, aon)
	}
}

// CheckSRLGs vets a shared-risk-group model against its topology: every
// group must be non-empty with a unique name, every member link must
// exist, no group may list a link twice, and no single group may cover
// the whole topology (a storm that cuts one group must leave something
// standing for the always-correct fallback to run on). Violations use
// the "srlg" invariant.
func CheckSRLGs(t *topo.Topology, srlgs []topogen.SRLG) *Report {
	r := &Report{Name: t.Name}
	names := make(map[string]bool, len(srlgs))
	for gi, g := range srlgs {
		if g.Name == "" {
			r.addf("srlg", "group %d has no name", gi)
		} else if names[g.Name] {
			r.addf("srlg", "duplicate group name %q", g.Name)
		}
		names[g.Name] = true
		if len(g.Links) == 0 {
			r.addf("srlg", "group %q is empty", g.Name)
			continue
		}
		if len(g.Links) >= t.NumLinks() {
			r.addf("srlg", "group %q covers all %d links", g.Name, t.NumLinks())
		}
		seen := make(map[topo.LinkID]bool, len(g.Links))
		for _, l := range g.Links {
			if l < 0 || int(l) >= t.NumLinks() {
				r.addf("srlg", "group %q: link %d out of range", g.Name, l)
				continue
			}
			if seen[l] {
				r.addf("srlg", "group %q lists link %d twice", g.Name, l)
			}
			seen[l] = true
		}
	}
	return r
}

// TableScale returns (to ~2 % precision) the largest multiplier s such
// that base scaled by s places onto the installed tables without
// overload at the given ceiling — the table-level analog of
// mcf.MaxFeasibleScale. The ratio of the two is the share of the
// network's routable capacity the precomputed tables retain (§4.2's
// sensitivity claim, quantified).
func TableScale(t *topo.Topology, tb *core.Tables, base *traffic.Matrix,
	m power.Model, maxUtil float64) float64 {

	if m == nil {
		m = power.Cisco12000{}
	}
	if maxUtil <= 0 {
		maxUtil = 1.0
	}
	fits := func(s float64) bool {
		ev := tb.Evaluate(base.Scale(s), m, maxUtil)
		return ev.Overloaded == 0
	}
	if base.Len() == 0 || !fits(1e-12) {
		return 0
	}
	lo, hi := 0.0, 1.0
	for fits(hi) {
		lo = hi
		hi *= 2
		if hi > 1e18 {
			return lo
		}
	}
	for hi-lo > 0.02*lo {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// checkCapacity asserts capacity feasibility under the stress factor:
// the installed tables must absorb a non-trivial share of the
// network's routable load (the §4.2 claim that stress-excluded
// on-demand tables retain capacity), and at that operating point the
// placement must respect the ceiling on every arc.
func checkCapacity(t *topo.Topology, tb *core.Tables, opts Opts, r *Report) {
	scale := TableScale(t, tb, opts.TM, opts.Model, opts.MaxUtil)
	r.TableScale = scale
	if opts.NetScale > 0 {
		minShare := opts.MinShare
		if minShare <= 0 {
			minShare = 0.1
		}
		if scale < minShare*opts.NetScale {
			r.addf("capacity", "tables absorb only %.3g of the network's %.3g routable scale (share %.3f < %.2f)",
				scale, opts.NetScale, scale/opts.NetScale, minShare)
		}
	}
	if scale <= 0 {
		if opts.TM.Len() > 0 {
			r.addf("capacity", "tables absorb none of the matched demand shape")
		}
		return
	}
	ev := tb.Evaluate(opts.TM.Scale(scale), opts.Model, opts.MaxUtil)
	if ev.Overloaded > 0 {
		r.addf("capacity", "%d of %d demands overflow the tables at their own supported scale %.3g",
			ev.Overloaded, opts.TM.Len(), scale)
		return
	}
	if ev.MaxUtil > opts.MaxUtil+eps {
		r.addf("capacity", "placement reaches %.4f utilization > ceiling %.4f",
			ev.MaxUtil, opts.MaxUtil)
	}
	// Independent re-derivation: accumulate per-arc load from the raw
	// per-level placement and compare against capacities directly.
	load := make([]float64, t.NumArcs())
	for k, placed := range ev.Placed {
		ps := tb.Pairs[k]
		levels := ps.Levels()
		for li, amt := range placed {
			if amt <= 0 {
				continue
			}
			for _, aid := range levels[li].Arcs {
				load[aid] += amt
			}
		}
	}
	for i, l := range load {
		capBits := t.Arc(topo.ArcID(i)).Capacity * opts.MaxUtil
		if l > capBits*(1+1e-6) {
			r.addf("capacity", "arc %d carries %.3g bps > %.3g allowed", i, l, capBits)
		}
	}
}
