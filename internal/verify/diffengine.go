package verify

import (
	"fmt"
	"math/rand"

	"response/internal/spf"
	"response/internal/topo"
)

// DiffPathEngine is the differential oracle for the goal-directed path
// engines: it replays a deterministic query workload — single-pair and
// K-shortest searches over the instance's endpoint universe, under the
// option shapes the planner actually issues (plain latency, powered-down
// subsets, avoid sets, load-penalized weights) — once through the
// reference engine and once through eng, and reports a violation for
// any divergence in reachability verdict, path weight, arc sequence or
// candidate emission order. The goal-directed engines are designed to
// be certified-exact, so the expectation is byte equality, not
// approximate equality; the companion whole-plan check (identical plan
// fingerprints under every engine) lives in the corpus tests.
//
// maxPairs caps the ordered endpoint pairs exercised (≤ 0 selects 64);
// pairs beyond the cap are sampled deterministically from seed.
func DiffPathEngine(t *topo.Topology, endpoints []topo.NodeID, eng spf.Engine, k, maxPairs int, seed int64) *Report {
	r := &Report{Name: fmt.Sprintf("diff-path-engine/%s/%s", t.Name, eng)}
	if k <= 0 {
		k = 4
	}
	if maxPairs <= 0 {
		maxPairs = 64
	}
	pairs := enginePairs(endpoints, maxPairs, seed)
	if len(pairs) == 0 {
		r.addf("path-engine-queries", "no endpoint pairs to exercise on %s", t.Name)
		return r
	}
	for _, v := range engineVariants(t, seed) {
		refWS, engWS := spf.NewWorkspace(), spf.NewWorkspace()
		sub := v.opts
		sub.Engine = eng
		for _, pr := range pairs {
			o, d := pr[0], pr[1]
			refP, refOK := refWS.ShortestPath(t, o, d, v.opts)
			gotP, gotOK := engWS.ShortestPath(t, o, d, sub)
			if refOK != gotOK {
				r.addf("path-engine-verdict", "%s %v→%v: engine %s verdict %v, reference %v",
					v.name, o, d, eng, gotOK, refOK)
				continue
			}
			if refOK && !sameArcSeq(refP.Arcs, gotP.Arcs) {
				r.addf("path-engine-path", "%s %v→%v: engine %s path %v, reference %v",
					v.name, o, d, eng, gotP.Arcs, refP.Arcs)
				continue
			}
			if refOK {
				rw := spf.PathWeight(t, refP, v.opts)
				gw := spf.PathWeight(t, gotP, v.opts)
				if rw != gw {
					r.addf("path-engine-distance", "%s %v→%v: engine %s distance %v, reference %v",
						v.name, o, d, eng, gw, rw)
				}
			}
			refK := refWS.KShortest(t, o, d, k, v.opts)
			gotK := engWS.KShortest(t, o, d, k, sub)
			if len(refK) != len(gotK) {
				r.addf("path-engine-kcount", "%s %v→%v k=%d: engine %s returned %d paths, reference %d",
					v.name, o, d, k, eng, len(gotK), len(refK))
				continue
			}
			for i := range refK {
				if !sameArcSeq(refK[i].Arcs, gotK[i].Arcs) {
					r.addf("path-engine-korder", "%s %v→%v k=%d rank %d: engine %s path %v, reference %v",
						v.name, o, d, k, i, eng, gotK[i].Arcs, refK[i].Arcs)
					break
				}
			}
		}
	}
	return r
}

// enginePairs enumerates ordered endpoint pairs, sampling down to limit
// deterministically when the full cross product is larger.
func enginePairs(endpoints []topo.NodeID, limit int, seed int64) [][2]topo.NodeID {
	n := len(endpoints)
	total := n * (n - 1)
	out := make([][2]topo.NodeID, 0, limit)
	if total <= limit {
		for _, o := range endpoints {
			for _, d := range endpoints {
				if o != d {
					out = append(out, [2]topo.NodeID{o, d})
				}
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[[2]topo.NodeID]bool{}
	for len(out) < limit && len(seen) < total {
		o := endpoints[rng.Intn(n)]
		d := endpoints[rng.Intn(n)]
		key := [2]topo.NodeID{o, d}
		if o == d || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

// engineVariant is one Options shape of the differential workload.
type engineVariant struct {
	name string
	opts spf.Options
}

// engineVariants mirrors the option shapes the planning stack issues:
// plain latency (always-on + failover searches), a powered-down active
// subset (subset-search trials), an avoid set (stress exclusion and
// failure scenarios), and a ≥-latency load-style weight (the
// feasibility router's penalized searches).
func engineVariants(t *topo.Topology, seed int64) []engineVariant {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	partial := topo.AllOn(t)
	for l := range partial.Link {
		if rng.Intn(5) == 0 {
			partial.Link[l] = false
		}
	}
	partial.EnforceInvariants(t)
	avoided := make([]bool, t.NumLinks())
	for l := range avoided {
		if rng.Intn(7) == 0 {
			avoided[l] = true
		}
	}
	return []engineVariant{
		{name: "plain", opts: spf.Options{}},
		{name: "active-subset", opts: spf.Options{Active: partial}},
		{name: "avoid-set", opts: spf.Options{Avoid: func(a topo.Arc) bool { return avoided[a.Link] }}},
		{name: "load-weight", opts: spf.Options{
			Weight:       func(a topo.Arc) float64 { return a.Latency * (1 + 0.25*float64(a.ID%7)) },
			LatencyBound: true,
		}},
	}
}

func sameArcSeq(a, b []topo.ArcID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
