package verify

import (
	"context"
	"fmt"
	"math"
	"sort"

	"response"
	"response/internal/core"
	"response/internal/lifecycle"
	"response/internal/mcf"
	"response/internal/power"
	"response/internal/sim"
	"response/internal/te"
	"response/internal/topo"
	"response/internal/traffic"
)

// DiffGreedy cross-checks the delta-rerouting greedy engine against
// its from-scratch reference (mcf's FullReroute mode) on one demand
// set: for every candidate ordering, the incremental and reference
// runs must agree on the active set, the routing and the resulting
// power. This is the mcf equivalence property lifted from three pinned
// topologies to arbitrary generated instances.
func DiffGreedy(t *topo.Topology, demands []traffic.Demand, m power.Model, seed int64) *Report {
	if m == nil {
		m = power.Cisco12000{}
	}
	r := &Report{Name: t.Name}
	for _, ord := range []mcf.Order{mcf.PowerDesc, mcf.PowerAsc, mcf.DegreeAsc, mcf.Random} {
		opts := mcf.GreedyOpts{Order: ord, Seed: seed}
		aInc, rInc, errInc := mcf.GreedyMinSubset(t, demands, m, opts)
		opts.FullReroute = true
		aRef, rRef, errRef := mcf.GreedyMinSubset(t, demands, m, opts)
		label := fmt.Sprintf("order %d", ord)
		if (errInc == nil) != (errRef == nil) {
			r.addf("diff-greedy", "%s: incremental err=%v, reference err=%v", label, errInc, errRef)
			continue
		}
		if errInc != nil {
			continue
		}
		if !aInc.Equal(aRef) {
			r.addf("diff-greedy", "%s: active sets differ (%016x vs %016x)",
				label, aInc.Fingerprint(), aRef.Fingerprint())
		}
		if !routingsEqual(rInc, rRef) {
			r.addf("diff-greedy", "%s: routings differ", label)
		}
		wi, wr := power.NetworkWatts(t, m, aInc), power.NetworkWatts(t, m, aRef)
		if math.Abs(wi-wr) > eps {
			r.addf("diff-greedy", "%s: power differs: %.3f vs %.3f W", label, wi, wr)
		}
	}
	return r
}

func routingsEqual(a, b *mcf.Routing) bool {
	if len(a.Paths) != len(b.Paths) {
		return false
	}
	for k, p := range a.Paths {
		q, ok := b.Paths[k]
		if !ok || !p.Equal(q) {
			return false
		}
	}
	return true
}

// DiffAllocators cross-checks the simulator's incremental
// component-based max-min allocator against the global FullAllocate
// reference: two simulators carrying identical flows over tb's
// installed levels must settle to identical per-flow rates and an
// identical state fingerprint.
func DiffAllocators(t *topo.Topology, tb *core.Tables, tm *traffic.Matrix) *Report {
	r := &Report{Name: t.Name}
	build := func(full bool) (*sim.Simulator, []*sim.Flow, error) {
		s := sim.New(t, sim.Opts{
			WakeUpDelay:    1,
			SleepAfterIdle: 30,
			PinnedOn:       tb.AlwaysOnSet,
			FullAllocate:   full,
		})
		var flows []*sim.Flow
		for _, d := range tm.Demands() {
			ps, ok := tb.PathSetFor(d.O, d.D)
			if !ok {
				continue
			}
			f, err := s.AddFlow(d.O, d.D, d.Rate, ps.Levels())
			if err != nil {
				return nil, nil, err
			}
			flows = append(flows, f)
		}
		s.Run(120)
		return s, flows, nil
	}
	sInc, fInc, errInc := build(false)
	sRef, fRef, errRef := build(true)
	if (errInc == nil) != (errRef == nil) || errInc != nil {
		if (errInc == nil) != (errRef == nil) {
			r.addf("diff-alloc", "incremental err=%v, reference err=%v", errInc, errRef)
		}
		return r
	}
	if fi, fr := sInc.StateFingerprint(), sRef.StateFingerprint(); fi != fr {
		r.addf("diff-alloc", "state fingerprints differ: %016x vs %016x", fi, fr)
	}
	for i := range fInc {
		ri, rr := fInc[i].Rate(), fRef[i].Rate()
		if math.Abs(ri-rr) > 1e-6*(1+rr) {
			r.addf("diff-alloc", "flow %d->%d rate %.6g vs reference %.6g",
				fInc[i].O, fInc[i].D, ri, rr)
		}
	}
	if ui, ur := sInc.MaxArcUtil(), sRef.MaxArcUtil(); math.Abs(ui-ur) > 1e-9 {
		r.addf("diff-alloc", "max utilization %.9f vs reference %.9f", ui, ur)
	}
	return r
}

// DiffSwap cross-checks the lifecycle hot-swap against a cold restart:
// a controller that starts on planA and hot-swaps to planB must reach
// the same steady state — per-flow rates and the simulator state
// fingerprint — as a controller started fresh on planB. Demands are
// derated below the activation threshold so neither rig shifts and the
// steady states are comparable.
func DiffSwap(planA, planB *response.Plan, tm *traffic.Matrix) *Report {
	t := planA.Topology()
	r := &Report{Name: t.Name}
	// Derate the workload so that even fully aggregated on either
	// plan's always-on paths no arc crosses a quarter of the 0.9
	// activation threshold: the oracle needs both rigs shift-free.
	worst := math.Max(AlwaysOnMaxUtil(t, planA, tm), AlwaysOnMaxUtil(t, planB, tm))
	derate := 1.0
	if worst > 0 {
		derate = 0.25 * 0.9 / worst
	}
	if derate > 1 {
		derate = 1
	}

	type rig struct {
		s     *sim.Simulator
		c     *te.Controller
		flows []*sim.Flow
	}
	build := func(p *response.Plan) (rig, error) {
		s := sim.New(t, sim.Opts{
			WakeUpDelay:    5,
			SleepAfterIdle: 60,
			PinnedOn:       p.AlwaysOnSet(),
		})
		c := te.NewController(s, te.Opts{Threshold: 0.9, Gamma: 0.5, Period: 60})
		rg := rig{s: s, c: c}
		for _, d := range tm.Demands() {
			ps, ok := p.PathSet(d.O, d.D)
			if !ok {
				continue
			}
			f, err := s.AddFlow(d.O, d.D, d.Rate*derate, ps.Levels())
			if err != nil {
				return rig{}, err
			}
			c.Manage(f)
			rg.flows = append(rg.flows, f)
		}
		c.Start()
		return rg, nil
	}

	swapped, errA := build(planA)
	fresh, errB := build(planB)
	if errA != nil || errB != nil {
		r.addf("diff-swap", "rig build failed: %v / %v", errA, errB)
		return r
	}
	swapped.s.Run(120)
	mgr := lifecycle.New(swapped.s, swapped.c, planA,
		func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
			return nil, fmt.Errorf("verify: replan must not fire during StageAndSwap")
		}, lifecycle.Opts{CheckEvery: 1e9, NoPowerGate: true})
	mgr.Start()
	if err := mgr.StageAndSwap(planB); err != nil {
		r.addf("diff-swap", "stage: %v", err)
		return r
	}
	// Drain retired tables and let idle links fall back asleep, on both
	// rigs, so the steady states are history-free.
	swapped.s.Run(1200)
	fresh.s.Run(1200)
	if met := mgr.Metrics(); met.SwapsDone != 1 {
		if met.Unchanged == 1 {
			// Identical tables: nothing migrated, states must still match.
		} else {
			r.addf("diff-swap", "swap did not complete: %+v", met)
			return r
		}
	}
	if swapped.c.Shifts != 0 || fresh.c.Shifts != 0 {
		r.addf("diff-swap", "controller shifted at derated load (%d/%d); oracle regime broken",
			swapped.c.Shifts, fresh.c.Shifts)
		return r
	}

	a, b := steadyRates(swapped.s), steadyRates(fresh.s)
	if len(a) != len(b) {
		r.addf("diff-swap", "live flow count %d vs fresh %d", len(a), len(b))
		return r
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] || a[i][2] != b[i][2] {
			r.addf("diff-swap", "flow multiset mismatch at %d: %v vs %v", i, a[i], b[i])
			return r
		}
		if math.Abs(a[i][3]-b[i][3]) > 1e-9*(1+math.Abs(b[i][3])) {
			r.addf("diff-swap", "pair %g->%g: post-swap rate %g vs fresh %g",
				a[i][0], a[i][1], a[i][3], b[i][3])
		}
	}
	if fa, fb := swapped.s.StateFingerprint(), fresh.s.StateFingerprint(); fa != fb {
		r.addf("diff-swap", "state fingerprint %016x vs fresh %016x", fa, fb)
	}
	return r
}

// DiffWarmStart cross-checks a warm-started plan against the cold
// plan it was seeded from. The contract it proves is the warm-start
// acceptance rule: the plans are either fingerprint-identical (always
// the case when every stage stays in the capacity-slack regime), or
// they may differ only in on-demand/failover tables while (a) the
// always-on stage — computed in the slack regime under the ε demand —
// remains byte-identical and (b) the power of the warm plan's full
// installed element set stays within (1+tol)× the cold plan's. The
// returned flag reports fingerprint identity so callers can surface
// power-equal-but-not-identical instances explicitly. tol <= 0 selects
// mcf.DefaultWarmTolerance.
func DiffWarmStart(t *topo.Topology, cold, warm *response.Plan, tol float64) (*Report, bool) {
	r := &Report{Name: t.Name}
	if tol <= 0 {
		tol = mcf.DefaultWarmTolerance
	}
	if cold.Fingerprint() == warm.Fingerprint() {
		return r, true
	}
	if !warm.AlwaysOnSet().Equal(cold.AlwaysOnSet()) {
		r.addf("diff-warm", "always-on sets differ (%016x vs %016x): slack-regime stage must be exact",
			warm.AlwaysOnSet().Fingerprint(), cold.AlwaysOnSet().Fingerprint())
	}
	cw := installedWatts(t, cold)
	ww := installedWatts(t, warm)
	if ww > (1+tol)*cw+eps {
		r.addf("diff-warm", "installed power %.3f W exceeds (1+%.2g)× cold %.3f W", ww, tol, cw)
	}
	return r, false
}

// installedWatts prices the union of every installed level's elements
// — the plan-wide analog of the subset search's objective.
func installedWatts(t *topo.Topology, plan *response.Plan) float64 {
	a := topo.AllOff(t)
	for _, k := range plan.Pairs() {
		ps, _ := plan.PathSet(k[0], k[1])
		for _, p := range ps.Levels() {
			a.ActivatePath(t, p)
		}
	}
	return power.NetworkWatts(t, power.Cisco12000{}, a)
}

// AlwaysOnMaxUtil returns the worst arc utilization reached when every
// demand of tm aggregates onto its always-on path under plan — the
// quantity swap rigs derate against to stay shift-free.
func AlwaysOnMaxUtil(t *topo.Topology, plan *response.Plan, tm *traffic.Matrix) float64 {
	load := make([]float64, t.NumArcs())
	for _, d := range tm.Demands() {
		ps, ok := plan.PathSet(d.O, d.D)
		if !ok {
			continue
		}
		for _, aid := range ps.AlwaysOn.Arcs {
			load[aid] += d.Rate
		}
	}
	var worst float64
	for i, l := range load {
		if l == 0 {
			continue
		}
		if u := l / t.Arc(topo.ArcID(i)).Capacity; u > worst {
			worst = u
		}
	}
	return worst
}

// steadyRates returns the sorted (o, d, demand, rate) view of a
// simulator's live flows, the comparison key of the swap oracle.
func steadyRates(s *sim.Simulator) [][4]float64 {
	var out [][4]float64
	for _, f := range s.Flows() {
		if f.Removed() {
			continue
		}
		out = append(out, [4]float64{float64(f.O), float64(f.D), f.Demand, f.Rate()})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < 4; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
