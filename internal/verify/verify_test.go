package verify_test

// The generated-corpus harness: every invariant and every differential
// oracle, run over a corpus of topogen instances spanning all five
// families. This is the module's property-based correctness story —
// the planner is no longer only pinned on three fixed topologies, it
// must hold its invariants on any network the generator can produce.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"response"
	"response/internal/spf"
	"response/internal/topo"
	"response/internal/topogen"
	"response/internal/traffic"
	"response/internal/verify"
)

// corpusSpec enumerates the (family, size, seed) instances of the
// default corpus: 28 instances across the five families, sized so the
// whole harness stays well under the 60-second budget.
type corpusSpec struct {
	family topogen.Family
	sizes  []int
	seeds  []int64
}

func corpus() []corpusSpec {
	return []corpusSpec{
		{topogen.FamilyFatTree, []int{4, 6}, []int64{1, 2}},
		{topogen.FamilyWaxman, []int{12, 20, 28}, []int64{1, 2}},
		{topogen.FamilyRing, []int{8, 14, 20}, []int64{1, 2}},
		{topogen.FamilyTorus, []int{3, 4, 5}, []int64{1, 2}},
		{topogen.FamilyISP, []int{3, 4, 5}, []int64{1, 2}},
	}
}

// planInstance plans a generated instance through the public facade
// with the deterministic orderings only (the corpus measures
// invariants, not solution quality, and 3 orderings keep 28 plans
// fast).
func planInstance(t *testing.T, inst *topogen.Instance, opts ...response.Option) *response.Plan {
	t.Helper()
	base := []response.Option{
		response.WithEndpoints(inst.Endpoints),
		response.WithRestarts(0),
		response.WithSeed(inst.Config.Seed),
	}
	plan, err := response.NewPlanner(base...).Plan(context.Background(), inst.Topo, opts...)
	if err != nil {
		t.Fatalf("%s: plan: %v", inst.Topo.Name, err)
	}
	return plan
}

// TestGeneratedCorpusInvariants plans every corpus instance and runs
// the full invariant checker plus the artifact round trip on it.
func TestGeneratedCorpusInvariants(t *testing.T) {
	n := 0
	for _, spec := range corpus() {
		for _, size := range spec.sizes {
			for _, seed := range spec.seeds {
				cfg := topogen.Config{Family: spec.family, Size: size, Seed: seed}
				n++
				t.Run(fmt.Sprintf("%s-%d-s%d", spec.family, size, seed), func(t *testing.T) {
					t.Parallel()
					inst, err := topogen.Generate(cfg)
					if err != nil {
						t.Fatal(err)
					}
					plan := planInstance(t, inst)
					opts := verify.Opts{TM: inst.Shape, NetScale: inst.MaxScale}
					rep := verify.CheckTables(inst.Topo, plan.Tables(), opts)
					if err := rep.Err(); err != nil {
						t.Error(err)
					}

					// Artifact round trip: serialize, reload against the
					// generated topology, and re-check the loaded tables.
					var buf bytes.Buffer
					if _, err := plan.WriteTo(&buf); err != nil {
						t.Fatalf("write artifact: %v", err)
					}
					loaded, err := response.ReadPlanFrom(bytes.NewReader(buf.Bytes()), inst.Topo)
					if err != nil {
						t.Fatalf("read artifact: %v", err)
					}
					if loaded.Fingerprint() != plan.Fingerprint() {
						t.Errorf("artifact round trip changed fingerprint: %016x vs %016x",
							loaded.Fingerprint(), plan.Fingerprint())
					}
					if err := verify.CheckTables(inst.Topo, loaded.Tables(), opts).Err(); err != nil {
						t.Errorf("loaded tables: %v", err)
					}
				})
			}
		}
	}
	if n < 24 {
		t.Fatalf("corpus has %d instances, want >= 24", n)
	}
}

// TestGeneratedCorpusDiffGreedy runs the incremental-vs-FullReroute
// planning oracle on the small corpus instances, in both the
// capacity-slack (ε) and capacity-binding (matched TM) regimes.
func TestGeneratedCorpusDiffGreedy(t *testing.T) {
	for _, cfg := range []topogen.Config{
		{Family: topogen.FamilyFatTree, Size: 4, Seed: 1},
		{Family: topogen.FamilyWaxman, Size: 12, Seed: 1},
		{Family: topogen.FamilyWaxman, Size: 12, Seed: 2},
		{Family: topogen.FamilyRing, Size: 8, Seed: 1},
		{Family: topogen.FamilyTorus, Size: 3, Seed: 1},
		{Family: topogen.FamilyISP, Size: 3, Seed: 1},
		{Family: topogen.FamilyISP, Size: 3, Seed: 2},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-%d-s%d", cfg.Family, cfg.Size, cfg.Seed), func(t *testing.T) {
			t.Parallel()
			inst, err := topogen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			eps := traffic.Uniform(inst.Endpoints, 1).Demands()
			if rep := verify.DiffGreedy(inst.Topo, eps, nil, cfg.Seed); !rep.Ok() {
				t.Errorf("epsilon demands: %v", rep.Err())
			}
			if tight := inst.TM.Demands(); len(tight) > 0 {
				if rep := verify.DiffGreedy(inst.Topo, tight, nil, cfg.Seed); !rep.Ok() {
					t.Errorf("matched demands: %v", rep.Err())
				}
			}
		})
	}
}

// TestGeneratedCorpusDiffWarmStart runs the warm-start differential
// oracle over the full corpus: every instance is planned cold and then
// warm-started from its own cold plan, and the warm plan must be
// fingerprint-identical — or power-equal within the documented
// tolerance with a byte-identical always-on stage, reported explicitly
// — with zero invariant violations. This is the end-to-end proof that
// incremental replans cannot drift.
func TestGeneratedCorpusDiffWarmStart(t *testing.T) {
	identical, powerEqual := 0, 0
	var mu sync.Mutex
	t.Run("instances", func(t *testing.T) {
		for _, spec := range corpus() {
			for _, size := range spec.sizes {
				for _, seed := range spec.seeds {
					cfg := topogen.Config{Family: spec.family, Size: size, Seed: seed}
					t.Run(fmt.Sprintf("%s-%d-s%d", spec.family, size, seed), func(t *testing.T) {
						t.Parallel()
						inst, err := topogen.Generate(cfg)
						if err != nil {
							t.Fatal(err)
						}
						cold := planInstance(t, inst)
						warm := planInstance(t, inst, response.WithWarmStart(cold))
						rep, same := verify.DiffWarmStart(inst.Topo, cold, warm, 0)
						if !rep.Ok() {
							t.Error(rep.Err())
						}
						mu.Lock()
						if same {
							identical++
						} else {
							powerEqual++
							t.Logf("%s: warm plan power-equal within tolerance but not fingerprint-identical", inst.Topo.Name)
						}
						mu.Unlock()

						// The warm plan must satisfy every table invariant,
						// not merely match the cold plan's power.
						opts := verify.Opts{TM: inst.Shape, NetScale: inst.MaxScale}
						if err := verify.CheckTables(inst.Topo, warm.Tables(), opts).Err(); err != nil {
							t.Error(err)
						}
					})
				}
			}
		}
	})
	t.Logf("warm-start corpus: %d fingerprint-identical, %d power-equal within tolerance",
		identical, powerEqual)
}

// TestGeneratedCorpusDiffAllocators runs the incremental-vs-global
// allocator oracle over every corpus instance: the simulator loaded
// with the matched matrix over the planned tables must settle
// identically in both modes.
func TestGeneratedCorpusDiffAllocators(t *testing.T) {
	for _, cfg := range []topogen.Config{
		{Family: topogen.FamilyFatTree, Size: 4, Seed: 1},
		{Family: topogen.FamilyWaxman, Size: 20, Seed: 1},
		{Family: topogen.FamilyWaxman, Size: 20, Seed: 2},
		{Family: topogen.FamilyRing, Size: 14, Seed: 1},
		{Family: topogen.FamilyTorus, Size: 4, Seed: 1},
		{Family: topogen.FamilyISP, Size: 4, Seed: 1},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-%d-s%d", cfg.Family, cfg.Size, cfg.Seed), func(t *testing.T) {
			t.Parallel()
			inst, err := topogen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			plan := planInstance(t, inst)
			if rep := verify.DiffAllocators(inst.Topo, plan.Tables(), inst.TM); !rep.Ok() {
				t.Error(rep.Err())
			}
		})
	}
}

// TestGeneratedCorpusDiffSwap runs the post-swap-vs-fresh-controller
// oracle on one instance per seeded family: hot-swapping from the
// ε-planned tables to a demand-aware replan must leave the runtime in
// the state a cold restart on the new plan would reach.
func TestGeneratedCorpusDiffSwap(t *testing.T) {
	for _, cfg := range []topogen.Config{
		{Family: topogen.FamilyWaxman, Size: 16, Seed: 3},
		{Family: topogen.FamilyRing, Size: 10, Seed: 3},
		{Family: topogen.FamilyISP, Size: 4, Seed: 3},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-%d-s%d", cfg.Family, cfg.Size, cfg.Seed), func(t *testing.T) {
			t.Parallel()
			inst, err := topogen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			planA := planInstance(t, inst)
			planB := planInstance(t, inst, response.WithLowMatrix(inst.TM))
			if rep := verify.DiffSwap(planA, planB, inst.TM); !rep.Ok() {
				t.Error(rep.Err())
			}
		})
	}
}

// TestGeneratedDelayBound plans geometrically embedded instances as
// REsPoNse-lat and checks the delay-bound invariant end to end.
func TestGeneratedDelayBound(t *testing.T) {
	for _, cfg := range []topogen.Config{
		{Family: topogen.FamilyWaxman, Size: 16, Seed: 1},
		{Family: topogen.FamilyISP, Size: 4, Seed: 1},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-%d-s%d", cfg.Family, cfg.Size, cfg.Seed), func(t *testing.T) {
			t.Parallel()
			inst, err := topogen.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			plan := planInstance(t, inst, response.WithDelayBound(0.25))
			rep := verify.CheckTables(inst.Topo, plan.Tables(),
				verify.Opts{TM: inst.Shape, NetScale: inst.MaxScale, Beta: 0.25})
			if err := rep.Err(); err != nil {
				t.Error(err)
			}
			if plan.Variant() != "REsPoNse-lat" {
				t.Errorf("variant = %q, want REsPoNse-lat", plan.Variant())
			}
		})
	}
}

// TestCheckTablesDetectsCorruption sanity-checks the checker itself:
// deliberately corrupted tables must be flagged, not waved through.
func TestCheckTablesDetectsCorruption(t *testing.T) {
	inst, err := topogen.Generate(topogen.Config{Family: topogen.FamilyRing, Size: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := planInstance(t, inst)
	tb := plan.Tables()

	// Break flow conservation: truncate one always-on path.
	k := tb.PairKeys()[0]
	saved := tb.Pairs[k].AlwaysOn
	if saved.Len() < 1 {
		t.Fatal("first pair has an empty always-on path")
	}
	tb.Pairs[k].AlwaysOn.Arcs = saved.Arcs[:saved.Len()-1]
	rep := verify.CheckTables(inst.Topo, tb, verify.Opts{})
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == "flow-conservation" {
			found = true
		}
	}
	if !found && inst.Topo.Node(saved.Destination(inst.Topo)).ID == k[1] {
		t.Errorf("checker missed a truncated path: %v", rep.Violations)
	}
	tb.Pairs[k].AlwaysOn = saved

	// Loop a path back through its origin: net flows stay balanced, so
	// only the visit count can catch it.
	a01, ok1 := inst.Topo.ArcBetween(0, 1)
	a10, ok2 := inst.Topo.ArcBetween(1, 0)
	a07, ok3 := inst.Topo.ArcBetween(0, 7)
	if ok1 && ok2 && ok3 {
		kl := [2]topo.NodeID{0, 7}
		pl, have := tb.Pairs[kl]
		if !have {
			t.Fatalf("ring plan lacks pair %v", kl)
		}
		savedLoop := pl.AlwaysOn
		pl.AlwaysOn = topo.Path{Arcs: []topo.ArcID{a01, a10, a07}}
		rep := verify.CheckTables(inst.Topo, tb, verify.Opts{})
		found = false
		for _, v := range rep.Violations {
			if v.Invariant == "flow-conservation" {
				found = true
			}
		}
		if !found {
			t.Errorf("checker missed an origin-revisiting path: %v", rep.Violations)
		}
		pl.AlwaysOn = savedLoop
	}

	// Break the always-on set: power off a link the first path uses.
	l := inst.Topo.Arc(saved.Arcs[0]).Link
	tb.AlwaysOnSet.Link[l] = false
	rep = verify.CheckTables(inst.Topo, tb, verify.Opts{})
	found = false
	for _, v := range rep.Violations {
		if v.Invariant == "always-on-connectivity" {
			found = true
		}
	}
	if !found {
		t.Errorf("checker missed a broken always-on set: %v", rep.Violations)
	}
	tb.AlwaysOnSet.Link[l] = true
}

// TestPlanDisconnectedReturnsInfeasible is the bugfix-sweep
// regression: planning a disconnected generated topology must fail
// cleanly with ErrInfeasible, never panic and never emit tables.
func TestPlanDisconnectedReturnsInfeasible(t *testing.T) {
	inst, err := topogen.Generate(topogen.Config{Family: topogen.FamilyWaxman, Size: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the topology minus every link of node 0: node 0 stays an
	// endpoint but is unreachable.
	cut := rebuildWithoutNode0Links(inst)
	_, err = response.NewPlanner(
		response.WithEndpoints(inst.Endpoints),
		response.WithRestarts(0),
	).Plan(context.Background(), cut)
	if !errors.Is(err, response.ErrInfeasible) {
		t.Fatalf("plan on disconnected topology: err = %v, want ErrInfeasible", err)
	}
}

// rebuildWithoutNode0Links copies a generated topology minus every
// link incident to node 0, leaving node 0 as an unreachable endpoint.
func rebuildWithoutNode0Links(inst *topogen.Instance) *topo.Topology {
	src := inst.Topo
	cut := topo.New(src.Name + "-cut")
	for _, n := range src.Nodes() {
		cut.AddNodeAt(n.Name, n.Kind, n.KmEast, n.KmNorth)
	}
	for _, l := range src.Links() {
		if l.A == 0 || l.B == 0 {
			continue
		}
		cut.AddAsymLink(l.A, l.B, src.Arc(l.AB).Capacity, src.Arc(l.BA).Capacity,
			src.Arc(l.AB).Latency)
	}
	return cut
}

// TestGeneratedCorpusDiffPathEngine is the path-engine proof harness:
// on every corpus instance, the per-query differential oracle must
// find the ALT and bidirectional engines byte-identical to the
// reference engine (same verdicts, distances, arcs and candidate
// emission order under every option shape), and a whole plan computed
// through each goal-directed engine must have a fingerprint identical
// to the reference plan's. Together with the pinned fingerprint tests
// this proves the fast engines cannot change any output, only speed.
func TestGeneratedCorpusDiffPathEngine(t *testing.T) {
	engines := []struct {
		eng  spf.Engine
		name string
	}{
		{spf.EngineALT, response.PathEngineALT},
		{spf.EngineBidirectional, response.PathEngineBidirectional},
	}
	n := 0
	for _, spec := range corpus() {
		for _, size := range spec.sizes {
			for _, seed := range spec.seeds {
				cfg := topogen.Config{Family: spec.family, Size: size, Seed: seed}
				n++
				t.Run(fmt.Sprintf("%s-%d-s%d", spec.family, size, seed), func(t *testing.T) {
					t.Parallel()
					inst, err := topogen.Generate(cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, e := range engines {
						rep := verify.DiffPathEngine(inst.Topo, inst.Endpoints, e.eng, 4, 48, seed)
						if err := rep.Err(); err != nil {
							t.Errorf("query oracle (%s): %v", e.name, err)
						}
					}
					ref := planInstance(t, inst)
					for _, e := range engines {
						got := planInstance(t, inst, response.WithPathEngine(e.name))
						if got.Fingerprint() != ref.Fingerprint() {
							t.Errorf("engine %s changed the plan fingerprint: %016x vs %016x",
								e.name, got.Fingerprint(), ref.Fingerprint())
						}
					}
				})
			}
		}
	}
	if n < 28 {
		t.Fatalf("corpus has %d instances, want >= 28", n)
	}
}
