package verify_test

import (
	"testing"

	"response/internal/topo"
	"response/internal/topogen"
	"response/internal/verify"
)

// TestCheckSRLGsCleanOnGenerated: every family's derived SRLG model is
// well-formed under the invariant checker.
func TestCheckSRLGsCleanOnGenerated(t *testing.T) {
	for _, fam := range topogen.Families() {
		inst, err := topogen.Generate(topogen.Config{Family: fam, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if rep := verify.CheckSRLGs(inst.Topo, inst.SRLGs); !rep.Ok() {
			t.Errorf("%s: %v", fam, rep.Err())
		}
	}
}

// TestCheckSRLGsDetectsMalformed: each malformation class produces an
// "srlg" violation.
func TestCheckSRLGsDetectsMalformed(t *testing.T) {
	g := topo.NewGeant()
	n := g.NumLinks()
	all := make([]topo.LinkID, n)
	for i := range all {
		all[i] = topo.LinkID(i)
	}
	cases := []struct {
		name  string
		srlgs []topogen.SRLG
	}{
		{"unnamed", []topogen.SRLG{{Links: []topo.LinkID{0}}}},
		{"duplicate-name", []topogen.SRLG{{Name: "x", Links: []topo.LinkID{0}}, {Name: "x", Links: []topo.LinkID{1}}}},
		{"empty", []topogen.SRLG{{Name: "x"}}},
		{"covers-all", []topogen.SRLG{{Name: "x", Links: all}}},
		{"out-of-range", []topogen.SRLG{{Name: "x", Links: []topo.LinkID{topo.LinkID(n)}}}},
		{"repeated-link", []topogen.SRLG{{Name: "x", Links: []topo.LinkID{2, 2}}}},
	}
	for _, tc := range cases {
		rep := verify.CheckSRLGs(g, tc.srlgs)
		if rep.Ok() {
			t.Errorf("%s: checker reported clean", tc.name)
			continue
		}
		for _, v := range rep.Violations {
			if v.Invariant != "srlg" {
				t.Errorf("%s: violation under invariant %q, want \"srlg\"", tc.name, v.Invariant)
			}
		}
	}
}
