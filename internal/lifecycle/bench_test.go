package lifecycle

import (
	"testing"
)

// BenchmarkReplanSwap100kFlows is the acceptance benchmark for the
// hot-swap path: each op stages a plan whose tables differ from the
// installed one into a live runtime managing ~100k flows and runs the
// simulation until the swap fully drains (wake + handoff + retire).
// Ops alternate between the two plans so every op performs a real
// migration.
//
// The quantity under test is allocs/op relative to the migrated/op
// metric: allocations must be proportional to the flows actually
// migrated (a handful per retargeted flow: the replacement Flow, its
// share/rate slices, subflow index growth) plus an O(pairs) staging
// overhead (artifact round trip, per-pair level comparison) — never to
// the flow universe. Probe rounds over all 100k flows keep running
// throughout and stay allocation-free.
func BenchmarkReplanSwap100kFlows(b *testing.B) {
	// GÉANT's default endpoint universe yields 506 planned pairs;
	// ~198 flows per pair ≈ 100k managed flows.
	r := newRig(b, 1, 198, 0.04)
	if len(r.flows) < 95_000 {
		b.Fatalf("rig built %d flows, want ~100k", len(r.flows))
	}
	p2 := driftedPlan(b, r, 3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{
		CheckEvery: 1e12, NoPowerGate: true, DrainGrace: 60,
	})
	m.Start()
	r.s.Run(120) // settle: pools warm, idle links asleep
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := p2
		if i%2 == 1 {
			p = r.plan
		}
		if err := m.StageAndSwap(p); err != nil {
			b.Fatal(err)
		}
		for m.State() != StateIdle {
			r.s.Run(r.s.Now() + 60)
		}
	}
	b.StopTimer()
	met := m.Metrics()
	if met.SwapsDone != b.N || met.MigratedFlows == 0 {
		b.Fatalf("swaps done %d (want %d), migrated %d", met.SwapsDone, b.N, met.MigratedFlows)
	}
	b.ReportMetric(float64(met.MigratedFlows)/float64(b.N), "migrated/op")
	b.ReportMetric(float64(len(r.flows)), "universe")
}
