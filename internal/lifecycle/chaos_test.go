package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"response"
	"response/internal/sim"
	"response/internal/traffic"
)

// flakyReplan fails every call until ok is flipped, then behaves like
// sameReplan.
type flakyReplan struct {
	r     *rig
	ok    bool
	calls int
}

func (f *flakyReplan) fn() ReplanFunc {
	return func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		f.calls++
		if !f.ok {
			return nil, errors.New("planner down")
		}
		return f.r.plan, nil
	}
}

// TestDegradedEntryAndExit: consecutive replan failures trip the
// all-on fallback; the first success exits it and restores the plan's
// pinning.
func TestDegradedEntryAndExit(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	fr := &flakyReplan{r: r}
	m := New(r.s, r.c, r.plan, fr.fn(), Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		RetryBase: 20, RetryMax: 40, DegradedAfter: 2,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	r.s.Run(400) // trigger, fail, retry, fail → degraded
	met := m.Metrics()
	if m.State() != StateDegraded {
		t.Fatalf("state = %v after %d consecutive failures, want degraded (metrics %+v)",
			m.State(), met.ConsecutiveFailures, met)
	}
	if met.DegradedEntered != 1 || met.DegradedExited != 0 {
		t.Fatalf("degraded entered/exited = %d/%d, want 1/0", met.DegradedEntered, met.DegradedExited)
	}
	if met.ConsecutiveFailures < 2 {
		t.Errorf("consecutive failures = %d, want >= 2", met.ConsecutiveFailures)
	}
	// The fallback pins the all-on table: nothing may sleep.
	for _, l := range r.g.Links() {
		if ph := r.s.LinkState(l.ID); ph == sim.LinkSleeping {
			t.Fatalf("link %d sleeping while degraded: all-on fallback not pinned", l.ID)
		}
	}
	// Planner recovers: the next retry succeeds (Unchanged) and exits.
	fr.ok = true
	r.s.Run(r.s.Now() + 500)
	met = m.Metrics()
	if m.State() != StateIdle {
		t.Fatalf("state = %v after recovery, want idle (metrics %+v)", m.State(), met)
	}
	if met.DegradedExited != 1 {
		t.Errorf("degraded exited = %d, want 1", met.DegradedExited)
	}
	if met.ConsecutiveFailures != 0 {
		t.Errorf("consecutive failures = %d after success, want 0", met.ConsecutiveFailures)
	}
	if met.DegradedSec <= 0 {
		t.Errorf("degraded dwell = %v, want > 0", met.DegradedSec)
	}
	if met.Retries == 0 {
		t.Error("no retries counted despite backoff recovery")
	}
}

// TestReplanPanicRecovered: a panicking planner is a failed cycle, not
// a crashed control loop — and the manager keeps working afterwards.
func TestReplanPanicRecovered(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	calls := 0
	bomb := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		calls++
		if calls == 1 {
			panic("solver segfault")
		}
		return r.plan, nil
	}
	m := New(r.s, r.c, r.plan, bomb, Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		RetryBase: 20, RetryMax: 40,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	r.s.Run(600)
	met := m.Metrics()
	if met.ReplanPanics != 1 {
		t.Fatalf("panics = %d, want 1 (metrics %+v)", met.ReplanPanics, met)
	}
	if met.ReplanFailed != 1 {
		t.Errorf("failed = %d, want 1", met.ReplanFailed)
	}
	if met.Unchanged == 0 {
		t.Error("retry after the panic never succeeded")
	}
	if m.State() != StateIdle {
		t.Errorf("state = %v, want idle", m.State())
	}
}

// TestReplanDeadlineInline: an inline replan reads its simulated-clock
// budget from the context; overrunning it is a counted timeout.
func TestReplanDeadlineInline(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	calls := 0
	slow := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		calls++
		budget, ok := ReplanBudget(ctx)
		if !ok {
			t.Fatal("replan context carries no budget despite ReplanDeadline")
		}
		if calls == 1 {
			return nil, fmt.Errorf("modeled compute %.0fs over budget: %w",
				budget, context.DeadlineExceeded)
		}
		return r.plan, nil
	}
	m := New(r.s, r.c, r.plan, slow, Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		ReplanDeadline: 50, RetryBase: 20, RetryMax: 40,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	r.s.Run(600)
	met := m.Metrics()
	if met.ReplanTimeouts != 1 {
		t.Fatalf("timeouts = %d, want 1 (metrics %+v)", met.ReplanTimeouts, met)
	}
	if met.Unchanged == 0 {
		t.Error("retry after the timeout never succeeded")
	}
}

// TestBackgroundDeadlineCancels: a background replan still in flight
// when ReplanDeadline elapses on the simulated clock is canceled and
// counted as a timeout.
func TestBackgroundDeadlineCancels(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	hung := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		<-ctx.Done() // wedged until the watchdog fires
		return nil, ctx.Err()
	}
	m := New(r.s, r.c, r.plan, hung, Opts{
		CheckEvery: 100, MinInterval: 100, Background: true,
		ReplanDeadline: 150, RetryBase: 1e6, DegradedAfter: -1,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	deadline := time.Now().Add(10 * time.Second)
	for m.Metrics().ReplanTimeouts == 0 {
		r.s.Run(r.s.Now() + 100)
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never canceled the hung replan (metrics %+v)", m.Metrics())
		}
	}
	if got := m.Metrics().ReplanFailed; got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	m.Stop()
}

// TestCorruptArtifactKeepsLastGood: a staging whose serialized
// artifact is bit-flipped in transit is rejected by the round-trip
// gate; the last-known-good artifact slot and the installed plan are
// untouched, and a clean staging afterwards goes through.
func TestCorruptArtifactKeepsLastGood(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	corrupt := true
	m := New(r.s, r.c, r.plan, r.liveReplan(), Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		RetryBase: 20, RetryMax: 40, DegradedAfter: -1, NoPowerGate: true,
		ArtifactFilter: func(b []byte) []byte {
			if !corrupt {
				return b
			}
			out := append([]byte(nil), b...)
			out[len(out)/2] ^= 0x40
			return out
		},
	})
	m.Start()
	r.scaleFirst(0.5, 3)
	r.s.Run(400)
	met := m.Metrics()
	if met.RejectedInvalid == 0 {
		t.Fatalf("corrupt artifact never rejected (metrics %+v)", met)
	}
	if met.Swaps != 0 {
		t.Fatalf("corrupt artifact staged a swap: %d", met.Swaps)
	}
	if m.StagedArtifact() != nil {
		t.Fatal("corrupt bytes overwrote the last-known-good artifact slot")
	}
	if m.CurrentPlan() != r.plan {
		t.Fatal("corrupt staging replaced the installed plan")
	}
	// Transit heals: the next retry stages cleanly.
	corrupt = false
	r.s.Run(r.s.Now() + 1000)
	met = m.Metrics()
	if met.Swaps == 0 && met.Unchanged == 0 {
		t.Fatalf("no successful staging after corruption cleared (metrics %+v)", met)
	}
	if art := m.StagedArtifact(); met.Swaps > 0 && len(art) == 0 {
		t.Error("successful staging left no artifact")
	}
}

// TestReplanAfterStopDiscarded: a background replan that completes
// after Stop() must be discarded without touching the simulator.
func TestReplanAfterStopDiscarded(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	staged := 0
	replan := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		started <- struct{}{}
		<-release // completes only after Stop
		staged++
		return r.plan, nil
	}
	m := New(r.s, r.c, r.plan, replan, Opts{
		CheckEvery: 100, MinInterval: 100, Background: true,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	deadline := time.Now().Add(10 * time.Second)
	for len(started) == 0 {
		r.s.Run(r.s.Now() + 100)
		if time.Now().After(deadline) {
			t.Fatal("background replan never launched")
		}
	}
	<-started
	m.Stop()
	close(release) // the goroutine now finishes and buffers its result
	r.s.Run(r.s.Now() + 2000)
	met := m.Metrics()
	if met.Replans != 0 || met.Swaps != 0 || met.Unchanged != 0 {
		t.Errorf("post-Stop result was staged: %+v", met)
	}
	if m.CurrentPlan() != r.plan {
		t.Error("post-Stop result replaced the installed plan")
	}
}

// TestStageAndSwapRejectedWhileDraining: forcing a plan while a swap
// is still draining must error instead of double-firing; the drain
// then completes normally.
func TestStageAndSwapRejectedWhileDraining(t *testing.T) {
	r := newRig(t, 2, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.liveReplan(), Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		NoPowerGate: true, DrainGrace: 500,
	})
	m.Start()
	r.scaleFirst(0.5, 3)
	deadline := time.Now().Add(10 * time.Second)
	for m.State() != StateSwapping {
		r.s.Run(r.s.Now() + 50)
		if time.Now().After(deadline) {
			t.Skipf("replanned tables never differed; nothing to drain (metrics %+v)", m.Metrics())
		}
	}
	drifted, err := r.planner.Plan(context.Background(), r.g,
		response.WithLowMatrix(liveMatrix(r)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StageAndSwap(drifted); err == nil {
		t.Fatal("StageAndSwap succeeded mid-drain, want rejection")
	}
	r.s.Run(r.s.Now() + 2000)
	if m.State() != StateIdle {
		t.Fatalf("state = %v after drain, want idle", m.State())
	}
	met := m.Metrics()
	if met.Swaps != met.SwapsDone {
		t.Errorf("swaps begun %d != drained %d", met.Swaps, met.SwapsDone)
	}
}

// liveMatrix aggregates the rig's current offered demand.
func liveMatrix(r *rig) *traffic.Matrix {
	m := traffic.NewMatrix()
	for _, f := range r.flows {
		if !f.Removed() && f.Demand > 0 {
			m.Add(f.O, f.D, f.Demand)
		}
	}
	return m
}

// retryAbandonWhenCalm: covered implicitly by TestDegradedEntryAndExit
// (degraded retries always fire); the calm-idle abandonment path is
// exercised here — a failure followed by demand returning to baseline
// must not keep replanning.
func TestRetryAbandonedWhenCalm(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	fr := &flakyReplan{r: r}
	m := New(r.s, r.c, r.plan, fr.fn(), Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		RetryBase: 300, RetryMax: 300, DegradedAfter: -1,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	r.s.Run(150) // trigger fires; staging fails at ~110; retry due at ~410
	if got := m.Metrics().ReplanFailed; got != 1 {
		t.Fatalf("failed = %d, want 1", got)
	}
	r.scaleFirst(0.5, 1) // demand calms before the retry fires
	r.s.Run(1500)
	met := m.Metrics()
	if met.Retries != 0 {
		t.Errorf("retries = %d after demand calmed, want 0", met.Retries)
	}
	if fr.calls != 1 {
		t.Errorf("replan calls = %d, want 1 (retry should abandon)", fr.calls)
	}
}
