package lifecycle

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"response"
	"response/internal/core"
	"response/internal/mcf"
	"response/internal/sim"
	"response/internal/te"
	"response/internal/topo"
	"response/internal/traffic"
)

// rig is a GÉANT simulator/controller/flows fixture mirroring the
// scenario catalog's construction, with direct demand control.
type rig struct {
	g       *topo.Topology
	planner *response.Planner
	plan    *response.Plan
	s       *sim.Simulator
	c       *te.Controller
	flows   []*sim.Flow
	base    []float64 // per-flow baseline demand
}

// newRig plans GÉANT and installs flows over the planned levels.
// loadFrac scales aggregate demand relative to the max feasible load;
// keep it well under the 0.9 activation threshold for steady-state
// tests that must not shift.
func newRig(t testing.TB, seed int64, flowsPerPair int, loadFrac float64) *rig {
	t.Helper()
	g := topo.NewGeant()
	rng := rand.New(rand.NewSource(seed))
	endpoints := core.DefaultEndpoints(g)
	planner := response.NewPlanner(response.WithEndpoints(endpoints))
	plan, err := planner.Plan(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	base := traffic.Gravity(g, traffic.GravityOpts{Nodes: endpoints, TotalRate: 1})
	maxScale := mcf.MaxFeasibleScale(g, base, mcf.RouteOpts{}, 0.05)
	peak := base.Scale(maxScale * loadFrac)
	s := sim.New(g, sim.Opts{
		WakeUpDelay:    5,
		SleepAfterIdle: 60,
		PinnedOn:       plan.AlwaysOnSet(),
	})
	c := te.NewController(s, te.Opts{Threshold: 0.9, Gamma: 0.5, Period: 60})
	r := &rig{g: g, planner: planner, plan: plan, s: s, c: c}
	for _, d := range peak.Demands() {
		ps, ok := plan.PathSet(d.O, d.D)
		if !ok {
			continue
		}
		n := flowsPerPair
		if n <= 0 {
			n = 1 + rng.Intn(3)
		}
		each := d.Rate / float64(n)
		for i := 0; i < n; i++ {
			f, err := s.AddFlow(d.O, d.D, each, ps.Levels())
			if err != nil {
				t.Fatal(err)
			}
			c.Manage(f)
			r.flows = append(r.flows, f)
			r.base = append(r.base, each)
		}
	}
	c.Start()
	return r
}

// scaleFirst multiplies the demand of the first frac of flows by k
// (relative to their baseline).
func (r *rig) scaleFirst(frac, k float64) {
	n := int(frac * float64(len(r.flows)))
	for i := 0; i < n && i < len(r.flows); i++ {
		if !r.flows[i].Removed() {
			r.s.SetDemand(r.flows[i], r.base[i]*k)
		}
	}
}

// sameReplan returns the installed plan unchanged — the paper's common
// case (recomputation confirms the tables).
func (r *rig) sameReplan() ReplanFunc {
	return func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		return r.plan, nil
	}
}

// liveReplan replans with the live matrix as d_low (demand-aware), the
// scenario catalog's replanner.
func (r *rig) liveReplan() ReplanFunc {
	return func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		return r.planner.Plan(ctx, r.g, response.WithLowMatrix(live))
	}
}

func TestNoTriggerWhenFlat(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{CheckEvery: 100, MinInterval: 100})
	m.Start()
	r.s.Run(1000)
	met := m.Metrics()
	if met.Checks < 9 {
		t.Fatalf("checks = %d, want ~10", met.Checks)
	}
	if met.Triggers != 0 || met.Replans != 0 {
		t.Errorf("flat demand fired %d triggers / %d replans, want 0", met.Triggers, met.Replans)
	}
	if m.State() != StateIdle {
		t.Errorf("state = %v, want idle", m.State())
	}
}

// TestTriggerAndUnchangedAdoptsBaseline: drift past the policy fires a
// replan; an identical result redeploys nothing but the baseline moves
// so deviation settles back to zero.
func TestTriggerAndUnchangedAdoptsBaseline(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		Deviation: 0.2, Spread: 0.25,
	})
	m.Start()
	r.s.Run(250)
	r.scaleFirst(0.5, 2) // half the flows double: spread 0.5 >= 0.25
	r.s.Run(600)
	met := m.Metrics()
	if met.Triggers != 1 || met.Replans != 1 {
		t.Fatalf("triggers/replans = %d/%d, want 1/1", met.Triggers, met.Replans)
	}
	if met.Unchanged != 1 || met.Swaps != 0 {
		t.Errorf("unchanged/swaps = %d/%d, want 1/0", met.Unchanged, met.Swaps)
	}
	if met.LastDeviation != 0 {
		t.Errorf("deviation after baseline adoption = %v, want 0", met.LastDeviation)
	}
	if m.State() != StateIdle {
		t.Errorf("state = %v, want idle", m.State())
	}
}

// TestMinIntervalThrottles: a second qualifying drift inside
// MinInterval must not fire.
func TestMinIntervalThrottles(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{
		CheckEvery: 100, MinInterval: 5000, ReplanLatency: 10,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	r.s.Run(450) // first trigger + unchanged adoption
	if got := m.Metrics().Triggers; got != 1 {
		t.Fatalf("triggers = %d, want 1", got)
	}
	r.scaleFirst(0.5, 4) // drift again, well past the threshold
	r.s.Run(2000)        // many checks, all inside MinInterval
	if got := m.Metrics().Triggers; got != 1 {
		t.Errorf("triggers = %d inside MinInterval, want still 1", got)
	}
	r.s.Run(6000) // MinInterval passed
	if got := m.Metrics().Triggers; got != 2 {
		t.Errorf("triggers = %d after MinInterval, want 2", got)
	}
}

// TestFailureRearmsAndRetries: a failing replan keeps plan and
// baseline, re-arms, and retries after MinInterval.
func TestFailureRearmsAndRetries(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	calls := 0
	failing := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		calls++
		return nil, errors.New("solver blew up")
	}
	m := New(r.s, r.c, r.plan, failing, Opts{
		CheckEvery: 100, MinInterval: 1000, ReplanLatency: 10,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	r.s.Run(3000)
	met := m.Metrics()
	if calls < 2 {
		t.Fatalf("failing replan called %d times, want retries after MinInterval", calls)
	}
	if met.ReplanFailed != calls {
		t.Errorf("failures = %d, want %d", met.ReplanFailed, calls)
	}
	if m.CurrentPlan() != r.plan {
		t.Error("failed replans must keep the installed plan")
	}
}

// TestHysteresisBlocksBandHovering: once disarmed with the baseline
// retained at a level where deviation sits inside [Hysteresis×Spread,
// Spread), the trigger must not re-fire until demand first calms below
// the band.
func TestHysteresisBlocksBandHovering(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		Deviation: 0.2, Spread: 0.4, Hysteresis: 0.5,
	})
	m.Start()
	// Fire once: 50% of flows deviate (spread 0.5 >= 0.4). During the
	// latency window move demand so that, against the adopted
	// snapshot, 30% of flows deviate — inside the [0.2, 0.4) band.
	r.scaleFirst(0.5, 2)
	r.s.Run(150) // check at 100 fires; staging lands at 110
	if got := m.Metrics().Triggers; got != 1 {
		t.Fatalf("triggers = %d, want 1", got)
	}
	r.scaleFirst(0.3, 5) // 30% of flows now differ from the snapshot
	r.s.Run(2000)
	met := m.Metrics()
	if met.LastDeviation < 0.2 || met.LastDeviation >= 0.4 {
		t.Fatalf("deviation = %v, want inside the hysteresis band [0.2, 0.4)", met.LastDeviation)
	}
	if met.Triggers != 1 {
		t.Fatalf("band hovering re-fired: triggers = %d, want 1", met.Triggers)
	}
	// Push past the trigger level while still disarmed: must not fire.
	r.scaleFirst(0.45, 7)
	r.s.Run(2500)
	if got := m.Metrics().Triggers; got != 1 {
		t.Fatalf("disarmed trigger fired: %d, want 1", got)
	}
	// Calm back to the adopted snapshot (first half ×2, rest ×1) to
	// re-arm, then drift again: fires.
	half := int(0.5 * float64(len(r.flows)))
	for i := range r.flows {
		k := 1.0
		if i < half {
			k = 2
		}
		r.s.SetDemand(r.flows[i], r.base[i]*k)
	}
	r.s.Run(2800)
	r.scaleFirst(0.5, 9)
	r.s.Run(3300)
	if got := m.Metrics().Triggers; got != 2 {
		t.Errorf("triggers after calm+redrift = %d, want 2", got)
	}
}

// TestSupersededReplanRestarts: a result whose trigger snapshot the
// demand has already drifted past is abandoned and the replan restarts
// from a fresh snapshot.
func TestSupersededReplanRestarts(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 300,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	r.s.Run(150) // trigger fires at the t=100 check; staging due t=400
	if m.State() != StateReplanning {
		t.Fatalf("state = %v, want replanning", m.State())
	}
	r.scaleFirst(0.5, 8) // demand blows past the trigger snapshot
	r.s.Run(1500)
	met := m.Metrics()
	if met.Superseded != 1 {
		t.Errorf("superseded = %d, want 1", met.Superseded)
	}
	if met.Replans < 2 {
		t.Errorf("replans = %d, want >= 2 (restart after supersession)", met.Replans)
	}
	if m.State() != StateIdle {
		t.Errorf("state = %v, want idle after the restarted cycle", m.State())
	}
}

// driftedPlan returns a plan (planned for k×-scaled demand on the
// rig's pairs) whose tables differ from the rig's installed plan.
func driftedPlan(t testing.TB, r *rig, k float64) *response.Plan {
	t.Helper()
	live := traffic.NewMatrix()
	for i, f := range r.flows {
		m := 1.0
		if i%2 == 0 {
			m = k
		}
		live.Add(f.O, f.D, r.base[i]*m)
	}
	p, err := r.planner.Plan(context.Background(), r.g, response.WithLowMatrix(live))
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() == r.plan.Fingerprint() {
		t.Skip("drifted plan identical on this rig; cannot exercise swap")
	}
	return p
}

// TestStageAndSwapMigratesAndDrains: a forced swap retargets exactly
// the flows whose levels change, drains the old tables, and returns to
// idle with the staged plan installed and its artifact readable.
func TestStageAndSwapMigratesAndDrains(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{
		CheckEvery: 1e9, NoPowerGate: true, // manual staging only
	})
	m.Start()
	r.s.Run(120)
	p2 := driftedPlan(t, r, 3)
	if err := m.StageAndSwap(p2); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateSwapping {
		t.Fatalf("state = %v, want swapping", m.State())
	}
	r.s.Run(400) // wake (5 s) + drain grace (60 s) well past
	met := m.Metrics()
	if m.State() != StateIdle || met.SwapsDone != 1 {
		t.Fatalf("state/swapsDone = %v/%d, want idle/1", m.State(), met.SwapsDone)
	}
	if met.MigratedFlows == 0 || met.MigratedFlows >= len(r.flows) {
		t.Errorf("migrated %d of %d flows, want a proper subset (only changed pairs)",
			met.MigratedFlows, len(r.flows))
	}
	if m.CurrentPlan() != p2 {
		t.Error("staged plan not installed")
	}
	// The staged artifact is the shipped form: re-readable and
	// fingerprint-identical to the installed plan.
	loaded, err := response.ReadPlanFrom(bytes.NewReader(m.StagedArtifact()), r.g)
	if err != nil {
		t.Fatalf("staged artifact unreadable: %v", err)
	}
	if loaded.Fingerprint() != p2.Fingerprint() {
		t.Error("staged artifact fingerprint mismatch")
	}
	// Retargets folded into the controller fingerprint.
	if r.c.Retargets != met.MigratedFlows {
		t.Errorf("controller retargets = %d, want %d", r.c.Retargets, met.MigratedFlows)
	}
}

// TestPowerGate orders two real plans by evaluated power under the
// live matrix and checks the gate rejects exactly the worse direction.
func TestPowerGate(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	r.s.Run(60)
	p2 := driftedPlan(t, r, 3)

	live := traffic.NewMatrix()
	for i, f := range r.flows {
		live.Add(f.O, f.D, r.base[i])
	}
	opts := Opts{}
	opts.defaults(r.c)
	w1 := r.plan.Evaluate(live, opts.Model, opts.MaxUtil).Watts
	w2 := p2.Evaluate(live, opts.Model, opts.MaxUtil).Watts
	if math.Abs(w1-w2) < 1e-6 {
		t.Skip("plans draw identical power; gate direction untestable")
	}
	better, worse := r.plan, p2
	if w2 < w1 {
		better, worse = p2, r.plan
	}
	// Manager holding the better plan must reject the worse one.
	m := New(r.s, r.c, better, r.sameReplan(), Opts{CheckEvery: 1e9})
	m.Start()
	if err := m.StageAndSwap(worse); err != nil {
		t.Fatal(err)
	}
	met := m.Metrics()
	if met.RejectedPower != 1 || met.Swaps != 0 {
		t.Errorf("rejectedPower/swaps = %d/%d, want 1/0", met.RejectedPower, met.Swaps)
	}
	if m.CurrentPlan() != better {
		t.Error("rejected swap must keep the installed plan")
	}
}

// TestRollbackKeepsMissingPairs: pairs absent from the staged plan
// keep their old tables and keep forwarding.
func TestRollbackKeepsMissingPairs(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	r.s.Run(60)
	// Candidate planned over a strict endpoint subset: the dropped
	// pairs have no entry in it.
	endpoints := core.DefaultEndpoints(r.g)
	sub := endpoints[:len(endpoints)/2]
	p2, err := r.planner.Plan(context.Background(), r.g,
		response.WithEndpoints(sub), response.WithLowMatrix(nil))
	if err != nil {
		t.Fatal(err)
	}
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{CheckEvery: 1e9, NoPowerGate: true})
	m.Start()
	if err := m.StageAndSwap(p2); err != nil {
		t.Fatal(err)
	}
	r.s.Run(400)
	met := m.Metrics()
	if met.KeptPairs == 0 {
		t.Fatal("no pairs kept despite subset plan")
	}
	// Flows of pairs absent from the staged plan were not retargeted:
	// same *Flow, old tables installed, still forwarding.
	kept := 0
	for i, f := range r.flows {
		if _, inNew := p2.PathSet(f.O, f.D); inNew {
			continue
		}
		kept++
		if f.Removed() {
			t.Fatalf("flow %d of a missing pair was retired", i)
		}
		ps, _ := r.plan.PathSet(f.O, f.D)
		if len(f.Paths) != len(ps.Levels()) || !f.Paths[0].Equal(ps.Levels()[0]) {
			t.Fatalf("flow %d of a missing pair lost its old tables", i)
		}
		if f.Demand > 0 && f.Rate() <= 0 {
			t.Fatalf("flow %d of a missing pair stopped forwarding", i)
		}
	}
	if kept == 0 {
		t.Fatal("subset plan dropped no managed pair; test is vacuous")
	}
}

// TestBackgroundReplanCancellation: Stop cancels an in-flight
// background replan through its context.
func TestBackgroundReplanCancellation(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	canceled := make(chan struct{})
	blocking := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		<-ctx.Done()
		close(canceled)
		return nil, ctx.Err()
	}
	m := New(r.s, r.c, r.plan, blocking, Opts{
		CheckEvery: 100, MinInterval: 100, Background: true,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	r.s.Run(150)
	if m.State() != StateReplanning {
		t.Fatalf("state = %v, want replanning", m.State())
	}
	m.Stop()
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not cancel the in-flight replan context")
	}
}

// TestBackgroundReplanCompletes: a background replan's result is
// staged at a later check.
func TestBackgroundReplanCompletes(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{
		CheckEvery: 100, MinInterval: 100, Background: true,
	})
	m.Start()
	r.scaleFirst(0.5, 2)
	deadline := time.Now().Add(10 * time.Second)
	for m.Metrics().Replans == 0 && time.Now().Before(deadline) {
		r.s.Run(r.s.Now() + 100)
		time.Sleep(time.Millisecond)
	}
	met := m.Metrics()
	if met.Replans == 0 {
		t.Fatal("background replan result never staged")
	}
	if met.Unchanged == 0 && met.Superseded == 0 {
		t.Errorf("metrics = %+v, want the result consumed", met)
	}
}

// TestHistoryReadsWithFig1bMachinery: the per-check fingerprint record
// feeds analysis.Replay, so the live loop's recomputation rate reads
// with the same code that produced Figure 1b.
func TestHistoryReadsWithFig1bMachinery(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{CheckEvery: 600, NoPowerGate: true})
	m.Start()
	r.s.Run(1800)
	p2 := driftedPlan(t, r, 3)
	if err := m.StageAndSwap(p2); err != nil {
		t.Fatal(err)
	}
	r.s.Run(5400)
	h := m.History()
	if h.Recomputations() != 1 {
		t.Errorf("history recomputations = %d, want 1 (one swap)", h.Recomputations())
	}
	rate := h.RatePerHour()
	var total float64
	for _, x := range rate {
		total += x
	}
	if total != 1 {
		t.Errorf("rate-per-hour total = %v, want 1", total)
	}
}

// TestWarmHintReachesReplanAndConverges: the manager attaches the
// promoted plan to the replan context; a warm-started replan after a
// link failure plus demand drift must converge to the same plan a cold
// replan computes from the same live matrix (GÉANT stays in the
// capacity-slack regime, where warm-from-seed is exact).
func TestWarmHintReachesReplanAndConverges(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	var hinted *response.Plan
	var captured *traffic.Matrix
	replan := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		prev, ok := WarmHint(ctx)
		if !ok {
			t.Error("replan context carries no warm hint")
			return r.planner.Plan(ctx, r.g, response.WithLowMatrix(live))
		}
		hinted = prev
		captured = live.Clone()
		return r.planner.Plan(ctx, r.g,
			response.WithLowMatrix(live), response.WithWarmStartStrict(prev))
	}
	m := New(r.s, r.c, r.plan, replan, Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		NoPowerGate: true,
	})
	m.Start()
	r.s.Run(250)
	r.s.FailLink(0)
	r.scaleFirst(0.5, 2)
	r.s.Run(600)
	if met := m.Metrics(); met.Replans != 1 {
		t.Fatalf("replans = %d, want 1", met.Replans)
	}
	if hinted != r.plan {
		t.Errorf("warm hint is not the promoted plan")
	}
	cold, err := r.planner.Plan(context.Background(), r.g, response.WithLowMatrix(captured))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.CurrentPlan().Fingerprint(), cold.Fingerprint(); got != want {
		t.Errorf("warm replan fingerprint %016x != cold %016x", got, want)
	}
}

// TestNoWarmStartSuppressesHint: the Opts/Policy knob removes the hint
// from replan contexts, and SetPolicy can flip it at runtime.
func TestNoWarmStartSuppressesHint(t *testing.T) {
	r := newRig(t, 1, 1, 0.3)
	sawHint := false
	replan := func(ctx context.Context, live *traffic.Matrix) (*response.Plan, error) {
		_, sawHint = WarmHint(ctx)
		return r.plan, nil
	}
	m := New(r.s, r.c, r.plan, replan, Opts{
		CheckEvery: 100, MinInterval: 100, ReplanLatency: 10,
		NoWarmStart: true,
	})
	m.Start()
	r.s.Run(250)
	r.scaleFirst(0.5, 2)
	r.s.Run(600)
	if m.Metrics().Replans != 1 {
		t.Fatalf("replans = %d, want 1", m.Metrics().Replans)
	}
	if sawHint {
		t.Error("NoWarmStart manager still attached a warm hint")
	}
	if p := m.Policy(); !p.NoWarmStart {
		t.Error("Policy() does not reflect NoWarmStart")
	}
	pol := m.Policy()
	pol.NoWarmStart = false
	if err := m.SetPolicy(pol); err != nil {
		t.Fatal(err)
	}
	r.scaleFirst(0.5, 4)
	r.s.Run(1200)
	if m.Metrics().Replans < 2 {
		t.Fatalf("replans = %d, want >= 2 after repatched policy", m.Metrics().Replans)
	}
	if !sawHint {
		t.Error("re-enabled warm-start did not attach a hint")
	}
}
