package lifecycle

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"response"
	"response/internal/sim"
	"response/internal/te"
	"response/internal/topo"
)

// flowState is one live flow's externally visible placement.
type flowState struct {
	o, d   topo.NodeID
	demand float64
	rate   float64
}

func liveStates(s *sim.Simulator) []flowState {
	var out []flowState
	for _, f := range s.Flows() {
		if f.Removed() {
			continue
		}
		out = append(out, flowState{o: f.O, d: f.D, demand: f.Demand, rate: f.Rate()})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.o != b.o {
			return a.o < b.o
		}
		if a.d != b.d {
			return a.d < b.d
		}
		if a.demand != b.demand {
			return a.demand < b.demand
		}
		return a.rate < b.rate
	})
	return out
}

// freshOnPlan builds a simulator/controller pair directly on the given
// plan with the given per-flow demand program — what a restart into
// the new plan would look like.
func freshOnPlan(t *testing.T, plan *response.Plan, states []flowState) *sim.Simulator {
	t.Helper()
	g := plan.Topology()
	s := sim.New(g, sim.Opts{
		WakeUpDelay:    5,
		SleepAfterIdle: 60,
		PinnedOn:       plan.AlwaysOnSet(),
	})
	c := te.NewController(s, te.Opts{Threshold: 0.9, Gamma: 0.5, Period: 60})
	for _, st := range states {
		ps, ok := plan.PathSet(st.o, st.d)
		if !ok {
			t.Fatalf("fresh rig: pair %d->%d not in plan", st.o, st.d)
		}
		f, err := s.AddFlow(st.o, st.d, st.demand, ps.Levels())
		if err != nil {
			t.Fatal(err)
		}
		c.Manage(f)
	}
	c.Start()
	if c.Shifts != 0 {
		t.Fatalf("fresh controller shifted at this load; equivalence regime broken")
	}
	return s
}

// TestSwapEquivalence is the randomized hot-swap equivalence check:
// after a swap fully drains and the network settles, the runtime's
// steady state — per-flow rates, arc loads, and the simulator state
// fingerprint — must match a controller started fresh on the new
// plan. Load is kept under the activation threshold so neither run
// shifts (steady state is then history-free and the comparison exact);
// seeds randomize per-pair flow counts, demand splits and the drift
// that shapes the staged plan.
func TestSwapEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := newRig(t, seed, 0, 0.04) // random 1..3 flows per pair; shift-free load
			r.s.Run(120)
			p2 := driftedPlan(t, r, 2+float64(seed))
			m := New(r.s, r.c, r.plan, r.sameReplan(), Opts{
				CheckEvery: 1e9, NoPowerGate: true,
			})
			m.Start()
			if err := m.StageAndSwap(p2); err != nil {
				t.Fatal(err)
			}
			r.s.Run(1000) // drain + idle links back asleep
			met := m.Metrics()
			if met.SwapsDone != 1 || met.MigratedFlows == 0 {
				t.Fatalf("swap did not complete: %+v", met)
			}
			if r.c.Shifts != 0 {
				t.Fatalf("swapped controller shifted at this load; equivalence regime broken")
			}

			states := liveStates(r.s)
			fresh := freshOnPlan(t, p2, states)
			fresh.Run(1000)

			// Per-flow rates (matched by sorted (O, D, demand) key).
			freshStates := liveStates(fresh)
			if len(states) != len(freshStates) {
				t.Fatalf("live flow count %d vs fresh %d", len(states), len(freshStates))
			}
			for i := range states {
				a, b := states[i], freshStates[i]
				if a.o != b.o || a.d != b.d || a.demand != b.demand {
					t.Fatalf("flow multiset mismatch at %d: %+v vs %+v", i, a, b)
				}
				if !closeRel(a.rate, b.rate, 1e-9) {
					t.Errorf("pair %d->%d demand %g: post-swap rate %g vs fresh %g",
						a.o, a.d, a.demand, a.rate, b.rate)
				}
			}
			// Arc loads.
			for _, arc := range r.g.Arcs() {
				if !closeRel(r.s.ArcUtil(arc.ID), fresh.ArcUtil(arc.ID), 1e-9) {
					t.Errorf("arc %d: post-swap util %g vs fresh %g",
						arc.ID, r.s.ArcUtil(arc.ID), fresh.ArcUtil(arc.ID))
				}
			}
			// And the quantized whole-state fingerprint.
			if a, b := r.s.StateFingerprint(), fresh.StateFingerprint(); a != b {
				t.Errorf("state fingerprint %016x vs fresh %016x", a, b)
			}
		})
	}
}

// closeRel reports |a-b| <= tol × max(1, |b|).
func closeRel(a, b, tol float64) bool {
	scale := math.Abs(b)
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}
